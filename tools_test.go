package branchreg

// Integration tests for the command-line tools, driving them the way a
// user would (via `go run`).

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"branchreg/internal/exp"
)

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		// bremu exits with the program's status; tolerate nonzero exits
		// that still produced output.
		if len(out) == 0 {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
	}
	return string(out)
}

func TestBrccBothMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/brcc", "testdata/strlen.mc")
	if !strings.Contains(out, "baseline machine") || !strings.Contains(out, "branchreg machine") {
		t.Errorf("brcc output missing machines:\n%.400s", out)
	}
	if !strings.Contains(out, "strlen:") {
		t.Errorf("brcc output missing function listing:\n%.400s", out)
	}
	// The BRM listing must show a compare-with-assignment.
	if !strings.Contains(out, "->b[") {
		t.Errorf("brcc BRM listing missing CmpBr notation:\n%.400s", out)
	}
}

func TestBrccIRMode(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/brcc", "-ir", "testdata/loopsum.mc")
	if !strings.Contains(out, "func main") {
		t.Errorf("brcc -ir output:\n%.400s", out)
	}
}

func TestBremuRunsFile(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/bremu", "-machine", "brm", "testdata/hello.mc")
	if !strings.Contains(out, "hello from the branch register machine") {
		t.Errorf("bremu output:\n%.400s", out)
	}
	if !strings.Contains(out, "instructions executed") {
		t.Errorf("bremu stats missing:\n%.400s", out)
	}
}

func TestBremuWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/bremu", "-w", "sieve", "-machine", "baseline")
	if !strings.Contains(out, "primes 1028") {
		t.Errorf("bremu workload output:\n%.400s", out)
	}
}

func TestBrbenchFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/brbench", "-fig5", "-fig6", "-fig7", "-fig8")
	for _, want := range []string{"Figure 5", "Figure 6", "Figure 7", "Figure 8", "branch registers"} {
		if !strings.Contains(out, want) {
			t.Errorf("brbench output missing %q:\n%.600s", want, out)
		}
	}
}

func TestBrbenchJSONAndFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	out := runTool(t, "./cmd/brbench",
		"-table1", "-ratios", "-fig9", "-workloads", "wc,sieve", "-json", path)
	if !strings.Contains(out, "Table I") {
		t.Errorf("brbench output missing Table I:\n%.400s", out)
	}
	// The filter must hold: no unrequested workload in the table.
	if strings.Contains(out, "dhrystone") {
		t.Errorf("-workloads filter leaked other programs:\n%.600s", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema int `json:"schema"`
		Suite  struct {
			Programs []struct {
				Name string `json:"name"`
			} `json:"programs"`
		} `json:"suite"`
		CompileCache struct {
			Misses  int64 `json:"misses"`
			Entries int64 `json:"entries"`
		} `json:"compile_cache"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("brbench -json wrote invalid JSON: %v\n%.400s", err, raw)
	}
	if rep.Schema != exp.ReportSchemaVersion {
		t.Errorf("schema = %d, want %d", rep.Schema, exp.ReportSchemaVersion)
	}
	if len(rep.Suite.Programs) != 2 {
		t.Errorf("programs in JSON = %d, want the 2 filtered workloads", len(rep.Suite.Programs))
	}
	if rep.CompileCache.Misses != rep.CompileCache.Entries {
		t.Errorf("compile cache reports recompilation: %+v", rep.CompileCache)
	}
}

// TestBrbenchKeepGoing injects a deterministic fault into one suite cell
// and checks the keep-going contract: the rest of the suite completes,
// the faulted cell renders as FAIL(<kind>) and lands in the JSON report's
// errors array (schema v2) with its trap context, and brbench exits
// non-zero so CI still notices.
func TestBrbenchKeepGoing(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	cmd := exec.Command("go", "run", "./cmd/brbench",
		"-table1", "-keep-going", "-workloads", "wc,sieve",
		"-inject", "wc/brm/trap@100", "-json", path)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Errorf("brbench -keep-going with an injected fault exited 0:\n%.600s", out)
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Errorf("brbench exit: %v (want exit status 1)\n%.600s", err, out)
	}
	if !strings.Contains(string(out), "FAIL(injected)") {
		t.Errorf("table does not mark the faulted cell:\n%.900s", out)
	}
	// The untouched workload must still be measured.
	if !strings.Contains(string(out), "sieve") {
		t.Errorf("keep-going did not complete the rest of the suite:\n%.900s", out)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema int `json:"schema"`
		Suite  struct {
			Programs []struct {
				Name     string          `json:"name"`
				BRMError json.RawMessage `json:"brm_error"`
			} `json:"programs"`
		} `json:"suite"`
		Errors []struct {
			Workload string `json:"workload"`
			Machine  string `json:"machine"`
			Kind     string `json:"kind"`
			Trap     struct {
				Kind string `json:"kind"`
				Fn   string `json:"fn"`
			} `json:"trap"`
		} `json:"errors"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%.400s", err, raw)
	}
	if rep.Schema != exp.ReportSchemaVersion {
		t.Errorf("schema = %d, want %d", rep.Schema, exp.ReportSchemaVersion)
	}
	if len(rep.Errors) != 1 {
		t.Fatalf("errors = %d, want exactly the injected cell:\n%s", len(rep.Errors), raw)
	}
	e := rep.Errors[0]
	if e.Workload != "wc" || e.Machine != "BRM" || e.Kind != "injected" || e.Trap.Kind != "injected" {
		t.Errorf("error object = %+v, want wc/BRM injected with trap context", e)
	}
	// Exactly the faulted cell is marked; the other cells carry stats.
	for _, p := range rep.Suite.Programs {
		marked := len(p.BRMError) > 0
		if (p.Name == "wc") != marked {
			t.Errorf("program %s: brm_error present=%v", p.Name, marked)
		}
	}
}

// TestBrbenchTraceAndProfile drives the observability flags end to end:
// -trace must write a valid Chrome trace_event JSON whose spans cover
// the phase/cell/compile/run hierarchy, and -profile must print
// per-program hot-block tables and embed hot_blocks in the v3 report.
func TestBrbenchTraceAndProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	jsonPath := filepath.Join(dir, "bench.json")
	out := runTool(t, "./cmd/brbench",
		"-table1", "-profile", "-workloads", "sieve",
		"-trace", tracePath, "-json", jsonPath)
	if !strings.Contains(out, "Hot blocks: sieve on baseline") ||
		!strings.Contains(out, "Hot blocks: sieve on BRM") {
		t.Errorf("-profile output missing hot-block tables:\n%.900s", out)
	}
	if !strings.Contains(out, "dyn insts") {
		t.Errorf("hot-block table header missing:\n%.900s", out)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("-trace wrote invalid JSON: %v\n%.400s", err, raw)
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"suite", "cell:sieve/baseline", "cell:sieve/BRM", "compile", "run", "oracle"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}

	raw, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Suite struct {
			Programs []struct {
				Name           string `json:"name"`
				BaselineEngine string `json:"baseline_engine"`
				BRMEngine      string `json:"brm_engine"`
				BaselineBlocks []struct {
					Fn       string `json:"fn"`
					DynInsts int64  `json:"dyn_insts"`
				} `json:"baseline_hot_blocks"`
				BRMBlocks []json.RawMessage `json:"brm_hot_blocks"`
			} `json:"programs"`
		} `json:"suite"`
		Pool struct {
			Gets int64 `json:"gets"`
			Puts int64 `json:"puts"`
		} `json:"pool"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%.400s", err, raw)
	}
	if len(rep.Suite.Programs) != 1 {
		t.Fatalf("programs = %d, want 1", len(rep.Suite.Programs))
	}
	p := rep.Suite.Programs[0]
	if p.BaselineEngine != "fused" || p.BRMEngine != "fused" {
		t.Errorf("engines = %q/%q, want fused/fused", p.BaselineEngine, p.BRMEngine)
	}
	if len(p.BaselineBlocks) == 0 || len(p.BRMBlocks) == 0 {
		t.Errorf("hot_blocks missing: baseline %d, brm %d", len(p.BaselineBlocks), len(p.BRMBlocks))
	}
	if rep.Pool.Gets == 0 || rep.Pool.Puts == 0 {
		t.Errorf("pool counters empty: %+v", rep.Pool)
	}
}

// TestBenchTrajectoryParses guards the committed benchmark-trajectory
// artifact: BENCH_emulator.json must stay parseable with the schema the
// benchrecord tool writes, hold at least the pre-PR baseline entry, and
// carry positive throughput for both machine kinds in every entry.
func TestBenchTrajectoryParses(t *testing.T) {
	raw, err := os.ReadFile("BENCH_emulator.json")
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Schema  int    `json:"schema"`
		Tool    string `json:"tool"`
		Entries []struct {
			Commit              string             `json:"commit"`
			Date                string             `json:"date"`
			Benchtime           string             `json:"benchtime"`
			EmulatedInstsPerSec map[string]float64 `json:"emulated_insts_per_sec"`
			Table1WallClockMs   float64            `json:"table1_wall_clock_ms"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("BENCH_emulator.json is invalid: %v", err)
	}
	if f.Schema != 1 {
		t.Errorf("schema = %d, want 1", f.Schema)
	}
	if len(f.Entries) == 0 {
		t.Fatal("no entries")
	}
	for i, e := range f.Entries {
		if e.Commit == "" || e.Date == "" || e.Benchtime == "" {
			t.Errorf("entry %d missing commit/date/benchtime: %+v", i, e)
		}
		for _, kind := range []string{"baseline", "branchreg"} {
			if e.EmulatedInstsPerSec[kind] <= 0 {
				t.Errorf("entry %d: %s throughput = %v", i, kind, e.EmulatedInstsPerSec[kind])
			}
		}
		if e.Table1WallClockMs <= 0 {
			t.Errorf("entry %d: table1 wall clock = %v", i, e.Table1WallClockMs)
		}
	}
}

// TestBenchServeTrajectoryParses guards the committed service-throughput
// trajectory: BENCH_serve.json must stay parseable with the schema
// `benchrecord -serve` writes and carry sane latency and throughput in
// every entry.
func TestBenchServeTrajectoryParses(t *testing.T) {
	raw, err := os.ReadFile("BENCH_serve.json")
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Schema  int    `json:"schema"`
		Tool    string `json:"tool"`
		Entries []struct {
			Commit    string  `json:"commit"`
			Date      string  `json:"date"`
			Clients   int     `json:"clients"`
			Requests  int     `json:"requests"`
			P50Millis float64 `json:"p50_ms"`
			P99Millis float64 `json:"p99_ms"`
			ReqPerSec float64 `json:"req_s"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("BENCH_serve.json is invalid: %v", err)
	}
	if f.Schema != 1 {
		t.Errorf("schema = %d, want 1", f.Schema)
	}
	if len(f.Entries) == 0 {
		t.Fatal("no entries")
	}
	for i, e := range f.Entries {
		if e.Commit == "" || e.Date == "" {
			t.Errorf("entry %d missing commit/date: %+v", i, e)
		}
		if e.Clients <= 0 || e.Requests <= 0 {
			t.Errorf("entry %d: clients/requests = %d/%d", i, e.Clients, e.Requests)
		}
		if e.P50Millis <= 0 || e.P99Millis < e.P50Millis {
			t.Errorf("entry %d: latency percentiles not sane: p50=%v p99=%v", i, e.P50Millis, e.P99Millis)
		}
		if e.ReqPerSec <= 0 {
			t.Errorf("entry %d: throughput = %v req/s", i, e.ReqPerSec)
		}
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", "branch registers saved"},
		{"./examples/strlen", "Figure 4"},
		{"./examples/pipetrace", "Figure 8"},
	}
	for _, c := range cases {
		out := runTool(t, c.dir)
		if !strings.Contains(out, c.want) {
			t.Errorf("%s output missing %q:\n%.400s", c.dir, c.want, out)
		}
	}
}

func TestBrccHexEncodings(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/brcc", "-hex", "-machine", "brm", "testdata/hello.mc")
	if !strings.Contains(out, "00001000:") {
		t.Errorf("hex listing missing addresses:\n%.300s", out)
	}
}
