package branchreg

// Integration tests for the command-line tools, driving them the way a
// user would (via `go run`).

import (
	"os/exec"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		// bremu exits with the program's status; tolerate nonzero exits
		// that still produced output.
		if len(out) == 0 {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
	}
	return string(out)
}

func TestBrccBothMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/brcc", "testdata/strlen.mc")
	if !strings.Contains(out, "baseline machine") || !strings.Contains(out, "branchreg machine") {
		t.Errorf("brcc output missing machines:\n%.400s", out)
	}
	if !strings.Contains(out, "strlen:") {
		t.Errorf("brcc output missing function listing:\n%.400s", out)
	}
	// The BRM listing must show a compare-with-assignment.
	if !strings.Contains(out, "->b[") {
		t.Errorf("brcc BRM listing missing CmpBr notation:\n%.400s", out)
	}
}

func TestBrccIRMode(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/brcc", "-ir", "testdata/loopsum.mc")
	if !strings.Contains(out, "func main") {
		t.Errorf("brcc -ir output:\n%.400s", out)
	}
}

func TestBremuRunsFile(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/bremu", "-machine", "brm", "testdata/hello.mc")
	if !strings.Contains(out, "hello from the branch register machine") {
		t.Errorf("bremu output:\n%.400s", out)
	}
	if !strings.Contains(out, "instructions executed") {
		t.Errorf("bremu stats missing:\n%.400s", out)
	}
}

func TestBremuWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/bremu", "-w", "sieve", "-machine", "baseline")
	if !strings.Contains(out, "primes 1028") {
		t.Errorf("bremu workload output:\n%.400s", out)
	}
}

func TestBrbenchFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/brbench", "-fig5", "-fig6", "-fig7", "-fig8")
	for _, want := range []string{"Figure 5", "Figure 6", "Figure 7", "Figure 8", "branch registers"} {
		if !strings.Contains(out, want) {
			t.Errorf("brbench output missing %q:\n%.600s", want, out)
		}
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", "branch registers saved"},
		{"./examples/strlen", "Figure 4"},
		{"./examples/pipetrace", "Figure 8"},
	}
	for _, c := range cases {
		out := runTool(t, c.dir)
		if !strings.Contains(out, c.want) {
			t.Errorf("%s output missing %q:\n%.400s", c.dir, c.want, out)
		}
	}
}

func TestBrccHexEncodings(t *testing.T) {
	if testing.Short() {
		t.Skip("tool test")
	}
	out := runTool(t, "./cmd/brcc", "-hex", "-machine", "brm", "testdata/hello.mc")
	if !strings.Contains(out, "00001000:") {
		t.Errorf("hex listing missing addresses:\n%.300s", out)
	}
}
