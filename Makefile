# Build and verification entry points. `make check` is the PR gate:
# vet, a generated-code drift check (the emulator's fast loops come from
# one template), plus the full test suite under the race detector — which
# drives the experiment engine's worker pool (suite equality across all
# engine tiers at parallelism 4, cancellation, compile cache
# singleflight) and the four-tier engine differential with race checking
# enabled — plus a short coverage-guided fuzz smoke over the differential
# fuzzers (including fused-vs-fast) and the fault injector (trap or clean
# exit, never a panic), plus the chaos smoke (brserve under a seeded
# fault plan must keep every response byte-correct through engine-tier
# fallback while its breaker demonstrably opens and closes), plus the
# benchmark gate (emulator throughput must
# stay within BENCH_REGRESS percent of the last committed
# BENCH_emulator.json entry — the profiling hooks in the fast loops are
# budgeted, not assumed, cheap).

GO ?= go
FUZZTIME ?= 10s
# 8%: each gate round keeps the best of three benchmark runs, but this
# shared single-CPU container still shows sustained host-contention
# regimes where even the best of a window sits ~8% under a quiet-period
# recording. Real regressions worth gating on (losing fusion, pool or
# cache breakage) cost well over 10%.
BENCH_REGRESS ?= 8.0

.PHONY: all build test vet race fuzz-smoke generate generate-check check bench bench-all bench-gate bench-serve serve-smoke chaos-smoke alloc-gate

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# go test accepts one -fuzz pattern per invocation, so each target gets
# its own short run.
fuzz-smoke:
	$(GO) test ./internal/driver -run='^$$' -fuzz=FuzzDifferentialPrograms -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/driver -run='^$$' -fuzz=FuzzFusedDifferential -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/driver -run='^$$' -fuzz=FuzzAdaptiveDifferential -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/driver -run='^$$' -fuzz=FuzzFaultPlan -fuzztime=$(FUZZTIME)

# The emulator's three specialized loops (fast+profiled, fused, fused+
# profiled) are generated from one template; regenerate after editing
# internal/emu/gen/main.go.
generate:
	$(GO) generate ./internal/emu

# Fail if any generated file drifted from its template (the CI rule).
generate-check:
	$(GO) run ./internal/emu/gen -dir internal/emu -check

check: vet generate-check race alloc-gate fuzz-smoke serve-smoke chaos-smoke bench-gate

# Allocation budgets for the serve hot path (testing.AllocsPerRun).
# These run WITHOUT the race detector: -race instruments allocations and
# would fail honest budgets, so the alloc tests skip themselves under
# race and get this dedicated non-race invocation in the PR gate.
alloc-gate:
	$(GO) test ./internal/serve -run='TestServe.*Allocs'

# Boot brserve on a loopback port, drive a brief differential-verified
# load with brload, and fail on any error, 5xx, or output divergence.
SMOKE_ADDR ?= 127.0.0.1:8399
serve-smoke:
	@$(GO) build -o /tmp/brserve-smoke ./cmd/brserve
	@$(GO) build -o /tmp/brload-smoke ./cmd/brload
	@/tmp/brserve-smoke -addr $(SMOKE_ADDR) & pid=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	/tmp/brload-smoke -url http://$(SMOKE_ADDR) -c 16 -n 76; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -f /tmp/brserve-smoke /tmp/brload-smoke; \
	exit $$rc

# Boot brserve with a seeded chaos plan (every adaptive execution of the
# sieve classes panics, eight panics total), drive a differential
# brload burst, then audit the supervision layer: every response must
# stay byte-correct via fallback, the breaker must open AND close, the
# incident log must show the injected events and zero shadow
# mismatches, and no request may see an unexplained 5xx. The audit also
# checks the flight recorder end to end: at least one fallback-annotated
# request must be retrievable by its X-Request-Id with a span tree
# showing both the panicked tier attempt and the tier that served it
# (brload propagates its own request IDs via -trace-propagate).
CHAOS_ADDR ?= 127.0.0.1:8398
CHAOS_PLAN ?= seed=7,target=sieve,panic-every=1,panic-max=8
chaos-smoke:
	@$(GO) build -o /tmp/brserve-chaos ./cmd/brserve
	@$(GO) build -o /tmp/brload-chaos ./cmd/brload
	@/tmp/brserve-chaos -addr $(CHAOS_ADDR) -chaos "$(CHAOS_PLAN)" \
		-breaker-threshold 3 -breaker-cooldown 250ms -shadow-rate 4 & pid=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://$(CHAOS_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	/tmp/brload-chaos -url http://$(CHAOS_ADDR) -c 16 -n 304 -max-backoff 25ms -trace-propagate -chaos; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -f /tmp/brserve-chaos /tmp/brload-chaos; \
	exit $$rc

# Run the throughput benchmarks at a fixed -benchtime and append an entry
# to BENCH_emulator.json, the committed benchmark-trajectory artifact.
bench:
	$(GO) run ./cmd/benchrecord

# Fail if emulator throughput regressed more than BENCH_REGRESS percent
# against the last committed trajectory entry (remeasures once on a
# suspected regression to absorb scheduler noise).
bench-gate:
	$(GO) run ./cmd/benchrecord -gate -max-regress $(BENCH_REGRESS)

# Measure the brserve service (in-process, shared load generator) and
# append p50/p99 latency + cold/warm saturation req/s + the warm-run
# cache hit rate to BENCH_serve.json, then print the cache-hit
# micro-benchmark with allocation counts.
bench-serve:
	$(GO) run ./cmd/benchrecord -serve
	$(GO) test ./internal/serve -run='^$$' -bench=BenchmarkServeCacheHit -benchmem

# Regenerate the paper's full evaluation as benchmarks with custom metrics.
bench-all:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
