# Build and verification entry points. `make check` is the PR gate:
# vet plus the full test suite under the race detector, which drives the
# experiment engine's worker pool (suite equality, cancellation, compile
# cache singleflight) with race checking enabled, plus a short
# coverage-guided fuzz smoke over the differential fuzzer and the fault
# injector (trap or clean exit, never a panic), plus the benchmark gate
# (emulator throughput must stay within BENCH_REGRESS percent of the last
# committed BENCH_emulator.json entry — the profiling hooks in the fast
# loops are budgeted, not assumed, cheap).

GO ?= go
FUZZTIME ?= 10s
BENCH_REGRESS ?= 3.0

.PHONY: all build test vet race fuzz-smoke check bench bench-all bench-gate

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# go test accepts one -fuzz pattern per invocation, so each target gets
# its own short run.
fuzz-smoke:
	$(GO) test ./internal/driver -run='^$$' -fuzz=FuzzDifferentialPrograms -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/driver -run='^$$' -fuzz=FuzzFaultPlan -fuzztime=$(FUZZTIME)

check: vet race fuzz-smoke bench-gate

# Run the throughput benchmarks at a fixed -benchtime and append an entry
# to BENCH_emulator.json, the committed benchmark-trajectory artifact.
bench:
	$(GO) run ./cmd/benchrecord

# Fail if emulator throughput regressed more than BENCH_REGRESS percent
# against the last committed trajectory entry (remeasures once on a
# suspected regression to absorb scheduler noise).
bench-gate:
	$(GO) run ./cmd/benchrecord -gate -max-regress $(BENCH_REGRESS)

# Regenerate the paper's full evaluation as benchmarks with custom metrics.
bench-all:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
