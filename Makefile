# Build and verification entry points. `make check` is the PR gate:
# vet plus the full test suite under the race detector, which drives the
# experiment engine's worker pool (suite equality, cancellation, compile
# cache singleflight) with race checking enabled.

GO ?= go

.PHONY: all build test vet race check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

# Regenerate the paper's evaluation as benchmarks with custom metrics.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
