// Command fusepairs measures superinstruction fusion opportunity over the
// workload suite: it runs every workload on both machines with a
// BlockProfile attached, reconstructs per-instruction execution counts by
// flow conservation, and prints the dynamically hottest adjacent micro-op
// pairs (straight-line body pairs and op+terminator pairs separately),
// plus the block-length and terminator-class distribution the fused
// engine will see. The fusion selection in internal/emu/gen/main.go
// (pairSel/tripleSel, expanded into internal/emu/fusedtab.go) was chosen
// from this tool's output; DESIGN §10 records the methodology and the
// numbers.
//
// Usage:
//
//	fusepairs [-kind baseline|branchreg|both] [-top 20] [-workloads csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

func main() {
	kindFlag := flag.String("kind", "both", "machine kind: baseline, branchreg or both")
	top := flag.Int("top", 20, "rows per table")
	names := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	flag.Parse()

	var kinds []isa.Kind
	switch *kindFlag {
	case "baseline":
		kinds = []isa.Kind{isa.Baseline}
	case "branchreg":
		kinds = []isa.Kind{isa.BranchReg}
	case "both":
		kinds = []isa.Kind{isa.Baseline, isa.BranchReg}
	default:
		fmt.Fprintf(os.Stderr, "fusepairs: unknown -kind %q\n", *kindFlag)
		os.Exit(2)
	}

	suite := workloads.All()
	if *names != "" {
		var subset []workloads.Workload
		for _, n := range strings.Split(*names, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(n))
			if !ok {
				fmt.Fprintf(os.Stderr, "fusepairs: unknown workload %q\n", n)
				os.Exit(2)
			}
			subset = append(subset, w)
		}
		suite = subset
	}

	o := driver.DefaultOptions()
	for _, kind := range kinds {
		agg := &emu.FuseReport{
			Pairs:     map[[2]string]int64{},
			TermPairs: map[[2]string]int64{},
			Triples:   map[[3]string]int64{},
			Terms:     map[string]int64{},
		}
		for _, w := range suite {
			p, err := driver.Compile(context.Background(), w.FullSource(), kind, o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fusepairs: compile %s/%v: %v\n", w.Name, kind, err)
				os.Exit(1)
			}
			prof := emu.NewBlockProfile(len(p.Text))
			if _, err := driver.Exec(context.Background(), driver.Request{
				Program: p, Input: w.Input, Profile: prof, OutputHint: w.OutputHint}); err != nil {
				fmt.Fprintf(os.Stderr, "fusepairs: run %s/%v: %v\n", w.Name, kind, err)
				os.Exit(1)
			}
			agg.Merge(emu.PairStats(p, prof))
		}

		fmt.Printf("== %v: %d workloads, %d block entries, %d insts in blocks (avg len %.2f) ==\n",
			kind, len(suite), agg.Blocks, agg.Insts, avg(agg.Insts, agg.Blocks))
		fmt.Printf("\nterminator classes (dynamic):\n")
		for _, t := range emu.RankedPairs(wrap(agg.Terms)) {
			fmt.Printf("  %-12s %14d  %5.1f%%\n", t.First, t.Count, pct(t.Count, agg.Blocks))
		}
		fmt.Printf("\nhot body pairs (dynamic adjacencies):\n")
		printPairs(emu.RankedPairs(agg.Pairs), *top, agg.Insts)
		fmt.Printf("\nhot body triples:\n")
		for i, t := range emu.RankedTriples(agg.Triples) {
			if i >= *top {
				break
			}
			fmt.Printf("  %-8s %-8s %-8s %14d  %5.2f%%\n",
				t.Ops[0], t.Ops[1], t.Ops[2], t.Count, pct(t.Count, agg.Insts))
		}
		fmt.Printf("\nhot op+terminator pairs:\n")
		printPairs(emu.RankedPairs(agg.TermPairs), *top, agg.Insts)
		fmt.Println()
	}
}

func printPairs(ps []emu.PairStat, top int, total int64) {
	for i, p := range ps {
		if i >= top {
			break
		}
		fmt.Printf("  %-8s %-8s %14d  %5.2f%%\n", p.First, p.Second, p.Count, pct(p.Count, total))
	}
}

func wrap(m map[string]int64) map[[2]string]int64 {
	out := make(map[[2]string]int64, len(m))
	for k, v := range m {
		out[[2]string{k, ""}] = v
	}
	return out
}

func avg(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
