// brbench regenerates every table and figure of the paper's evaluation:
// Table I (dynamic instructions and data references), the §7 cycle
// estimates and headline ratios, the Figure 5/7 delay tables, the Figure
// 6/8 pipeline action traces, the Figure 9 prefetch-distance histogram,
// the §8/§9 instruction-cache study, and the §9 ablations.
//
// Experiments run concurrently over a bounded worker pool sharing one
// compile cache, so -all compiles each (program, machine, configuration)
// at most once. -json writes the full results as a versioned schema
// suitable for committing as BENCH_<n>.json.
//
// Usage:
//
//	brbench -all
//	brbench -all -json out.json
//	brbench -table1 -cycles -ratios -workloads wc,grep,sieve
//	brbench -fig5 -fig6 -fig7 -fig8 -fig9
//	brbench -cache -ablate -par 4
//
// With -keep-going, failed (workload, machine) cells degrade to typed
// FAIL(<kind>) entries — in the tables and as error objects in the JSON
// report (schema v2) — while the rest of the suite completes; brbench
// then exits non-zero. -inject arms a deterministic fault on one cell
// (see parseInject) to exercise exactly that path:
//
//	brbench -all -keep-going -inject wc/brm/budget@1000 -json out.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"branchreg/internal/emu"
	"branchreg/internal/exp"
	"branchreg/internal/isa"
	"branchreg/internal/obs"
	"branchreg/internal/pipeline"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	table1 := flag.Bool("table1", false, "Table I: dynamic measurements")
	cycles := flag.Bool("cycles", false, "section 7 cycle estimates")
	ratios := flag.Bool("ratios", false, "section 7 headline ratios")
	fig5 := flag.Bool("fig5", false, "Figure 5: unconditional transfer delays")
	fig6 := flag.Bool("fig6", false, "Figure 6: BRM unconditional pipeline trace")
	fig7 := flag.Bool("fig7", false, "Figure 7: conditional transfer delays")
	fig8 := flag.Bool("fig8", false, "Figure 8: BRM conditional pipeline trace")
	fig9 := flag.Bool("fig9", false, "Figure 9: prefetch distance histogram")
	cacheStudy := flag.Bool("cache", false, "sections 8-9 instruction cache study")
	ablate := flag.Bool("ablate", false, "section 9 ablations")
	validate := flag.Bool("validate", false, "cycle model vs dynamic pipeline simulation")
	align := flag.Bool("align", false, "section 9 function-alignment cache study")
	jsonPath := flag.String("json", "", "write results as versioned JSON to this path")
	workloadsFlag := flag.String("workloads", "", "comma-separated workload filter (default: all)")
	par := flag.Int("par", 0, "worker pool size (default: GOMAXPROCS)")
	keepGoing := flag.Bool("keep-going", false,
		"record failed cells as typed errors and finish the suite (exit non-zero)")
	inject := flag.String("inject", "",
		"comma-separated fault injections, each workload/machine/fault[@n]\n"+
			"(machine: baseline|brm; fault: flip|breg|uninit|budget|trap|panic)")
	tracePath := flag.String("trace", "",
		"write a Chrome trace_event JSON of the run to this path\n"+
			"(open in chrome://tracing or https://ui.perfetto.dev)")
	profile := flag.Bool("profile", false,
		"profile suite runs: print per-program hot-block tables and add\n"+
			"hot_blocks to the JSON report")
	metrics := flag.Bool("metrics", false, "print the process metrics registry after the run")
	engine := flag.String("engine", "auto",
		"emulator engine for suite runs: auto|adaptive|fused|fast|instrumented\n"+
			"(auto picks the block-fused loop whenever hooks and faults permit;\n"+
			"adaptive promotes hot programs to a re-fused form at runtime)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile after the run to this path")
	flag.Parse()

	loop, err := parseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	if *all {
		*table1, *cycles, *ratios = true, true, true
		*fig5, *fig6, *fig7, *fig8, *fig9 = true, true, true, true, true
		*cacheStudy, *ablate, *validate, *align = true, true, true, true
	}
	if !(*table1 || *cycles || *ratios || *fig5 || *fig6 || *fig7 || *fig8 || *fig9 ||
		*cacheStudy || *ablate || *validate || *align) {
		flag.PrintDefaults()
		os.Exit(2)
	}

	var names []string
	if *workloadsFlag != "" {
		for _, n := range strings.Split(*workloadsFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	faults, err := parseInjects(*inject)
	if err != nil {
		fatal(err)
	}
	if faults != nil && (loop == emu.LoopFused || loop == emu.LoopFast || loop == emu.LoopAdaptive) {
		fatal(fmt.Errorf("-inject requires -engine auto or instrumented: the fast-path engines reject fault plans"))
	}

	spec := exp.AllSpec{
		Suite:      *table1 || *cycles || *ratios || *fig9,
		CacheStudy: *cacheStudy,
		Ablations:  *ablate,
		Validate:   *validate,
		Align:      *align,
		Workloads:  names,
		KeepGoing:  *keepGoing,
		Profile:    *profile,
		Faults:     faults,
		Loop:       loop,
	}

	// stopProfiles flushes -cpuprofile/-memprofile output; called both on
	// the normal return path (deferred) and before the keep-going
	// non-zero exit, which bypasses defers via os.Exit.
	stopProfiles := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memprofile != "" {
		prev := stopProfiles
		stopProfiles = func() {
			prev()
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}
	}
	defer stopProfiles()

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}

	var mu sync.Mutex
	lastLine := map[string]int{}
	runner := &exp.Runner{
		Parallelism: *par,
		Tracer:      tracer,
		Progress: func(phase string, done, total int) {
			// Report at ~10% strides so parallel runs stay readable.
			stride := total / 10
			if stride == 0 {
				stride = 1
			}
			mu.Lock()
			defer mu.Unlock()
			if done != total && done < lastLine[phase]+stride {
				return
			}
			lastLine[phase] = done
			fmt.Fprintf(os.Stderr, "brbench: %s: %d/%d jobs\n", phase, done, total)
		},
	}

	start := time.Now()
	res, err := runner.RunAll(context.Background(), spec)
	if err != nil {
		fatal(err)
	}
	for _, ph := range res.Phases {
		fmt.Fprintf(os.Stderr, "brbench: %-28s %8dms\n", ph.Name, ph.Millis)
	}
	fmt.Fprintf(os.Stderr, "brbench: total %dms on %d workers, compile cache: %d compilations, %d hits\n",
		time.Since(start).Milliseconds(), res.Parallelism,
		res.CompileCache.Misses, res.CompileCache.Hits)

	// With -keep-going a whole phase may have failed; its section is
	// simply absent rather than a crash.
	if *table1 && res.Suite != nil {
		fmt.Println(res.Suite.Table1())
	}
	if *cycles && res.Suite != nil {
		fmt.Println(res.Suite.CycleTable([]int{3, 4, 5}))
	}
	if *ratios && res.Suite != nil {
		fmt.Println(res.Suite.RatiosTable())
	}
	if *fig5 {
		fmt.Println(pipeline.FormatDelayTables(
			"Figure 5: pipeline delays for unconditional transfers of control",
			pipeline.Figure5([]int{3, 4, 5})))
		fmt.Println(pipeline.FormatTrace("Figure 5a trace (no delayed branch, 3 stages)",
			pipeline.Figure5aTrace()))
		fmt.Println(pipeline.FormatTrace("Figure 5b trace (delayed branch, 3 stages)",
			pipeline.Figure5bTrace()))
	}
	if *fig6 {
		fmt.Println(pipeline.FormatTrace(
			"Figure 6: pipeline actions, BRM unconditional transfer", pipeline.Figure6()))
	}
	if *fig7 {
		fmt.Println(pipeline.FormatDelayTables(
			"Figure 7: pipeline delays for conditional transfers of control",
			pipeline.Figure7([]int{3, 4, 5})))
	}
	if *fig8 {
		fmt.Println(pipeline.FormatTrace(
			"Figure 8: pipeline actions, BRM conditional transfer", pipeline.Figure8()))
	}
	if *profile && res.Suite != nil {
		fmt.Println(res.Suite.HotBlockTables())
	}
	if *fig9 && res.Suite != nil {
		fmt.Printf("Figure 9: the target address must be calculated at least %d instructions\n"+
			"before the transfer to avoid a pipeline delay (3 stages, 1-cycle cache).\n\n",
			pipeline.MinCalcDistance(3, 1))
		fmt.Println(res.Suite.DistanceHistogram())
	}
	if *cacheStudy {
		fmt.Println(exp.CacheTable(res.Cache))
	}
	if *ablate {
		fmt.Println(exp.AblationTable(res.Ablations))
	}
	if *validate {
		for _, v := range res.Validation {
			fmt.Println(exp.SimTable(v.Rows, v.Stages))
		}
	}
	if *align {
		fmt.Println(exp.AlignTable(res.Alignment, res.AlignConfig))
	}

	if *jsonPath != "" {
		b, err := res.Report().Encode()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "brbench: wrote %s (%d bytes)\n", *jsonPath, len(b))
	}

	if tracer != nil {
		b, err := tracer.ChromeTrace()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*tracePath, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "brbench: wrote trace %s (%d spans)\n", *tracePath, len(tracer.Spans()))
	}
	if *metrics {
		fmt.Fprint(os.Stderr, obs.Default.Snapshot().Format())
	}

	// Keep-going mode completed the suite around the failures; report
	// them and exit non-zero so CI still notices.
	if len(res.Errors) > 0 {
		for _, e := range res.Errors {
			fmt.Fprintln(os.Stderr, "brbench:", e)
		}
		fmt.Fprintf(os.Stderr, "brbench: %d cell(s) failed\n", len(res.Errors))
		stopProfiles()
		os.Exit(1)
	}
}

// parseEngine maps the -engine flag to an emulator loop mode.
func parseEngine(s string) (emu.LoopMode, error) {
	switch s {
	case "auto":
		return emu.LoopAuto, nil
	case "adaptive":
		return emu.LoopAdaptive, nil
	case "fused":
		return emu.LoopFused, nil
	case "fast":
		return emu.LoopFast, nil
	case "instrumented":
		return emu.LoopInstrumented, nil
	}
	return 0, fmt.Errorf("bad -engine %q: want auto, adaptive, fused, fast or instrumented", s)
}

// parseInjects parses the -inject flag: a comma-separated list of
// workload/machine/fault[@n] triples, each arming one deterministic
// fault on one suite cell. n is the instruction rank the fault fires at
// (default 1000). Faults: flip (corrupt a data word), breg (scramble a
// branch register's target), uninit (invalidate a branch register),
// budget (truncate the step budget to n), trap (force an injected trap),
// panic (panic the emulator — exercises the runner's recover path).
func parseInjects(s string) (map[string]*emu.FaultPlan, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]*emu.FaultPlan{}
	for _, one := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(one), "/")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -inject %q: want workload/machine/fault[@n]", one)
		}
		workload := parts[0]
		var kind isa.Kind
		switch strings.ToLower(parts[1]) {
		case "baseline":
			kind = isa.Baseline
		case "brm":
			kind = isa.BranchReg
		default:
			return nil, fmt.Errorf("bad -inject machine %q: want baseline or brm", parts[1])
		}
		n := int64(1000)
		fault := parts[2]
		if at := strings.IndexByte(fault, '@'); at >= 0 {
			v, err := strconv.ParseInt(fault[at+1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -inject rank %q: %v", fault[at+1:], err)
			}
			n, fault = v, fault[:at]
		}
		op := emu.FaultOp{N: n}
		switch fault {
		case "flip":
			op.Kind = emu.FaultFlipWord
			op.Addr = isa.DataBase
		case "breg":
			op.Kind = emu.FaultCorruptBReg
			op.BReg = 1
		case "uninit":
			op.Kind = emu.FaultCorruptBReg
			op.BReg = 1
			op.Invalidate = true
		case "budget":
			op.Kind = emu.FaultTruncateBudget
			op.Budget = n
		case "trap":
			op.Kind = emu.FaultForceTrap
		case "panic":
			op.Kind = emu.FaultPanic
		default:
			return nil, fmt.Errorf("bad -inject fault %q: want flip|breg|uninit|budget|trap|panic", fault)
		}
		key := exp.FaultKey(workload, kind)
		if out[key] == nil {
			out[key] = &emu.FaultPlan{Seed: 1}
		}
		out[key].Ops = append(out[key].Ops, op)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brbench:", err)
	os.Exit(1)
}
