// brbench regenerates every table and figure of the paper's evaluation:
// Table I (dynamic instructions and data references), the §7 cycle
// estimates and headline ratios, the Figure 5/7 delay tables, the Figure
// 6/8 pipeline action traces, the Figure 9 prefetch-distance histogram,
// the §8/§9 instruction-cache study, and the §9 ablations.
//
// Usage:
//
//	brbench -all
//	brbench -table1 -cycles -ratios
//	brbench -fig5 -fig6 -fig7 -fig8 -fig9
//	brbench -cache -ablate
package main

import (
	"flag"
	"fmt"
	"os"

	"branchreg/internal/cache"
	"branchreg/internal/driver"
	"branchreg/internal/exp"
	"branchreg/internal/pipeline"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	table1 := flag.Bool("table1", false, "Table I: dynamic measurements")
	cycles := flag.Bool("cycles", false, "section 7 cycle estimates")
	ratios := flag.Bool("ratios", false, "section 7 headline ratios")
	fig5 := flag.Bool("fig5", false, "Figure 5: unconditional transfer delays")
	fig6 := flag.Bool("fig6", false, "Figure 6: BRM unconditional pipeline trace")
	fig7 := flag.Bool("fig7", false, "Figure 7: conditional transfer delays")
	fig8 := flag.Bool("fig8", false, "Figure 8: BRM conditional pipeline trace")
	fig9 := flag.Bool("fig9", false, "Figure 9: prefetch distance histogram")
	cacheStudy := flag.Bool("cache", false, "sections 8-9 instruction cache study")
	ablate := flag.Bool("ablate", false, "section 9 ablations")
	validate := flag.Bool("validate", false, "cycle model vs dynamic pipeline simulation")
	align := flag.Bool("align", false, "section 9 function-alignment cache study")
	flag.Parse()

	if *all {
		*table1, *cycles, *ratios = true, true, true
		*fig5, *fig6, *fig7, *fig8, *fig9 = true, true, true, true, true
		*cacheStudy, *ablate, *validate, *align = true, true, true, true
	}
	if !(*table1 || *cycles || *ratios || *fig5 || *fig6 || *fig7 || *fig8 || *fig9 ||
		*cacheStudy || *ablate || *validate || *align) {
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := driver.DefaultOptions()
	var suite *exp.SuiteResult
	needSuite := *table1 || *cycles || *ratios || *fig9
	if needSuite {
		var err error
		fmt.Fprintln(os.Stderr, "running the 19-program suite on both machines...")
		suite, err = exp.RunSuite(opts)
		if err != nil {
			fatal(err)
		}
	}

	if *table1 {
		fmt.Println(suite.Table1())
	}
	if *cycles {
		fmt.Println(suite.CycleTable([]int{3, 4, 5}))
	}
	if *ratios {
		fmt.Println(suite.RatiosTable())
	}
	if *fig5 {
		fmt.Println(pipeline.FormatDelayTables(
			"Figure 5: pipeline delays for unconditional transfers of control",
			pipeline.Figure5([]int{3, 4, 5})))
		fmt.Println(pipeline.FormatTrace("Figure 5a trace (no delayed branch, 3 stages)",
			pipeline.Figure5aTrace()))
		fmt.Println(pipeline.FormatTrace("Figure 5b trace (delayed branch, 3 stages)",
			pipeline.Figure5bTrace()))
	}
	if *fig6 {
		fmt.Println(pipeline.FormatTrace(
			"Figure 6: pipeline actions, BRM unconditional transfer", pipeline.Figure6()))
	}
	if *fig7 {
		fmt.Println(pipeline.FormatDelayTables(
			"Figure 7: pipeline delays for conditional transfers of control",
			pipeline.Figure7([]int{3, 4, 5})))
	}
	if *fig8 {
		fmt.Println(pipeline.FormatTrace(
			"Figure 8: pipeline actions, BRM conditional transfer", pipeline.Figure8()))
	}
	if *fig9 {
		fmt.Printf("Figure 9: the target address must be calculated at least %d instructions\n"+
			"before the transfer to avoid a pipeline delay (3 stages, 1-cycle cache).\n\n",
			pipeline.MinCalcDistance(3, 1))
		fmt.Println(suite.DistanceHistogram())
	}
	if *cacheStudy {
		fmt.Fprintln(os.Stderr, "running the cache study...")
		cfgs := []cache.Config{
			{LineWords: 4, Sets: 32, Assoc: 1, MissPenalty: 8},
			{LineWords: 4, Sets: 16, Assoc: 2, MissPenalty: 8},
			{LineWords: 8, Sets: 16, Assoc: 1, MissPenalty: 8},
			{LineWords: 8, Sets: 8, Assoc: 2, MissPenalty: 8},
			{LineWords: 8, Sets: 32, Assoc: 2, MissPenalty: 8},
			{LineWords: 16, Sets: 16, Assoc: 2, MissPenalty: 8},
			{LineWords: 8, Sets: 64, Assoc: 4, MissPenalty: 8},
		}
		res, err := exp.RunCacheStudy(opts, cfgs, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.CacheTable(res))
	}
	if *ablate {
		fmt.Fprintln(os.Stderr, "running the ablations...")
		res, err := exp.RunAblations(exp.Names())
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.AblationTable(res))
	}
	if *validate {
		fmt.Fprintln(os.Stderr, "validating the cycle model against the simulation...")
		for _, stages := range []int{3, 4} {
			rows, err := exp.RunModelValidation(opts, stages, nil)
			if err != nil {
				fatal(err)
			}
			fmt.Println(exp.SimTable(rows, stages))
		}
	}
	if *align {
		fmt.Fprintln(os.Stderr, "running the alignment study...")
		cfg := cache.Config{LineWords: 8, Sets: 16, Assoc: 2, MissPenalty: 8}
		rows, err := exp.RunAlignmentStudy(cfg, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.AlignTable(rows, cfg))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brbench:", err)
	os.Exit(1)
}
