// brserve is the multi-tenant compile-and-run service: a long-running
// HTTP/JSON front end over the unified driver.Request API (see
// internal/serve for the wire contract and the admission design).
//
// Usage:
//
//	brserve [-addr :8377] [-workers N] [-queue N] [-budget N] [-max-budget N]
//	        [-tenant-budgets name=N,name=N] [-timeout 2m]
//	        [-result-cache-mb N] [-max-body-bytes N]
//	        [-breaker-threshold N] [-breaker-cooldown 30s] [-shadow-rate N]
//	        [-incident-cap N] [-chaos "seed=7,target=sieve,panic-every=1,panic-max=8"]
//	        [-flight-cap N] [-flight-slow 250ms] [-flight-sample N]
//	        [-log-sample N] [-pprof]
//
// Endpoints: POST /v1/run, GET /v1/workloads, GET /v1/incidents,
// GET /v1/debug/requests[/{id}], GET /healthz, GET /metrics (JSON;
// ?format=prom for Prometheus text), GET /version, and — with -pprof —
// /debug/pprof/.
// SIGINT/SIGTERM starts a graceful drain: admission answers 503, queued
// jobs finish, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"branchreg/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	workers := flag.Int("workers", 0, "execution workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "total queued-job capacity (0 = 4x workers)")
	budget := flag.Int64("budget", 0, "default per-request step budget (0 = emulator default)")
	maxBudget := flag.Int64("max-budget", 0, "step-budget cap for every tenant (0 = uncapped)")
	tenants := flag.String("tenant-budgets", "", "per-tenant step-budget caps, name=N,name=N")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job execution timeout")
	resultCacheMB := flag.Int("result-cache-mb", 0, "deterministic result-cache budget in MiB (0 = default 64, negative = off)")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "request-body size limit in bytes, 413 beyond it (0 = default 1 MiB, negative = unlimited)")
	drainWait := flag.Duration("drain", 30*time.Second, "max wait for in-flight jobs on shutdown")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive tier failures that open a circuit breaker (0 = default 3)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "quarantine before a breaker half-opens (0 = default 30s)")
	shadowRate := flag.Int("shadow-rate", 0, "shadow-verify every Nth success per class (0 = default 32, negative = off)")
	incidentCap := flag.Int("incident-cap", 0, "incidents retained for /v1/incidents (0 = default 256)")
	chaosFlag := flag.String("chaos", "", `deterministic chaos plan, e.g. "seed=7,target=sieve,panic-every=1,panic-max=8"`)
	flightCap := flag.Int("flight-cap", 0, "requests retained for /v1/debug/requests (0 = default 256)")
	flightSlow := flag.Duration("flight-slow", 0, "retain requests slower than this (0 = default 250ms, negative = off)")
	flightSample := flag.Int("flight-sample", 0, "retain every Nth request regardless of interest (0 = default 64, negative = off)")
	logSample := flag.Int("log-sample", 0, "log every Nth ordinary request (0 = errors and fallbacks only)")
	pprofFlag := flag.Bool("pprof", false, "mount /debug/pprof/ (exposes process internals)")
	flag.Parse()

	tb, err := parseTenantBudgets(*tenants)
	if err != nil {
		fatal(err)
	}
	chaosPlan, err := serve.ParseChaosPlan(*chaosFlag)
	if err != nil {
		fatal(err)
	}
	if chaosPlan != nil {
		fmt.Fprintf(os.Stderr, "brserve: CHAOS ACTIVE: %+v\n", *chaosPlan)
	}
	s := serve.New(serve.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		DefaultStepBudget: *budget,
		MaxStepBudget:     *maxBudget,
		TenantBudgets:     tb,
		JobTimeout:        *timeout,
		ResultCacheMB:     *resultCacheMB,
		MaxBodyBytes:      *maxBodyBytes,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
		ShadowRate:        *shadowRate,
		IncidentCap:       *incidentCap,
		Chaos:             chaosPlan,
		FlightCap:         *flightCap,
		FlightSlow:        *flightSlow,
		FlightSample:      *flightSample,
		Logger:            slog.New(slog.NewTextHandler(os.Stderr, nil)),
		LogSample:         *logSample,
		EnablePprof:       *pprofFlag,
	})

	hs := &http.Server{Addr: *addr, Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	fmt.Fprintf(os.Stderr, "brserve: listening on %s\n", *addr)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "brserve: %v, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "brserve:", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "brserve:", err)
	}
}

// parseTenantBudgets decodes "alice=1000000,bob=500000".
func parseTenantBudgets(s string) (map[string]int64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int64{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad tenant budget %q (want name=N)", part)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad tenant budget %q: want a positive count", part)
		}
		out[name] = n
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brserve:", err)
	os.Exit(1)
}
