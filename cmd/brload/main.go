// brload drives concurrent load against a running brserve instance: N
// clients sweep the 19-workload suite on both machines, verify every
// response against a local driver.Exec run (the differential oracle),
// and report p50/p99 latency and saturation throughput.
//
// Usage:
//
//	brload [-url http://127.0.0.1:8377] [-c 64] [-n requests] [-tenant t]
//	       [-no-verify] [-json] [-max-backoff 1s] [-trace-propagate]
//	       [-chaos] [-chaos-probe sieve] [-chaos-timeout 30s]
//
// With -trace-propagate, every request carries a brload-generated
// X-Request-Id (so server-side flight records correlate back to this
// run), each response must echo it, and the run ends with a table of
// server-reported per-phase timings (queue/compile/run/total p50 and
// p99) — where the server says the latency went, next to where the
// client measured it.
//
// With -chaos, after the load run brload audits the server's supervision
// layer (see serve.ChaosCheck): panics must have been injected and
// rescued, the circuit breaker must have opened and closed, and the
// incident log must show no shadow mismatches. Use against a brserve
// booted with a -chaos plan.
//
// The exit status is nonzero if any request failed, any response was a
// 5xx, any output diverged from the local oracle, or the -chaos audit
// failed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"branchreg/internal/driver"
	"branchreg/internal/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8377", "brserve base URL")
	clients := flag.Int("c", 64, "concurrent clients")
	requests := flag.Int("n", 0, "total requests (0 = 8x the workload matrix)")
	tenant := flag.String("tenant", "", "tenant name sent with every request")
	noVerify := flag.Bool("no-verify", false, "skip the local differential oracle")
	asJSON := flag.Bool("json", false, "print the result as JSON")
	maxBackoff := flag.Duration("max-backoff", 0, "cap one 429/503 retry sleep (0 = default 1s)")
	tracePropagate := flag.Bool("trace-propagate", false, "send per-request X-Request-Id and report server-side phase timings")
	chaosAudit := flag.Bool("chaos", false, "audit the server's supervision layer after the run")
	chaosProbe := flag.String("chaos-probe", "sieve", "workload probed while waiting for the breaker to close")
	chaosTimeout := flag.Duration("chaos-timeout", 30*time.Second, "max wait for the chaos audit's counters")
	flag.Parse()

	spec := serve.LoadSpec{
		BaseURL:        *url,
		Clients:        *clients,
		Requests:       *requests,
		Tenant:         *tenant,
		MaxBackoff:     *maxBackoff,
		TracePropagate: *tracePropagate,
	}
	if spec.Requests <= 0 {
		spec.Requests = 8 * 19 * 2 // eight sweeps of the workload × machine matrix
	}
	if !*noVerify {
		spec.Verify = serve.NewDifferentialOracle().Verify
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	res, err := serve.RunLoad(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brload:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	} else {
		fmt.Printf("requests   %d (%d clients)\n", res.Requests, spec.Clients)
		fmt.Printf("errors     %d (5xx: %d)\n", res.Errors, res.Server5xx)
		fmt.Printf("retries    429: %d, 503: %d, coalesced %d\n", res.Retries429, res.Retries503, res.Coalesced)
		printCacheLine(ctx, *url, res.Cached)
		fmt.Printf("latency    p50 %s, p99 %s\n",
			time.Duration(res.P50NS), time.Duration(res.P99NS))
		fmt.Printf("throughput %.1f req/s over %s\n",
			res.ReqPerSec, time.Duration(res.WallNS).Round(time.Millisecond))
		if len(res.Phases) > 0 {
			fmt.Printf("server-reported phases (%d samples):\n", res.Requests-res.Errors)
			fmt.Printf("  %-8s %12s %12s\n", "phase", "p50", "p99")
			for _, name := range []string{"queue", "compile", "run", "total"} {
				p, ok := res.Phases[name]
				if !ok {
					continue
				}
				fmt.Printf("  %-8s %12s %12s\n", name, time.Duration(p.P50NS), time.Duration(p.P99NS))
			}
		}
		for _, f := range res.Failures {
			fmt.Printf("  FAIL %s/%s (HTTP %d): %s\n", f.Workload, f.Machine, f.Code, f.Err)
		}
	}
	rc := 0
	if res.Errors > 0 || res.Server5xx > 0 {
		rc = 1
	}
	if *chaosAudit {
		if err := serve.ChaosCheck(ctx, *url, *chaosProbe, nil, *chaosTimeout); err != nil {
			fmt.Fprintln(os.Stderr, "brload:", err)
			rc = 1
		} else {
			fmt.Println("chaos      supervision audit passed (fallback, breaker open/close, no shadow mismatch)")
		}
	}
	os.Exit(rc)
}

// printCacheLine reports the result-cache view of the run: how many of
// this client's responses were served from the server's deterministic
// result cache, and the server's own hit ratio from GET /metrics. A
// server running without a result cache (or an unreachable /metrics)
// just prints the client-side count.
func printCacheLine(ctx context.Context, base string, cached int) {
	line := fmt.Sprintf("rescache   %d responses served from cache", cached)
	if rs := fetchResultCacheStats(ctx, base); rs != nil {
		lookups := rs.Hits + rs.Misses
		ratio := 0.0
		if lookups > 0 {
			ratio = 100 * float64(rs.Hits) / float64(lookups)
		}
		line += fmt.Sprintf("; server hit ratio %.1f%% (%d/%d lookups, %d entries, %d KiB)",
			ratio, rs.Hits, lookups, rs.Entries, rs.Bytes/1024)
	}
	fmt.Println(line)
}

// fetchResultCacheStats decodes the result_cache section of the
// server's /metrics JSON, nil on any failure or when the server runs
// with the cache disabled.
func fetchResultCacheStats(ctx context.Context, base string) *driver.ResultCacheStats {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var reply serve.MetricsReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil
	}
	return reply.ResultCache
}
