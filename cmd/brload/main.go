// brload drives concurrent load against a running brserve instance: N
// clients sweep the 19-workload suite on both machines, verify every
// response against a local driver.Exec run (the differential oracle),
// and report p50/p99 latency and saturation throughput.
//
// Usage:
//
//	brload [-url http://127.0.0.1:8377] [-c 64] [-n requests] [-tenant t]
//	       [-no-verify] [-json] [-max-backoff 1s]
//	       [-chaos] [-chaos-probe sieve] [-chaos-timeout 30s]
//
// With -chaos, after the load run brload audits the server's supervision
// layer (see serve.ChaosCheck): panics must have been injected and
// rescued, the circuit breaker must have opened and closed, and the
// incident log must show no shadow mismatches. Use against a brserve
// booted with a -chaos plan.
//
// The exit status is nonzero if any request failed, any response was a
// 5xx, any output diverged from the local oracle, or the -chaos audit
// failed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"branchreg/internal/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8377", "brserve base URL")
	clients := flag.Int("c", 64, "concurrent clients")
	requests := flag.Int("n", 0, "total requests (0 = 8x the workload matrix)")
	tenant := flag.String("tenant", "", "tenant name sent with every request")
	noVerify := flag.Bool("no-verify", false, "skip the local differential oracle")
	asJSON := flag.Bool("json", false, "print the result as JSON")
	maxBackoff := flag.Duration("max-backoff", 0, "cap one 429/503 retry sleep (0 = default 1s)")
	chaosAudit := flag.Bool("chaos", false, "audit the server's supervision layer after the run")
	chaosProbe := flag.String("chaos-probe", "sieve", "workload probed while waiting for the breaker to close")
	chaosTimeout := flag.Duration("chaos-timeout", 30*time.Second, "max wait for the chaos audit's counters")
	flag.Parse()

	spec := serve.LoadSpec{
		BaseURL:    *url,
		Clients:    *clients,
		Requests:   *requests,
		Tenant:     *tenant,
		MaxBackoff: *maxBackoff,
	}
	if spec.Requests <= 0 {
		spec.Requests = 8 * 19 * 2 // eight sweeps of the workload × machine matrix
	}
	if !*noVerify {
		spec.Verify = serve.NewDifferentialOracle().Verify
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	res, err := serve.RunLoad(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brload:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	} else {
		fmt.Printf("requests   %d (%d clients)\n", res.Requests, spec.Clients)
		fmt.Printf("errors     %d (5xx: %d)\n", res.Errors, res.Server5xx)
		fmt.Printf("retries    429: %d, 503: %d, coalesced %d\n", res.Retries429, res.Retries503, res.Coalesced)
		fmt.Printf("latency    p50 %s, p99 %s\n",
			time.Duration(res.P50NS), time.Duration(res.P99NS))
		fmt.Printf("throughput %.1f req/s over %s\n",
			res.ReqPerSec, time.Duration(res.WallNS).Round(time.Millisecond))
		for _, f := range res.Failures {
			fmt.Printf("  FAIL %s/%s (HTTP %d): %s\n", f.Workload, f.Machine, f.Code, f.Err)
		}
	}
	rc := 0
	if res.Errors > 0 || res.Server5xx > 0 {
		rc = 1
	}
	if *chaosAudit {
		if err := serve.ChaosCheck(ctx, *url, *chaosProbe, nil, *chaosTimeout); err != nil {
			fmt.Fprintln(os.Stderr, "brload:", err)
			rc = 1
		} else {
			fmt.Println("chaos      supervision audit passed (fallback, breaker open/close, no shadow mismatch)")
		}
	}
	os.Exit(rc)
}
