// Command benchrecord runs the repository's throughput benchmarks at a
// fixed -benchtime and appends one entry to BENCH_emulator.json, the
// committed benchmark-trajectory artifact. Each entry records the commit,
// the date, emulated-insts/s per machine kind from BenchmarkEmulator, and
// the Table I suite wall-clock from BenchmarkTable1, so the emulator's
// performance is tracked across PRs instead of anecdotally.
//
// Usage:
//
//	benchrecord [-out BENCH_emulator.json] [-benchtime 3x] [-label text]
//	benchrecord -print   # run and print the entry without writing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Schema versions BENCH_emulator.json; bump on incompatible change.
const Schema = 1

// File is the committed artifact: a version plus the entry trajectory,
// oldest first.
type File struct {
	Schema  int     `json:"schema"`
	Tool    string  `json:"tool"`
	Entries []Entry `json:"entries"`
}

// Entry is one benchmark measurement.
type Entry struct {
	Commit    string `json:"commit"`
	Date      string `json:"date"` // YYYY-MM-DD (UTC)
	Label     string `json:"label,omitempty"`
	Benchtime string `json:"benchtime"`
	// EmulatedInstsPerSec maps machine kind ("baseline", "branchreg") to
	// BenchmarkEmulator's emulated-insts/s metric.
	EmulatedInstsPerSec map[string]float64 `json:"emulated_insts_per_sec"`
	// Table1WallClockMillis is BenchmarkTable1's ns/op (the full Table I
	// suite, compile + emulate) in milliseconds.
	Table1WallClockMillis float64 `json:"table1_wall_clock_ms"`
}

var (
	emuLine    = regexp.MustCompile(`^BenchmarkEmulator/(baseline|branchreg)\S*\s+\d+\s+[\d.]+ ns/op\s+([\d.e+]+) emulated-insts/s`)
	table1Line = regexp.MustCompile(`^BenchmarkTable1\S*\s+\d+\s+([\d.]+) ns/op`)
)

func main() {
	out := flag.String("out", "BENCH_emulator.json", "trajectory file to append to")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	label := flag.String("label", "", "free-text label for this entry")
	printOnly := flag.Bool("print", false, "print the entry as JSON without writing the file")
	flag.Parse()

	entry, err := measure(*benchtime, *label)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	if *printOnly {
		b, _ := json.MarshalIndent(entry, "", "  ")
		fmt.Println(string(b))
		return
	}
	if err := appendEntry(*out, *entry); err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchrecord: appended %s entry to %s (baseline %.0f insts/s, branchreg %.0f insts/s, Table1 %.1f ms)\n",
		entry.Commit, *out, entry.EmulatedInstsPerSec["baseline"],
		entry.EmulatedInstsPerSec["branchreg"], entry.Table1WallClockMillis)
}

func measure(benchtime, label string) (*Entry, error) {
	cmd := exec.Command("go", "test", "-run=^$",
		"-bench=^BenchmarkEmulator$|^BenchmarkTable1$",
		"-benchtime="+benchtime, ".")
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, outBytes)
	}
	entry := &Entry{
		Commit:              gitCommit(),
		Date:                time.Now().UTC().Format("2006-01-02"),
		Label:               label,
		Benchtime:           benchtime,
		EmulatedInstsPerSec: map[string]float64{},
	}
	for _, line := range strings.Split(string(outBytes), "\n") {
		if m := emuLine.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
			entry.EmulatedInstsPerSec[m[1]] = v
		} else if m := table1Line.FindStringSubmatch(line); m != nil {
			ns, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
			entry.Table1WallClockMillis = ns / 1e6
		}
	}
	if len(entry.EmulatedInstsPerSec) != 2 || entry.Table1WallClockMillis == 0 {
		return nil, fmt.Errorf("benchmark output missing expected metrics:\n%s", outBytes)
	}
	return entry, nil
}

// gitCommit returns the short HEAD hash, "-dirty" suffixed when the
// working tree differs, or "unknown" outside a git checkout.
func gitCommit() string {
	rev, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	commit := strings.TrimSpace(string(rev))
	if out, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(out) > 0 {
		commit += "-dirty"
	}
	return commit
}

func appendEntry(path string, e Entry) error {
	f := &File{Schema: Schema, Tool: "benchrecord"}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, f); err != nil {
			return fmt.Errorf("existing %s is unreadable: %w", path, err)
		}
		if f.Schema != Schema {
			return fmt.Errorf("existing %s has schema %d, tool writes %d", path, f.Schema, Schema)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Entries = append(f.Entries, e)
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
