// Command benchrecord runs the repository's throughput benchmarks at a
// fixed -benchtime and appends one entry to BENCH_emulator.json, the
// committed benchmark-trajectory artifact. Each entry records the commit,
// the date, emulated-insts/s per machine kind from BenchmarkEmulator, and
// the Table I suite wall-clock from BenchmarkTable1, so the emulator's
// performance is tracked across PRs instead of anecdotally.
//
// With -gate, benchrecord instead measures and compares against the last
// committed entry, failing (exit 1) when emulated-insts/s dropped more
// than -max-regress percent on any machine kind. A suspected regression
// is re-measured once and the best run per kind kept, so scheduler noise
// does not fail the build. `make bench-gate` (wired into `make check`)
// runs exactly this.
//
// benchrecord manages a second trajectory for the brserve service:
// -serve measures an in-process server under the shared load generator
// (internal/serve) and appends p50/p99 latency and saturation req/s to
// BENCH_serve.json; -serve -gate compares throughput against the last
// committed entry, bootstrapping the file with an initial entry when it
// does not exist yet. Gate output always names the file it gated.
//
// Usage:
//
//	benchrecord [-out BENCH_emulator.json] [-benchtime 3x] [-label text]
//	benchrecord -print   # run and print the entry without writing
//	benchrecord -gate [-max-regress 3.0]
//	benchrecord -serve [-serve-clients 32] [-serve-requests N] [-out BENCH_serve.json]
//	benchrecord -serve -gate [-max-regress 8.0]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Schema versions BENCH_emulator.json; bump on incompatible change.
const Schema = 1

// File is the committed artifact: a version plus the entry trajectory,
// oldest first.
type File struct {
	Schema  int     `json:"schema"`
	Tool    string  `json:"tool"`
	Entries []Entry `json:"entries"`
}

// Entry is one benchmark measurement.
type Entry struct {
	Commit    string `json:"commit"`
	Date      string `json:"date"` // YYYY-MM-DD (UTC)
	Label     string `json:"label,omitempty"`
	Benchtime string `json:"benchtime"`
	// EmulatedInstsPerSec maps machine kind ("baseline", "branchreg") to
	// BenchmarkEmulator's emulated-insts/s metric.
	EmulatedInstsPerSec map[string]float64 `json:"emulated_insts_per_sec"`
	// Table1WallClockMillis is BenchmarkTable1's ns/op (the full Table I
	// suite, compile + emulate) in milliseconds.
	Table1WallClockMillis float64 `json:"table1_wall_clock_ms"`
	// Metrics holds the observability snapshot BenchmarkObservability
	// reports for the warm path: cache-hit-% (compile cache) and
	// pool-reuse-% (emulator memory pool). Absent in entries recorded
	// before the observability layer existed.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

var (
	emuLine    = regexp.MustCompile(`^BenchmarkEmulator/([\w/]+?)(?:-\d+)?\s+\d+\s+[\d.]+ ns/op\s+([\d.e+]+) emulated-insts/s`)
	table1Line = regexp.MustCompile(`^BenchmarkTable1\S*\s+\d+\s+([\d.]+) ns/op`)
)

// emuKinds is the row set BenchmarkEmulator must produce for an entry
// to be recordable: the sieve throughput rows per machine, plus the
// static-fused vs adaptive comparison on the compiler-shaped tinycc
// workload (the adaptive tier's win condition).
var emuKinds = []string{
	"baseline", "branchreg",
	"tinycc/baseline/fused", "tinycc/baseline/adaptive",
	"tinycc/branchreg/fused", "tinycc/branchreg/adaptive",
}

// measureSamples is how many times each recording or gate measurement
// reruns the benchmark binary, keeping the best throughput per machine
// kind. Host contention on a shared single-CPU box only ever slows a
// run down, so the per-kind maximum is the stable statistic; single
// draws at -benchtime 3x swing well over 10% run to run.
const measureSamples = 3

// measureBest runs measure n times and merges the results: per-kind
// maximum emulated-insts/s, minimum Table 1 wall clock, and the
// metrics map from the last sample that produced one.
func measureBest(benchtime, label string, n int) (*Entry, error) {
	best, err := measure(benchtime, label)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		next, err := measure(benchtime, label)
		if err != nil {
			return nil, err
		}
		for kind, v := range next.EmulatedInstsPerSec {
			if v > best.EmulatedInstsPerSec[kind] {
				best.EmulatedInstsPerSec[kind] = v
			}
		}
		if next.Table1WallClockMillis < best.Table1WallClockMillis {
			best.Table1WallClockMillis = next.Table1WallClockMillis
		}
		if next.Metrics != nil {
			best.Metrics = next.Metrics
		}
	}
	return best, nil
}

func main() {
	out := flag.String("out", "BENCH_emulator.json", "trajectory file to append to")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	label := flag.String("label", "", "free-text label for this entry")
	printOnly := flag.Bool("print", false, "print the entry as JSON without writing the file")
	gate := flag.Bool("gate", false,
		"measure and compare against the last committed entry instead of appending;\n"+
			"exit non-zero on a throughput regression beyond -max-regress")
	maxRegress := flag.Float64("max-regress", 3.0,
		"maximum tolerated emulated-insts/s drop in percent (-gate)")
	allowDirty := flag.Bool("allow-dirty", false,
		"let -gate compare against a *-dirty entry (one recorded from an\n"+
			"uncommitted tree); refused by default because such an entry does\n"+
			"not correspond to any commit")
	serveMode := flag.Bool("serve", false,
		"measure the brserve service (in-process, via the shared load\n"+
			"generator) instead of the emulator benchmarks; the trajectory\n"+
			"defaults to BENCH_serve.json")
	serveClients := flag.Int("serve-clients", 32, "concurrent load clients (-serve)")
	serveRequests := flag.Int("serve-requests", 0,
		"total requests per load sample (-serve; 0 = ten workload-matrix sweeps)")
	flag.Parse()

	if *serveMode {
		if *out == "BENCH_emulator.json" {
			*out = "BENCH_serve.json"
		}
		if *serveRequests <= 0 {
			*serveRequests = 10 * 19 * 2
		}
		if err := serveMain(*out, *serveClients, *serveRequests, *label, *printOnly, *gate, *maxRegress, *allowDirty); err != nil {
			fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *gate {
		if err := runGate(*out, *benchtime, *maxRegress, *allowDirty); err != nil {
			fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
			os.Exit(1)
		}
		return
	}

	entry, err := measureBest(*benchtime, *label, measureSamples)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	if *printOnly {
		b, _ := json.MarshalIndent(entry, "", "  ")
		fmt.Println(string(b))
		return
	}
	if err := appendEntry(*out, *entry); err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchrecord: appended %s entry to %s (baseline %.0f insts/s, branchreg %.0f insts/s, Table1 %.1f ms)\n",
		entry.Commit, *out, entry.EmulatedInstsPerSec["baseline"],
		entry.EmulatedInstsPerSec["branchreg"], entry.Table1WallClockMillis)
}

func measure(benchtime, label string) (*Entry, error) {
	cmd := exec.Command("go", "test", "-run=^$",
		"-bench=^BenchmarkEmulator$|^BenchmarkTable1$|^BenchmarkObservability$",
		"-benchtime="+benchtime, ".")
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, outBytes)
	}
	entry := &Entry{
		Commit:              gitCommit(),
		Date:                time.Now().UTC().Format("2006-01-02"),
		Label:               label,
		Benchtime:           benchtime,
		EmulatedInstsPerSec: map[string]float64{},
	}
	for _, line := range strings.Split(string(outBytes), "\n") {
		if m := emuLine.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
			entry.EmulatedInstsPerSec[m[1]] = v
		} else if m := table1Line.FindStringSubmatch(line); m != nil {
			ns, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
			entry.Table1WallClockMillis = ns / 1e6
		} else if strings.HasPrefix(line, "BenchmarkObservability") {
			// Custom metrics print as "<value> <unit>" pairs after ns/op.
			fields := strings.Fields(line)
			for i := 0; i+1 < len(fields); i++ {
				unit := fields[i+1]
				if unit != "cache-hit-%" && unit != "pool-reuse-%" {
					continue
				}
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("parse %q: %w", line, err)
				}
				if entry.Metrics == nil {
					entry.Metrics = map[string]float64{}
				}
				entry.Metrics[unit] = v
			}
		}
	}
	for _, kind := range emuKinds {
		if entry.EmulatedInstsPerSec[kind] <= 0 {
			return nil, fmt.Errorf("benchmark output missing %s emulated-insts/s:\n%s", kind, outBytes)
		}
	}
	if entry.Table1WallClockMillis == 0 {
		return nil, fmt.Errorf("benchmark output missing expected metrics:\n%s", outBytes)
	}
	return entry, nil
}

// runGate measures (best of measureSamples runs) and compares against
// the trajectory's last entry. A suspected regression gets a second
// best-of-N round, keeping the best throughput per kind — a noisy
// window should not fail `make check` — but a reproducible drop beyond
// maxRegress percent does.
// A *-dirty last entry (recorded from an uncommitted tree) is refused
// unless allowDirty: it does not correspond to any commit, so gating
// against it would anchor the budget to an unreproducible measurement.
func runGate(path, benchtime string, maxRegress float64, allowDirty bool) error {
	last, err := lastEntry(path)
	if err != nil {
		return err
	}
	if isDirty(last.Commit) && !allowDirty {
		return fmt.Errorf("refusing to gate against dirty entry %s (%s, %s) in %s: "+
			"re-record it from a clean tree, or pass -allow-dirty to accept it",
			last.Commit, last.Date, last.Benchtime, path)
	}
	fmt.Fprintf(os.Stderr, "benchrecord: gate: comparing against %s entry %s (%s)\n",
		path, last.Commit, last.Date)
	fresh, err := measureBest(benchtime, "", measureSamples)
	if err != nil {
		return err
	}
	bad := gateCheck(last, fresh, maxRegress)
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "benchrecord: gate: suspected regression (%s), remeasuring\n",
			strings.Join(bad, "; "))
		again, err := measureBest(benchtime, "", measureSamples)
		if err != nil {
			return err
		}
		for kind, v := range again.EmulatedInstsPerSec {
			if v > fresh.EmulatedInstsPerSec[kind] {
				fresh.EmulatedInstsPerSec[kind] = v
			}
		}
		bad = gateCheck(last, fresh, maxRegress)
	}
	if len(bad) > 0 {
		return fmt.Errorf("gate failed against %s entry %s:\n  %s",
			path, last.Commit, strings.Join(bad, "\n  "))
	}
	fmt.Fprintf(os.Stderr,
		"benchrecord: "+path+": gate ok vs %s (baseline %.0f insts/s, branchreg %.0f insts/s, budget %.1f%%)\n",
		last.Commit, fresh.EmulatedInstsPerSec["baseline"],
		fresh.EmulatedInstsPerSec["branchreg"], maxRegress)
	return nil
}

// gateCheck returns one violation per machine kind whose fresh
// throughput is more than maxRegress percent below the last committed
// entry's. Kinds the old entry lacks (or recorded as zero) pass: the
// gate compares like with like, it does not require history.
func gateCheck(last, fresh *Entry, maxRegress float64) []string {
	kinds := make([]string, 0, len(last.EmulatedInstsPerSec))
	for kind := range last.EmulatedInstsPerSec {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	var bad []string
	for _, kind := range kinds {
		prev := last.EmulatedInstsPerSec[kind]
		cur, ok := fresh.EmulatedInstsPerSec[kind]
		if prev <= 0 || !ok {
			continue
		}
		drop := 100 * (prev - cur) / prev
		if drop > maxRegress {
			bad = append(bad, fmt.Sprintf("%s: %.0f -> %.0f insts/s (%.1f%% drop, budget %.1f%%)",
				kind, prev, cur, drop, maxRegress))
		}
	}
	return bad
}

// lastEntry reads the trajectory file's newest entry.
func lastEntry(path string) (*Entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("%s has no entries to gate against", path)
	}
	return &f.Entries[len(f.Entries)-1], nil
}

// isDirty reports whether a recorded commit came from a modified tree.
func isDirty(commit string) bool { return strings.HasSuffix(commit, "-dirty") }

// gitCommit returns the short HEAD hash, "-dirty" suffixed when the
// working tree differs, or "unknown" outside a git checkout.
func gitCommit() string {
	rev, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	commit := strings.TrimSpace(string(rev))
	if out, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(out) > 0 {
		commit += "-dirty"
	}
	return commit
}

func appendEntry(path string, e Entry) error {
	f := &File{Schema: Schema, Tool: "benchrecord"}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, f); err != nil {
			return fmt.Errorf("existing %s is unreadable: %w", path, err)
		}
		if f.Schema != Schema {
			return fmt.Errorf("existing %s has schema %d, tool writes %d", path, f.Schema, Schema)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Entries = append(f.Entries, e)
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
