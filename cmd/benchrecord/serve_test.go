package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func serveEntry(reqs float64) *ServeEntry {
	return &ServeEntry{Commit: "abc1234", ReqPerSec: reqs, P50Millis: 10, P99Millis: 50}
}

func TestServeGateCheck(t *testing.T) {
	last := serveEntry(100)
	for _, fresh := range []*ServeEntry{serveEntry(100), serveEntry(120), serveEntry(93)} {
		if bad := serveGateCheck(last, fresh, 8.0); bad != "" {
			t.Errorf("serveGateCheck(%.0f req/s) = %q, want pass", fresh.ReqPerSec, bad)
		}
	}
	if bad := serveGateCheck(last, serveEntry(80), 8.0); !strings.Contains(bad, "20.0% drop") {
		t.Errorf("20%% drop = %q, want a violation naming the drop", bad)
	}
	// No history to compare against: pass, like the emulator gate.
	if bad := serveGateCheck(serveEntry(0), serveEntry(1), 8.0); bad != "" {
		t.Errorf("zero-history gate = %q, want pass", bad)
	}
}

func TestMergeServeBest(t *testing.T) {
	best := &ServeEntry{ReqPerSec: 100, P50Millis: 12, P99Millis: 80, Coalesced: 1, Retries429: 5}
	mergeServeBest(best, &ServeEntry{ReqPerSec: 120, P50Millis: 15, P99Millis: 60, Coalesced: 9, Retries429: 2})
	if best.ReqPerSec != 120 || best.Coalesced != 9 || best.Retries429 != 2 {
		t.Errorf("throughput fields not taken from the faster sample: %+v", best)
	}
	if best.P50Millis != 12 || best.P99Millis != 60 {
		t.Errorf("percentiles are not per-field minima: %+v", best)
	}
	mergeServeBest(best, &ServeEntry{ReqPerSec: 50, P50Millis: 40, P99Millis: 90})
	if best.ReqPerSec != 120 || best.P50Millis != 12 || best.P99Millis != 60 {
		t.Errorf("slower sample overwrote the best: %+v", best)
	}
}

func TestServeTrajectoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")

	// A missing trajectory is os.IsNotExist — the signal runServeGate
	// bootstraps from instead of failing.
	if _, err := lastServeEntry(path); !os.IsNotExist(err) {
		t.Fatalf("missing file error = %v, want os.IsNotExist", err)
	}

	// Appending to the missing file creates it with the schema header.
	if err := appendServeEntry(path, *serveEntry(100)); err != nil {
		t.Fatal(err)
	}
	if err := appendServeEntry(path, *serveEntry(110)); err != nil {
		t.Fatal(err)
	}
	last, err := lastServeEntry(path)
	if err != nil {
		t.Fatal(err)
	}
	if last.ReqPerSec != 110 {
		t.Errorf("last entry req/s = %v, want 110 (the newest)", last.ReqPerSec)
	}

	// A schema mismatch is refused, not silently rewritten.
	if err := os.WriteFile(path, []byte(`{"schema":99,"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendServeEntry(path, *serveEntry(1)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("append over schema 99 = %v, want a schema error", err)
	}
}
