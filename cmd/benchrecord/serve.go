package main

// Service-throughput trajectory: `benchrecord -serve` measures a local
// in-process brserve instance under the shared load generator and
// appends one entry to BENCH_serve.json — the second committed
// trajectory this tool manages, next to BENCH_emulator.json. With
// -gate it compares saturation req/s against the last committed entry;
// a missing trajectory file records an initial entry instead of
// erroring, so the gate bootstraps itself on first run.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"branchreg/internal/obs"
	"branchreg/internal/serve"
)

// serveMain is the -serve entry point: gate, print, or record.
func serveMain(out string, clients, requests int, label string, printOnly, gate bool, maxRegress float64, allowDirty bool) error {
	if gate {
		return runServeGate(out, clients, requests, maxRegress, allowDirty)
	}
	entry, err := measureServeBest(clients, requests, label, measureSamples)
	if err != nil {
		return err
	}
	if printOnly {
		b, _ := json.MarshalIndent(entry, "", "  ")
		fmt.Println(string(b))
		return nil
	}
	if err := appendServeEntry(out, *entry); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchrecord: appended %s entry to %s (cold %.1f req/s, warm %.1f req/s, hit rate %.2f, p50 %.1f ms)\n",
		entry.Commit, out, entry.ReqPerSec, entry.WarmReqPerSec, entry.CacheHitRate, entry.P50Millis)
	return nil
}

// ServeFile is the committed BENCH_serve.json artifact.
type ServeFile struct {
	Schema  int          `json:"schema"`
	Tool    string       `json:"tool"`
	Entries []ServeEntry `json:"entries"`
}

// ServeEntry is one service-throughput measurement: latency percentiles
// and saturation throughput for a full-suite load run, plus the
// backpressure and coalescing traffic it generated.
type ServeEntry struct {
	Commit     string  `json:"commit"`
	Date       string  `json:"date"` // YYYY-MM-DD (UTC)
	Label      string  `json:"label,omitempty"`
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"`
	P50Millis  float64 `json:"p50_ms"`
	P99Millis  float64 `json:"p99_ms"`
	ReqPerSec  float64 `json:"req_s"`
	Coalesced  int     `json:"coalesced"`
	Retries429 int     `json:"retries_429"`
	// EngineMix counts the verified responses by serving engine tier,
	// so the trajectory records which tier actually carried the load
	// (a throughput number served by fallback tiers is a different
	// result than the same number from the chain head).
	EngineMix map[string]int `json:"engine_mix,omitempty"`
	// Cold-vs-warm split: the fields above describe the first load run
	// against a freshly booted server (cold — the result cache starts
	// empty, though the 10x cell repetition inside one run already
	// produces intra-run hits). The Warm* fields describe a second,
	// identical run against the same server, when every (workload,
	// machine) cell is memoized; CacheHitRate is the fraction of that
	// warm run's responses served from the deterministic result cache.
	WarmReqPerSec float64 `json:"warm_req_s,omitempty"`
	WarmP50Millis float64 `json:"warm_p50_ms,omitempty"`
	CacheHitRate  float64 `json:"cache_hit_rate,omitempty"`
}

// measureServe boots an in-process server on a loopback port, drives
// a cold verified load run (fresh server, empty result cache) and then
// an identical warm run against the same server, and folds both into
// one entry. The warm run answers almost entirely from the result
// cache — its throughput is the memoization headline, and the oracle
// verifying it proves cached responses stay byte-identical.
func measureServe(oracle *serve.DifferentialOracle, clients, requests int, label string) (*ServeEntry, error) {
	s := serve.New(serve.Config{Metrics: obs.NewRegistry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		s.Drain(ctx)
	}()

	spec := serve.LoadSpec{
		BaseURL:  "http://" + ln.Addr().String(),
		Clients:  clients,
		Requests: requests,
		Verify:   oracle.Verify,
		// Keep retry sleeps short: this run measures saturation
		// throughput, and honoring the server's full Retry-After would
		// benchmark the backoff policy instead.
		MaxBackoff: 20 * time.Millisecond,
	}
	cold, err := runLoadChecked(spec)
	if err != nil {
		return nil, fmt.Errorf("cold run: %w", err)
	}
	warm, err := runLoadChecked(spec)
	if err != nil {
		return nil, fmt.Errorf("warm run: %w", err)
	}
	hitRate := 0.0
	if warm.Requests > 0 {
		hitRate = float64(warm.Cached) / float64(warm.Requests)
	}
	return &ServeEntry{
		Commit:        gitCommit(),
		Date:          time.Now().UTC().Format("2006-01-02"),
		Label:         label,
		Clients:       clients,
		Requests:      cold.Requests,
		P50Millis:     float64(cold.P50NS) / 1e6,
		P99Millis:     float64(cold.P99NS) / 1e6,
		ReqPerSec:     cold.ReqPerSec,
		Coalesced:     cold.Coalesced,
		Retries429:    cold.Retries429,
		EngineMix:     cold.Engines,
		WarmReqPerSec: warm.ReqPerSec,
		WarmP50Millis: float64(warm.P50NS) / 1e6,
		CacheHitRate:  hitRate,
	}, nil
}

// runLoadChecked runs one load pass and rejects any failure.
func runLoadChecked(spec serve.LoadSpec) (*serve.LoadResult, error) {
	res, err := serve.RunLoad(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	if res.Errors > 0 || res.Server5xx > 0 {
		return nil, fmt.Errorf("load run failed: %d errors, %d 5xx (first: %+v)",
			res.Errors, res.Server5xx, res.Failures)
	}
	return res, nil
}

// measureServeBest measures n times and keeps the best throughput and
// the lowest percentiles: host contention only ever makes a service
// run look worse, so the per-field best is the stable statistic (the
// same argument measureBest makes for the emulator benchmarks). The
// differential oracle is shared across samples, so its local reference
// runs perturb only the first.
func measureServeBest(clients, requests int, label string, n int) (*ServeEntry, error) {
	oracle := serve.NewDifferentialOracle()
	best, err := measureServe(oracle, clients, requests, label)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		next, err := measureServe(oracle, clients, requests, label)
		if err != nil {
			return nil, err
		}
		mergeServeBest(best, next)
	}
	return best, nil
}

// mergeServeBest folds next's per-field bests into best. The warm-run
// hit rate travels with the best warm throughput: it describes that
// run's traffic, not an independent best.
func mergeServeBest(best, next *ServeEntry) {
	if next.ReqPerSec > best.ReqPerSec {
		best.ReqPerSec = next.ReqPerSec
		best.Coalesced = next.Coalesced
		best.Retries429 = next.Retries429
		best.EngineMix = next.EngineMix
	}
	if next.P50Millis < best.P50Millis {
		best.P50Millis = next.P50Millis
	}
	if next.P99Millis < best.P99Millis {
		best.P99Millis = next.P99Millis
	}
	if next.WarmReqPerSec > best.WarmReqPerSec {
		best.WarmReqPerSec = next.WarmReqPerSec
		best.CacheHitRate = next.CacheHitRate
	}
	if next.WarmP50Millis < best.WarmP50Millis {
		best.WarmP50Millis = next.WarmP50Millis
	}
}

// runServeGate measures and compares saturation req/s against the
// trajectory's last entry. A missing trajectory file is not an error:
// the gate records the initial entry and passes, bootstrapping the
// artifact. A reproducible drop beyond maxRegress percent fails.
func runServeGate(path string, clients, requests int, maxRegress float64, allowDirty bool) error {
	last, err := lastServeEntry(path)
	if os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "benchrecord: %s does not exist yet; recording the initial entry\n", path)
		entry, merr := measureServeBest(clients, requests, "initial", measureSamples)
		if merr != nil {
			return merr
		}
		return appendServeEntry(path, *entry)
	}
	if err != nil {
		return err
	}
	if isDirty(last.Commit) && !allowDirty {
		return fmt.Errorf("refusing to gate against dirty entry %s (%s) in %s: "+
			"re-record it from a clean tree, or pass -allow-dirty to accept it",
			last.Commit, last.Date, path)
	}
	fmt.Fprintf(os.Stderr, "benchrecord: gate: comparing against %s entry %s (%s)\n",
		path, last.Commit, last.Date)
	fresh, err := measureServeBest(clients, requests, "", measureSamples)
	if err != nil {
		return err
	}
	bad := serveGateCheck(last, fresh, maxRegress)
	if bad != "" {
		fmt.Fprintf(os.Stderr, "benchrecord: gate: suspected regression (%s), remeasuring\n", bad)
		again, err := measureServeBest(clients, requests, "", measureSamples)
		if err != nil {
			return err
		}
		mergeServeBest(fresh, again)
		bad = serveGateCheck(last, fresh, maxRegress)
	}
	if bad != "" {
		return fmt.Errorf("gate failed against %s entry %s:\n  %s", path, last.Commit, bad)
	}
	fmt.Fprintf(os.Stderr, "benchrecord: %s: gate ok vs %s (%.1f req/s, p50 %.1f ms, budget %.1f%%)\n",
		path, last.Commit, fresh.ReqPerSec, fresh.P50Millis, maxRegress)
	return nil
}

// serveGateCheck returns a violation description, or "" on pass. Only
// throughput gates: latency percentiles on a shared host are too noisy
// to budget, but saturation req/s (already best-of-N) is the figure of
// merit the trajectory exists to protect.
func serveGateCheck(last, fresh *ServeEntry, maxRegress float64) string {
	if last.ReqPerSec <= 0 {
		return ""
	}
	drop := 100 * (last.ReqPerSec - fresh.ReqPerSec) / last.ReqPerSec
	if drop > maxRegress {
		return fmt.Sprintf("throughput: %.1f -> %.1f req/s (%.1f%% drop, budget %.1f%%)",
			last.ReqPerSec, fresh.ReqPerSec, drop, maxRegress)
	}
	return ""
}

// lastServeEntry reads the newest entry; a missing file surfaces as an
// os.IsNotExist error the caller can bootstrap from.
func lastServeEntry(path string) (*ServeEntry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f ServeFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("%s has no entries to gate against", path)
	}
	return &f.Entries[len(f.Entries)-1], nil
}

// appendServeEntry appends to the trajectory, creating the file (with
// its schema header) when it does not exist yet.
func appendServeEntry(path string, e ServeEntry) error {
	f := &ServeFile{Schema: Schema, Tool: "benchrecord -serve"}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, f); err != nil {
			return fmt.Errorf("existing %s is unreadable: %w", path, err)
		}
		if f.Schema != Schema {
			return fmt.Errorf("existing %s has schema %d, tool writes %d", path, f.Schema, Schema)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Entries = append(f.Entries, e)
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
