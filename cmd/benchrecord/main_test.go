package main

import (
	"strings"
	"testing"
)

func entryWith(baseline, branchreg float64) *Entry {
	return &Entry{
		Commit: "abc1234",
		EmulatedInstsPerSec: map[string]float64{
			"baseline":  baseline,
			"branchreg": branchreg,
		},
	}
}

func TestGateCheckPasses(t *testing.T) {
	last := entryWith(100e6, 90e6)
	for _, fresh := range []*Entry{
		entryWith(100e6, 90e6), // flat
		entryWith(120e6, 95e6), // faster
		entryWith(98e6, 88e6),  // -2% / -2.2%: inside the 3% budget
	} {
		if bad := gateCheck(last, fresh, 3.0); len(bad) != 0 {
			t.Errorf("gateCheck(%v) = %v, want pass", fresh.EmulatedInstsPerSec, bad)
		}
	}
}

func TestGateCheckFailsOnRegression(t *testing.T) {
	last := entryWith(100e6, 90e6)
	bad := gateCheck(last, entryWith(95e6, 90e6), 3.0) // baseline -5%
	if len(bad) != 1 || !strings.Contains(bad[0], "baseline") {
		t.Fatalf("gateCheck = %v, want one baseline violation", bad)
	}
	bad = gateCheck(last, entryWith(90e6, 80e6), 3.0) // both regress
	if len(bad) != 2 {
		t.Fatalf("gateCheck = %v, want two violations", bad)
	}
	// Violations are sorted by kind for deterministic output.
	if !strings.Contains(bad[0], "baseline") || !strings.Contains(bad[1], "branchreg") {
		t.Fatalf("gateCheck order = %v, want baseline then branchreg", bad)
	}
}

func TestGateCheckThreshold(t *testing.T) {
	last := entryWith(100e6, 100e6)
	fresh := entryWith(96e6, 96e6) // exactly 4% down
	if bad := gateCheck(last, fresh, 5.0); len(bad) != 0 {
		t.Errorf("4%% drop under 5%% budget = %v, want pass", bad)
	}
	if bad := gateCheck(last, fresh, 3.0); len(bad) != 2 {
		t.Errorf("4%% drop under 3%% budget = %v, want two violations", bad)
	}
}

func TestGateCheckIgnoresMissingHistory(t *testing.T) {
	// An old entry without a kind (or with a zero) cannot gate that kind.
	last := &Entry{EmulatedInstsPerSec: map[string]float64{"baseline": 0}}
	if bad := gateCheck(last, entryWith(1, 1), 3.0); len(bad) != 0 {
		t.Errorf("zero-history gate = %v, want pass", bad)
	}
}
