// brcc compiles MC source for either of the paper's two machines and
// prints the resulting RTL listing, mirroring the paper's Figures 3 and 4.
//
// Usage:
//
//	brcc [-machine baseline|brm|both] [-ir] [-O0] [-nohoist] [-noreplace] [-nosched] [-bregs N] file.mc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"branchreg/internal/driver"
	"branchreg/internal/isa"
	"branchreg/internal/opt"
)

func main() {
	machine := flag.String("machine", "both", "target: baseline, brm, or both")
	showIR := flag.Bool("ir", false, "print the optimized IR instead of machine code")
	hex := flag.Bool("hex", false, "print the linked program with 32-bit encodings")
	o0 := flag.Bool("O0", false, "disable machine-independent optimizations")
	noHoist := flag.Bool("nohoist", false, "BRM: disable hoisting of target calcs")
	noReplace := flag.Bool("noreplace", false, "BRM: disable noop replacement")
	noSched := flag.Bool("nosched", false, "BRM: disable early calc scheduling")
	bregs := flag.Int("bregs", 8, "BRM: number of branch registers (3..8)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: brcc [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	opts := driver.DefaultOptions()
	if *o0 {
		opts.Opt = opt.None
	}
	opts.BRM.Hoist = !*noHoist
	opts.BRM.ReplaceNoops = !*noReplace
	opts.BRM.Schedule = !*noSched
	opts.BRM.BranchRegs = *bregs

	if *showIR {
		iu, err := driver.Lower(string(src), opts)
		if err != nil {
			fatal(err)
		}
		for _, f := range iu.Funcs {
			fmt.Println(f)
		}
		return
	}

	emit := func(kind isa.Kind) {
		p, err := driver.Compile(context.Background(), string(src), kind, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("==== %s machine (%d instructions) ====\n", kind, len(p.Text))
		if *hex {
			// Linked view with encodings: demonstrates that everything
			// fits the 32-bit formats of the paper's Figures 10 and 11.
			for i, in := range p.Text {
				word, err := isa.Encode(in, kind)
				if err != nil {
					fatal(fmt.Errorf("instruction %d does not encode: %w", i, err))
				}
				fmt.Printf("%08x:  %08x  %s\n", uint32(isa.IndexToAddr(i)), word, in.RTL(kind))
			}
			fmt.Println()
			return
		}
		fmt.Println(p.Listing())
	}
	switch *machine {
	case "baseline":
		emit(isa.Baseline)
	case "brm":
		emit(isa.BranchReg)
	case "both":
		emit(isa.Baseline)
		emit(isa.BranchReg)
	default:
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "brcc:", err)
	os.Exit(1)
}
