// bremu compiles and executes an MC program (or a named Appendix I
// workload) on either machine, printing the program output and the dynamic
// measurements the paper's ease environment collected.
//
// Usage:
//
//	bremu [-machine baseline|brm] [-stats] [-in inputfile] file.mc
//	bremu [-machine baseline|brm] [-stats] -w workloadname
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

func main() {
	machine := flag.String("machine", "brm", "target: baseline or brm")
	stats := flag.Bool("stats", true, "print dynamic statistics")
	inFile := flag.String("in", "", "file supplying program input (default: stdin if piped)")
	workload := flag.String("w", "", "run the named Appendix I workload instead of a file")
	list := flag.Bool("list", false, "list the Appendix I workloads and exit")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-10s %-10s %s\n", w.Name, w.Class, w.Description)
		}
		return
	}

	kind := isa.BranchReg
	if *machine == "baseline" {
		kind = isa.Baseline
	}

	var src, input string
	switch {
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (try: cal cb compact diff grep nroff od sed sort spline tr wc dhrystone matmult puzzle sieve whetstone mincost tinycc)", *workload))
		}
		src, input = w.FullSource(), w.Input
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(b)
		if *inFile != "" {
			ib, err := os.ReadFile(*inFile)
			if err != nil {
				fatal(err)
			}
			input = string(ib)
		} else if fi, _ := os.Stdin.Stat(); fi != nil && fi.Mode()&os.ModeCharDevice == 0 {
			ib, _ := io.ReadAll(os.Stdin)
			input = string(ib)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: bremu [flags] file.mc | bremu -w workload")
		flag.PrintDefaults()
		os.Exit(2)
	}

	res, err := driver.Exec(context.Background(), driver.Request{
		Source: src, Kind: kind, Input: input, Options: driver.DefaultOptions()})
	if err != nil {
		fatal(err)
	}
	os.Stdout.WriteString(res.Output)
	if *stats {
		printStats(kind, &res.Stats)
	}
	os.Exit(int(res.Status))
}

func printStats(kind isa.Kind, s *emu.Stats) {
	fmt.Fprintf(os.Stderr, "\n--- %s machine statistics ---\n", kind)
	fmt.Fprintf(os.Stderr, "instructions executed : %d\n", s.Instructions)
	fmt.Fprintf(os.Stderr, "data memory references: %d (%d loads, %d stores)\n",
		s.DataRefs(), s.Loads, s.Stores)
	fmt.Fprintf(os.Stderr, "transfers of control  : %d (uncond %d, cond %d [taken %d], calls %d, returns %d)\n",
		s.Transfers(), s.UncondJumps, s.CondBranches, s.CondTaken, s.Calls, s.Returns)
	fmt.Fprintf(os.Stderr, "noops executed        : %d\n", s.Noops)
	if kind == isa.BranchReg {
		fmt.Fprintf(os.Stderr, "target addr calcs     : %d\n", s.BrCalcs)
		fmt.Fprintf(os.Stderr, "branch reg moves      : %d\n", s.BrMoves)
		fmt.Fprintf(os.Stderr, "prefetch in time      : %d; late: %d\n", s.PrefetchHit, s.PrefetchMiss)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bremu:", err)
	os.Exit(1)
}
