// Package branchreg is a from-scratch reproduction of Davidson & Whalley,
// "Reducing the Cost of Branches by Using Registers" (ISCA 1990).
//
// The paper proposes an architecture in which every instruction names a
// branch register holding the address of the next instruction to execute;
// branch target addresses are computed by separate instructions that the
// compiler hoists out of loops, and each assignment to a branch register
// prefetches the target instruction into a matching instruction register.
//
// This module contains everything needed to rerun the paper's evaluation:
//
//   - internal/mc, internal/ir, internal/irgen, internal/opt — an MC (mini
//     C) compiler front end, three-address IR, and optimizer;
//   - internal/isa — the two machines' instruction sets, encodings and
//     linker;
//   - internal/codegen — shared code generation plus the baseline RISC
//     (delayed branches) back end;
//   - internal/core — the branch-register machine back end with the
//     paper's §5 optimizations (the contribution);
//   - internal/emu — instruction-level emulators collecting the dynamic
//     measurements;
//   - internal/pipeline, internal/cache — the §6-§9 timing and cache
//     models;
//   - internal/workloads — the 19 Appendix I benchmark programs in MC;
//   - internal/exp — the experiment harness regenerating every table and
//     figure.
//
// The bench harness in bench_test.go regenerates each experiment as a Go
// benchmark; cmd/brbench prints them as tables.
package branchreg
