// cachestudy runs the paper's §8/§9 instruction-cache investigation: the
// branch-register machine's prefetch-on-assignment against a sweep of
// cache organizations (associativity, line size, capacity), measuring
// fetch delays, pollution, and wasted prefetches.
package main

import (
	"context"
	"fmt"
	"log"

	"branchreg/internal/cache"
	"branchreg/internal/driver"
	"branchreg/internal/exp"
)

func main() {
	fmt.Println("Instruction-cache study: prefetching branch targets when their")
	fmt.Println("address is calculated (paper sections 8 and 9).")
	fmt.Println()

	cfgs := []cache.Config{
		// associativity sweep at 1 KB
		{LineWords: 8, Sets: 32, Assoc: 1, MissPenalty: 8},
		{LineWords: 8, Sets: 16, Assoc: 2, MissPenalty: 8},
		{LineWords: 8, Sets: 8, Assoc: 4, MissPenalty: 8},
		// line size sweep at 1 KB, 2-way
		{LineWords: 4, Sets: 32, Assoc: 2, MissPenalty: 8},
		{LineWords: 16, Sets: 8, Assoc: 2, MissPenalty: 8},
		// capacity sweep, 2-way, 8-word lines
		{LineWords: 8, Sets: 4, Assoc: 2, MissPenalty: 8},
		{LineWords: 8, Sets: 64, Assoc: 2, MissPenalty: 8},
	}
	// The Runner fans (config, prefetch-mode, workload) jobs over a
	// worker pool and compiles each workload once, shared by every
	// configuration.
	var runner exp.Runner
	res, err := runner.CacheStudy(context.Background(), driver.DefaultOptions(), cfgs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.CacheTable(res))
	fmt.Println("Reading the table: \"prefetch on\" rows show the benefit of directing")
	fmt.Println("the cache to load a branch target's line when its address is computed;")
	fmt.Println("an associativity of at least two keeps prefetched targets from")
	fmt.Println("displacing the current loop (paper section 9), and pollution counts")
	fmt.Println("the cases where a prefetch displaced a line the program was using.")
}
