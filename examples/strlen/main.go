// strlen reproduces the paper's running example (Figures 2-4): the C
// strlen function compiled for the conventional RISC with delayed branches
// and for the branch-register machine, shown as RTL listings. Compare the
// delay-slot noop in the baseline loop against the hoisted target
// calculations in the preheader on the branch-register machine.
package main

import (
	"context"
	"fmt"
	"log"

	"branchreg/internal/driver"
	"branchreg/internal/isa"
)

// Figure 2: the C function.
const source = `
int strlen(char *s) {
    int n = 0;
    if (s)
        for (; *s; s++)
            n++;
    return n;
}

char text[20] = "branch registers";

int main(void) {
    int len = strlen(text);
    putchar('0' + len / 10);
    putchar('0' + len % 10);
    putchar('\n');
    return 0;
}
`

func main() {
	opts := driver.DefaultOptions()

	fmt.Println("Figure 2: the C function")
	fmt.Print(source)
	fmt.Println()

	base, err := driver.Compile(context.Background(), source, isa.Baseline, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 3: RTLs for the baseline machine (delayed branches)")
	fmt.Println(listing(base, "strlen"))

	brm, err := driver.Compile(context.Background(), source, isa.BranchReg, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 4: RTLs for the branch-register machine")
	fmt.Println(listing(brm, "strlen"))

	for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
		res, err := driver.Exec(context.Background(), driver.Request{Source: source, Kind: kind, Input: "", Options: opts})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: output %q, %d instructions, %d transfers, %d noops\n",
			kind, res.Output, res.Stats.Instructions, res.Stats.Transfers(), res.Stats.Noops)
	}
}

func listing(p *isa.Program, fn string) string {
	for _, f := range p.Funcs {
		if f.Name == fn {
			return f.Listing()
		}
	}
	return "(not found)"
}
