// pipetrace prints the paper's pipeline figures: the delay tables of
// Figures 5 and 7 and the stage-by-stage action traces of Figures 6 and 8,
// showing why the branch-register machine transfers control with no bubble
// on a three-stage pipeline.
package main

import (
	"fmt"

	"branchreg/internal/pipeline"
)

func main() {
	fmt.Println(pipeline.FormatDelayTables(
		"Figure 5: pipeline delays for unconditional transfers (cycles per transfer)",
		pipeline.Figure5([]int{3, 4, 5})))

	fmt.Println(pipeline.FormatTrace(
		"Figure 5a: conventional machine, no delayed branch",
		pipeline.Figure5aTrace()))

	fmt.Println(pipeline.FormatTrace(
		"Figure 5b: baseline machine, one-slot delayed branch",
		pipeline.Figure5bTrace()))

	fmt.Println(pipeline.FormatTrace(
		"Figure 6: branch-register machine, unconditional transfer (no bubble)",
		pipeline.Figure6()))

	fmt.Println(pipeline.FormatDelayTables(
		"Figure 7: pipeline delays for conditional transfers (cycles per transfer)",
		pipeline.Figure7([]int{3, 4, 5})))

	fmt.Println(pipeline.FormatTrace(
		"Figure 8: branch-register machine, conditional transfer (no bubble at 3 stages)",
		pipeline.Figure8()))

	fmt.Printf("Figure 9: a branch target address must be calculated at least %d\n"+
		"instructions before its transfer to hide the one-cycle cache access.\n",
		pipeline.MinCalcDistance(3, 1))
}
