// Quickstart: compile one MC program for both of the paper's machines, run
// it on the emulator, and compare the dynamic measurements — the smallest
// end-to-end tour of the public pipeline (front end → IR → optimizer →
// code generator → emulator).
package main

import (
	"context"
	"fmt"
	"log"

	"branchreg/internal/driver"
	"branchreg/internal/isa"
)

const program = `
int total;

int triangle(int n) {
    int s = 0;
    for (int i = 1; i <= n; i++) s += i;
    return s;
}

int main(void) {
    for (int n = 1; n <= 100; n++) total += triangle(n);
    // print the result in decimal
    int v = total;
    char digits[12];
    int k = 0;
    if (v == 0) { putchar('0'); }
    while (v > 0) { digits[k] = '0' + v % 10; v /= 10; k++; }
    while (k > 0) { k--; putchar(digits[k]); }
    putchar('\n');
    return 0;
}
`

func main() {
	opts := driver.DefaultOptions()
	fmt.Println("compiling and running the same MC program on both machines...")
	fmt.Println()

	for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
		res, err := driver.Exec(context.Background(), driver.Request{Source: program, Kind: kind, Input: "", Options: opts})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s machine ==\n", kind)
		fmt.Printf("program output : %s", res.Output)
		fmt.Printf("instructions   : %d\n", res.Stats.Instructions)
		fmt.Printf("data references: %d\n", res.Stats.DataRefs())
		fmt.Printf("transfers      : %d (cond %d, uncond %d, calls %d, returns %d)\n",
			res.Stats.Transfers(), res.Stats.CondBranches, res.Stats.UncondJumps,
			res.Stats.Calls, res.Stats.Returns)
		fmt.Printf("noops          : %d\n", res.Stats.Noops)
		if kind == isa.BranchReg {
			fmt.Printf("target calcs   : %d (the hoisted calculations the paper is about)\n",
				res.Stats.BrCalcs)
		}
		fmt.Println()
	}

	base, _ := driver.Exec(context.Background(), driver.Request{Source: program, Kind: isa.Baseline, Input: "", Options: opts})
	brm, _ := driver.Exec(context.Background(), driver.Request{Source: program, Kind: isa.BranchReg, Input: "", Options: opts})
	saved := base.Stats.Instructions - brm.Stats.Instructions
	fmt.Printf("branch registers saved %d instructions (%.1f%%) on this program\n",
		saved, 100*float64(saved)/float64(base.Stats.Instructions))
}
