module branchreg

go 1.22
