package branchreg

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark runs the
// experiment and reports the paper-relevant quantities as custom metrics,
// so `go test -bench=. -benchmem` regenerates the entire evaluation.

import (
	"context"
	"testing"

	"branchreg/internal/cache"
	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/exp"
	"branchreg/internal/isa"
	"branchreg/internal/obs"
	"branchreg/internal/pipeline"
	"branchreg/internal/workloads"
)

// benchSuite caches the full-suite result across benchmarks in one run.
var benchSuite *exp.SuiteResult

func suite(b *testing.B) *exp.SuiteResult {
	b.Helper()
	if benchSuite == nil {
		var runner exp.Runner // fresh compile cache per measured suite run
		r, err := runner.Run(context.Background(), exp.Spec{Options: driver.DefaultOptions()})
		if err != nil {
			b.Fatal(err)
		}
		benchSuite = r
	}
	return benchSuite
}

// BenchmarkTable1 regenerates Table I: dynamic instructions and data
// references for both machines over the 19-program suite. Paper: the BRM
// executed 6.8% fewer instructions with 2.0% more data references.
func BenchmarkTable1(b *testing.B) {
	var r *exp.SuiteResult
	for i := 0; i < b.N; i++ {
		benchSuite = nil
		r = suite(b)
	}
	b.ReportMetric(float64(r.BaselineTotal.Instructions), "baseline-insts")
	b.ReportMetric(float64(r.BRMTotal.Instructions), "brm-insts")
	b.ReportMetric(r.InstructionSavings(), "insts-saved-%")
	b.ReportMetric(float64(r.BaselineTotal.DataRefs()), "baseline-refs")
	b.ReportMetric(float64(r.BRMTotal.DataRefs()), "brm-refs")
	b.ReportMetric(r.ExtraDataRefs(), "extra-refs-%")
}

// BenchmarkCycles regenerates the §7 cycle estimates. Paper: 10.6% fewer
// cycles at 3 stages, 12.8% at 4.
func BenchmarkCycles(b *testing.B) {
	r := suite(b)
	var rows []exp.CycleRow
	for i := 0; i < b.N; i++ {
		rows = r.Cycles([]int{3, 4, 5})
	}
	b.ReportMetric(rows[0].SavingsPercent, "savings-3stage-%")
	b.ReportMetric(rows[1].SavingsPercent, "savings-4stage-%")
	b.ReportMetric(rows[2].SavingsPercent, "savings-5stage-%")
}

// BenchmarkRatios regenerates the §7 headline ratios. Paper: ~14% of
// baseline instructions were transfers; over 2 transfers per target calc;
// ~36% of delay-slot noops replaced; ~10 instructions saved per extra data
// reference; 13.86% of transfers delayed by a late calc.
func BenchmarkRatios(b *testing.B) {
	r := suite(b)
	var rt exp.Ratios
	for i := 0; i < b.N; i++ {
		rt = r.ComputeRatios()
	}
	b.ReportMetric(rt.TransferPercent, "transfers-%-of-insts")
	b.ReportMetric(rt.TransfersPerCalc, "transfers-per-calc")
	b.ReportMetric(rt.NoopReplacedPercent, "noops-eliminated-%")
	b.ReportMetric(rt.SavedPerExtraRef, "insts-saved-per-extra-ref")
	b.ReportMetric(rt.DelayedTransferPct, "late-calc-transfers-%")
}

// BenchmarkFig5 regenerates Figure 5's delay table (unconditional
// transfers: N-1 without delayed branches, N-2 with, 0 with branch
// registers).
func BenchmarkFig5(b *testing.B) {
	var rows []pipeline.DelayTable
	for i := 0; i < b.N; i++ {
		rows = pipeline.Figure5([]int{3, 4, 5})
	}
	b.ReportMetric(float64(rows[0].NoDelay), "nodelay-3stage")
	b.ReportMetric(float64(rows[0].Delayed), "delayed-3stage")
	b.ReportMetric(float64(rows[0].BranchRegs), "brm-3stage")
}

// BenchmarkFig6 regenerates Figure 6's pipeline trace: the BRM executes an
// unconditional transfer with zero bubble.
func BenchmarkFig6(b *testing.B) {
	var rows []pipeline.TraceRow
	for i := 0; i < b.N; i++ {
		rows = pipeline.Figure6()
	}
	bubble := rows[1].Execute - rows[0].Execute - 1
	b.ReportMetric(float64(bubble), "uncond-bubble-cycles")
}

// BenchmarkFig7 regenerates Figure 7's delay table (conditional
// transfers: N-1, N-2, N-3).
func BenchmarkFig7(b *testing.B) {
	var rows []pipeline.DelayTable
	for i := 0; i < b.N; i++ {
		rows = pipeline.Figure7([]int{3, 4, 5})
	}
	b.ReportMetric(float64(rows[0].BranchRegs), "brm-cond-3stage")
	b.ReportMetric(float64(rows[1].BranchRegs), "brm-cond-4stage")
}

// BenchmarkFig8 regenerates Figure 8's pipeline trace: the BRM conditional
// transfer also completes without a bubble at three stages.
func BenchmarkFig8(b *testing.B) {
	var rows []pipeline.TraceRow
	for i := 0; i < b.N; i++ {
		rows = pipeline.Figure8()
	}
	bubble := rows[2].Execute - rows[1].Execute - 1
	b.ReportMetric(float64(bubble), "cond-bubble-cycles")
}

// BenchmarkFig9 regenerates Figure 9's measured counterpart: how often the
// two-instruction prefetch distance is met across the suite. Paper
// estimate: 13.86% of transfers delayed.
func BenchmarkFig9(b *testing.B) {
	r := suite(b)
	var latePct float64
	for i := 0; i < b.N; i++ {
		rt := r.ComputeRatios()
		latePct = rt.DelayedTransferPct
	}
	taken := r.BRMTotal.PrefetchHit + r.BRMTotal.PrefetchMiss
	b.ReportMetric(float64(taken), "taken-transfers")
	b.ReportMetric(latePct, "late-calc-%")
	b.ReportMetric(float64(pipeline.PrefetchPenalty(&r.BRMTotal)), "penalty-cycles")
}

// BenchmarkCacheStudy regenerates the §8/§9 cache experiment: fetch delay
// cycles with and without prefetch-on-assignment at the default
// organization.
func BenchmarkCacheStudy(b *testing.B) {
	cfgs := []cache.Config{{LineWords: 8, Sets: 16, Assoc: 2, MissPenalty: 8}}
	var res []exp.CacheResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.RunCacheStudy(driver.DefaultOptions(), cfgs, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	off, on := res[0], res[1]
	b.ReportMetric(float64(off.Stats.DelayCycles), "delay-cycles-noprefetch")
	b.ReportMetric(float64(on.Stats.DelayCycles), "delay-cycles-prefetch")
	b.ReportMetric(float64(on.Stats.Pollution), "pollution-lines")
	b.ReportMetric(float64(on.Stats.PrefetchWaste), "wasted-prefetches")
}

// BenchmarkAblations regenerates the §9 design-alternative study over a
// representative subset: hoisting off, noop replacement off, scheduling
// off, and fewer branch registers.
func BenchmarkAblations(b *testing.B) {
	names := []string{"matmult", "dhrystone", "grep", "wc", "tinycc", "sieve"}
	var res []exp.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.RunAblations(names)
		if err != nil {
			b.Fatal(err)
		}
	}
	byName := map[string]exp.AblationResult{}
	for _, r := range res {
		byName[r.Name] = r
	}
	full := byName["full (8 bregs)"]
	b.ReportMetric(float64(full.Instructions), "full-insts")
	b.ReportMetric(float64(byName["no hoisting"].Instructions), "nohoist-insts")
	b.ReportMetric(float64(byName["no noop replacement"].Instructions), "noreplace-insts")
	b.ReportMetric(float64(byName["3 branch registers"].Instructions), "3bregs-insts")
	b.ReportMetric(float64(byName["no calc scheduling"].Cycles3), "nosched-cycles3")
	b.ReportMetric(float64(full.Cycles3), "full-cycles3")
}

// BenchmarkCompile measures compilation speed for both back ends over the
// whole suite (tooling throughput, not a paper figure).
func BenchmarkCompile(b *testing.B) {
	o := driver.DefaultOptions()
	for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, w := range workloads.All() {
					if _, err := driver.Compile(context.Background(), w.FullSource(), kind, o); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkEmulator measures raw emulation speed (instructions per second)
// on a compute-bound workload. This is the throughput figure tracked in
// BENCH_emulator.json (see `make bench`); under default LoopAuto selection
// it exercises the block-fused loop.
func BenchmarkEmulator(b *testing.B) {
	o := driver.DefaultOptions()
	w, _ := workloads.ByName("sieve")
	for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var insts int64
			for i := 0; i < b.N; i++ {
				res, err := driver.Exec(context.Background(), driver.Request{Source: w.FullSource(), Kind: kind, Input: w.Input, Options: o})
				if err != nil {
					b.Fatal(err)
				}
				insts = res.Stats.Instructions
			}
			b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "emulated-insts/s")
		})
	}

	// The adaptive tier's win condition (ROADMAP): on compiler-shaped
	// workloads a superinstruction vocabulary mined from the program's own
	// pair/triple statistics must beat the static global table. tinycc is
	// that workload; both rows run a precompiled program so they compare
	// dispatch loops, not compile time, and the adaptive row is warmed
	// untimed so it measures the promoted steady state brserve's cached
	// programs reach.
	wt, _ := workloads.ByName("tinycc")
	for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
		p, err := driver.Compile(context.Background(), wt.FullSource(), kind, o)
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range []struct {
			name string
			loop emu.LoopMode
		}{{"fused", emu.LoopFused}, {"adaptive", emu.LoopAdaptive}} {
			req := driver.Request{Program: p, Input: wt.Input, Loop: eng.loop}
			b.Run("tinycc/"+kind.String()+"/"+eng.name, func(b *testing.B) {
				if _, err := driver.Exec(context.Background(), req); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var insts int64
				for i := 0; i < b.N; i++ {
					res, err := driver.Exec(context.Background(), req)
					if err != nil {
						b.Fatal(err)
					}
					insts = res.Stats.Instructions
				}
				b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "emulated-insts/s")
			})
		}
	}
}

// BenchmarkEmulatorInstrumented measures the forced instruction-at-a-time
// Step loop on the same workload — the engine the cache/pipeline studies
// and fault injection pay for. The gap between this and BenchmarkEmulator
// is the predecode win.
func BenchmarkEmulatorInstrumented(b *testing.B) {
	o := driver.DefaultOptions()
	w, _ := workloads.ByName("sieve")
	for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			p, err := driver.Compile(context.Background(), w.FullSource(), kind, o)
			if err != nil {
				b.Fatal(err)
			}
			var insts int64
			for i := 0; i < b.N; i++ {
				res, err := driver.Exec(context.Background(), driver.Request{
					Program: p, Input: w.Input, Loop: emu.LoopInstrumented})
				if err != nil {
					b.Fatal(err)
				}
				insts = res.Stats.Instructions
			}
			b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "emulated-insts/s")
		})
	}
}

// BenchmarkModelValidation compares the paper's aggregate cycle model with
// the per-event pipeline simulation (untaken baseline branches free): the
// model's every-transfer charge is an upper bound on the baseline.
func BenchmarkModelValidation(b *testing.B) {
	var rows []exp.SimRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.RunModelValidation(driver.DefaultOptions(), 3,
			[]string{"sieve", "dhrystone"})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Kind == isa.Baseline && r.Name == "sieve" {
			b.ReportMetric(r.OverchargePct, "baseline-model-excess-%")
			b.ReportMetric(float64(r.SimCycles), "sieve-baseline-sim-cycles")
		}
		if r.Kind == isa.BranchReg && r.Name == "sieve" {
			b.ReportMetric(float64(r.SimCycles), "sieve-brm-sim-cycles")
		}
	}
}

// BenchmarkObservability measures the fully-observed steady state: a
// profiled 3-workload suite on one persistent Runner, so after the first
// iteration every compile is a cache hit and emulator memory comes from
// the pool. Unlike BenchmarkTable1 (fresh Runner per iteration, cold-path
// trajectory), this is the warm path the observability layer reports on:
// cache-hit-% and pool-reuse-% land in BENCH_emulator.json via
// benchrecord.
func BenchmarkObservability(b *testing.B) {
	names := []string{"sieve", "wc", "grep"}
	var runner exp.Runner // shared: warm compile cache, reused pool memory
	hits := obs.Default.Counter("driver.cache.hits")
	misses := obs.Default.Counter("driver.cache.misses")
	h0, m0 := hits.Value(), misses.Value()
	p0 := driver.PoolStatsNow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(context.Background(), exp.Spec{
			Workloads: names, Options: driver.DefaultOptions(), Profile: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if h, m := hits.Value()-h0, misses.Value()-m0; h+m > 0 {
		b.ReportMetric(100*float64(h)/float64(h+m), "cache-hit-%")
	}
	if p := driver.PoolStatsNow().Sub(p0); p.Gets > 0 {
		b.ReportMetric(100*float64(p.Reused())/float64(p.Gets), "pool-reuse-%")
	}
}

// BenchmarkAlignment measures the §9 function-entry alignment suggestion
// on a small cache (a negative result on this suite: alignment slightly
// increases footprint-driven misses).
func BenchmarkAlignment(b *testing.B) {
	cfg := cache.Config{LineWords: 8, Sets: 16, Assoc: 2, MissPenalty: 8}
	var rows []exp.AlignRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.RunAlignmentStudy(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].DelayCycles), "delay-cycles-unaligned")
	b.ReportMetric(float64(rows[1].DelayCycles), "delay-cycles-aligned")
}
