package driver

import (
	"context"
	"strings"
	"testing"

	"branchreg/internal/core"
	"branchreg/internal/irexec"
	"branchreg/internal/isa"
	"branchreg/internal/opt"
)

// programs every machine must agree on, differentially tested against the
// IR reference interpreter.
var diffPrograms = []struct {
	name  string
	src   string
	input string
}{
	{"ret", `int main(void) { return 42; }`, ""},
	{"arith", `int main(void) { int a = 6, b = 7; return a * b % 100 - (a << 2) / 3; }`, ""},
	{"loop", `int main(void) { int s = 0; for (int i = 0; i < 50; i++) s += i; return s % 256; }`, ""},
	{"nested", `
int main(void) {
    int s = 0;
    for (int i = 0; i < 10; i++)
        for (int j = 0; j < 10; j++)
            if ((i + j) % 3 == 0) s++;
    return s;
}`, ""},
	{"calls", `
int add(int a, int b) { return a + b; }
int mul3(int a, int b, int c) { return a * b * c; }
int main(void) { return add(mul3(2, 3, 4), add(5, 6)) % 128; }`, ""},
	{"recursion", `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) { return fib(12) % 256; }`, ""},
	{"manyargs", `
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
    return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
}
int main(void) { return sum8(1, 2, 3, 4, 5, 6, 7, 8) % 256; }`, ""},
	{"globals", `
int counter;
int bump(void) { counter += 3; return counter; }
int main(void) { bump(); bump(); return bump(); }`, ""},
	{"arrays", `
int a[20];
int main(void) {
    for (int i = 0; i < 20; i++) a[i] = i * 3;
    int s = 0;
    for (int i = 0; i < 20; i += 2) s += a[i];
    return s % 256;
}`, ""},
	{"pointers", `
int data[6] = {9, 8, 7, 6, 5, 4};
int sum(int *p, int n) { int s = 0; while (n--) s += *p++; return s; }
int main(void) { return sum(data, 6); }`, ""},
	{"strings", `
int main(void) {
    char *s = "branch registers";
    int n = 0;
    for (; *s; s++) if (*s == 'r') n++;
    return n;
}`, ""},
	{"chars", `
int main(void) {
    char c = 250;
    int wrapped = c < 0;
    c = 'a';
    c += 2;
    return wrapped * 100 + c - 'a';
}`, ""},
	{"io", `
int main(void) {
    int c, n = 0;
    while ((c = getchar()) != -1) { putchar(c + 1); n++; }
    return n;
}`, "abc"},
	{"switch_dense", `
int f(int x) {
    switch (x) {
    case 0: return 5;
    case 1: return 6;
    case 2: return 7;
    case 3: return 8;
    case 4: return 9;
    default: return 1;
    }
}
int main(void) { int s = 0; for (int i = -2; i < 8; i++) s += f(i); return s; }`, ""},
	{"switch_sparse", `
int f(int x) {
    switch (x) {
    case 10: return 1;
    case 200: return 2;
    case 3000: return 3;
    default: return 9;
    }
}
int main(void) { return f(10) + f(200)*10 + f(3000)*100 + f(7)*1000; }`, ""},
	{"floats", `
float poly(float x) { return 1.5 * x * x - 2.0 * x + 0.5; }
int main(void) {
    float s = 0.0;
    for (int i = 0; i < 10; i++) s = s + poly((float)i);
    return (int)s % 256;
}`, ""},
	{"float_cmp", `
int main(void) {
    float a = 1.25, b = 2.5;
    int n = 0;
    if (a < b) n += 1;
    if (a + a == b) n += 2;
    if (b >= 2.5) n += 4;
    while (a < 10.0) { a = a * 2.0; n++; }
    return n;
}`, ""},
	{"bigframe", `
int main(void) {
    int big[600];
    for (int i = 0; i < 600; i++) big[i] = i;
    return (big[599] + big[17]) % 256;
}`, ""},
	{"spillpressure", `
int main(void) {
    int a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7, h = 8;
    int i = 9, j = 10, k = 11, l = 12, m = 13, n = 14, o = 15, p = 16;
    int q = 17, r = 18, s = 19, t = 20;
    int x = 0;
    for (int w = 0; w < 10; w++) {
        x += a + b + c + d + e + f + g + h + i + j;
        x += k + l + m + n + o + p + q + r + s + t;
        a++; b++; c++; d++; e++; f++; g++; h++;
    }
    return x % 256;
}`, ""},
	{"addrtaken", `
void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
int main(void) {
    int x = 3, y = 9;
    swap(&x, &y);
    return x * 10 + y;
}`, ""},
	{"exitpath", `
int main(void) {
    for (int i = 0; ; i++)
        if (i == 7) exit(i);
    return 0;
}`, ""},
	{"breakcont", `
int main(void) {
    int s = 0;
    for (int i = 0; i < 100; i++) {
        if (i % 2) continue;
        if (i > 20) break;
        s += i;
    }
    return s % 256;
}`, ""},
	{"dowhile", `
int main(void) {
    int i = 0, s = 0;
    do { s += i * i; i++; } while (i < 8);
    return s % 256;
}`, ""},
	{"ternary_logic", `
int main(void) {
    int r = 0;
    for (int i = -5; i <= 5; i++)
        r += (i > 0 && i % 2 == 0) ? i : (i < 0 || i == 3) ? 1 : 0;
    return r;
}`, ""},
	{"floatargs", `
float mix(float a, float b, float t) { return a + (b - a) * t; }
int main(void) { return (int)(mix(2.0, 10.0, 0.25) * 10.0); }`, ""},
}

func TestDifferentialExecution(t *testing.T) {
	o := DefaultOptions()
	for _, p := range diffPrograms {
		t.Run(p.name, func(t *testing.T) {
			iu, err := Lower(p.src, o)
			if err != nil {
				t.Fatalf("lower: %v", err)
			}
			refOut, refStatus, err := irexec.RunSource(iu, p.input)
			if err != nil {
				t.Fatalf("irexec: %v", err)
			}
			for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
				res, err := Exec(context.Background(), Request{Source: p.src, Kind: kind, Input: p.input, Options: o})
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if res.Output != refOut || res.Status != refStatus {
					t.Errorf("%v diverges: got (%q, %d), reference (%q, %d)",
						kind, res.Output, res.Status, refOut, refStatus)
				}
			}
		})
	}
}

// The same programs must also agree with optimization disabled and with
// each BRM optimization toggled off (ablation configurations must still be
// correct).
func TestDifferentialAblations(t *testing.T) {
	base := DefaultOptions()
	variants := map[string]Options{
		"noopt":      {Opt: opt.None, BRM: base.BRM},
		"nohoist":    {Opt: base.Opt, BRM: ablate(base.BRM, func(c *coreConfig) { c.Hoist = false })},
		"noreplace":  {Opt: base.Opt, BRM: ablate(base.BRM, func(c *coreConfig) { c.ReplaceNoops = false })},
		"nosched":    {Opt: base.Opt, BRM: ablate(base.BRM, func(c *coreConfig) { c.Schedule = false })},
		"fourbregs":  {Opt: base.Opt, BRM: ablate(base.BRM, func(c *coreConfig) { c.BranchRegs = 4 })},
		"threebregs": {Opt: base.Opt, BRM: ablate(base.BRM, func(c *coreConfig) { c.BranchRegs = 3 })},
	}
	for vname, o := range variants {
		for _, p := range diffPrograms {
			t.Run(vname+"/"+p.name, func(t *testing.T) {
				iu, err := Lower(p.src, o)
				if err != nil {
					t.Fatalf("lower: %v", err)
				}
				refOut, refStatus, err := irexec.RunSource(iu, p.input)
				if err != nil {
					t.Fatalf("irexec: %v", err)
				}
				res, err := Exec(context.Background(), Request{Source: p.src, Kind: isa.BranchReg, Input: p.input, Options: o})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.Output != refOut || res.Status != refStatus {
					t.Errorf("BRM/%s diverges: got (%q, %d), reference (%q, %d)",
						vname, res.Output, res.Status, refOut, refStatus)
				}
			})
		}
	}
}

type coreConfig = core.Config

func ablate(c coreConfig, f func(*coreConfig)) coreConfig {
	f(&c)
	return c
}

func TestBRMSavesInstructions(t *testing.T) {
	src := `
int main(void) {
    int s = 0;
    for (int i = 0; i < 1000; i++)
        for (int j = 0; j < 10; j++)
            if (j & 1) s += j; else s -= 1;
    return s % 256;
}`
	o := DefaultOptions()
	base, err := Exec(context.Background(), Request{Source: src, Kind: isa.Baseline, Input: "", Options: o})
	if err != nil {
		t.Fatal(err)
	}
	brm, err := Exec(context.Background(), Request{Source: src, Kind: isa.BranchReg, Input: "", Options: o})
	if err != nil {
		t.Fatal(err)
	}
	if brm.Stats.Instructions >= base.Stats.Instructions {
		t.Errorf("BRM should execute fewer instructions in loopy code: baseline %d, BRM %d",
			base.Stats.Instructions, brm.Stats.Instructions)
	}
	// Hoisted calcs: target calculations should be far rarer than
	// transfers (paper reports over 2:1 transfers to calcs).
	if brm.Stats.BrCalcs*2 > brm.Stats.Transfers()*3 {
		t.Errorf("too many target calcs: %d calcs vs %d transfers",
			brm.Stats.BrCalcs, brm.Stats.Transfers())
	}
	// Most taken transfers in this loopy program should be prefetched in
	// time.
	if brm.Stats.PrefetchHit < brm.Stats.PrefetchMiss {
		t.Errorf("prefetch distance mostly unsatisfied: hit %d, miss %d",
			brm.Stats.PrefetchHit, brm.Stats.PrefetchMiss)
	}
}

func TestStatsSanity(t *testing.T) {
	src := `
int g;
int work(int n) { g += n; return g; }
int main(void) {
    int s = 0;
    for (int i = 0; i < 10; i++) s = work(s + i);
    return s % 100;
}`
	res, err := Exec(context.Background(), Request{Source: src, Kind: isa.Baseline, Input: "", Options: DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Calls != 10 {
		t.Errorf("calls = %d, want 10", st.Calls)
	}
	if st.Returns != 10 {
		t.Errorf("returns = %d, want 10", st.Returns)
	}
	if st.Instructions == 0 || st.DataRefs() == 0 {
		t.Error("empty stats")
	}
	brm, err := Exec(context.Background(), Request{Source: src, Kind: isa.BranchReg, Input: "", Options: DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if brm.Stats.Calls != 10 {
		t.Errorf("BRM calls = %d, want 10", brm.Stats.Calls)
	}
}

func TestOutputIdentityOnText(t *testing.T) {
	src := `
int main(void) {
    int c;
    while ((c = getchar()) != -1) {
        if (c >= 'a' && c <= 'z') c = c - 'a' + 'A';
        putchar(c);
    }
    return 0;
}`
	input := "the Branch Register Machine, 1990!\n"
	want := strings.ToUpper(input)
	for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
		res, err := Exec(context.Background(), Request{Source: src, Kind: kind, Input: input, Options: DefaultOptions()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != want {
			t.Errorf("%v: output = %q, want %q", kind, res.Output, want)
		}
	}
}
