package driver

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"time"

	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/obs"
)

// Request is the one description of a compile-and-run job that every
// consumer of the driver — the experiment runner, the command-line
// tools, and the brserve service — speaks. Exec and Cache.Exec take a
// Request and return a Result; the older entry points (Run, RunProgram,
// RunProgramContext, RunProgramWith, Cache.Run, Cache.RunFaults) are
// deprecated one-line wrappers over it.
type Request struct {
	// Source is the MC program to compile for Kind. Ignored when Program
	// is set.
	Source string
	// Program short-circuits compilation: a pre-linked program to execute
	// as-is. Linked programs are read-only to the emulator, so one
	// Program may appear in many concurrent Requests.
	Program *isa.Program
	// Kind selects the target machine (isa.Baseline or isa.BranchReg).
	// Ignored when Program is set (the program was already generated for
	// its machine).
	Kind isa.Kind
	// Input is the program's stdin.
	Input string
	// Options configures the compilation pipeline. Ignored when Program
	// is set.
	Options Options
	// Faults is an optional deterministic fault-injection plan, armed on
	// this execution only.
	Faults *emu.FaultPlan
	// Loop selects the emulator engine; the zero value (emu.LoopAuto)
	// picks the block-fused loop whenever hooks and faults permit.
	Loop emu.LoopMode
	// OutputHint pre-sizes the emulator's output buffer to the number of
	// bytes the program is expected to write (0 = no hint). It affects
	// only allocation, never output, so Fingerprint excludes it.
	OutputHint int
	// MaxInstructions bounds the run's instruction count (0 = the
	// emulator's default budget). Exceeding it surfaces as a
	// TrapStepBudget *emu.Trap carrying the limit and the executed
	// count — the sandboxing contract brserve's per-tenant budgets
	// build on.
	MaxInstructions int64
	// Profile, when set, receives the run's flow counts (see
	// emu.BlockProfile). Must be sized for the program's Text; profiling
	// does not force the instrumented engine.
	Profile *emu.BlockProfile
	// PromoteThreshold tunes the adaptive tier's promotion trigger
	// (emu.Machine.PromoteThreshold): 0 means the emulator default,
	// negative disables promotion. Ignored unless Loop is
	// emu.LoopAdaptive.
	PromoteThreshold int64
	// NoCache suppresses the deterministic result cache for this request
	// (see ResultCache): the lookup is skipped and the Result is executed
	// fresh. It cannot affect the Result of a cacheable request — the
	// cache only ever returns what execution would have produced — so
	// Fingerprint deliberately excludes it, exactly like OutputHint.
	NoCache bool
}

// Validate rejects requests the driver cannot honor.
func (r *Request) Validate() error {
	if r.Program == nil {
		if r.Source == "" {
			return fmt.Errorf("driver: request has neither Source nor Program")
		}
		if err := r.Options.Validate(); err != nil {
			return err
		}
	}
	if r.MaxInstructions < 0 {
		return fmt.Errorf("driver: MaxInstructions must be >= 0, got %d", r.MaxInstructions)
	}
	return nil
}

// Fingerprint returns a deterministic encoding of every Request field
// that can affect the Result — source, machine, input, compile options,
// engine selection, step budget, and any armed fault plan. Two Requests
// with equal fingerprints are interchangeable, which is exactly the
// coalescing contract brserve relies on: requests that differ only in
// OutputHint (an allocation hint) share a fingerprint, while requests
// that differ in Loop (engine metadata in the Result) or Faults (trap
// behavior) never do. A Request carrying a Program or Profile pointer
// fingerprints the pointer itself, so such requests only ever coalesce
// with requests sharing the same object.
func (r *Request) Fingerprint() string {
	src := sha256.Sum256([]byte(r.Source))
	in := sha256.Sum256([]byte(r.Input))
	fp := fmt.Sprintf("src=%s|kind=%d|in=%s|%s|loop=%d|max=%d",
		hex.EncodeToString(src[:]), r.Kind, hex.EncodeToString(in[:]),
		r.Options.Fingerprint(), r.Loop, r.MaxInstructions)
	if r.Program != nil {
		fp += fmt.Sprintf("|prog=%p", r.Program)
	}
	if r.Faults != nil {
		fp += fmt.Sprintf("|faults=%+v", *r.Faults)
	}
	if r.Profile != nil {
		fp += fmt.Sprintf("|prof=%p", r.Profile)
	}
	if r.PromoteThreshold != 0 {
		fp += fmt.Sprintf("|pt=%d", r.PromoteThreshold)
	}
	return fp
}

// Timing is where a Result's wall clock went, in nanoseconds. QueueNS
// is zero unless the request passed through an admission queue (brserve
// fills it).
type Timing struct {
	CompileNS int64 `json:"compile_ns"`
	RunNS     int64 `json:"run_ns"`
	QueueNS   int64 `json:"queue_ns,omitempty"`
}

// Exec compiles (unless the Request carries a pre-linked Program) and
// executes one Request. Emulator faults surface as *emu.Trap values
// reachable with errors.As; the Result records which engine ran, its
// fusion behavior, and per-phase timings.
func Exec(ctx context.Context, req Request) (*Result, error) {
	return exec(ctx, req, func(ctx context.Context) (*isa.Program, error) {
		return Compile(ctx, req.Source, req.Kind, req.Options)
	})
}

// Exec is driver.Exec with compilation memoized through the cache:
// concurrent Requests for the same (source, machine, options) block on a
// single compilation. With a ResultCache attached (SetResultCache),
// whole Results of cacheable requests are memoized too: a repeat of an
// already-executed fingerprint returns the stored Result (marked
// Cached) without compiling or running anything. Without one — the
// default — execution is never cached; every Request runs.
func (c *Cache) Exec(ctx context.Context, req Request) (*Result, error) {
	rc := c.results
	cacheable := rc != nil && Cacheable(&req)
	if cacheable && !req.NoCache {
		if res, ok := rc.Get(req.Fingerprint()); ok {
			return res, nil
		}
	}
	res, err := exec(ctx, req, func(ctx context.Context) (*isa.Program, error) {
		return c.Compile(ctx, req.Source, req.Kind, req.Options)
	})
	if err == nil && cacheable {
		rc.Put(req.Fingerprint(), resultClassFrom(ctx), res)
	}
	return res, err
}

// exec is the shared Exec body, parameterized over how a missing
// Program is compiled. When the context carries a request trace (a
// brserve request), the compile and run phases record spans into it;
// outside a traced request the spans are nil and cost nothing.
func exec(ctx context.Context, req Request, compile func(context.Context) (*isa.Program, error)) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	p := req.Program
	var compileNS int64
	if p == nil {
		sp, cctx := obs.StartSpan(ctx, "compile", "driver")
		start := time.Now()
		var err error
		p, err = compile(cctx)
		compileNS = time.Since(start).Nanoseconds()
		if err != nil {
			sp.SetArg("error", err.Error())
			sp.End()
			return nil, err
		}
		sp.End()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp, _ := obs.StartSpan(ctx, "run", "driver")
	res, err := execute(ctx, p, &req)
	if err != nil {
		sp.SetArg("error", err.Error())
		sp.End()
		return nil, err
	}
	sp.SetArg("engine", res.Engine)
	sp.SetArg("instructions", strconv.FormatInt(res.Stats.Instructions, 10))
	sp.End()
	res.Timing.CompileNS = compileNS
	return res, nil
}
