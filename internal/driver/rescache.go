package driver

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Deterministic result memoization. Everything downstream of Exec is a
// pure function of Request.Fingerprint(): the compiler is deterministic,
// the emulator is deterministic, and even an armed FaultPlan replays the
// same trap at the same instruction every time. The paper's core move —
// spend a cheap register to remember a branch decision so the expensive
// penalty is never paid twice — has an exact serving-layer analogue:
// spend bounded memory to remember a request's Result so the expensive
// emulation is never re-run. ResultCache is that memory: a size-aware
// LRU keyed on the fingerprint, consulted by Cache.Exec when attached
// and by brserve's admission path before a request is ever queued.
//
// What is cacheable is deliberately narrow:
//
//   - Only successful Results. Errors (traps included) are not cached:
//     a trap is cheap to reproduce (the emulator stops at the faulting
//     instruction) and the error path carries typed values the cache
//     would have to alias.
//   - Requests carrying a Program or Profile pointer are excluded.
//     Their fingerprints encode the pointer itself (%p), and a
//     long-lived cache could alias a recycled address to a different
//     program; a Profile is also an output parameter a cached Result
//     could not fill.
//   - Fault-plan requests ARE cacheable: the plan is part of the
//     fingerprint and its effect is deterministic, and a plan that
//     traps never produces a successful Result to cache anyway.
//
// A cached entry stores the Result minus per-run state: Timing is
// zeroed (the hit did not compile or run anything) and Cached is set,
// so consumers can tell a memoized Result from a fresh execution.
// Get returns a pointer to the cache's own entry — callers must treat
// it as read-only, which every consumer (serve, guard, the oracle)
// already does for coalesced results.

// Cacheable reports whether a Request's Result may be served from (and
// stored into) a ResultCache. See the package commentary above for why
// Program- and Profile-carrying requests are excluded. NoCache is the
// caller's escape hatch: it suppresses the lookup, not the eligibility,
// so it is not consulted here.
func Cacheable(r *Request) bool {
	return r.Program == nil && r.Profile == nil
}

// rcEntry is one cached result with its accounting: the fingerprint it
// is keyed on, the workload class and engine it was recorded under
// (the invalidation coordinates Quarantine uses), and its byte size.
type rcEntry struct {
	fp     string
	class  string
	engine string
	size   int64
	res    Result
}

// rcEntryOverhead approximates one entry's fixed cost beyond its
// variable-length strings: the struct, the list element, and the map
// slot. Precision does not matter; the budget does.
const rcEntryOverhead = 256

// ResultCacheStats is a snapshot of a ResultCache's traffic and
// occupancy. Hits and Misses count consultations (brserve consults at
// admission and again per executed tier attempt, so one cold request
// can record more than one miss); Evictions counts entries displaced
// by the byte budget, and Invalidated counts entries removed by
// quarantine. Bytes/Entries/MaxBytes describe current occupancy.
type ResultCacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Invalidated int64 `json:"invalidated"`
	Bytes       int64 `json:"bytes"`
	Entries     int64 `json:"entries"`
	MaxBytes    int64 `json:"max_bytes"`
}

// ResultCache is a bounded, size-aware LRU of deterministic Results.
// All methods are safe for concurrent use. The zero value is not
// usable; create with NewResultCache.
type ResultCache struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu          sync.Mutex
	maxBytes    int64
	bytes       int64
	evictions   int64
	invalidated int64
	lru         *list.List // front = most recent; values are *rcEntry
	byFP        map[string]*list.Element
}

// NewResultCache returns a cache bounded to maxBytes of accounted
// result data (entry overhead included). maxBytes <= 0 panics: a cache
// with no budget is a configuration error, not a useful object.
func NewResultCache(maxBytes int64) *ResultCache {
	if maxBytes <= 0 {
		panic("driver: ResultCache needs a positive byte budget")
	}
	return &ResultCache{
		maxBytes: maxBytes,
		lru:      list.New(),
		byFP:     map[string]*list.Element{},
	}
}

// Get returns the cached Result for a fingerprint, promoting the entry
// to most-recently-used. The returned pointer aliases the cache's own
// entry and must be treated as read-only. The miss path allocates
// nothing.
func (rc *ResultCache) Get(fp string) (*Result, bool) {
	rc.mu.Lock()
	el, ok := rc.byFP[fp]
	if !ok {
		rc.mu.Unlock()
		rc.misses.Add(1)
		return nil, false
	}
	rc.lru.MoveToFront(el)
	res := &el.Value.(*rcEntry).res
	rc.mu.Unlock()
	rc.hits.Add(1)
	return res, true
}

// Put stores a successful Result under its fingerprint, evicting
// least-recently-used entries until the byte budget holds. The stored
// copy is sanitized: Timing is zeroed and Cached is set, so a hit is
// self-describing. class and engine become the entry's invalidation
// coordinates (see Invalidate). An entry larger than the whole budget
// is not stored. Storing over an existing fingerprint replaces it.
func (rc *ResultCache) Put(fp, class string, res *Result) {
	e := &rcEntry{fp: fp, class: class, engine: res.Engine, res: *res}
	e.res.Timing = Timing{}
	e.res.Cached = true
	e.size = int64(len(fp)) + int64(len(class)) + int64(len(res.Output)) + rcEntryOverhead

	rc.mu.Lock()
	defer rc.mu.Unlock()
	if e.size > rc.maxBytes {
		return
	}
	if old, ok := rc.byFP[fp]; ok {
		rc.bytes -= old.Value.(*rcEntry).size
		rc.lru.Remove(old)
	}
	rc.byFP[fp] = rc.lru.PushFront(e)
	rc.bytes += e.size
	for rc.bytes > rc.maxBytes {
		back := rc.lru.Back()
		if back == nil {
			break
		}
		rc.removeLocked(back)
		rc.evictions++
	}
}

// removeLocked unlinks one element; rc.mu must be held.
func (rc *ResultCache) removeLocked(el *list.Element) {
	e := el.Value.(*rcEntry)
	delete(rc.byFP, e.fp)
	rc.lru.Remove(el)
	rc.bytes -= e.size
}

// Invalidate removes every entry recorded under the given workload
// class and engine tier, returning how many were dropped. An empty
// tier matches every engine of the class — the blast radius of a full
// class quarantine. This is the guard interplay: when a (class, tier)
// pair is quarantined, its cached results are suspect by the same
// evidence that opened the breaker, and serving them would let a bad
// tier keep answering from beyond the grave.
func (rc *ResultCache) Invalidate(class, tier string) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var dropped int
	for el := rc.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*rcEntry)
		if e.class == class && (tier == "" || e.engine == tier) {
			rc.removeLocked(el)
			dropped++
		}
		el = next
	}
	rc.invalidated += int64(dropped)
	return dropped
}

// Stats returns a snapshot of the cache counters.
func (rc *ResultCache) Stats() ResultCacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ResultCacheStats{
		Hits:        rc.hits.Load(),
		Misses:      rc.misses.Load(),
		Evictions:   rc.evictions,
		Invalidated: rc.invalidated,
		Bytes:       rc.bytes,
		Entries:     int64(rc.lru.Len()),
		MaxBytes:    rc.maxBytes,
	}
}

// resultClassKey carries the workload-class label from a server's exec
// closure down to Cache.Exec's Put, so driver-level entries get the
// same invalidation coordinates as admission-level ones.
type resultClassKey struct{}

// ContextWithResultClass annotates ctx with the workload class a
// Cache.Exec result should be cached under. Without it, results cache
// under the empty class, which Invalidate never matches.
func ContextWithResultClass(ctx context.Context, class string) context.Context {
	return context.WithValue(ctx, resultClassKey{}, class)
}

// resultClassFrom extracts the class annotation ("" when absent).
func resultClassFrom(ctx context.Context) string {
	class, _ := ctx.Value(resultClassKey{}).(string)
	return class
}
