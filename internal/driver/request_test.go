package driver

import (
	"context"
	"errors"
	"testing"

	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

// The Request API contract: Exec reproduces the old entry points
// exactly, the fingerprint separates every request that could produce a
// different Result (the brserve coalescing key), and the per-request
// step budget surfaces as the typed step-budget trap.

func TestExecMatchesDeprecatedWrappers(t *testing.T) {
	w, _ := workloads.ByName("wc")
	o := DefaultOptions()
	ctx := context.Background()

	want, err := Exec(ctx, Request{Source: w.FullSource(), Kind: isa.BranchReg, Input: w.Input, Options: o})
	if err != nil {
		t.Fatal(err)
	}
	if want.Timing.RunNS <= 0 || want.Timing.CompileNS <= 0 {
		t.Errorf("Exec timing not recorded: %+v", want.Timing)
	}

	p, err := Compile(ctx, w.FullSource(), isa.BranchReg, o)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	for name, run := range map[string]func() (*Result, error){
		"Run":               func() (*Result, error) { return Run(ctx, w.FullSource(), isa.BranchReg, w.Input, o) },
		"RunProgram":        func() (*Result, error) { return RunProgram(p, w.Input) },
		"RunProgramContext": func() (*Result, error) { return RunProgramContext(ctx, p, w.Input, nil) },
		"RunProgramWith":    func() (*Result, error) { return RunProgramWith(ctx, p, w.Input, RunConfig{}) },
		"Cache.Run":         func() (*Result, error) { return c.Run(ctx, w.FullSource(), isa.BranchReg, w.Input, o) },
		"Cache.Exec": func() (*Result, error) {
			return c.Exec(ctx, Request{Source: w.FullSource(), Kind: isa.BranchReg, Input: w.Input, Options: o})
		},
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !eqResult(*res, *want) {
			t.Errorf("%s diverged from Exec:\n got: %+v\nwant: %+v", name, res, want)
		}
	}
}

func TestExecValidates(t *testing.T) {
	ctx := context.Background()
	if _, err := Exec(ctx, Request{}); err == nil {
		t.Error("empty request did not fail")
	}
	if _, err := Exec(ctx, Request{Source: "func main() int { return 0; }", MaxInstructions: -1}); err == nil {
		t.Error("negative MaxInstructions did not fail")
	}
	bad := DefaultOptions()
	bad.AlignWords = -1
	if _, err := Exec(ctx, Request{Source: "func main() int { return 0; }", Options: bad}); err == nil {
		t.Error("invalid Options did not fail")
	}
}

func TestExecStepBudgetTrap(t *testing.T) {
	w, _ := workloads.ByName("sieve")
	res, err := Exec(context.Background(), Request{
		Source: w.FullSource(), Kind: isa.BranchReg, Input: w.Input,
		Options: DefaultOptions(), MaxInstructions: 1000,
	})
	if err == nil {
		t.Fatalf("budget 1000 did not trap (ran %d insts)", res.Stats.Instructions)
	}
	var trap *emu.Trap
	if !errors.As(err, &trap) || trap.Kind != emu.TrapStepBudget {
		t.Fatalf("budget error = %v, want a step-budget trap", err)
	}
	if trap.Limit != 1000 || trap.Executed < 1000 {
		t.Errorf("trap context limit=%d executed=%d, want limit 1000 and executed >= limit", trap.Limit, trap.Executed)
	}
}

// TestRequestFingerprintSeparatesResults is the coalescing contract:
// two Requests may share one execution only when their fingerprints are
// equal, so every field that can change the Result must split the
// fingerprint — in particular Loop and Faults, which leave the compiled
// program untouched.
func TestRequestFingerprintSeparatesResults(t *testing.T) {
	base := Request{Source: "func main() int { return 0; }", Kind: isa.BranchReg, Options: DefaultOptions()}
	mutations := map[string]func(*Request){
		"Source":          func(r *Request) { r.Source += " " },
		"Kind":            func(r *Request) { r.Kind = isa.Baseline },
		"Input":           func(r *Request) { r.Input = "x" },
		"Options":         func(r *Request) { r.Options.BRM.BranchRegs = 4 },
		"Loop":            func(r *Request) { r.Loop = emu.LoopInstrumented },
		"Faults":          func(r *Request) { r.Faults = &emu.FaultPlan{Seed: 1, Ops: []emu.FaultOp{{Kind: emu.FaultForceTrap}}} },
		"MaxInstructions": func(r *Request) { r.MaxInstructions = 500 },
		"Profile":         func(r *Request) { r.Profile = emu.NewBlockProfile(4) },
	}
	for name, mutate := range mutations {
		changed := base
		mutate(&changed)
		if changed.Fingerprint() == base.Fingerprint() {
			t.Errorf("Requests differing only in %s share a fingerprint (would coalesce)", name)
		}
	}
	// Two fault plans with different contents must also split.
	a, b := base, base
	a.Faults = &emu.FaultPlan{Seed: 1, Ops: []emu.FaultOp{{Kind: emu.FaultForceTrap, N: 5}}}
	b.Faults = &emu.FaultPlan{Seed: 1, Ops: []emu.FaultOp{{Kind: emu.FaultForceTrap, N: 6}}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("Requests with different fault plans share a fingerprint")
	}
	// OutputHint is an allocation hint, not behavior: it must NOT split
	// the fingerprint, or the server would never coalesce hinted requests.
	hinted := base
	hinted.OutputHint = 4096
	if hinted.Fingerprint() != base.Fingerprint() {
		t.Error("OutputHint split the fingerprint; it cannot affect the Result")
	}
	// Identical requests must coalesce.
	dup := base
	if dup.Fingerprint() != base.Fingerprint() {
		t.Error("identical Requests have different fingerprints")
	}
	// NoCache controls whether the result cache is consulted, not what
	// the execution produces: it must NOT split the fingerprint, or a
	// no_cache request would stop coalescing with its cached twins.
	nc := base
	nc.NoCache = true
	if nc.Fingerprint() != base.Fingerprint() {
		t.Error("NoCache split the fingerprint; it cannot affect the Result")
	}
}

func TestCacheExecSingleCompile(t *testing.T) {
	w, _ := workloads.ByName("wc")
	c := NewCache()
	req := Request{Source: w.FullSource(), Kind: isa.Baseline, Input: w.Input, Options: DefaultOptions()}
	for i := 0; i < 3; i++ {
		if _, err := c.Exec(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("cache stats = %+v, want 1 miss and 2 hits", st)
	}
}
