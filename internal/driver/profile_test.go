package driver

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

// Profiling differential: attaching a BlockProfile must be invisible to
// the program — byte-identical output and identical Stats across the full
// workload suite on both machines — must not knock a run off the fast
// path, and must produce flow counts that conserve (per-instruction
// counts sum to Stats.Instructions) and agree across engines.

func TestProfiledRunsMatchUnprofiled(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential is not short")
	}
	o := DefaultOptions()
	for _, w := range workloads.All() {
		for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
			w, kind := w, kind
			t.Run(fmt.Sprintf("%s/%v", w.Name, kind), func(t *testing.T) {
				t.Parallel()
				p, err := Compile(context.Background(), w.FullSource(), kind, o)
				if err != nil {
					t.Fatal(err)
				}
				plain, err := Exec(context.Background(), Request{Program: p, Input: w.Input})
				if err != nil {
					t.Fatal(err)
				}
				prof := emu.NewBlockProfile(len(p.Text))
				profiled, err := Exec(context.Background(), Request{Program: p, Input: w.Input, Profile: prof})
				if err != nil {
					t.Fatal(err)
				}
				if !eqResult(*plain, *profiled) {
					t.Fatalf("profiling changed the run:\n plain:    %+v\n profiled: %+v", plain, profiled)
				}
				if profiled.Engine != emu.EngineFused {
					t.Fatalf("profiled run left the fused fast path: engine %q", profiled.Engine)
				}
				var sum, taken, notTaken, penalty int64
				for _, c := range prof.Counts() {
					sum += c
				}
				if sum != profiled.Stats.Instructions {
					t.Fatalf("flow conservation broken: counts sum to %d, Stats.Instructions = %d",
						sum, profiled.Stats.Instructions)
				}
				for i := range prof.Taken {
					taken += prof.Taken[i]
					notTaken += prof.NotTaken[i]
					penalty += prof.Penalty[i]
				}
				st := &profiled.Stats
				if kind == isa.Baseline {
					want := st.UncondJumps + st.CondBranches + st.Calls + st.Returns
					if taken+notTaken != want {
						t.Fatalf("branch tallies %d+%d != executed transfers %d", taken, notTaken, want)
					}
					if penalty != 0 {
						t.Fatalf("baseline run accumulated BRM penalty %d", penalty)
					}
				} else {
					if taken != st.PrefetchHit+st.PrefetchMiss {
						t.Fatalf("taken tallies %d != taken transfers %d", taken, st.PrefetchHit+st.PrefetchMiss)
					}
					if notTaken != st.CondBranches-st.CondTaken {
						t.Fatalf("not-taken tallies %d != untaken conditionals %d",
							notTaken, st.CondBranches-st.CondTaken)
					}
					var wantPenalty int64
					for d := 0; d < emu.MinPrefetchDist; d++ {
						wantPenalty += int64(emu.MinPrefetchDist-d) * st.DistHist[d]
					}
					if penalty != wantPenalty {
						t.Fatalf("penalty %d != Figure 9 penalty %d", penalty, wantPenalty)
					}
				}
			})
		}
	}
}

func TestProfileEnginesAgree(t *testing.T) {
	// The fast loop's inlined profile updates and the instrumented loop's
	// profBranch/jumpTo updates must fill identical arrays.
	o := DefaultOptions()
	names := []string{"sieve", "puzzle", "sort"}
	for _, name := range names {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
			p, err := Compile(context.Background(), w.FullSource(), kind, o)
			if err != nil {
				t.Fatal(err)
			}
			fastProf := emu.NewBlockProfile(len(p.Text))
			instProf := emu.NewBlockProfile(len(p.Text))
			if _, err := Exec(context.Background(), Request{Program: p, Input: w.Input,
				Loop: emu.LoopFast, Profile: fastProf}); err != nil {
				t.Fatal(err)
			}
			if _, err := Exec(context.Background(), Request{Program: p, Input: w.Input,
				Loop: emu.LoopInstrumented, Profile: instProf}); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fastProf, instProf) {
				t.Fatalf("%s/%v: engines disagree on the profile", name, kind)
			}
		}
	}
}

func TestEngineRecordedOnAutoFallback(t *testing.T) {
	// Satellite fix: LoopAuto falls back to the instrumented loop when
	// hooks or faults are present — the run must say so.
	w, ok := workloads.ByName("sieve")
	if !ok {
		t.Fatal("no workload sieve")
	}
	p, err := Compile(context.Background(), w.FullSource(), isa.Baseline, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Exec(context.Background(), Request{Program: p, Input: w.Input})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Engine != emu.EngineFused {
		t.Fatalf("plain auto run: engine %q, want %q", auto.Engine, emu.EngineFused)
	}

	m, err := emu.New(p, w.Input)
	if err != nil {
		t.Fatal(err)
	}
	m.Hooks.Fetch = func(addr int32) {}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Engine() != emu.EngineInstrumented {
		t.Fatalf("hooked auto run: engine %q, want %q", m.Engine(), emu.EngineInstrumented)
	}
}
