package driver

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"branchreg/internal/emu"
	"branchreg/internal/irexec"
	"branchreg/internal/isa"
)

// Native fuzz targets for `make fuzz-smoke`: short, coverage-guided runs
// of the differential program fuzzer and the fault injector. Both assert
// the robustness contract — a bad program or a hostile fault plan ends in
// a typed trap or a clean exit, never a panic or a divergence.

// FuzzDifferentialPrograms is the coverage-guided form of
// TestFuzzDifferential: one generated program per input, compared across
// the IR interpreter and both machines — and, per machine, across the
// predecoded fast loop and the instrumented loop (identical Stats too).
func FuzzDifferentialPrograms(f *testing.F) {
	for _, seed := range []int64{1, 20260706, 424242} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		gen := &progGen{r: rand.New(rand.NewSource(seed))}
		src := gen.generate()
		o := DefaultOptions()
		iu, err := Lower(src, o)
		if err != nil {
			t.Fatalf("lower: %v\nprogram:\n%s", err, src)
		}
		refOut, refStatus, err := irexec.RunSource(iu, "")
		if err != nil {
			t.Fatalf("irexec: %v\nprogram:\n%s", err, src)
		}
		for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
			p, err := Compile(context.Background(), src, kind, o)
			if err != nil {
				t.Fatalf("%v: %v\nprogram:\n%s", kind, err, src)
			}
			fast, err := Exec(context.Background(), Request{Program: p, Loop: emu.LoopFast})
			if err != nil {
				t.Fatalf("%v fast: %v\nprogram:\n%s", kind, err, src)
			}
			if fast.Status != refStatus || fast.Output != refOut {
				t.Fatalf("%v diverges: status %d vs reference %d\nprogram:\n%s",
					kind, fast.Status, refStatus, src)
			}
			inst, err := Exec(context.Background(), Request{Program: p, Loop: emu.LoopInstrumented})
			if err != nil {
				t.Fatalf("%v instrumented: %v\nprogram:\n%s", kind, err, src)
			}
			instEq := *inst
			instEq.Engine = fast.Engine // only the engine name may differ
			if !eqResult(*fast, instEq) {
				t.Fatalf("%v engine divergence:\n fast: %+v\n inst: %+v\nprogram:\n%s",
					kind, fast, inst, src)
			}
		}
	})
}

// FuzzFusedDifferential is the block-fused engine's coverage-guided
// differential: one generated program per input, run on both machines
// under the fast and fused loops with a fuzzed instruction budget, so the
// budget cutoff lands at arbitrary points — including mid-block, where
// the fused engine must delegate to per-instruction accounting to keep
// the trap's Executed count exact. Asserts identical results, identical
// trap kind/PC/budget fields, and that an armed fault plan is rejected by
// LoopFused but degrades LoopAuto to the instrumented engine with
// unchanged results.
func FuzzFusedDifferential(f *testing.F) {
	f.Add(int64(1), int64(0))
	f.Add(int64(20260806), int64(1000))
	f.Add(int64(7), int64(17))
	f.Fuzz(func(t *testing.T, seed, budget int64) {
		gen := &progGen{r: rand.New(rand.NewSource(seed))}
		src := gen.generate()
		o := DefaultOptions()
		for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
			p, err := Compile(context.Background(), src, kind, o)
			if err != nil {
				t.Fatalf("%v: %v\nprogram:\n%s", kind, err, src)
			}
			run := func(mode emu.LoopMode) (*emu.Machine, error) {
				m, err := emu.New(p, "")
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				m.Loop = mode
				if budget > 0 {
					m.MaxInstructions = budget % (1 << 20)
				}
				_, runErr := m.Run()
				return m, runErr
			}
			fm, ferr := run(emu.LoopFast)
			um, uerr := run(emu.LoopFused)
			if (ferr == nil) != (uerr == nil) {
				t.Fatalf("%v error divergence: fast=%v fused=%v\nprogram:\n%s", kind, ferr, uerr, src)
			}
			if ferr != nil {
				var ft, ut *emu.Trap
				fok, uok := errors.As(ferr, &ft), errors.As(uerr, &ut)
				if fok != uok {
					t.Fatalf("%v trap-ness divergence: fast=%v fused=%v", kind, ferr, uerr)
				}
				if fok && *ft != *ut {
					t.Fatalf("%v trap divergence:\n fast: %+v\n fused: %+v\nprogram:\n%s",
						kind, *ft, *ut, src)
				}
			}
			if fm.Output() != um.Output() || fm.Status() != um.Status() || fm.Stats != um.Stats {
				t.Fatalf("%v fused divergence: output %q vs %q, status %d vs %d\nprogram:\n%s",
					kind, fm.Output(), um.Output(), fm.Status(), um.Status(), src)
			}

			// A fault plan must never reach the fused engine: forcing it is
			// an error, and LoopAuto degrades to the instrumented loop.
			plan := &emu.FaultPlan{Seed: seed, Ops: []emu.FaultOp{
				{Kind: emu.FaultCorruptBReg, N: 1 + budget%64, BReg: int(seed & 7)},
			}}
			m, err := emu.New(p, "")
			if err != nil {
				t.Fatal(err)
			}
			m.Loop = emu.LoopFused
			m.SetFaultPlan(plan)
			if _, err := m.Run(); err == nil {
				t.Fatalf("%v: LoopFused accepted a fault plan", kind)
			} else if trap := new(emu.Trap); errors.As(err, &trap) {
				t.Fatalf("%v: fault-plan rejection should not be a trap: %v", kind, err)
			}
			auto, err := Exec(context.Background(), Request{Program: p, Faults: plan})
			if err != nil {
				var trap *emu.Trap
				if !errors.As(err, &trap) {
					t.Fatalf("%v: non-trap error under faults: %v", kind, err)
				}
			} else if auto.Engine != emu.EngineInstrumented {
				t.Fatalf("%v: engine %q under faults, want %q", kind, auto.Engine, emu.EngineInstrumented)
			}
		}
	})
}

// faultTestPrograms compiles one small branchy program per machine, once,
// for FuzzFaultPlan to perturb.
var faultTestPrograms = sync.OnceValues(func() ([]*isa.Program, error) {
	const src = `
int leaf(int x) { return x * 3 + 1; }
int main(void) {
    int s = 0;
    for (int i = 0; i < 200; i++) {
        if (i % 3 == 0) s += leaf(i); else s -= i;
    }
    return s & 255;
}`
	var out []*isa.Program
	for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
		p, err := Compile(context.Background(), src, kind, DefaultOptions())
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
})

// planFromBytes decodes fuzz input into a FaultPlan: up to 8 ops, every
// field derived from the bytes. FaultPanic is excluded — it exists solely
// to exercise the experiment runner's recover path and panics by design.
func planFromBytes(data []byte) *emu.FaultPlan {
	plan := &emu.FaultPlan{}
	for len(data) >= 8 && len(plan.Ops) < 8 {
		chunk := data[:8]
		data = data[8:]
		op := emu.FaultOp{
			Kind:       emu.FaultKind(chunk[0] % 4), // flip, breg, budget, force-trap
			N:          int64(binary.LittleEndian.Uint16(chunk[2:4])),
			Addr:       int32(binary.LittleEndian.Uint16(chunk[4:6])) * 17,
			Mask:       uint32(chunk[6]),
			BReg:       int(chunk[7]),
			Invalidate: chunk[1]&1 != 0,
			Budget:     int64(binary.LittleEndian.Uint16(chunk[4:6])),
		}
		if chunk[1]&2 != 0 {
			op.Fn = "leaf"
		}
		plan.Seed = int64(chunk[7])<<8 | int64(chunk[0])
		plan.Ops = append(plan.Ops, op)
	}
	if len(plan.Ops) == 0 {
		return nil
	}
	return plan
}

// FuzzFaultPlan feeds arbitrary fault plans to the emulator on both
// machines and asserts the robustness contract: a typed trap or a clean
// exit, never a panic (the fuzzer itself catches panics as crashes).
func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 10, 0, 0, 1, 0xff, 1})                     // flip a data word
	f.Add([]byte{1, 1, 50, 0, 0, 0, 0, 3})                        // invalidate b[3]
	f.Add([]byte{2, 0, 1, 0, 5, 0, 0, 0})                         // truncate budget to 5
	f.Add([]byte{3, 2, 2, 0, 0, 0, 0, 0, 1, 0, 9, 0, 0, 0, 0, 5}) // trap in leaf + corrupt breg
	f.Fuzz(func(t *testing.T, data []byte) {
		progs, err := faultTestPrograms()
		if err != nil {
			t.Fatal(err)
		}
		plan := planFromBytes(data)
		for _, p := range progs {
			_, err := Exec(context.Background(), Request{Program: p, Faults: plan})
			if err == nil {
				continue
			}
			var trap *emu.Trap
			if !errors.As(err, &trap) {
				t.Fatalf("%v: non-trap error from a fault plan: %v (plan %+v)", p.Kind, err, plan)
			}
		}
	})
}
