package driver

import (
	"context"
	"testing"

	"branchreg/internal/irexec"
	"branchreg/internal/isa"
)

// TestFastCompareVariant checks the §9 fast-compare extension: identical
// behavior with strictly fewer executed instructions on branchy code.
func TestFastCompareVariant(t *testing.T) {
	src := `
int main(void) {
    int s = 0;
    for (int i = 0; i < 500; i++)
        if (i % 3 == 0) s += i; else s -= 1;
    return s & 255;
}`
	normal := DefaultOptions()
	fast := DefaultOptions()
	fast.BRM.FastCompare = true

	iu, err := Lower(src, normal)
	if err != nil {
		t.Fatal(err)
	}
	refOut, refStatus, err := irexec.RunSource(iu, "")
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Exec(context.Background(), Request{Source: src, Kind: isa.BranchReg, Input: "", Options: normal})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Exec(context.Background(), Request{Source: src, Kind: isa.BranchReg, Input: "", Options: fast})
	if err != nil {
		t.Fatal(err)
	}
	if rf.Output != refOut || rf.Status != refStatus {
		t.Fatalf("fast compare diverges: status %d vs %d", rf.Status, refStatus)
	}
	if rf.Stats.Instructions >= rn.Stats.Instructions {
		t.Errorf("fast compare should save instructions: %d vs %d",
			rf.Stats.Instructions, rn.Stats.Instructions)
	}
	if rf.Stats.CondBranches != rn.Stats.CondBranches {
		t.Errorf("conditional transfer counts differ: %d vs %d",
			rf.Stats.CondBranches, rn.Stats.CondBranches)
	}
}
