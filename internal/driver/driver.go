// Package driver ties the tool chain together: MC source → front end →
// IR → optimizer → code generator → linked program for either machine,
// plus a convenience runner that executes a program under the emulator
// and a concurrency-safe compile cache (see cache.go) that memoizes
// linked programs across experiments.
package driver

import (
	"context"
	"fmt"
	"time"

	"branchreg/internal/codegen"
	"branchreg/internal/core"
	"branchreg/internal/emu"
	"branchreg/internal/ir"
	"branchreg/internal/irgen"
	"branchreg/internal/isa"
	"branchreg/internal/mc"
	"branchreg/internal/opt"
)

// Options selects the compilation pipeline's behavior.
type Options struct {
	Opt opt.Options // machine-independent optimization passes
	BRM core.Config // branch-register machine configuration
	// AlignWords > 1 aligns function entries to that many instruction
	// words (the paper's §9 cache-line alignment suggestion).
	AlignWords int
}

// DefaultOptions enables everything, matching the paper's configuration.
func DefaultOptions() Options {
	return Options{Opt: opt.Default, BRM: core.DefaultConfig}
}

// Validate rejects option combinations the tool chain cannot honor.
// Compile and Run call it, so nonsense (a negative alignment, an
// unimplementable branch-register count) fails with a clear error instead
// of silently linking a meaningless program.
func (o Options) Validate() error {
	if o.AlignWords < 0 {
		return fmt.Errorf("driver: AlignWords must be >= 0, got %d", o.AlignWords)
	}
	if o.BRM.BranchRegs < 2 || o.BRM.BranchRegs > 8 {
		return fmt.Errorf("driver: BranchRegs must be in [2,8] (b[0] and the RA register are reserved), got %d",
			o.BRM.BranchRegs)
	}
	return nil
}

// Fingerprint returns a deterministic encoding of every option that
// affects generated code. It is the options component of the compile
// cache key, so any new Options field must surface here.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("opt{f=%t cp=%t cse=%t dce=%t s=%t licm=%t}|brm{h=%t rn=%t sch=%t n=%d fc=%t}|align=%d",
		o.Opt.Fold, o.Opt.CopyProp, o.Opt.CSE, o.Opt.DCE, o.Opt.Simplify, o.Opt.LICM,
		o.BRM.Hoist, o.BRM.ReplaceNoops, o.BRM.Schedule, o.BRM.BranchRegs, o.BRM.FastCompare,
		o.AlignWords)
}

// Lower runs the front end and machine-independent passes.
func Lower(src string, o Options) (*ir.Unit, error) {
	u, err := mc.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("front end: %w", err)
	}
	iu, err := irgen.Lower(u)
	if err != nil {
		return nil, fmt.Errorf("irgen: %w", err)
	}
	if err := opt.RunUnit(iu, o.Opt); err != nil {
		return nil, err
	}
	return iu, nil
}

// Compile compiles MC source for the given machine. The context is
// checked between pipeline phases, so a cancelled experiment stops
// without paying for code generation it no longer needs.
func Compile(ctx context.Context, src string, kind isa.Kind, o Options) (*isa.Program, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() {
		mCompiles.Inc()
		mCompileNS.Observe(time.Since(start).Nanoseconds())
	}()
	iu, err := Lower(src, o)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return CompileIR(iu, kind, o)
}

// CompileIR generates code for an already-lowered unit.
func CompileIR(u *ir.Unit, kind isa.Kind, o Options) (*isa.Program, error) {
	var p *isa.Program
	var err error
	if kind == isa.Baseline {
		p, err = codegen.GenBaseline(u)
	} else {
		p, err = core.GenBranchReg(u, o.BRM)
	}
	if err != nil {
		return nil, err
	}
	if o.AlignWords > 1 {
		p.AlignWords = o.AlignWords
		if err := p.Link(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Result is the outcome of running a program under the emulator.
type Result struct {
	Output string
	Status int32
	Stats  emu.Stats
	// Engine names the emulator loop that actually executed the run
	// (emu.EngineFused, emu.EngineFast, or emu.EngineInstrumented) —
	// recorded explicitly because LoopAuto's engine selection is otherwise
	// invisible to callers.
	Engine string
	// Fusion describes the block-fused engine's dynamic behavior (blocks
	// entered, superinstructions retired, hand-offs to the fast loop).
	// Zero unless Engine is emu.EngineFused or emu.EngineAdaptive.
	Fusion emu.FusionStats
	// Refusion describes the adaptive tier's promotion behavior for this
	// run (whether it executed a promoted form, the mixed-tier block
	// split, the mined vocabulary size). Zero unless Engine is
	// emu.EngineAdaptive.
	Refusion emu.RefusionStats
	// Timing is where the request's wall clock went: compile (zero for
	// pre-linked programs and compile-cache hits served without waiting)
	// and emulation, plus queue wait when the request passed through
	// brserve's admission queue.
	Timing Timing
	// Cached marks a Result served from a ResultCache instead of a fresh
	// execution. A cached Result is byte-identical to the execution that
	// produced it (the cache is keyed on Request.Fingerprint, which
	// covers every result-affecting field); consumers that must observe
	// real executions only — shadow verification, benchmark harnesses —
	// key off this.
	Cached bool
}

// Run compiles and executes src on the given machine with the given stdin.
//
// Deprecated: use Exec with a Request.
func Run(ctx context.Context, src string, kind isa.Kind, input string, o Options) (*Result, error) {
	return Exec(ctx, Request{Source: src, Kind: kind, Input: input, Options: o})
}

// RunProgram executes a linked program with the given stdin.
//
// Deprecated: use Exec with a Request carrying the Program.
func RunProgram(p *isa.Program, input string) (*Result, error) {
	return Exec(context.Background(), Request{Program: p, Input: input})
}

// RunProgramContext executes a linked program with the given stdin and an
// optional deterministic fault plan.
//
// Deprecated: use Exec with a Request carrying the Program and Faults.
func RunProgramContext(ctx context.Context, p *isa.Program, input string, plan *emu.FaultPlan) (*Result, error) {
	return Exec(ctx, Request{Program: p, Input: input, Faults: plan})
}
