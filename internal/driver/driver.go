// Package driver ties the tool chain together: MC source → front end →
// IR → optimizer → code generator → linked program for either machine,
// plus a convenience runner that executes a program under the emulator.
package driver

import (
	"fmt"

	"branchreg/internal/codegen"
	"branchreg/internal/core"
	"branchreg/internal/emu"
	"branchreg/internal/ir"
	"branchreg/internal/irgen"
	"branchreg/internal/isa"
	"branchreg/internal/mc"
	"branchreg/internal/opt"
)

// Options selects the compilation pipeline's behavior.
type Options struct {
	Opt opt.Options // machine-independent optimization passes
	BRM core.Config // branch-register machine configuration
	// AlignWords > 1 aligns function entries to that many instruction
	// words (the paper's §9 cache-line alignment suggestion).
	AlignWords int
}

// DefaultOptions enables everything, matching the paper's configuration.
func DefaultOptions() Options {
	return Options{Opt: opt.Default, BRM: core.DefaultConfig}
}

// Lower runs the front end and machine-independent passes.
func Lower(src string, o Options) (*ir.Unit, error) {
	u, err := mc.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("front end: %w", err)
	}
	iu, err := irgen.Lower(u)
	if err != nil {
		return nil, fmt.Errorf("irgen: %w", err)
	}
	if err := opt.RunUnit(iu, o.Opt); err != nil {
		return nil, err
	}
	return iu, nil
}

// Compile compiles MC source for the given machine.
func Compile(src string, kind isa.Kind, o Options) (*isa.Program, error) {
	iu, err := Lower(src, o)
	if err != nil {
		return nil, err
	}
	return CompileIR(iu, kind, o)
}

// CompileIR generates code for an already-lowered unit.
func CompileIR(u *ir.Unit, kind isa.Kind, o Options) (*isa.Program, error) {
	var p *isa.Program
	var err error
	if kind == isa.Baseline {
		p, err = codegen.GenBaseline(u)
	} else {
		p, err = core.GenBranchReg(u, o.BRM)
	}
	if err != nil {
		return nil, err
	}
	if o.AlignWords > 1 {
		p.AlignWords = o.AlignWords
		if err := p.Link(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Result is the outcome of running a program under the emulator.
type Result struct {
	Output string
	Status int32
	Stats  emu.Stats
}

// Run compiles and executes src on the given machine with the given stdin.
func Run(src string, kind isa.Kind, input string, o Options) (*Result, error) {
	p, err := Compile(src, kind, o)
	if err != nil {
		return nil, err
	}
	return RunProgram(p, input)
}

// RunProgram executes a linked program with the given stdin.
func RunProgram(p *isa.Program, input string) (*Result, error) {
	m, err := emu.New(p, input)
	if err != nil {
		return nil, err
	}
	status, err := m.Run()
	if err != nil {
		return nil, err
	}
	return &Result{Output: m.Output(), Status: status, Stats: m.Stats}, nil
}
