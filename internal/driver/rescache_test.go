package driver

import (
	"context"
	"testing"

	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

// The result-cache contract: a size-aware LRU whose Get/Put pair is
// byte-budgeted and whose entries can be invalidated by the guard's
// (class, tier) quarantine coordinates. Eviction order, replacement,
// oversized-entry refusal, and sanitization (Timing zeroed, Cached set)
// are all load-bearing for the serve admission path.

// rcSize mirrors Put's accounting for a test entry.
func rcSize(fp, class, output string) int64 {
	return int64(len(fp)) + int64(len(class)) + int64(len(output)) + rcEntryOverhead
}

func TestResultCacheLRUEviction(t *testing.T) {
	// Budget for exactly two single-letter-keyed, empty-output entries.
	rc := NewResultCache(2 * rcSize("a", "c", ""))
	put := func(fp string) { rc.Put(fp, "c", &Result{Engine: emu.EngineFast}) }

	put("a")
	put("b")
	put("x") // evicts "a", the least recently used
	if _, ok := rc.Get("a"); ok {
		t.Error("oldest entry survived an over-budget Put")
	}
	if _, ok := rc.Get("b"); !ok {
		t.Fatal("entry b evicted early")
	}
	// b was just touched, so the next eviction takes x.
	put("y")
	if _, ok := rc.Get("x"); ok {
		t.Error("recently-used order ignored: x should have been evicted, not b")
	}
	if _, ok := rc.Get("b"); !ok {
		t.Error("touched entry b evicted despite being most recently used")
	}
	st := rc.Stats()
	if st.Evictions != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 2 evictions and 2 entries", st)
	}
	if st.Bytes != 2*rcSize("a", "c", "") {
		t.Errorf("accounted bytes = %d, want %d", st.Bytes, 2*rcSize("a", "c", ""))
	}
}

func TestResultCacheOversizedAndReplace(t *testing.T) {
	rc := NewResultCache(rcSize("k", "c", "") + 8)
	// An entry larger than the whole budget is refused, not stored.
	rc.Put("k", "c", &Result{Output: string(make([]byte, 512))})
	if st := rc.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("oversized entry was stored: %+v", st)
	}
	// Replacement swaps the entry in place without leaking bytes.
	rc.Put("k", "c", &Result{Output: "old", Status: 1})
	rc.Put("k", "c", &Result{Output: "new", Status: 2})
	res, ok := rc.Get("k")
	if !ok || res.Output != "new" || res.Status != 2 {
		t.Fatalf("replacement not visible: ok=%v res=%+v", ok, res)
	}
	if st := rc.Stats(); st.Entries != 1 || st.Bytes != rcSize("k", "c", "new") {
		t.Errorf("replacement leaked accounting: %+v", st)
	}
}

func TestResultCacheSanitizes(t *testing.T) {
	rc := NewResultCache(1 << 20)
	orig := &Result{
		Output: "out", Engine: emu.EngineFused,
		Timing: Timing{CompileNS: 7, RunNS: 9, QueueNS: 16},
	}
	rc.Put("k", "c", orig)
	if orig.Cached || orig.Timing.RunNS != 9 {
		t.Errorf("Put mutated the caller's Result: %+v", orig)
	}
	res, ok := rc.Get("k")
	if !ok {
		t.Fatal("miss after Put")
	}
	if !res.Cached {
		t.Error("cached Result not marked Cached")
	}
	if res.Timing != (Timing{}) {
		t.Errorf("cached Result kept per-run timing: %+v", res.Timing)
	}
	if res.Output != "out" || res.Engine != emu.EngineFused {
		t.Errorf("cached Result lost payload: %+v", res)
	}
}

func TestResultCacheInvalidate(t *testing.T) {
	rc := NewResultCache(1 << 20)
	rc.Put("a", "sieve/branchreg", &Result{Engine: emu.EngineAdaptive})
	rc.Put("b", "sieve/branchreg", &Result{Engine: emu.EngineFast})
	rc.Put("c", "wc/branchreg", &Result{Engine: emu.EngineAdaptive})

	// Tier-scoped: only the (class, engine) pair goes.
	if n := rc.Invalidate("sieve/branchreg", emu.EngineAdaptive); n != 1 {
		t.Errorf("tier-scoped Invalidate dropped %d entries, want 1", n)
	}
	if _, ok := rc.Get("a"); ok {
		t.Error("quarantined (class, tier) entry survived")
	}
	if _, ok := rc.Get("b"); !ok {
		t.Error("same class, different tier was invalidated")
	}
	if _, ok := rc.Get("c"); !ok {
		t.Error("different class was invalidated")
	}
	// Class-wide: empty tier matches every engine.
	if n := rc.Invalidate("sieve/branchreg", ""); n != 1 {
		t.Errorf("class-wide Invalidate dropped %d entries, want 1", n)
	}
	if st := rc.Stats(); st.Invalidated != 2 || st.Entries != 1 {
		t.Errorf("stats after invalidation = %+v, want 2 invalidated, 1 entry", st)
	}
}

func TestCacheableExcludesPointerRequests(t *testing.T) {
	r := Request{Source: "func main() int { return 0; }"}
	if !Cacheable(&r) {
		t.Error("plain source request not cacheable")
	}
	r.Faults = &emu.FaultPlan{Seed: 1}
	if !Cacheable(&r) {
		t.Error("fault-plan request not cacheable; the plan is in the fingerprint")
	}
	r.Faults = nil
	r.Program = &isa.Program{}
	if Cacheable(&r) {
		t.Error("pre-linked Program request cacheable; pointer fingerprints alias across recycled addresses")
	}
	r.Program = nil
	r.Profile = emu.NewBlockProfile(4)
	if Cacheable(&r) {
		t.Error("Profile-carrying request cacheable; the profile is an output a hit cannot fill")
	}
}

// TestCacheExecMemoizes is the driver-level round trip: with a
// ResultCache attached, the second identical Exec is served from
// memory (Cached set, no timing) and NoCache forces a fresh run.
func TestCacheExecMemoizes(t *testing.T) {
	w, _ := workloads.ByName("wc")
	c := NewCache()
	c.SetResultCache(NewResultCache(1 << 20))
	ctx := ContextWithResultClass(context.Background(), "wc/branchreg")
	req := Request{Source: w.FullSource(), Kind: isa.BranchReg, Input: w.Input, Options: DefaultOptions()}

	first, err := c.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first execution claims to be cached")
	}
	second, err := c.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical Exec was not served from the result cache")
	}
	if second.Output != first.Output || second.Status != first.Status ||
		second.Stats.Instructions != first.Stats.Instructions {
		t.Errorf("cached Result diverges:\n got: %+v\nwant: %+v", second, first)
	}
	if second.Timing != (Timing{}) {
		t.Errorf("cached Result carries per-run timing: %+v", second.Timing)
	}

	// NoCache bypasses the lookup: a fresh execution, not a hit.
	req.NoCache = true
	fresh, err := c.Exec(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Error("NoCache request was served from the result cache")
	}

	// Entries carry the context's class for quarantine invalidation.
	if n := c.ResultCache().Invalidate("wc/branchreg", ""); n != 1 {
		t.Errorf("Invalidate dropped %d entries, want the 1 cached under the context class", n)
	}
}
