package driver

import (
	"context"
	"sync"

	"branchreg/internal/emu"
	"branchreg/internal/isa"
)

// The emulator's memory image is isa.MemBytes (4 MiB) per run. An
// experiment suite executes hundreds of runs across exp.Runner's worker
// pool, so allocating a fresh image each time dominates the allocation
// profile and keeps the garbage collector busy reclaiming identical
// buffers. The pool recycles them; buffers are zeroed on release so a
// pooled Get is indistinguishable from a fresh allocation.

var memPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, isa.MemBytes)
		return &b
	},
}

// borrowMem returns a zeroed isa.MemBytes buffer. The *[]byte indirection
// keeps the slice header itself off the heap on Put.
func borrowMem() *[]byte {
	return memPool.Get().(*[]byte)
}

// releaseMem zeroes the buffer and returns it to the pool.
func releaseMem(b *[]byte) {
	clear(*b)
	memPool.Put(b)
}

// RunConfig carries per-run execution options for RunProgramWith.
type RunConfig struct {
	// Faults is an optional deterministic fault-injection plan.
	Faults *emu.FaultPlan
	// OutputHint pre-sizes the emulator's output buffer to the number of
	// bytes the workload is expected to write (0 = no hint).
	OutputHint int
	// Loop selects the emulator engine; the zero value (emu.LoopAuto)
	// picks the fast loop whenever hooks and faults permit.
	Loop emu.LoopMode
}

// RunProgramWith executes a linked program with pooled emulator memory
// and the given run configuration. Emulator faults come back as *emu.Trap.
func RunProgramWith(ctx context.Context, p *isa.Program, input string, cfg RunConfig) (*Result, error) {
	mem := borrowMem()
	defer releaseMem(mem)
	m, err := emu.NewWithMem(p, input, *mem)
	if err != nil {
		return nil, err
	}
	m.SetFaultPlan(cfg.Faults)
	m.Loop = cfg.Loop
	m.ReserveOutput(cfg.OutputHint)
	status, err := m.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{Output: m.Output(), Status: status, Stats: m.Stats}, nil
}
