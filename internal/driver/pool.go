package driver

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/obs"
)

// The emulator's memory image is isa.MemBytes (4 MiB) per run. An
// experiment suite executes hundreds of runs across exp.Runner's worker
// pool, so allocating a fresh image each time dominates the allocation
// profile and keeps the garbage collector busy reclaiming identical
// buffers. The pool recycles them; buffers are zeroed on release so a
// pooled Get is indistinguishable from a fresh allocation.

var memPool = sync.Pool{
	New: func() interface{} {
		mPoolFresh.Inc()
		b := make([]byte, isa.MemBytes)
		return &b
	},
}

// borrowMem returns a zeroed isa.MemBytes buffer. The *[]byte indirection
// keeps the slice header itself off the heap on Put.
func borrowMem() *[]byte {
	mPoolGets.Inc()
	return memPool.Get().(*[]byte)
}

// releaseMem zeroes the buffer and returns it to the pool.
func releaseMem(b *[]byte) {
	start := time.Now()
	clear(*b)
	mPoolZeroNS.Observe(time.Since(start).Nanoseconds())
	mPoolPuts.Inc()
	memPool.Put(b)
}

// RunConfig carries per-run execution options.
//
// Deprecated: build a Request instead; RunConfig survives only as the
// parameter type of the deprecated RunProgramWith wrapper.
type RunConfig struct {
	// Faults is an optional deterministic fault-injection plan.
	Faults *emu.FaultPlan
	// OutputHint pre-sizes the emulator's output buffer to the number of
	// bytes the workload is expected to write (0 = no hint).
	OutputHint int
	// Loop selects the emulator engine; the zero value (emu.LoopAuto)
	// picks the fast loop whenever hooks and faults permit.
	Loop emu.LoopMode
	// Profile, when set, receives the run's flow counts (see
	// emu.BlockProfile). Must be sized for p.Text; profiling does not
	// force the instrumented engine.
	Profile *emu.BlockProfile
}

// RunProgramWith executes a linked program with pooled emulator memory
// and the given run configuration.
//
// Deprecated: use Exec with a Request carrying the Program.
func RunProgramWith(ctx context.Context, p *isa.Program, input string, cfg RunConfig) (*Result, error) {
	return Exec(ctx, Request{Program: p, Input: input, Faults: cfg.Faults,
		OutputHint: cfg.OutputHint, Loop: cfg.Loop, Profile: cfg.Profile})
}

// execute runs a linked program with pooled emulator memory under the
// Request's execution fields (Input, Faults, Loop, OutputHint,
// MaxInstructions, Profile). Every execution path funnels through here,
// so the pool, the metrics, and the trap accounting behave identically
// for Exec, Cache.Exec, and the deprecated wrappers.
func execute(ctx context.Context, p *isa.Program, req *Request) (*Result, error) {
	mem := borrowMem()
	defer releaseMem(mem)
	m, err := emu.NewWithMem(p, req.Input, *mem)
	if err != nil {
		return nil, err
	}
	m.SetFaultPlan(req.Faults)
	m.Loop = req.Loop
	m.Prof = req.Profile
	m.PromoteThreshold = req.PromoteThreshold
	m.ReserveOutput(req.OutputHint)
	if req.MaxInstructions > 0 {
		m.MaxInstructions = req.MaxInstructions
	}
	start := time.Now()
	status, err := m.RunContext(ctx)
	runNS := time.Since(start).Nanoseconds()
	mRuns.Inc()
	mRunNS.Observe(runNS)
	switch m.Engine() {
	case emu.EngineFused:
		mEngineFused.Inc()
		mFusedBlocks.Add(m.Fusion.Blocks)
		mFusedSupers.Add(m.Fusion.Fused)
		mFusedBails.Add(m.Fusion.Bails)
	case emu.EngineAdaptive:
		mEngineAdaptive.Inc()
		mFusedBlocks.Add(m.Fusion.Blocks)
		mFusedSupers.Add(m.Fusion.Fused)
		mFusedBails.Add(m.Fusion.Bails)
		if m.Refusion.Promoted {
			mRefusionPromoted.Inc()
		}
	case emu.EngineFast:
		mEngineFast.Inc()
	case emu.EngineInstrumented:
		mEngineInst.Inc()
	}
	mEmuInsts.Add(m.Stats.Instructions)
	mEmuTransfers.Add(m.Stats.Transfers())
	if err != nil {
		var t *emu.Trap
		if errors.As(err, &t) {
			// Trap kinds are kebab-case ("oob-load"); metric segments are
			// [a-z0-9_], so the hyphens map to underscores.
			obs.Default.Counter("emu.trap." + strings.ReplaceAll(t.Kind.String(), "-", "_")).Inc()
		}
		return nil, err
	}
	return &Result{Output: m.Output(), Status: status, Stats: m.Stats,
		Engine: m.Engine(), Fusion: m.Fusion, Refusion: m.Refusion,
		Timing: Timing{RunNS: runNS}}, nil
}
