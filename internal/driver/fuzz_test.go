package driver

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"branchreg/internal/irexec"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

// TestSuiteEncodes verifies the ISA claim: every instruction of every
// compiled workload, on both machines, fits the 32-bit encodings of
// Figures 10 and 11 and decodes back to an executable form.
func TestSuiteEncodes(t *testing.T) {
	o := DefaultOptions()
	for _, w := range workloads.All() {
		for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
			p, err := Compile(context.Background(), w.FullSource(), kind, o)
			if err != nil {
				t.Fatalf("%s/%v: %v", w.Name, kind, err)
			}
			for i, in := range p.Text {
				word, err := isa.Encode(in, kind)
				if err != nil {
					t.Fatalf("%s/%v: instruction %d (%s) does not encode: %v",
						w.Name, kind, i, in.RTL(kind), err)
				}
				if _, err := isa.Decode(word, kind); err != nil {
					t.Fatalf("%s/%v: %#x does not decode: %v", w.Name, kind, word, err)
				}
			}
		}
	}
}

// progGen generates random but well-formed MC programs for differential
// fuzzing: straight-line arithmetic, loops with bounded trip counts,
// conditionals, and a few helper functions.
type progGen struct {
	r    *rand.Rand
	b    strings.Builder
	vars []string
	loop int
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(200)-100)
		default:
			return g.vars[g.r.Intn(len(g.vars))]
		}
	}
	op := []string{"+", "-", "*", "&", "|", "^"}[g.r.Intn(6)]
	l, r := g.expr(depth-1), g.expr(depth-1)
	if g.r.Intn(4) == 0 {
		// division guarded against zero
		return fmt.Sprintf("(%s / (1 + ((%s) & 15)))", l, r)
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

func (g *progGen) cond() string {
	op := []string{"<", "<=", ">", ">=", "==", "!="}[g.r.Intn(6)]
	return fmt.Sprintf("(%s %s %s)", g.expr(1), op, g.expr(1))
}

func (g *progGen) stmt(depth int) {
	switch g.r.Intn(6) {
	case 0, 1: // assignment
		v := g.vars[g.r.Intn(len(g.vars))]
		fmt.Fprintf(&g.b, "%s = %s;\n", v, g.expr(2))
	case 2: // compound assignment
		v := g.vars[g.r.Intn(len(g.vars))]
		op := []string{"+=", "-=", "^=", "|=", "&="}[g.r.Intn(5)]
		fmt.Fprintf(&g.b, "%s %s %s;\n", v, op, g.expr(1))
	case 3: // if/else
		if depth <= 0 {
			fmt.Fprintf(&g.b, "acc += 1;\n")
			return
		}
		fmt.Fprintf(&g.b, "if %s {\n", g.cond())
		g.stmt(depth - 1)
		g.b.WriteString("} else {\n")
		g.stmt(depth - 1)
		g.b.WriteString("}\n")
	case 4: // bounded loop
		if depth <= 0 || g.loop >= 3 {
			fmt.Fprintf(&g.b, "acc ^= %s;\n", g.expr(1))
			return
		}
		g.loop++
		iv := fmt.Sprintf("it%d", g.loop)
		fmt.Fprintf(&g.b, "for (int %s = 0; %s < %d; %s++) {\n", iv, iv, 2+g.r.Intn(9), iv)
		g.stmt(depth - 1)
		g.b.WriteString("}\n")
		g.loop--
	case 5: // call a helper
		v := g.vars[g.r.Intn(len(g.vars))]
		fmt.Fprintf(&g.b, "%s = helper%d(%s, %s);\n", v, g.r.Intn(2), g.expr(1), g.expr(1))
	}
}

func (g *progGen) fstmt() {
	switch g.r.Intn(4) {
	case 0:
		fmt.Fprintf(&g.b, "fx = fx * 0.5 + (float)(%s);\n", g.expr(1))
	case 1:
		fmt.Fprintf(&g.b, "fy = fhelper(fx, fy);\n")
	case 2:
		fmt.Fprintf(&g.b, "if (fx > fy) fy = fy + 1.25; else fx = fx - 0.75;\n")
	case 3:
		fmt.Fprintf(&g.b, "acc += (int)(fx - fy) & 63;\n")
	}
}

func (g *progGen) generate() string {
	g.b.Reset()
	g.vars = []string{"a", "b", "c", "acc"}
	g.b.WriteString(`
int helper0(int x, int y) { return (x ^ y) + (x & 7); }
int helper1(int x, int y) {
    int t = 0;
    for (int i = 0; i < (y & 7); i++) t += x + i;
    return t;
}
float fhelper(float u, float v) { return u * 0.25 - v * 0.125 + 1.0; }
int main(void) {
    int a = 3, b = -7, c = 11, acc = 0;
    float fx = 1.5, fy = -2.25;
`)
	n := 4 + g.r.Intn(8)
	for i := 0; i < n; i++ {
		g.stmt(2)
		if g.r.Intn(3) == 0 {
			g.fstmt()
		}
	}
	g.b.WriteString("return (acc ^ a ^ b ^ c ^ ((int)fx & 7)) & 255;\n}\n")
	return g.b.String()
}

// TestFuzzDifferential generates random programs and checks that the IR
// interpreter, the baseline machine and the branch-register machine agree
// on every one — across the optimization ablations.
func TestFuzzDifferential(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 10
	}
	gen := &progGen{r: rand.New(rand.NewSource(20260706))}
	configs := []Options{DefaultOptions()}
	{
		o := DefaultOptions()
		o.BRM.Hoist = false
		configs = append(configs, o)
		o = DefaultOptions()
		o.BRM.ReplaceNoops = false
		o.BRM.Schedule = false
		configs = append(configs, o)
		o = DefaultOptions()
		o.BRM.BranchRegs = 4
		configs = append(configs, o)
		o = DefaultOptions()
		o.BRM.FastCompare = true
		configs = append(configs, o)
	}
	for i := 0; i < iterations; i++ {
		src := gen.generate()
		o := configs[i%len(configs)]
		iu, err := Lower(src, o)
		if err != nil {
			t.Fatalf("iteration %d: lower: %v\nprogram:\n%s", i, err, src)
		}
		refOut, refStatus, err := irexec.RunSource(iu, "")
		if err != nil {
			t.Fatalf("iteration %d: irexec: %v\nprogram:\n%s", i, err, src)
		}
		for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
			res, err := Exec(context.Background(), Request{Source: src, Kind: kind, Input: "", Options: o})
			if err != nil {
				t.Fatalf("iteration %d on %v: %v\nprogram:\n%s", i, kind, err, src)
			}
			if res.Status != refStatus || res.Output != refOut {
				t.Fatalf("iteration %d: %v diverges: status %d vs reference %d\nprogram:\n%s",
					i, kind, res.Status, refStatus, src)
			}
		}
	}
}
