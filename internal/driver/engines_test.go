package driver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

// Driver-level golden differential: the full workload suite and a sweep of
// generated programs must produce identical Results from every engine tier
// — the instrumented Step loop, the predecoded fast loop, and the
// block-fused loop with and without a profile attached — and the
// pooled-memory runner must stay correct under concurrency (run with
// -race via `make check`).

// engineTiers is the driver-level tier table; the instrumented loop is
// the reference the others must reproduce byte for byte.
var engineTiers = []struct {
	name   string
	loop   emu.LoopMode
	prof   bool
	engine string
}{
	{"step", emu.LoopInstrumented, false, emu.EngineInstrumented},
	{"fast", emu.LoopFast, false, emu.EngineFast},
	{"fused", emu.LoopFused, false, emu.EngineFused},
	{"fused-prof", emu.LoopFused, true, emu.EngineFused},
}

// eqResult compares two Results ignoring Timing, which records wall
// clock and is never deterministic.
func eqResult(a, b Result) bool {
	a.Timing, b.Timing = Timing{}, Timing{}
	return a == b
}

// runAllEngines executes p under every engine tier and fails on any
// divergence, returning the (shared) result (nil if the program traps).
func runAllEngines(t *testing.T, p *isa.Program, input string) *Result {
	t.Helper()
	req := func(tier int) Request {
		r := Request{Program: p, Input: input, Loop: engineTiers[tier].loop}
		if engineTiers[tier].prof {
			r.Profile = emu.NewBlockProfile(len(p.Text))
		}
		return r
	}
	inst, ierr := Exec(context.Background(), req(0))
	for i := 1; i < len(engineTiers); i++ {
		tier := engineTiers[i]
		res, err := Exec(context.Background(), req(i))
		if (err == nil) != (ierr == nil) {
			t.Fatalf("error divergence: %s=%v instrumented=%v", tier.name, err, ierr)
		}
		if err != nil {
			var ft, it *emu.Trap
			if errors.As(err, &ft) != errors.As(ierr, &it) || (ft != nil && !reflect.DeepEqual(*ft, *it)) {
				t.Fatalf("trap divergence: %s=%v instrumented=%v", tier.name, err, ierr)
			}
			continue
		}
		if res.Engine != tier.engine || inst.Engine != emu.EngineInstrumented {
			t.Fatalf("engine recording wrong: %s=%q inst=%q", tier.name, res.Engine, inst.Engine)
		}
		if tier.engine == emu.EngineFused && res.Fusion.Blocks == 0 {
			t.Fatalf("%s: fused run recorded no blocks", tier.name)
		}
		instEq := *inst
		instEq.Engine = res.Engine // only the engine name
		instEq.Fusion = res.Fusion // and the tier-descriptive counters may differ
		if !eqResult(*res, instEq) {
			t.Fatalf("result divergence:\n %s: %+v\n step: %+v", tier.name, res, inst)
		}
	}
	if ierr != nil {
		return nil
	}
	return inst
}

func TestEnginesWorkloadDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential is not short")
	}
	o := DefaultOptions()
	for _, w := range workloads.All() {
		for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
			w, kind := w, kind
			t.Run(fmt.Sprintf("%s/%v", w.Name, kind), func(t *testing.T) {
				t.Parallel()
				p, err := Compile(context.Background(), w.FullSource(), kind, o)
				if err != nil {
					t.Fatal(err)
				}
				runAllEngines(t, p, w.Input)
			})
		}
	}
}

func TestEnginesGeneratedProgramDifferential(t *testing.T) {
	// The same generator that seeds the native fuzz targets, swept over a
	// fixed set of seeds as a deterministic regression net.
	o := DefaultOptions()
	for seed := int64(0); seed < 25; seed++ {
		gen := &progGen{r: rand.New(rand.NewSource(seed))}
		src := gen.generate()
		for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
			p, err := Compile(context.Background(), src, kind, o)
			if err != nil {
				t.Fatalf("seed %d %v: %v\nprogram:\n%s", seed, kind, err, src)
			}
			if runAllEngines(t, p, "") == nil {
				t.Fatalf("seed %d %v: generated program trapped\nprogram:\n%s", seed, kind, src)
			}
		}
	}
}

func TestMemPoolConcurrentRunners(t *testing.T) {
	// Pooled memory buffers are recycled across runs; concurrent runners
	// must never observe another run's writes (buffers are zeroed on
	// release) or race on the pool. Meaningful under -race.
	names := []string{"sieve", "wc", "tinycc"}
	type cell struct {
		p     *isa.Program
		input string
		want  Result
	}
	var cells []cell
	for _, name := range names {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("no workload %q", name)
		}
		for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
			p, err := Compile(context.Background(), w.FullSource(), kind, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Exec(context.Background(), Request{Program: p, Input: w.Input, OutputHint: w.OutputHint})
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, cell{p: p, input: w.Input, want: *ref})
		}
	}
	const workers, rounds = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c := cells[(g+i)%len(cells)]
				res, err := Exec(context.Background(), Request{Program: c.p, Input: c.input})
				if err != nil {
					errs <- err
					return
				}
				if !eqResult(*res, c.want) {
					errs <- fmt.Errorf("pooled run diverged for %s", c.p.Kind)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRunConfigOutputHintHarmless(t *testing.T) {
	// A wildly wrong hint must never change results.
	w, _ := workloads.ByName("wc")
	p, err := Compile(context.Background(), w.FullSource(), isa.Baseline, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Exec(context.Background(), Request{Program: p, Input: w.Input})
	if err != nil {
		t.Fatal(err)
	}
	for _, hint := range []int{-5, 0, 1, 1 << 20} {
		res, err := Exec(context.Background(), Request{Program: p, Input: w.Input, OutputHint: hint})
		if err != nil {
			t.Fatal(err)
		}
		if !eqResult(*res, *ref) {
			t.Errorf("hint %d changed the result", hint)
		}
	}
}
