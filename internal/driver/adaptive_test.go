package driver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

// Differential coverage for the adaptive tier (emu.LoopAdaptive): at any
// promotion threshold — promote-at-first-opportunity, the default, or
// never — and at any point in the warm→promoted lifecycle, an adaptive
// run must be byte-identical to the instrumented reference: output,
// status, Stats, trap kind/PC/detail, and step-budget Limit/Executed.
// Each program is compiled fresh per threshold so promotion state
// (keyed by program identity) is isolated, and each case runs twice in
// sequence: run 1 exercises warmup and possibly mid-run promotion, run
// 2 enters the promoted form directly when a promotion happened.

// adaptiveThresholds are the promotion regimes under test: promote as
// soon as the stride poll sees any arrival, the production default, and
// promotion disabled.
var adaptiveThresholds = []int64{1, emu.DefaultPromoteThreshold, -1}

// runAdaptiveAgainstReference executes p twice under LoopAdaptive with
// the given threshold and budget, comparing each run against a fresh
// instrumented run of the same request.
func runAdaptiveAgainstReference(t *testing.T, p *isa.Program, input string, threshold, budget int64) {
	t.Helper()
	ref, refErr := Exec(context.Background(), Request{
		Program: p, Input: input, Loop: emu.LoopInstrumented, MaxInstructions: budget,
	})
	for run := 1; run <= 2; run++ {
		res, err := Exec(context.Background(), Request{
			Program: p, Input: input, Loop: emu.LoopAdaptive,
			PromoteThreshold: threshold, MaxInstructions: budget,
		})
		if (err == nil) != (refErr == nil) {
			t.Fatalf("th=%d run %d error divergence: adaptive=%v instrumented=%v",
				threshold, run, err, refErr)
		}
		if err != nil {
			var at, it *emu.Trap
			if errors.As(err, &at) != errors.As(refErr, &it) {
				t.Fatalf("th=%d run %d trap-ness divergence: adaptive=%v instrumented=%v",
					threshold, run, err, refErr)
			}
			if at != nil && !reflect.DeepEqual(*at, *it) {
				t.Fatalf("th=%d run %d trap divergence:\n adaptive: %+v\n step:     %+v",
					threshold, run, *at, *it)
			}
			continue
		}
		if res.Engine != emu.EngineAdaptive {
			t.Fatalf("th=%d run %d engine %q, want %q", threshold, run, res.Engine, emu.EngineAdaptive)
		}
		if threshold < 0 && res.Refusion.Promoted {
			t.Fatalf("th=%d run %d promoted with promotion disabled: %+v", threshold, run, res.Refusion)
		}
		refEq := *ref
		refEq.Engine = res.Engine     // only the engine name
		refEq.Fusion = res.Fusion     // and the tier-descriptive counters
		refEq.Refusion = res.Refusion // may differ between tiers
		if !eqResult(*res, refEq) {
			t.Fatalf("th=%d run %d result divergence:\n adaptive: %+v\n step:     %+v",
				threshold, run, res, ref)
		}
	}
}

func TestAdaptiveWorkloadDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix adaptive differential is not short")
	}
	o := DefaultOptions()
	for _, w := range workloads.All() {
		for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
			w, kind := w, kind
			t.Run(fmt.Sprintf("%s/%v", w.Name, kind), func(t *testing.T) {
				t.Parallel()
				for _, th := range adaptiveThresholds {
					// A fresh compile per threshold isolates promotion state:
					// program identity keys the adaptive state machine.
					p, err := Compile(context.Background(), w.FullSource(), kind, o)
					if err != nil {
						t.Fatal(err)
					}
					runAdaptiveAgainstReference(t, p, w.Input, th, 0)
				}
			})
		}
	}
}

func TestAdaptiveStepBudgetTrap(t *testing.T) {
	// Step-budget traps must carry identical Limit/Executed wherever the
	// budget lands: during warmup (before the first stride poll), right
	// around the promotion window, or deep in the promoted form.
	w, ok := workloads.ByName("sieve")
	if !ok {
		t.Fatal("no sieve workload")
	}
	for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
		for _, budget := range []int64{1000, 70_000, 300_000} {
			p, err := Compile(context.Background(), w.FullSource(), kind, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			runAdaptiveAgainstReference(t, p, w.Input, 1, budget)
		}
	}
}

func TestAdaptivePromotionLifecycle(t *testing.T) {
	// The promotion state machine itself: a loopy program at threshold 1
	// promotes (mid-run past the stride poll, or between runs), and the
	// second run enters the promoted form with a mined vocabulary and a
	// mixed-tier block split; with promotion disabled nothing promotes.
	w, ok := workloads.ByName("dhrystone")
	if !ok {
		t.Fatal("no dhrystone workload")
	}
	p, err := Compile(context.Background(), w.FullSource(), isa.BranchReg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	first, err := Exec(context.Background(), Request{
		Program: p, Input: w.Input, Loop: emu.LoopAdaptive, PromoteThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Exec(context.Background(), Request{
		Program: p, Input: w.Input, Loop: emu.LoopAdaptive, PromoteThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Refusion.Promoted {
		t.Fatalf("second run did not enter the promoted form: %+v", second.Refusion)
	}
	if second.Refusion.Promotions != 1 {
		t.Fatalf("promotions = %d, want exactly 1", second.Refusion.Promotions)
	}
	if second.Refusion.VocabPairs == 0 {
		t.Fatalf("promoted form mined an empty pair vocabulary: %+v", second.Refusion)
	}
	if second.Refusion.HotBlocks == 0 {
		t.Fatalf("promoted form has no hot blocks: %+v", second.Refusion)
	}
	if second.Refusion.WarmupInsts == 0 {
		t.Fatalf("promotion recorded no warmup instructions: %+v", second.Refusion)
	}
	if second.Fusion.Blocks == 0 {
		t.Fatalf("promoted run entered no fused blocks: %+v", second.Fusion)
	}
	if first.Output != second.Output || first.Stats != second.Stats {
		t.Fatalf("warmup and promoted runs diverge")
	}

	// Promotion disabled: two runs, no state, no promoted form.
	p2, err := Compile(context.Background(), w.FullSource(), isa.BranchReg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := Exec(context.Background(), Request{
			Program: p2, Input: w.Input, Loop: emu.LoopAdaptive, PromoteThreshold: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Refusion.Promoted || res.Fusion.Blocks != 0 {
			t.Fatalf("run %d promoted with promotion disabled: %+v %+v", i, res.Refusion, res.Fusion)
		}
	}
}

func TestAdaptiveRejectsHooksAndFaults(t *testing.T) {
	w, _ := workloads.ByName("wc")
	p, err := Compile(context.Background(), w.FullSource(), isa.Baseline, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan := &emu.FaultPlan{Seed: 1, Ops: []emu.FaultOp{{Kind: emu.FaultCorruptBReg, N: 1}}}
	_, err = Exec(context.Background(), Request{Program: p, Input: w.Input,
		Loop: emu.LoopAdaptive, Faults: plan})
	if err == nil {
		t.Fatal("LoopAdaptive accepted a fault plan")
	}
	var trap *emu.Trap
	if errors.As(err, &trap) {
		t.Fatalf("fault-plan rejection should not be a trap: %v", err)
	}
}

// FuzzAdaptiveDifferential is the adaptive tier's coverage-guided
// differential (wired into `make fuzz-smoke`): one generated program per
// input, run on both machines under the fast loop (reference) and twice
// under the adaptive tier with a fuzzed budget and threshold regime —
// so the budget cutoff and the promotion point land at arbitrary
// offsets relative to each other, including inside the warmup→promoted
// bridge. Asserts identical output, status, Stats, and trap fields.
func FuzzAdaptiveDifferential(f *testing.F) {
	f.Add(int64(1), int64(0), int64(0))
	f.Add(int64(20260806), int64(1000), int64(1))
	f.Add(int64(7), int64(70001), int64(2))
	f.Fuzz(func(t *testing.T, seed, budget, thSel int64) {
		gen := &progGen{r: rand.New(rand.NewSource(seed))}
		src := gen.generate()
		o := DefaultOptions()
		if thSel < 0 {
			thSel = -thSel
		}
		threshold := adaptiveThresholds[thSel%int64(len(adaptiveThresholds))]
		for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
			p, err := Compile(context.Background(), src, kind, o)
			if err != nil {
				t.Fatalf("%v: %v\nprogram:\n%s", kind, err, src)
			}
			run := func(mode emu.LoopMode) (*emu.Machine, error) {
				m, err := emu.New(p, "")
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				m.Loop = mode
				m.PromoteThreshold = threshold
				if budget > 0 {
					m.MaxInstructions = budget % (1 << 20)
				}
				_, runErr := m.Run()
				return m, runErr
			}
			fm, ferr := run(emu.LoopFast)
			for i := 0; i < 2; i++ {
				am, aerr := run(emu.LoopAdaptive)
				if (ferr == nil) != (aerr == nil) {
					t.Fatalf("%v run %d error divergence: fast=%v adaptive=%v\nprogram:\n%s",
						kind, i, ferr, aerr, src)
				}
				if ferr != nil {
					var ft, at *emu.Trap
					fok, aok := errors.As(ferr, &ft), errors.As(aerr, &at)
					if fok != aok {
						t.Fatalf("%v run %d trap-ness divergence: fast=%v adaptive=%v", kind, i, ferr, aerr)
					}
					if fok && *ft != *at {
						t.Fatalf("%v run %d trap divergence:\n fast:     %+v\n adaptive: %+v\nprogram:\n%s",
							kind, i, *ft, *at, src)
					}
				}
				if fm.Output() != am.Output() || fm.Status() != am.Status() || fm.Stats != am.Stats {
					t.Fatalf("%v run %d adaptive divergence: output %q vs %q, status %d vs %d\nprogram:\n%s",
						kind, i, fm.Output(), am.Output(), fm.Status(), am.Status(), src)
				}
			}
		}
	})
}
