package driver

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"branchreg/internal/isa"
)

const cacheTestSrc = `int main(void) { int s = 0; for (int i = 0; i < 9; i++) s += i; return s; }`

func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	o := DefaultOptions()
	const callers = 16
	var wg sync.WaitGroup
	progs := make([]*isa.Program, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := c.Compile(context.Background(), cacheTestSrc, isa.BranchReg, o)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 || st.Entries != 1 {
		t.Errorf("misses = %d entries = %d, want 1 compile for 1 key", st.Misses, st.Entries)
	}
	if st.Hits != callers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, callers-1)
	}
	for _, p := range progs[1:] {
		if p != progs[0] {
			t.Fatal("cache returned different program pointers for one key")
		}
	}
}

func TestCacheKeyComponents(t *testing.T) {
	c := NewCache()
	o := DefaultOptions()
	ctx := context.Background()
	// Same source, both machines: two keys.
	if _, err := c.Compile(ctx, cacheTestSrc, isa.Baseline, o); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(ctx, cacheTestSrc, isa.BranchReg, o); err != nil {
		t.Fatal(err)
	}
	// Different options fingerprint: third key.
	o2 := o
	o2.BRM.BranchRegs = 4
	if _, err := c.Compile(ctx, cacheTestSrc, isa.BranchReg, o2); err != nil {
		t.Fatal(err)
	}
	// Different source: fourth key.
	if _, err := c.Compile(ctx, cacheTestSrc+"\n", isa.BranchReg, o); err != nil {
		t.Fatal(err)
	}
	// Repeats of all four: hits only.
	for _, again := range []func() (*isa.Program, error){
		func() (*isa.Program, error) { return c.Compile(ctx, cacheTestSrc, isa.Baseline, o) },
		func() (*isa.Program, error) { return c.Compile(ctx, cacheTestSrc, isa.BranchReg, o) },
		func() (*isa.Program, error) { return c.Compile(ctx, cacheTestSrc, isa.BranchReg, o2) },
		func() (*isa.Program, error) { return c.Compile(ctx, cacheTestSrc+"\n", isa.BranchReg, o) },
	} {
		if _, err := again(); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Misses != 4 || st.Entries != 4 || st.Hits != 4 {
		t.Errorf("stats = %+v, want 4 misses, 4 entries, 4 hits", st)
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	o := DefaultOptions()
	ctx := context.Background()
	bad := `int main(void) { return ; }` // syntax error
	if _, err := c.Compile(ctx, bad, isa.BranchReg, o); err == nil {
		t.Fatal("bad source compiled")
	}
	if _, err := c.Compile(ctx, bad, isa.BranchReg, o); err == nil {
		t.Fatal("bad source compiled on second request")
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("failed compilation ran %d times, want 1", st.Misses)
	}
}

func TestCacheRespectsContext(t *testing.T) {
	c := NewCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Compile(ctx, cacheTestSrc, isa.BranchReg, DefaultOptions()); err == nil {
		t.Fatal("cancelled compile succeeded")
	}
	if st := c.Stats(); st.Requests != 0 {
		t.Errorf("cancelled request counted: %+v", st)
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Options)
		wantErr string
	}{
		{"default ok", func(o *Options) {}, ""},
		{"negative align", func(o *Options) { o.AlignWords = -4 }, "AlignWords"},
		{"zero bregs", func(o *Options) { o.BRM.BranchRegs = 0 }, "BranchRegs"},
		{"one breg", func(o *Options) { o.BRM.BranchRegs = 1 }, "BranchRegs"},
		{"nine bregs", func(o *Options) { o.BRM.BranchRegs = 9 }, "BranchRegs"},
		{"min bregs ok", func(o *Options) { o.BRM.BranchRegs = 2 }, ""},
	}
	for _, tc := range cases {
		o := DefaultOptions()
		tc.mutate(&o)
		err := o.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error = %v, want mention of %s", tc.name, err, tc.wantErr)
		}
	}
	// Compile must reject invalid options up front, not silently link.
	o := DefaultOptions()
	o.AlignWords = -1
	if _, err := Compile(context.Background(), cacheTestSrc, isa.BranchReg, o); err == nil {
		t.Error("Compile accepted AlignWords = -1")
	}
	if _, err := NewCache().Compile(context.Background(), cacheTestSrc, isa.BranchReg, o); err == nil {
		t.Error("Cache.Compile accepted AlignWords = -1")
	}
}

func TestFingerprintCoversOptions(t *testing.T) {
	base := DefaultOptions()
	variants := []func(*Options){
		func(o *Options) { o.Opt.Fold = false },
		func(o *Options) { o.Opt.CopyProp = false },
		func(o *Options) { o.Opt.CSE = false },
		func(o *Options) { o.Opt.DCE = false },
		func(o *Options) { o.Opt.Simplify = false },
		func(o *Options) { o.Opt.LICM = true },
		func(o *Options) { o.BRM.Hoist = false },
		func(o *Options) { o.BRM.ReplaceNoops = false },
		func(o *Options) { o.BRM.Schedule = false },
		func(o *Options) { o.BRM.BranchRegs = 4 },
		func(o *Options) { o.BRM.FastCompare = true },
		func(o *Options) { o.AlignWords = 8 },
	}
	seen := map[string]bool{base.Fingerprint(): true}
	for i, mutate := range variants {
		o := base
		mutate(&o)
		fp := o.Fingerprint()
		if seen[fp] {
			t.Errorf("variant %d does not change the fingerprint: %s", i, fp)
		}
		seen[fp] = true
	}
}

// TestCacheCompilePanicContained is the regression test for the
// singleflight wedge: a panicking compiler used to escape Cache.Compile
// before e.done was closed, so every later request for that key blocked
// forever. The panic must instead become a cached ErrCompilePanic error
// for the first caller, concurrent waiters, and later hits alike.
func TestCacheCompilePanicContained(t *testing.T) {
	orig := compileFn
	defer func() { compileFn = orig }()
	var calls atomic.Int64
	release := make(chan struct{})
	compileFn = func(ctx context.Context, src string, kind isa.Kind, o Options) (*isa.Program, error) {
		calls.Add(1)
		<-release
		panic("compiler bug")
	}

	c := NewCache()
	o := DefaultOptions()
	ctx := context.Background()

	// A concurrent waiter joins the in-flight compilation before the
	// panic fires; it must be released, not wedged.
	waiterErr := make(chan error, 1)
	go func() {
		_, err := c.Compile(ctx, cacheTestSrc, isa.BranchReg, o)
		waiterErr <- err
	}()
	for c.Stats().Requests == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		for c.Stats().Hits == 0 { // the waiter has joined once it counts as a hit
			time.Sleep(time.Millisecond)
		}
		close(release)
	}()

	if _, err := c.Compile(ctx, cacheTestSrc, isa.BranchReg, o); !errors.Is(err, ErrCompilePanic) {
		t.Fatalf("first caller: err = %v, want ErrCompilePanic", err)
	}
	select {
	case err := <-waiterErr:
		if !errors.Is(err, ErrCompilePanic) {
			t.Fatalf("waiter: err = %v, want ErrCompilePanic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter wedged: e.done was never closed after the compile panic")
	}

	// The panic is cached like any compile error: a later request for the
	// same key gets the error without re-invoking the compiler.
	if _, err := c.Compile(ctx, cacheTestSrc, isa.BranchReg, o); !errors.Is(err, ErrCompilePanic) {
		t.Fatalf("later caller: err = %v, want cached ErrCompilePanic", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compiler invoked %d times, want 1 (panic result cached)", n)
	}
}
