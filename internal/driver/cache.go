package driver

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"branchreg/internal/emu"
	"branchreg/internal/isa"
)

// cacheKey identifies one compilation: what source, for which machine,
// under which options. Two compilations with equal keys produce
// instruction-identical programs, so the second one is pure waste — the
// cache exists to make `brbench -all` (which revisits the same programs
// for Table I, the cycle estimates, Figure 9, the cache study, and the
// ablations) compile each (program, machine, options) at most once.
type cacheKey struct {
	src  [sha256.Size]byte
	kind isa.Kind
	opts string // Options.Fingerprint()
}

// cacheEntry is a singleflight slot: the first requester compiles while
// later requesters wait on done.
type cacheEntry struct {
	done chan struct{}
	p    *isa.Program
	err  error
}

// CacheStats counts cache traffic. Misses counts compiler invocations and
// Entries counts distinct keys, so Misses == Entries is the observable
// form of the "each program compiled at most once" guarantee; Hits counts
// requests served from a finished or in-flight compilation.
type CacheStats struct {
	Requests int64 `json:"requests"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Entries  int64 `json:"entries"`
}

// Cache memoizes Compile. A linked *isa.Program is never mutated after
// Link (the emulator copies the data image into its own memory), so a
// cached program is shared freely across goroutines; concurrent requests
// for the same key block on a single compilation (singleflight).
// Compilation errors are cached too: a workload with a syntax error fails
// every variant without recompiling.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    int64
	misses  int64
	// results, when attached with SetResultCache, memoizes whole
	// execution Results on top of the compile memoization — see
	// rescache.go for the determinism argument and the eligibility
	// rules. nil (the default) preserves the historical contract:
	// compilation is cached, execution never is.
	results *ResultCache
}

// NewCache returns an empty compile cache.
func NewCache() *Cache {
	return &Cache{entries: map[cacheKey]*cacheEntry{}}
}

// SetResultCache attaches (or, with nil, detaches) a deterministic
// result cache consulted by Exec. Attach before the cache is shared
// across goroutines; the field is not synchronized.
func (c *Cache) SetResultCache(rc *ResultCache) { c.results = rc }

// ResultCache returns the attached result cache, or nil.
func (c *Cache) ResultCache() *ResultCache { return c.results }

// Compile returns the cached program for (src, kind, o), compiling it on
// first request. The context governs only this caller's wait: a
// cancelled waiter returns ctx.Err() while the in-flight compilation
// finishes and stays cached for others.
func (c *Cache) Compile(ctx context.Context, src string, kind isa.Kind, o Options) (*isa.Program, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := cacheKey{src: sha256.Sum256([]byte(src)), kind: kind, opts: o.Fingerprint()}

	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		mCacheHits.Inc()
		c.mu.Unlock()
		select {
		case <-e.done:
			return e.p, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e = &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	mCacheMisses.Inc()
	c.mu.Unlock()

	// Compile under context.Background(): the result outlives this
	// caller, and caching a ctx.Err() would poison the entry for others.
	//
	// done is closed by defer, and a compiler panic is converted into a
	// cached error: if the panic escaped before done closed, every future
	// waiter on this key would block forever (the singleflight wedge),
	// turning one bad program into a stuck server.
	func() {
		defer close(e.done)
		defer func() {
			if p := recover(); p != nil {
				e.p, e.err = nil, fmt.Errorf("%w: %v", ErrCompilePanic, p)
			}
		}()
		e.p, e.err = compileFn(context.Background(), src, kind, o)
	}()
	return e.p, e.err
}

// ErrCompilePanic marks a compilation that panicked instead of
// returning: a compiler bug, cached like any other compile error so the
// key stays usable, but distinguishable (errors.Is) so servers can
// report it as an internal fault rather than blaming the client.
var ErrCompilePanic = errors.New("driver: compiler panicked")

// compileFn is Compile, indirected so the cache's panic-containment
// path is testable with a deliberately panicking compiler.
var compileFn = Compile

// Run compiles src through the cache and executes it with the given stdin.
//
// Deprecated: use Cache.Exec with a Request.
func (c *Cache) Run(ctx context.Context, src string, kind isa.Kind, input string, o Options) (*Result, error) {
	return c.Exec(ctx, Request{Source: src, Kind: kind, Input: input, Options: o})
}

// RunFaults is Run with a deterministic fault plan armed on the emulator.
//
// Deprecated: use Cache.Exec with a Request carrying Faults.
func (c *Cache) RunFaults(ctx context.Context, src string, kind isa.Kind, input string, o Options, plan *emu.FaultPlan) (*Result, error) {
	return c.Exec(ctx, Request{Source: src, Kind: kind, Input: input, Options: o, Faults: plan})
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Requests: c.hits + c.misses,
		Hits:     c.hits,
		Misses:   c.misses,
		Entries:  int64(len(c.entries)),
	}
}
