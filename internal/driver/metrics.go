package driver

import "branchreg/internal/obs"

// Package-level metric handles, resolved once so the hot paths pay only
// an atomic add (obs.Registry lookups take a mutex). Everything lands in
// obs.Default, which `brbench -metrics` prints and cmd/benchrecord
// snapshots.
//
// Naming: driver.* for tool-chain activity, emu.* for dynamic execution
// totals aggregated here on the driver side (the emulator itself never
// imports obs; see the obs package doc).
var (
	mCompiles  = obs.Default.Counter("driver.compiles")
	mCompileNS = obs.Default.Histogram("driver.compile_ns")

	mRuns           = obs.Default.Counter("driver.runs")
	mRunNS          = obs.Default.Histogram("driver.run_ns")
	mEngineFast     = obs.Default.Counter("driver.engine.fast")
	mEngineInst     = obs.Default.Counter("driver.engine.instrumented")
	mEngineFused    = obs.Default.Counter("driver.engine.fused")
	mEngineAdaptive = obs.Default.Counter("driver.engine.adaptive")

	mFusedBlocks = obs.Default.Counter("emu.fused.blocks")
	mFusedSupers = obs.Default.Counter("emu.fused.superinsts")
	mFusedBails  = obs.Default.Counter("emu.fused.bails")

	mRefusionPromoted = obs.Default.Counter("emu.refusion.promoted_runs")

	mCacheHits   = obs.Default.Counter("driver.cache.hits")
	mCacheMisses = obs.Default.Counter("driver.cache.misses")

	mPoolGets   = obs.Default.Counter("driver.pool.gets")
	mPoolPuts   = obs.Default.Counter("driver.pool.puts")
	mPoolFresh  = obs.Default.Counter("driver.pool.fresh")
	mPoolZeroNS = obs.Default.Histogram("driver.pool.zero_ns")

	mEmuInsts     = obs.Default.Counter("emu.instructions")
	mEmuTransfers = obs.Default.Counter("emu.transfers")
)

// PoolStats is a snapshot of the emulator-memory pool counters. Gets and
// Puts are deterministic for a given experiment spec; Fresh (and hence
// Reused) depends on garbage-collector timing, so reports treat it as an
// environment observation like wall-clock phase times.
type PoolStats struct {
	Gets  int64 `json:"gets"`
	Puts  int64 `json:"puts"`
	Fresh int64 `json:"fresh"`
}

// Reused counts pool Gets served by a recycled buffer.
func (p PoolStats) Reused() int64 { return p.Gets - p.Fresh }

// Sub returns the delta p - earlier, for measuring one suite's traffic.
func (p PoolStats) Sub(earlier PoolStats) PoolStats {
	return PoolStats{
		Gets:  p.Gets - earlier.Gets,
		Puts:  p.Puts - earlier.Puts,
		Fresh: p.Fresh - earlier.Fresh,
	}
}

// PoolStatsNow reads the current process-wide pool counters.
func PoolStatsNow() PoolStats {
	return PoolStats{
		Gets:  mPoolGets.Value(),
		Puts:  mPoolPuts.Value(),
		Fresh: mPoolFresh.Value(),
	}
}
