// Package emu executes linked programs for both designed machines at
// instruction level, collecting the dynamic measurements the paper's ease
// environment gathered: instruction counts, data-memory references,
// transfers of control by kind, noops, branch-target-address calculations,
// branch-register save/restore traffic, and prefetch distances (paper §7).
package emu

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"branchreg/internal/isa"
)

// DistHistMax caps the prefetch-distance histogram; distances at or above
// the cap land in the last bucket.
const DistHistMax = 8

// Stats are the dynamic counts of one run.
type Stats struct {
	Instructions int64
	Loads        int64
	Stores       int64

	Noops int64

	// Baseline transfer kinds (executed branch instructions, taken or not).
	UncondJumps  int64 // unconditional branches + indirect jumps (not calls/returns)
	CondBranches int64
	CondTaken    int64
	Calls        int64
	Returns      int64

	// BRM-specific.
	BrCalcs      int64 // executed brcalc/brld instructions
	BrMoves      int64 // executed movbr/movrb/movbr2 (BR save/restore traffic)
	PrefetchHit  int64 // taken transfers whose target calc was >= MinPrefetchDist earlier
	PrefetchMiss int64 // taken transfers with a late target calc (pipeline delay)
	DistHist     [DistHistMax + 1]int64
}

// DataRefs returns total data-memory references.
func (s *Stats) DataRefs() int64 { return s.Loads + s.Stores }

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.Instructions += other.Instructions
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.Noops += other.Noops
	s.UncondJumps += other.UncondJumps
	s.CondBranches += other.CondBranches
	s.CondTaken += other.CondTaken
	s.Calls += other.Calls
	s.Returns += other.Returns
	s.BrCalcs += other.BrCalcs
	s.BrMoves += other.BrMoves
	s.PrefetchHit += other.PrefetchHit
	s.PrefetchMiss += other.PrefetchMiss
	for i := range s.DistHist {
		s.DistHist[i] += other.DistHist[i]
	}
}

// Transfers returns the total executed transfers of control.
func (s *Stats) Transfers() int64 {
	return s.UncondJumps + s.CondBranches + s.Calls + s.Returns
}

// MinPrefetchDist is the number of instructions that must separate a branch
// target address calculation from its transfer to hide the cache access
// (paper Figure 9).
const MinPrefetchDist = 2

// TransferKind classifies a dynamic transfer event for the pipeline
// simulator.
type TransferKind int

const (
	TransferUncond TransferKind = iota // jumps, calls, returns, dispatch
	TransferCond                       // conditional branches (taken or not)
)

// Hooks observe the run for the cache and pipeline studies.
type Hooks struct {
	// Fetch is called with the byte address of every executed instruction.
	Fetch func(addr int32)
	// Prefetch is called when a branch-register assignment directs the
	// instruction cache to prefetch the line containing addr (paper §8).
	Prefetch func(addr int32)
	// Exec is called after each instruction with its Text index.
	Exec func(idx int)
	// Transfer is called for every executed transfer of control. taken
	// reports whether control left the sequential path; dist is the
	// BRM's calc-to-transfer distance in instructions (-1 on the baseline
	// machine, where targets are never prefetched).
	Transfer func(kind TransferKind, taken bool, dist int64)
}

// seq is the branch-register sentinel meaning "fall through" (the untaken
// path of a compare-with-assignment).
const seq = int32(-1)

// breg is one branch register. Kept to 16 bytes (addr is an int32 byte
// address — the machine's whole address space is int32) so the B file
// fits two cache lines; the b[7] return-address store on every BRM
// transfer is the hottest write in the fused engine.
type breg struct {
	addr     int32 // target byte address or seq
	viaCmp   bool  // written by a compare (the referencing transfer is conditional)
	isRA     bool  // holds a return address (the b[7] side effect or a restore)
	valid    bool  // some instruction assigned this register
	calcTime int64 // Stats.Instructions value when the prefetch was issued
}

// Machine is an emulator instance.
type Machine struct {
	P     *isa.Program
	Stats Stats
	Hooks Hooks

	R   [32]int32
	F   [32]float64
	B   [8]breg
	CC  int32 // baseline condition code: sign of (a - b), with 0 = equal
	ccF bool  // last compare was floating point (informational)

	Mem   []byte
	input []byte
	inPos int
	out   strings.Builder

	halted bool
	status int32

	pc      int // Text index
	pending int // delayed-branch target index, -2 when none (baseline)

	funcEntry []bool // Text indices that begin functions, len == len(P.Text)

	faults *faultState // deterministic fault-injection state (nil = none)

	dec     []uop  // predecoded form, built lazily by RunContext
	fp      *fprog // block-fused form, built lazily by RunContext
	scratch []byte // putf formatting buffer

	// Fusion counts the fused engine's dynamic behavior (blocks entered,
	// superinstruction pairs retired, hand-offs to the fast loop). It is
	// deliberately not part of Stats: Stats must stay identical across
	// engine tiers, while Fusion exists to describe the tier itself.
	Fusion FusionStats

	// Prof, when set, accumulates flow counts at transfers of control
	// (see BlockProfile). Profiling is fast-path compatible: it never
	// forces the instrumented loop.
	Prof        *BlockProfile
	profEntered bool   // Arrive[entry] already charged for this machine
	engine      string // engine used by the last RunContext (see Engine)

	MaxInstructions int64

	// Loop selects the execution engine; the zero value (LoopAuto) uses the
	// fast loop whenever no hooks are installed and no fault plan is armed.
	Loop LoopMode

	// PromoteThreshold is the adaptive tier's promotion trigger: a block
	// arrival count at or above it promotes the program to a re-fused
	// form (see adaptive.go). Zero means DefaultPromoteThreshold;
	// negative disables promotion (the adaptive tier then runs the plain
	// fast loop). Ignored by every other LoopMode.
	PromoteThreshold int64

	// Refusion describes what the adaptive tier did for the last run
	// (zero value for unpromoted runs and other engines). Like Fusion it
	// is not part of Stats: Stats stay identical across tiers.
	Refusion RefusionStats
}

// isFuncEntry reports whether Text index idx begins a function. Transfer
// targets can be arbitrary computed addresses, so idx is range-checked.
func (m *Machine) isFuncEntry(idx int) bool {
	return idx >= 0 && idx < len(m.funcEntry) && m.funcEntry[idx]
}

// halt target: transferring to byte address 0 ends the program.
const haltAddr = 0

// New prepares an emulator for a linked program with the given input.
func New(p *isa.Program, input string) (*Machine, error) {
	return NewWithMem(p, input, nil)
}

// NewWithMem is New with a caller-provided memory buffer (e.g. from a pool).
// mem must be zeroed and exactly isa.MemBytes long; pass nil to allocate.
func NewWithMem(p *isa.Program, input string, mem []byte) (*Machine, error) {
	if !p.Linked {
		return nil, fmt.Errorf("emu: program is not linked")
	}
	if mem == nil {
		mem = make([]byte, isa.MemBytes)
	} else if len(mem) != isa.MemBytes {
		return nil, fmt.Errorf("emu: memory buffer is %d bytes, want %d", len(mem), isa.MemBytes)
	}
	m := &Machine{
		P:               p,
		Mem:             mem,
		input:           []byte(input),
		pending:         -2,
		funcEntry:       make([]bool, len(p.Text)),
		MaxInstructions: 4_000_000_000,
	}
	copy(m.Mem[isa.DataBase:], p.DataImage)
	for _, idx := range p.FuncStarts {
		if idx >= 0 && idx < len(m.funcEntry) {
			m.funcEntry[idx] = true
		}
	}
	spReg := isa.BaseSPReg
	if p.Kind == isa.BranchReg {
		spReg = isa.BRMSPReg
	}
	m.R[spReg] = isa.StackTop
	// Return address of main: the halt address.
	if p.Kind == isa.Baseline {
		m.R[isa.RABase] = haltAddr
	} else {
		m.B[isa.RABr] = breg{addr: haltAddr, calcTime: 0, valid: true}
	}
	m.pc = p.EntryPC
	return m, nil
}

// Output returns everything the program wrote.
func (m *Machine) Output() string { return m.out.String() }

// ReserveOutput pre-sizes the output buffer for a workload expected to
// write about n bytes, avoiding grow-and-copy churn on the putc hot path.
func (m *Machine) ReserveOutput(n int) {
	if n > 0 {
		m.out.Grow(n)
	}
}

// Status returns the exit status.
func (m *Machine) Status() int32 { return m.status }

// Run executes until halt, returning the exit status.
func (m *Machine) Run() (int32, error) {
	return m.RunContext(context.Background())
}

// ctxCheckStride is how many instructions run between context checks in
// RunContext: rare enough to stay off the profile, frequent enough that
// a cancelled or timed-out job stops within a few milliseconds.
const ctxCheckStride = 1 << 16

// RunContext executes until halt, returning the exit status. The context
// is polled every ctxCheckStride instructions, so a per-job timeout
// interrupts even a diverging program.
//
// The engine is chosen by m.Loop: under LoopAuto (the default) the
// predecoded fast loop runs whenever it can reproduce the instrumented
// loop exactly — no hooks installed and no fault plan armed — and the
// instruction-at-a-time Step loop runs otherwise.
func (m *Machine) RunContext(ctx context.Context) (int32, error) {
	fast := false
	fused := false
	adaptive := false
	switch m.Loop {
	case LoopFast:
		if m.hooksInstalled() || m.faults != nil {
			return 0, fmt.Errorf("emu: LoopFast cannot honor hooks or fault plans")
		}
		fast = true
	case LoopFused:
		if m.hooksInstalled() || m.faults != nil {
			return 0, fmt.Errorf("emu: LoopFused cannot honor hooks or fault plans")
		}
		fused = true
	case LoopAdaptive:
		if m.hooksInstalled() || m.faults != nil {
			return 0, fmt.Errorf("emu: LoopAdaptive cannot honor hooks or fault plans")
		}
		adaptive = true
	case LoopAuto:
		fused = !m.hooksInstalled() && m.faults == nil
	}
	switch {
	case adaptive:
		m.engine = EngineAdaptive
	case fused:
		m.engine = EngineFused
	case fast:
		m.engine = EngineFast
	default:
		m.engine = EngineInstrumented
	}
	if m.Prof != nil && !m.profEntered {
		m.profEntered = true
		if m.pc >= 0 && m.pc < len(m.Prof.Arrive) {
			m.Prof.Arrive[m.pc]++
		}
	}
	var status int32
	var err error
	if fast || fused || adaptive {
		if m.dec == nil {
			m.dec = predecode(m.P)
		}
		if fused && m.fp == nil {
			m.fp = buildFprog(m.P, m.dec, true)
		}
		// A profiled run dispatches to the profiled twin loop; the
		// unprofiled loops carry no profiling code at all (see
		// fastloop_prof.go for why the twins are separate functions).
		baseline := m.P.Kind == isa.Baseline
		switch {
		case adaptive:
			status, err = m.runAdaptive(ctx)
		case fused && baseline && m.Prof != nil:
			status, err = runFusedBaselineProf(m, ctx, m.Prof)
		case fused && baseline:
			status, err = runFusedBaseline(m, ctx)
		case fused && m.Prof != nil:
			status, err = runFusedBRMProf(m, ctx, m.Prof)
		case fused:
			status, err = runFusedBRM(m, ctx)
		case baseline && m.Prof != nil:
			status, err = runFastBaselineProf(m, ctx, m.Prof)
		case baseline:
			status, err = m.runFastBaseline(ctx)
		case m.Prof != nil:
			status, err = runFastBRMProf(m, ctx, m.Prof)
		default:
			status, err = m.runFastBRM(ctx)
		}
	} else {
		status, err = m.runInstrumented(ctx)
	}
	// Close the flow at the run's last instruction so Counts() conserves.
	// Only a finished run (halt or trap) closes; a context cancellation
	// may be resumed, so its exit stays open.
	if m.Prof != nil {
		var t *Trap
		if m.halted || errors.As(err, &t) {
			if m.pc >= 0 && m.pc < len(m.Prof.Depart) {
				m.Prof.Depart[m.pc]++
			}
		}
	}
	return status, err
}

// runInstrumented is the original Step-at-a-time engine, required for
// hooks (cache and pipeline studies) and fault injection.
func (m *Machine) runInstrumented(ctx context.Context) (int32, error) {
	next := m.Stats.Instructions + ctxCheckStride
	for !m.halted {
		if err := m.Step(); err != nil {
			return 0, err
		}
		if m.Stats.Instructions > m.MaxInstructions {
			t := m.trapHere(TrapStepBudget, "instruction limit exceeded")
			t.Limit = m.MaxInstructions
			t.Executed = m.Stats.Instructions
			return 0, t
		}
		if m.Stats.Instructions >= next {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			next = m.Stats.Instructions + ctxCheckStride
		}
	}
	return m.status, nil
}

func (m *Machine) where() string {
	if m.pc >= 0 && m.pc < len(m.P.FuncOfPC) {
		return m.P.FuncOfPC[m.pc]
	}
	return "?"
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.pc < 0 || m.pc >= len(m.P.Text) {
		return &Trap{Kind: TrapPCOutOfRange, PC: isa.IndexToAddr(m.pc), Fn: m.where(),
			Detail: fmt.Sprintf("pc index %d outside text [0,%d)", m.pc, len(m.P.Text))}
	}
	if m.faults != nil {
		if err := m.applyFaults(); err != nil {
			return err
		}
	}
	in := &m.P.Text[m.pc]
	addr := isa.IndexToAddr(m.pc)
	if m.Hooks.Fetch != nil {
		m.Hooks.Fetch(addr)
	}
	m.Stats.Instructions++
	if m.Hooks.Exec != nil {
		m.Hooks.Exec(m.pc)
	}

	var err error
	if m.P.Kind == isa.Baseline {
		err = m.stepBaseline(in, addr)
	} else {
		err = m.stepBRM(in, addr)
	}
	return err
}

// ---- shared operation execution ----

func (m *Machine) rhs(in *isa.Instr) int32 {
	if in.UseImm {
		return in.Imm
	}
	return m.R[in.Rs2]
}

func (m *Machine) setR(r int, v int32) {
	if r != isa.ZeroReg {
		m.R[r] = v
	}
}

func (m *Machine) loadWord(addr int32) (int32, error) {
	if addr < 0 || int(addr)+4 > len(m.Mem) {
		return 0, m.trapHere(TrapOOBLoad, "load out of range: %#x", uint32(addr))
	}
	if addr%isa.WordSize != 0 {
		return 0, m.trapHere(TrapMisaligned, "misaligned word load: %#x", uint32(addr))
	}
	return int32(m.Mem[addr]) | int32(m.Mem[addr+1])<<8 |
		int32(m.Mem[addr+2])<<16 | int32(m.Mem[addr+3])<<24, nil
}

func (m *Machine) storeWord(addr, v int32) error {
	if addr < 0 || int(addr)+4 > len(m.Mem) {
		return m.trapHere(TrapOOBStore, "store out of range: %#x", uint32(addr))
	}
	if addr%isa.WordSize != 0 {
		return m.trapHere(TrapMisaligned, "misaligned word store: %#x", uint32(addr))
	}
	m.Mem[addr] = byte(v)
	m.Mem[addr+1] = byte(v >> 8)
	m.Mem[addr+2] = byte(v >> 16)
	m.Mem[addr+3] = byte(v >> 24)
	return nil
}

// exec handles every non-control-flow operation common to both machines.
// It reports whether it handled the op.
func (m *Machine) exec(in *isa.Instr) (bool, error) {
	switch in.Op {
	case isa.OpNop:
		m.Stats.Noops++
	case isa.OpAdd:
		m.setR(in.Rd, m.R[in.Rs1]+m.rhs(in))
	case isa.OpSub:
		m.setR(in.Rd, m.R[in.Rs1]-m.rhs(in))
	case isa.OpMul:
		m.setR(in.Rd, m.R[in.Rs1]*m.rhs(in))
	case isa.OpDiv:
		d := m.rhs(in)
		if d == 0 {
			return true, m.trapHere(TrapArithmetic, "division by zero")
		}
		m.setR(in.Rd, m.R[in.Rs1]/d)
	case isa.OpRem:
		d := m.rhs(in)
		if d == 0 {
			return true, m.trapHere(TrapArithmetic, "modulo by zero")
		}
		m.setR(in.Rd, m.R[in.Rs1]%d)
	case isa.OpAnd:
		m.setR(in.Rd, m.R[in.Rs1]&m.rhs(in))
	case isa.OpOr:
		m.setR(in.Rd, m.R[in.Rs1]|m.rhs(in))
	case isa.OpXor:
		m.setR(in.Rd, m.R[in.Rs1]^m.rhs(in))
	case isa.OpSll:
		m.setR(in.Rd, m.R[in.Rs1]<<(uint32(m.rhs(in))&31))
	case isa.OpSrl:
		m.setR(in.Rd, int32(uint32(m.R[in.Rs1])>>(uint32(m.rhs(in))&31)))
	case isa.OpSra:
		m.setR(in.Rd, m.R[in.Rs1]>>(uint32(m.rhs(in))&31))
	case isa.OpSethi:
		m.setR(in.Rd, in.Imm<<12)
	case isa.OpSet:
		v := int32(0)
		if in.Cond.HoldsInt(m.R[in.Rs1], m.rhs(in)) {
			v = 1
		}
		m.setR(in.Rd, v)
	case isa.OpFSet:
		v := int32(0)
		if in.Cond.HoldsFloat(m.F[in.Rs1], m.F[in.Rs2]) {
			v = 1
		}
		m.setR(in.Rd, v)
	case isa.OpLw:
		m.Stats.Loads++
		a := m.R[in.Rs1] + m.rhs(in)
		v, err := m.loadWord(a)
		if err != nil {
			return true, err
		}
		m.setR(in.Rd, v)
	case isa.OpLb:
		m.Stats.Loads++
		a := m.R[in.Rs1] + m.rhs(in)
		if a < 0 || int(a) >= len(m.Mem) {
			return true, m.trapHere(TrapOOBLoad, "byte load out of range: %#x", uint32(a))
		}
		m.setR(in.Rd, int32(int8(m.Mem[a])))
	case isa.OpSw:
		m.Stats.Stores++
		a := m.R[in.Rs1] + m.rhs(in)
		if err := m.storeWord(a, m.R[in.Rd]); err != nil {
			return true, err
		}
	case isa.OpSb:
		m.Stats.Stores++
		a := m.R[in.Rs1] + m.rhs(in)
		if a < 0 || int(a) >= len(m.Mem) {
			return true, m.trapHere(TrapOOBStore, "byte store out of range: %#x", uint32(a))
		}
		m.Mem[a] = byte(m.R[in.Rd])
	case isa.OpLf:
		m.Stats.Loads++
		a := m.R[in.Rs1] + m.rhs(in)
		if a < 0 || int(a)+8 > len(m.Mem) {
			return true, m.trapHere(TrapOOBLoad, "float load out of range: %#x", uint32(a))
		}
		var bits uint64
		for i := 0; i < 8; i++ {
			bits |= uint64(m.Mem[a+int32(i)]) << (8 * i)
		}
		m.F[in.Rd] = isa.FloatFromBits(bits)
	case isa.OpSf:
		m.Stats.Stores++
		a := m.R[in.Rs1] + m.rhs(in)
		if a < 0 || int(a)+8 > len(m.Mem) {
			return true, m.trapHere(TrapOOBStore, "float store out of range: %#x", uint32(a))
		}
		bits := floatBits(m.F[in.Rd])
		for i := 0; i < 8; i++ {
			m.Mem[a+int32(i)] = byte(bits >> (8 * i))
		}
	case isa.OpFadd:
		m.F[in.Rd] = m.F[in.Rs1] + m.F[in.Rs2]
	case isa.OpFsub:
		m.F[in.Rd] = m.F[in.Rs1] - m.F[in.Rs2]
	case isa.OpFmul:
		m.F[in.Rd] = m.F[in.Rs1] * m.F[in.Rs2]
	case isa.OpFdiv:
		m.F[in.Rd] = m.F[in.Rs1] / m.F[in.Rs2]
	case isa.OpFneg:
		m.F[in.Rd] = -m.F[in.Rs1]
	case isa.OpFmov:
		m.F[in.Rd] = m.F[in.Rs1]
	case isa.OpCvtif:
		m.F[in.Rd] = float64(m.R[in.Rs1])
	case isa.OpCvtfi:
		m.setR(in.Rd, int32(m.F[in.Rs1]))
	case isa.OpTrap:
		return true, m.trap(in)
	default:
		return false, nil
	}
	return true, nil
}

func (m *Machine) trap(in *isa.Instr) error {
	switch in.Imm {
	case isa.TrapExit:
		m.halted = true
		m.status = m.R[1]
	case isa.TrapGetc:
		if m.inPos >= len(m.input) {
			m.R[1] = -1
		} else {
			m.R[1] = int32(m.input[m.inPos])
			m.inPos++
		}
	case isa.TrapPutc:
		m.out.WriteByte(byte(m.R[1]))
	case isa.TrapPutf:
		m.putFloat(m.F[1])
	default:
		return m.trapHere(TrapIllegalInstr, "unknown trap %d", in.Imm)
	}
	return nil
}

// putFloat appends v formatted as %.4f — the putf trap's fixed format —
// without fmt's reflection and interface allocation on the hot path.
// strconv.AppendFloat('f', 4) matches fmt's output for every value,
// including NaN and the infinities.
func (m *Machine) putFloat(v float64) {
	m.scratch = strconv.AppendFloat(m.scratch[:0], v, 'f', 4, 64)
	m.out.Write(m.scratch)
}

func floatBits(f float64) uint64 {
	return isa.FloatBits(f)
}
