package emu

import (
	"context"
	"testing"
)

// Unit tests for the adaptive tier's building blocks. The end-to-end
// byte-identity contract lives in internal/driver (the adaptive
// differential matrix and FuzzAdaptiveDifferential); here we pin the
// pieces those tests compose: DP segmentation never fuses fewer
// dispatches than the greedy pass, profile merging is exact, and the
// promotion context fires iff a block crosses the threshold.

// segFused counts the dispatches a segmentation choice vector saves.
func segFused(ch []int8) int {
	saved := 0
	for i := 0; i < len(ch); {
		step := int(ch[i])
		saved += step - 1
		i += step
	}
	return saved
}

// greedyFused mirrors the static seal() pass: probe a triple first,
// then a pair, at each position.
func greedyFused(kinds []uopKind, pol *fusePolicy) int {
	saved := 0
	for i := 0; i < len(kinds); {
		if i+2 < len(kinds) {
			if _, ok := pol.triple(kinds[i], kinds[i+1], kinds[i+2]); ok {
				saved += 2
				i += 3
				continue
			}
		}
		if i+1 < len(kinds) {
			if _, ok := pol.pair(kinds[i], kinds[i+1]); ok {
				saved++
				i += 2
				continue
			}
		}
		i++
	}
	return saved
}

func TestDPSegmentationBeatsGreedy(t *testing.T) {
	// Exhaustive sweep over short kind sequences drawn from a small
	// alphabet with the static tables: the DP choice vector must be
	// well-formed (steps land exactly at the end) and save at least as
	// many dispatches as greedy triple-then-pair probing.
	alphabet := []uopKind{uConst, uAddImm, uAddReg, uSllImm, uLwImm, uCmpImm, uNop}
	pol := &staticPolicy
	var sweep func(seq []uopKind)
	sweep = func(seq []uopKind) {
		if len(seq) > 0 {
			src := make([]fuop, len(seq))
			for i, k := range seq {
				src[i].kind = k
			}
			ch := dpSegment(src, pol)
			// Validate structure: steps of 1/2/3 that tile the sequence,
			// each multi-step backed by a table entry.
			for i := 0; i < len(ch); {
				step := int(ch[i])
				if step < 1 || step > 3 || i+step > len(ch) {
					t.Fatalf("seq %v: malformed choice %v at %d", seq, ch, i)
				}
				switch step {
				case 2:
					if _, ok := pol.pair(seq[i], seq[i+1]); !ok {
						t.Fatalf("seq %v: choice fuses unfusable pair at %d", seq, i)
					}
				case 3:
					if _, ok := pol.triple(seq[i], seq[i+1], seq[i+2]); !ok {
						t.Fatalf("seq %v: choice fuses unfusable triple at %d", seq, i)
					}
				}
				i += step
			}
			if dp, greedy := segFused(ch), greedyFused(seq, pol); dp < greedy {
				t.Fatalf("seq %v: dp saves %d < greedy %d", seq, dp, greedy)
			}
		}
		if len(seq) == 4 {
			return
		}
		for _, k := range alphabet {
			sweep(append(seq, k))
		}
	}
	sweep(nil)
}

func TestBlockProfileMerge(t *testing.T) {
	a, b := NewBlockProfile(3), NewBlockProfile(3)
	a.Arrive[0], a.Depart[1], a.Taken[2] = 1, 2, 3
	b.Arrive[0], b.NotTaken[1], b.Penalty[2] = 10, 20, 30
	a.Merge(b)
	if a.Arrive[0] != 11 || a.Depart[1] != 2 || a.Taken[2] != 3 ||
		a.NotTaken[1] != 20 || a.Penalty[2] != 30 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestPromoteCtxFires(t *testing.T) {
	ctx := context.Background()
	arrive := make([]int64, 4)
	pc := &promoteCtx{Context: ctx, arrive: arrive, threshold: 64}
	if err := pc.Err(); err != nil {
		t.Fatalf("cold promoteCtx fired: %v", err)
	}
	arrive[2] = 63
	if err := pc.Err(); err != nil {
		t.Fatalf("below-threshold promoteCtx fired: %v", err)
	}
	arrive[2] = 64
	if err := pc.Err(); err != errPromote {
		t.Fatalf("promoteCtx did not fire at threshold: %v", err)
	}
	// Accumulated arrivals from earlier runs count toward the threshold.
	arrive[2] = 0
	pc.base = []int64{0, 0, 60, 0}
	arrive[2] = 4
	if err := pc.Err(); err != errPromote {
		t.Fatalf("promoteCtx ignored accumulated base: %v", err)
	}
	// A real context error wins over promotion.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	pc.Context = cctx
	if err := pc.Err(); err != context.Canceled {
		t.Fatalf("cancelled promoteCtx returned %v", err)
	}
}

func TestMinedVocabularyCoversStaticAndExt(t *testing.T) {
	// mineVocab admits patterns from both the static and the extended
	// tables, and nothing else.
	v := &dynVocab{pairs: map[uint16]uopKind{}, triples: map[uint32]uopKind{}}
	if k, ok := fusePair(uConst, uAddImm); !ok || k == 0 {
		t.Fatal("static pair const+addi missing from fusePair")
	}
	if _, ok := fusePairExt(uAddImm, uCmpImm); !ok {
		t.Fatal("extended pair addi+cmpi missing from fusePairExt")
	}
	if _, ok := fusePair(uAddImm, uCmpImm); ok {
		t.Fatal("addi+cmpi unexpectedly in the static table; ext test is vacuous")
	}
	if _, ok := fuseTripleExt(uConst, uAddImm, uLwImm); !ok {
		t.Fatal("extended triple const+addi+lwi missing from fuseTripleExt")
	}
	if _, ok := v.pair(uConst, uAddImm); ok {
		t.Fatal("empty vocabulary resolved a pair")
	}
}
