package emu

import (
	"sort"

	"branchreg/internal/isa"
)

// This file measures fusion opportunity rather than exploiting it: it
// builds the unfused block form of a program and weights every adjacent
// micro-op pair by its dynamic execution count (reconstructed from a
// BlockProfile by flow conservation). cmd/fusepairs aggregates these
// reports over the workload suite; the fusion selection in gen/main.go
// (pairSel/tripleSel, expanded into fusedtab.go) and its derivation are
// documented in DESIGN §10.

// PairStat is one adjacent micro-op pair and its dynamic frequency.
type PairStat struct {
	First  string
	Second string
	Count  int64
}

// FuseReport summarizes one profiled run's fusion opportunities.
type FuseReport struct {
	// Pairs counts adjacent pairs inside block bodies (both ops
	// straight-line, no transfer between them), keyed by kind names.
	Pairs map[[2]string]int64
	// TermPairs counts (last body op, terminator op) adjacencies — the
	// candidates for terminator fusion like cmp+bcond or cmpbr+transfer.
	TermPairs map[[2]string]int64
	// Triples counts adjacent straight-line op triples, the candidates
	// for three-wide superinstructions.
	Triples map[[3]string]int64
	// Terms counts dynamic block executions by terminator class.
	Terms map[string]int64
	// Blocks and Insts are dynamic block entries and instructions
	// retired inside blocks; Insts/Blocks is the average block length.
	Blocks int64
	Insts  int64
}

// PairStats profiles the fusion opportunities of one program from a
// completed profiled run.
func PairStats(p *isa.Program, prof *BlockProfile) *FuseReport {
	dec := predecode(p)
	fp := buildFprog(p, dec, false)
	counts := prof.Counts()
	r := &FuseReport{
		Pairs:     map[[2]string]int64{},
		TermPairs: map[[2]string]int64{},
		Triples:   map[[3]string]int64{},
		Terms:     map[string]int64{},
	}
	for bi := range fp.blocks {
		b := &fp.blocks[bi]
		if b.term == ftBail {
			continue
		}
		body := fp.ops[b.off : b.off+b.n]
		// Every op of a block executes as often as the block is entered:
		// blocks begin at leaders, so control cannot land mid-block.
		var entered int64
		if len(body) > 0 {
			entered = counts[body[0].pc]
		} else {
			entered = counts[b.termPC]
		}
		r.Blocks += entered
		r.Insts += entered * int64(b.cost)
		r.Terms[termName(b.term)] += entered
		for i := 0; i+1 < len(body); i++ {
			r.Pairs[[2]string{uopName(body[i].kind), uopName(body[i+1].kind)}] += entered
			if i+2 < len(body) {
				r.Triples[[3]string{
					uopName(body[i].kind), uopName(body[i+1].kind), uopName(body[i+2].kind),
				}] += entered
			}
		}
		if len(body) > 0 && b.term != ftFall && b.term != ftExit {
			r.TermPairs[[2]string{uopName(body[len(body)-1].kind), uopName(b.tob.kind)}] += entered
		}
	}
	return r
}

// Merge adds other's counts into r.
func (r *FuseReport) Merge(other *FuseReport) {
	for k, v := range other.Pairs {
		r.Pairs[k] += v
	}
	for k, v := range other.TermPairs {
		r.TermPairs[k] += v
	}
	for k, v := range other.Triples {
		r.Triples[k] += v
	}
	for k, v := range other.Terms {
		r.Terms[k] += v
	}
	r.Blocks += other.Blocks
	r.Insts += other.Insts
}

// TripleStat is one adjacent micro-op triple and its dynamic frequency.
type TripleStat struct {
	Ops   [3]string
	Count int64
}

// RankedTriples returns a triple map sorted by descending count.
func RankedTriples(m map[[3]string]int64) []TripleStat {
	out := make([]TripleStat, 0, len(m))
	for k, v := range m {
		out = append(out, TripleStat{Ops: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Ops[0]+out[i].Ops[1]+out[i].Ops[2] < out[j].Ops[0]+out[j].Ops[1]+out[j].Ops[2]
	})
	return out
}

// RankedPairs returns a pair map sorted by descending count.
func RankedPairs(m map[[2]string]int64) []PairStat {
	out := make([]PairStat, 0, len(m))
	for k, v := range m {
		out = append(out, PairStat{First: k[0], Second: k[1], Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].Second < out[j].Second
	})
	return out
}

func termName(t termKind) string {
	switch t {
	case ftBail:
		return "bail"
	case ftFall:
		return "fall"
	case ftExit:
		return "exit"
	case ftJump:
		return "jump"
	case ftBCond:
		return "bcond"
	case ftCmpBCond:
		return "cmp+bcond"
	case ftCall:
		return "call"
	case ftJalr:
		return "jalr"
	case ftJr:
		return "jr"
	case ftBrm:
		return "brm"
	case ftBrmCmpBr:
		return "cmpbr+br"
	case ftBrmCalcBr:
		return "brcalc+br"
	case ftBrmSJmp:
		return "brm.sjmp"
	case ftBrmSCond:
		return "brm.scond"
	}
	return "?"
}

func uopName(k uopKind) string {
	switch k {
	case uNop:
		return "nop"
	case uAddImm:
		return "addi"
	case uAddReg:
		return "add"
	case uSubImm:
		return "subi"
	case uSubReg:
		return "sub"
	case uMulImm:
		return "muli"
	case uMulReg:
		return "mul"
	case uDivImm:
		return "divi"
	case uDivReg:
		return "div"
	case uRemImm:
		return "remi"
	case uRemReg:
		return "rem"
	case uAndImm:
		return "andi"
	case uAndReg:
		return "and"
	case uOrImm:
		return "ori"
	case uOrReg:
		return "or"
	case uXorImm:
		return "xori"
	case uXorReg:
		return "xor"
	case uSllImm:
		return "slli"
	case uSllReg:
		return "sll"
	case uSrlImm:
		return "srli"
	case uSrlReg:
		return "srl"
	case uSraImm:
		return "srai"
	case uSraReg:
		return "sra"
	case uConst:
		return "const"
	case uSetImm:
		return "seti"
	case uSetReg:
		return "set"
	case uFSet:
		return "fset"
	case uLwImm:
		return "lwi"
	case uLwReg:
		return "lw"
	case uLbImm:
		return "lbi"
	case uLbReg:
		return "lb"
	case uSwImm:
		return "swi"
	case uSwReg:
		return "sw"
	case uSbImm:
		return "sbi"
	case uSbReg:
		return "sb"
	case uLfImm:
		return "lfi"
	case uLfReg:
		return "lf"
	case uSfImm:
		return "sfi"
	case uSfReg:
		return "sf"
	case uFadd:
		return "fadd"
	case uFsub:
		return "fsub"
	case uFmul:
		return "fmul"
	case uFdiv:
		return "fdiv"
	case uFneg:
		return "fneg"
	case uFmov:
		return "fmov"
	case uCvtif:
		return "cvtif"
	case uCvtfi:
		return "cvtfi"
	case uTrapExit:
		return "exit"
	case uTrapGetc:
		return "getc"
	case uTrapPutc:
		return "putc"
	case uTrapPutf:
		return "putf"
	case uTrapBad:
		return "badtrap"
	case uCmpImm:
		return "cmpi"
	case uCmpReg:
		return "cmp"
	case uFcmp:
		return "fcmp"
	case uJump:
		return "b"
	case uBCond:
		return "bcond"
	case uCall:
		return "call"
	case uJalr:
		return "jalr"
	case uJrRet:
		return "jr.ret"
	case uJrJmp:
		return "jr.jmp"
	case uBrCalcAbs:
		return "brcalc"
	case uBrCalcReg:
		return "brcalcr"
	case uBrLd:
		return "brld"
	case uCmpBrImm:
		return "cmpbri"
	case uCmpBrReg:
		return "cmpbr"
	case uFCmpBr:
		return "fcmpbr"
	case uMovBr:
		return "movbb"
	case uMovRB:
		return "movrb"
	case uMovBR:
		return "movbr"
	}
	return "illegal"
}
