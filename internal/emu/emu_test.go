package emu

import (
	"strings"
	"testing"

	"branchreg/internal/isa"
)

// buildBase assembles a baseline program from one function body.
func buildBase(t *testing.T, emitTo func(f *isa.Function), data ...*isa.DataItem) *isa.Program {
	t.Helper()
	f := isa.NewFunction("main", isa.Baseline)
	emitTo(f)
	p := &isa.Program{Kind: isa.Baseline, Funcs: []*isa.Function{f}, Data: data}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p
}

func buildBRM(t *testing.T, emitTo func(f *isa.Function), data ...*isa.DataItem) *isa.Program {
	t.Helper()
	f := isa.NewFunction("main", isa.BranchReg)
	emitTo(f)
	p := &isa.Program{Kind: isa.BranchReg, Funcs: []*isa.Function{f}, Data: data}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p
}

func runProg(t *testing.T, p *isa.Program, input string) *Machine {
	t.Helper()
	m, err := New(p, input)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBaselineALUAndExit(t *testing.T) {
	p := buildBase(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 40})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 1, UseImm: true, Imm: 2})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m := runProg(t, p, "")
	if m.Status() != 42 {
		t.Errorf("status = %d", m.Status())
	}
	if m.Stats.Instructions != 3 {
		t.Errorf("instructions = %d", m.Stats.Instructions)
	}
}

func TestBaselineDelaySlotSemantics(t *testing.T) {
	// The instruction after a taken branch must execute.
	p := buildBase(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondAlways, Target: "done"})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 7})  // slot
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 99}) // skipped
		f.Bind("done")
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m := runProg(t, p, "")
	if m.Status() != 7 {
		t.Errorf("delay slot did not execute: status = %d", m.Status())
	}
	if m.Stats.UncondJumps != 1 {
		t.Errorf("uncond jumps = %d", m.Stats.UncondJumps)
	}
}

func TestBaselineConditionalAndCC(t *testing.T) {
	p := buildBase(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 2, Rs1: 0, UseImm: true, Imm: 5})
		f.Emit(isa.Instr{Op: isa.OpCmp, Rs1: 2, UseImm: true, Imm: 10})
		f.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondLT, Target: "less"})
		f.Emit(isa.Instr{Op: isa.OpNop})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 1})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
		f.Bind("less")
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 2})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m := runProg(t, p, "")
	if m.Status() != 2 {
		t.Errorf("conditional branch wrong: status = %d", m.Status())
	}
	if m.Stats.CondBranches != 1 || m.Stats.CondTaken != 1 {
		t.Errorf("cond stats: %+v", m.Stats)
	}
	if m.Stats.Noops != 1 {
		t.Errorf("noops = %d", m.Stats.Noops)
	}
}

func TestBaselineCallReturn(t *testing.T) {
	f := isa.NewFunction("main", isa.Baseline)
	f.Emit(isa.Instr{Op: isa.OpCall, Target: "five"})
	f.Emit(isa.Instr{Op: isa.OpNop}) // slot
	f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	g := isa.NewFunction("five", isa.Baseline)
	g.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 5})
	g.Emit(isa.Instr{Op: isa.OpJr, Rs1: isa.RABase})
	g.Emit(isa.Instr{Op: isa.OpNop}) // slot
	p := &isa.Program{Kind: isa.Baseline, Funcs: []*isa.Function{f, g}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m := runProg(t, p, "")
	if m.Status() != 5 {
		t.Errorf("status = %d", m.Status())
	}
	if m.Stats.Calls != 1 || m.Stats.Returns != 1 {
		t.Errorf("call stats: calls %d returns %d", m.Stats.Calls, m.Stats.Returns)
	}
}

func TestMemoryOps(t *testing.T) {
	p := buildBase(t, func(f *isa.Function) {
		// store 123 to "cell", byte-store 'x' to "bytes", read both back
		f.Emit(isa.Instr{Op: isa.OpSethi, Rd: 2, DataTarget: "cell"})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 2, Rs1: 2, DataTarget: "cell", Lo: true})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 3, Rs1: 0, UseImm: true, Imm: 123})
		f.Emit(isa.Instr{Op: isa.OpSw, Rd: 3, Rs1: 2, UseImm: true, Imm: 0})
		f.Emit(isa.Instr{Op: isa.OpLw, Rd: 4, Rs1: 2, UseImm: true, Imm: 0})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 5, Rs1: 0, UseImm: true, Imm: -56})
		f.Emit(isa.Instr{Op: isa.OpSb, Rd: 5, Rs1: 2, UseImm: true, Imm: 4})
		f.Emit(isa.Instr{Op: isa.OpLb, Rd: 6, Rs1: 2, UseImm: true, Imm: 4})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 4, Rs2: 6})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	}, &isa.DataItem{Label: "cell", Kind: isa.DataZero, Size: 8})
	m := runProg(t, p, "")
	if m.Status() != 123-56 {
		t.Errorf("status = %d, want %d", m.Status(), 123-56)
	}
	if m.Stats.Loads != 2 || m.Stats.Stores != 2 {
		t.Errorf("mem stats: %d loads %d stores", m.Stats.Loads, m.Stats.Stores)
	}
}

func TestFloatOps(t *testing.T) {
	p := buildBase(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpSethi, Rd: 2, DataTarget: "fval"})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 2, Rs1: 2, DataTarget: "fval", Lo: true})
		f.Emit(isa.Instr{Op: isa.OpLf, Rd: 2, Rs1: 2, UseImm: true, Imm: 0})
		f.Emit(isa.Instr{Op: isa.OpFadd, Rd: 3, Rs1: 2, Rs2: 2}) // 5.0
		f.Emit(isa.Instr{Op: isa.OpFmul, Rd: 3, Rs1: 3, Rs2: 3}) // 25.0
		f.Emit(isa.Instr{Op: isa.OpFneg, Rd: 4, Rs1: 3})         // -25.0
		f.Emit(isa.Instr{Op: isa.OpFsub, Rd: 3, Rs1: 3, Rs2: 4}) // 50.0
		f.Emit(isa.Instr{Op: isa.OpFdiv, Rd: 3, Rs1: 3, Rs2: 2}) // 20.0
		f.Emit(isa.Instr{Op: isa.OpCvtfi, Rd: 1, Rs1: 3})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	}, &isa.DataItem{Label: "fval", Kind: isa.DataFloat, Floats: []float64{2.5}})
	m := runProg(t, p, "")
	if m.Status() != 20 {
		t.Errorf("status = %d, want 20", m.Status())
	}
}

func TestTrapsIO(t *testing.T) {
	p := buildBase(t, func(f *isa.Function) {
		f.Bind("loop")
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapGetc})
		f.Emit(isa.Instr{Op: isa.OpCmp, Rs1: 1, UseImm: true, Imm: -1})
		f.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondEQ, Target: "done"})
		f.Emit(isa.Instr{Op: isa.OpNop})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapPutc})
		f.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondAlways, Target: "loop"})
		f.Emit(isa.Instr{Op: isa.OpNop})
		f.Bind("done")
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 0})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m := runProg(t, p, "echo!")
	if m.Output() != "echo!" {
		t.Errorf("output = %q", m.Output())
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	p := buildBase(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 0, Rs1: 0, UseImm: true, Imm: 99})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 0})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m := runProg(t, p, "")
	if m.Status() != 0 {
		t.Errorf("r0 was written: status = %d", m.Status())
	}
}

func TestBRMTransferAndSideEffect(t *testing.T) {
	p := buildBRM(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 2, Rs1: -1, Target: "over"})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 1, BR: 2}) // jump
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 99})       // skipped
		f.Bind("over")
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m := runProg(t, p, "")
	if m.Status() != 1 {
		t.Errorf("BRM transfer skipped target or executed dead code: %d", m.Status())
	}
	if m.Stats.BrCalcs != 1 {
		t.Errorf("calcs = %d", m.Stats.BrCalcs)
	}
	if m.Stats.UncondJumps != 1 {
		t.Errorf("uncond = %d", m.Stats.UncondJumps)
	}
	// The side effect: b[7] received the address after the transfer.
	if got := int32(m.B[isa.RABr].addr); got != isa.IndexToAddr(2) {
		t.Errorf("b7 = %#x, want %#x", got, isa.IndexToAddr(2))
	}
}

func TestBRMConditionalBothPaths(t *testing.T) {
	build := func(v int32) *isa.Program {
		return buildBRM(t, func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 2, Rs1: 0, UseImm: true, Imm: v})
			f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 3, Rs1: -1, Target: "neg"})
			f.Emit(isa.Instr{Op: isa.OpCmpBr, Cond: isa.CondLT, Rs1: 2, UseImm: true, Imm: 0, BSrc: 3})
			f.Emit(isa.Instr{Op: isa.OpNop, BR: isa.RABr})
			f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 10})
			f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
			f.Bind("neg")
			f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 20})
			f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
		})
	}
	m := runProg(t, build(-5), "")
	if m.Status() != 20 {
		t.Errorf("taken path: status = %d", m.Status())
	}
	if m.Stats.CondBranches != 1 || m.Stats.CondTaken != 1 {
		t.Errorf("taken stats: %+v", m.Stats)
	}
	m = runProg(t, build(5), "")
	if m.Status() != 10 {
		t.Errorf("untaken path: status = %d", m.Status())
	}
	if m.Stats.CondBranches != 1 || m.Stats.CondTaken != 0 {
		t.Errorf("untaken stats: cond %d taken %d", m.Stats.CondBranches, m.Stats.CondTaken)
	}
}

func TestBRMPrefetchDistance(t *testing.T) {
	// Distance 1: calc immediately before the transfer -> delayed.
	p := buildBRM(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 2, Rs1: -1, Target: "t"})
		f.Emit(isa.Instr{Op: isa.OpNop, BR: 2})
		f.Bind("t")
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m := runProg(t, p, "")
	if m.Stats.PrefetchMiss != 1 || m.Stats.PrefetchHit != 0 {
		t.Errorf("distance-1 stats: hit %d miss %d", m.Stats.PrefetchHit, m.Stats.PrefetchMiss)
	}
	if m.Stats.DistHist[1] != 1 {
		t.Errorf("hist: %v", m.Stats.DistHist)
	}
	// Distance 2: one instruction between -> in time.
	p2 := buildBRM(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 2, Rs1: -1, Target: "t"})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 3, Rs1: 0, UseImm: true, Imm: 1})
		f.Emit(isa.Instr{Op: isa.OpNop, BR: 2})
		f.Bind("t")
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m2 := runProg(t, p2, "")
	if m2.Stats.PrefetchHit != 1 || m2.Stats.PrefetchMiss != 0 {
		t.Errorf("distance-2 stats: hit %d miss %d", m2.Stats.PrefetchHit, m2.Stats.PrefetchMiss)
	}
}

func TestBRMConditionalDistanceFromCalc(t *testing.T) {
	// The compare moves the prefetched target between registers; the
	// distance is measured from the calc, not the compare.
	p := buildBRM(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 2, Rs1: -1, Target: "t"}) // calc
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 3, Rs1: 0, UseImm: true, Imm: 1})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 4, Rs1: 0, UseImm: true, Imm: 1})
		f.Emit(isa.Instr{Op: isa.OpCmpBr, Cond: isa.CondEQ, Rs1: 3, Rs2: 4, BSrc: 2})
		f.Emit(isa.Instr{Op: isa.OpNop, BR: isa.RABr})
		f.Bind("t")
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m := runProg(t, p, "")
	if m.Stats.PrefetchMiss != 0 || m.Stats.PrefetchHit != 1 {
		t.Errorf("cond distance stats: hit %d miss %d (hist %v)",
			m.Stats.PrefetchHit, m.Stats.PrefetchMiss, m.Stats.DistHist)
	}
	if m.Stats.DistHist[4] != 1 {
		t.Errorf("distance should be 4 (from the calc): %v", m.Stats.DistHist)
	}
}

func TestBRMBrLdSwitch(t *testing.T) {
	p := buildBRM(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpSethi, Rd: 2, DataTarget: "table"})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 2, Rs1: 2, DataTarget: "table", Lo: true})
		f.Emit(isa.Instr{Op: isa.OpBrLd, Rd: 3, Rs1: 2, UseImm: true, Imm: 4}) // entry 1
		f.Emit(isa.Instr{Op: isa.OpNop, BR: 3})
		f.Bind("case0")
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 100})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
		f.Bind("case1")
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 200})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	}, &isa.DataItem{Label: "table", Kind: isa.DataAddrs, Addrs: []string{"main.case0", "main.case1"}})
	m := runProg(t, p, "")
	if m.Status() != 200 {
		t.Errorf("switch dispatch: status = %d", m.Status())
	}
	// BrLd is both a target calc and a data reference.
	if m.Stats.BrCalcs != 1 || m.Stats.Loads != 1 {
		t.Errorf("brld stats: calcs %d loads %d", m.Stats.BrCalcs, m.Stats.Loads)
	}
}

func TestBRMMovRoundTrip(t *testing.T) {
	p := buildBRM(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 2, Rs1: -1, Target: "t"})
		f.Emit(isa.Instr{Op: isa.OpMovRB, Rd: 5, BSrc: 2}) // r5 = addr of t
		f.Emit(isa.Instr{Op: isa.OpMovBR, Rd: 4, Rs1: 5})  // b4 = r5
		f.Emit(isa.Instr{Op: isa.OpMovBr, Rd: 3, BSrc: 4}) // b3 = b4
		f.Emit(isa.Instr{Op: isa.OpNop, BR: 3})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 9}) // skipped
		f.Bind("t")
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m := runProg(t, p, "")
	if m.Status() != 0 {
		t.Errorf("round-tripped branch register broken: status = %d", m.Status())
	}
	if m.Stats.BrMoves != 3 {
		t.Errorf("moves = %d", m.Stats.BrMoves)
	}
}

func TestRunErrors(t *testing.T) {
	// Division by zero reports a diagnostic with the function name.
	p := buildBase(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpDiv, Rd: 1, Rs1: 0, UseImm: true, Imm: 0})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m, err := New(p, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
	// Unlinked programs are rejected.
	if _, err := New(&isa.Program{Kind: isa.Baseline}, ""); err == nil {
		t.Error("unlinked program accepted")
	}
	// Memory protection.
	p2 := buildBase(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpLw, Rd: 1, Rs1: 0, UseImm: true, Imm: -4})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m2, _ := New(p2, "")
	if _, err := m2.Run(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestInstructionLimit(t *testing.T) {
	p := buildBase(t, func(f *isa.Function) {
		f.Bind("spin")
		f.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondAlways, Target: "spin"})
		f.Emit(isa.Instr{Op: isa.OpNop})
	})
	m, _ := New(p, "")
	m.MaxInstructions = 1000
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("err = %v", err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Instructions: 10, Loads: 1, CondBranches: 2}
	a.DistHist[3] = 5
	b := Stats{Instructions: 5, Loads: 2, CondBranches: 1}
	b.DistHist[3] = 1
	a.Add(&b)
	if a.Instructions != 15 || a.Loads != 3 || a.CondBranches != 3 || a.DistHist[3] != 6 {
		t.Errorf("Add wrong: %+v", a)
	}
	if a.DataRefs() != 3 {
		t.Errorf("DataRefs = %d", a.DataRefs())
	}
}

func TestHooks(t *testing.T) {
	var fetches, prefetches int
	p := buildBRM(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 2, Rs1: -1, Target: "t"})
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 3, Rs1: 0, UseImm: true, Imm: 0})
		f.Emit(isa.Instr{Op: isa.OpNop, BR: 2})
		f.Bind("t")
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m, _ := New(p, "")
	m.Hooks.Fetch = func(addr int32) { fetches++ }
	m.Hooks.Prefetch = func(addr int32) { prefetches++ }
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if fetches != 4 {
		t.Errorf("fetch hook calls = %d, want 4", fetches)
	}
	if prefetches != 1 {
		t.Errorf("prefetch hook calls = %d, want 1", prefetches)
	}
}
