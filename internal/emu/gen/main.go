// Command gen generates the emulator's twin dispatch loops from a single
// template: the profiled fast loops (fastloop_prof.go) and the block-fused
// engine in both unprofiled and profiled form (fusedloop.go,
// fusedloop_prof.go). The hand-written fastloop.go is the semantic
// reference; everything that must stay byte-identical to it — micro-op
// case bodies, trap messages and ordering, Stats arithmetic — lives in the
// shared template defines below, so a fix lands in every engine variant at
// once instead of being hand-copied across four 800-line loops.
//
// Usage:
//
//	go run ./gen            (from internal/emu; what //go:generate runs)
//	go run ./internal/emu/gen -dir internal/emu -check
//
// -check regenerates in memory and fails if any committed file drifts
// from the template (the `make generate-check` CI rule).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"text/template"
)

// caseCtx parameterizes the shared micro-op case bodies for one switch
// site: how a trap syncs machine state (Pend/PC), which machine's op set
// is live (Brm), whether profile hooks are emitted (Prof), whether the
// uTrapExit case belongs in the switch (Exit/Adv), and whether fused
// superinstruction pairs can appear (Body).
type caseCtx struct {
	Pend string // expression assigned to m.pending before a trap ("" = none)
	PC   string // trap program-counter expression
	Brm  bool   // BRM micro-ops are live (and `now` is in scope)
	Prof bool
	Exit bool   // include the uTrapExit case (fast loops only)
	Adv  string // advance flag cleared by uTrapExit ("seqAdv"/"advance")
	Body bool   // fused block body: include superinstruction pair cases
}

var funcs = template.FuncMap{
	"cases": func(pend, pc string, brm, prof, exit, body bool, adv string) caseCtx {
		return caseCtx{Pend: pend, PC: pc, Brm: brm, Prof: prof, Exit: exit, Adv: adv, Body: body}
	},
	// trap emits the fast loop's trap sequence for the context: optional
	// m.pending sync, then fastTrap at the context's program counter.
	"trap": func(c caseCtx, kind, format string, args ...string) string {
		s := ""
		if c.Pend != "" {
			s = "m.pending = " + c.Pend + "\n"
		}
		s += "return 0, m.fastTrap(" + c.PC + ", insts, " + kind + ", " + strconv.Quote(format)
		for _, a := range args {
			s += ", " + a
		}
		return s + ")"
	},
	// fusedCases expands the superinstruction selection (pairSel,
	// tripleSel) into switch cases for one machine's fused block body.
	"fusedCases": func(c caseCtx) string {
		return fusedCases(c.Brm)
	},
}

// ---------------------------------------------------------------------
// Fused superinstruction selection.
//
// The fused engine rewrites hot adjacent micro-op pairs and triples into
// single dispatch cases. The vocabulary below gives each candidate
// component's code as a function of its operand slot (first, second or
// third position of the fuop), and pairSel/tripleSel pick the
// combinations worth a case. The selection is data-driven: it is the
// union of the hottest dynamic adjacencies over the 19-workload suite on
// both machines as measured by cmd/fusepairs (every entry ≥ ~1% of
// suite instructions, or ≥ 2% of the sieve benchmark workload); DESIGN
// §10 records the numbers. gen emits both the dispatch cases
// (fusedCases) and the decode-time lookup tables (fusedtab.go), so the
// selection cannot drift between decoder and engine.
// ---------------------------------------------------------------------

// slotRefs names the fuop fields holding one component's operands.
type slotRefs struct {
	imm, rd, rs1, rs2, pc string
}

var slots = [3]slotRefs{
	{imm: "u.imm", rd: "u.rd", rs1: "u.rs1", rs2: "u.rs2", pc: "int(u.pc)"},
	{imm: "u.imm2", rd: "u.rd2", rs1: "u.rs21", rs2: "u.rs22", pc: "int(u.pc)+1"},
	{imm: "u.imm3", rd: "u.rd3", rs1: "u.rs31", rs2: "u.rs32", pc: "int(u.pc)+2"},
}

// fusedOp is one vocabulary component: the micro-op kind it rewrites,
// which machine's loops can inline it, and its code over an operand
// slot. Components that trap report the slot's original Text index, so
// fused trap diagnostics stay byte-identical to the fast loop's.
type fusedOp struct {
	label string // CamelCase fragment of the fused kind constant
	kind  string // standalone uopKind constant
	brm   bool   // BRM-only: reads `now` or branch registers
	base  bool   // baseline-only: writes the condition code
	now   bool   // needs `now = insts` refreshed mid-superinstruction
	cond  bool   // uses the fuop's shared cond/bsrc rider fields
	code  func(s slotRefs) string
}

var vocab = map[string]fusedOp{
	"addi": {label: "Addi", kind: "uAddImm", code: func(s slotRefs) string {
		return fmt.Sprintf("if %s != 0 {\nR[%s] = R[%s] + %s\n}", s.rd, s.rd, s.rs1, s.imm)
	}},
	"add": {label: "Add", kind: "uAddReg", code: func(s slotRefs) string {
		return fmt.Sprintf("if %s != 0 {\nR[%s] = R[%s] + R[%s]\n}", s.rd, s.rd, s.rs1, s.rs2)
	}},
	"slli": {label: "Slli", kind: "uSllImm", code: func(s slotRefs) string {
		return fmt.Sprintf("if %s != 0 {\nR[%s] = R[%s] << (uint32(%s) & 31)\n}", s.rd, s.rd, s.rs1, s.imm)
	}},
	"ori": {label: "Ori", kind: "uOrImm", code: func(s slotRefs) string {
		return fmt.Sprintf("if %s != 0 {\nR[%s] = R[%s] | %s\n}", s.rd, s.rd, s.rs1, s.imm)
	}},
	"const": {label: "Const", kind: "uConst", code: func(s slotRefs) string {
		return fmt.Sprintf("if %s != 0 {\nR[%s] = %s\n}", s.rd, s.rd, s.imm)
	}},
	"lwi": {label: "Lwi", kind: "uLwImm", code: func(s slotRefs) string {
		return fmt.Sprintf(`st.Loads++
{
a := R[%s] + %s
if a < 0 || int(a)+4 > len(mem) {
return 0, m.fastTrap(%s, insts, TrapOOBLoad, "load out of range: %%#x", uint32(a))
}
if a%%isa.WordSize != 0 {
return 0, m.fastTrap(%s, insts, TrapMisaligned, "misaligned word load: %%#x", uint32(a))
}
if %s != 0 {
R[%s] = int32(binary.LittleEndian.Uint32(mem[a:]))
}
}`, s.rs1, s.imm, s.pc, s.pc, s.rd, s.rd)
	}},
	"lbi": {label: "Lbi", kind: "uLbImm", code: func(s slotRefs) string {
		return fmt.Sprintf(`st.Loads++
{
a := R[%s] + %s
if a < 0 || int(a) >= len(mem) {
return 0, m.fastTrap(%s, insts, TrapOOBLoad, "byte load out of range: %%#x", uint32(a))
}
if %s != 0 {
R[%s] = int32(int8(mem[a]))
}
}`, s.rs1, s.imm, s.pc, s.rd, s.rd)
	}},
	"swi": {label: "Swi", kind: "uSwImm", code: func(s slotRefs) string {
		return fmt.Sprintf(`st.Stores++
{
a := R[%s] + %s
if a < 0 || int(a)+4 > len(mem) {
return 0, m.fastTrap(%s, insts, TrapOOBStore, "store out of range: %%#x", uint32(a))
}
if a%%isa.WordSize != 0 {
return 0, m.fastTrap(%s, insts, TrapMisaligned, "misaligned word store: %%#x", uint32(a))
}
binary.LittleEndian.PutUint32(mem[a:], uint32(R[%s]))
}`, s.rs1, s.imm, s.pc, s.pc, s.rd)
	}},
	"sbi": {label: "Sbi", kind: "uSbImm", code: func(s slotRefs) string {
		return fmt.Sprintf(`st.Stores++
{
a := R[%s] + %s
if a < 0 || int(a) >= len(mem) {
return 0, m.fastTrap(%s, insts, TrapOOBStore, "byte store out of range: %%#x", uint32(a))
}
mem[a] = byte(R[%s])
}`, s.rs1, s.imm, s.pc, s.rd)
	}},
	"lfi": {label: "Lfi", kind: "uLfImm", code: func(s slotRefs) string {
		return fmt.Sprintf(`st.Loads++
{
a := R[%s] + %s
if a < 0 || int(a)+8 > len(mem) {
return 0, m.fastTrap(%s, insts, TrapOOBLoad, "float load out of range: %%#x", uint32(a))
}
F[%s] = isa.FloatFromBits(binary.LittleEndian.Uint64(mem[a:]))
}`, s.rs1, s.imm, s.pc, s.rd)
	}},
	"fmul": {label: "Fmul", kind: "uFmul", code: func(s slotRefs) string {
		return fmt.Sprintf("F[%s] = F[%s] * F[%s]", s.rd, s.rs1, s.rs2)
	}},
	"fadd": {label: "Fadd", kind: "uFadd", code: func(s slotRefs) string {
		return fmt.Sprintf("F[%s] = F[%s] + F[%s]", s.rd, s.rs1, s.rs2)
	}},
	"cmpi": {label: "Cmpi", kind: "uCmpImm", base: true, code: func(s slotRefs) string {
		return fmt.Sprintf("m.CC = signOf(R[%s], %s)\nm.ccF = false", s.rs1, s.imm)
	}},
	"cmp": {label: "Cmp", kind: "uCmpReg", base: true, code: func(s slotRefs) string {
		return fmt.Sprintf("m.CC = signOf(R[%s], R[%s])\nm.ccF = false", s.rs1, s.rs2)
	}},
	"cmpbri": {label: "Cmpbri", kind: "uCmpBrImm", brm: true, now: true, cond: true, code: func(s slotRefs) string {
		return fmt.Sprintf(`if isa.Cond(u.cond).HoldsInt(R[%s], %s) {
src := m.B[u.bsrc]
m.B[isa.RABr] = breg{addr: src.addr, calcTime: src.calcTime, viaCmp: true, valid: true}
} else {
m.B[isa.RABr] = breg{addr: seq, calcTime: now, viaCmp: true, valid: true}
}`, s.rs1, s.imm)
	}},
	"cmpbr": {label: "Cmpbr", kind: "uCmpBrReg", brm: true, now: true, cond: true, code: func(s slotRefs) string {
		return fmt.Sprintf(`if isa.Cond(u.cond).HoldsInt(R[%s], R[%s]) {
src := m.B[u.bsrc]
m.B[isa.RABr] = breg{addr: src.addr, calcTime: src.calcTime, viaCmp: true, valid: true}
} else {
m.B[isa.RABr] = breg{addr: seq, calcTime: now, viaCmp: true, valid: true}
}`, s.rs1, s.rs2)
	}},
	"brcalc": {label: "Brcalc", kind: "uBrCalcAbs", brm: true, now: true, code: func(s slotRefs) string {
		return fmt.Sprintf("st.BrCalcs++\nm.B[%s] = breg{addr: %s, calcTime: now, valid: true}", s.rd, s.imm)
	}},
	"subi": {label: "Subi", kind: "uSubImm", code: func(s slotRefs) string {
		return fmt.Sprintf("if %s != 0 {\nR[%s] = R[%s] - %s\n}", s.rd, s.rd, s.rs1, s.imm)
	}},
	"lw": {label: "Lw", kind: "uLwReg", code: func(s slotRefs) string {
		return fmt.Sprintf(`st.Loads++
{
a := R[%s] + R[%s]
if a < 0 || int(a)+4 > len(mem) {
return 0, m.fastTrap(%s, insts, TrapOOBLoad, "load out of range: %%#x", uint32(a))
}
if a%%isa.WordSize != 0 {
return 0, m.fastTrap(%s, insts, TrapMisaligned, "misaligned word load: %%#x", uint32(a))
}
if %s != 0 {
R[%s] = int32(binary.LittleEndian.Uint32(mem[a:]))
}
}`, s.rs1, s.rs2, s.pc, s.pc, s.rd, s.rd)
	}},
}

// pairSel and tripleSel are the fused superinstruction selection, in
// kind-constant order (fusedtab.go assigns codes 128+iota in this
// order). Pairs are the greedy fallback where no triple matches.
var pairSel = [][]string{
	{"const", "addi"}, {"slli", "add"}, {"addi", "add"}, {"add", "lwi"},
	{"addi", "slli"}, {"add", "addi"}, {"add", "slli"}, {"addi", "sbi"},
	{"lwi", "cmpi"}, {"lwi", "cmp"}, {"lwi", "cmpbri"}, {"lwi", "cmpbr"},
	{"add", "lfi"}, {"sbi", "add"}, {"sbi", "addi"}, {"fmul", "fadd"},
	{"lfi", "const"}, {"const", "cmpbr"}, {"const", "cmpbri"},
	{"lbi", "cmpi"}, {"lbi", "cmpbri"}, {"add", "lbi"},
	{"brcalc", "addi"}, {"brcalc", "const"},
	{"addi", "ori"}, {"add", "ori"}, {"const", "lwi"}, {"lwi", "addi"},
	{"lwi", "add"}, {"lwi", "lwi"}, {"addi", "swi"}, {"add", "swi"},
	{"swi", "swi"}, {"swi", "lwi"}, {"addi", "lwi"},
}

var tripleSel = [][]string{
	{"const", "addi", "add"}, {"slli", "add", "lwi"}, {"addi", "slli", "add"},
	{"const", "addi", "slli"}, {"add", "slli", "add"}, {"addi", "add", "addi"},
	{"add", "addi", "sbi"}, {"add", "lwi", "cmpi"}, {"add", "lwi", "cmpbri"},
	{"slli", "add", "slli"}, {"addi", "add", "lfi"}, {"addi", "sbi", "add"},
	{"addi", "sbi", "addi"}, {"addi", "add", "lbi"}, {"add", "lbi", "cmpi"},
	{"add", "lbi", "cmpbri"}, {"brcalc", "const", "addi"},
}

// pairSelExt and tripleSelExt are the *extended candidate* vocabulary for
// the adaptive tier (DESIGN §13): adjacencies that fall below the static
// selection's global ~1% cutoff but dominate individual workloads — e.g.
// tinycc retires >2% of its instructions in addi+cmpi, slli+const and
// const+addi+lwi, none of which earn a global slot. The static tables
// above never consult these (the fused tier's decode is frozen as the
// comparison baseline); only the adaptive builder does, and only for
// patterns the program's own profile proves hot. Appending after the
// static selection keeps the static kind constants stable.
var pairSelExt = [][]string{
	{"addi", "cmpi"}, {"addi", "cmpbri"}, {"slli", "const"}, {"ori", "addi"},
	{"addi", "addi"}, {"add", "const"}, {"lwi", "swi"}, {"lwi", "slli"},
	{"ori", "const"}, {"addi", "subi"}, {"subi", "slli"}, {"swi", "addi"},
	{"ori", "ori"}, {"addi", "lw"}, {"fadd", "fmul"}, {"lfi", "fmul"},
	{"addi", "lfi"}, {"add", "add"}, {"slli", "addi"}, {"lbi", "addi"},
	{"lbi", "sbi"}, {"sbi", "lbi"}, {"addi", "lbi"}, {"lbi", "add"},
	{"const", "cmpi"}, {"const", "cmp"}, {"add", "cmpi"}, {"add", "cmpbri"},
	{"const", "sbi"}, {"swi", "const"},
}

var tripleSelExt = [][]string{
	{"const", "addi", "lwi"}, {"addi", "lwi", "cmp"}, {"addi", "lwi", "cmpbr"},
	{"add", "lwi", "addi"}, {"lwi", "addi", "cmpi"}, {"lwi", "addi", "cmpbri"},
	{"slli", "const", "addi"}, {"swi", "addi", "ori"}, {"const", "addi", "addi"},
	{"add", "const", "addi"}, {"addi", "addi", "slli"}, {"addi", "ori", "addi"},
	{"add", "lwi", "swi"}, {"lwi", "swi", "addi"}, {"slli", "add", "const"},
	{"lwi", "slli", "add"}, {"ori", "const", "addi"}, {"addi", "subi", "slli"},
	{"const", "addi", "subi"}, {"subi", "slli", "add"}, {"lfi", "const", "addi"},
	{"add", "lfi", "const"}, {"fadd", "fmul", "fadd"}, {"fmul", "fadd", "fmul"},
}

// fusedSelections returns every selection — static pairs, static triples,
// then the extended candidates — in kind order.
func fusedSelections() [][]string {
	sel := append(append([][]string{}, pairSel...), tripleSel...)
	return append(append(sel, pairSelExt...), tripleSelExt...)
}

func fusedKindName(ops []string) string {
	name := "f"
	for _, op := range ops {
		name += vocab[op].label
	}
	return name
}

// validateSelections panics on a selection the engine could not execute
// correctly: unknown vocabulary, a component set spanning both machines,
// or two components competing for the shared cond/bsrc rider fields.
func validateSelections() {
	seen := map[string]bool{}
	for _, ops := range fusedSelections() {
		brm, base, conds := false, false, 0
		for _, op := range ops {
			spec, ok := vocab[op]
			if !ok {
				panic("gen: selection uses unknown component " + op)
			}
			brm = brm || spec.brm
			base = base || spec.base
			if spec.cond {
				conds++
			}
		}
		name := fusedKindName(ops)
		if brm && base {
			panic("gen: selection " + name + " mixes machine-specific components")
		}
		if conds > 1 {
			panic("gen: selection " + name + " has two cond/bsrc users")
		}
		if seen[name] {
			panic("gen: duplicate selection " + name)
		}
		seen[name] = true
	}
	if n := len(fusedSelections()); 128+n > 256 {
		panic(fmt.Sprintf("gen: %d fused kinds overflow uopKind", n))
	}
}

// fusedCases emits the dispatch cases of every selection that fits the
// given machine. Components after the first re-count insts (and refresh
// `now` if they need it) so budget and trap accounting stay exact.
func fusedCases(brm bool) string {
	var sb strings.Builder
	for _, ops := range fusedSelections() {
		fits := true
		for _, op := range ops {
			if spec := vocab[op]; (spec.brm && !brm) || (spec.base && brm) {
				fits = false
			}
		}
		if !fits {
			continue
		}
		fmt.Fprintf(&sb, "case %s:\n", fusedKindName(ops))
		for i, op := range ops {
			spec := vocab[op]
			if i > 0 {
				sb.WriteString("insts++\n")
				if spec.now {
					sb.WriteString("now = insts\n")
				}
			}
			sb.WriteString(spec.code(slots[i]) + "\n")
		}
		fmt.Fprintf(&sb, "m.Fusion.Fused += %d\n", len(ops)-1)
	}
	return sb.String()
}

// fusedTab emits fusedtab.go: the fused kind constants and the
// decode-time pair/triple lookups used by buildFprog.
func fusedTab() string {
	var sb strings.Builder
	sb.WriteString(fusedTabHeader)
	sb.WriteString("const (\n")
	for i, ops := range fusedSelections() {
		if i == 0 {
			fmt.Fprintf(&sb, "%s uopKind = 128 + iota\n", fusedKindName(ops))
		} else {
			sb.WriteString(fusedKindName(ops) + "\n")
		}
	}
	sb.WriteString(")\n\n")
	sb.WriteString(`// fusePair reports the fused kind for an adjacent body pair, if the
// pair is in the selection.
func fusePair(a, b uopKind) (uopKind, bool) {
switch {
`)
	for _, ops := range pairSel {
		fmt.Fprintf(&sb, "case a == %s && b == %s:\nreturn %s, true\n",
			vocab[ops[0]].kind, vocab[ops[1]].kind, fusedKindName(ops))
	}
	sb.WriteString(`}
return 0, false
}

// fuseTriple reports the fused kind for an adjacent body triple, if the
// triple is in the selection. Triples are tried before pairs.
func fuseTriple(a, b, c uopKind) (uopKind, bool) {
switch {
`)
	for _, ops := range tripleSel {
		fmt.Fprintf(&sb, "case a == %s && b == %s && c == %s:\nreturn %s, true\n",
			vocab[ops[0]].kind, vocab[ops[1]].kind, vocab[ops[2]].kind, fusedKindName(ops))
	}
	sb.WriteString(`}
return 0, false
}

// fusePairExt reports the fused kind for a pair in the extended candidate
// vocabulary (adaptive tier only; the static fused tier never consults it).
func fusePairExt(a, b uopKind) (uopKind, bool) {
switch {
`)
	for _, ops := range pairSelExt {
		fmt.Fprintf(&sb, "case a == %s && b == %s:\nreturn %s, true\n",
			vocab[ops[0]].kind, vocab[ops[1]].kind, fusedKindName(ops))
	}
	sb.WriteString(`}
return 0, false
}

// fuseTripleExt reports the fused kind for a triple in the extended
// candidate vocabulary (adaptive tier only).
func fuseTripleExt(a, b, c uopKind) (uopKind, bool) {
switch {
`)
	for _, ops := range tripleSelExt {
		fmt.Fprintf(&sb, "case a == %s && b == %s && c == %s:\nreturn %s, true\n",
			vocab[ops[0]].kind, vocab[ops[1]].kind, vocab[ops[2]].kind, fusedKindName(ops))
	}
	sb.WriteString(`}
return 0, false
}
`)
	return sb.String()
}

type loopParams struct {
	Prof bool
}

func render(t *template.Template, name string, p loopParams) string {
	var buf bytes.Buffer
	if err := t.ExecuteTemplate(&buf, name, p); err != nil {
		panic(err)
	}
	return buf.String()
}

func main() {
	dir := flag.String("dir", ".", "package directory to generate into")
	check := flag.Bool("check", false, "verify committed files match the template instead of writing")
	flag.Parse()

	validateSelections()
	t := template.Must(template.New("loops").Funcs(funcs).Parse(loopTemplate))

	files := map[string]string{
		"fusedtab.go": fusedTab(),
		"fastloop_prof.go": fastProfHeader +
			render(t, "fastBaseline", loopParams{Prof: true}) + "\n" +
			render(t, "fastBRM", loopParams{Prof: true}),
		"fusedloop.go": fusedHeader +
			render(t, "fusedBaseline", loopParams{Prof: false}) + "\n" +
			render(t, "fusedBRM", loopParams{Prof: false}),
		"fusedloop_prof.go": fusedProfHeader +
			render(t, "fusedBaseline", loopParams{Prof: true}) + "\n" +
			render(t, "fusedBRM", loopParams{Prof: true}),
	}

	bad := false
	for name, raw := range files {
		src, err := format.Source([]byte(raw))
		if err != nil {
			fmt.Fprintf(os.Stderr, "gen: %s does not format: %v\n", name, err)
			dumpNumbered(raw)
			os.Exit(1)
		}
		path := filepath.Join(*dir, name)
		if *check {
			have, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gen: -check: %s: %v (run `go generate ./internal/emu`)\n", name, err)
				bad = true
				continue
			}
			if !bytes.Equal(have, src) {
				fmt.Fprintf(os.Stderr, "gen: -check: %s drifted from the template (run `go generate ./internal/emu`)\n", name)
				bad = true
			}
			continue
		}
		if err := os.WriteFile(path, src, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gen: %v\n", err)
			os.Exit(1)
		}
	}
	if bad {
		os.Exit(1)
	}
}

func dumpNumbered(s string) {
	for i, line := range bytes.Split([]byte(s), []byte("\n")) {
		fmt.Fprintf(os.Stderr, "%4d %s\n", i+1, line)
	}
}

const genMark = "// Code generated by branchreg/internal/emu/gen. DO NOT EDIT.\n"

const fastProfHeader = genMark + `
package emu

// The profiled twins of the fast loops (fastloop.go). Each is the same
// predecoded dispatch loop with BlockProfile updates at transfers of
// control — unconditional writes, no callbacks — generated from the same
// template as the fused engine so the micro-op semantics cannot drift
// between engine variants.
//
// The twins are deliberately separate functions rather than a generic
// parameterization: an earlier generic version put a dictionary-indirect
// call at every hook site of the shared gcshape body, costing ~20% BRM
// throughput even for the no-op instantiation, and a runtime 'prof !=
// nil' test per transfer cost ~4% baseline / ~12% BRM. Keeping the
// unprofiled loops byte-identical to their pre-profiler form is a gated
// requirement (make bench-gate).
//
// Drift between a loop and its twin is caught by TestProfileEnginesAgree
// and TestProfiledRunsMatchUnprofiled (internal/driver), which hold
// profiled and unprofiled runs to identical outputs and Stats across the
// full suite, and by the Stats-identity assertions on the profile itself.

import (
	"context"
	"encoding/binary"

	"branchreg/internal/isa"
)

`

const fusedHeader = genMark + `
package emu

// The block-fused execution engine (LoopFused): basic blocks are executed
// straight-line with one up-front step-budget check amortized over the
// block, and chained through pre-linked successor block indices — no
// per-instruction bounds test, budget test, or PC-to-index lookup. Blocks
// the engine cannot run exactly (irregular delay slots, a step budget
// within reach, transfers landing inside a block) are delegated to the
// per-instruction fast loop, which reproduces the instrumented engine's
// accounting to the byte. See blockdecode.go for the block construction
// rules and DESIGN §10 for the design.

import (
	"context"
	"encoding/binary"

	"branchreg/internal/isa"
)

`

const fusedTabHeader = genMark + `
package emu

// The fused superinstruction table: kind constants and the decode-time
// pair/triple lookups used by buildFprog (blockdecode.go). The selection
// lives in gen/main.go (pairSel, tripleSel) and is data-driven: the
// hottest dynamic adjacencies over the 19-workload suite on both
// machines, measured by cmd/fusepairs (DESIGN §10 records the numbers).
// Fused kinds extend uopKind past the predecoded set (predecode.go) and
// appear only in fuop bodies, never in m.dec.

`

const fusedProfHeader = genMark + `
package emu

// The profiled twins of the fused loops (fusedloop.go), with BlockProfile
// updates at transfers of control. Generated from the same template; see
// fastloop_prof.go for why profiled twins are separate functions.

import (
	"context"
	"encoding/binary"

	"branchreg/internal/isa"
)

`

const loopTemplate = `
{{/* ---------------------------------------------------------------- */}}
{{/* dataCases: every non-control micro-op case, shared by all loops.  */}}
{{/* ---------------------------------------------------------------- */}}
{{define "dataCases"}}
case uNop:
	st.Noops++
case uAddImm:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] + u.imm
	}
case uAddReg:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] + R[u.rs2]
	}
case uSubImm:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] - u.imm
	}
case uSubReg:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] - R[u.rs2]
	}
case uMulImm:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] * u.imm
	}
case uMulReg:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] * R[u.rs2]
	}
case uDivImm, uDivReg:
	d := u.imm
	if u.kind == uDivReg {
		d = R[u.rs2]
	}
	if d == 0 {
		{{trap . "TrapArithmetic" "division by zero"}}
	}
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] / d
	}
case uRemImm, uRemReg:
	d := u.imm
	if u.kind == uRemReg {
		d = R[u.rs2]
	}
	if d == 0 {
		{{trap . "TrapArithmetic" "modulo by zero"}}
	}
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] % d
	}
case uAndImm:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] & u.imm
	}
case uAndReg:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] & R[u.rs2]
	}
case uOrImm:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] | u.imm
	}
case uOrReg:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] | R[u.rs2]
	}
case uXorImm:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] ^ u.imm
	}
case uXorReg:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] ^ R[u.rs2]
	}
case uSllImm:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] << (uint32(u.imm) & 31)
	}
case uSllReg:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] << (uint32(R[u.rs2]) & 31)
	}
case uSrlImm:
	if u.rd != 0 {
		R[u.rd] = int32(uint32(R[u.rs1]) >> (uint32(u.imm) & 31))
	}
case uSrlReg:
	if u.rd != 0 {
		R[u.rd] = int32(uint32(R[u.rs1]) >> (uint32(R[u.rs2]) & 31))
	}
case uSraImm:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] >> (uint32(u.imm) & 31)
	}
case uSraReg:
	if u.rd != 0 {
		R[u.rd] = R[u.rs1] >> (uint32(R[u.rs2]) & 31)
	}
case uConst:
	if u.rd != 0 {
		R[u.rd] = u.imm
	}
case uSetImm, uSetReg:
	b := u.imm
	if u.kind == uSetReg {
		b = R[u.rs2]
	}
	v := int32(0)
	if isa.Cond(u.cond).HoldsInt(R[u.rs1], b) {
		v = 1
	}
	if u.rd != 0 {
		R[u.rd] = v
	}
case uFSet:
	v := int32(0)
	if isa.Cond(u.cond).HoldsFloat(F[u.rs1], F[u.rs2]) {
		v = 1
	}
	if u.rd != 0 {
		R[u.rd] = v
	}

case uLwImm, uLwReg:
	st.Loads++
	a := R[u.rs1] + u.imm
	if u.kind == uLwReg {
		a = R[u.rs1] + R[u.rs2]
	}
	if a < 0 || int(a)+4 > len(mem) {
		{{trap . "TrapOOBLoad" "load out of range: %#x" "uint32(a)"}}
	}
	if a%isa.WordSize != 0 {
		{{trap . "TrapMisaligned" "misaligned word load: %#x" "uint32(a)"}}
	}
	if u.rd != 0 {
		R[u.rd] = int32(binary.LittleEndian.Uint32(mem[a:]))
	}
case uLbImm, uLbReg:
	st.Loads++
	a := R[u.rs1] + u.imm
	if u.kind == uLbReg {
		a = R[u.rs1] + R[u.rs2]
	}
	if a < 0 || int(a) >= len(mem) {
		{{trap . "TrapOOBLoad" "byte load out of range: %#x" "uint32(a)"}}
	}
	if u.rd != 0 {
		R[u.rd] = int32(int8(mem[a]))
	}
case uSwImm, uSwReg:
	st.Stores++
	a := R[u.rs1] + u.imm
	if u.kind == uSwReg {
		a = R[u.rs1] + R[u.rs2]
	}
	if a < 0 || int(a)+4 > len(mem) {
		{{trap . "TrapOOBStore" "store out of range: %#x" "uint32(a)"}}
	}
	if a%isa.WordSize != 0 {
		{{trap . "TrapMisaligned" "misaligned word store: %#x" "uint32(a)"}}
	}
	binary.LittleEndian.PutUint32(mem[a:], uint32(R[u.rd]))
case uSbImm, uSbReg:
	st.Stores++
	a := R[u.rs1] + u.imm
	if u.kind == uSbReg {
		a = R[u.rs1] + R[u.rs2]
	}
	if a < 0 || int(a) >= len(mem) {
		{{trap . "TrapOOBStore" "byte store out of range: %#x" "uint32(a)"}}
	}
	mem[a] = byte(R[u.rd])
case uLfImm, uLfReg:
	st.Loads++
	a := R[u.rs1] + u.imm
	if u.kind == uLfReg {
		a = R[u.rs1] + R[u.rs2]
	}
	if a < 0 || int(a)+8 > len(mem) {
		{{trap . "TrapOOBLoad" "float load out of range: %#x" "uint32(a)"}}
	}
	F[u.rd] = isa.FloatFromBits(binary.LittleEndian.Uint64(mem[a:]))
case uSfImm, uSfReg:
	st.Stores++
	a := R[u.rs1] + u.imm
	if u.kind == uSfReg {
		a = R[u.rs1] + R[u.rs2]
	}
	if a < 0 || int(a)+8 > len(mem) {
		{{trap . "TrapOOBStore" "float store out of range: %#x" "uint32(a)"}}
	}
	binary.LittleEndian.PutUint64(mem[a:], isa.FloatBits(F[u.rd]))

case uFadd:
	F[u.rd] = F[u.rs1] + F[u.rs2]
case uFsub:
	F[u.rd] = F[u.rs1] - F[u.rs2]
case uFmul:
	F[u.rd] = F[u.rs1] * F[u.rs2]
case uFdiv:
	F[u.rd] = F[u.rs1] / F[u.rs2]
case uFneg:
	F[u.rd] = -F[u.rs1]
case uFmov:
	F[u.rd] = F[u.rs1]
case uCvtif:
	F[u.rd] = float64(R[u.rs1])
case uCvtfi:
	if u.rd != 0 {
		R[u.rd] = int32(F[u.rs1])
	}
{{if .Exit}}
case uTrapExit:
	m.halted = true
	m.status = R[1]
	{{.Adv}} = false
{{end}}
case uTrapGetc:
	if m.inPos >= len(m.input) {
		R[1] = -1
	} else {
		R[1] = int32(m.input[m.inPos])
		m.inPos++
	}
case uTrapPutc:
	m.out.WriteByte(byte(R[1]))
case uTrapPutf:
	m.putFloat(F[1])
case uTrapBad:
	{{trap . "TrapIllegalInstr" "unknown trap %d" "u.imm"}}
{{if not .Brm}}
case uCmpImm, uCmpReg:
	b := u.imm
	if u.kind == uCmpReg {
		b = R[u.rs2]
	}
	m.CC = signOf(R[u.rs1], b)
	m.ccF = false
case uFcmp:
	a, b := F[u.rs1], F[u.rs2]
	switch {
	case a < b:
		m.CC = -1
	case a > b:
		m.CC = 1
	default:
		m.CC = 0
	}
	m.ccF = true
{{end}}
{{if .Brm}}
case uBrCalcAbs:
	st.BrCalcs++
	m.B[u.rd] = breg{addr: u.imm, calcTime: now, valid: true}
case uBrCalcReg:
	st.BrCalcs++
	m.B[u.rd] = breg{addr: R[u.rs1] + u.imm, calcTime: now, valid: true}
case uBrLd:
	st.BrCalcs++
	st.Loads++
	a := R[u.rs1] + u.imm
	if a < 0 || int(a)+4 > len(mem) {
		{{trap . "TrapOOBLoad" "load out of range: %#x" "uint32(a)"}}
	}
	if a%isa.WordSize != 0 {
		{{trap . "TrapMisaligned" "misaligned word load: %#x" "uint32(a)"}}
	}
	v := int32(binary.LittleEndian.Uint32(mem[a:]))
	m.B[u.rd] = breg{addr: v, calcTime: now, valid: true}
case uCmpBrImm, uCmpBrReg:
	b := u.imm
	if u.kind == uCmpBrReg {
		b = R[u.rs2]
	}
	if isa.Cond(u.cond).HoldsInt(R[u.rs1], b) {
		src := m.B[u.bsrc]
		m.B[isa.RABr] = breg{addr: src.addr, calcTime: src.calcTime, viaCmp: true, valid: true}
	} else {
		m.B[isa.RABr] = breg{addr: seq, calcTime: now, viaCmp: true, valid: true}
	}
case uFCmpBr:
	if isa.Cond(u.cond).HoldsFloat(F[u.rs1], F[u.rs2]) {
		src := m.B[u.bsrc]
		m.B[isa.RABr] = breg{addr: src.addr, calcTime: src.calcTime, viaCmp: true, valid: true}
	} else {
		m.B[isa.RABr] = breg{addr: seq, calcTime: now, viaCmp: true, valid: true}
	}
case uMovBr:
	st.BrMoves++
	m.B[u.rd] = m.B[u.bsrc]
case uMovRB:
	st.BrMoves++
	if u.rd != 0 {
		R[u.rd] = m.B[u.bsrc].addr
	}
case uMovBR:
	st.BrMoves++
	m.B[u.rd] = breg{addr: R[u.rs1], calcTime: now, isRA: true, valid: true}
{{end}}
{{if .Body}}{{fusedCases .}}{{end}}

default: {{if .Brm}}// uIllegal and any baseline-only op
	{{trap . "TrapIllegalInstr" "BRM cannot execute %v" "isa.Op(u.imm)"}}{{else}}// uIllegal and any BRM-only op
	{{trap . "TrapIllegalInstr" "baseline cannot execute %v" "isa.Op(u.imm)"}}{{end}}
{{end}}

{{/* ---------------------------------------------------------------- */}}
{{/* baselineDelay: execute the delay-slot micro-op of a baseline      */}}
{{/* transfer. pend (the armed target index or -2) is live so a trap   */}}
{{/* in the slot reports exactly the fast loop's machine state.        */}}
{{/* ---------------------------------------------------------------- */}}
{{define "baselineDelay"}}
	insts++
	{
		u := &b.dob
		dpc := int(b.dpc)
		switch u.kind {
		{{template "dataCases" cases "pend" "dpc" false .Prof false false ""}}
		}
	}
{{end}}

{{/* ---------------------------------------------------------------- */}}
{{/* applyStatic: apply a pre-resolved baseline transfer (jump, cond   */}}
{{/* taken, call). pend holds the armed Text index for diagnostics.    */}}
{{/* ---------------------------------------------------------------- */}}
{{define "applyStatic"}}
	switch {
	case b.taken == succHalt:
		m.halted = true
		m.status = R[1]
		m.pc = int(b.dpc)
		st.Instructions = insts
		return m.status, nil
	case b.taken == succTrap:
		return 0, m.fastTrap(int(b.dpc), insts, TrapPCOutOfRange, "jump out of text: index %d", pend)
	case b.taken == succInner:
		{{if .Prof}}prof.edge(int(b.dpc), pend)
		{{end}}m.pc = pend
		st.Instructions = insts
		m.Fusion.Bails++
		return {{if .Prof}}runFastBaselineProf(m, ctx, prof){{else}}m.runFastBaseline(ctx){{end}}
	default:
		{{if .Prof}}prof.edge(int(b.dpc), pend)
		{{end}}bi = b.taken
	}
{{end}}

{{/* ---------------------------------------------------------------- */}}
{{/* applyDynamic: apply a computed baseline transfer (jalr, jr).      */}}
{{/* ---------------------------------------------------------------- */}}
{{define "applyDynamic"}}
	switch {
	case pend == -1:
		m.halted = true
		m.status = R[1]
		m.pc = int(b.dpc)
		st.Instructions = insts
		return m.status, nil
	case pend < 0 || pend >= n:
		return 0, m.fastTrap(int(b.dpc), insts, TrapPCOutOfRange, "jump out of text: index %d", pend)
	default:
		{{if .Prof}}prof.edge(int(b.dpc), pend)
		{{end}}bi = fp.pc2block[pend]
		if bi < 0 {
			m.pc = pend
			st.Instructions = insts
			m.Fusion.Bails++
			return {{if .Prof}}runFastBaselineProf(m, ctx, prof){{else}}m.runFastBaseline(ctx){{end}}
		}
	}
{{end}}

{{/* ---------------------------------------------------------------- */}}
{{/* fallThrough: advance to the fall-through successor block.         */}}
{{/* ---------------------------------------------------------------- */}}
{{define "fallThrough"}}
	bi = b.fall
	if bi < 0 {
		if bi == succTrap {
			return 0, m.fastTrap(int(b.fallIdx), insts, TrapPCOutOfRange,
				"pc index %d outside text [0,%d)", int(b.fallIdx), n)
		}
		m.pc = int(b.fallIdx)
		st.Instructions = insts
		m.Fusion.Bails++
		return {{if .Brm}}{{if .Prof}}runFastBRMProf(m, ctx, prof){{else}}m.runFastBRM(ctx){{end}}{{else}}{{if .Prof}}runFastBaselineProf(m, ctx, prof){{else}}m.runFastBaseline(ctx){{end}}{{end}}
	}
{{end}}

{{/* ---------------------------------------------------------------- */}}
{{/* brmApplyTaken: the taken tail of a BRM transfer through breg bv.  */}}
{{/* Expects: bv (breg), now, b, idx (= addrToIndex(bv.addr)); Stats   */}}
{{/* classification already done.                                      */}}
{{/* ---------------------------------------------------------------- */}}
{{define "brmApplyTaken"}}
	st.CondTaken += b2i(bv.viaCmp)
	if idx != -1 {
		dist := now - bv.calcTime
		if dist > DistHistMax {
			st.DistHist[DistHistMax]++
		} else if dist >= 0 {
			st.DistHist[dist]++
		}
		if dist >= MinPrefetchDist {
			st.PrefetchHit++
		} else {
			st.PrefetchMiss++
		}
		{{if .Prof}}prof.taken(int(b.termPC))
		prof.prefetch(int(b.termPC), dist)
		{{end}}
	}
	m.B[isa.RABr] = ret
	switch {
	case idx == -1:
		m.halted = true
		m.status = R[1]
		m.pc = int(b.termPC)
		st.Instructions = insts
		return m.status, nil
	case idx < 0 || idx >= n:
		return 0, m.fastTrap(int(b.termPC), insts, TrapPCOutOfRange, "jump out of text: index %d", idx)
	default:
		{{if .Prof}}prof.edge(int(b.termPC), idx)
		{{end}}bi = fp.pc2block[idx]
		if bi < 0 {
			m.pc = idx
			st.Instructions = insts
			m.Fusion.Bails++
			return {{if .Prof}}runFastBRMProf(m, ctx, prof){{else}}m.runFastBRM(ctx){{end}}
		}
	}
{{end}}

{{/* ================================================================ */}}
{{/* fastBaseline: the per-instruction baseline loop (profiled twin).  */}}
{{/* ================================================================ */}}
{{define "fastBaseline"}}
{{if .Prof}}// runFastBaselineProf is the profiled twin of Machine.runFastBaseline.
func runFastBaselineProf(m *Machine, ctx context.Context, prof *BlockProfile) (int32, error) {
{{else}}// runFastBaseline executes the baseline machine over the predecoded form.
func (m *Machine) runFastBaseline(ctx context.Context) (int32, error) {
{{end}}	ops := m.dec
	st := &m.Stats
	mem := m.Mem
	R := &m.R
	F := &m.F
	limit := m.MaxInstructions
	insts := st.Instructions
	nextPoll := insts + ctxCheckStride
	pc := m.pc
	pending := m.pending

	for !m.halted {
		if pc < 0 || pc >= len(ops) {
			m.pending = pending
			st.Instructions = insts
			return 0, m.fastTrap(pc, insts, TrapPCOutOfRange,
				"pc index %d outside text [0,%d)", pc, len(ops))
		}
		u := &ops[pc]
		insts++

		seqAdv := true
		switch u.kind {
		{{template "dataCases" cases "pending" "pc" false .Prof true false "seqAdv"}}
		case uJump:
			st.UncondJumps++
			{{if .Prof}}prof.taken(pc)
			{{end}}pending = int(u.tgt)
			pc++
			seqAdv = false
		case uBCond:
			st.CondBranches++
			if isa.Cond(u.cond).HoldsInt(m.CC, 0) {
				st.CondTaken++
				{{if .Prof}}prof.taken(pc)
				{{end}}pending = int(u.tgt)
			}{{if .Prof}} else {
				prof.notTaken(pc)
			}{{end}}
			pc++
			seqAdv = false
		case uCall:
			st.Calls++
			{{if .Prof}}prof.taken(pc)
			{{end}}R[isa.RABase] = u.imm
			pending = int(u.tgt)
			pc++
			seqAdv = false
		case uJalr:
			st.Calls++
			{{if .Prof}}prof.taken(pc)
			{{end}}target := R[u.rs1]
			R[isa.RABase] = u.imm
			pending = addrToIndex(target)
			pc++
			seqAdv = false
		case uJrRet, uJrJmp:
			pending = addrToIndex(R[u.rs1])
			if pending != -1 {
				if u.kind == uJrRet {
					st.Returns++
				} else {
					st.UncondJumps++
				}
				{{if .Prof}}prof.taken(pc)
			{{end}}}
			pc++
			seqAdv = false
		}

		if seqAdv && !m.halted {
			if pending != -2 {
				t := pending
				pending = -2
				switch {
				case t == -1:
					m.halted = true
					m.status = R[1]
				case t < 0 || t >= len(ops):
					m.pending = pending
					return 0, m.fastTrap(pc, insts, TrapPCOutOfRange, "jump out of text: index %d", t)
				default:
					{{if .Prof}}prof.edge(pc, t)
					{{end}}pc = t
				}
			} else {
				pc++
			}
		}

		if insts > limit {
			m.pending = pending
			t := m.fastTrap(pc, insts, TrapStepBudget, "instruction limit exceeded")
			t.Limit = limit
			t.Executed = insts
			return 0, t
		}
		if insts >= nextPoll {
			if err := ctx.Err(); err != nil {
				m.pc, m.pending = pc, pending
				st.Instructions = insts
				return 0, err
			}
			nextPoll = insts + ctxCheckStride
		}
	}
	m.pc, m.pending = pc, pending
	st.Instructions = insts
	return m.status, nil
}
{{end}}

{{/* ================================================================ */}}
{{/* fastBRM: the per-instruction BRM loop (profiled twin).            */}}
{{/* ================================================================ */}}
{{define "fastBRM"}}
{{if .Prof}}// runFastBRMProf is the profiled twin of Machine.runFastBRM.
func runFastBRMProf(m *Machine, ctx context.Context, prof *BlockProfile) (int32, error) {
{{else}}// runFastBRM executes the branch-register machine over the predecoded form.
func (m *Machine) runFastBRM(ctx context.Context) (int32, error) {
{{end}}	ops := m.dec
	st := &m.Stats
	mem := m.Mem
	R := &m.R
	F := &m.F
	limit := m.MaxInstructions
	insts := st.Instructions
	nextPoll := insts + ctxCheckStride
	pc := m.pc

	for !m.halted {
		if pc < 0 || pc >= len(ops) {
			return 0, m.fastTrap(pc, insts, TrapPCOutOfRange,
				"pc index %d outside text [0,%d)", pc, len(ops))
		}
		u := &ops[pc]
		insts++
		now := insts

		advance := true
		switch u.kind {
		{{template "dataCases" cases "" "pc" true .Prof true false "advance"}}
		}

		if advance && !m.halted {
			if u.br == isa.PCBr {
				pc++
			} else {
				b := m.B[u.br]
				if !b.valid {
					return 0, m.fastTrap(pc, insts, TrapUninitBranchReg,
						"transfer through uninitialized b[%d]", u.br)
				}
				switch {
				case b.viaCmp:
					st.CondBranches++
				case b.addr == seq:
					// only compares produce the sequential sentinel
				default:
					idx := addrToIndex(b.addr)
					switch {
					case idx == -1:
						// exit to the halt address: not a workload transfer
					case m.isFuncEntry(idx):
						st.Calls++
					case b.isRA:
						st.Returns++
					default:
						st.UncondJumps++
					}
				}
				ret := breg{addr: isa.IndexToAddr(pc) + isa.WordSize, calcTime: now, isRA: true, valid: true}
				if b.addr == seq {
					// Untaken conditional: fall through.
					{{if .Prof}}prof.notTaken(pc)
					{{end}}m.B[isa.RABr] = ret
					pc++
				} else {
					st.CondTaken += b2i(b.viaCmp)
					idx := addrToIndex(b.addr)
					if idx != -1 {
						dist := now - b.calcTime
						if dist > DistHistMax {
							st.DistHist[DistHistMax]++
						} else if dist >= 0 {
							st.DistHist[dist]++
						}
						if dist >= MinPrefetchDist {
							st.PrefetchHit++
						} else {
							st.PrefetchMiss++
						}
						{{if .Prof}}prof.taken(pc)
						prof.prefetch(pc, dist)
					{{end}}}
					m.B[isa.RABr] = ret
					switch {
					case idx == -1:
						m.halted = true
						m.status = R[1]
					case idx < 0 || idx >= len(ops):
						return 0, m.fastTrap(pc, insts, TrapPCOutOfRange, "jump out of text: index %d", idx)
					default:
						{{if .Prof}}prof.edge(pc, idx)
						{{end}}pc = idx
					}
				}
			}
		}

		if insts > limit {
			t := m.fastTrap(pc, insts, TrapStepBudget, "instruction limit exceeded")
			t.Limit = limit
			t.Executed = insts
			return 0, t
		}
		if insts >= nextPoll {
			if err := ctx.Err(); err != nil {
				m.pc = pc
				st.Instructions = insts
				return 0, err
			}
			nextPoll = insts + ctxCheckStride
		}
	}
	m.pc = pc
	st.Instructions = insts
	return m.status, nil
}
{{end}}

{{/* ================================================================ */}}
{{/* fusedBaseline: the block-fused baseline engine.                   */}}
{{/* ================================================================ */}}
{{define "fusedBaseline"}}
{{if .Prof}}// runFusedBaselineProf is the profiled twin of runFusedBaseline.
func runFusedBaselineProf(m *Machine, ctx context.Context, prof *BlockProfile) (int32, error) {
{{else}}// runFusedBaseline executes the baseline machine over the block-fused form.
func runFusedBaseline(m *Machine, ctx context.Context) (int32, error) {
{{end}}	fp := m.fp
	if m.halted {
		return m.status, nil
	}
	bi := int32(-1)
	if m.pc >= 0 && m.pc < len(fp.pc2block) {
		bi = fp.pc2block[m.pc]
	}
	if bi < 0 || m.pending != -2 {
		// Not at a block boundary (a resumed or hand-positioned machine):
		// the whole run belongs to the per-instruction loop.
		m.Fusion.Bails++
		return {{if .Prof}}runFastBaselineProf(m, ctx, prof){{else}}m.runFastBaseline(ctx){{end}}
	}
	ops := fp.ops
	blocks := fp.blocks
	st := &m.Stats
	mem := m.Mem
	R := &m.R
	F := &m.F
	limit := m.MaxInstructions
	insts := st.Instructions
	nextPoll := insts + ctxCheckStride
	n := len(fp.dec)

	for {
		b := &blocks[bi]
		if insts+int64(b.cost) > limit || b.term == ftBail {
			// The step budget could expire inside this block, or the
			// block is irregular: fall back to per-instruction
			// accounting for the rest of the run.
			m.pc = int(b.start)
			st.Instructions = insts
			m.Fusion.Bails++
			return {{if .Prof}}runFastBaselineProf(m, ctx, prof){{else}}m.runFastBaseline(ctx){{end}}
		}
		if insts >= nextPoll {
			if err := ctx.Err(); err != nil {
				m.pc = int(b.start)
				st.Instructions = insts
				return 0, err
			}
			nextPoll = insts + ctxCheckStride
		}
		m.Fusion.Blocks++

		body := ops[b.off : b.off+b.n]
		for i := range body {
			u := &body[i]
			insts++
			switch u.kind {
			{{template "dataCases" cases "" "int(u.pc)" false .Prof false true ""}}
			}
		}

		switch b.term {
		case ftFall:
			{{template "fallThrough" cases "" "" false .Prof false false ""}}
		case ftExit:
			insts++
			m.halted = true
			m.status = R[1]
			m.pc = int(b.termPC)
			st.Instructions = insts
			return m.status, nil
		case ftJump:
			insts++
			st.UncondJumps++
			{{if .Prof}}prof.taken(int(b.termPC))
			{{end}}pend := int(b.tgt)
			{{template "baselineDelay" .}}
			{{template "applyStatic" .}}
		case ftBCond, ftCmpBCond:
			if b.term == ftCmpBCond {
				insts++
				u := &b.cob
				switch u.kind {
				case uCmpImm:
					m.CC = signOf(R[u.rs1], u.imm)
					m.ccF = false
				case uCmpReg:
					m.CC = signOf(R[u.rs1], R[u.rs2])
					m.ccF = false
				default: // uFcmp
					a, c := F[u.rs1], F[u.rs2]
					switch {
					case a < c:
						m.CC = -1
					case a > c:
						m.CC = 1
					default:
						m.CC = 0
					}
					m.ccF = true
				}
				m.Fusion.Fused++
			}
			insts++
			st.CondBranches++
			pend := -2
			if isa.Cond(b.tob.cond).HoldsInt(m.CC, 0) {
				st.CondTaken++
				{{if .Prof}}prof.taken(int(b.termPC))
				{{end}}pend = int(b.tgt)
			}{{if .Prof}} else {
				prof.notTaken(int(b.termPC))
			}{{end}}
			{{template "baselineDelay" .}}
			if pend == -2 {
				{{template "fallThrough" cases "" "" false .Prof false false ""}}
			} else {
				{{template "applyStatic" .}}
			}
		case ftCall:
			insts++
			st.Calls++
			{{if .Prof}}prof.taken(int(b.termPC))
			{{end}}R[isa.RABase] = b.tob.imm
			pend := int(b.tgt)
			{{template "baselineDelay" .}}
			{{template "applyStatic" .}}
		case ftJalr:
			insts++
			st.Calls++
			{{if .Prof}}prof.taken(int(b.termPC))
			{{end}}target := R[b.tob.rs1]
			R[isa.RABase] = b.tob.imm
			pend := addrToIndex(target)
			{{template "baselineDelay" .}}
			{{template "applyDynamic" .}}
		default: // ftJr
			insts++
			pend := addrToIndex(R[b.tob.rs1])
			if pend != -1 {
				if b.tob.kind == uJrRet {
					st.Returns++
				} else {
					st.UncondJumps++
				}
				{{if .Prof}}prof.taken(int(b.termPC))
			{{end}}}
			{{template "baselineDelay" .}}
			{{template "applyDynamic" .}}
		}
	}
}
{{end}}

{{/* ================================================================ */}}
{{/* fusedBRM: the block-fused branch-register engine.                 */}}
{{/* ================================================================ */}}
{{define "fusedBRM"}}
{{if .Prof}}// runFusedBRMProf is the profiled twin of runFusedBRM.
func runFusedBRMProf(m *Machine, ctx context.Context, prof *BlockProfile) (int32, error) {
{{else}}// runFusedBRM executes the branch-register machine over the block-fused form.
func runFusedBRM(m *Machine, ctx context.Context) (int32, error) {
{{end}}	fp := m.fp
	if m.halted {
		return m.status, nil
	}
	bi := int32(-1)
	if m.pc >= 0 && m.pc < len(fp.pc2block) {
		bi = fp.pc2block[m.pc]
	}
	if bi < 0 {
		m.Fusion.Bails++
		return {{if .Prof}}runFastBRMProf(m, ctx, prof){{else}}m.runFastBRM(ctx){{end}}
	}
	ops := fp.ops
	blocks := fp.blocks
	st := &m.Stats
	mem := m.Mem
	R := &m.R
	F := &m.F
	limit := m.MaxInstructions
	insts := st.Instructions
	nextPoll := insts + ctxCheckStride
	n := len(fp.dec)

	for {
		b := &blocks[bi]
		if insts+int64(b.cost) > limit || b.term == ftBail {
			m.pc = int(b.start)
			st.Instructions = insts
			m.Fusion.Bails++
			return {{if .Prof}}runFastBRMProf(m, ctx, prof){{else}}m.runFastBRM(ctx){{end}}
		}
		if insts >= nextPoll {
			if err := ctx.Err(); err != nil {
				m.pc = int(b.start)
				st.Instructions = insts
				return 0, err
			}
			nextPoll = insts + ctxCheckStride
		}
		m.Fusion.Blocks++

		body := ops[b.off : b.off+b.n]
		for i := range body {
			u := &body[i]
			insts++
			now := insts
			_ = now
			switch u.kind {
			{{template "dataCases" cases "" "int(u.pc)" true .Prof false true ""}}
			}
		}

		switch b.term {
		case ftFall:
			{{template "fallThrough" cases "" "" true .Prof false false ""}}
		case ftExit:
			insts++
			m.halted = true
			m.status = R[1]
			m.pc = int(b.termPC)
			st.Instructions = insts
			return m.status, nil
		case ftBrm:
			insts++
			now := insts
			{
				u := &b.tob
				tpc := int(b.termPC)
				_ = tpc
				switch u.kind {
				{{template "dataCases" cases "" "tpc" true .Prof false false ""}}
				}
			}
			bv := m.B[b.tob.br]
			if !bv.valid {
				return 0, m.fastTrap(int(b.termPC), insts, TrapUninitBranchReg,
					"transfer through uninitialized b[%d]", b.tob.br)
			}
			ret := breg{addr: b.retAddr, calcTime: now, isRA: true, valid: true}
			if bv.addr == seq {
				// Untaken conditional (or a movbr that copied the
				// sentinel): fall through.
				if bv.viaCmp {
					st.CondBranches++
				}
				{{if .Prof}}prof.notTaken(int(b.termPC))
				{{end}}m.B[isa.RABr] = ret
				{{template "fallThrough" cases "" "" true .Prof false false ""}}
			} else {
				idx := addrToIndex(bv.addr)
				switch {
				case bv.viaCmp:
					st.CondBranches++
				case idx == -1:
					// exit to the halt address: not a workload transfer
				case m.isFuncEntry(idx):
					st.Calls++
				case bv.isRA:
					st.Returns++
				default:
					st.UncondJumps++
				}
				{{template "brmApplyTaken" .}}
			}
		case ftBrmSJmp:
			// Transfer through a breg the block itself loaded with a
			// static target: no breg read, classification or PC→index
			// lookup at runtime — target block, stat class and prefetch
			// distance were all resolved at decode time.
			insts++
			now := insts
			{
				u := &b.tob
				tpc := int(b.termPC)
				_ = tpc
				switch u.kind {
				{{template "dataCases" cases "" "tpc" true .Prof false false ""}}
				}
			}
			m.B[isa.RABr] = breg{addr: b.retAddr, calcTime: now, isRA: true, valid: true}
			if b.taken == succHalt {
				m.halted = true
				m.status = R[1]
				m.pc = int(b.termPC)
				st.Instructions = insts
				return m.status, nil
			}
			if b.statK == 1 {
				st.Calls++
			} else {
				st.UncondJumps++
			}
			if b.distK > DistHistMax {
				st.DistHist[DistHistMax]++
			} else {
				st.DistHist[b.distK]++
			}
			if b.distK >= MinPrefetchDist {
				st.PrefetchHit++
			} else {
				st.PrefetchMiss++
			}
			{{if .Prof}}prof.taken(int(b.termPC))
			prof.prefetch(int(b.termPC), int64(b.distK))
			{{end}}bi = b.taken
			if bi < 0 {
				if bi == succTrap {
					return 0, m.fastTrap(int(b.termPC), insts, TrapPCOutOfRange, "jump out of text: index %d", int(b.tgt))
				}
				{{if .Prof}}prof.edge(int(b.termPC), int(b.tgt))
				{{end}}m.pc = int(b.tgt)
				st.Instructions = insts
				m.Fusion.Bails++
				return {{if .Prof}}runFastBRMProf(m, ctx, prof){{else}}m.runFastBRM(ctx){{end}}
			}
			{{if .Prof}}prof.edge(int(b.termPC), int(b.tgt))
			{{end}}case ftBrmSCond:
			// Transfer through a compare whose source breg the block
			// loaded statically: the breg read degenerates to a
			// taken/untaken test and both arms are fully resolved.
			insts++
			now := insts
			{
				u := &b.tob
				tpc := int(b.termPC)
				_ = tpc
				switch u.kind {
				{{template "dataCases" cases "" "tpc" true .Prof false false ""}}
				}
			}
			st.CondBranches++
			ret := breg{addr: b.retAddr, calcTime: now, isRA: true, valid: true}
			if m.B[b.tob.br].addr == seq {
				{{if .Prof}}prof.notTaken(int(b.termPC))
				{{end}}m.B[isa.RABr] = ret
				{{template "fallThrough" cases "" "" true .Prof false false ""}}
			} else {
				st.CondTaken++
				m.B[isa.RABr] = ret
				if b.taken == succHalt {
					m.halted = true
					m.status = R[1]
					m.pc = int(b.termPC)
					st.Instructions = insts
					return m.status, nil
				}
				if b.distK > DistHistMax {
					st.DistHist[DistHistMax]++
				} else {
					st.DistHist[b.distK]++
				}
				if b.distK >= MinPrefetchDist {
					st.PrefetchHit++
				} else {
					st.PrefetchMiss++
				}
				{{if .Prof}}prof.taken(int(b.termPC))
				prof.prefetch(int(b.termPC), int64(b.distK))
				{{end}}bi = b.taken
				if bi < 0 {
					if bi == succTrap {
						return 0, m.fastTrap(int(b.termPC), insts, TrapPCOutOfRange, "jump out of text: index %d", int(b.tgt))
					}
					{{if .Prof}}prof.edge(int(b.termPC), int(b.tgt))
					{{end}}m.pc = int(b.tgt)
					st.Instructions = insts
					m.Fusion.Bails++
					return {{if .Prof}}runFastBRMProf(m, ctx, prof){{else}}m.runFastBRM(ctx){{end}}
				}
				{{if .Prof}}prof.edge(int(b.termPC), int(b.tgt))
			{{end}}}
		case ftBrmCmpBr:
			insts++
			now := insts
			var bv breg
			{
				u := &b.cob
				taken := false
				switch u.kind {
				case uCmpBrImm:
					taken = isa.Cond(u.cond).HoldsInt(R[u.rs1], u.imm)
				case uCmpBrReg:
					taken = isa.Cond(u.cond).HoldsInt(R[u.rs1], R[u.rs2])
				default: // uFCmpBr
					taken = isa.Cond(u.cond).HoldsFloat(F[u.rs1], F[u.rs2])
				}
				if taken {
					src := m.B[u.bsrc]
					bv = breg{addr: src.addr, calcTime: src.calcTime, viaCmp: true, valid: true}
				} else {
					bv = breg{addr: seq, calcTime: now, viaCmp: true, valid: true}
				}
				if !b.lite {
					// The companion op could observe (or a trap in it could
					// expose) the intermediate b[7] value; for lite blocks
					// the compare result is dead until the transfer and the
					// store is elided.
					m.B[isa.RABr] = bv
				}
			}
			m.Fusion.Fused++
			insts++
			now = insts
			{
				u := &b.tob
				tpc := int(b.termPC)
				_ = tpc
				switch u.kind {
				{{template "dataCases" cases "" "tpc" true .Prof false false ""}}
				}
			}
			// The transfer reads b[7] as the compare left it: the fused
			// companion never writes a branch register (blockdecode).
			st.CondBranches++
			ret := breg{addr: b.retAddr, calcTime: now, isRA: true, valid: true}
			if bv.addr == seq {
				{{if .Prof}}prof.notTaken(int(b.termPC))
				{{end}}m.B[isa.RABr] = ret
				{{template "fallThrough" cases "" "" true .Prof false false ""}}
			} else {
				idx := addrToIndex(bv.addr)
				{{template "brmApplyTaken" .}}
			}
		default: // ftBrmCalcBr
			insts++
			now := insts
			st.BrCalcs++
			m.B[b.cob.rd] = breg{addr: b.cob.imm, calcTime: now, valid: true}
			m.Fusion.Fused++
			insts++
			now = insts
			{
				u := &b.tob
				tpc := int(b.termPC)
				_ = tpc
				switch u.kind {
				{{template "dataCases" cases "" "tpc" true .Prof false false ""}}
				}
			}
			switch b.statK {
			case 1:
				st.Calls++
			case 2:
				st.UncondJumps++
			}
			if b.statK != 0 {
				// The target was calculated by the immediately preceding
				// instruction: the prefetch distance is always 1.
				st.DistHist[1]++
				st.PrefetchMiss++
				{{if .Prof}}prof.taken(int(b.termPC))
				prof.prefetch(int(b.termPC), 1)
			{{end}}}
			m.B[isa.RABr] = breg{addr: b.retAddr, calcTime: now, isRA: true, valid: true}
			switch {
			case b.taken == succHalt:
				m.halted = true
				m.status = R[1]
				m.pc = int(b.termPC)
				st.Instructions = insts
				return m.status, nil
			case b.taken == succTrap:
				return 0, m.fastTrap(int(b.termPC), insts, TrapPCOutOfRange, "jump out of text: index %d", int(b.tgt))
			case b.taken == succInner:
				{{if .Prof}}prof.edge(int(b.termPC), int(b.tgt))
				{{end}}m.pc = int(b.tgt)
				st.Instructions = insts
				m.Fusion.Bails++
				return {{if .Prof}}runFastBRMProf(m, ctx, prof){{else}}m.runFastBRM(ctx){{end}}
			default:
				{{if .Prof}}prof.edge(int(b.termPC), int(b.tgt))
				{{end}}bi = b.taken
			}
		}
	}
}
{{end}}
`
