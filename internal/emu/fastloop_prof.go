package emu

// The profiled twins of the fast loops (fastloop.go). Each is the same
// predecoded dispatch loop with BlockProfile updates at transfers of
// control — unconditional writes, no callbacks, merged into the shared
// arrays only because prof is non-nil by construction (RunContext
// dispatches here exactly when a profile is attached).
//
// The twins are deliberately separate functions rather than a generic
// parameterization: an earlier generic version put a dictionary-indirect
// call at every hook site of the shared gcshape body, costing ~20% BRM
// throughput even for the no-op instantiation, and a runtime `prof !=
// nil` test per transfer cost ~4% baseline / ~12% BRM. Keeping the
// unprofiled loops byte-identical to their pre-profiler form is a gated
// requirement (`make bench-gate`).
//
// Drift between a loop and its twin is caught by TestProfileEnginesAgree
// and TestProfiledRunsMatchUnprofiled (internal/driver), which hold
// profiled and unprofiled runs to identical outputs and Stats across the
// full suite, and by the Stats-identity assertions on the profile itself.

import (
	"context"
	"encoding/binary"

	"branchreg/internal/isa"
)

// runFastBaselineProf is the profiled twin of Machine.runFastBaseline.
func runFastBaselineProf(m *Machine, ctx context.Context, prof *BlockProfile) (int32, error) {
	ops := m.dec
	st := &m.Stats
	mem := m.Mem
	R := &m.R
	F := &m.F
	limit := m.MaxInstructions
	insts := st.Instructions
	nextPoll := insts + ctxCheckStride
	pc := m.pc
	pending := m.pending

	for !m.halted {
		if pc < 0 || pc >= len(ops) {
			m.pending = pending
			st.Instructions = insts
			return 0, m.fastTrap(pc, insts, TrapPCOutOfRange,
				"pc index %d outside text [0,%d)", pc, len(ops))
		}
		u := &ops[pc]
		insts++

		seqAdv := true
		switch u.kind {
		case uNop:
			st.Noops++
		case uAddImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] + u.imm
			}
		case uAddReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] + R[u.rs2]
			}
		case uSubImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] - u.imm
			}
		case uSubReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] - R[u.rs2]
			}
		case uMulImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] * u.imm
			}
		case uMulReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] * R[u.rs2]
			}
		case uDivImm, uDivReg:
			d := u.imm
			if u.kind == uDivReg {
				d = R[u.rs2]
			}
			if d == 0 {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapArithmetic, "division by zero")
			}
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] / d
			}
		case uRemImm, uRemReg:
			d := u.imm
			if u.kind == uRemReg {
				d = R[u.rs2]
			}
			if d == 0 {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapArithmetic, "modulo by zero")
			}
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] % d
			}
		case uAndImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] & u.imm
			}
		case uAndReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] & R[u.rs2]
			}
		case uOrImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] | u.imm
			}
		case uOrReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] | R[u.rs2]
			}
		case uXorImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] ^ u.imm
			}
		case uXorReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] ^ R[u.rs2]
			}
		case uSllImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] << (uint32(u.imm) & 31)
			}
		case uSllReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] << (uint32(R[u.rs2]) & 31)
			}
		case uSrlImm:
			if u.rd != 0 {
				R[u.rd] = int32(uint32(R[u.rs1]) >> (uint32(u.imm) & 31))
			}
		case uSrlReg:
			if u.rd != 0 {
				R[u.rd] = int32(uint32(R[u.rs1]) >> (uint32(R[u.rs2]) & 31))
			}
		case uSraImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] >> (uint32(u.imm) & 31)
			}
		case uSraReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] >> (uint32(R[u.rs2]) & 31)
			}
		case uConst:
			if u.rd != 0 {
				R[u.rd] = u.imm
			}
		case uSetImm, uSetReg:
			b := u.imm
			if u.kind == uSetReg {
				b = R[u.rs2]
			}
			v := int32(0)
			if isa.Cond(u.cond).HoldsInt(R[u.rs1], b) {
				v = 1
			}
			if u.rd != 0 {
				R[u.rd] = v
			}
		case uFSet:
			v := int32(0)
			if isa.Cond(u.cond).HoldsFloat(F[u.rs1], F[u.rs2]) {
				v = 1
			}
			if u.rd != 0 {
				R[u.rd] = v
			}

		case uLwImm, uLwReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLwReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+4 > len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "load out of range: %#x", uint32(a))
			}
			if a%isa.WordSize != 0 {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapMisaligned, "misaligned word load: %#x", uint32(a))
			}
			if u.rd != 0 {
				R[u.rd] = int32(binary.LittleEndian.Uint32(mem[a:]))
			}
		case uLbImm, uLbReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLbReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a) >= len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "byte load out of range: %#x", uint32(a))
			}
			if u.rd != 0 {
				R[u.rd] = int32(int8(mem[a]))
			}
		case uSwImm, uSwReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSwReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+4 > len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "store out of range: %#x", uint32(a))
			}
			if a%isa.WordSize != 0 {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapMisaligned, "misaligned word store: %#x", uint32(a))
			}
			binary.LittleEndian.PutUint32(mem[a:], uint32(R[u.rd]))
		case uSbImm, uSbReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSbReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a) >= len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "byte store out of range: %#x", uint32(a))
			}
			mem[a] = byte(R[u.rd])
		case uLfImm, uLfReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLfReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+8 > len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "float load out of range: %#x", uint32(a))
			}
			F[u.rd] = isa.FloatFromBits(binary.LittleEndian.Uint64(mem[a:]))
		case uSfImm, uSfReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSfReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+8 > len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "float store out of range: %#x", uint32(a))
			}
			binary.LittleEndian.PutUint64(mem[a:], isa.FloatBits(F[u.rd]))

		case uFadd:
			F[u.rd] = F[u.rs1] + F[u.rs2]
		case uFsub:
			F[u.rd] = F[u.rs1] - F[u.rs2]
		case uFmul:
			F[u.rd] = F[u.rs1] * F[u.rs2]
		case uFdiv:
			F[u.rd] = F[u.rs1] / F[u.rs2]
		case uFneg:
			F[u.rd] = -F[u.rs1]
		case uFmov:
			F[u.rd] = F[u.rs1]
		case uCvtif:
			F[u.rd] = float64(R[u.rs1])
		case uCvtfi:
			if u.rd != 0 {
				R[u.rd] = int32(F[u.rs1])
			}

		case uTrapExit:
			m.halted = true
			m.status = R[1]
			seqAdv = false
		case uTrapGetc:
			if m.inPos >= len(m.input) {
				R[1] = -1
			} else {
				R[1] = int32(m.input[m.inPos])
				m.inPos++
			}
		case uTrapPutc:
			m.out.WriteByte(byte(R[1]))
		case uTrapPutf:
			m.putFloat(F[1])
		case uTrapBad:
			m.pending = pending
			return 0, m.fastTrap(pc, insts, TrapIllegalInstr, "unknown trap %d", u.imm)

		case uCmpImm, uCmpReg:
			b := u.imm
			if u.kind == uCmpReg {
				b = R[u.rs2]
			}
			m.CC = signOf(R[u.rs1], b)
			m.ccF = false
		case uFcmp:
			a, b := F[u.rs1], F[u.rs2]
			switch {
			case a < b:
				m.CC = -1
			case a > b:
				m.CC = 1
			default:
				m.CC = 0
			}
			m.ccF = true
		case uJump:
			st.UncondJumps++
			prof.taken(pc)
			pending = int(u.tgt)
			pc++
			seqAdv = false
		case uBCond:
			st.CondBranches++
			if isa.Cond(u.cond).HoldsInt(m.CC, 0) {
				st.CondTaken++
				prof.taken(pc)
				pending = int(u.tgt)
			} else {
				prof.notTaken(pc)
			}
			pc++
			seqAdv = false
		case uCall:
			st.Calls++
			prof.taken(pc)
			R[isa.RABase] = u.imm
			pending = int(u.tgt)
			pc++
			seqAdv = false
		case uJalr:
			st.Calls++
			prof.taken(pc)
			target := R[u.rs1]
			R[isa.RABase] = u.imm
			pending = addrToIndex(target)
			pc++
			seqAdv = false
		case uJrRet, uJrJmp:
			pending = addrToIndex(R[u.rs1])
			if pending != -1 {
				if u.kind == uJrRet {
					st.Returns++
				} else {
					st.UncondJumps++
				}
				prof.taken(pc)
			}
			pc++
			seqAdv = false

		default: // uIllegal and any BRM-only op
			m.pending = pending
			return 0, m.fastTrap(pc, insts, TrapIllegalInstr,
				"baseline cannot execute %v", isa.Op(u.imm))
		}

		if seqAdv && !m.halted {
			if pending != -2 {
				t := pending
				pending = -2
				switch {
				case t == -1:
					m.halted = true
					m.status = R[1]
				case t < 0 || t >= len(ops):
					m.pending = pending
					return 0, m.fastTrap(pc, insts, TrapPCOutOfRange, "jump out of text: index %d", t)
				default:
					prof.edge(pc, t)
					pc = t
				}
			} else {
				pc++
			}
		}

		if insts > limit {
			m.pending = pending
			t := m.fastTrap(pc, insts, TrapStepBudget, "instruction limit exceeded")
			t.Limit = limit
			t.Executed = insts
			return 0, t
		}
		if insts >= nextPoll {
			if err := ctx.Err(); err != nil {
				m.pc, m.pending = pc, pending
				st.Instructions = insts
				return 0, err
			}
			nextPoll = insts + ctxCheckStride
		}
	}
	m.pc, m.pending = pc, pending
	st.Instructions = insts
	return m.status, nil
}

// runFastBRMProf is the profiled twin of Machine.runFastBRM.
func runFastBRMProf(m *Machine, ctx context.Context, prof *BlockProfile) (int32, error) {
	ops := m.dec
	st := &m.Stats
	mem := m.Mem
	R := &m.R
	F := &m.F
	limit := m.MaxInstructions
	insts := st.Instructions
	nextPoll := insts + ctxCheckStride
	pc := m.pc

	for !m.halted {
		if pc < 0 || pc >= len(ops) {
			return 0, m.fastTrap(pc, insts, TrapPCOutOfRange,
				"pc index %d outside text [0,%d)", pc, len(ops))
		}
		u := &ops[pc]
		insts++
		now := insts

		advance := true
		switch u.kind {
		case uNop:
			st.Noops++
		case uAddImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] + u.imm
			}
		case uAddReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] + R[u.rs2]
			}
		case uSubImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] - u.imm
			}
		case uSubReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] - R[u.rs2]
			}
		case uMulImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] * u.imm
			}
		case uMulReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] * R[u.rs2]
			}
		case uDivImm, uDivReg:
			d := u.imm
			if u.kind == uDivReg {
				d = R[u.rs2]
			}
			if d == 0 {
				return 0, m.fastTrap(pc, insts, TrapArithmetic, "division by zero")
			}
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] / d
			}
		case uRemImm, uRemReg:
			d := u.imm
			if u.kind == uRemReg {
				d = R[u.rs2]
			}
			if d == 0 {
				return 0, m.fastTrap(pc, insts, TrapArithmetic, "modulo by zero")
			}
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] % d
			}
		case uAndImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] & u.imm
			}
		case uAndReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] & R[u.rs2]
			}
		case uOrImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] | u.imm
			}
		case uOrReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] | R[u.rs2]
			}
		case uXorImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] ^ u.imm
			}
		case uXorReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] ^ R[u.rs2]
			}
		case uSllImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] << (uint32(u.imm) & 31)
			}
		case uSllReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] << (uint32(R[u.rs2]) & 31)
			}
		case uSrlImm:
			if u.rd != 0 {
				R[u.rd] = int32(uint32(R[u.rs1]) >> (uint32(u.imm) & 31))
			}
		case uSrlReg:
			if u.rd != 0 {
				R[u.rd] = int32(uint32(R[u.rs1]) >> (uint32(R[u.rs2]) & 31))
			}
		case uSraImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] >> (uint32(u.imm) & 31)
			}
		case uSraReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] >> (uint32(R[u.rs2]) & 31)
			}
		case uConst:
			if u.rd != 0 {
				R[u.rd] = u.imm
			}
		case uSetImm, uSetReg:
			b := u.imm
			if u.kind == uSetReg {
				b = R[u.rs2]
			}
			v := int32(0)
			if isa.Cond(u.cond).HoldsInt(R[u.rs1], b) {
				v = 1
			}
			if u.rd != 0 {
				R[u.rd] = v
			}
		case uFSet:
			v := int32(0)
			if isa.Cond(u.cond).HoldsFloat(F[u.rs1], F[u.rs2]) {
				v = 1
			}
			if u.rd != 0 {
				R[u.rd] = v
			}

		case uLwImm, uLwReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLwReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+4 > len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "load out of range: %#x", uint32(a))
			}
			if a%isa.WordSize != 0 {
				return 0, m.fastTrap(pc, insts, TrapMisaligned, "misaligned word load: %#x", uint32(a))
			}
			if u.rd != 0 {
				R[u.rd] = int32(binary.LittleEndian.Uint32(mem[a:]))
			}
		case uLbImm, uLbReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLbReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a) >= len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "byte load out of range: %#x", uint32(a))
			}
			if u.rd != 0 {
				R[u.rd] = int32(int8(mem[a]))
			}
		case uSwImm, uSwReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSwReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+4 > len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "store out of range: %#x", uint32(a))
			}
			if a%isa.WordSize != 0 {
				return 0, m.fastTrap(pc, insts, TrapMisaligned, "misaligned word store: %#x", uint32(a))
			}
			binary.LittleEndian.PutUint32(mem[a:], uint32(R[u.rd]))
		case uSbImm, uSbReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSbReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a) >= len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "byte store out of range: %#x", uint32(a))
			}
			mem[a] = byte(R[u.rd])
		case uLfImm, uLfReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLfReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+8 > len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "float load out of range: %#x", uint32(a))
			}
			F[u.rd] = isa.FloatFromBits(binary.LittleEndian.Uint64(mem[a:]))
		case uSfImm, uSfReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSfReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+8 > len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "float store out of range: %#x", uint32(a))
			}
			binary.LittleEndian.PutUint64(mem[a:], isa.FloatBits(F[u.rd]))

		case uFadd:
			F[u.rd] = F[u.rs1] + F[u.rs2]
		case uFsub:
			F[u.rd] = F[u.rs1] - F[u.rs2]
		case uFmul:
			F[u.rd] = F[u.rs1] * F[u.rs2]
		case uFdiv:
			F[u.rd] = F[u.rs1] / F[u.rs2]
		case uFneg:
			F[u.rd] = -F[u.rs1]
		case uFmov:
			F[u.rd] = F[u.rs1]
		case uCvtif:
			F[u.rd] = float64(R[u.rs1])
		case uCvtfi:
			if u.rd != 0 {
				R[u.rd] = int32(F[u.rs1])
			}

		case uTrapExit:
			m.halted = true
			m.status = R[1]
			advance = false
		case uTrapGetc:
			if m.inPos >= len(m.input) {
				R[1] = -1
			} else {
				R[1] = int32(m.input[m.inPos])
				m.inPos++
			}
		case uTrapPutc:
			m.out.WriteByte(byte(R[1]))
		case uTrapPutf:
			m.putFloat(F[1])
		case uTrapBad:
			return 0, m.fastTrap(pc, insts, TrapIllegalInstr, "unknown trap %d", u.imm)

		case uBrCalcAbs:
			st.BrCalcs++
			m.B[u.rd] = breg{addr: int64(u.imm), calcTime: now, valid: true}
		case uBrCalcReg:
			st.BrCalcs++
			m.B[u.rd] = breg{addr: int64(R[u.rs1] + u.imm), calcTime: now, valid: true}
		case uBrLd:
			st.BrCalcs++
			st.Loads++
			a := R[u.rs1] + u.imm
			if a < 0 || int(a)+4 > len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "load out of range: %#x", uint32(a))
			}
			if a%isa.WordSize != 0 {
				return 0, m.fastTrap(pc, insts, TrapMisaligned, "misaligned word load: %#x", uint32(a))
			}
			v := int32(binary.LittleEndian.Uint32(mem[a:]))
			m.B[u.rd] = breg{addr: int64(v), calcTime: now, valid: true}
		case uCmpBrImm, uCmpBrReg:
			b := u.imm
			if u.kind == uCmpBrReg {
				b = R[u.rs2]
			}
			if isa.Cond(u.cond).HoldsInt(R[u.rs1], b) {
				src := m.B[u.bsrc]
				m.B[isa.RABr] = breg{addr: src.addr, calcTime: src.calcTime, viaCmp: true, valid: true}
			} else {
				m.B[isa.RABr] = breg{addr: seq, calcTime: now, viaCmp: true, valid: true}
			}
		case uFCmpBr:
			if isa.Cond(u.cond).HoldsFloat(F[u.rs1], F[u.rs2]) {
				src := m.B[u.bsrc]
				m.B[isa.RABr] = breg{addr: src.addr, calcTime: src.calcTime, viaCmp: true, valid: true}
			} else {
				m.B[isa.RABr] = breg{addr: seq, calcTime: now, viaCmp: true, valid: true}
			}
		case uMovBr:
			st.BrMoves++
			m.B[u.rd] = m.B[u.bsrc]
		case uMovRB:
			st.BrMoves++
			if u.rd != 0 {
				R[u.rd] = int32(m.B[u.bsrc].addr)
			}
		case uMovBR:
			st.BrMoves++
			m.B[u.rd] = breg{addr: int64(R[u.rs1]), calcTime: now, isRA: true, valid: true}

		default: // uIllegal and any baseline-only op
			return 0, m.fastTrap(pc, insts, TrapIllegalInstr,
				"BRM cannot execute %v", isa.Op(u.imm))
		}

		if advance && !m.halted {
			if u.br == isa.PCBr {
				pc++
			} else {
				b := m.B[u.br]
				if !b.valid {
					return 0, m.fastTrap(pc, insts, TrapUninitBranchReg,
						"transfer through uninitialized b[%d]", u.br)
				}
				switch {
				case b.viaCmp:
					st.CondBranches++
				case b.addr == seq:
					// only compares produce the sequential sentinel
				default:
					idx := addrToIndex(int32(b.addr))
					switch {
					case idx == -1:
						// exit to the halt address: not a workload transfer
					case m.isFuncEntry(idx):
						st.Calls++
					case b.isRA:
						st.Returns++
					default:
						st.UncondJumps++
					}
				}
				ret := breg{addr: int64(isa.IndexToAddr(pc) + isa.WordSize), calcTime: now, isRA: true, valid: true}
				if b.addr == seq {
					// Untaken conditional: fall through.
					prof.notTaken(pc)
					m.B[isa.RABr] = ret
					pc++
				} else {
					st.CondTaken += b2i(b.viaCmp)
					idx := addrToIndex(int32(b.addr))
					if idx != -1 {
						dist := now - b.calcTime
						if dist > DistHistMax {
							st.DistHist[DistHistMax]++
						} else if dist >= 0 {
							st.DistHist[dist]++
						}
						if dist >= MinPrefetchDist {
							st.PrefetchHit++
						} else {
							st.PrefetchMiss++
						}
						prof.taken(pc)
						prof.prefetch(pc, dist)
					}
					m.B[isa.RABr] = ret
					switch {
					case idx == -1:
						m.halted = true
						m.status = R[1]
					case idx < 0 || idx >= len(ops):
						return 0, m.fastTrap(pc, insts, TrapPCOutOfRange, "jump out of text: index %d", idx)
					default:
						prof.edge(pc, idx)
						pc = idx
					}
				}
			}
		}

		if insts > limit {
			t := m.fastTrap(pc, insts, TrapStepBudget, "instruction limit exceeded")
			t.Limit = limit
			t.Executed = insts
			return 0, t
		}
		if insts >= nextPoll {
			if err := ctx.Err(); err != nil {
				m.pc = pc
				st.Instructions = insts
				return 0, err
			}
			nextPoll = insts + ctxCheckStride
		}
	}
	m.pc = pc
	st.Instructions = insts
	return m.status, nil
}
