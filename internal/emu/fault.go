package emu

import "fmt"

// This file is the deterministic fault-injection harness. A FaultPlan
// perturbs a run at precise, replayable points — the Nth executed
// instruction of a named function — so tests can prove that every
// failure mode surfaces as a typed Trap with accurate context instead
// of a panic or silently corrupted statistics. Everything the injector
// does is derived from the plan and its seed: the same plan on the same
// program and input always produces the same outcome.

// FaultKind selects what a FaultOp does when it fires.
type FaultKind int

const (
	// FaultFlipWord XORs a data-memory word with a mask, modeling a
	// corrupted load value or bit-flipped data segment.
	FaultFlipWord FaultKind = iota
	// FaultCorruptBReg scrambles a branch register's target address, or
	// marks it uninitialized when Invalidate is set.
	FaultCorruptBReg
	// FaultTruncateBudget shrinks the instruction budget so the run hits
	// a step-budget trap.
	FaultTruncateBudget
	// FaultForceTrap makes the machine raise a TrapInjected trap.
	FaultForceTrap
	// FaultPanic panics the emulator goroutine. No real failure mode
	// needs it; it exists so tests can prove the experiment runner's
	// recover path converts panics into structured job failures.
	FaultPanic
)

var faultKindNames = [...]string{
	FaultFlipWord:       "flip-word",
	FaultCorruptBReg:    "corrupt-breg",
	FaultTruncateBudget: "truncate-budget",
	FaultForceTrap:      "force-trap",
	FaultPanic:          "panic",
}

// String returns the kind's stable name.
func (k FaultKind) String() string {
	if k >= 0 && int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("fault-kind-%d", int(k))
}

// FaultOp fires once, just before the Nth executed instruction that
// matches its function filter.
type FaultOp struct {
	Kind FaultKind
	// Fn restricts counting to instructions of the named function
	// ("" counts every instruction).
	Fn string
	// N is the 1-based rank of the matching instruction the op fires at
	// (values < 1 mean the first match).
	N int64
	// Addr is FaultFlipWord's data address. It is word-aligned and
	// wrapped into memory bounds, so no plan can crash the injector.
	Addr int32
	// Mask is FaultFlipWord's XOR mask (0 = derive a nonzero mask from
	// the plan seed).
	Mask uint32
	// BReg is FaultCorruptBReg's target register (wrapped into [0,8)).
	BReg int
	// Invalidate makes FaultCorruptBReg mark the register uninitialized
	// (an uninit-branch-reg trap on next transfer) instead of scrambling
	// its address (a pc-out-of-range trap).
	Invalidate bool
	// Budget is FaultTruncateBudget's new instruction limit.
	Budget int64
}

// FaultPlan is a deterministic, replayable fault-injection schedule.
type FaultPlan struct {
	// Seed drives every value the plan leaves unspecified.
	Seed int64
	Ops  []FaultOp
}

type faultOpState struct {
	op    FaultOp
	count int64
	fired bool
}

type faultState struct {
	rng  uint64
	ops  []faultOpState
	live int // un-fired ops remaining
}

// next is a xorshift64 step: fast, seed-deterministic, good enough to
// scatter corruption.
func (f *faultState) next() uint64 {
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	return f.rng
}

// SetFaultPlan arms the machine with plan (nil disarms). Call before Run.
func (m *Machine) SetFaultPlan(plan *FaultPlan) {
	if plan == nil || len(plan.Ops) == 0 {
		m.faults = nil
		return
	}
	seed := uint64(plan.Seed)
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15 // any nonzero constant; xorshift fixes on 0
	}
	st := &faultState{rng: seed, live: len(plan.Ops)}
	for _, op := range plan.Ops {
		st.ops = append(st.ops, faultOpState{op: op})
	}
	m.faults = st
}

// applyFaults fires every armed op whose trigger point is the current
// instruction. Called from Step with a validated pc.
func (m *Machine) applyFaults() error {
	f := m.faults
	fn := m.where()
	for i := range f.ops {
		s := &f.ops[i]
		if s.fired || (s.op.Fn != "" && s.op.Fn != fn) {
			continue
		}
		s.count++
		n := s.op.N
		if n < 1 {
			n = 1
		}
		if s.count < n {
			continue
		}
		s.fired = true
		f.live--
		if err := m.fire(s.op); err != nil {
			return err
		}
	}
	if f.live == 0 {
		m.faults = nil
	}
	return nil
}

// fire applies one fault op to the machine.
func (m *Machine) fire(op FaultOp) error {
	switch op.Kind {
	case FaultFlipWord:
		addr := int(op.Addr)
		if addr < 0 {
			addr = -addr
		}
		addr = (addr % (len(m.Mem) - 4)) &^ 3
		mask := op.Mask
		for mask == 0 {
			mask = uint32(m.faults.next())
		}
		for i := 0; i < 4; i++ {
			m.Mem[addr+i] ^= byte(mask >> (8 * i))
		}
	case FaultCorruptBReg:
		r := op.BReg & (len(m.B) - 1)
		if op.Invalidate {
			m.B[r] = breg{}
		} else {
			// A garbage byte address far outside the text segment: the
			// next transfer through b[r] raises pc-out-of-range.
			bad := int32(m.faults.next() | 0x4000_0000)
			m.B[r] = breg{addr: bad, calcTime: m.Stats.Instructions, valid: true}
		}
	case FaultTruncateBudget:
		b := op.Budget
		if b < 0 {
			b = 0
		}
		if b < m.MaxInstructions {
			m.MaxInstructions = b
		}
	case FaultForceTrap:
		return m.trapHere(TrapInjected, "fault plan forced a trap at %s#%d", op.Fn, op.N)
	case FaultPanic:
		panic(fmt.Sprintf("emu: fault plan forced a panic at %s#%d", op.Fn, op.N))
	}
	return nil
}
