package emu

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"branchreg/internal/isa"
)

// loopBRM builds a two-instruction infinite loop: brcalc b[1] = loop,
// then a noop transferring through b[1].
func loopBRM(t *testing.T) *isa.Program {
	return buildBRM(t, func(f *isa.Function) {
		f.Bind("loop")
		f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 1, Rs1: -1, Target: "loop"})
		f.Emit(isa.Instr{Op: isa.OpNop, BR: 1})
	})
}

// runPlanned runs p with plan armed, returning the machine and error.
func runPlanned(t *testing.T, p *isa.Program, plan *FaultPlan) (*Machine, error) {
	t.Helper()
	m, err := New(p, "")
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaultPlan(plan)
	_, err = m.Run()
	return m, err
}

// trapFrom asserts err carries a *Trap of the wanted kind, even through
// wrapping, and returns it.
func trapFrom(t *testing.T, err error, want TrapKind) *Trap {
	t.Helper()
	if err == nil {
		t.Fatalf("run succeeded, want %v trap", want)
	}
	var trap *Trap
	if !errors.As(fmt.Errorf("wrapped: %w", err), &trap) {
		t.Fatalf("error %v is not a *Trap", err)
	}
	if trap.Kind != want {
		t.Fatalf("trap kind = %v, want %v (full: %v)", trap.Kind, want, trap)
	}
	return trap
}

func TestFaultForceTrapContext(t *testing.T) {
	p := loopBRM(t)
	_, err := runPlanned(t, p, &FaultPlan{Ops: []FaultOp{{Kind: FaultForceTrap, N: 1}}})
	trap := trapFrom(t, err, TrapInjected)
	if trap.Fn != "main" {
		t.Errorf("trap fn = %q, want main", trap.Fn)
	}
	if trap.PC != isa.TextBase {
		t.Errorf("trap pc = %#x, want first instruction %#x", trap.PC, isa.TextBase)
	}
	if trap.Instr == "" {
		t.Error("trap lost the faulting instruction's RTL")
	}
}

func TestFaultTruncateBudget(t *testing.T) {
	p := loopBRM(t)
	_, err := runPlanned(t, p, &FaultPlan{Ops: []FaultOp{{Kind: FaultTruncateBudget, N: 1, Budget: 10}}})
	trap := trapFrom(t, err, TrapStepBudget)
	// The step-budget trap must make timeouts diagnosable: it carries
	// the configured limit and the executed count.
	if trap.Limit != 10 {
		t.Errorf("trap limit = %d, want 10", trap.Limit)
	}
	if trap.Executed != trap.Limit+1 {
		t.Errorf("trap executed = %d, want limit+1", trap.Executed)
	}
}

func TestFaultUninitBranchReg(t *testing.T) {
	p := loopBRM(t)
	// Invalidate b[1] just before the noop that transfers through it.
	plan := &FaultPlan{Ops: []FaultOp{{Kind: FaultCorruptBReg, BReg: 1, Invalidate: true, N: 2}}}
	_, err := runPlanned(t, p, plan)
	trap := trapFrom(t, err, TrapUninitBranchReg)
	if trap.Fn != "main" || trap.PC != isa.IndexToAddr(1) {
		t.Errorf("trap context = %s@%#x, want main@%#x", trap.Fn, trap.PC, isa.IndexToAddr(1))
	}
}

func TestFaultCorruptBRegReplayable(t *testing.T) {
	p := loopBRM(t)
	run := func() *Trap {
		plan := &FaultPlan{Seed: 42, Ops: []FaultOp{{Kind: FaultCorruptBReg, BReg: 1, N: 2}}}
		_, err := runPlanned(t, p, plan)
		return trapFrom(t, err, TrapPCOutOfRange)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same plan, different traps:\n%v\n%v", a, b)
	}
}

func TestFaultFlipWordDeterministic(t *testing.T) {
	data := &isa.DataItem{Label: "x", Kind: isa.DataWords, Words: []int32{7}}
	p := buildBRM(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpLw, Rd: 1, Rs1: isa.ZeroReg, DataTarget: "x"})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	}, data)

	clean, err := runPlanned(t, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Status() != 7 {
		t.Fatalf("clean status = %d, want 7", clean.Status())
	}
	run := func() int32 {
		plan := &FaultPlan{Seed: 3, Ops: []FaultOp{{Kind: FaultFlipWord, Addr: isa.DataBase, N: 1}}}
		m, err := runPlanned(t, p, plan)
		if err != nil {
			t.Fatalf("flip-word corrupted the run into a trap: %v", err)
		}
		return m.Status()
	}
	a, b := run(), run()
	if a == clean.Status() {
		t.Error("flip-word fault did not corrupt the loaded value")
	}
	if a != b {
		t.Errorf("same seed, different corruption: %d vs %d", a, b)
	}
}

func TestFaultPanic(t *testing.T) {
	p := loopBRM(t)
	m, err := New(p, "")
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaultPlan(&FaultPlan{Ops: []FaultOp{{Kind: FaultPanic, N: 5}}})
	defer func() {
		if recover() == nil {
			t.Error("FaultPanic did not panic")
		}
	}()
	_, _ = m.Run()
	t.Error("run returned instead of panicking")
}

// TestFaultFunctionFilter proves the injector's trigger point is the Nth
// executed instruction of the named function, not of the whole run.
func TestFaultFunctionFilter(t *testing.T) {
	main := isa.NewFunction("main", isa.Baseline)
	main.Emit(isa.Instr{Op: isa.OpCall, Target: "leaf"})
	main.Emit(isa.Instr{Op: isa.OpNop}) // delay slot
	main.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	leaf := isa.NewFunction("leaf", isa.Baseline)
	leaf.Emit(isa.Instr{Op: isa.OpNop})
	leaf.Emit(isa.Instr{Op: isa.OpNop})
	leaf.Emit(isa.Instr{Op: isa.OpJr, Rs1: isa.RABase})
	leaf.Emit(isa.Instr{Op: isa.OpNop}) // delay slot
	p := &isa.Program{Kind: isa.Baseline, Funcs: []*isa.Function{main, leaf}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}

	plan := &FaultPlan{Ops: []FaultOp{{Kind: FaultForceTrap, Fn: "leaf", N: 2}}}
	_, err := runPlanned(t, p, plan)
	trap := trapFrom(t, err, TrapInjected)
	if trap.Fn != "leaf" {
		t.Errorf("trap fn = %q, want leaf", trap.Fn)
	}
	// leaf's 2nd instruction: main is 3 instructions, so Text index 4.
	if want := isa.IndexToAddr(4); trap.PC != want {
		t.Errorf("trap pc = %#x, want %#x", trap.PC, want)
	}

	// The same plan without the filter fires on main's 2nd instruction.
	plan = &FaultPlan{Ops: []FaultOp{{Kind: FaultForceTrap, N: 2}}}
	_, err = runPlanned(t, p, plan)
	if trap := trapFrom(t, err, TrapInjected); trap.Fn != "main" {
		t.Errorf("unfiltered trap fn = %q, want main", trap.Fn)
	}
}

func TestTrapKindRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range TrapKinds() {
		name := k.String()
		if seen[name] {
			t.Errorf("duplicate trap kind name %q", name)
		}
		seen[name] = true
		got, ok := ParseTrapKind(name)
		if !ok || got != k {
			t.Errorf("ParseTrapKind(%q) = %v, %v", name, got, ok)
		}
		b, err := json.Marshal(&Trap{Kind: k, PC: 4096, Fn: "main"})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		var back Trap
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if back.Kind != k {
			t.Errorf("JSON round trip: %v -> %v", k, back.Kind)
		}
	}
	if _, ok := ParseTrapKind("no-such-kind"); ok {
		t.Error("ParseTrapKind accepted an unknown name")
	}
	var bad Trap
	if err := json.Unmarshal([]byte(`{"kind":"no-such-kind"}`), &bad); err == nil {
		t.Error("unmarshal accepted an unknown trap kind")
	}
}
