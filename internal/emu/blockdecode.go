package emu

//go:generate go run ./gen

import (
	"encoding/binary"

	"branchreg/internal/isa"
)

// This file lowers the predecoded micro-op stream (predecode.go) one level
// further, into the block-fused form the LoopFused engine executes: the
// text is segmented into basic blocks at transfer boundaries, function
// entries and branch targets; each block pre-links its fallthrough and
// taken successor *block indices* so chained dispatch never performs a
// PC→index lookup; and frequent adjacent micro-op pairs and triples are
// rewritten into fused superinstructions (see DESIGN §10 for the
// selection tables and how they were chosen from hot-block profiles).
//
// The fused engine must remain byte-identical to the fast loop, including
// trap PCs, trap ordering and step-budget accounting. Everything the fast
// loop could observe per instruction is therefore preserved per block:
//
//   - every fuop carries its original Text index for trap diagnostics;
//   - a block's cost (original instruction count) is known statically, so
//     one up-front check replaces the per-instruction budget test — and a
//     block that could cross the budget is delegated to the fast loop,
//     which reproduces the per-instruction accounting exactly;
//   - irregular blocks (a transfer in a delay slot, a transfer without a
//     delay slot) become ftBail blocks that delegate the rest of the run.

// FusionStats counts the fused engine's dynamic behavior for one run.
// Blocks is the number of basic blocks entered; Fused the number of
// original instructions retired as the second or third component of a
// superinstruction (dispatches saved by fusion); Bails the number of
// hand-offs to the per-instruction fast loop (irregular block, step
// budget within reach of the block, or a transfer landing inside a
// block).
type FusionStats struct {
	Blocks int64 `json:"blocks"`
	Fused  int64 `json:"fused"`
	Bails  int64 `json:"bails"`
}

// termKind classifies how a basic block ends.
type termKind uint8

const (
	ftBail      termKind = iota // irregular block: delegate to the fast loop
	ftFall                      // no transfer: fall into the next block
	ftExit                      // trap exit
	ftJump                      // baseline unconditional b + delay slot
	ftBCond                     // baseline conditional b + delay slot
	ftCmpBCond                  // fused cmp/fcmp + conditional b + delay slot
	ftCall                      // baseline call + delay slot
	ftJalr                      // baseline jalr + delay slot
	ftJr                        // baseline jr + delay slot
	ftBrm                       // BRM transfer-annotated micro-op
	ftBrmCmpBr                  // fused cmpbr/fcmpbr + transfer-annotated op
	ftBrmCalcBr                 // fused static brcalc + transfer-annotated op
	ftBrmSJmp                   // BRM transfer whose breg value is statically known
	ftBrmSCond                  // BRM transfer through a statically-resolved conditional breg
)

// fuop is one micro-op of a block body. It embeds the predecoded uop (so
// the shared dispatch cases compile unchanged) plus its original Text
// index for trap diagnostics and second/third operand sets for fused
// pairs and triples. The cond/bsrc rider fields of the embedded uop are
// shared by all components — the selection (gen/main.go) guarantees at
// most one component uses them.
type fuop struct {
	uop
	pc   int32 // original Text index
	imm2 int32 // second component's immediate
	imm3 int32 // third component's immediate
	rd2  uint8
	rs21 uint8
	rs22 uint8
	rd3  uint8
	rs31 uint8
	rs32 uint8
}

// Successor sentinels for fblock.taken / fblock.fall.
const (
	succHalt  = -1 // transfer to the halt address
	succTrap  = -2 // target index outside the text: pc-out-of-range trap
	succInner = -3 // target inside a block: delegate to the fast loop
)

// fblock is one basic block of the fused form. Body micro-ops live in
// fprog.ops[off:off+n]; the terminator (and, on the baseline machine, its
// delay-slot op) is stored out of line so the body loop stays branch-free.
// Field order is hot-first: everything the dispatch loop touches on a
// completed block (budget check, body range, terminator handling, chained
// successors) packs into the leading bytes; the delegation- and
// baseline-only fields trail.
type fblock struct {
	off     int32 // body range in fprog.ops
	n       int32
	cost    int32 // original instructions retired if the block completes
	termPC  int32 // Text index of the terminator instruction
	taken   int32 // taken-successor block index, or a succ* sentinel
	fall    int32 // fall-through successor block index, or a succ* sentinel
	tgt     int32 // static taken-target Text index (-1 = halt)
	retAddr int32 // BRM: byte address of the b[7] return side effect
	distK   int32 // ftBrmSJmp/ftBrmSCond: static prefetch distance to the target calc
	statK   uint8 // ftBrmCalcBr/ftBrmSJmp static stat class: 0 exit, 1 call, 2 jump
	lite    bool  // ftBrmCmpBr: companion cannot observe b[7], elide the store
	term    termKind
	tob     uop   // terminator micro-op
	cob     uop   // fused companion (cmp / cmpbr / brcalc)
	dob     uop   // baseline delay-slot micro-op
	start   int32 // first Text index (fast-loop entry point on delegation)
	fallIdx int32 // fall-through Text index (trap diagnostics, delegation)
	dpc     int32 // baseline: Text index of the delay-slot instruction
}

// fprog is the block-fused form of one program.
type fprog struct {
	ops      []fuop
	blocks   []fblock
	pc2block []int32 // Text index -> block index if a block starts there, else -1
	dec      []uop   // flat predecoded form, shared with the delegation path
	fused    int     // statically fused-away dispatches (bodies + terminators)
}

// fusedLeaders marks every Text index that can begin a basic block: the
// entry point, function entries, static branch targets, and — as a safety
// net for computed control flow — any text address found in an aligned
// data word or a materialized constant (jump tables, stored function
// pointers). False positives only shorten blocks; a missed leader only
// costs a delegation to the fast loop when something jumps to it.
func fusedLeaders(p *isa.Program, dec []uop) []bool {
	n := len(dec)
	leader := make([]bool, n)
	mark := func(i int) {
		if i >= 0 && i < n {
			leader[i] = true
		}
	}
	markAddr := func(a int32) {
		if a != haltAddr && a >= isa.TextBase && (a-isa.TextBase)%isa.WordSize == 0 {
			mark(int((a - isa.TextBase) / isa.WordSize))
		}
	}
	if n > 0 {
		leader[0] = true
	}
	mark(p.EntryPC)
	for _, idx := range p.FuncStarts {
		mark(idx)
	}
	for i := range dec {
		u := &dec[i]
		switch u.kind {
		case uJump, uBCond, uCall:
			mark(int(u.tgt))
		case uBrCalcAbs, uConst:
			markAddr(u.imm)
		}
	}
	img := p.DataImage
	for off := 0; off+4 <= len(img); off += 4 {
		markAddr(int32(binary.LittleEndian.Uint32(img[off:])))
	}
	return leader
}

// baselineBailKind reports whether a delay-slot micro-op makes the block
// irregular: a transfer or exit in a delay slot re-arms or consumes the
// pending target in ways only the per-instruction loop models.
func baselineBailKind(k uopKind) bool {
	switch k {
	case uJump, uBCond, uCall, uJalr, uJrRet, uJrJmp, uTrapExit:
		return true
	}
	return false
}

// writesBReg reports whether a micro-op writes any branch register, which
// disqualifies it from riding between a fused compare/brcalc and its
// transfer.
func writesBReg(k uopKind) bool {
	switch k {
	case uBrCalcAbs, uBrCalcReg, uBrLd, uCmpBrImm, uCmpBrReg, uFCmpBr, uMovBr, uMovBR:
		return true
	}
	return false
}

// symBreg is the statically-tracked value of one branch register within a
// block (everything resets to unknown at block entry: the fused engine
// only enters blocks at their leader). A known non-conditional value comes
// from an in-block brcalc with an immediate target: address, stat class
// and calc time (as an instruction offset) are all decode-time constants.
// A known conditional value comes from a compare-with-BR-assign whose
// source breg was itself known: it is either the propagated static target
// or the sequential sentinel, decided by a compare the block has already
// executed by the time its terminator transfers. movbb copies propagate
// either form; every other breg write makes the register unknown.
type symBreg struct {
	known bool
	cond  bool  // value is taken-target-or-seq from a tracked compare
	addr  int32 // static target byte address (never seq)
	pos   int32 // Text index of the originating brcalc (calc time)
}

// fusePolicy parameterizes which superinstructions buildFprog may form
// and where. The static fused tier uses staticPolicy: the frozen global
// pair/triple tables, greedy left-to-right rewriting, every block
// eligible. The adaptive tier (adaptive.go) substitutes a per-program
// vocabulary mined from the promotion profile, restricts fusion to
// blocks the profile proved hot, and uses DP-optimal segmentation.
type fusePolicy struct {
	// pair and triple report the fused kind for an adjacent body pair or
	// triple admitted by this policy.
	pair   func(a, b uopKind) (uopKind, bool)
	triple func(a, b, c uopKind) (uopKind, bool)
	// hot reports whether the block starting at this Text index may fuse
	// at all (body and terminator). nil means every block is eligible.
	hot func(start int) bool
	// dp selects DP-optimal in-block segmentation (maximizing fused-away
	// dispatches) instead of greedy longest-match-first.
	dp bool
}

var staticPolicy = fusePolicy{pair: fusePair, triple: fuseTriple}

// buildFprog lowers a predecoded program into block-fused form with the
// static policy. fuse selects superinstruction rewriting; PairStats
// builds with fuse=false to measure raw adjacencies.
func buildFprog(p *isa.Program, dec []uop, fuse bool) *fprog {
	return buildFprogPolicy(p, dec, fuse, &staticPolicy)
}

// dpSegment computes, for one block body, the per-index step choices
// (1 = single, 2 = pair, 3 = triple) that maximize the number of
// fused-away dispatches under the policy's vocabulary. Ties prefer the
// longer match, like the greedy rewriter.
func dpSegment(src []fuop, pol *fusePolicy) []int8 {
	l := len(src)
	best := make([]int, l+1)
	ch := make([]int8, l)
	for i := l - 1; i >= 0; i-- {
		b, c := best[i+1], int8(1)
		if i+1 < l {
			if _, ok := pol.pair(src[i].kind, src[i+1].kind); ok && 1+best[i+2] > b {
				b, c = 1+best[i+2], 2
			}
		}
		if i+2 < l {
			if _, ok := pol.triple(src[i].kind, src[i+1].kind, src[i+2].kind); ok && 2+best[i+3] >= b {
				b, c = 2+best[i+3], 3
			}
		}
		best[i], ch[i] = b, c
	}
	return ch
}

// buildFprogPolicy is buildFprog under an explicit fusion policy.
func buildFprogPolicy(p *isa.Program, dec []uop, fuse bool, pol *fusePolicy) *fprog {
	n := len(dec)
	fp := &fprog{dec: dec, pc2block: make([]int32, n)}
	for i := range fp.pc2block {
		fp.pc2block[i] = -1
	}
	leader := fusedLeaders(p, dec)
	funcEntry := make([]bool, n)
	for _, idx := range p.FuncStarts {
		if idx >= 0 && idx < n {
			funcEntry[idx] = true
		}
	}
	baseline := p.Kind == isa.Baseline

	// scan builds one block starting at Text index start and returns it
	// with the index where the next block begins. fuseBlk gates all
	// fusion (body and terminator) for this block: cold blocks under an
	// adaptive policy keep the fast tier's per-uop form, so one fprog
	// mixes promoted superblocks and unfused regions chained together.
	scan := func(start int) (fblock, int) {
		fuseBlk := fuse && (pol.hot == nil || pol.hot(start))
		b := fblock{
			start: int32(start),
			off:   int32(len(fp.ops)),
			tgt:   -1,
			taken: succInner,
			fall:  succInner,
		}
		var sym [8]symBreg
		updateSym := func(u uop, j int) {
			switch u.kind {
			case uBrCalcAbs:
				sym[u.rd] = symBreg{known: u.imm != seq, addr: u.imm, pos: int32(j)}
			case uCmpBrImm, uCmpBrReg, uFCmpBr:
				if src := sym[u.bsrc]; src.known && !src.cond {
					sym[isa.RABr] = symBreg{known: true, cond: true, addr: src.addr, pos: src.pos}
				} else {
					sym[isa.RABr] = symBreg{}
				}
			case uMovBr:
				sym[u.rd] = sym[u.bsrc]
			case uBrCalcReg, uBrLd, uMovBR:
				sym[u.rd] = symBreg{}
			}
		}
		seal := func(term termKind, termCost int32, next int) (fblock, int) {
			b.term = term
			b.n = int32(len(fp.ops)) - b.off
			orig := b.n
			// Rewrite hot adjacent triples and pairs into superinstructions
			// in place: greedy left-to-right longest-match-first, or — under
			// a dp policy — the segmentation maximizing fused-away
			// dispatches.
			if fuseBlk && b.n > 1 {
				src := fp.ops[b.off : b.off+b.n]
				var ch []int8
				if pol.dp {
					ch = dpSegment(src, pol)
				}
				out := src[:0]
				for i := 0; i < len(src); {
					step := 1
					if pol.dp {
						step = int(ch[i])
					} else {
						if i+2 < len(src) {
							if _, ok := pol.triple(src[i].kind, src[i+1].kind, src[i+2].kind); ok {
								step = 3
							}
						}
						if step == 1 && i+1 < len(src) {
							if _, ok := pol.pair(src[i].kind, src[i+1].kind); ok {
								step = 2
							}
						}
					}
					switch step {
					case 3:
						k, _ := pol.triple(src[i].kind, src[i+1].kind, src[i+2].kind)
						f, s, t := src[i], &src[i+1], &src[i+2]
						f.kind = k
						f.imm2, f.rd2, f.rs21, f.rs22 = s.imm, s.rd, s.rs1, s.rs2
						f.imm3, f.rd3, f.rs31, f.rs32 = t.imm, t.rd, t.rs1, t.rs2
						if condUser(s.kind) {
							f.cond, f.bsrc = s.cond, s.bsrc
						}
						if condUser(t.kind) {
							f.cond, f.bsrc = t.cond, t.bsrc
						}
						out = append(out, f)
						i += 3
					case 2:
						k, _ := pol.pair(src[i].kind, src[i+1].kind)
						f, s := src[i], &src[i+1]
						f.kind = k
						f.imm2, f.rd2, f.rs21, f.rs22 = s.imm, s.rd, s.rs1, s.rs2
						if condUser(s.kind) {
							f.cond, f.bsrc = s.cond, s.bsrc
						}
						out = append(out, f)
						i += 2
					default:
						out = append(out, src[i])
						i++
					}
				}
				fp.ops = fp.ops[:int(b.off)+len(out)]
				b.n = int32(len(out))
			}
			fp.fused += int(orig - b.n)
			b.cost = orig + termCost
			return b, next
		}
		j := start
		for {
			if j >= n || (j > start && leader[j]) {
				b.fallIdx = int32(j)
				return seal(ftFall, 0, j)
			}
			u := dec[j]
			if u.kind == uTrapExit {
				// On the BRM an annotated exit still halts before the
				// transfer applies, so exit terminates a block on both
				// machines.
				b.termPC = int32(j)
				return seal(ftExit, 1, j+1)
			}
			if baseline {
				switch u.kind {
				case uJump, uBCond, uCall, uJalr, uJrRet, uJrJmp:
					if j+1 >= n || baselineBailKind(dec[j+1].kind) {
						fp.ops = fp.ops[:b.off]
						next := j + 2
						if next > n {
							next = n
						}
						return fblock{start: int32(start), term: ftBail, taken: succInner, fall: succInner, tgt: -1}, next
					}
					b.tob = u
					b.termPC = int32(j)
					b.dob = dec[j+1]
					b.dpc = int32(j + 1)
					b.fallIdx = int32(j + 2)
					switch u.kind {
					case uJump:
						b.tgt = u.tgt
						return seal(ftJump, 2, j+2)
					case uBCond:
						b.tgt = u.tgt
						if fuseBlk && int32(len(fp.ops)) > b.off {
							switch last := fp.ops[len(fp.ops)-1]; last.kind {
							case uCmpImm, uCmpReg, uFcmp:
								b.cob = last.uop
								fp.ops = fp.ops[:len(fp.ops)-1]
								fp.fused++
								return seal(ftCmpBCond, 3, j+2)
							}
						}
						return seal(ftBCond, 2, j+2)
					case uCall:
						b.tgt = u.tgt
						return seal(ftCall, 2, j+2)
					case uJalr:
						return seal(ftJalr, 2, j+2)
					default: // uJrRet, uJrJmp
						return seal(ftJr, 2, j+2)
					}
				}
			} else if u.br != isa.PCBr {
				b.tob = u
				b.termPC = int32(j)
				b.fallIdx = int32(j + 1)
				b.retAddr = isa.IndexToAddr(j) + isa.WordSize
				if fuseBlk && int32(len(fp.ops)) > b.off && !writesBReg(u.kind) {
					last := fp.ops[len(fp.ops)-1]
					switch {
					case u.br == isa.RABr &&
						(last.kind == uCmpBrImm || last.kind == uCmpBrReg || last.kind == uFCmpBr):
						// cmp-with-BR-assign immediately feeding the
						// transfer through b[7].
						b.cob = last.uop
						fp.ops = fp.ops[:len(fp.ops)-1]
						fp.fused++
						b.lite = brmLiteSafe(u.kind)
						return seal(ftBrmCmpBr, 2, j+1)
					case last.kind == uBrCalcAbs && u.br == last.rd && last.imm != seq:
						// Static target calculation immediately feeding
						// its transfer: target, stat class and prefetch
						// distance (always 1) are known at decode time.
						b.cob = last.uop
						fp.ops = fp.ops[:len(fp.ops)-1]
						fp.fused++
						b.tgt = int32(addrToIndex(last.imm))
						switch t := addrToIndex(last.imm); {
						case t == -1:
							b.statK = 0
						case t >= 0 && t < n && funcEntry[t]:
							b.statK = 1
						default:
							b.statK = 2
						}
						return seal(ftBrmCalcBr, 2, j+1)
					}
				}
				// The transfer applies after the terminator op's own
				// effects, so fold those into the tracked state before
				// consulting it.
				updateSym(u, j)
				if s := sym[u.br]; s.known {
					b.tgt = int32(addrToIndex(s.addr))
					b.distK = int32(j) - s.pos
					if s.cond {
						return seal(ftBrmSCond, 1, j+1)
					}
					switch {
					case b.tgt == -1:
						b.statK = 0
					case b.tgt >= 0 && int(b.tgt) < n && funcEntry[b.tgt]:
						b.statK = 1
					default:
						b.statK = 2
					}
					return seal(ftBrmSJmp, 1, j+1)
				}
				return seal(ftBrm, 1, j+1)
			}
			fp.ops = append(fp.ops, fuop{uop: u, pc: int32(j)})
			updateSym(u, j)
			j++
		}
	}

	// Linear partition: blocks tile the text in order.
	for i := 0; i < n; {
		b, next := scan(i)
		fp.blocks = append(fp.blocks, b)
		fp.pc2block[i] = int32(len(fp.blocks) - 1)
		if next <= i {
			break // defensive: scan always advances
		}
		i = next
	}
	// A leader inside a delay slot is skipped by the linear partition;
	// give it an overlapping block of its own so jumps to it stay on the
	// fused path. (Overlap is fine: blocks are state-free code ranges.)
	for idx := 0; idx < n; idx++ {
		if leader[idx] && fp.pc2block[idx] < 0 {
			b, _ := scan(idx)
			fp.blocks = append(fp.blocks, b)
			fp.pc2block[idx] = int32(len(fp.blocks) - 1)
		}
	}

	// Resolve successor block indices.
	for bi := range fp.blocks {
		b := &fp.blocks[bi]
		resolve := func(idx int32) int32 {
			if idx < 0 || int(idx) >= n {
				return succTrap
			}
			if t := fp.pc2block[idx]; t >= 0 {
				return t
			}
			return succInner
		}
		switch b.term {
		case ftFall, ftBCond, ftCmpBCond, ftBrm, ftBrmCmpBr, ftBrmSCond:
			b.fall = resolve(b.fallIdx)
		}
		switch b.term {
		case ftJump, ftBCond, ftCmpBCond, ftCall, ftBrmCalcBr, ftBrmSJmp, ftBrmSCond:
			if b.tgt == -1 {
				b.taken = succHalt
			} else {
				b.taken = resolve(b.tgt)
			}
		}
	}
	return fp
}

// condUser reports whether a fused component kind carries the shared
// cond/bsrc rider fields of the fuop (the compare-with-BR-assign ops).
// The selection (gen/main.go) admits at most one such component per
// superinstruction.
func condUser(k uopKind) bool {
	switch k {
	case uCmpBrImm, uCmpBrReg, uFCmpBr:
		return true
	}
	return false
}

// brmLiteSafe reports whether a transfer-annotated micro-op riding a
// fused cmpbr can never observe the intermediate b[7] value the compare
// writes: it must not read or write branch registers and must not trap
// (a trapped machine exposes its branch registers to inspection). For
// such blocks the engine elides the intermediate store.
func brmLiteSafe(k uopKind) bool {
	switch k {
	case uNop, uAddImm, uAddReg, uSubImm, uSubReg, uMulImm, uMulReg,
		uAndImm, uAndReg, uOrImm, uOrReg, uXorImm, uXorReg,
		uSllImm, uSllReg, uSrlImm, uSrlReg, uSraImm, uSraReg,
		uConst, uSetImm, uSetReg, uFSet,
		uFadd, uFsub, uFmul, uFdiv, uFneg, uFmov, uCvtif, uCvtfi,
		uTrapGetc, uTrapPutc, uTrapPutf:
		return true
	}
	return false
}
