package emu

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"branchreg/internal/isa"
)

// The adaptive tier (LoopAdaptive) closes the fusion loop at runtime,
// the way a tiered JIT promotes interpreted code: every program starts
// in the profiled predecoded fast loop with a private flow-conservation
// profile attached, and when any block's arrival count crosses the
// promotion threshold the program is re-decoded into a *mixed-tier*
// fused form — blocks the warmup actually executed are re-fused with a
// vocabulary mined from this program's own pair/triple adjacencies
// (static + extended candidate tables, dynamic-programming segmentation)
// while never-executed blocks keep their per-uop fast-tier form — and
// the run continues in the fused engine. Promotion state is keyed by
// program identity and shared across runs, so a long-lived cached
// program (the brserve regime) pays the warmup once and every later
// request enters the promoted form directly.
//
// Byte-identity is structural, not vocabulary-dependent: every fused
// case body replicates the exact per-op semantics of the fast loop with
// per-component instruction accounting and per-slot trap PCs, so any
// segmentation under any mined vocabulary produces identical output,
// Stats, and trap diagnostics (held by the adaptive differential tests
// and FuzzAdaptiveDifferential).

// DefaultPromoteThreshold is the block arrival count that triggers
// promotion when Machine.PromoteThreshold is zero. 64 arrivals is late
// enough that straight-line one-shot code never pays for mining, and
// early enough that any loop worth fusing promotes within its first few
// thousand instructions.
const DefaultPromoteThreshold = 64

// RefusionStats describes what the adaptive tier did for one run: did
// the run execute (any part of it) in a promoted form, how many
// promotions this program has seen, the mixed-tier block split, the
// mined vocabulary size, and how many instructions of warmup profiling
// fed the mining.
type RefusionStats struct {
	Promoted     bool  `json:"promoted"`
	Promotions   int64 `json:"promotions,omitempty"`
	HotBlocks    int   `json:"hot_blocks,omitempty"`
	ColdBlocks   int   `json:"cold_blocks,omitempty"`
	VocabPairs   int   `json:"vocab_pairs,omitempty"`
	VocabTriples int   `json:"vocab_triples,omitempty"`
	WarmupInsts  int64 `json:"warmup_insts,omitempty"`
}

// promotedForm is the immutable result of one promotion: the mixed-tier
// fused program and the stats describing how it was built.
type promotedForm struct {
	fp           *fprog
	hotBlocks    int
	coldBlocks   int
	vocabPairs   int
	vocabTriples int
	warmupInsts  int64
}

// adaptiveState is the per-program promotion state machine: an
// accumulated warmup profile (merged from completed or suspended
// warmup runs) and, once any block crosses the threshold, the promoted
// form. The zero state means "cold: keep warming up".
type adaptiveState struct {
	mu         sync.Mutex
	prof       *BlockProfile // accumulated warmup flow counts
	promoted   atomic.Pointer[promotedForm]
	promotions atomic.Int64
}

// adaptiveStates keys promotion state by program identity
// (*isa.Program). Like driver.Cache it grows without bound over
// distinct programs; the expected regime is a bounded working set of
// long-lived cached programs (brserve), and a freshly compiled program
// gets a fresh pointer and therefore fresh, isolated state.
var adaptiveStates sync.Map // *isa.Program -> *adaptiveState

func adaptiveStateFor(p *isa.Program) *adaptiveState {
	if st, ok := adaptiveStates.Load(p); ok {
		return st.(*adaptiveState)
	}
	st, _ := adaptiveStates.LoadOrStore(p, &adaptiveState{})
	return st.(*adaptiveState)
}

// Merge adds other's counts into p. Both profiles must be sized for the
// same program.
func (p *BlockProfile) Merge(other *BlockProfile) {
	for i := range p.Arrive {
		p.Arrive[i] += other.Arrive[i]
		p.Depart[i] += other.Depart[i]
		p.Taken[i] += other.Taken[i]
		p.NotTaken[i] += other.NotTaken[i]
		p.Penalty[i] += other.Penalty[i]
	}
}

// errPromote is the sentinel a promoteCtx returns to suspend a warmup
// run the moment a block crosses the promotion threshold. The profiled
// fast loops already sync m.pc/m.pending/Stats exactly on any context
// error, so the run is resumable in the promoted form.
var errPromote = errors.New("emu: promotion threshold crossed")

// promoteCtx wraps the run context so the warmup loop's existing
// ctxCheckStride poll doubles as the promotion check: Err() reports
// errPromote once any block's arrival count reaches the threshold.
// The scan is O(text length) once per 65536 instructions — off the
// per-instruction and per-transfer hot paths entirely.
type promoteCtx struct {
	context.Context
	arrive    []int64
	base      []int64 // accumulated arrivals from earlier runs (may be nil)
	threshold int64
}

func (c *promoteCtx) Err() error {
	if err := c.Context.Err(); err != nil {
		return err
	}
	if c.base != nil {
		for i, a := range c.arrive {
			if a+c.base[i] >= c.threshold {
				return errPromote
			}
		}
		return nil
	}
	for _, a := range c.arrive {
		if a >= c.threshold {
			return errPromote
		}
	}
	return nil
}

// dynVocab is a vocabulary mined from one program's own warmup profile:
// the pair/triple patterns (from the static and extended candidate
// tables) that actually occur adjacently in the program's executed
// blocks. Lookup keys pack the component kinds into one integer.
type dynVocab struct {
	pairs   map[uint16]uopKind
	triples map[uint32]uopKind
}

func pairKey(a, b uopKind) uint16      { return uint16(a)<<8 | uint16(b) }
func tripleKey(a, b, c uopKind) uint32 { return uint32(a)<<16 | uint32(b)<<8 | uint32(c) }

func (v *dynVocab) pair(a, b uopKind) (uopKind, bool) {
	k, ok := v.pairs[pairKey(a, b)]
	return k, ok
}

func (v *dynVocab) triple(a, b, c uopKind) (uopKind, bool) {
	k, ok := v.triples[tripleKey(a, b, c)]
	return k, ok
}

// mineVocab walks the unfused block form of p weighted by the warmup
// profile's reconstructed execution counts (the PairStats model) and
// collects every candidate pair/triple pattern that occurs in an
// executed block. Patterns come from the union of the static tables
// (fusePair/fuseTriple) and the extended adaptive-only tables
// (fusePairExt/fuseTripleExt) — the extended tables hold combinations
// below the global static cutoff that individual workloads push hot.
func mineVocab(fp *fprog, counts []int64) *dynVocab {
	v := &dynVocab{pairs: map[uint16]uopKind{}, triples: map[uint32]uopKind{}}
	for bi := range fp.blocks {
		b := &fp.blocks[bi]
		if b.term == ftBail {
			continue
		}
		body := fp.ops[b.off : b.off+b.n]
		var entered int64
		if len(body) > 0 {
			entered = counts[body[0].pc]
		} else {
			entered = counts[b.termPC]
		}
		if entered == 0 {
			continue
		}
		for i := 0; i+1 < len(body); i++ {
			a, bk := body[i].kind, body[i+1].kind
			if k, ok := fusePair(a, bk); ok {
				v.pairs[pairKey(a, bk)] = k
			} else if k, ok := fusePairExt(a, bk); ok {
				v.pairs[pairKey(a, bk)] = k
			}
			if i+2 < len(body) {
				c := body[i+2].kind
				if k, ok := fuseTriple(a, bk, c); ok {
					v.triples[tripleKey(a, bk, c)] = k
				} else if k, ok := fuseTripleExt(a, bk, c); ok {
					v.triples[tripleKey(a, bk, c)] = k
				}
			}
		}
	}
	return v
}

// promote builds the promoted form from the accumulated warmup profile:
// mine this program's vocabulary, then re-decode with hot-gated
// DP-segmented fusion — executed blocks fuse under the mined
// vocabulary, never-executed blocks keep the fast tier's per-uop form,
// and both chain through the same pre-linked successor graph
// (mixed-tier chaining inside one fprog).
func promote(p *isa.Program, dec []uop, prof *BlockProfile) *promotedForm {
	unfused := buildFprog(p, dec, false)
	counts := prof.Counts()
	vocab := mineVocab(unfused, counts)
	var warm int64
	for _, c := range counts {
		warm += c
	}
	pol := &fusePolicy{
		pair:   vocab.pair,
		triple: vocab.triple,
		hot:    func(start int) bool { return counts[start] > 0 },
		dp:     true,
	}
	fp := buildFprogPolicy(p, dec, true, pol)
	pf := &promotedForm{
		fp:           fp,
		vocabPairs:   len(vocab.pairs),
		vocabTriples: len(vocab.triples),
		warmupInsts:  warm,
	}
	for bi := range fp.blocks {
		if counts[fp.blocks[bi].start] > 0 {
			pf.hotBlocks++
		} else {
			pf.coldBlocks++
		}
	}
	return pf
}

// refusion reports the promoted form's stats into m.Refusion.
func (m *Machine) refusion(st *adaptiveState, pf *promotedForm) {
	m.Refusion = RefusionStats{
		Promoted:     true,
		Promotions:   st.promotions.Load(),
		HotBlocks:    pf.hotBlocks,
		ColdBlocks:   pf.coldBlocks,
		VocabPairs:   pf.vocabPairs,
		VocabTriples: pf.vocabTriples,
		WarmupInsts:  pf.warmupInsts,
	}
}

// runAdaptive is the LoopAdaptive engine: promoted programs enter the
// fused form directly; cold programs warm up in the profiled fast loop
// until the threshold promotes them (mid-run if crossed mid-run).
func (m *Machine) runAdaptive(ctx context.Context) (int32, error) {
	baseline := m.P.Kind == isa.Baseline
	threshold := m.PromoteThreshold
	if threshold == 0 {
		threshold = DefaultPromoteThreshold
	}
	if threshold < 0 {
		// Promotion disabled: the adaptive tier degenerates to the plain
		// fast loop (or its profiled twin), touching no shared state.
		switch {
		case m.Prof != nil && baseline:
			return runFastBaselineProf(m, ctx, m.Prof)
		case m.Prof != nil:
			return runFastBRMProf(m, ctx, m.Prof)
		case baseline:
			return m.runFastBaseline(ctx)
		default:
			return m.runFastBRM(ctx)
		}
	}
	st := adaptiveStateFor(m.P)
	if pf := st.promoted.Load(); pf != nil {
		m.refusion(st, pf)
		m.fp = pf.fp
		switch {
		case m.Prof != nil && baseline:
			return runFusedBaselineProf(m, ctx, m.Prof)
		case m.Prof != nil:
			return runFusedBRMProf(m, ctx, m.Prof)
		case baseline:
			return runFusedBaseline(m, ctx)
		default:
			return runFusedBRM(m, ctx)
		}
	}
	if m.Prof != nil {
		// A caller-attached profile must cover the whole run with exact
		// flow conservation; promotion bookkeeping would split it. Run
		// the profiled fast loop for the caller and leave the promotion
		// state to unprofiled runs.
		if baseline {
			return runFastBaselineProf(m, ctx, m.Prof)
		}
		return runFastBRMProf(m, ctx, m.Prof)
	}

	// Warmup: profiled fast loop over a private per-run profile, with
	// the stride poll promoted into a threshold check. Mirror RunContext's
	// profile open/close so the partial profile conserves flow.
	prof := NewBlockProfile(len(m.P.Text))
	if m.pc >= 0 && m.pc < len(prof.Arrive) {
		prof.Arrive[m.pc]++
	}
	var base []int64
	st.mu.Lock()
	if st.prof != nil {
		base = append([]int64(nil), st.prof.Arrive...)
	}
	st.mu.Unlock()
	pctx := &promoteCtx{Context: ctx, arrive: prof.Arrive, base: base, threshold: threshold}
	var status int32
	var err error
	if baseline {
		status, err = runFastBaselineProf(m, pctx, prof)
	} else {
		status, err = runFastBRMProf(m, pctx, prof)
	}
	if err != nil && !errors.Is(err, errPromote) {
		// Completed trap, or a real cancellation. Close the flow on
		// halt/trap (the RunContext contract) and bank the warmup; a
		// cancelled run stays open and is discarded — it may resume.
		var t *Trap
		if errors.As(err, &t) {
			if m.pc >= 0 && m.pc < len(prof.Depart) {
				prof.Depart[m.pc]++
			}
			m.mergeWarmup(st, prof, threshold)
		}
		return status, err
	}
	if err == nil {
		// Run completed below the threshold. Bank the warmup; if the
		// accumulated profile now crosses the threshold, promote for the
		// next run.
		if m.halted {
			if m.pc >= 0 && m.pc < len(prof.Depart) {
				prof.Depart[m.pc]++
			}
		}
		m.mergeWarmup(st, prof, threshold)
		return status, nil
	}

	// Promotion crossed mid-run: close the suspended profile's flow at
	// the next-to-run instruction, bank it, promote, and continue this
	// same run in the promoted form.
	if m.pc >= 0 && m.pc < len(prof.Depart) {
		prof.Depart[m.pc]++
	}
	st.mu.Lock()
	if st.prof == nil {
		st.prof = prof
	} else {
		st.prof.Merge(prof)
	}
	pf := st.promoted.Load()
	if pf == nil {
		pf = promote(m.P, m.dec, st.prof)
		st.promoted.Store(pf)
		st.promotions.Add(1)
	}
	st.mu.Unlock()
	m.refusion(st, pf)

	// Bridge to a block leader: the fused engine enters only at block
	// boundaries with no pending delayed branch, so step per-instruction
	// (instrumented semantics — byte-identical budget accounting and ctx
	// polling) until control lands on one.
	fp := pf.fp
	next := m.Stats.Instructions + ctxCheckStride
	for !m.halted {
		if m.pending == -2 && m.pc >= 0 && m.pc < len(fp.pc2block) && fp.pc2block[m.pc] >= 0 {
			break
		}
		if err := m.Step(); err != nil {
			return 0, err
		}
		if m.Stats.Instructions > m.MaxInstructions {
			t := m.trapHere(TrapStepBudget, "instruction limit exceeded")
			t.Limit = m.MaxInstructions
			t.Executed = m.Stats.Instructions
			return 0, t
		}
		if m.Stats.Instructions >= next {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			next = m.Stats.Instructions + ctxCheckStride
		}
	}
	if m.halted {
		return m.status, nil
	}
	m.fp = fp
	if baseline {
		return runFusedBaseline(m, ctx)
	}
	return runFusedBRM(m, ctx)
}

// mergeWarmup banks a completed warmup profile into the shared state
// and promotes for future runs if the accumulated arrivals cross the
// threshold (the cross-run promotion path: programs too short to
// promote in one run still promote once repeated runs accumulate).
func (m *Machine) mergeWarmup(st *adaptiveState, prof *BlockProfile, threshold int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.prof == nil {
		st.prof = prof
	} else {
		st.prof.Merge(prof)
	}
	if st.promoted.Load() != nil {
		return
	}
	for _, a := range st.prof.Arrive {
		if a >= threshold {
			pf := promote(m.P, m.dec, st.prof)
			st.promoted.Store(pf)
			st.promotions.Add(1)
			return
		}
	}
}
