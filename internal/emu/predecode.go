package emu

import "branchreg/internal/isa"

// This file lowers a linked isa.Program into the dense micro-op form the
// fast execution loop dispatches on. The one-time decode pass pays every
// per-instruction cost that does not depend on machine state exactly once:
//
//   - the immediate-vs-register operand split becomes two distinct micro-ops
//     per ALU/memory operation, so the run loop never tests UseImm;
//   - PC-relative branch displacements are pre-converted to Text indices
//     (baseline) or absolute byte targets (BRM brcalc), so taken transfers
//     skip the address arithmetic;
//   - sethi's shift is folded into the immediate;
//   - call/jalr link addresses (addr+8) are precomputed;
//   - operations the executing machine cannot perform become a single
//     uIllegal op carrying the original opcode, so the run loop's default
//     case never needs to re-classify.
//
// A uop is 16 bytes (vs ~100 for isa.Instr with its symbol strings), so
// four dispatch units share a cache line and the hot loop's instruction
// stream stays resident.

// uopKind is the narrowed opcode set of the predecoded form.
type uopKind uint8

const (
	uNop uopKind = iota

	// Integer ALU, split by operand form: rd = rs1 op imm / rd = rs1 op rs2.
	uAddImm
	uAddReg
	uSubImm
	uSubReg
	uMulImm
	uMulReg
	uDivImm
	uDivReg
	uRemImm
	uRemReg
	uAndImm
	uAndReg
	uOrImm
	uOrReg
	uXorImm
	uXorReg
	uSllImm
	uSllReg
	uSrlImm
	uSrlReg
	uSraImm
	uSraReg

	// uConst materializes a precomputed constant (sethi's imm<<12 is folded
	// at decode time): rd = imm.
	uConst

	// Comparison materialization.
	uSetImm
	uSetReg
	uFSet

	// Memory. Address is rs1 + imm or rs1 + rs2.
	uLwImm
	uLwReg
	uLbImm
	uLbReg
	uSwImm
	uSwReg
	uSbImm
	uSbReg
	uLfImm
	uLfReg
	uSfImm
	uSfReg

	// Floating point.
	uFadd
	uFsub
	uFmul
	uFdiv
	uFneg
	uFmov
	uCvtif
	uCvtfi

	// System traps, one kind per service code; uTrapBad carries an unknown
	// code in imm and raises illegal-instruction at execution.
	uTrapExit
	uTrapGetc
	uTrapPutc
	uTrapPutf
	uTrapBad

	// ---- baseline control flow (tgt = pre-resolved Text index or -1) ----

	uCmpImm
	uCmpReg
	uFcmp
	uJump  // unconditional OpB
	uBCond // conditional OpB
	uCall  // tgt = target index, imm = link address (addr+8)
	uJalr  // dynamic target r[rs1], imm = link address
	uJrRet // jr through r[RABase]: counts as a return
	uJrJmp // jr through any other register: counts as a jump

	// ---- BRM operations ----

	uBrCalcAbs // imm = absolute byte target (PC-relative form, pre-resolved)
	uBrCalcReg // target = r[rs1] + imm (low part after sethi)
	uBrLd      // target = M[r[rs1] + imm]
	uCmpBrImm
	uCmpBrReg
	uFCmpBr
	uMovBr
	uMovRB
	uMovBR

	// uIllegal is any operation the executing machine does not implement;
	// imm holds the original isa.Op for the trap message.
	uIllegal
)

// uop is one predecoded micro-operation. Field use depends on kind; br is
// the BRM next-instruction branch-register field (0 on the baseline).
type uop struct {
	imm  int32
	tgt  int32 // baseline: pre-resolved branch-target Text index (-1 = halt)
	kind uopKind
	rd   uint8
	rs1  uint8
	rs2  uint8
	br   uint8
	bsrc uint8
	cond uint8 // isa.Cond
}

// addrToIndex is addrIndex without a machine: byte address to Text index,
// with the halt address mapping to -1.
func addrToIndex(target int32) int {
	if target == haltAddr {
		return -1
	}
	return int((target - isa.TextBase) / isa.WordSize)
}

// predecode lowers every instruction of a linked program. It never fails:
// undecodable instructions become uIllegal ops that trap on execution with
// the same diagnostics the instrumented loop produces.
func predecode(p *isa.Program) []uop {
	ops := make([]uop, len(p.Text))
	for i := range p.Text {
		ops[i] = lowerInstr(p.Kind, &p.Text[i], isa.IndexToAddr(i))
	}
	return ops
}

// aluPair builds the imm/reg split for a three-address operation.
func aluPair(immKind, regKind uopKind, in *isa.Instr) uop {
	u := uop{rd: uint8(in.Rd), rs1: uint8(in.Rs1)}
	if in.UseImm {
		u.kind = immKind
		u.imm = in.Imm
	} else {
		u.kind = regKind
		u.rs2 = uint8(in.Rs2)
	}
	return u
}

// lowerInstr translates one instruction at byte address addr for machine
// kind k.
func lowerInstr(k isa.Kind, in *isa.Instr, addr int32) uop {
	var u uop
	switch in.Op {
	case isa.OpNop:
		u = uop{kind: uNop}
	case isa.OpAdd:
		u = aluPair(uAddImm, uAddReg, in)
	case isa.OpSub:
		u = aluPair(uSubImm, uSubReg, in)
	case isa.OpMul:
		u = aluPair(uMulImm, uMulReg, in)
	case isa.OpDiv:
		u = aluPair(uDivImm, uDivReg, in)
	case isa.OpRem:
		u = aluPair(uRemImm, uRemReg, in)
	case isa.OpAnd:
		u = aluPair(uAndImm, uAndReg, in)
	case isa.OpOr:
		u = aluPair(uOrImm, uOrReg, in)
	case isa.OpXor:
		u = aluPair(uXorImm, uXorReg, in)
	case isa.OpSll:
		u = aluPair(uSllImm, uSllReg, in)
	case isa.OpSrl:
		u = aluPair(uSrlImm, uSrlReg, in)
	case isa.OpSra:
		u = aluPair(uSraImm, uSraReg, in)
	case isa.OpSethi:
		u = uop{kind: uConst, rd: uint8(in.Rd), imm: in.Imm << 12}
	case isa.OpSet:
		u = aluPair(uSetImm, uSetReg, in)
		u.cond = uint8(in.Cond)
	case isa.OpFSet:
		u = uop{kind: uFSet, rd: uint8(in.Rd), rs1: uint8(in.Rs1), rs2: uint8(in.Rs2), cond: uint8(in.Cond)}
	case isa.OpLw:
		u = aluPair(uLwImm, uLwReg, in)
	case isa.OpLb:
		u = aluPair(uLbImm, uLbReg, in)
	case isa.OpSw:
		u = aluPair(uSwImm, uSwReg, in)
	case isa.OpSb:
		u = aluPair(uSbImm, uSbReg, in)
	case isa.OpLf:
		u = aluPair(uLfImm, uLfReg, in)
	case isa.OpSf:
		u = aluPair(uSfImm, uSfReg, in)
	case isa.OpFadd:
		u = uop{kind: uFadd, rd: uint8(in.Rd), rs1: uint8(in.Rs1), rs2: uint8(in.Rs2)}
	case isa.OpFsub:
		u = uop{kind: uFsub, rd: uint8(in.Rd), rs1: uint8(in.Rs1), rs2: uint8(in.Rs2)}
	case isa.OpFmul:
		u = uop{kind: uFmul, rd: uint8(in.Rd), rs1: uint8(in.Rs1), rs2: uint8(in.Rs2)}
	case isa.OpFdiv:
		u = uop{kind: uFdiv, rd: uint8(in.Rd), rs1: uint8(in.Rs1), rs2: uint8(in.Rs2)}
	case isa.OpFneg:
		u = uop{kind: uFneg, rd: uint8(in.Rd), rs1: uint8(in.Rs1)}
	case isa.OpFmov:
		u = uop{kind: uFmov, rd: uint8(in.Rd), rs1: uint8(in.Rs1)}
	case isa.OpCvtif:
		u = uop{kind: uCvtif, rd: uint8(in.Rd), rs1: uint8(in.Rs1)}
	case isa.OpCvtfi:
		u = uop{kind: uCvtfi, rd: uint8(in.Rd), rs1: uint8(in.Rs1)}
	case isa.OpTrap:
		switch in.Imm {
		case isa.TrapExit:
			u = uop{kind: uTrapExit}
		case isa.TrapGetc:
			u = uop{kind: uTrapGetc}
		case isa.TrapPutc:
			u = uop{kind: uTrapPutc}
		case isa.TrapPutf:
			u = uop{kind: uTrapPutf}
		default:
			u = uop{kind: uTrapBad, imm: in.Imm}
		}

	case isa.OpCmp:
		if k != isa.Baseline {
			return illegalUop(in)
		}
		u = aluPair(uCmpImm, uCmpReg, in)
	case isa.OpFcmp:
		if k != isa.Baseline {
			return illegalUop(in)
		}
		u = uop{kind: uFcmp, rs1: uint8(in.Rs1), rs2: uint8(in.Rs2)}
	case isa.OpB:
		if k != isa.Baseline {
			return illegalUop(in)
		}
		u = uop{tgt: int32(addrToIndex(addr + in.Imm)), cond: uint8(in.Cond)}
		if in.Cond == isa.CondAlways {
			u.kind = uJump
		} else {
			u.kind = uBCond
		}
	case isa.OpCall:
		if k != isa.Baseline {
			return illegalUop(in)
		}
		u = uop{kind: uCall, tgt: int32(addrToIndex(addr + in.Imm)), imm: addr + 8}
	case isa.OpJalr:
		if k != isa.Baseline {
			return illegalUop(in)
		}
		u = uop{kind: uJalr, rs1: uint8(in.Rs1), imm: addr + 8}
	case isa.OpJr:
		if k != isa.Baseline {
			return illegalUop(in)
		}
		u = uop{kind: uJrJmp, rs1: uint8(in.Rs1)}
		if in.Rs1 == isa.RABase {
			u.kind = uJrRet
		}

	case isa.OpBrCalc:
		if k != isa.BranchReg {
			return illegalUop(in)
		}
		if in.Rs1 >= 0 {
			u = uop{kind: uBrCalcReg, rd: uint8(in.Rd), rs1: uint8(in.Rs1), imm: in.Imm}
		} else {
			u = uop{kind: uBrCalcAbs, rd: uint8(in.Rd), imm: addr + in.Imm}
		}
	case isa.OpBrLd:
		if k != isa.BranchReg {
			return illegalUop(in)
		}
		u = uop{kind: uBrLd, rd: uint8(in.Rd), rs1: uint8(in.Rs1), imm: in.Imm}
	case isa.OpCmpBr:
		if k != isa.BranchReg {
			return illegalUop(in)
		}
		u = aluPair(uCmpBrImm, uCmpBrReg, in)
		u.cond = uint8(in.Cond)
		u.bsrc = uint8(in.BSrc)
	case isa.OpFCmpBr:
		if k != isa.BranchReg {
			return illegalUop(in)
		}
		u = uop{kind: uFCmpBr, rs1: uint8(in.Rs1), rs2: uint8(in.Rs2), cond: uint8(in.Cond), bsrc: uint8(in.BSrc)}
	case isa.OpMovBr:
		if k != isa.BranchReg {
			return illegalUop(in)
		}
		u = uop{kind: uMovBr, rd: uint8(in.Rd), bsrc: uint8(in.BSrc)}
	case isa.OpMovRB:
		if k != isa.BranchReg {
			return illegalUop(in)
		}
		u = uop{kind: uMovRB, rd: uint8(in.Rd), bsrc: uint8(in.BSrc)}
	case isa.OpMovBR:
		if k != isa.BranchReg {
			return illegalUop(in)
		}
		u = uop{kind: uMovBR, rd: uint8(in.Rd), rs1: uint8(in.Rs1)}

	default:
		return illegalUop(in)
	}
	if k == isa.BranchReg {
		u.br = uint8(in.BR)
	}
	return u
}

func illegalUop(in *isa.Instr) uop {
	u := uop{kind: uIllegal, imm: int32(in.Op)}
	if in.BR > 0 {
		u.br = uint8(in.BR)
	}
	return u
}
