package emu

// BlockProfile accumulates the control-flow counts of one run with costs
// paid only at transfers of control, never per instruction — the fast
// loop's profiling contract. Per-instruction execution counts are not
// stored; they are reconstructed after the run by flow conservation
// (Counts), which is what lets the predecoded fast loop stay fast while
// profiled: straight-line execution touches no profile state at all.
//
// The arrays are indexed by Text index (one slot per instruction):
//
//   - Arrive[i] counts non-sequential entries to i (taken transfers
//     landing on i, plus one for the program entry point);
//   - Depart[i] counts non-sequential exits from i (taken transfers
//     leaving the instruction that applied them — on the baseline
//     machine that is the delay-slot instruction — plus the final
//     instruction of the run);
//   - Taken[i]/NotTaken[i] tally branch outcomes at branch site i
//     (unconditional transfers count as taken; the program-exit
//     transfer is not a workload transfer and is not tallied,
//     mirroring Stats);
//   - Penalty[i] accumulates the Figure 9 late-calculation stall
//     cycles charged to BRM transfer site i (always zero on the
//     baseline machine, whose cost is uniform per transfer).
//
// A profile from a run that ended in a trap charges the faulting
// instruction as executed (matching Stats.Instructions, which counts an
// instruction when it begins); a run cut off by a step-budget trap or
// context cancellation may over-count the next-to-run instruction by one.
type BlockProfile struct {
	Arrive   []int64
	Depart   []int64
	Taken    []int64
	NotTaken []int64
	Penalty  []int64
}

// NewBlockProfile returns a profile sized for a program with textLen
// instructions (len(isa.Program.Text)).
func NewBlockProfile(textLen int) *BlockProfile {
	return &BlockProfile{
		Arrive:   make([]int64, textLen),
		Depart:   make([]int64, textLen),
		Taken:    make([]int64, textLen),
		NotTaken: make([]int64, textLen),
		Penalty:  make([]int64, textLen),
	}
}

// Counts reconstructs per-instruction execution counts by flow
// conservation: control reaches instruction i either sequentially from
// i-1 (unless i-1 departed) or by arriving non-sequentially at i, so
//
//	count[i] = count[i-1] - Depart[i-1] + Arrive[i]
//
// For a completed run, the counts sum to Stats.Instructions.
func (p *BlockProfile) Counts() []int64 {
	counts := make([]int64, len(p.Arrive))
	prev := int64(0)
	for i := range counts {
		c := prev + p.Arrive[i]
		if i > 0 {
			c -= p.Depart[i-1]
		}
		if c < 0 {
			c = 0 // incomplete profile (cancelled run); clamp, don't lie
		}
		counts[i] = c
		prev = c
	}
	return counts
}

// Engine names recorded by RunContext (satellite of the observability
// layer: LoopAuto's fallback to the instrumented loop used to be
// silent; now every run names the engine that actually executed it).
const (
	EngineFast         = "fast"
	EngineInstrumented = "instrumented"
	EngineFused        = "fused"
	EngineAdaptive     = "adaptive"
)

// Engine returns the name of the engine the last RunContext call used
// ("" before any run).
func (m *Machine) Engine() string { return m.engine }

// The profiled fast loops' hook methods (fastloop_prof.go). All are
// unconditional — the profiled twins run only with a non-nil profile —
// and small enough to inline, so the twins' hot paths are plain array
// increments.

// taken tallies a taken transfer at branch site pc.
func (p *BlockProfile) taken(pc int) { p.Taken[pc]++ }

// notTaken tallies an untaken conditional at branch site pc.
func (p *BlockProfile) notTaken(pc int) { p.NotTaken[pc]++ }

// edge records a non-sequential control transfer from -> to.
func (p *BlockProfile) edge(from, to int) {
	p.Depart[from]++
	p.Arrive[to]++
}

// prefetch charges the Figure 9 late-calculation penalty for a taken BRM
// transfer whose target was computed dist instructions earlier.
func (p *BlockProfile) prefetch(pc int, dist int64) {
	if dist >= 0 && dist < MinPrefetchDist {
		p.Penalty[pc] += MinPrefetchDist - dist
	}
}

// profBranch tallies a branch outcome at the current pc (instrumented
// loop; the fast loops inline the equivalent updates).
func (m *Machine) profBranch(taken bool) {
	p := m.Prof
	if p == nil {
		return
	}
	if taken {
		p.Taken[m.pc]++
	} else {
		p.NotTaken[m.pc]++
	}
}
