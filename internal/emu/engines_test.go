package emu

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"branchreg/internal/isa"
)

// The golden differential contract of the predecoded engines: for every
// program, input, and instruction budget, the fast loop, the block-fused
// loop (profiled or not) and the instrumented loop must agree on all
// observable machine state — Stats, output bytes, exit status, trap
// values, registers, memory, and the final pc/pending.

// engineTiers is the table every differential test sweeps: the
// instrumented Step loop is the reference; each other tier must reproduce
// it exactly.
var engineTiers = []struct {
	name     string
	mode     LoopMode
	profiled bool
}{
	{"step", LoopInstrumented, false},
	{"fast", LoopFast, false},
	{"fused", LoopFused, false},
	{"fused-prof", LoopFused, true},
}

// runEngine executes p under the given loop mode and returns the machine
// and run error.
func runEngine(t *testing.T, p *isa.Program, input string, mode LoopMode, profiled bool, budget int64) (*Machine, error) {
	t.Helper()
	m, err := New(p, input)
	if err != nil {
		t.Fatal(err)
	}
	m.Loop = mode
	if profiled {
		m.Prof = NewBlockProfile(len(p.Text))
	}
	if budget > 0 {
		m.MaxInstructions = budget
	}
	_, runErr := m.Run()
	return m, runErr
}

// diffEngines runs p under every engine tier and fails the test on any
// divergence from the instrumented reference.
func diffEngines(t *testing.T, p *isa.Program, input string, budget int64) {
	t.Helper()
	im, ierr := runEngine(t, p, input, LoopInstrumented, false, budget)
	for _, tier := range engineTiers[1:] {
		fm, ferr := runEngine(t, p, input, tier.mode, tier.profiled, budget)
		diffMachines(t, tier.name, fm, ferr, im, ierr)
	}
}

// diffMachines compares one engine tier's final machine state against the
// instrumented reference.
func diffMachines(t *testing.T, name string, fm *Machine, ferr error, im *Machine, ierr error) {
	t.Helper()
	if (ferr == nil) != (ierr == nil) {
		t.Fatalf("error divergence: %s=%v instrumented=%v", name, ferr, ierr)
	}
	if ferr != nil {
		var ft, it *Trap
		fok, iok := errors.As(ferr, &ft), errors.As(ierr, &it)
		if fok != iok {
			t.Fatalf("trap-ness divergence: %s=%v instrumented=%v", name, ferr, ierr)
		}
		if fok {
			if !reflect.DeepEqual(*ft, *it) {
				t.Errorf("trap divergence:\n %s: %+v\n inst: %+v", name, *ft, *it)
			}
		} else if ferr.Error() != ierr.Error() {
			t.Errorf("error divergence: %s=%v instrumented=%v", name, ferr, ierr)
		}
	}
	if !reflect.DeepEqual(fm.Stats, im.Stats) {
		t.Errorf("stats divergence:\n %s: %+v\n inst: %+v", name, fm.Stats, im.Stats)
	}
	if fm.Output() != im.Output() {
		t.Errorf("output divergence: %s=%q inst=%q", name, fm.Output(), im.Output())
	}
	if fm.Status() != im.Status() {
		t.Errorf("status divergence: %s=%d inst=%d", name, fm.Status(), im.Status())
	}
	if fm.halted != im.halted {
		t.Errorf("halted divergence: %s=%v inst=%v", name, fm.halted, im.halted)
	}
	if fm.pc != im.pc {
		t.Errorf("pc divergence: %s=%d inst=%d", name, fm.pc, im.pc)
	}
	if fm.pending != im.pending {
		t.Errorf("pending divergence: %s=%d inst=%d", name, fm.pending, im.pending)
	}
	if fm.CC != im.CC || fm.ccF != im.ccF {
		t.Errorf("cc divergence: %s=(%d,%v) inst=(%d,%v)", name, fm.CC, fm.ccF, im.CC, im.ccF)
	}
	if fm.R != im.R {
		t.Errorf("register divergence:\n %s: %v\n inst: %v", name, fm.R, im.R)
	}
	for i := range fm.F {
		if math.Float64bits(fm.F[i]) != math.Float64bits(im.F[i]) {
			t.Errorf("f%d divergence: %s=%v inst=%v", i, name, fm.F[i], im.F[i])
		}
	}
	if fm.B != im.B {
		t.Errorf("branch-register divergence:\n %s: %v\n inst: %v", name, fm.B, im.B)
	}
	if !bytes.Equal(fm.Mem, im.Mem) {
		t.Errorf("memory divergence (%s)", name)
	}
}

func TestEnginesDifferentialBaseline(t *testing.T) {
	// One program exercising every baseline op form: ALU imm/reg, shifts,
	// set, sethi/lo addressing, word/byte/float memory, float arithmetic,
	// fcmp, conditional and unconditional branches with live delay slots,
	// call/jr, jalr, and all three I/O traps.
	f := isa.NewFunction("main", isa.Baseline)
	f.Emit(isa.Instr{Op: isa.OpSethi, Rd: 2, DataTarget: "cell"})
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 2, Rs1: 2, DataTarget: "cell", Lo: true})
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 3, Rs1: 0, UseImm: true, Imm: 10}) // n
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 4, Rs1: 0, UseImm: true, Imm: 0})  // acc
	f.Bind("loop")
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 4, Rs1: 4, Rs2: 3})
	f.Emit(isa.Instr{Op: isa.OpSub, Rd: 3, Rs1: 3, UseImm: true, Imm: 1})
	f.Emit(isa.Instr{Op: isa.OpCmp, Rs1: 3, UseImm: true, Imm: 0})
	f.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondGT, Target: "loop"})
	f.Emit(isa.Instr{Op: isa.OpXor, Rd: 5, Rs1: 5, Rs2: 4}) // live slot
	// acc = 55; mix the full ALU set.
	f.Emit(isa.Instr{Op: isa.OpMul, Rd: 6, Rs1: 4, UseImm: true, Imm: 3})  // 165
	f.Emit(isa.Instr{Op: isa.OpDiv, Rd: 6, Rs1: 6, UseImm: true, Imm: 4})  // 41
	f.Emit(isa.Instr{Op: isa.OpRem, Rd: 7, Rs1: 6, Rs2: 4})                // 41
	f.Emit(isa.Instr{Op: isa.OpAnd, Rd: 7, Rs1: 7, UseImm: true, Imm: 60}) // 40
	f.Emit(isa.Instr{Op: isa.OpOr, Rd: 7, Rs1: 7, UseImm: true, Imm: 3})   // 43
	f.Emit(isa.Instr{Op: isa.OpSll, Rd: 8, Rs1: 7, UseImm: true, Imm: 4})
	f.Emit(isa.Instr{Op: isa.OpSrl, Rd: 8, Rs1: 8, Rs2: 6})
	f.Emit(isa.Instr{Op: isa.OpSra, Rd: 8, Rs1: 8, UseImm: true, Imm: 1})
	f.Emit(isa.Instr{Op: isa.OpSet, Rd: 9, Cond: isa.CondGE, Rs1: 8, Rs2: 7})
	// Memory round trips.
	f.Emit(isa.Instr{Op: isa.OpSw, Rd: 4, Rs1: 2, UseImm: true, Imm: 0})
	f.Emit(isa.Instr{Op: isa.OpLw, Rd: 10, Rs1: 2, UseImm: true, Imm: 0})
	f.Emit(isa.Instr{Op: isa.OpSb, Rd: 7, Rs1: 2, UseImm: true, Imm: 5})
	f.Emit(isa.Instr{Op: isa.OpLb, Rd: 11, Rs1: 2, Rs2: 0})
	// Floats.
	f.Emit(isa.Instr{Op: isa.OpCvtif, Rd: 1, Rs1: 4})
	f.Emit(isa.Instr{Op: isa.OpFadd, Rd: 2, Rs1: 1, Rs2: 1})
	f.Emit(isa.Instr{Op: isa.OpFmul, Rd: 2, Rs1: 2, Rs2: 1})
	f.Emit(isa.Instr{Op: isa.OpFdiv, Rd: 2, Rs1: 2, UseImm: false, Rs2: 1})
	f.Emit(isa.Instr{Op: isa.OpFneg, Rd: 3, Rs1: 2})
	f.Emit(isa.Instr{Op: isa.OpFsub, Rd: 2, Rs1: 2, Rs2: 3})
	f.Emit(isa.Instr{Op: isa.OpFmov, Rd: 1, Rs1: 2})
	f.Emit(isa.Instr{Op: isa.OpFcmp, Rs1: 2, Rs2: 3})
	f.Emit(isa.Instr{Op: isa.OpFSet, Rd: 13, Cond: isa.CondGT, Rs1: 2, Rs2: 3})
	f.Emit(isa.Instr{Op: isa.OpSf, Rd: 2, Rs1: 2, UseImm: true, Imm: 8})
	f.Emit(isa.Instr{Op: isa.OpLf, Rd: 4, Rs1: 2, UseImm: true, Imm: 8})
	f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapPutf})
	// I/O echo loop.
	f.Bind("echo")
	f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapGetc})
	f.Emit(isa.Instr{Op: isa.OpCmp, Rs1: 1, UseImm: true, Imm: -1})
	f.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondEQ, Target: "calls"})
	f.Emit(isa.Instr{Op: isa.OpNop})
	f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapPutc})
	f.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondAlways, Target: "echo"})
	f.Emit(isa.Instr{Op: isa.OpNop})
	f.Bind("calls")
	f.Emit(isa.Instr{Op: isa.OpCall, Target: "five"})
	f.Emit(isa.Instr{Op: isa.OpNop})
	// jalr through a function pointer loaded from data.
	f.Emit(isa.Instr{Op: isa.OpSethi, Rd: 20, DataTarget: "fnptr"})
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 20, Rs1: 20, DataTarget: "fnptr", Lo: true})
	f.Emit(isa.Instr{Op: isa.OpLw, Rd: 20, Rs1: 20, UseImm: true, Imm: 0})
	f.Emit(isa.Instr{Op: isa.OpJalr, Rs1: 20})
	f.Emit(isa.Instr{Op: isa.OpNop})
	f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})

	g := isa.NewFunction("five", isa.Baseline)
	g.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 1, UseImm: true, Imm: 5})
	g.Emit(isa.Instr{Op: isa.OpJr, Rs1: isa.RABase})
	g.Emit(isa.Instr{Op: isa.OpNop})

	p := &isa.Program{Kind: isa.Baseline, Funcs: []*isa.Function{f, g},
		Data: []*isa.DataItem{
			{Label: "cell", Kind: isa.DataZero, Size: 16},
			{Label: "fnptr", Kind: isa.DataAddrs, Addrs: []string{"five"}},
		}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	diffEngines(t, p, "hi!", 0)
}

func TestEnginesDifferentialBRM(t *testing.T) {
	// BRM coverage: brcalc in PC-relative and register form, brld through a
	// data table, cmpbr (imm and reg) both taken and untaken, fcmpbr,
	// movbr/movrb/movbr2, calls to a function entry, and returns via b[7].
	f := isa.NewFunction("main", isa.BranchReg)
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 3, Rs1: 0, UseImm: true, Imm: 5}) // n
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 4, Rs1: 0, UseImm: true, Imm: 0}) // acc
	f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 1, Rs1: -1, Target: "loop"})
	f.Bind("loop")
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 4, Rs1: 4, Rs2: 3})
	f.Emit(isa.Instr{Op: isa.OpSub, Rd: 3, Rs1: 3, UseImm: true, Imm: 1})
	f.Emit(isa.Instr{Op: isa.OpCmpBr, Cond: isa.CondGT, Rs1: 3, UseImm: true, Imm: 0, BSrc: 1})
	f.Emit(isa.Instr{Op: isa.OpNop, BR: isa.RABr})
	// Register-form brcalc: address of "join" built in r20.
	f.Emit(isa.Instr{Op: isa.OpSethi, Rd: 20, Target: "join"})
	f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 2, Rs1: 20, Target: "join"})
	f.Emit(isa.Instr{Op: isa.OpNop, BR: 2})
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 4, Rs1: 0, UseImm: true, Imm: -999}) // skipped
	f.Bind("join")
	// brld: indirect jump through a data table of code addresses.
	f.Emit(isa.Instr{Op: isa.OpSethi, Rd: 21, DataTarget: "table"})
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 21, Rs1: 21, DataTarget: "table", Lo: true})
	f.Emit(isa.Instr{Op: isa.OpBrLd, Rd: 3, Rs1: 21, Imm: 0})
	f.Emit(isa.Instr{Op: isa.OpNop, BR: 3})
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 4, Rs1: 0, UseImm: true, Imm: -998}) // skipped
	f.Bind("dispatched")
	// Untaken compare (reg form), then fcmpbr.
	f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 5, Rs1: -1, Target: "dead"})
	f.Emit(isa.Instr{Op: isa.OpCmpBr, Cond: isa.CondLT, Rs1: 4, Rs2: 0, BSrc: 5})
	f.Emit(isa.Instr{Op: isa.OpNop, BR: isa.RABr})
	f.Emit(isa.Instr{Op: isa.OpCvtif, Rd: 1, Rs1: 4})
	f.Emit(isa.Instr{Op: isa.OpCvtif, Rd: 2, Rs1: 3})
	f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 6, Rs1: -1, Target: "fdone"})
	f.Emit(isa.Instr{Op: isa.OpFCmpBr, Cond: isa.CondGT, Rs1: 1, Rs2: 2, BSrc: 6})
	f.Emit(isa.Instr{Op: isa.OpNop, BR: isa.RABr})
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 4, Rs1: 4, UseImm: true, Imm: 1000}) // skipped (15 > 0)
	f.Bind("fdone")
	// Call a function: movrb/movbr2 spill and restore the return address.
	f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 1, Rs1: -1, Target: "twice"})
	f.Emit(isa.Instr{Op: isa.OpNop, BR: 1}) // call
	f.Emit(isa.Instr{Op: isa.OpMovBr, Rd: 2, BSrc: isa.RABr})
	f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 4, UseImm: true, Imm: 0})
	f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	f.Bind("dead")
	f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})

	g := isa.NewFunction("twice", isa.BranchReg)
	g.Emit(isa.Instr{Op: isa.OpMovRB, Rd: 22, BSrc: isa.RABr}) // spill RA
	g.Emit(isa.Instr{Op: isa.OpAdd, Rd: 4, Rs1: 4, Rs2: 4})
	g.Emit(isa.Instr{Op: isa.OpMovBR, Rd: 6, Rs1: 22}) // restore RA into b6
	g.Emit(isa.Instr{Op: isa.OpNop, BR: 6})            // return

	p := &isa.Program{Kind: isa.BranchReg, Funcs: []*isa.Function{f, g},
		Data: []*isa.DataItem{{Label: "table", Kind: isa.DataAddrs, Addrs: []string{"main.dispatched"}}}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	diffEngines(t, p, "", 0)
}

func TestEnginesDifferentialTraps(t *testing.T) {
	// Every trap kind must carry identical diagnostics from both engines.
	base := func(emit func(f *isa.Function)) *isa.Program {
		f := isa.NewFunction("main", isa.Baseline)
		emit(f)
		p := &isa.Program{Kind: isa.Baseline, Funcs: []*isa.Function{f}}
		if err := p.Link(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	brm := func(emit func(f *isa.Function)) *isa.Program {
		f := isa.NewFunction("main", isa.BranchReg)
		emit(f)
		p := &isa.Program{Kind: isa.BranchReg, Funcs: []*isa.Function{f}}
		if err := p.Link(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		p    *isa.Program
	}{
		{"base/div-zero", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpDiv, Rd: 1, Rs1: 1, Rs2: 0})
		})},
		{"base/rem-zero", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpRem, Rd: 1, Rs1: 1, UseImm: true, Imm: 0})
		})},
		{"base/load-oob", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpLw, Rd: 1, Rs1: 0, UseImm: true, Imm: -4})
		})},
		{"base/load-misaligned", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpLw, Rd: 1, Rs1: 0, UseImm: true, Imm: 2})
		})},
		{"base/byte-load-oob", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpLb, Rd: 1, Rs1: 0, UseImm: true, Imm: -1})
		})},
		{"base/store-oob", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpSw, Rd: 1, Rs1: 0, UseImm: true, Imm: -4})
		})},
		{"base/store-misaligned", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpSw, Rd: 1, Rs1: 0, UseImm: true, Imm: 6})
		})},
		{"base/byte-store-oob", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpSb, Rd: 1, Rs1: 0, UseImm: true, Imm: -1})
		})},
		{"base/float-load-oob", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpLf, Rd: 1, Rs1: 0, UseImm: true, Imm: -8})
		})},
		{"base/float-store-oob", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpSf, Rd: 1, Rs1: 0, UseImm: true, Imm: -8})
		})},
		{"base/unknown-trap", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: 99})
		})},
		{"base/illegal-brm-op", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpMovBr, Rd: 1, BSrc: 2})
		})},
		{"base/jump-out-of-text", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpSethi, Rd: 2, UseImm: true, Imm: 16}) // 0x10000
			f.Emit(isa.Instr{Op: isa.OpJr, Rs1: 2})
			f.Emit(isa.Instr{Op: isa.OpNop}) // slot
		})},
		{"base/fall-off-end", base(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpNop})
		})},
		{"brm/div-zero", brm(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpDiv, Rd: 1, Rs1: 1, Rs2: 0})
		})},
		{"brm/load-oob", brm(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpLw, Rd: 1, Rs1: 0, UseImm: true, Imm: -4})
		})},
		{"brm/brld-misaligned", brm(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpBrLd, Rd: 1, Rs1: 0, Imm: 2})
		})},
		{"brm/uninit-breg", brm(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpNop, BR: 3})
		})},
		{"brm/illegal-baseline-op", brm(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpCmp, Rs1: 1, UseImm: true, Imm: 0})
		})},
		{"brm/jump-out-of-text", brm(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpSethi, Rd: 2, UseImm: true, Imm: 16})
			f.Emit(isa.Instr{Op: isa.OpMovBR, Rd: 3, Rs1: 2})
			f.Emit(isa.Instr{Op: isa.OpNop, BR: 3})
		})},
		{"brm/fall-off-end", brm(func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpNop})
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diffEngines(t, tc.p, "", 0)
		})
	}
}

func TestEnginesStepBudget(t *testing.T) {
	// The budget trap must fire at the same instruction with the same
	// limit/executed values from both engines.
	mk := func(kind isa.Kind) *isa.Program {
		f := isa.NewFunction("main", kind)
		if kind == isa.Baseline {
			f.Bind("loop")
			f.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondAlways, Target: "loop"})
			f.Emit(isa.Instr{Op: isa.OpNop})
		} else {
			f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 1, Rs1: -1, Target: "loop"})
			f.Bind("loop")
			f.Emit(isa.Instr{Op: isa.OpNop, BR: 1})
		}
		p := &isa.Program{Kind: kind, Funcs: []*isa.Function{f}}
		if err := p.Link(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
		for _, budget := range []int64{1, 7, 100} {
			t.Run(fmt.Sprintf("%v/budget%d", kind, budget), func(t *testing.T) {
				diffEngines(t, mk(kind), "", budget)
			})
		}
	}
}

func TestLoopFastRejectsHooksAndFaults(t *testing.T) {
	p := buildBase(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m, err := New(p, "")
	if err != nil {
		t.Fatal(err)
	}
	m.Loop = LoopFast
	m.Hooks.Exec = func(int) {}
	if _, err := m.Run(); err == nil {
		t.Fatal("LoopFast with hooks should fail")
	}
}

func TestLoopAutoFallsBackForHooks(t *testing.T) {
	// With a hook installed, LoopAuto must take the instrumented path and
	// actually invoke the hook.
	p := buildBase(t, func(f *isa.Function) {
		f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 1})
		f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit})
	})
	m, err := New(p, "")
	if err != nil {
		t.Fatal(err)
	}
	execs := 0
	m.Hooks.Exec = func(int) { execs++ }
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if execs != 2 {
		t.Errorf("exec hook ran %d times, want 2", execs)
	}
}

func TestPutFloatMatchesFprintf(t *testing.T) {
	// The putf trap's strconv path must be byte-identical to the old
	// fmt.Fprintf("%.4f") for every value class.
	vals := []float64{
		0, 1, -1, 0.5, -0.5, 3.14159265, 1e-9, -1e-9, 1e20, -1e20,
		math.Inf(1), math.Inf(-1), math.NaN(), math.Copysign(0, -1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, 123456.789012,
	}
	for _, v := range vals {
		var m Machine
		m.putFloat(v)
		want := fmt.Sprintf("%.4f", v)
		if got := m.Output(); got != want {
			t.Errorf("putFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
