package emu

import (
	"encoding/json"
	"fmt"

	"branchreg/internal/isa"
)

// TrapKind classifies a machine fault. The taxonomy is part of the
// experiment engine's JSON schema (kinds marshal as their String form),
// so renaming a kind is a schema change.
type TrapKind int

const (
	// TrapNone is the zero value; a real Trap never carries it.
	TrapNone TrapKind = iota
	// TrapOOBLoad is a data-memory read outside [0, MemBytes).
	TrapOOBLoad
	// TrapOOBStore is a data-memory write outside [0, MemBytes).
	TrapOOBStore
	// TrapMisaligned is a word or float access whose address is not a
	// multiple of the access size's alignment (4 bytes).
	TrapMisaligned
	// TrapPCOutOfRange is a transfer of control (or sequential fall-off)
	// landing outside the text segment.
	TrapPCOutOfRange
	// TrapStepBudget is the instruction limit expiring; Limit and
	// Executed report the configured budget and the work done.
	TrapStepBudget
	// TrapIllegalInstr is an opcode the executing machine does not
	// implement, or an unknown system-trap code.
	TrapIllegalInstr
	// TrapUninitBranchReg is a transfer through a branch register that
	// no instruction ever assigned.
	TrapUninitBranchReg
	// TrapArithmetic is integer division or modulo by zero.
	TrapArithmetic
	// TrapInjected is a fault forced by a FaultPlan (never produced by
	// real workloads).
	TrapInjected

	numTrapKinds
)

var trapKindNames = [...]string{
	TrapNone:            "none",
	TrapOOBLoad:         "oob-load",
	TrapOOBStore:        "oob-store",
	TrapMisaligned:      "misaligned",
	TrapPCOutOfRange:    "pc-out-of-range",
	TrapStepBudget:      "step-budget",
	TrapIllegalInstr:    "illegal-instruction",
	TrapUninitBranchReg: "uninit-branch-reg",
	TrapArithmetic:      "arithmetic",
	TrapInjected:        "injected",
}

// String returns the kind's stable kebab-case name.
func (k TrapKind) String() string {
	if k >= 0 && int(k) < len(trapKindNames) {
		return trapKindNames[k]
	}
	return fmt.Sprintf("trap-kind-%d", int(k))
}

// ParseTrapKind is the inverse of String.
func ParseTrapKind(s string) (TrapKind, bool) {
	for k, name := range trapKindNames {
		if name == s {
			return TrapKind(k), true
		}
	}
	return TrapNone, false
}

// TrapKinds returns every real kind (excluding TrapNone), for
// taxonomy-exhaustive tests.
func TrapKinds() []TrapKind {
	out := make([]TrapKind, 0, numTrapKinds-1)
	for k := TrapNone + 1; k < numTrapKinds; k++ {
		out = append(out, k)
	}
	return out
}

// MarshalJSON encodes the kind as its String name.
func (k TrapKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a String name back to the kind.
func (k *TrapKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	kind, ok := ParseTrapKind(s)
	if !ok {
		return fmt.Errorf("emu: unknown trap kind %q", s)
	}
	*k = kind
	return nil
}

// Trap is a machine fault with the context needed to diagnose it from a
// JSON report: what went wrong, where (byte address and enclosing
// function), and any kind-specific detail. It wraps cleanly through
// driver.Run and is classifiable with errors.As.
type Trap struct {
	Kind  TrapKind `json:"kind"`
	PC    int32    `json:"pc"`              // byte address of the faulting instruction
	Fn    string   `json:"fn"`              // enclosing function ("?" if unknown)
	Instr string   `json:"instr,omitempty"` // RTL of the faulting instruction
	// Detail is the kind-specific free text (the out-of-range address,
	// the unimplemented opcode, ...).
	Detail string `json:"detail,omitempty"`
	// Limit and Executed are set for TrapStepBudget: the configured
	// instruction budget and the count actually executed.
	Limit    int64 `json:"limit,omitempty"`
	Executed int64 `json:"executed,omitempty"`
}

// Error implements error.
func (t *Trap) Error() string {
	msg := fmt.Sprintf("emu: %s trap in %s@%#x", t.Kind, t.Fn, uint32(t.PC))
	if t.Detail != "" {
		msg += ": " + t.Detail
	}
	if t.Kind == TrapStepBudget {
		msg += fmt.Sprintf(" (limit %d, executed %d)", t.Limit, t.Executed)
	}
	return msg
}

// trapHere builds a Trap at the machine's current instruction.
func (m *Machine) trapHere(kind TrapKind, format string, args ...interface{}) *Trap {
	t := &Trap{
		Kind:   kind,
		PC:     isa.IndexToAddr(m.pc),
		Fn:     m.where(),
		Detail: fmt.Sprintf(format, args...),
	}
	if m.pc >= 0 && m.pc < len(m.P.Text) {
		t.Instr = m.P.Text[m.pc].RTL(m.P.Kind)
	}
	return t
}
