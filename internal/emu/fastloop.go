package emu

import (
	"context"
	"encoding/binary"

	"branchreg/internal/isa"
)

// This file is the hook-free fast execution engine. It runs the predecoded
// micro-op form (see predecode.go) in a single dispatch loop per machine
// kind, with the per-step costs of the instrumented path hoisted out:
// no Step call boundary, no hook nil-checks, no fault-injection test, no
// UseImm/ZeroReg branches (resolved at decode time), and branch targets
// already in Text-index form.
//
// The fast loop is semantically identical to the instrumented loop — the
// same Stats arithmetic, the same trap kinds, messages and ordering, the
// same output bytes. TestEngines* and the native fuzz targets hold the two
// engines to byte-identical results.
//
// These loops carry no profiling code; a run with a BlockProfile attached
// dispatches to the profiled twins in fastloop_prof.go instead, keeping
// this file's loops — the ones `make bench-gate` holds to the committed
// throughput trajectory — free of even a per-transfer branch.

// LoopMode selects which execution engine RunContext uses.
type LoopMode int

const (
	// LoopAuto picks the block-fused engine when no hooks are installed
	// and no fault plan is armed, and the instrumented loop otherwise.
	LoopAuto LoopMode = iota
	// LoopFast forces the predecoded fast loop. RunContext fails if hooks
	// or a fault plan are present, since the fast loop cannot honor them.
	LoopFast
	// LoopInstrumented forces the instruction-at-a-time Step loop.
	LoopInstrumented
	// LoopFused forces the block-fused engine (fusedloop.go): basic blocks
	// chained by pre-linked successor indices, adjacent micro-op pairs
	// rewritten into superinstructions, and the step budget checked once
	// per block. Like LoopFast it cannot honor hooks or fault plans.
	LoopFused
	// LoopAdaptive is the tiered-promotion engine (adaptive.go): cold
	// programs warm up in the profiled fast loop, and once a block's
	// arrival count crosses Machine.PromoteThreshold the program is
	// re-fused with a vocabulary mined from its own profile and the run
	// continues in the fused engine. Promotion state is shared across
	// runs of the same program. Like LoopFast it cannot honor hooks or
	// fault plans.
	LoopAdaptive
)

// hooksInstalled reports whether any observation hook is set.
func (m *Machine) hooksInstalled() bool {
	h := &m.Hooks
	return h.Fetch != nil || h.Prefetch != nil || h.Exec != nil || h.Transfer != nil
}

// fastTrap syncs the machine's program counter and instruction count, then
// builds a trap at the current instruction — so diagnostics from the fast
// loop carry exactly the context the instrumented loop would report.
func (m *Machine) fastTrap(pc int, insts int64, kind TrapKind, format string, args ...interface{}) *Trap {
	m.pc = pc
	m.Stats.Instructions = insts
	return m.trapHere(kind, format, args...)
}

// runFastBaseline executes the baseline machine over the predecoded form.
func (m *Machine) runFastBaseline(ctx context.Context) (int32, error) {
	ops := m.dec
	st := &m.Stats
	mem := m.Mem
	R := &m.R
	F := &m.F
	limit := m.MaxInstructions
	insts := st.Instructions
	nextPoll := insts + ctxCheckStride
	pc := m.pc
	pending := m.pending

	for !m.halted {
		if pc < 0 || pc >= len(ops) {
			m.pending = pending
			st.Instructions = insts
			return 0, m.fastTrap(pc, insts, TrapPCOutOfRange,
				"pc index %d outside text [0,%d)", pc, len(ops))
		}
		u := &ops[pc]
		insts++

		seqAdv := true
		switch u.kind {
		case uNop:
			st.Noops++
		case uAddImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] + u.imm
			}
		case uAddReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] + R[u.rs2]
			}
		case uSubImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] - u.imm
			}
		case uSubReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] - R[u.rs2]
			}
		case uMulImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] * u.imm
			}
		case uMulReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] * R[u.rs2]
			}
		case uDivImm, uDivReg:
			d := u.imm
			if u.kind == uDivReg {
				d = R[u.rs2]
			}
			if d == 0 {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapArithmetic, "division by zero")
			}
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] / d
			}
		case uRemImm, uRemReg:
			d := u.imm
			if u.kind == uRemReg {
				d = R[u.rs2]
			}
			if d == 0 {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapArithmetic, "modulo by zero")
			}
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] % d
			}
		case uAndImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] & u.imm
			}
		case uAndReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] & R[u.rs2]
			}
		case uOrImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] | u.imm
			}
		case uOrReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] | R[u.rs2]
			}
		case uXorImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] ^ u.imm
			}
		case uXorReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] ^ R[u.rs2]
			}
		case uSllImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] << (uint32(u.imm) & 31)
			}
		case uSllReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] << (uint32(R[u.rs2]) & 31)
			}
		case uSrlImm:
			if u.rd != 0 {
				R[u.rd] = int32(uint32(R[u.rs1]) >> (uint32(u.imm) & 31))
			}
		case uSrlReg:
			if u.rd != 0 {
				R[u.rd] = int32(uint32(R[u.rs1]) >> (uint32(R[u.rs2]) & 31))
			}
		case uSraImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] >> (uint32(u.imm) & 31)
			}
		case uSraReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] >> (uint32(R[u.rs2]) & 31)
			}
		case uConst:
			if u.rd != 0 {
				R[u.rd] = u.imm
			}
		case uSetImm, uSetReg:
			b := u.imm
			if u.kind == uSetReg {
				b = R[u.rs2]
			}
			v := int32(0)
			if isa.Cond(u.cond).HoldsInt(R[u.rs1], b) {
				v = 1
			}
			if u.rd != 0 {
				R[u.rd] = v
			}
		case uFSet:
			v := int32(0)
			if isa.Cond(u.cond).HoldsFloat(F[u.rs1], F[u.rs2]) {
				v = 1
			}
			if u.rd != 0 {
				R[u.rd] = v
			}

		case uLwImm, uLwReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLwReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+4 > len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "load out of range: %#x", uint32(a))
			}
			if a%isa.WordSize != 0 {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapMisaligned, "misaligned word load: %#x", uint32(a))
			}
			if u.rd != 0 {
				R[u.rd] = int32(binary.LittleEndian.Uint32(mem[a:]))
			}
		case uLbImm, uLbReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLbReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a) >= len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "byte load out of range: %#x", uint32(a))
			}
			if u.rd != 0 {
				R[u.rd] = int32(int8(mem[a]))
			}
		case uSwImm, uSwReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSwReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+4 > len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "store out of range: %#x", uint32(a))
			}
			if a%isa.WordSize != 0 {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapMisaligned, "misaligned word store: %#x", uint32(a))
			}
			binary.LittleEndian.PutUint32(mem[a:], uint32(R[u.rd]))
		case uSbImm, uSbReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSbReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a) >= len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "byte store out of range: %#x", uint32(a))
			}
			mem[a] = byte(R[u.rd])
		case uLfImm, uLfReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLfReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+8 > len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "float load out of range: %#x", uint32(a))
			}
			F[u.rd] = isa.FloatFromBits(binary.LittleEndian.Uint64(mem[a:]))
		case uSfImm, uSfReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSfReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+8 > len(mem) {
				m.pending = pending
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "float store out of range: %#x", uint32(a))
			}
			binary.LittleEndian.PutUint64(mem[a:], isa.FloatBits(F[u.rd]))

		case uFadd:
			F[u.rd] = F[u.rs1] + F[u.rs2]
		case uFsub:
			F[u.rd] = F[u.rs1] - F[u.rs2]
		case uFmul:
			F[u.rd] = F[u.rs1] * F[u.rs2]
		case uFdiv:
			F[u.rd] = F[u.rs1] / F[u.rs2]
		case uFneg:
			F[u.rd] = -F[u.rs1]
		case uFmov:
			F[u.rd] = F[u.rs1]
		case uCvtif:
			F[u.rd] = float64(R[u.rs1])
		case uCvtfi:
			if u.rd != 0 {
				R[u.rd] = int32(F[u.rs1])
			}

		case uTrapExit:
			m.halted = true
			m.status = R[1]
			seqAdv = false
		case uTrapGetc:
			if m.inPos >= len(m.input) {
				R[1] = -1
			} else {
				R[1] = int32(m.input[m.inPos])
				m.inPos++
			}
		case uTrapPutc:
			m.out.WriteByte(byte(R[1]))
		case uTrapPutf:
			m.putFloat(F[1])
		case uTrapBad:
			m.pending = pending
			return 0, m.fastTrap(pc, insts, TrapIllegalInstr, "unknown trap %d", u.imm)

		case uCmpImm, uCmpReg:
			b := u.imm
			if u.kind == uCmpReg {
				b = R[u.rs2]
			}
			m.CC = signOf(R[u.rs1], b)
			m.ccF = false
		case uFcmp:
			a, b := F[u.rs1], F[u.rs2]
			switch {
			case a < b:
				m.CC = -1
			case a > b:
				m.CC = 1
			default:
				m.CC = 0
			}
			m.ccF = true
		case uJump:
			st.UncondJumps++
			pending = int(u.tgt)
			pc++
			seqAdv = false
		case uBCond:
			st.CondBranches++
			if isa.Cond(u.cond).HoldsInt(m.CC, 0) {
				st.CondTaken++
				pending = int(u.tgt)
			}
			pc++
			seqAdv = false
		case uCall:
			st.Calls++
			R[isa.RABase] = u.imm
			pending = int(u.tgt)
			pc++
			seqAdv = false
		case uJalr:
			st.Calls++
			target := R[u.rs1]
			R[isa.RABase] = u.imm
			pending = addrToIndex(target)
			pc++
			seqAdv = false
		case uJrRet, uJrJmp:
			pending = addrToIndex(R[u.rs1])
			if pending != -1 {
				if u.kind == uJrRet {
					st.Returns++
				} else {
					st.UncondJumps++
				}
			}
			pc++
			seqAdv = false

		default: // uIllegal and any BRM-only op
			m.pending = pending
			return 0, m.fastTrap(pc, insts, TrapIllegalInstr,
				"baseline cannot execute %v", isa.Op(u.imm))
		}

		if seqAdv && !m.halted {
			if pending != -2 {
				t := pending
				pending = -2
				switch {
				case t == -1:
					m.halted = true
					m.status = R[1]
				case t < 0 || t >= len(ops):
					m.pending = pending
					return 0, m.fastTrap(pc, insts, TrapPCOutOfRange, "jump out of text: index %d", t)
				default:
					pc = t
				}
			} else {
				pc++
			}
		}

		if insts > limit {
			m.pending = pending
			t := m.fastTrap(pc, insts, TrapStepBudget, "instruction limit exceeded")
			t.Limit = limit
			t.Executed = insts
			return 0, t
		}
		if insts >= nextPoll {
			if err := ctx.Err(); err != nil {
				m.pc, m.pending = pc, pending
				st.Instructions = insts
				return 0, err
			}
			nextPoll = insts + ctxCheckStride
		}
	}
	m.pc, m.pending = pc, pending
	st.Instructions = insts
	return m.status, nil
}

// runFastBRM executes the branch-register machine over the predecoded form.
func (m *Machine) runFastBRM(ctx context.Context) (int32, error) {
	ops := m.dec
	st := &m.Stats
	mem := m.Mem
	R := &m.R
	F := &m.F
	limit := m.MaxInstructions
	insts := st.Instructions
	nextPoll := insts + ctxCheckStride
	pc := m.pc

	for !m.halted {
		if pc < 0 || pc >= len(ops) {
			return 0, m.fastTrap(pc, insts, TrapPCOutOfRange,
				"pc index %d outside text [0,%d)", pc, len(ops))
		}
		u := &ops[pc]
		insts++
		now := insts

		advance := true
		switch u.kind {
		case uNop:
			st.Noops++
		case uAddImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] + u.imm
			}
		case uAddReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] + R[u.rs2]
			}
		case uSubImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] - u.imm
			}
		case uSubReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] - R[u.rs2]
			}
		case uMulImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] * u.imm
			}
		case uMulReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] * R[u.rs2]
			}
		case uDivImm, uDivReg:
			d := u.imm
			if u.kind == uDivReg {
				d = R[u.rs2]
			}
			if d == 0 {
				return 0, m.fastTrap(pc, insts, TrapArithmetic, "division by zero")
			}
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] / d
			}
		case uRemImm, uRemReg:
			d := u.imm
			if u.kind == uRemReg {
				d = R[u.rs2]
			}
			if d == 0 {
				return 0, m.fastTrap(pc, insts, TrapArithmetic, "modulo by zero")
			}
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] % d
			}
		case uAndImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] & u.imm
			}
		case uAndReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] & R[u.rs2]
			}
		case uOrImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] | u.imm
			}
		case uOrReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] | R[u.rs2]
			}
		case uXorImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] ^ u.imm
			}
		case uXorReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] ^ R[u.rs2]
			}
		case uSllImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] << (uint32(u.imm) & 31)
			}
		case uSllReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] << (uint32(R[u.rs2]) & 31)
			}
		case uSrlImm:
			if u.rd != 0 {
				R[u.rd] = int32(uint32(R[u.rs1]) >> (uint32(u.imm) & 31))
			}
		case uSrlReg:
			if u.rd != 0 {
				R[u.rd] = int32(uint32(R[u.rs1]) >> (uint32(R[u.rs2]) & 31))
			}
		case uSraImm:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] >> (uint32(u.imm) & 31)
			}
		case uSraReg:
			if u.rd != 0 {
				R[u.rd] = R[u.rs1] >> (uint32(R[u.rs2]) & 31)
			}
		case uConst:
			if u.rd != 0 {
				R[u.rd] = u.imm
			}
		case uSetImm, uSetReg:
			b := u.imm
			if u.kind == uSetReg {
				b = R[u.rs2]
			}
			v := int32(0)
			if isa.Cond(u.cond).HoldsInt(R[u.rs1], b) {
				v = 1
			}
			if u.rd != 0 {
				R[u.rd] = v
			}
		case uFSet:
			v := int32(0)
			if isa.Cond(u.cond).HoldsFloat(F[u.rs1], F[u.rs2]) {
				v = 1
			}
			if u.rd != 0 {
				R[u.rd] = v
			}

		case uLwImm, uLwReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLwReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+4 > len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "load out of range: %#x", uint32(a))
			}
			if a%isa.WordSize != 0 {
				return 0, m.fastTrap(pc, insts, TrapMisaligned, "misaligned word load: %#x", uint32(a))
			}
			if u.rd != 0 {
				R[u.rd] = int32(binary.LittleEndian.Uint32(mem[a:]))
			}
		case uLbImm, uLbReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLbReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a) >= len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "byte load out of range: %#x", uint32(a))
			}
			if u.rd != 0 {
				R[u.rd] = int32(int8(mem[a]))
			}
		case uSwImm, uSwReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSwReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+4 > len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "store out of range: %#x", uint32(a))
			}
			if a%isa.WordSize != 0 {
				return 0, m.fastTrap(pc, insts, TrapMisaligned, "misaligned word store: %#x", uint32(a))
			}
			binary.LittleEndian.PutUint32(mem[a:], uint32(R[u.rd]))
		case uSbImm, uSbReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSbReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a) >= len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "byte store out of range: %#x", uint32(a))
			}
			mem[a] = byte(R[u.rd])
		case uLfImm, uLfReg:
			st.Loads++
			a := R[u.rs1] + u.imm
			if u.kind == uLfReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+8 > len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "float load out of range: %#x", uint32(a))
			}
			F[u.rd] = isa.FloatFromBits(binary.LittleEndian.Uint64(mem[a:]))
		case uSfImm, uSfReg:
			st.Stores++
			a := R[u.rs1] + u.imm
			if u.kind == uSfReg {
				a = R[u.rs1] + R[u.rs2]
			}
			if a < 0 || int(a)+8 > len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBStore, "float store out of range: %#x", uint32(a))
			}
			binary.LittleEndian.PutUint64(mem[a:], isa.FloatBits(F[u.rd]))

		case uFadd:
			F[u.rd] = F[u.rs1] + F[u.rs2]
		case uFsub:
			F[u.rd] = F[u.rs1] - F[u.rs2]
		case uFmul:
			F[u.rd] = F[u.rs1] * F[u.rs2]
		case uFdiv:
			F[u.rd] = F[u.rs1] / F[u.rs2]
		case uFneg:
			F[u.rd] = -F[u.rs1]
		case uFmov:
			F[u.rd] = F[u.rs1]
		case uCvtif:
			F[u.rd] = float64(R[u.rs1])
		case uCvtfi:
			if u.rd != 0 {
				R[u.rd] = int32(F[u.rs1])
			}

		case uTrapExit:
			m.halted = true
			m.status = R[1]
			advance = false
		case uTrapGetc:
			if m.inPos >= len(m.input) {
				R[1] = -1
			} else {
				R[1] = int32(m.input[m.inPos])
				m.inPos++
			}
		case uTrapPutc:
			m.out.WriteByte(byte(R[1]))
		case uTrapPutf:
			m.putFloat(F[1])
		case uTrapBad:
			return 0, m.fastTrap(pc, insts, TrapIllegalInstr, "unknown trap %d", u.imm)

		case uBrCalcAbs:
			st.BrCalcs++
			m.B[u.rd] = breg{addr: u.imm, calcTime: now, valid: true}
		case uBrCalcReg:
			st.BrCalcs++
			m.B[u.rd] = breg{addr: R[u.rs1] + u.imm, calcTime: now, valid: true}
		case uBrLd:
			st.BrCalcs++
			st.Loads++
			a := R[u.rs1] + u.imm
			if a < 0 || int(a)+4 > len(mem) {
				return 0, m.fastTrap(pc, insts, TrapOOBLoad, "load out of range: %#x", uint32(a))
			}
			if a%isa.WordSize != 0 {
				return 0, m.fastTrap(pc, insts, TrapMisaligned, "misaligned word load: %#x", uint32(a))
			}
			v := int32(binary.LittleEndian.Uint32(mem[a:]))
			m.B[u.rd] = breg{addr: v, calcTime: now, valid: true}
		case uCmpBrImm, uCmpBrReg:
			b := u.imm
			if u.kind == uCmpBrReg {
				b = R[u.rs2]
			}
			if isa.Cond(u.cond).HoldsInt(R[u.rs1], b) {
				src := m.B[u.bsrc]
				m.B[isa.RABr] = breg{addr: src.addr, calcTime: src.calcTime, viaCmp: true, valid: true}
			} else {
				m.B[isa.RABr] = breg{addr: seq, calcTime: now, viaCmp: true, valid: true}
			}
		case uFCmpBr:
			if isa.Cond(u.cond).HoldsFloat(F[u.rs1], F[u.rs2]) {
				src := m.B[u.bsrc]
				m.B[isa.RABr] = breg{addr: src.addr, calcTime: src.calcTime, viaCmp: true, valid: true}
			} else {
				m.B[isa.RABr] = breg{addr: seq, calcTime: now, viaCmp: true, valid: true}
			}
		case uMovBr:
			st.BrMoves++
			m.B[u.rd] = m.B[u.bsrc]
		case uMovRB:
			st.BrMoves++
			if u.rd != 0 {
				R[u.rd] = m.B[u.bsrc].addr
			}
		case uMovBR:
			st.BrMoves++
			m.B[u.rd] = breg{addr: R[u.rs1], calcTime: now, isRA: true, valid: true}

		default: // uIllegal and any baseline-only op
			return 0, m.fastTrap(pc, insts, TrapIllegalInstr,
				"BRM cannot execute %v", isa.Op(u.imm))
		}

		if advance && !m.halted {
			if u.br == isa.PCBr {
				pc++
			} else {
				b := m.B[u.br]
				if !b.valid {
					return 0, m.fastTrap(pc, insts, TrapUninitBranchReg,
						"transfer through uninitialized b[%d]", u.br)
				}
				switch {
				case b.viaCmp:
					st.CondBranches++
				case b.addr == seq:
					// only compares produce the sequential sentinel
				default:
					idx := addrToIndex(b.addr)
					switch {
					case idx == -1:
						// exit to the halt address: not a workload transfer
					case m.isFuncEntry(idx):
						st.Calls++
					case b.isRA:
						st.Returns++
					default:
						st.UncondJumps++
					}
				}
				ret := breg{addr: isa.IndexToAddr(pc) + isa.WordSize, calcTime: now, isRA: true, valid: true}
				if b.addr == seq {
					// Untaken conditional: fall through.
					m.B[isa.RABr] = ret
					pc++
				} else {
					st.CondTaken += b2i(b.viaCmp)
					idx := addrToIndex(b.addr)
					if idx != -1 {
						dist := now - b.calcTime
						if dist > DistHistMax {
							st.DistHist[DistHistMax]++
						} else if dist >= 0 {
							st.DistHist[dist]++
						}
						if dist >= MinPrefetchDist {
							st.PrefetchHit++
						} else {
							st.PrefetchMiss++
						}
					}
					m.B[isa.RABr] = ret
					switch {
					case idx == -1:
						m.halted = true
						m.status = R[1]
					case idx < 0 || idx >= len(ops):
						return 0, m.fastTrap(pc, insts, TrapPCOutOfRange, "jump out of text: index %d", idx)
					default:
						pc = idx
					}
				}
			}
		}

		if insts > limit {
			t := m.fastTrap(pc, insts, TrapStepBudget, "instruction limit exceeded")
			t.Limit = limit
			t.Executed = insts
			return 0, t
		}
		if insts >= nextPoll {
			if err := ctx.Err(); err != nil {
				m.pc = pc
				st.Instructions = insts
				return 0, err
			}
			nextPoll = insts + ctxCheckStride
		}
	}
	m.pc = pc
	st.Instructions = insts
	return m.status, nil
}
