package emu

import (
	"branchreg/internal/isa"
)

// stepBaseline executes one baseline-machine instruction, implementing
// delayed branches: the instruction after a taken branch (the delay slot)
// always executes before control reaches the target.
func (m *Machine) stepBaseline(in *isa.Instr, addr int32) error {
	advance := func() error {
		if m.pending != -2 {
			t := m.pending
			m.pending = -2
			return m.jumpTo(t)
		}
		m.pc++
		return nil
	}

	switch in.Op {
	case isa.OpCmp:
		a, b := m.R[in.Rs1], m.rhs(in)
		m.CC = signOf(a, b)
		m.ccF = false
		return advance()
	case isa.OpFcmp:
		a, b := m.F[in.Rs1], m.F[in.Rs2]
		switch {
		case a < b:
			m.CC = -1
		case a > b:
			m.CC = 1
		default:
			m.CC = 0
		}
		m.ccF = true
		return advance()
	case isa.OpB:
		if in.Cond == isa.CondAlways {
			m.Stats.UncondJumps++
			m.profBranch(true)
			m.pending = m.targetIndex(addr, in.Imm)
			m.notifyTransfer(TransferUncond, true)
		} else {
			m.Stats.CondBranches++
			taken := in.Cond.HoldsInt(m.CC, 0)
			if taken {
				m.Stats.CondTaken++
				m.pending = m.targetIndex(addr, in.Imm)
			}
			m.profBranch(taken)
			m.notifyTransfer(TransferCond, taken)
		}
		m.pc++
		return nil
	case isa.OpCall:
		m.Stats.Calls++
		m.profBranch(true)
		m.R[isa.RABase] = addr + 8 // skip the delay slot
		m.pending = m.targetIndex(addr, in.Imm)
		m.notifyTransfer(TransferUncond, true)
		m.pc++
		return nil
	case isa.OpJalr:
		m.Stats.Calls++
		m.profBranch(true)
		target := m.R[in.Rs1]
		m.R[isa.RABase] = addr + 8
		m.pending = m.addrIndex(target)
		m.notifyTransfer(TransferUncond, true)
		m.pc++
		return nil
	case isa.OpJr:
		target := m.R[in.Rs1]
		m.pending = m.addrIndex(target)
		// The final return to the halt address is program exit, not a
		// dynamic transfer of the workload.
		if m.pending != -1 {
			if in.Rs1 == isa.RABase {
				m.Stats.Returns++
			} else {
				m.Stats.UncondJumps++
			}
			m.profBranch(true)
			m.notifyTransfer(TransferUncond, true)
		}
		m.pc++
		return nil
	}

	handled, err := m.exec(in)
	if err != nil {
		return err
	}
	if !handled {
		return m.trapHere(TrapIllegalInstr, "baseline cannot execute %v", in.Op)
	}
	if m.halted {
		return nil
	}
	return advance()
}

// signOf computes the baseline condition code for a ? b.
func signOf(a, b int32) int32 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// targetIndex converts a PC-relative displacement into a Text index, or the
// halt sentinel (-1).
func (m *Machine) targetIndex(addr, disp int32) int {
	return m.addrIndex(addr + disp)
}

// addrIndex converts a byte address to a Text index; the halt address maps
// to -1 and is handled by jumpTo.
func (m *Machine) addrIndex(target int32) int {
	if target == haltAddr {
		return -1
	}
	return int((target - isa.TextBase) / isa.WordSize)
}

// jumpTo transfers control to a Text index; -1 halts.
func (m *Machine) jumpTo(idx int) error {
	if idx == -1 {
		m.halted = true
		m.status = m.R[1]
		return nil
	}
	if idx < 0 || idx >= len(m.P.Text) {
		return m.trapHere(TrapPCOutOfRange, "jump out of text: index %d", idx)
	}
	if p := m.Prof; p != nil {
		p.Depart[m.pc]++
		p.Arrive[idx]++
	}
	m.pc = idx
	return nil
}

// stepBRM executes one branch-register-machine instruction. Every
// instruction carries a branch-register field: PCBr (0) means fall through;
// any other value transfers control to the address in that branch register,
// with b[7] receiving the address of the next sequential instruction (the
// return-address convention of paper §4).
func (m *Machine) stepBRM(in *isa.Instr, addr int32) error {
	now := m.Stats.Instructions
	switch in.Op {
	case isa.OpBrCalc:
		m.Stats.BrCalcs++
		var target int32
		if in.Rs1 >= 0 {
			target = m.R[in.Rs1] + in.Imm
		} else {
			target = addr + in.Imm
		}
		m.B[in.Rd] = breg{addr: target, calcTime: now, valid: true}
		m.prefetch(target)
	case isa.OpBrLd:
		m.Stats.BrCalcs++
		m.Stats.Loads++
		a := m.R[in.Rs1] + in.Imm
		v, err := m.loadWord(a)
		if err != nil {
			return err
		}
		m.B[in.Rd] = breg{addr: v, calcTime: now, valid: true}
		m.prefetch(v)
	case isa.OpCmpBr:
		taken := in.Cond.HoldsInt(m.R[in.Rs1], m.rhs(in))
		m.setCmpResult(taken, in.BSrc, now)
	case isa.OpFCmpBr:
		taken := in.Cond.HoldsFloat(m.F[in.Rs1], m.F[in.Rs2])
		m.setCmpResult(taken, in.BSrc, now)
	case isa.OpMovBr:
		m.Stats.BrMoves++
		m.B[in.Rd] = m.B[in.BSrc]
	case isa.OpMovRB:
		m.Stats.BrMoves++
		m.setR(in.Rd, m.B[in.BSrc].addr)
	case isa.OpMovBR:
		m.Stats.BrMoves++
		// Restores of spilled return addresses come through here.
		m.B[in.Rd] = breg{addr: m.R[in.Rs1], calcTime: now, isRA: true, valid: true}
		m.prefetch(m.R[in.Rs1])
	default:
		handled, err := m.exec(in)
		if err != nil {
			return err
		}
		if !handled {
			return m.trapHere(TrapIllegalInstr, "BRM cannot execute %v", in.Op)
		}
		if m.halted {
			return nil
		}
	}
	return m.brmAdvance(in, addr, now)
}

func (m *Machine) setCmpResult(taken bool, bsrc int, now int64) {
	if taken {
		src := m.B[bsrc]
		m.B[isa.RABr] = breg{addr: src.addr, calcTime: src.calcTime, viaCmp: true, valid: true}
	} else {
		m.B[isa.RABr] = breg{addr: seq, calcTime: now, viaCmp: true, valid: true}
	}
}

// brmAdvance applies the instruction's branch-register field.
func (m *Machine) brmAdvance(in *isa.Instr, addr int32, now int64) error {
	if in.BR == isa.PCBr {
		m.pc++
		return nil
	}
	b := m.B[in.BR]
	if !b.valid {
		return m.trapHere(TrapUninitBranchReg, "transfer through uninitialized b[%d]", in.BR)
	}
	switch {
	case b.viaCmp:
		m.Stats.CondBranches++
	case b.addr == seq:
		// only compares produce the sequential sentinel
	default:
		idx := m.addrIndex(b.addr)
		switch {
		case idx == -1:
			// exit to the halt address: not a workload transfer
		case m.isFuncEntry(idx):
			m.Stats.Calls++
		case b.isRA:
			m.Stats.Returns++
		default:
			m.Stats.UncondJumps++
		}
	}

	// The return-address side effect: every instruction referencing a
	// branch register other than the PC stores the next sequential address
	// into b[7].
	ret := breg{addr: addr + isa.WordSize, calcTime: now, isRA: true, valid: true}

	if b.addr == seq {
		// Untaken conditional: fall through.
		m.profBranch(false)
		m.B[isa.RABr] = ret
		if m.Hooks.Transfer != nil {
			m.Hooks.Transfer(TransferCond, false, now-b.calcTime)
		}
		m.pc++
		return nil
	}
	m.Stats.CondTaken += b2i(b.viaCmp)
	// Prefetch-distance accounting for the taken transfer (the final exit
	// transfer is not part of the workload).
	if m.addrIndex(b.addr) != -1 {
		dist := now - b.calcTime
		if dist > DistHistMax {
			m.Stats.DistHist[DistHistMax]++
		} else if dist >= 0 {
			m.Stats.DistHist[dist]++
		}
		if dist >= MinPrefetchDist {
			m.Stats.PrefetchHit++
		} else {
			m.Stats.PrefetchMiss++
		}
		m.profBranch(true)
		if p := m.Prof; p != nil && dist >= 0 && dist < MinPrefetchDist {
			p.Penalty[m.pc] += MinPrefetchDist - dist
		}
		if m.Hooks.Transfer != nil {
			kind := TransferUncond
			if b.viaCmp {
				kind = TransferCond
			}
			m.Hooks.Transfer(kind, true, dist)
		}
	}
	m.B[isa.RABr] = ret
	return m.jumpTo(m.addrIndex(b.addr))
}

// notifyTransfer reports a baseline transfer event (no prefetch distance).
func (m *Machine) notifyTransfer(kind TransferKind, taken bool) {
	if m.Hooks.Transfer != nil {
		m.Hooks.Transfer(kind, taken, -1)
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// prefetch notifies the cache hook of a branch-target prefetch.
func (m *Machine) prefetch(addr int32) {
	if m.Hooks.Prefetch != nil && addr != haltAddr {
		m.Hooks.Prefetch(addr)
	}
}
