package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/guard"
	"branchreg/internal/obs"
	"branchreg/internal/workloads"
)

// Config sizes and scopes a Server. The zero value is usable: New fills
// every unset field with the documented default.
type Config struct {
	// Workers is the number of execution goroutines across all shards
	// (default: GOMAXPROCS).
	Workers int
	// Shards is the number of admission shards; requests hash to a shard
	// by fingerprint (default: min(Workers, 4), at least 1).
	Shards int
	// QueueDepth is the total queued-job capacity across shards
	// (default: 4 × Workers). A full shard queue answers 429.
	QueueDepth int
	// MaxSourceBytes rejects larger programs with 413 (default: 1 MiB;
	// negative disables the limit).
	MaxSourceBytes int
	// DefaultStepBudget is the instruction budget applied when a request
	// names none (default: 0, meaning the emulator's own default budget).
	DefaultStepBudget int64
	// MaxStepBudget caps every request's budget (0 = uncapped);
	// TenantBudgets overrides the cap per tenant name. A request asking
	// for more than its tenant's cap is clamped, so overruns surface as
	// TrapStepBudget at the cap — HTTP 422.
	MaxStepBudget int64
	TenantBudgets map[string]int64
	// MaxBodyBytes bounds one request body via http.MaxBytesReader;
	// larger bodies answer 413 (default: 1 MiB plus JSON-framing
	// headroom over MaxSourceBytes; negative disables the limit).
	MaxBodyBytes int64
	// JobTimeout bounds one execution's wall clock (default: 2 minutes).
	// An expired job answers 408.
	JobTimeout time.Duration
	// Cache supplies the compile cache (default: a fresh private cache).
	Cache *driver.Cache
	// ResultCacheMB budgets the deterministic result cache in MiB
	// (default 64; negative disables result caching). Admission checks
	// the cache before queueing, so repeat requests are answered without
	// touching a worker shard; see driver.ResultCache for what is
	// cacheable. If the supplied Cache already carries a ResultCache,
	// that one is used and the budget here is ignored.
	ResultCacheMB int
	// Metrics supplies the registry serve records into (default:
	// obs.Default).
	Metrics *obs.Registry

	// BreakerThreshold is the consecutive engine-failure count that opens
	// a (class, engine) circuit breaker (default 3; see internal/guard).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker pins its class to the
	// fallback engine before half-open probing (default 30s).
	BreakerCooldown time.Duration
	// ShadowRate samples every Nth successful execution of a class for
	// background differential re-execution on the alternate engine
	// (default 32; negative disables shadow verification).
	ShadowRate int
	// IncidentCap bounds the incident ring served at GET /v1/incidents
	// (default 256).
	IncidentCap int
	// Chaos, when non-nil, arms the deterministic chaos plan — injected
	// engine panics, latency, and worker stalls for supervision testing.
	// Never set it on a production server.
	Chaos *ChaosPlan

	// FlightCap bounds the flight-recorder ring served at
	// GET /v1/debug/requests (default 256).
	FlightCap int
	// FlightSlow retains any request slower than this in the flight
	// recorder (default 250ms; negative disables the slow criterion).
	FlightSlow time.Duration
	// FlightSample retains every Nth request in the flight recorder
	// regardless of interest (default 64; negative disables sampling).
	FlightSample int
	// Logger receives structured request logs (default: discard).
	// Errors and fallback/reroute-annotated requests always log;
	// LogSample additionally logs every Nth ordinary request (0 = none).
	Logger    *slog.Logger
	LogSample int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — runtime
	// profiling for a live server, gated because the endpoints expose
	// process internals.
	EnablePprof bool
}

// serveMetrics holds the resolved metric handles so the request path
// pays one atomic op per event, never a registry lookup.
type serveMetrics struct {
	requests  *obs.Counter
	ok        *obs.Counter
	coalesced *obs.Counter
	queueFull *obs.Counter
	draining  *obs.Counter
	badReq    *obs.Counter
	traps     *obs.Counter
	budget    *obs.Counter
	timeouts  *obs.Counter
	internal  *obs.Counter
	inflight  *obs.Gauge
	queueWait *obs.Histogram
	totalNS   *obs.Histogram
	// queueTotal aggregates the per-shard serve.queue.depth.%d gauges:
	// one number for "how much is queued right now" without a consumer
	// having to know the shard count.
	queueTotal *obs.Gauge
}

func newServeMetrics(r *obs.Registry) serveMetrics {
	return serveMetrics{
		requests:   r.Counter("serve.requests"),
		ok:         r.Counter("serve.ok"),
		coalesced:  r.Counter("serve.coalesced"),
		queueFull:  r.Counter("serve.rejected.queue_full"),
		draining:   r.Counter("serve.rejected.draining"),
		badReq:     r.Counter("serve.rejected.bad_request"),
		traps:      r.Counter("serve.traps"),
		budget:     r.Counter("serve.traps.step_budget"),
		timeouts:   r.Counter("serve.timeouts"),
		internal:   r.Counter("serve.errors.internal"),
		inflight:   r.Gauge("serve.inflight"),
		queueWait:  r.Histogram("serve.queue_wait_ns"),
		totalNS:    r.Histogram("serve.total_ns"),
		queueTotal: r.Gauge("serve.queue.depth.total"),
	}
}

// job is one admitted execution. The admitting handler creates it, the
// shard worker fills res/err and closes done, and every handler waiting
// on the same fingerprint (the coalesced followers) reads the shared
// result.
type job struct {
	req     driver.Request
	fp      string
	class   string
	enq     time.Time
	queueNS int64
	out     *guard.Result
	err     error
	done    chan struct{}

	// The admitting request's trace rides with the job: the worker
	// attaches it to the execution context so driver/guard spans land in
	// it. Coalesced followers keep their own traces; only the leader's
	// trace sees the execution.
	reqID     string
	trace     *obs.ReqTrace
	rootID    obs.SpanID
	queueSpan *obs.Span
}

// shard is one admission lane: a bounded queue plus the in-flight table
// used for coalescing. Hashing fingerprints across shards keeps the
// inflight maps' lock contention bounded as workers scale.
type shard struct {
	mu       sync.Mutex
	closed   bool
	queue    chan *job
	inflight map[string]*job
	// depth exports the queue's occupancy as serve.queue.depth.<i>, so
	// /metrics shows where admission pressure concentrates.
	depth *obs.Gauge
}

// Server is the compile-and-run service. Create with New, expose via
// ServeHTTP (it is an http.Handler), stop with Drain.
type Server struct {
	cfg      Config
	cache    *driver.Cache
	results  *driver.ResultCache // nil when result caching is disabled
	sup      *guard.Supervisor
	chaos    *chaos
	m        serveMetrics
	mux      *http.ServeMux
	shards   []*shard
	workers  sync.WaitGroup
	draining atomic.Bool
	running  atomic.Int64
	start    time.Time
	// bodyLimit is the resolved MaxBodyBytes (<= 0: unlimited).
	bodyLimit int64

	// latSets caches the per-(status-class, engine) latency histogram
	// handles emit records into, so the hot path pays one map read
	// instead of four fmt.Sprintf name constructions per response.
	latMu   sync.RWMutex
	latSets map[latKey]*latencySet

	// ewmaNS tracks recent job wall clocks (EWMA, α=1/8) so the 429
	// Retry-After hint reflects how fast the queue actually drains.
	ewmaNS          atomic.Int64
	workersPerShard int

	flight *obs.FlightRecorder
	logger *slog.Logger
	// idPrefix makes generated request IDs unique across server restarts;
	// reqN numbers requests within this process.
	idPrefix string
	reqN     atomic.Int64
	// logN counts responses for -log-sample's every-Nth selection.
	logN atomic.Int64
	// queueLen tracks total queued jobs across shards for the
	// serve.queue.depth.total gauge.
	queueLen atomic.Int64

	// gate, when non-nil, is received from before each job executes —
	// a test hook that makes queue-full behavior deterministic.
	gate chan struct{}
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = min(cfg.Workers, 4)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.MaxSourceBytes == 0 {
		cfg.MaxSourceBytes = 1 << 20
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	if cfg.Cache == nil {
		cfg.Cache = driver.NewCache()
	}
	if cfg.ResultCacheMB == 0 {
		cfg.ResultCacheMB = 64
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
		if cfg.MaxSourceBytes > 0 && int64(cfg.MaxSourceBytes)+64*1024 > cfg.MaxBodyBytes {
			// The body limit must never reject a source the source limit
			// accepts; keep JSON-framing headroom above it.
			cfg.MaxBodyBytes = int64(cfg.MaxSourceBytes) + 64*1024
		}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default
	}
	if cfg.ShadowRate == 0 {
		cfg.ShadowRate = 32
	}
	if cfg.FlightCap <= 0 {
		cfg.FlightCap = 256
	}
	if cfg.FlightSlow == 0 {
		cfg.FlightSlow = 250 * time.Millisecond
	}
	if cfg.FlightSample == 0 {
		cfg.FlightSample = 64
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	var seed [4]byte
	_, _ = rand.Read(seed[:])
	s := &Server{
		cfg:       cfg,
		cache:     cfg.Cache,
		m:         newServeMetrics(cfg.Metrics),
		start:     time.Now(),
		bodyLimit: cfg.MaxBodyBytes,
		flight:    obs.NewFlightRecorder(cfg.FlightCap, cfg.FlightSlow.Nanoseconds(), cfg.FlightSample),
		logger:    cfg.Logger,
		idPrefix:  hex.EncodeToString(seed[:]),
		latSets:   map[latKey]*latencySet{},
	}
	if cfg.ResultCacheMB > 0 {
		if s.cache.ResultCache() == nil {
			s.cache.SetResultCache(driver.NewResultCache(int64(cfg.ResultCacheMB) << 20))
		}
		s.results = s.cache.ResultCache()
	}
	// The execution stack, bottom-up: the compile cache's Exec (result
	// cache included — the class annotation gives driver-level entries
	// their invalidation coordinates), the chaos injector (tests and
	// smoke runs only), and the guard supervisor the workers actually
	// call.
	exec := guard.ExecFunc(func(ctx context.Context, class string, req driver.Request) (*driver.Result, error) {
		return s.cache.Exec(driver.ContextWithResultClass(ctx, class), req)
	})
	if cfg.Chaos != nil {
		s.chaos = newChaos(*cfg.Chaos, cfg.Metrics)
		exec = s.chaos.wrap(exec)
	}
	shadowRate := cfg.ShadowRate
	if shadowRate < 0 {
		shadowRate = 0
	}
	s.sup = guard.New(guard.Config{
		Exec:          exec,
		Threshold:     cfg.BreakerThreshold,
		Cooldown:      cfg.BreakerCooldown,
		ShadowRate:    shadowRate,
		ShadowTimeout: cfg.JobTimeout,
		IncidentCap:   cfg.IncidentCap,
		Metrics:       cfg.Metrics,
		OnQuarantine: func(class, tier string) {
			if s.results != nil {
				s.results.Invalidate(class, tier)
			}
		},
	})
	s.workersPerShard = max(1, cfg.Workers/cfg.Shards)
	perShard := max(1, cfg.QueueDepth/cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{
			queue:    make(chan *job, perShard),
			inflight: map[string]*job{},
			depth:    cfg.Metrics.Gauge(fmt.Sprintf("serve.queue.depth.%d", i)),
		})
	}
	for i := 0; i < cfg.Workers; i++ {
		sh := s.shards[i%len(s.shards)]
		s.workers.Add(1)
		go s.worker(sh)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/incidents", s.handleIncidents)
	s.mux.HandleFunc("GET /v1/debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /v1/debug/requests/{id}", s.handleDebugRequest)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admission (new runs answer 503), lets queued jobs finish,
// and waits for the workers — or for ctx, whichever comes first.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // second drain is a no-op
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.closed = true
		close(sh.queue)
		sh.mu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		// Only after the last worker exits can no new shadow samples
		// arrive; close the supervisor's shadow pool and let queued
		// verifications finish.
		s.sup.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with jobs still running: %w", ctx.Err())
	}
}

// shardFor hashes a fingerprint to its admission shard.
func (s *Server) shardFor(fp string) *shard {
	h := fnv.New32a()
	h.Write([]byte(fp))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// errInternal marks a worker panic: the only path to a 500.
var errInternal = errors.New("internal error")

// observeJobDuration folds one job's execution wall clock into the
// EWMA the Retry-After hint is scaled by (α = 1/8; the first sample
// seeds the average).
func (s *Server) observeJobDuration(ns int64) {
	for {
		old := s.ewmaNS.Load()
		nw := old + (ns-old)/8
		if old == 0 {
			nw = ns
		}
		if s.ewmaNS.CompareAndSwap(old, nw) {
			return
		}
	}
}

// retryAfterHint scales a 429's Retry-After by observed load instead
// of a constant: the refusing shard's queue depth times the EWMA job
// duration, spread across the shard's workers, is the expected time
// until a slot frees — clamped to [1, 30] whole seconds (RFC 9110
// Retry-After is integral). Before any job has completed the hint
// stays at the old constant 1.
func (s *Server) retryAfterHint(depth int) string {
	ewma := s.ewmaNS.Load()
	if ewma <= 0 || depth <= 0 {
		return "1"
	}
	denom := int64(s.workersPerShard) * int64(time.Second)
	secs := (int64(depth)*ewma + denom - 1) / denom
	return strconv.FormatInt(min(max(secs, 1), 30), 10)
}

// worker executes jobs from one shard's queue until Drain closes it.
func (s *Server) worker(sh *shard) {
	defer s.workers.Done()
	for j := range sh.queue {
		sh.depth.Set(int64(len(sh.queue)))
		s.m.queueTotal.Set(s.queueLen.Add(-1))
		if s.gate != nil {
			<-s.gate
		}
		if s.chaos != nil {
			s.chaos.maybeStall()
		}
		j.queueNS = time.Since(j.enq).Nanoseconds()
		j.queueSpan.End()
		s.m.queueWait.Observe(j.queueNS)
		s.m.inflight.Set(s.running.Add(1))
		runStart := time.Now()
		j.out, j.err = s.execJob(j)
		s.observeJobDuration(time.Since(runStart).Nanoseconds())
		s.m.inflight.Set(s.running.Add(-1))
		// Publish the result under the ADMISSION fingerprint. The guard
		// rewrites req.Loop per tier attempt, so the driver-level cache
		// keys tier fingerprints; only here does the admission key (the
		// one repeat requests are looked up by) learn the result. Never
		// cache supervision artifacts: a fallback or reroute is the
		// survivable shape of a failing tier, and memoizing it would let
		// hits mask an open breaker — the breaker must keep seeing real
		// attempts until its class executes cleanly again.
		if j.err == nil && s.results != nil && !j.req.NoCache &&
			len(j.out.FallbackFrom) == 0 && !j.out.Rerouted && driver.Cacheable(&j.req) {
			s.results.Put(j.fp, j.class, j.out.Result)
		}
		// Remove from the coalescing table before publishing: an
		// identical request arriving after done closes must start a
		// fresh execution, never read a completed slot.
		sh.mu.Lock()
		delete(sh.inflight, j.fp)
		sh.mu.Unlock()
		close(j.done)
	}
}

// execJob runs one job through the guard supervisor under the
// configured timeout. The supervisor absorbs engine-tier panics via
// fallback; the recover here is the last resort for a panic outside
// any tier attempt (or one that exhausted every tier and re-escaped),
// converting it into errInternal so a bug costs one 500, not the
// process.
func (s *Server) execJob(j *job) (out *guard.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, fmt.Errorf("%w: panic: %v", errInternal, p)
		}
	}()
	ctx := context.Background()
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	// Attach the admitting request's trace so driver and guard spans land
	// in it; the exec span's deferred End survives the panic path above.
	ctx = obs.ContextWithReqTrace(ctx, j.trace)
	ctx = obs.ContextWithSpan(ctx, j.rootID)
	sp, ctx := obs.StartSpan(ctx, "exec", "serve")
	defer sp.End()
	return s.sup.Exec(ctx, j.class, j.req)
}

// reqCtx carries one request's observability state from admission to
// the response writer: its ID, its trace and root span, and the
// classification the flight recorder and the request log report.
type reqCtx struct {
	id        string
	rt        *obs.ReqTrace
	root      *obs.Span
	start     time.Time
	class     string
	tenant    string
	coalesced bool
}

// validRequestID bounds what the server accepts as an inbound
// X-Request-Id: non-empty, at most 120 bytes, [A-Za-z0-9._:-] only.
// Anything else is replaced with a generated ID, so a hostile header
// can't smuggle log/exposition payloads.
func validRequestID(id string) bool {
	if id == "" || len(id) > 120 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == ':', c == '-':
		default:
			return false
		}
	}
	return true
}

// requestID echoes a well-formed inbound X-Request-Id (so a caller —
// or brload -trace-propagate — can correlate its own IDs with flight
// records) or generates one: a per-process random prefix plus a
// sequence number.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); validRequestID(id) {
		return id
	}
	return fmt.Sprintf("%s-%d", s.idPrefix, s.reqN.Add(1))
}

// statusClass buckets an HTTP status for the serve.latency metric
// names: 2xx, 4xx, or 5xx.
func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// handleRun is POST /v1/run: decode, admit (coalesce / enqueue / 429),
// wait, respond. Every response path runs through emit, so every
// request — including rejections — carries X-Request-Id, lands in the
// latency histograms, and is offered to the flight recorder.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	rc := &reqCtx{id: s.requestID(r), start: time.Now()}
	rc.rt = obs.NewReqTrace(rc.id)
	rc.root = rc.rt.Begin("request", "serve", 0)
	w.Header().Set("X-Request-Id", rc.id)
	var rr RunRequest
	if err := s.decodeBody(w, r, &rr); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.m.badReq.Inc()
			s.emit(w, rc, 413, &RunResponse{Error: fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit)})
			return
		}
		s.m.badReq.Inc()
		s.emit(w, rc, 400, &RunResponse{Error: "bad request body: " + err.Error()})
		return
	}
	rc.tenant = rr.Tenant
	req, class, err := s.buildRequest(&rr)
	if err != nil {
		s.m.badReq.Inc()
		he := &httpError{code: 400, msg: err.Error()}
		errors.As(err, &he)
		s.emit(w, rc, he.code, &RunResponse{Error: he.msg, Machine: rr.Machine})
		return
	}
	rc.class = class

	if s.draining.Load() {
		s.m.draining.Inc()
		s.emit(w, rc, 503, &RunResponse{Error: "server is draining"})
		return
	}
	fp := req.Fingerprint()

	// Admission-time result-cache check: a hit is answered here, before
	// the request ever touches a shard queue — no queueing, no worker,
	// no 429 pressure. The span makes the shortcut visible in the
	// flight recorder.
	if s.results != nil && !req.NoCache && driver.Cacheable(&req) {
		if res, ok := s.results.Get(fp); ok {
			rc.rt.Begin("cache-hit", "serve", rc.root.ID()).End()
			s.m.ok.Inc()
			s.respondCached(w, &req, res, rc)
			return
		}
	}
	sh := s.shardFor(fp)

	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		s.m.draining.Inc()
		s.emit(w, rc, 503, &RunResponse{Error: "server is draining"})
		return
	}
	j, coalesced := sh.inflight[fp]
	if coalesced {
		s.m.coalesced.Inc()
		rc.coalesced = true
	} else {
		j = &job{req: req, fp: fp, class: class, enq: time.Now(), done: make(chan struct{}),
			reqID: rc.id, trace: rc.rt, rootID: rc.root.ID()}
		// The queue span must be attached before the channel send
		// publishes the job to a worker (which ends it at dequeue).
		j.queueSpan = rc.rt.Begin("queue", "serve", rc.root.ID())
		select {
		case sh.queue <- j:
			sh.inflight[fp] = j
			sh.depth.Set(int64(len(sh.queue)))
			s.m.queueTotal.Set(s.queueLen.Add(1))
		default:
			sh.mu.Unlock()
			j.queueSpan.End()
			s.m.queueFull.Inc()
			w.Header().Set("Retry-After", s.retryAfterHint(len(sh.queue)))
			s.emit(w, rc, 429, &RunResponse{Error: "queue full, retry later"})
			return
		}
	}
	sh.mu.Unlock()

	// A coalesced follower never executes: its trace records only the
	// wait for the leader's execution to publish.
	var waitSpan *obs.Span
	if coalesced {
		waitSpan = rc.rt.Begin("coalesced-wait", "serve", rc.root.ID())
	}
	select {
	case <-j.done:
		waitSpan.End()
	case <-r.Context().Done():
		// The client went away; the job keeps running for any coalesced
		// followers and for the cache's benefit. Nothing to emit — there
		// is no one left to respond to.
		waitSpan.End()
		rc.root.SetArg("status", "client-disconnected")
		rc.root.End()
		return
	}
	s.respond(w, &req, j, rc)
}

// bodyBufPool recycles request-body read buffers across requests: the
// hot path reads the whole (bounded) body into a pooled buffer and
// unmarshals from it, so a request costs one buffer reuse instead of a
// fresh decoder-owned allocation. json.Unmarshal copies what it keeps,
// so the buffer is safe to recycle immediately after decoding.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// poolBufCap is the largest buffer the body and response pools retain;
// oversized one-off buffers are dropped instead of pinned forever.
const poolBufCap = 1 << 20

// decodeBody reads the request body — bounded by MaxBodyBytes via
// http.MaxBytesReader — into a pooled buffer and unmarshals it. An
// over-limit body surfaces as *http.MaxBytesError for the 413 path.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, rr *RunRequest) error {
	body := r.Body
	if s.bodyLimit > 0 {
		body = http.MaxBytesReader(w, r.Body, s.bodyLimit)
	}
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= poolBufCap {
			bodyBufPool.Put(buf)
		}
	}()
	if _, err := buf.ReadFrom(body); err != nil {
		return err
	}
	return json.Unmarshal(buf.Bytes(), rr)
}

// respondCached writes an admission-time result-cache hit. The Result
// aliases the cache's entry (read-only); there is no job, so the only
// timing is the total and the only annotation beyond a normal success
// is Cached.
func (s *Server) respondCached(w http.ResponseWriter, req *driver.Request, res *driver.Result, rc *reqCtx) {
	resp := &RunResponse{
		Machine: req.Kind.String(),
		Cached:  true,
		Output:  res.Output,
		Status:  res.Status,
		Engine:  res.Engine,
		Timing:  &Timing{TotalNS: time.Since(rc.start).Nanoseconds()},
	}
	if res.Engine == emu.EngineFused || res.Engine == emu.EngineAdaptive {
		f := res.Fusion
		resp.Fusion = &f
	}
	if res.Engine == emu.EngineAdaptive {
		rf := res.Refusion
		resp.Refusion = &rf
	}
	resp.Instructions = res.Stats.Instructions
	resp.Transfers = res.Stats.Transfers()
	resp.DataRefs = res.Stats.DataRefs()
	s.emit(w, rc, 200, resp)
}

// respond classifies one finished job onto the wire. Status mapping:
// clean run and non-budget runtime traps are 200 (the service worked;
// the trap is the program's outcome, reported as data), a step-budget
// trap is 422 (the tenant exceeded its allowance), compile and
// validation failures are 400, a timed-out job is 408, and a worker
// panic is the only 500.
func (s *Server) respond(w http.ResponseWriter, req *driver.Request, j *job, rc *reqCtx) {
	resp := &RunResponse{
		Machine:   req.Kind.String(),
		Coalesced: rc.coalesced,
		Timing:    &Timing{QueueNS: j.queueNS, TotalNS: time.Since(rc.start).Nanoseconds()},
	}
	if j.err == nil {
		res := j.out.Result
		resp.Output = res.Output
		resp.Status = res.Status
		resp.Engine = res.Engine
		// A tier-level result-cache hit inside the executed job (the
		// guard's per-tier fingerprint matched an earlier execution) is
		// still a cached answer; say so.
		resp.Cached = res.Cached
		resp.FallbackFrom = j.out.FallbackFrom
		resp.Rerouted = j.out.Rerouted
		if res.Engine == emu.EngineFused || res.Engine == emu.EngineAdaptive {
			f := res.Fusion
			resp.Fusion = &f
		}
		if res.Engine == emu.EngineAdaptive {
			rf := res.Refusion
			resp.Refusion = &rf
		}
		resp.Instructions = res.Stats.Instructions
		resp.Transfers = res.Stats.Transfers()
		resp.DataRefs = res.Stats.DataRefs()
		resp.Timing.CompileNS = res.Timing.CompileNS
		resp.Timing.RunNS = res.Timing.RunNS
		s.m.ok.Inc()
		s.emit(w, rc, 200, resp)
		return
	}
	var trap *emu.Trap
	var pe *guard.PanicError
	switch {
	case errors.As(j.err, &trap):
		resp.Trap = trap
		if trap.Kind == emu.TrapStepBudget {
			s.m.budget.Inc()
			s.emit(w, rc, 422, resp)
			return
		}
		s.m.traps.Inc()
		s.emit(w, rc, 200, resp)
	case errors.Is(j.err, errInternal), errors.As(j.err, &pe), errors.Is(j.err, driver.ErrCompilePanic):
		// A worker panic, an engine panic that exhausted every fallback
		// tier, or a compiler panic cached as an error: the service's
		// bug, never the client's — the only 500s.
		s.m.internal.Inc()
		resp.Error = j.err.Error()
		s.emit(w, rc, 500, resp)
	case errors.Is(j.err, context.DeadlineExceeded):
		s.m.timeouts.Inc()
		resp.Error = fmt.Sprintf("job exceeded the %s execution timeout", s.cfg.JobTimeout)
		s.emit(w, rc, 408, resp)
	default:
		// Everything else the driver can return is a compile or
		// validation failure — the client's program, not the service.
		s.m.badReq.Inc()
		resp.Error = j.err.Error()
		s.emit(w, rc, 400, resp)
	}
}

// latKey identifies one (status-class, engine) latency histogram set.
// A struct key keeps the hot-path map lookup allocation-free (no name
// concatenation per response).
type latKey struct {
	class  string
	engine string
}

// latencySet holds the four phase histograms of one (class, engine)
// pair, resolved once.
type latencySet struct {
	total   *obs.Histogram
	queue   *obs.Histogram
	compile *obs.Histogram
	run     *obs.Histogram
}

// latencyFor returns the cached histogram handles for a (class,
// engine) pair, constructing the dotted names only on the first
// response of the pair. The cardinality is bounded: three status
// classes times the engine tiers.
func (s *Server) latencyFor(class, engine string) *latencySet {
	key := latKey{class: class, engine: engine}
	s.latMu.RLock()
	ls := s.latSets[key]
	s.latMu.RUnlock()
	if ls != nil {
		return ls
	}
	s.latMu.Lock()
	defer s.latMu.Unlock()
	if ls = s.latSets[key]; ls != nil {
		return ls
	}
	reg := s.cfg.Metrics
	ls = &latencySet{
		total:   reg.Histogram(fmt.Sprintf("serve.latency.total.%s.%s", class, engine)),
		queue:   reg.Histogram(fmt.Sprintf("serve.latency.queue.%s.%s", class, engine)),
		compile: reg.Histogram(fmt.Sprintf("serve.latency.compile.%s.%s", class, engine)),
		run:     reg.Histogram(fmt.Sprintf("serve.latency.run.%s.%s", class, engine)),
	}
	s.latSets[key] = ls
	return ls
}

// emit finalizes one response: stamp the request ID into the body, end
// the root span, record the per-phase serve.latency histograms, offer
// the finished request to the flight recorder, write the structured log
// line, and only then write the body. Keeping all of that on one path
// is what makes "every response is observable" a structural property
// instead of a per-branch obligation.
func (s *Server) emit(w http.ResponseWriter, rc *reqCtx, code int, resp *RunResponse) {
	resp.RequestID = rc.id
	totalNS := time.Since(rc.start).Nanoseconds()
	engine := resp.Engine
	if engine == "" {
		engine = "none"
	}
	ls := s.latencyFor(statusClass(code), engine)
	phases := map[string]int64{"total_ns": totalNS}
	ls.total.Observe(totalNS)
	if t := resp.Timing; t != nil {
		s.m.totalNS.Observe(t.TotalNS)
		phases["queue_ns"] = t.QueueNS
		phases["compile_ns"] = t.CompileNS
		phases["run_ns"] = t.RunNS
		ls.queue.Observe(t.QueueNS)
		ls.compile.Observe(t.CompileNS)
		ls.run.Observe(t.RunNS)
	}
	rc.root.SetArg("status", strconv.Itoa(code))
	if resp.Engine != "" {
		rc.root.SetArg("engine", resp.Engine)
	}
	rc.root.End()
	var trap string
	if resp.Trap != nil {
		trap = resp.Trap.Kind.String()
	}
	s.flight.Offer(obs.RequestRecord{
		ID: rc.id, Time: rc.start, Class: rc.class, Tenant: rc.tenant,
		Status: code, Engine: resp.Engine,
		FallbackFrom: resp.FallbackFrom, Rerouted: resp.Rerouted,
		Coalesced: rc.coalesced, Trap: trap, Error: resp.Error,
		Phases: phases, Spans: rc.rt.Spans(),
	})
	s.logRequest(rc, code, resp, totalNS)
	writeJSON(w, code, resp)
}

// logRequest writes one slog line per logged response. Server errors,
// timeouts, and fallback/reroute-annotated responses always log;
// LogSample > 0 additionally logs every Nth ordinary response.
func (s *Server) logRequest(rc *reqCtx, code int, resp *RunResponse, totalNS int64) {
	n := s.logN.Add(1)
	interesting := code >= 500 || code == 408 || len(resp.FallbackFrom) > 0 || resp.Rerouted
	if !interesting && (s.cfg.LogSample <= 0 || n%int64(s.cfg.LogSample) != 0) {
		return
	}
	lvl := slog.LevelInfo
	switch {
	case code >= 500:
		lvl = slog.LevelError
	case interesting:
		lvl = slog.LevelWarn
	}
	attrs := []any{
		slog.String("id", rc.id),
		slog.Int("status", code),
		slog.Int64("total_us", totalNS/1000),
	}
	if rc.class != "" {
		attrs = append(attrs, slog.String("class", rc.class))
	}
	if rc.tenant != "" {
		attrs = append(attrs, slog.String("tenant", rc.tenant))
	}
	if resp.Engine != "" {
		attrs = append(attrs, slog.String("engine", resp.Engine))
	}
	if len(resp.FallbackFrom) > 0 {
		attrs = append(attrs, slog.Any("fallback_from", resp.FallbackFrom))
	}
	if resp.Rerouted {
		attrs = append(attrs, slog.Bool("rerouted", true))
	}
	if rc.coalesced {
		attrs = append(attrs, slog.Bool("coalesced", true))
	}
	if resp.Error != "" {
		attrs = append(attrs, slog.String("error", resp.Error))
	}
	s.logger.Log(context.Background(), lvl, "request", attrs...)
}

// handleWorkloads lists the built-in suite.
func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	var out []WorkloadInfo
	for _, wl := range workloads.All() {
		out = append(out, WorkloadInfo{Name: wl.Name, Class: wl.Class, Description: wl.Description})
	}
	writeJSON(w, 200, out)
}

// IncidentsReply is the GET /v1/incidents body: the retained incident
// ring (newest first) plus the all-time total, so a consumer can tell
// when the bounded ring has evicted older incidents.
type IncidentsReply struct {
	Total     int64            `json:"total"`
	Incidents []guard.Incident `json:"incidents"`
}

// handleIncidents serves the supervision layer's incident ring:
// engine-tier fallbacks, breaker transitions, and shadow-verification
// mismatches.
func (s *Server) handleIncidents(w http.ResponseWriter, _ *http.Request) {
	incidents, total := s.sup.Incidents()
	writeJSON(w, 200, &IncidentsReply{Total: total, Incidents: incidents})
}

// DebugRequestsReply is the GET /v1/debug/requests body: flight-recorder
// summaries newest-first (span trees stripped — fetch one record by ID
// for its full tree) plus the all-time offered/retained totals, so a
// consumer can tell how selective retention is and whether the bounded
// ring has evicted older records.
type DebugRequestsReply struct {
	Offered  int64               `json:"offered"`
	Retained int64               `json:"retained"`
	Requests []obs.RequestRecord `json:"requests"`
}

// handleDebugRequests serves the flight recorder's retained summaries.
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	records, retained, offered := s.flight.Snapshot()
	for i := range records {
		records[i].Spans = nil
	}
	writeJSON(w, 200, &DebugRequestsReply{Offered: offered, Retained: retained, Requests: records})
}

// handleDebugRequest serves one retained request's full record — the
// summary plus its span tree — by request ID.
func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.flight.Get(id)
	if !ok {
		writeJSON(w, 404, map[string]string{"error": fmt.Sprintf(
			"no retained request %q: the flight recorder keeps errors, fallbacks, slow requests, and a deterministic sample", id)})
		return
	}
	writeJSON(w, 200, rec)
}

// serverVersion resolves the running build's version: the main module
// version when stamped, else the VCS revision, else "devel".
func serverVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" && kv.Value != "" {
			if len(kv.Value) > 12 {
				return kv.Value[:12]
			}
			return kv.Value
		}
	}
	return "devel"
}

// VersionReply is the GET /version body.
type VersionReply struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Started   string `json:"started"`
}

// handleVersion identifies the running build.
func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, 200, &VersionReply{
		Version:   serverVersion(),
		GoVersion: runtime.Version(),
		Started:   s.start.UTC().Format(time.RFC3339),
	})
}

// handleHealth is the liveness/readiness probe: 200 while serving, 503
// once draining.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", 503)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// MetricsReply is the GET /metrics body: the obs registry snapshot plus
// the compile cache's counters, the server's start time and uptime, and
// the build version. UptimeSeconds predates UptimeMS and stays for
// existing consumers (chaoscheck, benchrecord).
type MetricsReply struct {
	Started       string            `json:"started"`
	UptimeSeconds float64           `json:"uptime_s"`
	UptimeMS      int64             `json:"uptime_ms"`
	Version       string            `json:"version"`
	Cache         driver.CacheStats `json:"cache"`
	// ResultCache reports the deterministic result cache (nil when
	// disabled): hit/miss/eviction traffic and byte occupancy.
	ResultCache *driver.ResultCacheStats `json:"result_cache,omitempty"`
	Metrics     obs.Snapshot             `json:"metrics"`
}

// handleMetrics serves the registry snapshot: JSON by default, the
// Prometheus text exposition format with ?format=prom.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		snap := s.cfg.Metrics.Snapshot()
		// Scrape-time synthetics: values that live on the Server rather
		// than in the registry.
		if snap.Gauges == nil {
			snap.Gauges = map[string]int64{}
		}
		snap.Gauges["serve.uptime.ms"] = time.Since(s.start).Milliseconds()
		cs := s.cache.Stats()
		if snap.Counters == nil {
			snap.Counters = map[string]int64{}
		}
		snap.Counters["serve.cache.hits"] = cs.Hits
		snap.Counters["serve.cache.misses"] = cs.Misses
		if s.results != nil {
			rs := s.results.Stats()
			snap.Counters["driver.rescache.hits"] = rs.Hits
			snap.Counters["driver.rescache.misses"] = rs.Misses
			snap.Counters["driver.rescache.evictions"] = rs.Evictions
			snap.Counters["driver.rescache.invalidated"] = rs.Invalidated
			snap.Gauges["driver.rescache.bytes"] = rs.Bytes
			snap.Gauges["driver.rescache.entries"] = rs.Entries
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WriteProm(w)
		return
	}
	reply := &MetricsReply{
		Started:       s.start.UTC().Format(time.RFC3339),
		UptimeSeconds: time.Since(s.start).Seconds(),
		UptimeMS:      time.Since(s.start).Milliseconds(),
		Version:       serverVersion(),
		Cache:         s.cache.Stats(),
		Metrics:       s.cfg.Metrics.Snapshot(),
	}
	if s.results != nil {
		rs := s.results.Stats()
		reply.ResultCache = &rs
	}
	writeJSON(w, 200, reply)
}

// jsonEnc pairs a reusable buffer with an encoder bound to it, so a
// response costs zero encoder/buffer allocations once the pool is warm.
type jsonEnc struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonEncPool = sync.Pool{New: func() any {
	e := &jsonEnc{}
	e.enc = json.NewEncoder(&e.buf)
	e.enc.SetEscapeHTML(false)
	return e
}}

// writeJSON encodes v into a pooled buffer and writes it in one shot.
// Encoding before WriteHeader also means an encoding failure (a
// programming error in the reply types) can still answer 500 instead
// of a half-written 200.
func writeJSON(w http.ResponseWriter, code int, v any) {
	e := jsonEncPool.Get().(*jsonEnc)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		http.Error(w, "response encoding failed", 500)
	} else {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_, _ = w.Write(e.buf.Bytes())
	}
	if e.buf.Cap() <= poolBufCap {
		jsonEncPool.Put(e)
	}
}
