package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/guard"
	"branchreg/internal/obs"
	"branchreg/internal/workloads"
)

// Config sizes and scopes a Server. The zero value is usable: New fills
// every unset field with the documented default.
type Config struct {
	// Workers is the number of execution goroutines across all shards
	// (default: GOMAXPROCS).
	Workers int
	// Shards is the number of admission shards; requests hash to a shard
	// by fingerprint (default: min(Workers, 4), at least 1).
	Shards int
	// QueueDepth is the total queued-job capacity across shards
	// (default: 4 × Workers). A full shard queue answers 429.
	QueueDepth int
	// MaxSourceBytes rejects larger programs with 413 (default: 1 MiB;
	// negative disables the limit).
	MaxSourceBytes int
	// DefaultStepBudget is the instruction budget applied when a request
	// names none (default: 0, meaning the emulator's own default budget).
	DefaultStepBudget int64
	// MaxStepBudget caps every request's budget (0 = uncapped);
	// TenantBudgets overrides the cap per tenant name. A request asking
	// for more than its tenant's cap is clamped, so overruns surface as
	// TrapStepBudget at the cap — HTTP 422.
	MaxStepBudget int64
	TenantBudgets map[string]int64
	// JobTimeout bounds one execution's wall clock (default: 2 minutes).
	// An expired job answers 408.
	JobTimeout time.Duration
	// Cache supplies the compile cache (default: a fresh private cache).
	Cache *driver.Cache
	// Metrics supplies the registry serve records into (default:
	// obs.Default).
	Metrics *obs.Registry

	// BreakerThreshold is the consecutive engine-failure count that opens
	// a (class, engine) circuit breaker (default 3; see internal/guard).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker pins its class to the
	// fallback engine before half-open probing (default 30s).
	BreakerCooldown time.Duration
	// ShadowRate samples every Nth successful execution of a class for
	// background differential re-execution on the alternate engine
	// (default 32; negative disables shadow verification).
	ShadowRate int
	// IncidentCap bounds the incident ring served at GET /v1/incidents
	// (default 256).
	IncidentCap int
	// Chaos, when non-nil, arms the deterministic chaos plan — injected
	// engine panics, latency, and worker stalls for supervision testing.
	// Never set it on a production server.
	Chaos *ChaosPlan
}

// serveMetrics holds the resolved metric handles so the request path
// pays one atomic op per event, never a registry lookup.
type serveMetrics struct {
	requests  *obs.Counter
	ok        *obs.Counter
	coalesced *obs.Counter
	queueFull *obs.Counter
	draining  *obs.Counter
	badReq    *obs.Counter
	traps     *obs.Counter
	budget    *obs.Counter
	timeouts  *obs.Counter
	internal  *obs.Counter
	inflight  *obs.Gauge
	queueWait *obs.Histogram
	totalNS   *obs.Histogram
}

func newServeMetrics(r *obs.Registry) serveMetrics {
	return serveMetrics{
		requests:  r.Counter("serve.requests"),
		ok:        r.Counter("serve.ok"),
		coalesced: r.Counter("serve.coalesced"),
		queueFull: r.Counter("serve.rejected.queue_full"),
		draining:  r.Counter("serve.rejected.draining"),
		badReq:    r.Counter("serve.rejected.bad_request"),
		traps:     r.Counter("serve.traps"),
		budget:    r.Counter("serve.traps.step_budget"),
		timeouts:  r.Counter("serve.timeouts"),
		internal:  r.Counter("serve.errors.internal"),
		inflight:  r.Gauge("serve.inflight"),
		queueWait: r.Histogram("serve.queue_wait_ns"),
		totalNS:   r.Histogram("serve.total_ns"),
	}
}

// job is one admitted execution. The admitting handler creates it, the
// shard worker fills res/err and closes done, and every handler waiting
// on the same fingerprint (the coalesced followers) reads the shared
// result.
type job struct {
	req     driver.Request
	fp      string
	class   string
	enq     time.Time
	queueNS int64
	out     *guard.Result
	err     error
	done    chan struct{}
}

// shard is one admission lane: a bounded queue plus the in-flight table
// used for coalescing. Hashing fingerprints across shards keeps the
// inflight maps' lock contention bounded as workers scale.
type shard struct {
	mu       sync.Mutex
	closed   bool
	queue    chan *job
	inflight map[string]*job
	// depth exports the queue's occupancy as serve.queue.depth.<i>, so
	// /metrics shows where admission pressure concentrates.
	depth *obs.Gauge
}

// Server is the compile-and-run service. Create with New, expose via
// ServeHTTP (it is an http.Handler), stop with Drain.
type Server struct {
	cfg      Config
	cache    *driver.Cache
	sup      *guard.Supervisor
	chaos    *chaos
	m        serveMetrics
	mux      *http.ServeMux
	shards   []*shard
	workers  sync.WaitGroup
	draining atomic.Bool
	running  atomic.Int64
	start    time.Time

	// ewmaNS tracks recent job wall clocks (EWMA, α=1/8) so the 429
	// Retry-After hint reflects how fast the queue actually drains.
	ewmaNS          atomic.Int64
	workersPerShard int

	// gate, when non-nil, is received from before each job executes —
	// a test hook that makes queue-full behavior deterministic.
	gate chan struct{}
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = min(cfg.Workers, 4)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.MaxSourceBytes == 0 {
		cfg.MaxSourceBytes = 1 << 20
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	if cfg.Cache == nil {
		cfg.Cache = driver.NewCache()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default
	}
	if cfg.ShadowRate == 0 {
		cfg.ShadowRate = 32
	}
	s := &Server{
		cfg:   cfg,
		cache: cfg.Cache,
		m:     newServeMetrics(cfg.Metrics),
		start: time.Now(),
	}
	// The execution stack, bottom-up: the compile cache's Exec, the chaos
	// injector (tests and smoke runs only), and the guard supervisor the
	// workers actually call.
	exec := guard.ExecFunc(func(ctx context.Context, _ string, req driver.Request) (*driver.Result, error) {
		return s.cache.Exec(ctx, req)
	})
	if cfg.Chaos != nil {
		s.chaos = newChaos(*cfg.Chaos, cfg.Metrics)
		exec = s.chaos.wrap(exec)
	}
	shadowRate := cfg.ShadowRate
	if shadowRate < 0 {
		shadowRate = 0
	}
	s.sup = guard.New(guard.Config{
		Exec:          exec,
		Threshold:     cfg.BreakerThreshold,
		Cooldown:      cfg.BreakerCooldown,
		ShadowRate:    shadowRate,
		ShadowTimeout: cfg.JobTimeout,
		IncidentCap:   cfg.IncidentCap,
		Metrics:       cfg.Metrics,
	})
	s.workersPerShard = max(1, cfg.Workers/cfg.Shards)
	perShard := max(1, cfg.QueueDepth/cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{
			queue:    make(chan *job, perShard),
			inflight: map[string]*job{},
			depth:    cfg.Metrics.Gauge(fmt.Sprintf("serve.queue.depth.%d", i)),
		})
	}
	for i := 0; i < cfg.Workers; i++ {
		sh := s.shards[i%len(s.shards)]
		s.workers.Add(1)
		go s.worker(sh)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/incidents", s.handleIncidents)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admission (new runs answer 503), lets queued jobs finish,
// and waits for the workers — or for ctx, whichever comes first.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // second drain is a no-op
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.closed = true
		close(sh.queue)
		sh.mu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		// Only after the last worker exits can no new shadow samples
		// arrive; close the supervisor's shadow pool and let queued
		// verifications finish.
		s.sup.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with jobs still running: %w", ctx.Err())
	}
}

// shardFor hashes a fingerprint to its admission shard.
func (s *Server) shardFor(fp string) *shard {
	h := fnv.New32a()
	h.Write([]byte(fp))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// errInternal marks a worker panic: the only path to a 500.
var errInternal = errors.New("internal error")

// observeJobDuration folds one job's execution wall clock into the
// EWMA the Retry-After hint is scaled by (α = 1/8; the first sample
// seeds the average).
func (s *Server) observeJobDuration(ns int64) {
	for {
		old := s.ewmaNS.Load()
		nw := old + (ns-old)/8
		if old == 0 {
			nw = ns
		}
		if s.ewmaNS.CompareAndSwap(old, nw) {
			return
		}
	}
}

// retryAfterHint scales a 429's Retry-After by observed load instead
// of a constant: the refusing shard's queue depth times the EWMA job
// duration, spread across the shard's workers, is the expected time
// until a slot frees — clamped to [1, 30] whole seconds (RFC 9110
// Retry-After is integral). Before any job has completed the hint
// stays at the old constant 1.
func (s *Server) retryAfterHint(depth int) string {
	ewma := s.ewmaNS.Load()
	if ewma <= 0 || depth <= 0 {
		return "1"
	}
	denom := int64(s.workersPerShard) * int64(time.Second)
	secs := (int64(depth)*ewma + denom - 1) / denom
	return strconv.FormatInt(min(max(secs, 1), 30), 10)
}

// worker executes jobs from one shard's queue until Drain closes it.
func (s *Server) worker(sh *shard) {
	defer s.workers.Done()
	for j := range sh.queue {
		sh.depth.Set(int64(len(sh.queue)))
		if s.gate != nil {
			<-s.gate
		}
		if s.chaos != nil {
			s.chaos.maybeStall()
		}
		j.queueNS = time.Since(j.enq).Nanoseconds()
		s.m.queueWait.Observe(j.queueNS)
		s.m.inflight.Set(s.running.Add(1))
		runStart := time.Now()
		j.out, j.err = s.execJob(j)
		s.observeJobDuration(time.Since(runStart).Nanoseconds())
		s.m.inflight.Set(s.running.Add(-1))
		// Remove from the coalescing table before publishing: an
		// identical request arriving after done closes must start a
		// fresh execution, never read a completed slot.
		sh.mu.Lock()
		delete(sh.inflight, j.fp)
		sh.mu.Unlock()
		close(j.done)
	}
}

// execJob runs one job through the guard supervisor under the
// configured timeout. The supervisor absorbs engine-tier panics via
// fallback; the recover here is the last resort for a panic outside
// any tier attempt (or one that exhausted every tier and re-escaped),
// converting it into errInternal so a bug costs one 500, not the
// process.
func (s *Server) execJob(j *job) (out *guard.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, fmt.Errorf("%w: panic: %v", errInternal, p)
		}
	}()
	ctx := context.Background()
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	return s.sup.Exec(ctx, j.class, j.req)
}

// handleRun is POST /v1/run: decode, admit (coalesce / enqueue / 429),
// wait, respond.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	start := time.Now()
	limit := int64(1 << 20)
	if s.cfg.MaxSourceBytes > 0 {
		limit = int64(s.cfg.MaxSourceBytes) + 64*1024 // headroom for JSON framing
	}
	var rr RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(&rr); err != nil {
		s.m.badReq.Inc()
		writeJSON(w, 400, &RunResponse{Error: "bad request body: " + err.Error()})
		return
	}
	req, class, err := s.buildRequest(&rr)
	if err != nil {
		s.m.badReq.Inc()
		he := &httpError{code: 400, msg: err.Error()}
		errors.As(err, &he)
		writeJSON(w, he.code, &RunResponse{Error: he.msg, Machine: rr.Machine})
		return
	}

	if s.draining.Load() {
		s.m.draining.Inc()
		writeJSON(w, 503, &RunResponse{Error: "server is draining"})
		return
	}
	fp := req.Fingerprint()
	sh := s.shardFor(fp)

	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		s.m.draining.Inc()
		writeJSON(w, 503, &RunResponse{Error: "server is draining"})
		return
	}
	j, coalesced := sh.inflight[fp]
	if coalesced {
		s.m.coalesced.Inc()
	} else {
		j = &job{req: req, fp: fp, class: class, enq: time.Now(), done: make(chan struct{})}
		select {
		case sh.queue <- j:
			sh.inflight[fp] = j
			sh.depth.Set(int64(len(sh.queue)))
		default:
			sh.mu.Unlock()
			s.m.queueFull.Inc()
			w.Header().Set("Retry-After", s.retryAfterHint(len(sh.queue)))
			writeJSON(w, 429, &RunResponse{Error: "queue full, retry later"})
			return
		}
	}
	sh.mu.Unlock()

	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client went away; the job keeps running for any coalesced
		// followers and for the cache's benefit.
		return
	}
	s.respond(w, &req, j, coalesced, start)
}

// respond classifies one finished job onto the wire. Status mapping:
// clean run and non-budget runtime traps are 200 (the service worked;
// the trap is the program's outcome, reported as data), a step-budget
// trap is 422 (the tenant exceeded its allowance), compile and
// validation failures are 400, a timed-out job is 408, and a worker
// panic is the only 500.
func (s *Server) respond(w http.ResponseWriter, req *driver.Request, j *job, coalesced bool, start time.Time) {
	resp := &RunResponse{
		Machine:   req.Kind.String(),
		Coalesced: coalesced,
		Timing:    &Timing{QueueNS: j.queueNS, TotalNS: time.Since(start).Nanoseconds()},
	}
	totalObserved := func() { s.m.totalNS.Observe(resp.Timing.TotalNS) }
	if j.err == nil {
		res := j.out.Result
		resp.Output = res.Output
		resp.Status = res.Status
		resp.Engine = res.Engine
		resp.FallbackFrom = j.out.FallbackFrom
		resp.Rerouted = j.out.Rerouted
		if res.Engine == emu.EngineFused || res.Engine == emu.EngineAdaptive {
			f := res.Fusion
			resp.Fusion = &f
		}
		if res.Engine == emu.EngineAdaptive {
			rf := res.Refusion
			resp.Refusion = &rf
		}
		resp.Instructions = res.Stats.Instructions
		resp.Transfers = res.Stats.Transfers()
		resp.DataRefs = res.Stats.DataRefs()
		resp.Timing.CompileNS = res.Timing.CompileNS
		resp.Timing.RunNS = res.Timing.RunNS
		s.m.ok.Inc()
		totalObserved()
		writeJSON(w, 200, resp)
		return
	}
	var trap *emu.Trap
	var pe *guard.PanicError
	switch {
	case errors.As(j.err, &trap):
		resp.Trap = trap
		if trap.Kind == emu.TrapStepBudget {
			s.m.budget.Inc()
			totalObserved()
			writeJSON(w, 422, resp)
			return
		}
		s.m.traps.Inc()
		totalObserved()
		writeJSON(w, 200, resp)
	case errors.Is(j.err, errInternal), errors.As(j.err, &pe), errors.Is(j.err, driver.ErrCompilePanic):
		// A worker panic, an engine panic that exhausted every fallback
		// tier, or a compiler panic cached as an error: the service's
		// bug, never the client's — the only 500s.
		s.m.internal.Inc()
		resp.Error = j.err.Error()
		totalObserved()
		writeJSON(w, 500, resp)
	case errors.Is(j.err, context.DeadlineExceeded):
		s.m.timeouts.Inc()
		resp.Error = fmt.Sprintf("job exceeded the %s execution timeout", s.cfg.JobTimeout)
		totalObserved()
		writeJSON(w, 408, resp)
	default:
		// Everything else the driver can return is a compile or
		// validation failure — the client's program, not the service.
		s.m.badReq.Inc()
		resp.Error = j.err.Error()
		totalObserved()
		writeJSON(w, 400, resp)
	}
}

// handleWorkloads lists the built-in suite.
func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	var out []WorkloadInfo
	for _, wl := range workloads.All() {
		out = append(out, WorkloadInfo{Name: wl.Name, Class: wl.Class, Description: wl.Description})
	}
	writeJSON(w, 200, out)
}

// IncidentsReply is the GET /v1/incidents body: the retained incident
// ring (newest first) plus the all-time total, so a consumer can tell
// when the bounded ring has evicted older incidents.
type IncidentsReply struct {
	Total     int64            `json:"total"`
	Incidents []guard.Incident `json:"incidents"`
}

// handleIncidents serves the supervision layer's incident ring:
// engine-tier fallbacks, breaker transitions, and shadow-verification
// mismatches.
func (s *Server) handleIncidents(w http.ResponseWriter, _ *http.Request) {
	incidents, total := s.sup.Incidents()
	writeJSON(w, 200, &IncidentsReply{Total: total, Incidents: incidents})
}

// handleHealth is the liveness/readiness probe: 200 while serving, 503
// once draining.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", 503)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// MetricsReply is the GET /metrics body: the obs registry snapshot plus
// the compile cache's counters and the server's uptime.
type MetricsReply struct {
	UptimeSeconds float64           `json:"uptime_s"`
	Cache         driver.CacheStats `json:"cache"`
	Metrics       obs.Snapshot      `json:"metrics"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, 200, &MetricsReply{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Cache:         s.cache.Stats(),
		Metrics:       s.cfg.Metrics.Snapshot(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
