package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"

	"branchreg/internal/obs"
)

// postWithID is post with an X-Request-Id header, returning the
// response header's echo alongside the decoded body.
func postWithID(t *testing.T, url, id string, rr *RunRequest) (int, string, *RunResponse) {
	t.Helper()
	body, err := json.Marshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/v1/run", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp RunResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decode (HTTP %d): %v", hr.StatusCode, err)
	}
	return hr.StatusCode, hr.Header.Get("X-Request-Id"), &resp
}

func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// A well-formed inbound ID is echoed in the header and the body.
	code, echo, resp := postWithID(t, ts.URL, "client-id_1:abc", &RunRequest{Workload: "sieve"})
	if code != 200 {
		t.Fatalf("HTTP %d: %+v", code, resp)
	}
	if echo != "client-id_1:abc" || resp.RequestID != "client-id_1:abc" {
		t.Errorf("echo = %q, body request_id = %q; want the sent ID back in both", echo, resp.RequestID)
	}

	// A hostile or malformed ID is replaced with a generated one.
	code, echo, resp = postWithID(t, ts.URL, "bad id {with junk}", &RunRequest{Workload: "sieve"})
	if code != 200 {
		t.Fatalf("HTTP %d: %+v", code, resp)
	}
	if echo == "" || echo == "bad id {with junk}" || echo != resp.RequestID {
		t.Errorf("malformed inbound ID: header %q, body %q; want a matching generated ID", echo, resp.RequestID)
	}

	// No inbound ID: one is generated, and distinct per request.
	_, first, _ := postWithID(t, ts.URL, "", &RunRequest{Workload: "sieve", Machine: "baseline"})
	_, second, _ := postWithID(t, ts.URL, "", &RunRequest{Workload: "echo", Machine: "baseline"})
	if first == "" || second == "" || first == second {
		t.Errorf("generated IDs %q and %q; want distinct non-empty", first, second)
	}

	// Rejections carry IDs too: a 400 still echoes.
	code, echo, resp = postWithID(t, ts.URL, "reject-1", &RunRequest{})
	if code != 400 || echo != "reject-1" || resp.RequestID != "reject-1" {
		t.Errorf("rejection: HTTP %d, header %q, body %q; want 400 echoing reject-1", code, echo, resp.RequestID)
	}
}

func TestDebugRequestsEndpoints(t *testing.T) {
	// Sample every request so even fast clean runs are retained.
	_, ts := newTestServer(t, Config{Workers: 2, FlightSample: 1})

	code, _, resp := postWithID(t, ts.URL, "flight-test-1", &RunRequest{Workload: "sieve"})
	if code != 200 {
		t.Fatalf("HTTP %d: %+v", code, resp)
	}

	var list DebugRequestsReply
	hr, err := http.Get(ts.URL + "/v1/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if err := json.NewDecoder(hr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Offered < 1 || list.Retained < 1 || len(list.Requests) < 1 {
		t.Fatalf("flight list: offered %d retained %d records %d; want all >= 1",
			list.Offered, list.Retained, len(list.Requests))
	}
	for _, rec := range list.Requests {
		if len(rec.Spans) != 0 {
			t.Errorf("list record %s carries %d spans; summaries must strip them", rec.ID, len(rec.Spans))
		}
	}

	var rec obs.RequestRecord
	hr2, err := http.Get(ts.URL + "/v1/debug/requests/flight-test-1")
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	if hr2.StatusCode != 200 {
		raw, _ := io.ReadAll(hr2.Body)
		t.Fatalf("GET by id: HTTP %d: %s", hr2.StatusCode, raw)
	}
	if err := json.NewDecoder(hr2.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != "flight-test-1" || rec.Status != 200 || rec.Engine == "" {
		t.Errorf("record = %+v; want id flight-test-1, status 200, an engine", rec)
	}
	if rec.Phases["total_ns"] <= 0 {
		t.Errorf("record phases = %v; want a positive total_ns", rec.Phases)
	}
	want := map[string]bool{"request": false, "queue": false, "exec": false, "run": false}
	for _, sp := range rec.Spans {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("span tree lacks a %q span: %+v", name, rec.Spans)
		}
	}

	// Unknown IDs are a JSON 404, not an empty 200.
	hr3, err := http.Get(ts.URL + "/v1/debug/requests/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr3.Body)
	hr3.Body.Close()
	if hr3.StatusCode != 404 {
		t.Errorf("unknown id: HTTP %d, want 404", hr3.StatusCode)
	}
}

func TestMetricsPromExposition(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 2, Metrics: reg})

	if code, resp := post(t, ts.URL, &RunRequest{Workload: "sieve"}); code != 200 {
		t.Fatalf("HTTP %d: %+v", code, resp)
	}

	hr, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("HTTP %d", hr.StatusCode)
	}
	if ct := hr.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q; want the 0.0.4 text exposition", ct)
	}
	raw, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintProm(raw); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, raw)
	}
	for _, want := range []string{
		"serve_requests", "serve_queue_depth_total", "serve_uptime_ms",
		"serve_cache_hits", "serve_latency_total_2xx_",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("exposition lacks %q", want)
		}
	}

	// The JSON form is unchanged for existing consumers, plus the new
	// started/uptime_ms/version fields.
	var mr MetricsReply
	hr2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	if err := json.NewDecoder(hr2.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Metrics.Counters["serve.requests"] < 1 {
		t.Errorf("JSON metrics lost serve.requests: %v", mr.Metrics.Counters)
	}
	if mr.Started == "" || mr.Version == "" || mr.UptimeMS < 0 {
		t.Errorf("MetricsReply meta = started %q, version %q, uptime_ms %d", mr.Started, mr.Version, mr.UptimeMS)
	}
	if _, ok := mr.Metrics.Gauges["serve.queue.depth.total"]; !ok {
		t.Errorf("gauges lack serve.queue.depth.total: %v", mr.Metrics.Gauges)
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var vr VersionReply
	hr, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if err := json.NewDecoder(hr.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if vr.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", vr.GoVersion, runtime.Version())
	}
	if vr.Version == "" || vr.Started == "" {
		t.Errorf("version reply = %+v; want non-empty version and started", vr)
	}
}
