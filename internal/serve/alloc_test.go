package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"branchreg/internal/obs"
)

// Allocation budgets for the serve hot path. These are ceilings, not
// aspirations: the cache-hit path answers without queueing, executing,
// or re-encoding through fresh buffers, and the budget pins the pooled
// pieces (body read buffer, JSON encoder, latency-histogram handles)
// so an accidental per-request allocation — a fmt.Sprintf in emit, an
// unpooled encoder — fails the gate instead of quietly taxing every
// response. Run without -race (`make alloc-gate`); the detector's
// instrumentation allocates on its own.

// nullRW discards the response; a ResponseRecorder's growing body
// buffer would bill its own allocations to the handler under test.
type nullRW struct{ h http.Header }

func (w *nullRW) Header() http.Header         { return w.h }
func (w *nullRW) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullRW) WriteHeader(int)             {}

// hitHarness warms one sieve entry and returns a closure that replays
// the identical request as an admission-time cache hit.
func hitHarness(t testing.TB) func() {
	cfg := Config{Workers: 2, Metrics: obs.NewRegistry()}
	s := New(cfg)
	t.Cleanup(func() { stopServer(t, s) })

	body := []byte(`{"workload":"sieve"}`)
	warm := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body))
	warm.Header.Set("X-Request-Id", "alloc-warm")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, warm)
	if rec.Code != 200 {
		t.Fatalf("warmup: HTTP %d: %s", rec.Code, rec.Body.String())
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/run", nil)
	req.Header.Set("X-Request-Id", "alloc-hit")
	w := &nullRW{h: http.Header{}}
	return func() {
		req.Body = io.NopCloser(bytes.NewReader(body))
		s.ServeHTTP(w, req)
	}
}

func stopServer(t testing.TB, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestServeCacheHitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	hit := hitHarness(t)
	hit() // absorb one-time pool and histogram-set population

	avg := testing.AllocsPerRun(200, hit)
	// Measured ~41 allocs/hit: JSON decode of the request, the
	// fingerprint, the request trace and its spans, the response
	// struct, and the flight-record offer. The ceiling leaves room for
	// stdlib drift but fails on anything structural: an unpooled
	// encoder, a per-response fmt name, or a per-request rebuild of the
	// workload table each cost 10+.
	const budget = 60
	if avg > budget {
		t.Errorf("cache-hit path allocates %.1f objects per request, budget %d", avg, budget)
	}
}

// BenchmarkServeCacheHit is the memoized hot path end to end (decode,
// fingerprint, cache Get, respond) without HTTP transport overhead.
// Run with -benchmem: the allocs/op figure is the one the alloc gate
// budgets.
func BenchmarkServeCacheHit(b *testing.B) {
	hit := hitHarness(b)
	hit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit()
	}
}
