package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"branchreg/internal/emu"
	"branchreg/internal/obs"
)

// The serve-layer result-cache contract: an identical repeat request is
// answered at admission (cached: true, a cache-hit span, no queue),
// no_cache forces a fresh execution, the /metrics surfaces the cache's
// traffic, oversized bodies are a 413 with the standard envelope, and a
// guard quarantine invalidates the matching entries.

func TestServeResultCacheHit(t *testing.T) {
	reg := obs.NewRegistry()
	// ShadowRate 1: every real execution is sampled, so the sample
	// counter doubles as an executions-observed counter. FlightSample 1
	// retains every request for the span assertions.
	_, ts := newTestServer(t, Config{Workers: 2, ShadowRate: 1, FlightSample: 1, Metrics: reg})

	code, _, cold := postWithID(t, ts.URL, "rc-cold", &RunRequest{Workload: "sieve"})
	if code != 200 {
		t.Fatalf("cold: HTTP %d: %+v", code, cold)
	}
	if cold.Cached {
		t.Error("first request claims to be cached")
	}

	code, _, warm := postWithID(t, ts.URL, "rc-warm", &RunRequest{Workload: "sieve"})
	if code != 200 {
		t.Fatalf("warm: HTTP %d: %+v", code, warm)
	}
	if !warm.Cached {
		t.Fatal("identical repeat request was not served from the result cache")
	}
	if warm.Output != cold.Output || warm.Status != cold.Status ||
		warm.Instructions != cold.Instructions || warm.Engine != cold.Engine {
		t.Errorf("cached response diverges from the execution that populated it:\n got: %+v\nwant: %+v", warm, cold)
	}
	if warm.Coalesced {
		t.Error("cache hit marked coalesced; nothing was in flight")
	}
	if warm.Timing == nil || warm.Timing.RunNS != 0 || warm.Timing.CompileNS != 0 {
		t.Errorf("cache hit reports per-phase work it did not do: %+v", warm.Timing)
	}

	// The hit bypassed the queue and the workers: its flight record has
	// a cache-hit span and no queue span.
	var rec obs.RequestRecord
	hr, err := http.Get(ts.URL + "/v1/debug/requests/rc-warm")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if err := json.NewDecoder(hr.Body).Decode(&rec); err != nil {
		t.Fatalf("flight record decode (HTTP %d): %v", hr.StatusCode, err)
	}
	spans := map[string]bool{}
	for _, sp := range rec.Spans {
		spans[sp.Name] = true
	}
	if !spans["cache-hit"] {
		t.Errorf("hit's span tree lacks cache-hit: %+v", rec.Spans)
	}
	if spans["queue"] || spans["exec"] {
		t.Errorf("cache hit went through the queue/worker path: %+v", rec.Spans)
	}

	// Shadow verification observes real executions only: the hit must
	// not have advanced the per-class sample counter past the cold run.
	waitFor := reg.Counter("guard.shadow.sampled").Value()
	if waitFor != 1 {
		t.Errorf("guard.shadow.sampled = %d at rate 1 after 1 execution + 1 hit, want 1", waitFor)
	}

	// The cache's traffic is on /metrics.
	var reply MetricsReply
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if err := json.NewDecoder(mr.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.ResultCache == nil {
		t.Fatal("/metrics reply lacks the result_cache section")
	}
	if reply.ResultCache.Hits < 1 || reply.ResultCache.Entries < 1 || reply.ResultCache.Bytes <= 0 {
		t.Errorf("result_cache stats = %+v, want at least one hit and one accounted entry", reply.ResultCache)
	}

	// And on the Prometheus exposition, under the lossless '.' -> '_'
	// mapping.
	pr, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	prom, _ := io.ReadAll(pr.Body)
	for _, name := range []string{"driver_rescache_hits", "driver_rescache_misses", "driver_rescache_bytes"} {
		if !strings.Contains(string(prom), name) {
			t.Errorf("prom exposition lacks %s", name)
		}
	}
}

func TestServeNoCacheBypass(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	if code, resp := post(t, ts.URL, &RunRequest{Workload: "wc"}); code != 200 || resp.Cached {
		t.Fatalf("warmup: HTTP %d cached=%v", code, resp.Cached)
	}
	// The entry exists now; no_cache must skip it and execute fresh.
	code, resp := post(t, ts.URL, &RunRequest{Workload: "wc", NoCache: true})
	if code != 200 {
		t.Fatalf("HTTP %d: %+v", code, resp)
	}
	if resp.Cached {
		t.Error("no_cache request was served from the result cache")
	}
	if resp.Timing == nil || resp.Timing.RunNS <= 0 {
		t.Errorf("no_cache request reports no run time; did it really execute? %+v", resp.Timing)
	}
	// And without no_cache the entry is still there.
	if code, resp := post(t, ts.URL, &RunRequest{Workload: "wc"}); code != 200 || !resp.Cached {
		t.Errorf("after no_cache: HTTP %d cached=%v, want a cache hit", code, resp.Cached)
	}
}

func TestServeBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 512})

	// A comfortable body passes.
	if code, resp := post(t, ts.URL, &RunRequest{Workload: "wc"}); code != 200 {
		t.Fatalf("small body: HTTP %d: %+v", code, resp)
	}

	// An over-limit body is a 413 in the standard error envelope, with
	// the request ID echoed like any other rejection.
	big, err := json.Marshal(&RunRequest{Source: strings.Repeat("x", 4096)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(string(big)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "body-limit-1")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != 413 {
		t.Fatalf("oversized body: HTTP %d, want 413", hr.StatusCode)
	}
	var resp RunResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("413 body is not the standard envelope: %v", err)
	}
	if !strings.Contains(resp.Error, "512-byte limit") {
		t.Errorf("413 error = %q, want the configured limit named", resp.Error)
	}
	if hr.Header.Get("X-Request-Id") != "body-limit-1" || resp.RequestID != "body-limit-1" {
		t.Errorf("413 did not echo the request ID: header %q, body %q",
			hr.Header.Get("X-Request-Id"), resp.RequestID)
	}
}

// TestServeQuarantineInvalidatesCache: quarantining a (class, tier)
// removes its memoized results — the next identical request re-executes
// (on the rerouted tier) instead of answering from beyond the grave.
func TestServeQuarantineInvalidatesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	code, resp := post(t, ts.URL, &RunRequest{Workload: "sieve"})
	if code != 200 || resp.Engine != emu.EngineAdaptive {
		t.Fatalf("warmup: HTTP %d engine %q: %+v", code, resp.Engine, resp)
	}
	if code, resp := post(t, ts.URL, &RunRequest{Workload: "sieve"}); code != 200 || !resp.Cached {
		t.Fatalf("pre-quarantine repeat: HTTP %d cached=%v, want a hit", code, resp.Cached)
	}
	before := s.results.Stats()
	if before.Entries < 1 {
		t.Fatalf("no entries cached before quarantine: %+v", before)
	}

	s.sup.Quarantine("sieve/branchreg", emu.EngineAdaptive, "test quarantine")

	after := s.results.Stats()
	if after.Invalidated <= before.Invalidated {
		t.Fatalf("quarantine invalidated nothing: before %+v, after %+v", before, after)
	}
	// The class is rerouted off the quarantined tier AND its cached
	// results are gone: the next request is a fresh execution.
	code, resp = post(t, ts.URL, &RunRequest{Workload: "sieve"})
	if code != 200 {
		t.Fatalf("post-quarantine: HTTP %d: %+v", code, resp)
	}
	if resp.Cached {
		t.Error("post-quarantine request served from the invalidated cache")
	}
	if !resp.Rerouted || resp.Engine == emu.EngineAdaptive {
		t.Errorf("post-quarantine request not rerouted off the quarantined tier: engine %q rerouted=%v",
			resp.Engine, resp.Rerouted)
	}
}
