package serve

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"branchreg/internal/emu"
	"branchreg/internal/guard"
	"branchreg/internal/obs"
)

func TestParseChaosPlan(t *testing.T) {
	p, err := ParseChaosPlan("seed=7,target=sieve,panic-every=1,panic-max=8,latency-every=50,latency=5ms,stall-every=3,stall=2ms")
	if err != nil {
		t.Fatal(err)
	}
	want := ChaosPlan{
		Seed: 7, Target: "sieve", PanicEvery: 1, PanicMax: 8,
		LatencyEvery: 50, Latency: 5 * time.Millisecond,
		StallEvery: 3, Stall: 2 * time.Millisecond,
	}
	if *p != want {
		t.Errorf("parsed %+v, want %+v", *p, want)
	}
	if p, err := ParseChaosPlan("  "); p != nil || err != nil {
		t.Errorf("blank plan: got %v, %v, want nil, nil", p, err)
	}
	for _, bad := range []string{
		"panic-every",    // no value
		"panics-every=1", // unknown key
		"panic-every=x",  // not a number
		"panic-every=-1", // negative interval
		"latency=5",      // missing duration unit
	} {
		if _, err := ParseChaosPlan(bad); err == nil {
			t.Errorf("ParseChaosPlan(%q) accepted, want error", bad)
		}
	}
}

// TestServeChaosSupervision walks the full supervised lifecycle through
// the HTTP surface with a deterministic chaos plan: three injected
// adaptive-engine panics, each rescued by the fused loop; the second
// opens the sieve/branchreg breaker; the third defeats the first
// half-open probe; the (exhausted) plan lets the second probe close the
// breaker. Every response is a byte-correct 200 throughout.
func TestServeChaosSupervision(t *testing.T) {
	reg := obs.NewRegistry()
	// Generous relative to per-request latency under -race: the
	// open-breaker request below must land before the cooldown expires.
	const cooldown = 2 * time.Second
	_, ts := newTestServer(t, Config{
		Workers:          2,
		Metrics:          reg,
		BreakerThreshold: 2,
		BreakerCooldown:  cooldown,
		ShadowRate:       -1, // keep the request schedule fully deterministic
		Chaos:            &ChaosPlan{Target: "sieve", PanicEvery: 1, PanicMax: 3},
	})

	// The uninjected answer, from a class chaos does not target.
	code, clean := post(t, ts.URL, &RunRequest{Workload: "wc"})
	if code != 200 {
		t.Fatalf("control request: HTTP %d: %s", code, clean.Error)
	}
	code, want := post(t, ts.URL, &RunRequest{Workload: "sieve", Engine: "fast"})
	if code != 200 {
		t.Fatalf("reference request: HTTP %d: %s", code, want.Error)
	}

	run := func(step string) *RunResponse {
		t.Helper()
		code, resp := post(t, ts.URL, &RunRequest{Workload: "sieve"})
		if code != 200 {
			t.Fatalf("%s: HTTP %d: %s", step, code, resp.Error)
		}
		if resp.Output != want.Output || resp.Status != want.Status {
			t.Fatalf("%s: output diverged under chaos: %q/%d vs %q/%d",
				step, resp.Output, resp.Status, want.Output, want.Status)
		}
		return resp
	}

	// Panics 1 and 2: rescued by the fused tier; the second opens the breaker.
	for i, step := range []string{"first injected panic", "second injected panic"} {
		resp := run(step)
		if resp.Engine != emu.EngineFused || len(resp.FallbackFrom) != 1 || resp.FallbackFrom[0] != emu.EngineAdaptive {
			t.Fatalf("%s: engine=%q fallback_from=%v, want fused rescue from adaptive", step, resp.Engine, resp.FallbackFrom)
		}
		if resp.Rerouted {
			t.Fatalf("%s: rerouted before the breaker opened", step)
		}
		wantOpen := int64(i) // breaker opens on the second failure
		if n := reg.Counter("guard.breaker.open").Value(); n != wantOpen {
			t.Fatalf("%s: guard.breaker.open = %d, want %d", step, n, wantOpen)
		}
	}

	// Open breaker: the adaptive tier is skipped, not attempted (no panic).
	resp := run("request under open breaker")
	if !resp.Rerouted || resp.Engine != emu.EngineFused || len(resp.FallbackFrom) != 0 {
		t.Fatalf("open breaker: rerouted=%v engine=%q fallback_from=%v, want clean reroute to fused",
			resp.Rerouted, resp.Engine, resp.FallbackFrom)
	}

	// First half-open probe eats the third (last) injected panic and reopens.
	time.Sleep(cooldown + 100*time.Millisecond)
	resp = run("failed half-open probe")
	if len(resp.FallbackFrom) != 1 || resp.FallbackFrom[0] != emu.EngineAdaptive {
		t.Fatalf("failed probe: fallback_from=%v, want [adaptive]", resp.FallbackFrom)
	}
	if n := reg.Counter("guard.breaker.open").Value(); n != 2 {
		t.Fatalf("guard.breaker.open = %d after failed probe, want 2", n)
	}

	// The chaos budget is spent: the next probe succeeds and closes.
	time.Sleep(cooldown + 100*time.Millisecond)
	resp = run("closing half-open probe")
	if resp.Engine != emu.EngineAdaptive || len(resp.FallbackFrom) != 0 {
		t.Fatalf("closing probe: engine=%q fallback_from=%v, want clean adaptive success", resp.Engine, resp.FallbackFrom)
	}
	if n := reg.Counter("guard.breaker.close").Value(); n != 1 {
		t.Fatalf("guard.breaker.close = %d, want 1", n)
	}
	if n := reg.Counter("serve.chaos.panics").Value(); n != 3 {
		t.Errorf("serve.chaos.panics = %d, want exactly the PanicMax budget 3", n)
	}

	// Steady state again: adaptive serves without supervision artifacts.
	resp = run("steady state after close")
	if resp.Engine != emu.EngineAdaptive || resp.Rerouted || len(resp.FallbackFrom) != 0 {
		t.Fatalf("steady state: %+v, want plain adaptive response", resp)
	}

	// The incident log tells the same story over HTTP.
	hr, err := http.Get(ts.URL + "/v1/incidents")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var inc IncidentsReply
	if err := json.NewDecoder(hr.Body).Decode(&inc); err != nil {
		t.Fatal(err)
	}
	byKind := map[guard.IncidentKind]int{}
	for _, in := range inc.Incidents {
		byKind[in.Kind]++
		if in.Class != "sieve/branchreg" {
			t.Errorf("incident %d: class %q, want sieve/branchreg", in.ID, in.Class)
		}
	}
	if byKind[guard.IncidentPanicFallback] != 3 || byKind[guard.IncidentBreakerOpen] != 2 || byKind[guard.IncidentBreakerClose] != 1 {
		t.Errorf("incidents by kind = %v, want 3 panic-fallback, 2 breaker-open, 1 breaker-close", byKind)
	}
	if byKind[guard.IncidentShadowMismatch] != 0 {
		t.Errorf("%d shadow mismatches under chaos — engines diverged", byKind[guard.IncidentShadowMismatch])
	}
	if inc.Total != int64(len(inc.Incidents)) {
		t.Errorf("total = %d with %d retained: nothing should have been evicted", inc.Total, len(inc.Incidents))
	}
}

// TestServeShadowVerification: with ShadowRate 1 every successful
// request is re-executed on the alternate engine; agreeing engines
// leave no incidents behind.
func TestServeShadowVerification(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 2, Metrics: reg, ShadowRate: 1})

	code, resp := post(t, ts.URL, &RunRequest{Workload: "sieve"})
	if code != 200 {
		t.Fatalf("HTTP %d: %s", code, resp.Error)
	}
	deadline := time.Now().Add(10 * time.Second)
	for reg.Counter("guard.shadow.ok").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("shadow verification never completed: sampled=%d ok=%d err=%d",
				reg.Counter("guard.shadow.sampled").Value(),
				reg.Counter("guard.shadow.ok").Value(),
				reg.Counter("guard.shadow.error").Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := reg.Counter("guard.shadow.mismatch").Value(); n != 0 {
		snap, _ := s.sup.Incidents()
		t.Fatalf("shadow mismatch between real engines (%d): %+v", n, snap)
	}
}
