//go:build !race

package serve

// raceEnabled reports whether this test binary was built with the race
// detector. Allocation-budget tests skip under race: its
// instrumentation allocates on paths that are allocation-free in a
// normal build, so the budgets would measure the detector, not the
// server.
const raceEnabled = false
