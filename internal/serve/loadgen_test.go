package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffFor(t *testing.T) {
	cases := []struct {
		name       string
		attempt    int
		retryAfter string
		cap        time.Duration
		lo, hi     time.Duration // want result in [lo, hi)
	}{
		{"first-attempt-linear", 0, "", time.Second, 2500 * time.Microsecond, 5 * time.Millisecond},
		{"tenth-attempt-linear", 9, "", time.Second, 25 * time.Millisecond, 50 * time.Millisecond},
		{"linear-caps-at-20-steps", 99, "", time.Second, 50 * time.Millisecond, 100 * time.Millisecond},
		{"retry-after-honored", 0, "2", 5 * time.Second, time.Second, 2 * time.Second},
		{"retry-after-capped", 0, "30", 25 * time.Millisecond, 12500 * time.Microsecond, 25 * time.Millisecond},
		{"retry-after-zero-still-sleeps", 0, "0", time.Second, time.Millisecond, 2 * time.Millisecond},
		{"retry-after-garbage-falls-back", 2, "soon", time.Second, 7500 * time.Microsecond, 15 * time.Millisecond},
		{"zero-cap-means-default-1s", 0, "600", 0, 500 * time.Millisecond, time.Second},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for i := 0; i < 100; i++ { // jitter: check the whole range
				d := backoffFor(c.attempt, c.retryAfter, c.cap)
				if d < c.lo || d >= c.hi {
					t.Fatalf("backoffFor(%d, %q, %v) = %v, want in [%v, %v)",
						c.attempt, c.retryAfter, c.cap, d, c.lo, c.hi)
				}
			}
		})
	}
}

// flakyRunHandler answers a scripted sequence of status codes before
// succeeding, and records what it saw.
type flakyRunHandler struct {
	codes      []int // consumed one per request until empty, then 200
	retryAfter string
	n          atomic.Int64
}

func (h *flakyRunHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		w.WriteHeader(200)
		return
	}
	i := int(h.n.Add(1)) - 1
	if i < len(h.codes) {
		if h.retryAfter != "" {
			w.Header().Set("Retry-After", h.retryAfter)
		}
		w.WriteHeader(h.codes[i])
		json.NewEncoder(w).Encode(&RunResponse{Error: http.StatusText(h.codes[i])})
		return
	}
	json.NewEncoder(w).Encode(&RunResponse{Output: "ok", Status: 0})
}

// TestIssueOneRetries429 honors Retry-After and then succeeds.
func TestIssueOneRetries429(t *testing.T) {
	h := &flakyRunHandler{codes: []int{429, 429}, retryAfter: "1"}
	ts := httptest.NewServer(h)
	defer ts.Close()

	spec := LoadSpec{BaseURL: ts.URL, MaxBackoff: 10 * time.Millisecond}
	var retries, retries503 atomic.Int64
	start := time.Now()
	_, resp, code, err := issueOne(context.Background(), http.DefaultClient, &spec,
		loadCell{workload: "sieve", machine: "branchreg"}, "", &retries, &retries503)
	if err != nil || code != 200 {
		t.Fatalf("issueOne: code=%d err=%v", code, err)
	}
	if resp.Output != "ok" {
		t.Errorf("output = %q", resp.Output)
	}
	if n := retries.Load(); n != 2 {
		t.Errorf("429 retries = %d, want 2", n)
	}
	// Retry-After of 1s was capped at MaxBackoff (10ms): the whole call
	// must finish far sooner than the 2s the header asked for.
	if el := time.Since(start); el > time.Second {
		t.Errorf("issueOne took %v: MaxBackoff did not cap Retry-After", el)
	}
}

// TestIssueOneRetries503WithinWindow: a draining server's 503s are
// retried, bounded by DrainRetryWindow.
func TestIssueOneRetries503WithinWindow(t *testing.T) {
	h := &flakyRunHandler{codes: []int{503, 503}}
	ts := httptest.NewServer(h)
	defer ts.Close()

	spec := LoadSpec{BaseURL: ts.URL, MaxBackoff: 5 * time.Millisecond, DrainRetryWindow: 5 * time.Second}
	var retries, retries503 atomic.Int64
	_, resp, code, err := issueOne(context.Background(), http.DefaultClient, &spec,
		loadCell{workload: "sieve", machine: "branchreg"}, "", &retries, &retries503)
	if err != nil || code != 200 {
		t.Fatalf("issueOne: code=%d err=%v", code, err)
	}
	if resp.Output != "ok" {
		t.Errorf("output = %q", resp.Output)
	}
	if n := retries503.Load(); n != 2 {
		t.Errorf("503 retries = %d, want 2", n)
	}
}

// TestIssueOne503WindowExpires: a server that never stops draining
// eventually fails the request instead of retrying forever.
func TestIssueOne503WindowExpires(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(200)
			return
		}
		w.WriteHeader(503)
		json.NewEncoder(w).Encode(&RunResponse{Error: "server is draining"})
	}))
	defer ts.Close()

	spec := LoadSpec{BaseURL: ts.URL, MaxBackoff: 2 * time.Millisecond, DrainRetryWindow: 30 * time.Millisecond}
	var retries, retries503 atomic.Int64
	_, _, code, err := issueOne(context.Background(), http.DefaultClient, &spec,
		loadCell{workload: "sieve", machine: "branchreg"}, "", &retries, &retries503)
	if err == nil || code != 503 {
		t.Fatalf("issueOne: code=%d err=%v, want a 503 failure after the window", code, err)
	}
	if retries503.Load() == 0 {
		t.Error("no 503 retries before giving up")
	}
}
