package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"branchreg/internal/guard"
	"branchreg/internal/obs"
)

// IncidentsReply mirrors the GET /v1/incidents body (declared in
// server.go); ChaosCheck decodes it when auditing a chaos run.

// ChaosCheck verifies that a brserve instance booted with a ChaosPlan
// actually exercised its supervision layer. It is the assertion half of
// `make chaos-smoke`: the load run proves every response stayed
// byte-correct; ChaosCheck proves that correctness was *supervised* —
// panics were injected, fallback rescued them, the breaker opened and
// closed again, and the shadow verifier never caught a divergence.
//
// It polls /metrics until every expected counter has moved (or timeout),
// issuing probe requests for the probe workload on both machines in
// between so the half-open breaker has traffic to close against, then
// audits /v1/incidents.
func ChaosCheck(ctx context.Context, baseURL, probeWorkload string, client *http.Client, timeout time.Duration) error {
	if client == nil {
		client = http.DefaultClient
	}
	if probeWorkload == "" {
		probeWorkload = "sieve"
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)

	want := []string{
		"serve.chaos.panics",     // the plan injected at least one failure
		"guard.fallback.success", // a lower tier rescued a panicked request
		"guard.breaker.open",     // consecutive failures opened a breaker
		"guard.breaker.close",    // and a half-open probe closed it again
	}
	var snap MetricsReply
	for {
		if err := getJSON(ctx, client, baseURL+"/metrics", &snap); err != nil {
			return fmt.Errorf("chaos-check: %w", err)
		}
		var missing []string
		for _, name := range want {
			if snap.Metrics.Counters[name] < 1 {
				missing = append(missing, name)
			}
		}
		if len(missing) == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos-check: timed out waiting for counters %s (snapshot: %v)",
				strings.Join(missing, ", "), snap.Metrics.Counters)
		}
		// Probe both machines so the target class sees fresh traffic:
		// an open breaker needs requests to half-open against, and a
		// closed one needs successes to stay closed.
		for _, machine := range []string{"baseline", "branchreg"} {
			if err := probeRun(ctx, client, baseURL, probeWorkload, machine); err != nil {
				return fmt.Errorf("chaos-check: probe %s/%s: %w", probeWorkload, machine, err)
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(150 * time.Millisecond):
		}
	}

	var inc IncidentsReply
	if err := getJSON(ctx, client, baseURL+"/v1/incidents", &inc); err != nil {
		return fmt.Errorf("chaos-check: %w", err)
	}
	byKind := map[guard.IncidentKind]int{}
	for _, in := range inc.Incidents {
		byKind[in.Kind]++
	}
	if byKind[guard.IncidentPanicFallback] == 0 {
		return fmt.Errorf("chaos-check: incident log has no %s entries (total %d)", guard.IncidentPanicFallback, inc.Total)
	}
	if byKind[guard.IncidentBreakerOpen] == 0 {
		return fmt.Errorf("chaos-check: incident log has no %s entries (total %d)", guard.IncidentBreakerOpen, inc.Total)
	}
	if n := byKind[guard.IncidentShadowMismatch]; n > 0 {
		return fmt.Errorf("chaos-check: %d shadow mismatches recorded — engines diverged under chaos", n)
	}

	// Finally, the flight recorder must tell the same story at request
	// granularity: at least one retained fallback-annotated request whose
	// full record — fetched by its X-Request-Id — shows both the tier
	// attempt the chaos plan panicked and the tier that rescued it.
	// Coalesced followers are skipped: they inherit the annotation but
	// their span trees record only the wait, not the execution.
	var flights DebugRequestsReply
	if err := getJSON(ctx, client, baseURL+"/v1/debug/requests", &flights); err != nil {
		return fmt.Errorf("chaos-check: %w", err)
	}
	var fallbackID string
	for _, rec := range flights.Requests {
		if len(rec.FallbackFrom) > 0 && !rec.Coalesced {
			fallbackID = rec.ID
			break
		}
	}
	if fallbackID == "" {
		return fmt.Errorf("chaos-check: flight recorder retained no fallback-annotated request (%d retained of %d offered)",
			flights.Retained, flights.Offered)
	}
	var rec obs.RequestRecord
	if err := getJSON(ctx, client, baseURL+"/v1/debug/requests/"+fallbackID, &rec); err != nil {
		return fmt.Errorf("chaos-check: %w", err)
	}
	if rec.Engine == "" {
		return fmt.Errorf("chaos-check: flight record %s names no serving engine", rec.ID)
	}
	var sawPanic, sawServed bool
	for _, sp := range rec.Spans {
		if !strings.HasPrefix(sp.Name, "tier:") {
			continue
		}
		switch sp.Args["outcome"] {
		case "panic":
			sawPanic = true
		case "ok":
			sawServed = true
		}
	}
	if !sawPanic || !sawServed {
		return fmt.Errorf("chaos-check: flight record %s has %d spans but panicked-tier=%v serving-tier=%v; want both",
			rec.ID, len(rec.Spans), sawPanic, sawServed)
	}
	return nil
}

// probeRun issues one workload request and drains the response; any
// HTTP status is acceptable (an open breaker may reroute, a full queue
// may 429) — the probe exists to generate class traffic, not to assert.
func probeRun(ctx context.Context, client *http.Client, base, workload, machine string) error {
	body, err := json.Marshal(&RunRequest{Workload: workload, Machine: machine})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	hr, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, hr.Body)
	return hr.Body.Close()
}

// getJSON fetches url and decodes the 200 body into out.
func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	hr, err := client.Do(req)
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	raw, err := io.ReadAll(hr.Body)
	if err != nil {
		return err
	}
	if hr.StatusCode != 200 {
		return fmt.Errorf("GET %s: HTTP %d: %s", url, hr.StatusCode, raw)
	}
	return json.Unmarshal(raw, out)
}
