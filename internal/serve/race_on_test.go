//go:build race

package serve

// raceEnabled: see race_off_test.go.
const raceEnabled = true
