package serve

import (
	"context"
	"fmt"
	"sync"

	"branchreg/internal/driver"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

// DifferentialOracle verifies served responses against local
// driver.Exec runs of the same workloads: output, exit status, and
// instruction count must match exactly. Expected results are computed
// once per (workload, machine) cell and shared across clients, so a
// 64-client load run pays for 38 local executions, not thousands.
type DifferentialOracle struct {
	cache *driver.Cache
	mu    sync.Mutex
	cells map[string]*oracleCell
}

type oracleCell struct {
	once sync.Once
	res  *driver.Result
	err  error
}

// NewDifferentialOracle returns an oracle with an empty expectation set.
// Its local driver.Cache carries its own bounded result cache: the
// per-cell sync.Once already deduplicates within one oracle, but the
// result cache survives cell-map churn and lets an oracle reused across
// load samples (benchrecord's best-of-N) answer reference runs from
// memory instead of re-emulating.
func NewDifferentialOracle() *DifferentialOracle {
	c := driver.NewCache()
	c.SetResultCache(driver.NewResultCache(16 << 20))
	return &DifferentialOracle{cache: c, cells: map[string]*oracleCell{}}
}

// Verify is a LoadSpec.Verify callback.
func (o *DifferentialOracle) Verify(workload, machine string, resp *RunResponse) error {
	want, err := o.expected(workload, machine)
	if err != nil {
		return fmt.Errorf("oracle run failed: %w", err)
	}
	if resp.Output != want.Output {
		return fmt.Errorf("output diverges from driver.Exec (%d bytes vs %d)",
			len(resp.Output), len(want.Output))
	}
	if resp.Status != want.Status {
		return fmt.Errorf("status %d diverges from driver.Exec status %d", resp.Status, want.Status)
	}
	if resp.Instructions != want.Stats.Instructions {
		return fmt.Errorf("instruction count %d diverges from driver.Exec count %d",
			resp.Instructions, want.Stats.Instructions)
	}
	return nil
}

// expected runs (workload, machine) locally, once.
func (o *DifferentialOracle) expected(workload, machine string) (*driver.Result, error) {
	key := workload + "/" + machine
	o.mu.Lock()
	c, ok := o.cells[key]
	if !ok {
		c = &oracleCell{}
		o.cells[key] = c
	}
	o.mu.Unlock()
	c.once.Do(func() {
		w, ok := workloads.ByName(workload)
		if !ok {
			c.err = fmt.Errorf("unknown workload %q", workload)
			return
		}
		var kind isa.Kind
		if kind, c.err = parseMachine(machine); c.err != nil {
			return
		}
		c.res, c.err = o.cache.Exec(context.Background(), driver.Request{
			Source: w.FullSource(), Kind: kind, Input: w.Input,
			Options: driver.DefaultOptions(), OutputHint: w.OutputHint,
		})
	})
	return c.res, c.err
}
