package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

// LoadSpec configures one load-generation run against a brserve
// endpoint: Clients concurrent workers sweep the built-in workload
// suite on both machines, round-robin, until Requests successful
// responses have been collected. 429 answers are retried with backoff
// and counted, not failed.
type LoadSpec struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// Clients is the number of concurrent requesters (default 8).
	Clients int
	// Requests is the total number of successful responses to collect
	// across all clients (default 2 × the workload matrix).
	Requests int
	// Machines restricts the sweep (default: baseline and branchreg).
	Machines []string
	// Tenant is sent on every request.
	Tenant string
	// Verify, when set, is called with every 200 response; an error
	// counts as a failure. Use it for the differential oracle.
	Verify func(workload, machine string, resp *RunResponse) error
	// Client overrides the HTTP client (default: http.DefaultClient).
	Client *http.Client
	// MaxBackoff caps one 429/503 retry sleep (default 1s). Benchmarks
	// set it low (~20ms): honoring a server's full Retry-After would
	// measure the backoff policy, not the server's saturation throughput.
	MaxBackoff time.Duration
	// DrainRetryWindow bounds how long a client keeps retrying 503s
	// (a draining or restarting server) before failing the request
	// (default 5s).
	DrainRetryWindow time.Duration
	// TracePropagate sends a brload-generated X-Request-Id on every
	// request and fails any response that does not echo it (header and
	// body). Successful responses' server-reported phase timings are
	// additionally aggregated into LoadResult.Phases, so a load run ends
	// with a queue/compile/run decomposition of its latency.
	TracePropagate bool
}

// LoadFailure records one failed request for diagnosis.
type LoadFailure struct {
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	Code     int    `json:"code,omitempty"`
	Err      string `json:"err"`
}

// LoadResult aggregates one load run.
type LoadResult struct {
	Requests   int `json:"requests"`
	Errors     int `json:"errors"`
	Server5xx  int `json:"server_5xx"`
	Retries429 int `json:"retries_429"`
	Retries503 int `json:"retries_503"`
	Coalesced  int `json:"coalesced"`
	// Cached counts successful responses the server answered from its
	// deterministic result cache (response `cached: true`) — the warm
	// fraction of the run.
	Cached    int     `json:"cached"`
	P50NS     int64   `json:"p50_ns"`
	P99NS     int64   `json:"p99_ns"`
	WallNS    int64   `json:"wall_ns"`
	ReqPerSec float64 `json:"req_s"`
	// Engines counts the verified successful responses by the engine
	// tier that served them ("adaptive", "fused", "fast", ...), so a
	// load run records which tiers actually carried the traffic — a
	// run rescued mostly by fallback tiers is a different result than
	// one served by the chain head, even at the same throughput.
	Engines map[string]int `json:"engines,omitempty"`
	// Failures holds the first few failed requests (capped) so a failing
	// run is diagnosable from the result alone.
	Failures []LoadFailure `json:"failures,omitempty"`
	// Phases holds p50/p99 of the server-reported per-phase timings of
	// successful responses, keyed "queue", "compile", "run", "total".
	// Filled only when TracePropagate is set.
	Phases map[string]PhaseStats `json:"phases,omitempty"`
}

// PhaseStats summarizes one request phase's server-reported wall clock.
type PhaseStats struct {
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
}

// loadCell is one (workload, machine) matrix cell.
type loadCell struct {
	workload string
	machine  string
}

// loadMatrix builds the request matrix for a spec.
func loadMatrix(spec *LoadSpec) []loadCell {
	machines := spec.Machines
	if len(machines) == 0 {
		machines = []string{isa.Baseline.String(), isa.BranchReg.String()}
	}
	var cells []loadCell
	for _, w := range workloads.All() {
		for _, m := range machines {
			cells = append(cells, loadCell{workload: w.Name, machine: m})
		}
	}
	return cells
}

// RunLoad drives the load described by spec and aggregates latencies.
// It returns an error only for setup problems (an unreachable server);
// request-level failures are reported in the result.
func RunLoad(ctx context.Context, spec LoadSpec) (*LoadResult, error) {
	if spec.Clients <= 0 {
		spec.Clients = 8
	}
	cells := loadMatrix(&spec)
	if spec.Requests <= 0 {
		spec.Requests = 2 * len(cells)
	}
	client := spec.Client
	if client == nil {
		client = http.DefaultClient
	}

	// Fail fast if the server is not there at all.
	hc, err := client.Get(spec.BaseURL + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("serve: load target unreachable: %w", err)
	}
	io.Copy(io.Discard, hc.Body)
	hc.Body.Close()

	var (
		next       atomic.Int64 // next matrix index to issue
		done       atomic.Int64 // successful responses collected
		retries    atomic.Int64
		retries503 atomic.Int64
		coalesced  atomic.Int64
		cached     atomic.Int64
		server5xx  atomic.Int64

		mu        sync.Mutex
		latencies []int64
		failures  []LoadFailure
		engines   = map[string]int{}
		phases    = map[string][]int64{}
	)
	// The run ID namespaces this run's propagated request IDs, so two
	// concurrent brload runs against one server stay distinguishable in
	// its flight recorder.
	runID := strconv.FormatUint(rand.Uint64(), 16)
	const maxFailures = 16
	fail := func(c loadCell, code int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < maxFailures {
			failures = append(failures, LoadFailure{Workload: c.workload, Machine: c.machine, Code: code, Err: err.Error()})
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errCount := atomic.Int64{}
	for g := 0; g < spec.Clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := next.Add(1) - 1
				if int(i) >= spec.Requests {
					return
				}
				c := cells[int(i)%len(cells)]
				var reqID string
				if spec.TracePropagate {
					reqID = fmt.Sprintf("brload-%s-%d", runID, i)
				}
				lat, resp, code, err := issueOne(ctx, client, &spec, c, reqID, &retries, &retries503)
				if err != nil {
					errCount.Add(1)
					if code >= 500 {
						server5xx.Add(1)
					}
					fail(c, code, err)
					done.Add(1)
					continue
				}
				if resp.Coalesced {
					coalesced.Add(1)
				}
				if resp.Cached {
					cached.Add(1)
				}
				if spec.Verify != nil {
					if verr := spec.Verify(c.workload, c.machine, resp); verr != nil {
						errCount.Add(1)
						fail(c, code, verr)
						done.Add(1)
						continue
					}
				}
				mu.Lock()
				latencies = append(latencies, lat)
				if resp.Engine != "" {
					engines[resp.Engine]++
				}
				if spec.TracePropagate && resp.Timing != nil {
					phases["queue"] = append(phases["queue"], resp.Timing.QueueNS)
					phases["compile"] = append(phases["compile"], resp.Timing.CompileNS)
					phases["run"] = append(phases["run"], resp.Timing.RunNS)
					phases["total"] = append(phases["total"], resp.Timing.TotalNS)
				}
				mu.Unlock()
				done.Add(1)
			}
		}()
	}
	wg.Wait()

	res := &LoadResult{
		Requests:   int(done.Load()),
		Errors:     int(errCount.Load()),
		Server5xx:  int(server5xx.Load()),
		Retries429: int(retries.Load()),
		Retries503: int(retries503.Load()),
		Coalesced:  int(coalesced.Load()),
		Cached:     int(cached.Load()),
		WallNS:     time.Since(start).Nanoseconds(),
		Engines:    engines,
		Failures:   failures,
	}
	if res.WallNS > 0 {
		res.ReqPerSec = float64(res.Requests) / (float64(res.WallNS) / 1e9)
	}
	res.P50NS, res.P99NS = percentiles(latencies)
	if len(phases) > 0 {
		res.Phases = map[string]PhaseStats{}
		for name, ns := range phases {
			p50, p99 := percentiles(ns)
			res.Phases[name] = PhaseStats{P50NS: p50, P99NS: p99}
		}
	}
	return res, ctx.Err()
}

// backoffFor computes the sleep before the next retry: the server's
// Retry-After when it sent one (whole seconds, per RFC 9110), else
// linear 5ms steps by attempt; either way capped at max and jittered
// into [d/2, d) so a fleet of retrying clients desynchronizes instead
// of stampeding the server on the same beat.
func backoffFor(attempt int, retryAfter string, cap time.Duration) time.Duration {
	d := time.Duration(min(attempt+1, 20)) * 5 * time.Millisecond
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); retryAfter != "" && err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if cap <= 0 {
		cap = time.Second
	}
	d = min(max(d, 2*time.Millisecond), cap)
	half := d / 2
	return half + rand.N(half)
}

// issueOne posts one workload run, retrying 429s (jittered backoff,
// honoring Retry-After) and — within spec.DrainRetryWindow — 503s from
// a draining server. The returned latency covers the final successful
// attempt only. A non-empty reqID is sent as X-Request-Id (retried
// attempts reuse it — the server's flight recorder keeps the newest),
// and a success that fails to echo it is an error.
func issueOne(ctx context.Context, client *http.Client, spec *LoadSpec, c loadCell, reqID string, retries, retries503 *atomic.Int64) (int64, *RunResponse, int, error) {
	body, err := json.Marshal(&RunRequest{Workload: c.workload, Machine: c.machine, Tenant: spec.Tenant})
	if err != nil {
		return 0, nil, 0, err
	}
	drainWindow := spec.DrainRetryWindow
	if drainWindow <= 0 {
		drainWindow = 5 * time.Second
	}
	var drainDeadline time.Time // set on the first 503 seen
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, "POST", spec.BaseURL+"/v1/run", bytes.NewReader(body))
		if err != nil {
			return 0, nil, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		if reqID != "" {
			req.Header.Set("X-Request-Id", reqID)
		}
		t0 := time.Now()
		hr, err := client.Do(req)
		if err != nil {
			return 0, nil, 0, err
		}
		lat := time.Since(t0).Nanoseconds()
		raw, err := io.ReadAll(hr.Body)
		hr.Body.Close()
		if err != nil {
			return 0, nil, hr.StatusCode, err
		}
		retryable := hr.StatusCode == 429
		if hr.StatusCode == 503 {
			now := time.Now()
			if drainDeadline.IsZero() {
				drainDeadline = now.Add(drainWindow)
			}
			retryable = now.Before(drainDeadline)
		}
		if retryable {
			if hr.StatusCode == 429 {
				retries.Add(1)
			} else {
				retries503.Add(1)
			}
			select {
			case <-ctx.Done():
				return 0, nil, hr.StatusCode, ctx.Err()
			case <-time.After(backoffFor(attempt, hr.Header.Get("Retry-After"), spec.MaxBackoff)):
			}
			continue
		}
		var resp RunResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			return 0, nil, hr.StatusCode, fmt.Errorf("bad response body (HTTP %d): %w", hr.StatusCode, err)
		}
		if hr.StatusCode != 200 {
			return 0, nil, hr.StatusCode, fmt.Errorf("HTTP %d: %s", hr.StatusCode, resp.Error)
		}
		if resp.Trap != nil {
			return 0, nil, hr.StatusCode, fmt.Errorf("unexpected trap: %v", resp.Trap)
		}
		if reqID != "" {
			if got := hr.Header.Get("X-Request-Id"); got != reqID {
				return 0, nil, hr.StatusCode, fmt.Errorf("X-Request-Id header %q does not echo sent %q", got, reqID)
			}
			if resp.RequestID != reqID {
				return 0, nil, hr.StatusCode, fmt.Errorf("response request_id %q does not echo sent %q", resp.RequestID, reqID)
			}
		}
		return lat, &resp, hr.StatusCode, nil
	}
}

// percentiles returns the p50 and p99 of the sample set (0,0 if empty).
func percentiles(ns []int64) (p50, p99 int64) {
	if len(ns) == 0 {
		return 0, 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(ns)-1))
		return ns[i]
	}
	return at(0.50), at(0.99)
}
