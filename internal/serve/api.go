// Package serve is the multi-tenant compile-and-run service: an HTTP/JSON
// front end over the unified driver.Request API. One POST carries MC
// source (or a named suite workload), a target machine, compile options,
// stdin, an engine selection, and a step budget; the response carries the
// program's output, dynamic stats, fusion and engine metadata, any typed
// trap, and where the request's wall clock went (queue, compile, run).
//
// The server adds what a long-running service needs on top of driver.Exec:
// worker-sharded admission with bounded queues and 429 backpressure,
// coalescing of identical in-flight requests (keyed on
// driver.Request.Fingerprint), per-tenant step budgets enforced through
// the emulator's TrapStepBudget machinery, /metrics and /healthz backed by
// internal/obs, and graceful drain for SIGTERM handling. loadgen.go holds
// the load-generator core shared by cmd/brload and benchrecord -serve.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

// RunRequest is the POST /v1/run request body.
type RunRequest struct {
	// Source is the MC program to compile and run. Mutually exclusive
	// with Workload.
	Source string `json:"source,omitempty"`
	// Workload names a program from the built-in 19-workload suite; its
	// source, canonical input, and output hint are filled in server-side.
	Workload string `json:"workload,omitempty"`
	// Machine selects the target: "baseline" or "branchreg" (aliases
	// "brm", "bq"); empty means "branchreg".
	Machine string `json:"machine,omitempty"`
	// Input overrides the program's stdin. For a Workload request a nil
	// Input keeps the workload's canonical input; an explicit empty
	// string clears it.
	Input *string `json:"input,omitempty"`
	// Engine selects the emulator loop: "auto" (default), "adaptive",
	// "fused", "fast", or "step".
	Engine string `json:"engine,omitempty"`
	// Tenant names the caller for per-tenant step-budget caps.
	Tenant string `json:"tenant,omitempty"`
	// StepBudget bounds the run's instruction count. Zero asks for the
	// server default; the effective budget is clamped to the tenant's cap.
	StepBudget int64 `json:"step_budget,omitempty"`
	// NoCache bypasses the deterministic result cache for this request:
	// the response comes from a fresh execution even when an identical
	// request's result is memoized. Escape hatch for benchmarking and
	// debugging — it cannot change the bytes of a correct response.
	NoCache bool `json:"no_cache,omitempty"`
	// Options overrides individual compile options over the defaults.
	Options *OptionsSpec `json:"options,omitempty"`
}

// OptionsSpec is the JSON form of driver.Options: every field is a
// pointer, nil meaning "keep the default". It deliberately exposes the
// knobs the paper's experiments sweep.
type OptionsSpec struct {
	AlignWords   *int  `json:"align_words,omitempty"`
	BranchRegs   *int  `json:"branch_regs,omitempty"`
	FastCompare  *bool `json:"fast_compare,omitempty"`
	Hoist        *bool `json:"hoist,omitempty"`
	ReplaceNoops *bool `json:"replace_noops,omitempty"`
	Schedule     *bool `json:"schedule,omitempty"`
	LICM         *bool `json:"licm,omitempty"`
}

// apply overlays the non-nil fields on o.
func (s *OptionsSpec) apply(o *driver.Options) {
	if s == nil {
		return
	}
	if s.AlignWords != nil {
		o.AlignWords = *s.AlignWords
	}
	if s.BranchRegs != nil {
		o.BRM.BranchRegs = *s.BranchRegs
	}
	if s.FastCompare != nil {
		o.BRM.FastCompare = *s.FastCompare
	}
	if s.Hoist != nil {
		o.BRM.Hoist = *s.Hoist
	}
	if s.ReplaceNoops != nil {
		o.BRM.ReplaceNoops = *s.ReplaceNoops
	}
	if s.Schedule != nil {
		o.BRM.Schedule = *s.Schedule
	}
	if s.LICM != nil {
		o.Opt.LICM = *s.LICM
	}
}

// Timing is the response's wall-clock breakdown in nanoseconds.
type Timing struct {
	QueueNS   int64 `json:"queue_ns"`
	CompileNS int64 `json:"compile_ns"`
	RunNS     int64 `json:"run_ns"`
	TotalNS   int64 `json:"total_ns"`
}

// RunResponse is the POST /v1/run response body. Exactly one of Output
// (with Status), Trap, or Error carries the outcome: a clean run returns
// 200 with Output; a runtime trap returns 200 (or 422 for a step-budget
// trap) with Trap set; a compile or validation failure returns 4xx with
// Error set.
type RunResponse struct {
	// RequestID is the request's X-Request-Id (generated at admission or
	// echoed from the caller) — the key into GET /v1/debug/requests/{id}.
	RequestID string           `json:"request_id,omitempty"`
	Output    string           `json:"output,omitempty"`
	Status    int32            `json:"status"`
	Machine   string           `json:"machine,omitempty"`
	Engine    string           `json:"engine,omitempty"`
	Fusion    *emu.FusionStats `json:"fusion,omitempty"`
	// Refusion reports the adaptive tier's promotion state for this
	// program: whether its hot region has been re-fused with a mined
	// per-workload vocabulary, and the resulting block/vocabulary mix.
	Refusion     *emu.RefusionStats `json:"refusion,omitempty"`
	Instructions int64              `json:"instructions,omitempty"`
	Transfers    int64              `json:"transfers,omitempty"`
	DataRefs     int64              `json:"data_refs,omitempty"`
	Trap         *emu.Trap          `json:"trap,omitempty"`
	Error        string             `json:"error,omitempty"`
	// Coalesced marks a response served from another identical in-flight
	// request's execution.
	Coalesced bool `json:"coalesced,omitempty"`
	// Cached marks a response served from the deterministic result
	// cache: byte-identical to the execution that populated it, but no
	// emulation ran for this request.
	Cached bool    `json:"cached,omitempty"`
	Timing *Timing `json:"timing,omitempty"`
	// FallbackFrom lists engine tiers that faulted before the tier in
	// Engine served this response (the guard supervision layer's
	// annotation): a fused-engine panic rescued by the fast loop reports
	// Engine "fast" and FallbackFrom ["fused"].
	FallbackFrom []string `json:"fallback_from,omitempty"`
	// Rerouted marks a response whose preferred engine was skipped
	// because its circuit breaker had quarantined the workload class.
	Rerouted bool `json:"rerouted,omitempty"`
}

// WorkloadInfo is one element of the GET /v1/workloads listing.
type WorkloadInfo struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Description string `json:"description"`
}

// httpError carries a status code out of request building.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: 400, msg: fmt.Sprintf(format, args...)}
}

// parseMachine maps the wire name to an isa.Kind.
func parseMachine(s string) (isa.Kind, error) {
	switch s {
	case "", "branchreg", "brm":
		return isa.BranchReg, nil
	case "baseline":
		return isa.Baseline, nil
	}
	return 0, badRequest("unknown machine %q (want baseline or branchreg)", s)
}

// parseEngine maps the wire name to an emulator loop mode.
func parseEngine(s string) (emu.LoopMode, error) {
	switch s {
	case "", "auto":
		return emu.LoopAuto, nil
	case "adaptive":
		return emu.LoopAdaptive, nil
	case "fused":
		return emu.LoopFused, nil
	case "fast":
		return emu.LoopFast, nil
	case "step", "instrumented":
		return emu.LoopInstrumented, nil
	}
	return 0, badRequest("unknown engine %q (want auto, adaptive, fused, fast, or step)", s)
}

// buildRequest translates the wire request into a driver.Request plus
// its workload class — the label the guard supervision layer keys
// circuit breakers and shadow sampling on ("sieve/branchreg" for suite
// workloads, "src:<hash>/baseline" for raw source). Errors are
// *httpError values carrying the status to return.
func (s *Server) buildRequest(rr *RunRequest) (driver.Request, string, error) {
	req := driver.Request{Options: driver.DefaultOptions()}
	var classProg string
	switch {
	case rr.Source != "" && rr.Workload != "":
		return req, "", badRequest("source and workload are mutually exclusive")
	case rr.Workload != "":
		w, ok := workloads.ByName(rr.Workload)
		if !ok {
			return req, "", badRequest("unknown workload %q", rr.Workload)
		}
		req.Source = w.FullSource()
		req.Input = w.Input
		req.OutputHint = w.OutputHint
		classProg = w.Name
	case rr.Source != "":
		req.Source = rr.Source
		sum := sha256.Sum256([]byte(rr.Source))
		classProg = "src:" + hex.EncodeToString(sum[:4])
	default:
		return req, "", badRequest("request needs source or workload")
	}
	if max := s.cfg.MaxSourceBytes; max > 0 && len(req.Source) > max {
		return req, "", &httpError{code: 413, msg: fmt.Sprintf("source is %d bytes, limit %d", len(req.Source), max)}
	}
	if rr.Input != nil {
		req.Input = *rr.Input
	}
	var err error
	if req.Kind, err = parseMachine(rr.Machine); err != nil {
		return req, "", err
	}
	if req.Loop, err = parseEngine(rr.Engine); err != nil {
		return req, "", err
	}
	rr.Options.apply(&req.Options)
	if rr.StepBudget < 0 {
		return req, "", badRequest("step_budget must be >= 0, got %d", rr.StepBudget)
	}
	budget := rr.StepBudget
	if budget == 0 {
		budget = s.cfg.DefaultStepBudget
	}
	if cap := s.tenantCap(rr.Tenant); cap > 0 && (budget == 0 || budget > cap) {
		budget = cap
	}
	req.MaxInstructions = budget
	req.NoCache = rr.NoCache
	return req, classProg + "/" + req.Kind.String(), nil
}

// tenantCap returns the step-budget ceiling for a tenant: its entry in
// TenantBudgets if present, else the global MaxStepBudget (0 = uncapped).
func (s *Server) tenantCap(tenant string) int64 {
	if cap, ok := s.cfg.TenantBudgets[tenant]; ok {
		return cap
	}
	return s.cfg.MaxStepBudget
}
