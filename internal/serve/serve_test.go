package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/obs"
	"branchreg/internal/workloads"
)

// newTestServer builds a server on a private metrics registry (so
// counter assertions are deterministic under `go test ./...`) and an
// httptest front end, tearing both down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

// post sends one RunRequest and decodes the reply.
func post(t *testing.T, url string, rr *RunRequest) (int, *RunResponse) {
	t.Helper()
	body, err := json.Marshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp RunResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decode (HTTP %d): %v", hr.StatusCode, err)
	}
	return hr.StatusCode, &resp
}

// TestServeTable drives the request-shaped cases through one server:
// happy path on both machines, bad input variants, a compile error, a
// runtime trap, and the step-budget 4xx (explicit and tenant-clamped).
func TestServeTable(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:       4,
		TenantBudgets: map[string]int64{"small": 10_000},
	})

	w, _ := workloads.ByName("sieve")
	want, err := driver.Exec(context.Background(), driver.Request{
		Source: w.FullSource(), Kind: isa.BranchReg, Input: w.Input,
		Options: driver.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		req      RunRequest
		code     int
		check    func(t *testing.T, resp *RunResponse)
		errLike  string
		trapKind emu.TrapKind
	}{
		{
			name: "happy-workload-brm",
			req:  RunRequest{Workload: "sieve"},
			code: 200,
			check: func(t *testing.T, resp *RunResponse) {
				if resp.Output != want.Output || resp.Status != want.Status {
					t.Errorf("served output diverges from driver.Exec: %q/%d vs %q/%d",
						resp.Output, resp.Status, want.Output, want.Status)
				}
				if resp.Machine != "branchreg" || resp.Engine != emu.EngineAdaptive {
					t.Errorf("machine/engine = %q/%q", resp.Machine, resp.Engine)
				}
				// Sieve's hot blocks cross the default promotion threshold
				// mid-run, so even a cold first request reports a re-fused
				// hot region.
				if resp.Refusion == nil || !resp.Refusion.Promoted {
					t.Errorf("adaptive run did not promote: %+v", resp.Refusion)
				}
				if resp.Fusion == nil || resp.Fusion.Blocks == 0 {
					t.Errorf("promoted run reported no fusion stats: %+v", resp.Fusion)
				}
				if resp.Instructions != want.Stats.Instructions {
					t.Errorf("instructions = %d, want %d", resp.Instructions, want.Stats.Instructions)
				}
				if resp.Timing == nil || resp.Timing.RunNS <= 0 || resp.Timing.TotalNS <= 0 {
					t.Errorf("timing not filled: %+v", resp.Timing)
				}
			},
		},
		{
			name: "happy-source-baseline",
			req: RunRequest{
				Source:  "int main(void) { return 41 + 1; }",
				Machine: "baseline",
				Engine:  "step",
			},
			code: 200,
			check: func(t *testing.T, resp *RunResponse) {
				if resp.Status != 42 || resp.Machine != "baseline" || resp.Engine != emu.EngineInstrumented {
					t.Errorf("got status %d machine %q engine %q", resp.Status, resp.Machine, resp.Engine)
				}
			},
		},
		{
			name:    "compile-error",
			req:     RunRequest{Source: "int main(void) { return undeclared; }"},
			code:    400,
			errLike: "undeclared",
		},
		{
			name:    "empty-request",
			req:     RunRequest{},
			code:    400,
			errLike: "source or workload",
		},
		{
			name:    "both-source-and-workload",
			req:     RunRequest{Source: "int main(void){return 0;}", Workload: "sieve"},
			code:    400,
			errLike: "mutually exclusive",
		},
		{
			name:    "unknown-workload",
			req:     RunRequest{Workload: "doom"},
			code:    400,
			errLike: "unknown workload",
		},
		{
			name:    "unknown-machine",
			req:     RunRequest{Workload: "sieve", Machine: "vax"},
			code:    400,
			errLike: "unknown machine",
		},
		{
			name:    "bad-options",
			req:     RunRequest{Workload: "sieve", Options: &OptionsSpec{BranchRegs: intp(99)}},
			code:    400,
			errLike: "BranchRegs",
		},
		{
			name:     "runtime-trap-is-data",
			req:      RunRequest{Source: "int main(void) { int z = 0; return 7 / z; }"},
			code:     200,
			trapKind: emu.TrapArithmetic,
		},
		{
			name:     "explicit-step-budget-4xx",
			req:      RunRequest{Workload: "sieve", StepBudget: 1000},
			code:     422,
			trapKind: emu.TrapStepBudget,
			check: func(t *testing.T, resp *RunResponse) {
				if resp.Trap.Limit != 1000 {
					t.Errorf("trap limit = %d, want 1000", resp.Trap.Limit)
				}
			},
		},
		{
			name:     "tenant-budget-clamped-4xx",
			req:      RunRequest{Workload: "sieve", Tenant: "small"},
			code:     422,
			trapKind: emu.TrapStepBudget,
			check: func(t *testing.T, resp *RunResponse) {
				if resp.Trap.Limit != 10_000 {
					t.Errorf("trap limit = %d, want the tenant cap 10000", resp.Trap.Limit)
				}
			},
		},
		{
			name: "tenant-budget-allows-small-runs",
			req:  RunRequest{Source: "int main(void) { return 3; }", Tenant: "small"},
			code: 200,
			check: func(t *testing.T, resp *RunResponse) {
				if resp.Status != 3 {
					t.Errorf("status = %d, want 3", resp.Status)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, resp := post(t, ts.URL, &tc.req)
			if code != tc.code {
				t.Fatalf("HTTP %d, want %d (resp %+v)", code, tc.code, resp)
			}
			if tc.errLike != "" && !strings.Contains(resp.Error, tc.errLike) {
				t.Errorf("error %q does not mention %q", resp.Error, tc.errLike)
			}
			if tc.trapKind != emu.TrapNone {
				if resp.Trap == nil || resp.Trap.Kind != tc.trapKind {
					t.Fatalf("trap = %+v, want kind %v", resp.Trap, tc.trapKind)
				}
			}
			if tc.check != nil {
				tc.check(t, resp)
			}
		})
	}
}

func intp(v int) *int { return &v }

// TestServeQueueFull pins down the backpressure contract: with one
// gated worker and a one-slot queue, the third distinct request gets a
// 429 with Retry-After, and the first two still finish once the worker
// is released.
func TestServeQueueFull(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 1, Shards: 1, QueueDepth: 1, Metrics: reg})
	s.gate = make(chan struct{})
	sh := s.shards[0]

	type reply struct {
		code int
		resp *RunResponse
	}
	replies := make(chan reply, 2)
	fire := func(workload string) {
		go func() {
			body, _ := json.Marshal(&RunRequest{Workload: workload})
			hr, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				replies <- reply{}
				return
			}
			defer hr.Body.Close()
			var resp RunResponse
			json.NewDecoder(hr.Body).Decode(&resp)
			replies <- reply{code: hr.StatusCode, resp: &resp}
		}()
	}
	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// First request: dequeued by the worker, which then blocks on the
	// gate; the queue is empty again but the worker is busy.
	fire("sieve")
	waitFor("worker to pick up the first job", func() bool {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return len(sh.inflight) == 1 && len(sh.queue) == 0
	})
	// Second request fills the one-slot queue.
	fire("wc")
	waitFor("second job to queue", func() bool {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return len(sh.queue) == 1
	})
	if n := reg.Gauge("serve.queue.depth.0").Value(); n != 1 {
		t.Errorf("serve.queue.depth.0 = %d with one queued job, want 1", n)
	}
	// Third distinct request finds the queue full.
	code, resp := post(t, ts.URL, &RunRequest{Workload: "grep"})
	if code != 429 {
		t.Fatalf("third request: HTTP %d, want 429 (resp %+v)", code, resp)
	}
	if n := reg.Counter("serve.rejected.queue_full").Value(); n != 1 {
		t.Errorf("queue-full counter = %d, want 1", n)
	}

	// Release the worker: both admitted jobs must complete cleanly.
	close(s.gate)
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.code != 200 {
			t.Errorf("admitted request finished with HTTP %d: %+v", r.code, r.resp)
		}
	}
}

// TestRetryAfterHint pins the load-scaled backpressure hint: depth ×
// EWMA job duration across the shard's workers, clamped to [1, 30]
// whole seconds, with the constant 1 before any sample exists.
func TestRetryAfterHint(t *testing.T) {
	s := &Server{workersPerShard: 2}
	if got := s.retryAfterHint(8); got != "1" {
		t.Errorf("hint with no samples = %q, want 1", got)
	}
	s.ewmaNS.Store(int64(500 * time.Millisecond))
	// 8 queued × 0.5s / 2 workers = 2s to drain.
	if got := s.retryAfterHint(8); got != "2" {
		t.Errorf("hint(depth 8, ewma 500ms, 2 workers) = %q, want 2", got)
	}
	// Sub-second drain still answers at least 1.
	if got := s.retryAfterHint(1); got != "1" {
		t.Errorf("hint(depth 1) = %q, want 1", got)
	}
	// A pathological backlog is clamped, not reported verbatim.
	s.ewmaNS.Store(int64(20 * time.Second))
	if got := s.retryAfterHint(64); got != "30" {
		t.Errorf("hint(huge backlog) = %q, want the 30s clamp", got)
	}
}

// TestObserveJobDuration: first sample seeds the EWMA, later samples
// move it by 1/8 of the difference.
func TestObserveJobDuration(t *testing.T) {
	s := &Server{}
	s.observeJobDuration(800)
	if got := s.ewmaNS.Load(); got != 800 {
		t.Fatalf("seed sample: ewma = %d, want 800", got)
	}
	s.observeJobDuration(1600)
	if got := s.ewmaNS.Load(); got != 900 {
		t.Fatalf("second sample: ewma = %d, want 900 (800 + (1600-800)/8)", got)
	}
}

// TestServeCoalescing pins down the duplicate-suppression contract:
// two identical requests in flight share one execution (one cache miss,
// one driver run), and exactly one response is marked coalesced.
func TestServeCoalescing(t *testing.T) {
	reg := obs.NewRegistry()
	cache := driver.NewCache()
	s, ts := newTestServer(t, Config{Workers: 2, Shards: 1, QueueDepth: 8, Cache: cache, Metrics: reg})
	s.gate = make(chan struct{})
	sh := s.shards[0]

	var wg sync.WaitGroup
	codes := make([]int, 2)
	resps := make([]*RunResponse, 2)
	fire := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(&RunRequest{Workload: "puzzle"})
			hr, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer hr.Body.Close()
			resps[i] = &RunResponse{}
			json.NewDecoder(hr.Body).Decode(resps[i])
			codes[i] = hr.StatusCode
		}()
	}
	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(time.Millisecond)
		}
	}

	fire(0)
	waitFor("first request to be admitted", func() bool {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return len(sh.inflight) == 1
	})
	fire(1)
	waitFor("second request to coalesce", func() bool {
		return reg.Counter("serve.coalesced").Value() == 1
	})
	close(s.gate)
	wg.Wait()

	if codes[0] != 200 || codes[1] != 200 {
		t.Fatalf("codes = %v, want two 200s", codes)
	}
	if resps[0].Output == "" || resps[0].Output != resps[1].Output {
		t.Fatalf("coalesced outputs diverge: %q vs %q", resps[0].Output, resps[1].Output)
	}
	if resps[0].Coalesced == resps[1].Coalesced {
		t.Errorf("exactly one response must be marked coalesced: %v / %v",
			resps[0].Coalesced, resps[1].Coalesced)
	}
	stats := cache.Stats()
	if stats.Misses != 1 {
		t.Errorf("cache misses = %d, want 1 (one shared compile)", stats.Misses)
	}
	// The coalescing happened at the admission layer, not the compile
	// cache: one execution total, so the cache saw exactly one request.
	if stats.Requests != 1 {
		t.Errorf("cache requests = %d, want 1 (one shared execution)", stats.Requests)
	}
}

// TestServeFingerprintSeparation: requests that differ in a
// result-affecting field never coalesce even when racing (the satellite
// contract on Request.Fingerprint, exercised through the server).
func TestServeFingerprintSeparation(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 1, Shards: 1, QueueDepth: 8, Metrics: reg})
	s.gate = make(chan struct{})

	var wg sync.WaitGroup
	reqs := []RunRequest{
		{Workload: "sieve"},
		{Workload: "sieve", Engine: "fast"},          // Loop differs
		{Workload: "sieve", StepBudget: 999_999_999}, // budget differs
	}
	codes := make([]int, len(reqs))
	for i := range reqs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(&reqs[i])
			hr, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io := &RunResponse{}
			json.NewDecoder(hr.Body).Decode(io)
			hr.Body.Close()
			codes[i] = hr.StatusCode
		}()
	}
	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// All three must be admitted as distinct jobs (queued or running),
	// with zero coalescing.
	waitFor("three distinct jobs in flight", func() bool {
		sh := s.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return len(sh.inflight) == 3
	})
	if n := reg.Counter("serve.coalesced").Value(); n != 0 {
		t.Errorf("coalesced counter = %d, want 0", n)
	}
	close(s.gate)
	wg.Wait()
	for i, code := range codes {
		if code != 200 {
			t.Errorf("request %d: HTTP %d, want 200", i, code)
		}
	}
}

// TestServeDrain: draining flips /healthz to 503, rejects new runs with
// 503, and Drain returns once queued work is done.
func TestServeDrain(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Workers: 2, Metrics: reg})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code, _ := post(t, ts.URL, &RunRequest{Workload: "wc"}); code != 200 {
		t.Fatalf("pre-drain run: HTTP %d", code)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("pre-drain healthz: HTTP %d", hr.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(ctx); err != nil { // second drain is a no-op
		t.Fatal(err)
	}

	if code, resp := post(t, ts.URL, &RunRequest{Workload: "wc"}); code != 503 {
		t.Fatalf("post-drain run: HTTP %d (%+v), want 503", code, resp)
	}
	hr, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 503 {
		t.Fatalf("post-drain healthz: HTTP %d, want 503", hr.StatusCode)
	}
}

// TestServeMetricsEndpoint: /metrics reports the obs snapshot and cache
// counters after traffic.
func TestServeMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 2, Metrics: reg})
	if code, _ := post(t, ts.URL, &RunRequest{Workload: "wc"}); code != 200 {
		t.Fatalf("run: HTTP %d", code)
	}
	hr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var mr MetricsReply
	if err := json.NewDecoder(hr.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Cache.Misses != 1 {
		t.Errorf("cache misses = %d, want 1", mr.Cache.Misses)
	}
	if mr.Metrics.Counters["serve.requests"] != 1 || mr.Metrics.Counters["serve.ok"] != 1 {
		t.Errorf("serve counters not recorded: %+v", mr.Metrics.Counters)
	}
	if h, ok := mr.Metrics.Histograms["serve.total_ns"]; !ok || h.Count != 1 {
		t.Errorf("total_ns histogram not recorded: %+v", mr.Metrics.Histograms)
	}
}

// TestServeWorkloadsEndpoint: the suite listing matches the workloads
// package.
func TestServeWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	hr, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var got []WorkloadInfo
	if err := json.NewDecoder(hr.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	all := workloads.All()
	if len(got) != len(all) {
		t.Fatalf("listing has %d workloads, suite has %d", len(got), len(all))
	}
	for i, w := range all {
		if got[i].Name != w.Name || got[i].Class != w.Class {
			t.Errorf("entry %d = %+v, want %s/%s", i, got[i], w.Name, w.Class)
		}
	}
}

// TestRunLoadAgainstServer: the shared load generator sweeps the suite
// against an in-process server with a differential oracle and reports
// zero errors — the same path benchrecord -serve and brload use.
func TestRunLoadAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite load run is not short")
	}
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64, Metrics: reg})

	oracle := NewDifferentialOracle()
	res, err := RunLoad(context.Background(), LoadSpec{
		BaseURL:  ts.URL,
		Clients:  8,
		Requests: 76, // 2× the 19×2 matrix
		Verify:   oracle.Verify,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Server5xx != 0 {
		t.Fatalf("load run failed: %+v", res)
	}
	if res.Requests != 76 {
		t.Errorf("requests = %d, want 76", res.Requests)
	}
	if res.P50NS <= 0 || res.P99NS < res.P50NS {
		t.Errorf("latency percentiles not sane: p50=%d p99=%d", res.P50NS, res.P99NS)
	}
}

// TestPercentiles covers the latency aggregation edge cases.
func TestPercentiles(t *testing.T) {
	if p50, p99 := percentiles(nil); p50 != 0 || p99 != 0 {
		t.Errorf("empty: %d/%d", p50, p99)
	}
	if p50, p99 := percentiles([]int64{5}); p50 != 5 || p99 != 5 {
		t.Errorf("single: %d/%d", p50, p99)
	}
	var ns []int64
	for i := int64(100); i >= 1; i-- {
		ns = append(ns, i)
	}
	p50, p99 := percentiles(ns)
	if p50 != 50 || p99 != 99 {
		t.Errorf("1..100: p50=%d p99=%d, want 50/99", p50, p99)
	}
}
