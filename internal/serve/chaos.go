package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/guard"
	"branchreg/internal/obs"
)

// ChaosPlan is the serve-layer analogue of emu.FaultPlan: a
// deterministic, seeded schedule of service-level failures — engine
// panics, added latency, worker stalls — injected into a running
// server so the supervision layer (fallback, breakers, shadow
// verification) can be exercised under test and under `brload -chaos`
// instead of waiting for a real engine bug. Every decision is a
// counter modulo an interval offset by the seed, so the same plan over
// the same admission sequence injects the same events.
type ChaosPlan struct {
	// Seed offsets every interval's phase (which Nth event fires first).
	Seed int64 `json:"seed"`
	// Target restricts panic injection to one workload's classes: it
	// matches a class exactly or its "workload/" prefix ("" = every
	// class).
	Target string `json:"target,omitempty"`
	// PanicEvery injects a panic into every Nth adaptive-tier execution
	// of a targeted class (0 = never). Panics fire only on the adaptive
	// tier — the head of the fallback chain — modeling the bug the
	// supervision layer exists for: the most aggressive engine failing
	// while the safer tiers stay healthy.
	PanicEvery int `json:"panic_every,omitempty"`
	// PanicMax caps the total injected panics (0 = unlimited). A finite
	// cap lets a smoke run prove the breaker closes again: once the
	// budget is spent, half-open probes succeed.
	PanicMax int64 `json:"panic_max,omitempty"`
	// LatencyEvery adds Latency before every Nth execution (0 = never).
	LatencyEvery int           `json:"latency_every,omitempty"`
	Latency      time.Duration `json:"latency,omitempty"`
	// StallEvery makes a worker sleep Stall before processing every Nth
	// dequeued job (0 = never), backing up the queue so 429 behavior
	// under slowdown is exercised.
	StallEvery int           `json:"stall_every,omitempty"`
	Stall      time.Duration `json:"stall,omitempty"`
}

// ParseChaosPlan decodes the brserve -chaos flag syntax:
// "seed=7,target=sieve,panic-every=1,panic-max=8,latency-every=50,latency=5ms,stall-every=0,stall=0s".
// Durations use Go syntax; unknown keys are errors so typos fail loudly.
func ParseChaosPlan(s string) (*ChaosPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &ChaosPlan{}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad chaos term %q (want key=value)", part)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "target":
			p.Target = val
		case "panic-every":
			p.PanicEvery, err = strconv.Atoi(val)
		case "panic-max":
			p.PanicMax, err = strconv.ParseInt(val, 10, 64)
		case "latency-every":
			p.LatencyEvery, err = strconv.Atoi(val)
		case "latency":
			p.Latency, err = time.ParseDuration(val)
		case "stall-every":
			p.StallEvery, err = strconv.Atoi(val)
		case "stall":
			p.Stall, err = time.ParseDuration(val)
		default:
			return nil, fmt.Errorf("unknown chaos key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("bad chaos value %q: %v", part, err)
		}
	}
	if p.PanicEvery < 0 || p.LatencyEvery < 0 || p.StallEvery < 0 || p.PanicMax < 0 {
		return nil, fmt.Errorf("chaos intervals and caps must be >= 0")
	}
	return p, nil
}

// chaos is the armed runtime state of a plan: one injector per server.
type chaos struct {
	plan ChaosPlan

	headN  atomic.Int64 // targeted adaptive-tier executions seen
	latN   atomic.Int64 // executions seen by the latency injector
	stallN atomic.Int64 // jobs seen by the stall injector
	fired  atomic.Int64 // panics injected so far

	mPanics  *obs.Counter
	mLatency *obs.Counter
	mStalls  *obs.Counter
}

func newChaos(plan ChaosPlan, r *obs.Registry) *chaos {
	return &chaos{
		plan:     plan,
		mPanics:  r.Counter("serve.chaos.panics"),
		mLatency: r.Counter("serve.chaos.latency"),
		mStalls:  r.Counter("serve.chaos.stalls"),
	}
}

// due reports whether the n'th event of a seeded every-Nth schedule fires.
func (c *chaos) due(n int64, every int) bool {
	return every > 0 && (n+c.plan.Seed)%int64(every) == 0
}

// targets reports whether a class is eligible for panic injection.
func (c *chaos) targets(class string) bool {
	t := c.plan.Target
	return t == "" || class == t || strings.HasPrefix(class, t+"/")
}

// wrap layers the chaos injection between the supervisor and the real
// executor: latency applies to every execution, panics only to
// adaptive-tier attempts of targeted classes — so the supervisor's
// fallback sees exactly the failure it is built for, and the rescue
// tiers stay healthy.
func (c *chaos) wrap(next guard.ExecFunc) guard.ExecFunc {
	return func(ctx context.Context, class string, req driver.Request) (*driver.Result, error) {
		if c.due(c.latN.Add(1), c.plan.LatencyEvery) && c.plan.Latency > 0 {
			c.mLatency.Inc()
			select {
			case <-time.After(c.plan.Latency):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if req.Loop == emu.LoopAdaptive && c.targets(class) && c.due(c.headN.Add(1), c.plan.PanicEvery) {
			if max := c.plan.PanicMax; max == 0 || c.fired.Add(1) <= max {
				c.mPanics.Inc()
				panic(fmt.Sprintf("chaos: injected adaptive-engine panic (class %s, seed %d)", class, c.plan.Seed))
			}
		}
		return next(ctx, class, req)
	}
}

// maybeStall sleeps a worker before it processes a dequeued job, when due.
func (c *chaos) maybeStall() {
	if c.due(c.stallN.Add(1), c.plan.StallEvery) && c.plan.Stall > 0 {
		c.mStalls.Inc()
		time.Sleep(c.plan.Stall)
	}
}
