package exp

import (
	"context"
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

// renderAll fingerprints every table the suite result can produce, so the
// equality test covers -table1 -cycles -ratios -fig9 byte for byte.
func renderAll(r *SuiteResult) string {
	return r.Table1() + r.CycleTable([]int{3, 4, 5}) + r.RatiosTable() + r.DistanceHistogram()
}

// TestParallelMatchesSerial asserts the tentpole guarantee: the worker
// pool's SuiteResult — programs, totals, histograms, and every rendered
// table — is byte-identical to the serial path at any parallelism.
func TestParallelMatchesSerial(t *testing.T) {
	o := driver.DefaultOptions()
	serial, err := RunSuiteSubset(o, fastSubset) // deprecated wrapper = 1 worker
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		r := Runner{Parallelism: par}
		got, err := r.Run(context.Background(), Spec{Workloads: fastSubset, Options: o})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("parallelism %d: SuiteResult differs from serial", par)
		}
		if a, b := renderAll(serial), renderAll(got); a != b {
			t.Errorf("parallelism %d: rendered tables differ from serial:\n%s\n-- vs --\n%s", par, a, b)
		}
	}
}

// TestProfiledSuiteDeterministic extends the guarantee to -profile: the
// engine fields and hot-block tables are derived from deterministic runs,
// so a profiled SuiteResult must be identical at any parallelism too.
func TestProfiledSuiteDeterministic(t *testing.T) {
	o := driver.DefaultOptions()
	run := func(par int) *SuiteResult {
		r := Runner{Parallelism: par}
		got, err := r.Run(context.Background(),
			Spec{Workloads: fastSubset, Options: o, Profile: true})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return got
	}
	serial := run(1)
	for _, p := range serial.Programs {
		if p.BaselineEngine != "fused" || p.BRMEngine != "fused" {
			t.Errorf("%s: engines %q/%q, want fused/fused", p.Name, p.BaselineEngine, p.BRMEngine)
		}
		if len(p.BaselineBlocks) == 0 || len(p.BRMBlocks) == 0 {
			t.Errorf("%s: missing hot blocks (%d baseline, %d BRM)",
				p.Name, len(p.BaselineBlocks), len(p.BRMBlocks))
		}
	}
	if got := run(4); !reflect.DeepEqual(serial, got) {
		t.Error("profiled SuiteResult differs between 1 and 4 workers")
	}
}

// TestSuiteEngineTiersIdentical pins Spec.Loop: the suite's stats,
// totals, and rendered tables must be byte-identical whichever engine
// executes the cells, and the engine/fusion fields must record which one
// did. Parallelism 4 so the tier sweep also runs under the race detector
// with a busy pool (`make check`).
func TestSuiteEngineTiersIdentical(t *testing.T) {
	o := driver.DefaultOptions()
	run := func(loop emu.LoopMode) *SuiteResult {
		r := Runner{Parallelism: 4}
		got, err := r.Run(context.Background(),
			Spec{Workloads: fastSubset, Options: o, Loop: loop})
		if err != nil {
			t.Fatalf("loop %d: %v", loop, err)
		}
		return got
	}
	ref := run(emu.LoopInstrumented)
	for _, p := range ref.Programs {
		if p.BaselineEngine != emu.EngineInstrumented || p.BRMEngine != emu.EngineInstrumented {
			t.Fatalf("%s: engines %q/%q, want instrumented", p.Name, p.BaselineEngine, p.BRMEngine)
		}
	}
	for _, tier := range []struct {
		loop   emu.LoopMode
		engine string
	}{{emu.LoopFast, emu.EngineFast}, {emu.LoopFused, emu.EngineFused}, {emu.LoopAdaptive, emu.EngineAdaptive}} {
		got := run(tier.loop)
		for i := range got.Programs {
			p := &got.Programs[i]
			if p.BaselineEngine != tier.engine || p.BRMEngine != tier.engine {
				t.Errorf("%s: engines %q/%q, want %q", p.Name, p.BaselineEngine, p.BRMEngine, tier.engine)
			}
			// Fused dispatch runs under the static fused tier always, and
			// under the adaptive tier exactly when the cell promoted
			// mid-run (each Runner compiles fresh programs, so every
			// adaptive cell starts cold).
			fusedBase, fusedBRM := tier.engine == emu.EngineFused, tier.engine == emu.EngineFused
			if tier.engine == emu.EngineAdaptive {
				fusedBase, fusedBRM = p.BaselineRefusion.Promoted, p.BRMRefusion.Promoted
			}
			if (p.BaselineFusion.Blocks > 0) != fusedBase || (p.BRMFusion.Blocks > 0) != fusedBRM {
				t.Errorf("%s: fusion stats %+v/%+v under %q", p.Name, p.BaselineFusion, p.BRMFusion, tier.engine)
			}
			// Stats must match the instrumented reference exactly; the
			// engine, fusion, and refusion fields are the only
			// tier-dependent state.
			p.BaselineEngine, p.BRMEngine = ref.Programs[i].BaselineEngine, ref.Programs[i].BRMEngine
			p.BaselineFusion, p.BRMFusion = ref.Programs[i].BaselineFusion, ref.Programs[i].BRMFusion
			p.BaselineRefusion, p.BRMRefusion = ref.Programs[i].BaselineRefusion, ref.Programs[i].BRMRefusion
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("loop %d: SuiteResult differs from instrumented reference", tier.loop)
		}
		if a, b := renderAll(ref), renderAll(got); a != b {
			t.Errorf("loop %d: rendered tables differ:\n%s\n-- vs --\n%s", tier.loop, a, b)
		}
	}
}

func TestRunnerCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var r Runner
	if _, err := r.Run(ctx, Spec{Workloads: fastSubset, Options: driver.DefaultOptions()}); err == nil {
		t.Fatal("cancelled run succeeded")
	}
}

// TestRunnerFirstErrorAbortsPool injects a workload that fails to compile
// ahead of many good ones: the pool must return that workload's error and
// cancel the remaining jobs instead of draining the queue.
func TestRunnerFirstErrorAbortsPool(t *testing.T) {
	suite := []workloads.Workload{{
		Name:      "broken",
		Source:    `int main(void) { return ; }`,
		NoPrelude: true,
	}}
	suite = append(suite, workloads.All()...)

	var done atomic.Int64
	r := Runner{
		Parallelism: 2,
		Progress:    func(phase string, d, total int) { done.Store(int64(d)) },
	}
	_, err := r.Run(context.Background(), Spec{Suite: suite, Options: driver.DefaultOptions()})
	if err == nil {
		t.Fatal("suite with a broken workload succeeded")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error does not identify the failing workload: %v", err)
	}
	total := int64(len(suite) * 2)
	if got := done.Load(); got >= total {
		t.Errorf("pool drained all %d jobs despite the early failure", got)
	}
}

func TestRunnerUnknownWorkload(t *testing.T) {
	var r Runner
	_, err := r.Run(context.Background(), Spec{Workloads: []string{"no-such"}, Options: driver.DefaultOptions()})
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("err = %v, want unknown workload", err)
	}
}

func TestRunnerInvalidOptions(t *testing.T) {
	o := driver.DefaultOptions()
	o.AlignWords = -2
	var r Runner
	if _, err := r.Run(context.Background(), Spec{Workloads: fastSubset, Options: o}); err == nil {
		t.Fatal("invalid options accepted")
	}
}

// TestRunnerSharedCache proves the dedup across experiments: a second run
// through the same Runner recompiles nothing.
func TestRunnerSharedCache(t *testing.T) {
	r := Runner{Parallelism: 4}
	spec := Spec{Workloads: []string{"wc", "sieve"}, Options: driver.DefaultOptions()}
	if _, err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	first := r.Cache.Stats()
	if first.Misses != 4 { // 2 workloads x 2 machines
		t.Errorf("first run compiled %d programs, want 4", first.Misses)
	}
	if _, err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	second := r.Cache.Stats()
	if second.Misses != first.Misses {
		t.Errorf("second run recompiled: %d -> %d misses", first.Misses, second.Misses)
	}
	if second.Hits != first.Hits+4 {
		t.Errorf("second run hits = %d, want %d", second.Hits, first.Hits+4)
	}
}

func TestRunnerSingleMachine(t *testing.T) {
	var r Runner
	got, err := r.Run(context.Background(), Spec{
		Workloads: []string{"wc"},
		Machines:  []isa.Kind{isa.BranchReg},
		Options:   driver.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.BRMTotal.Instructions == 0 {
		t.Error("BRM total empty")
	}
	if got.BaselineTotal.Instructions != 0 {
		t.Error("baseline measured despite not being requested")
	}
}

func TestPctDegenerateCells(t *testing.T) {
	if v := pct(0, 0); v != 0 {
		t.Errorf("pct(0,0) = %v, want 0", v)
	}
	if v := pct(7, 0); !math.IsInf(v, 1) {
		t.Errorf("pct(7,0) = %v, want +Inf", v)
	}
	if v := pct(-7, 0); !math.IsInf(v, -1) {
		t.Errorf("pct(-7,0) = %v, want -Inf", v)
	}
	if v := pct(150, 100); v != 50 {
		t.Errorf("pct(150,100) = %v, want 50", v)
	}
	if got := fmtPct(math.Inf(1)); got != "n/a" {
		t.Errorf("fmtPct(+Inf) = %q, want n/a", got)
	}
	if got := fmtPct(-6.82); got != "-6.8%" {
		t.Errorf("fmtPct(-6.82) = %q", got)
	}
	// A degenerate Table I cell renders n/a, not 0.0%.
	r := &SuiteResult{Programs: []ProgramResult{{Name: "degenerate"}}}
	r.Programs[0].BRM.Instructions = 10
	r.BRMTotal.Instructions = 10
	tbl := r.Table1()
	if !strings.Contains(tbl, "n/a") {
		t.Errorf("degenerate cell not marked n/a:\n%s", tbl)
	}
}
