package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"branchreg/internal/cache"
	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/obs"
	"branchreg/internal/pipeline"
	"branchreg/internal/workloads"
)

// Spec selects what Runner.Run measures: which workloads, on which
// machines, compiled how, with how much parallelism.
type Spec struct {
	// Workloads filters the suite by name (nil = every workload).
	Workloads []string
	// Suite is the workload set the filter applies to (nil =
	// workloads.All()). Tests inject synthetic workloads here.
	Suite []workloads.Workload
	// Machines is the machine set (nil = baseline and BRM). Output
	// agreement is verified only when both machines are present.
	Machines []isa.Kind
	// Options configures the compiler for every job.
	Options driver.Options
	// Parallelism overrides the Runner's worker count when > 0.
	Parallelism int
	// KeepGoing records failed (workload, machine) cells as structured
	// JobErrors in the SuiteResult and completes the rest of the suite,
	// instead of the default first-error-cancels behavior.
	KeepGoing bool
	// Faults maps "<workload>/<machine label>" (e.g. "wc/BRM") to a
	// deterministic fault plan armed on that cell's emulator.
	Faults map[string]*emu.FaultPlan
	// Profile attaches a block profile to every suite run and aggregates
	// the result into per-program hot-block tables (ProgramResult.*Blocks).
	// Profiled runs stay on the fast-path engines; see emu.BlockProfile.
	Profile bool
	// Loop selects the emulator engine for every suite cell; the zero
	// value (emu.LoopAuto) picks the block-fused loop whenever hooks and
	// faults permit. Cells with an armed fault plan must leave this at
	// LoopAuto (the fast-path engines reject fault plans).
	Loop emu.LoopMode
}

// FaultKey builds a Spec.Faults key from a workload name and machine.
func FaultKey(workload string, kind isa.Kind) string {
	return workload + "/" + machineLabel(kind)
}

// Runner executes experiment jobs over a bounded worker pool, memoizing
// compilations in a shared cache. The zero value is ready to use: it
// compiles through a private cache with GOMAXPROCS workers. Results are
// merged in deterministic workload order, so a Runner's output is
// byte-identical to the serial path regardless of parallelism.
type Runner struct {
	// Cache memoizes compilations across every experiment run through
	// this Runner (nil = a private cache, created on first use).
	Cache *driver.Cache
	// Parallelism bounds the worker pool (<= 0 = runtime.GOMAXPROCS(0)).
	Parallelism int
	// JobTimeout bounds each pool job's wall clock (0 = none). The
	// deadline is polled inside the emulator, so even a diverging
	// program surfaces as a timeout failure instead of hanging the pool.
	JobTimeout time.Duration
	// Progress, when set, observes job completions: phase names the
	// experiment, done/total count jobs. Called from worker goroutines.
	Progress func(phase string, done, total int)
	// Tracer, when set, records spans for every phase, suite cell,
	// compile, run and oracle check (nil = no tracing; see obs.Tracer).
	Tracer *obs.Tracer

	cacheOnce sync.Once
}

func (r *Runner) cache() *driver.Cache {
	r.cacheOnce.Do(func() {
		if r.Cache == nil {
			r.Cache = driver.NewCache()
		}
	})
	return r.Cache
}

func (r *Runner) workers(override int) int {
	n := r.Parallelism
	if override > 0 {
		n = override
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// safeJob runs one pool job with the runner's per-job timeout applied
// and panics converted into structured *PanicError failures, so a
// compiler or emulator bug fails one job instead of the process.
func (r *Runner) safeJob(ctx context.Context, i int, job func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}
		}
	}()
	if r.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.JobTimeout)
		defer cancel()
	}
	return job(ctx, i)
}

// runJobs fans total jobs out over n workers. The first job error (lowest
// job index, for determinism) cancels the pool; later workers stop before
// starting their next job. Cancellation fallout from jobs that were
// already in flight when the pool aborted is never reported as the cause.
func (r *Runner) runJobs(parent context.Context, phase string, n, total int, job func(ctx context.Context, i int) error) error {
	if err := parent.Err(); err != nil {
		return err
	}
	if n > total {
		n = total
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
		done     int
	)
	// enq carries the time the producer offered the job, so the receiving
	// worker can observe how long the job waited for a free worker.
	type queued struct {
		i   int
		enq time.Time
	}
	poolStart := time.Now()
	mPoolSize.Set(int64(n))
	jobs := make(chan queued)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Worker index rides the context so trace spans opened inside
			// jobs land on per-worker timeline rows (1-based; 0 = no pool).
			wctx := obs.ContextWithWorker(ctx, worker+1)
			for q := range jobs {
				if ctx.Err() != nil {
					return
				}
				i := q.i
				mJobs.Inc()
				mJobWaitNS.Observe(time.Since(q.enq).Nanoseconds())
				jobStart := time.Now()
				err := r.safeJob(wctx, i, job)
				busy := time.Since(jobStart).Nanoseconds()
				mJobRunNS.Observe(busy)
				mWorkerBusy.Add(busy)
				if err != nil {
					if !errors.Is(err, context.Canceled) {
						mu.Lock()
						if firstErr == nil || i < firstIdx {
							firstErr, firstIdx = err, i
						}
						mu.Unlock()
					}
					cancel()
					return
				}
				mu.Lock()
				done++
				d := done
				mu.Unlock()
				if r.Progress != nil {
					r.Progress(phase, d, total)
				}
			}
		}(w)
	}
	for i := 0; i < total; i++ {
		select {
		case jobs <- queued{i: i, enq: time.Now()}:
		case <-ctx.Done():
			i = total
		}
	}
	close(jobs)
	wg.Wait()
	// Occupancy denominator: pool wall clock × workers. Worker-busy over
	// this is the pool's utilization.
	mPoolWall.Add(time.Since(poolStart).Nanoseconds() * int64(n))
	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}

// selectWorkloads resolves a Spec's workload set in deterministic suite
// order, rejecting unknown names.
func selectWorkloads(suite []workloads.Workload, names []string) ([]workloads.Workload, error) {
	if suite == nil {
		suite = workloads.All()
	}
	if names == nil {
		return suite, nil
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []workloads.Workload
	for _, w := range suite {
		if want[w.Name] {
			out = append(out, w)
			delete(want, w.Name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("exp: unknown workload %s", n)
	}
	return out, nil
}

func machineLabel(kind isa.Kind) string {
	if kind == isa.Baseline {
		return "baseline"
	}
	return "BRM"
}

// suiteCell is one (workload, machine) outcome: a result or a
// structured failure (keep-going mode only), plus the hot-block
// aggregation when the spec asked for profiling.
type suiteCell struct {
	res    *driver.Result
	blocks []obs.HotBlock
	err    *JobError
}

// Run executes the suite described by spec: every (workload, machine)
// pair becomes one pool job, per-program results are merged in suite
// order, and when both machines are present their outputs must agree
// (the differential oracle). By default the first failure cancels the
// pool; with Spec.KeepGoing each failed cell degrades to a typed
// JobError in the SuiteResult while the rest of the suite completes.
func (r *Runner) Run(ctx context.Context, spec Spec) (*SuiteResult, error) {
	if err := spec.Options.Validate(); err != nil {
		return nil, err
	}
	sel, err := selectWorkloads(spec.Suite, spec.Workloads)
	if err != nil {
		return nil, err
	}
	machines := spec.Machines
	if machines == nil {
		machines = []isa.Kind{isa.Baseline, isa.BranchReg}
	}

	// work runs one cell, reporting whether it got past compilation so
	// failures classify as compile vs run. Cell/compile/run spans parent
	// under the enclosing phase span and land on the worker's trace row.
	work := func(ctx context.Context, i int) (res *driver.Result, blocks []obs.HotBlock, compiled bool, err error) {
		w := sel[i/len(machines)]
		kind := machines[i%len(machines)]
		tid := obs.WorkerFromContext(ctx)
		cell := r.Tracer.Begin("cell:"+FaultKey(w.Name, kind), "suite", obs.SpanFromContext(ctx), tid)
		defer cell.End()

		cs := r.Tracer.Begin("compile", "driver", cell.ID(), tid)
		p, err := r.cache().Compile(ctx, w.FullSource(), kind, spec.Options)
		cs.End()
		if err != nil {
			return nil, nil, false, err
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, true, err
		}
		var prof *emu.BlockProfile
		if spec.Profile {
			prof = emu.NewBlockProfile(len(p.Text))
		}
		rs := r.Tracer.Begin("run", "emu", cell.ID(), tid)
		res, err = driver.Exec(ctx, driver.Request{
			Program:    p,
			Input:      w.Input,
			Faults:     spec.Faults[FaultKey(w.Name, kind)],
			OutputHint: w.OutputHint,
			Profile:    prof,
			Loop:       spec.Loop,
		})
		if res != nil {
			rs.SetArg("engine", res.Engine)
			cell.SetArg("engine", res.Engine)
		}
		rs.End()
		if err == nil && prof != nil {
			blocks = obs.HotBlocks(p, prof, hotBlockTop)
		}
		return res, blocks, true, err
	}

	cells := make([]suiteCell, len(sel)*len(machines))
	job := func(ctx context.Context, i int) error {
		res, blocks, _, err := work(ctx, i)
		if err != nil {
			w := sel[i/len(machines)]
			return fmt.Errorf("exp: %s on %s: %w", w.Name, machineLabel(machines[i%len(machines)]), err)
		}
		cells[i].res = res
		cells[i].blocks = blocks
		return nil
	}
	if spec.KeepGoing {
		job = func(ctx context.Context, i int) error {
			res, blocks, compiled, err := func() (res *driver.Result, blocks []obs.HotBlock, compiled bool, err error) {
				// Recover locally so a panicking cell degrades like any
				// other failure instead of cancelling the pool.
				defer func() {
					if p := recover(); p != nil {
						err = &PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}
					}
				}()
				return work(ctx, i)
			}()
			switch {
			case err == nil:
				cells[i].res = res
				cells[i].blocks = blocks
			case errors.Is(err, context.Canceled):
				return err // external cancellation, not a cell failure
			default:
				w := sel[i/len(machines)]
				cells[i].err = newJobError("suite", w.Name,
					machineLabel(machines[i%len(machines)]), compiled, err)
			}
			return nil
		}
	}
	if err := r.runJobs(ctx, "suite", r.workers(spec.Parallelism), len(cells), job); err != nil {
		return nil, err
	}

	// Deterministic merge: suite order, verifying machine agreement.
	oracle := r.Tracer.Begin("oracle", "exp", obs.SpanFromContext(ctx), 0)
	defer oracle.End()
	out := &SuiteResult{}
	for wi, w := range sel {
		pr := ProgramResult{Name: w.Name}
		var first *driver.Result
		for mi, kind := range machines {
			cell := cells[wi*len(machines)+mi]
			if cell.err != nil {
				pr.setCellError(kind, cell.err)
				out.Failures = append(out.Failures, cell.err)
				continue
			}
			res := cell.res
			if first == nil {
				first = res
			} else if res.Output != first.Output || res.Status != first.Status {
				je := &JobError{
					Phase:    "suite",
					Workload: w.Name,
					Kind:     FailOracle,
					Message: fmt.Sprintf("machines disagree: %s status %d vs %s status %d",
						machineLabel(machines[0]), first.Status, machineLabel(kind), res.Status),
				}
				if !spec.KeepGoing {
					return nil, je
				}
				pr.OracleErr = je
				out.Failures = append(out.Failures, je)
			}
			switch kind {
			case isa.Baseline:
				pr.Baseline = res.Stats
				pr.BaselineEngine = res.Engine
				pr.BaselineFusion = res.Fusion
				pr.BaselineRefusion = res.Refusion
				pr.BaselineBlocks = cell.blocks
				out.BaselineTotal.Add(&res.Stats)
			default:
				pr.BRM = res.Stats
				pr.BRMEngine = res.Engine
				pr.BRMFusion = res.Fusion
				pr.BRMRefusion = res.Refusion
				pr.BRMBlocks = cell.blocks
				out.BRMTotal.Add(&res.Stats)
			}
		}
		out.Programs = append(out.Programs, pr)
	}
	return out, nil
}

// hotBlockTop bounds the per-cell hot-block aggregation: enough to show
// where a workload spends its time, small enough to keep reports
// readable (sieve has under ten live blocks; tinycc has hundreds).
const hotBlockTop = 10

// CacheStudy is the parallel form of RunCacheStudy: every
// (configuration, prefetch, workload) triple is one pool job, merged per
// configuration in workload order.
func (r *Runner) CacheStudy(ctx context.Context, o driver.Options, cfgs []cache.Config, names []string) ([]CacheResult, error) {
	if names == nil {
		names = []string{"dhrystone", "matmult", "grep", "sort", "tinycc"}
	}
	sel, err := selectWorkloads(nil, names)
	if err != nil {
		return nil, err
	}
	modes := []bool{false, true}
	type cell struct{ stats cache.Stats }
	cells := make([]cell, len(cfgs)*len(modes)*len(sel))
	err = r.runJobs(ctx, "cache study", r.workers(0), len(cells),
		func(ctx context.Context, i int) error {
			cfg := cfgs[i/(len(modes)*len(sel))]
			pre := modes[(i/len(sel))%len(modes)]
			w := sel[i%len(sel)]
			st, err := r.cachedRunWithICache(ctx, w, o, cfg, pre)
			if err != nil {
				return err
			}
			cells[i].stats = st
			return nil
		})
	if err != nil {
		return nil, err
	}
	var out []CacheResult
	for ci, cfg := range cfgs {
		for mi, pre := range modes {
			total := cache.Stats{}
			for wi := range sel {
				addCache(&total, &cells[(ci*len(modes)+mi)*len(sel)+wi].stats)
			}
			out = append(out, CacheResult{Config: cfg, Prefetch: pre, Stats: total})
		}
	}
	return out, nil
}

// cachedRunWithICache compiles w for the BRM through the compile cache
// and emulates it against one instruction-cache configuration.
func (r *Runner) cachedRunWithICache(ctx context.Context, w workloads.Workload, o driver.Options, cfg cache.Config, prefetch bool) (cache.Stats, error) {
	p, err := r.cache().Compile(ctx, w.FullSource(), isa.BranchReg, o)
	if err != nil {
		return cache.Stats{}, err
	}
	m, err := emu.New(p, w.Input)
	if err != nil {
		return cache.Stats{}, err
	}
	ic := cache.New(cfg)
	m.Hooks.Fetch = func(addr int32) { ic.Fetch(addr) }
	if prefetch {
		m.Hooks.Prefetch = func(addr int32) { ic.Prefetch(addr) }
	}
	if _, err := m.Run(); err != nil {
		return cache.Stats{}, err
	}
	ic.Flush()
	return ic.Stats, nil
}

// Ablations is the parallel form of RunAblations: every (variant,
// workload) pair is one pool job, merged per variant in workload order.
func (r *Runner) Ablations(ctx context.Context, names []string) ([]AblationResult, error) {
	sel, err := selectWorkloads(nil, names)
	if err != nil {
		return nil, err
	}
	variants := ablationVariants()
	stats := make([]emu.Stats, len(variants)*len(sel))
	err = r.runJobs(ctx, "ablations", r.workers(0), len(stats),
		func(ctx context.Context, i int) error {
			vr := variants[i/len(sel)]
			w := sel[i%len(sel)]
			res, err := r.cache().Exec(ctx, driver.Request{
				Source: w.FullSource(), Kind: isa.BranchReg, Input: w.Input, Options: vr.o})
			if err != nil {
				return fmt.Errorf("exp: %s under %s: %w", w.Name, vr.name, err)
			}
			stats[i] = res.Stats
			return nil
		})
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	m3 := pipeline.Model{Stages: 3}
	for vi, vr := range variants {
		var total emu.Stats
		for wi := range sel {
			total.Add(&stats[vi*len(sel)+wi])
		}
		out = append(out, AblationResult{
			Name:         vr.name,
			Instructions: total.Instructions,
			DataRefs:     total.DataRefs(),
			Cycles3:      m3.BRMCycles(&total),
			BrCalcs:      total.BrCalcs,
			Noops:        total.Noops,
		})
	}
	return out, nil
}

// ModelValidation is the parallel form of RunModelValidation: every
// (workload, machine) pair runs the analytic model and the dynamic
// pipeline simulation side by side on one pool job.
func (r *Runner) ModelValidation(ctx context.Context, o driver.Options, stages int, names []string) ([]SimRow, error) {
	if names == nil {
		names = []string{"wc", "grep", "matmult", "dhrystone", "sieve"}
	}
	sel, err := selectWorkloads(nil, names)
	if err != nil {
		return nil, err
	}
	kinds := []isa.Kind{isa.Baseline, isa.BranchReg}
	rows := make([]SimRow, len(sel)*len(kinds))
	err = r.runJobs(ctx, "model validation", r.workers(0), len(rows),
		func(ctx context.Context, i int) error {
			w := sel[i/len(kinds)]
			kind := kinds[i%len(kinds)]
			p, err := r.cache().Compile(ctx, w.FullSource(), kind, o)
			if err != nil {
				return err
			}
			cmp, err := pipeline.CompareModel(ctx, p, w.Input, stages)
			if err != nil {
				return err
			}
			rows[i] = SimRow{Name: w.Name, Kind: kind,
				ModelCycles: cmp.ModelCycles, SimCycles: cmp.SimCycles,
				OverchargePct: cmp.OverchargePct}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AlignmentStudy is the parallel form of RunAlignmentStudy: every
// (alignment, workload) pair is one pool job.
func (r *Runner) AlignmentStudy(ctx context.Context, cfg cache.Config, names []string) ([]AlignRow, error) {
	if names == nil {
		names = []string{"dhrystone", "grep", "tinycc"}
	}
	sel, err := selectWorkloads(nil, names)
	if err != nil {
		return nil, err
	}
	aligns := []int{0, cfg.LineWords}
	cells := make([]cache.Stats, len(aligns)*len(sel))
	err = r.runJobs(ctx, "alignment study", r.workers(0), len(cells),
		func(ctx context.Context, i int) error {
			o := driver.DefaultOptions()
			o.AlignWords = aligns[i/len(sel)]
			st, err := r.cachedRunWithICache(ctx, sel[i%len(sel)], o, cfg, true)
			if err != nil {
				return err
			}
			cells[i] = st
			return nil
		})
	if err != nil {
		return nil, err
	}
	var out []AlignRow
	for ai, align := range aligns {
		var total cache.Stats
		for wi := range sel {
			addCache(&total, &cells[ai*len(sel)+wi])
		}
		out = append(out, AlignRow{AlignWords: align,
			DelayCycles: total.DelayCycles,
			Misses:      total.Misses + total.PartialWaits})
	}
	return out, nil
}

// ablationVariants enumerates the §9 design alternatives in report order.
func ablationVariants() []struct {
	name string
	o    driver.Options
} {
	base := driver.DefaultOptions()
	type variant = struct {
		name string
		o    driver.Options
	}
	variants := []variant{
		{"full (8 bregs)", base},
	}
	v := base
	v.BRM.Hoist = false
	variants = append(variants, variant{"no hoisting", v})
	v = base
	v.BRM.ReplaceNoops = false
	variants = append(variants, variant{"no noop replacement", v})
	v = base
	v.BRM.Schedule = false
	variants = append(variants, variant{"no calc scheduling", v})
	for _, n := range []int{6, 4, 3} {
		v = base
		v.BRM.BranchRegs = n
		variants = append(variants, variant{fmt.Sprintf("%d branch registers", n), v})
	}
	v = base
	v.BRM.FastCompare = true
	variants = append(variants, variant{"fast compare (§9)", v})
	v = base
	v.Opt.LICM = true
	variants = append(variants, variant{"with LICM (§10)", v})
	return variants
}
