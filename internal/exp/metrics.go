package exp

import "branchreg/internal/obs"

// Pool-level metric handles (see internal/driver/metrics.go for the
// naming convention). Failure counters are per-kind and created on
// demand in newJobError; everything else is resolved once here.
var (
	mJobs       = obs.Default.Counter("exp.jobs")
	mJobWaitNS  = obs.Default.Histogram("exp.job_wait_ns")
	mJobRunNS   = obs.Default.Histogram("exp.job_run_ns")
	mWorkerBusy = obs.Default.Counter("exp.worker_busy_ns")
	mPoolWall   = obs.Default.Counter("exp.pool_wall_ns")
	mPoolSize   = obs.Default.Gauge("exp.pool_workers")
)
