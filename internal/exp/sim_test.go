package exp

import (
	"strings"
	"testing"

	"branchreg/internal/cache"
	"branchreg/internal/driver"
	"branchreg/internal/isa"
)

func TestModelValidation(t *testing.T) {
	rows, err := RunModelValidation(driver.DefaultOptions(), 3, []string{"wc", "matmult"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		switch r.Kind {
		case isa.Baseline:
			// The paper's model charges untaken branches; it must be an
			// upper bound on the per-event simulation.
			if r.ModelCycles < r.SimCycles {
				t.Errorf("%s: baseline model (%d) below simulation (%d)",
					r.Name, r.ModelCycles, r.SimCycles)
			}
			if r.OverchargePct < 0 {
				t.Errorf("%s: negative overcharge", r.Name)
			}
		case isa.BranchReg:
			// The BRM model is exact: both charge N-3 per conditional plus
			// the Figure 9 late-calc penalty.
			if r.ModelCycles != r.SimCycles {
				t.Errorf("%s: BRM model (%d) != simulation (%d)",
					r.Name, r.ModelCycles, r.SimCycles)
			}
		}
	}
	if !strings.Contains(SimTable(rows, 3), "model excess") {
		t.Error("table header missing")
	}
}

func TestBRMWinsUnderSimulationToo(t *testing.T) {
	// The BRM advantage must not be an artifact of the model's
	// every-transfer charge: compare simulated cycles directly.
	rows, err := RunModelValidation(driver.DefaultOptions(), 4, []string{"sieve"})
	if err != nil {
		t.Fatal(err)
	}
	var base, brm int64
	for _, r := range rows {
		if r.Kind == isa.Baseline {
			base = r.SimCycles
		} else {
			brm = r.SimCycles
		}
	}
	if brm >= base {
		t.Errorf("BRM (%d simulated cycles) not faster than baseline (%d)", brm, base)
	}
}

func TestAlignmentStudy(t *testing.T) {
	cfg := cache.Config{LineWords: 8, Sets: 8, Assoc: 2, MissPenalty: 8}
	rows, err := RunAlignmentStudy(cfg, []string{"wc", "tinycc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].AlignWords != 0 || rows[1].AlignWords != cfg.LineWords {
		t.Errorf("row layout wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.DelayCycles <= 0 {
			t.Errorf("alignment row has no delays: %+v", r)
		}
	}
	if !strings.Contains(AlignTable(rows, cfg), "unaligned") {
		t.Error("table missing rows")
	}
}
