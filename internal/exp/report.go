package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"

	"branchreg/internal/cache"
	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/obs"
)

// ReportSchemaVersion identifies the JSON layout emitted by Report. Bump
// it on any incompatible change so committed BENCH_<n>.json files remain
// interpretable across PRs.
//
// v2: per-job error objects — Report.Errors lists every failed cell or
// phase (keep-going mode) with a typed kind (emulator trap taxonomy or
// compile/panic/timeout/output-mismatch) and the emulator's full trap
// context; ProgramReport gains baseline_error/brm_error/oracle_error.
//
// v3: observability — ProgramReport gains baseline_engine/brm_engine
// (the emulator loop that actually executed each cell) and, under
// -profile, baseline_hot_blocks/brm_hot_blocks (per-cell dynamic
// basic-block tables); Report gains pool (emulator-memory pool traffic).
// Like the v2 phases array, pool.reused is an environment observation
// (garbage-collector timing), not part of the deterministic payload;
// every other new field is byte-deterministic at any parallelism.
//
// v4: the block-fused engine — baseline_engine/brm_engine may now read
// "fused" (the LoopAuto default when hooks and faults permit), and cells
// that ran fused gain baseline_fusion/brm_fusion objects (blocks entered,
// instructions retired inside superinstructions, hand-offs to the fast
// loop). All three counts are byte-deterministic at any parallelism.
//
// v5: the adaptive tier — baseline_engine/brm_engine may read "adaptive"
// (explicit -engine adaptive runs), and such cells gain
// baseline_refusion/brm_refusion objects (whether the run executed a
// promoted form, the hot/cold block split, the mined vocabulary size and
// warmup volume) next to the fusion counters the promoted form shares
// with the static fused engine. Deterministic for the first adaptive run
// of each compiled program, which is what a suite cell is.
const ReportSchemaVersion = 5

// Float is a float64 that survives JSON: non-finite values (the ±Inf a
// degenerate percentage cell reports, see pct) marshal as the strings
// "+Inf"/"-Inf"/"NaN" instead of failing encoding/json, and unmarshal
// back to the same value.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"+Inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = Float(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = Float(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("exp: Float: %w", err)
	}
	*f = Float(v)
	return nil
}

// AllSpec selects which experiment phases RunAll executes and how.
type AllSpec struct {
	Suite      bool // Table I, cycle estimates, ratios, Figure 9
	CacheStudy bool // §8/§9 instruction-cache study
	Ablations  bool // §9 design alternatives
	Validate   bool // cycle model vs dynamic pipeline simulation
	Align      bool // §9 function-entry alignment

	// Workloads filters every phase by name (nil = each phase's default:
	// the full suite for Suite and Ablations, representative subsets for
	// the studies).
	Workloads []string
	// Options configures the compiler (zero value = DefaultOptions).
	Options driver.Options
	// CacheConfigs are the organizations the cache study sweeps
	// (nil = DefaultCacheConfigs).
	CacheConfigs []cache.Config
	// ValidateStages are the pipeline depths validated (nil = 3 and 4).
	ValidateStages []int
	// AlignConfig is the alignment study's cache (zero = a small 2-way
	// organization where alignment effects are visible).
	AlignConfig cache.Config

	// KeepGoing degrades failed cells and phases into typed JobErrors
	// (AllResults.Errors / the report's errors array) instead of
	// aborting the run on the first failure.
	KeepGoing bool
	// Profile attaches block profiles to every suite run and surfaces
	// per-program hot-block tables (see Spec.Profile).
	Profile bool
	// Faults maps "<workload>/<machine label>" to a deterministic fault
	// plan injected into that suite cell (see Spec.Faults).
	Faults map[string]*emu.FaultPlan
	// Loop selects the emulator engine for suite cells (see Spec.Loop);
	// the zero value (emu.LoopAuto) prefers the block-fused loop.
	Loop emu.LoopMode
}

// DefaultCacheConfigs returns the cache study's standard sweep.
func DefaultCacheConfigs() []cache.Config {
	return []cache.Config{
		{LineWords: 4, Sets: 32, Assoc: 1, MissPenalty: 8},
		{LineWords: 4, Sets: 16, Assoc: 2, MissPenalty: 8},
		{LineWords: 8, Sets: 16, Assoc: 1, MissPenalty: 8},
		{LineWords: 8, Sets: 8, Assoc: 2, MissPenalty: 8},
		{LineWords: 8, Sets: 32, Assoc: 2, MissPenalty: 8},
		{LineWords: 16, Sets: 16, Assoc: 2, MissPenalty: 8},
		{LineWords: 8, Sets: 64, Assoc: 4, MissPenalty: 8},
	}
}

// PhaseTime records one phase's wall clock.
type PhaseTime struct {
	Name   string `json:"name"`
	Millis int64  `json:"millis"`
}

// ValidationResult groups model-validation rows by pipeline depth.
type ValidationResult struct {
	Stages int
	Rows   []SimRow
}

// AllResults bundles every phase RunAll executed, ready for table
// rendering (the existing SuiteResult/CacheTable/... methods) or JSON
// export via Report.
type AllResults struct {
	Workloads    []string // suite workload names measured (suite phase)
	Parallelism  int
	Suite        *SuiteResult
	CacheConfigs []cache.Config
	Cache        []CacheResult
	Ablations    []AblationResult
	Validation   []ValidationResult
	Alignment    []AlignRow
	AlignConfig  cache.Config
	CompileCache driver.CacheStats
	// Pool is the emulator-memory pool traffic of this run (the delta of
	// the process-wide counters across RunAll). Gets/Puts are
	// deterministic for a spec; Fresh depends on GC timing.
	Pool   driver.PoolStats
	Phases []PhaseTime
	// Errors collects every failure the run degraded instead of
	// aborting on (keep-going mode), in deterministic phase-then-suite
	// order. Empty on a clean run.
	Errors []*JobError
}

// RunAll executes the selected phases sequentially, each internally
// parallel over the Runner's pool and all sharing its compile cache, so
// a full `brbench -all` compiles each (program, machine, options) at
// most once. Per-phase wall clock lands in AllResults.Phases.
func (r *Runner) RunAll(ctx context.Context, spec AllSpec) (*AllResults, error) {
	if spec.Options == (driver.Options{}) {
		spec.Options = driver.DefaultOptions()
	}
	if spec.CacheConfigs == nil {
		spec.CacheConfigs = DefaultCacheConfigs()
	}
	if spec.ValidateStages == nil {
		spec.ValidateStages = []int{3, 4}
	}
	if spec.AlignConfig == (cache.Config{}) {
		spec.AlignConfig = cache.Config{LineWords: 8, Sets: 16, Assoc: 2, MissPenalty: 8}
	}
	out := &AllResults{Parallelism: r.workers(0)}
	poolStart := driver.PoolStatsNow()
	// phase runs one experiment phase under its own trace span (jobs
	// started inside parent their cell spans to it via the context). With
	// KeepGoing a failed phase degrades to a typed JobError and the
	// remaining phases still run; otherwise the first failure aborts as
	// before.
	outerCtx := ctx
	phase := func(name string, f func(ctx context.Context) error) error {
		span := r.Tracer.Begin(name, "phase", obs.SpanFromContext(outerCtx), 0)
		defer span.End()
		ctx := obs.ContextWithSpan(outerCtx, span.ID())
		start := time.Now()
		if err := f(ctx); err != nil {
			if !spec.KeepGoing {
				return err
			}
			out.Errors = append(out.Errors, newJobError(name, "", "", false, err))
			return nil
		}
		out.Phases = append(out.Phases, PhaseTime{Name: name, Millis: time.Since(start).Milliseconds()})
		return nil
	}

	if spec.Suite {
		if err := phase("suite", func(ctx context.Context) error {
			s, err := r.Run(ctx, Spec{Workloads: spec.Workloads, Options: spec.Options,
				KeepGoing: spec.KeepGoing, Faults: spec.Faults, Profile: spec.Profile,
				Loop: spec.Loop})
			if err != nil {
				return err
			}
			out.Suite = s
			out.Errors = append(out.Errors, s.Failures...)
			for _, p := range s.Programs {
				out.Workloads = append(out.Workloads, p.Name)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if spec.CacheStudy {
		if err := phase("cache study", func(ctx context.Context) error {
			res, err := r.CacheStudy(ctx, spec.Options, spec.CacheConfigs, spec.Workloads)
			if err != nil {
				return err
			}
			out.CacheConfigs, out.Cache = spec.CacheConfigs, res
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if spec.Ablations {
		if err := phase("ablations", func(ctx context.Context) error {
			names := spec.Workloads
			if names == nil {
				names = Names()
			}
			res, err := r.Ablations(ctx, names)
			if err != nil {
				return err
			}
			out.Ablations = res
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if spec.Validate {
		for _, stages := range spec.ValidateStages {
			stages := stages
			if err := phase(fmt.Sprintf("model validation (%d stages)", stages), func(ctx context.Context) error {
				rows, err := r.ModelValidation(ctx, spec.Options, stages, spec.Workloads)
				if err != nil {
					return err
				}
				out.Validation = append(out.Validation, ValidationResult{Stages: stages, Rows: rows})
				return nil
			}); err != nil {
				return nil, err
			}
		}
	}
	if spec.Align {
		if err := phase("alignment study", func(ctx context.Context) error {
			rows, err := r.AlignmentStudy(ctx, spec.AlignConfig, spec.Workloads)
			if err != nil {
				return err
			}
			out.Alignment, out.AlignConfig = rows, spec.AlignConfig
			return nil
		}); err != nil {
			return nil, err
		}
	}
	out.CompileCache = r.cache().Stats()
	out.Pool = driver.PoolStatsNow().Sub(poolStart)
	return out, nil
}

// ---- JSON schema ----

// Report is the versioned machine-readable form of AllResults, the
// payload of `brbench -json` (commit one as BENCH_<n>.json to track the
// performance trajectory across PRs).
type Report struct {
	Schema       int                `json:"schema"`
	Tool         string             `json:"tool"`
	Parallelism  int                `json:"parallelism"`
	Workloads    []string           `json:"workloads,omitempty"`
	Suite        *SuiteReport       `json:"suite,omitempty"`
	CacheStudy   []CacheStudyRow    `json:"cache_study,omitempty"`
	Ablations    []AblationResult   `json:"ablations,omitempty"`
	Validation   []ValidationReport `json:"validation,omitempty"`
	Alignment    *AlignmentReport   `json:"alignment,omitempty"`
	CompileCache driver.CacheStats  `json:"compile_cache"`
	// Pool is schema v3's emulator-memory pool traffic. gets/puts are
	// deterministic; fresh (and so the reuse rate) tracks GC timing, like
	// the phases array's wall-clock millis.
	Pool   driver.PoolStats `json:"pool"`
	Phases []PhaseTime      `json:"phases,omitempty"`
	// Errors is schema v2's per-job failure list: one object per failed
	// cell or phase, with a typed kind and (for emulator faults) the
	// full trap context. Non-empty exactly when the run degraded
	// failures in keep-going mode.
	Errors []*JobError `json:"errors,omitempty"`
}

// SuiteReport is Table I, the §7 cycle estimates and ratios, and
// Figure 9's histogram in one object.
type SuiteReport struct {
	Programs              []ProgramReport `json:"programs"`
	BaselineTotal         emu.Stats       `json:"baseline_total"`
	BRMTotal              emu.Stats       `json:"brm_total"`
	InstructionSavingsPct Float           `json:"instruction_savings_pct"`
	ExtraDataRefsPct      Float           `json:"extra_data_refs_pct"`
	Cycles                []CycleReport   `json:"cycles"`
	Ratios                RatiosReport    `json:"ratios"`
	DistHist              []int64         `json:"dist_hist"`
	MinPrefetchDist       int             `json:"min_prefetch_dist"`
}

// ProgramReport is one Table I row. The error fields are schema v2's
// per-cell failure markers: a failed cell keeps zero stats and carries
// the typed JobError instead.
type ProgramReport struct {
	Name           string    `json:"name"`
	Baseline       emu.Stats `json:"baseline"`
	BRM            emu.Stats `json:"brm"`
	InstDiffPct    Float     `json:"inst_diff_pct"`
	DataRefDiffPct Float     `json:"data_ref_diff_pct"`
	BaselineError  *JobError `json:"baseline_error,omitempty"`
	BRMError       *JobError `json:"brm_error,omitempty"`
	OracleError    *JobError `json:"oracle_error,omitempty"`
	// Engine fields (schema v3) record which emulator loop actually ran
	// each cell — "fused", "fast" or "instrumented" — so a silent fallback
	// from the fast-path loops is visible in the committed trajectory.
	BaselineEngine string `json:"baseline_engine,omitempty"`
	BRMEngine      string `json:"brm_engine,omitempty"`
	// Fusion fields (schema v4) describe the block-fused engine's dynamic
	// behavior; present exactly when the cell's engine is "fused" or
	// "adaptive" (the promoted form runs the same fused dispatch).
	BaselineFusion *emu.FusionStats `json:"baseline_fusion,omitempty"`
	BRMFusion      *emu.FusionStats `json:"brm_fusion,omitempty"`
	// Refusion fields (schema v5) describe the adaptive tier's promotion
	// behavior; present exactly when the cell's engine is "adaptive".
	BaselineRefusion *emu.RefusionStats `json:"baseline_refusion,omitempty"`
	BRMRefusion      *emu.RefusionStats `json:"brm_refusion,omitempty"`
	// Hot-block tables (schema v3, -profile runs only): the program's
	// hottest dynamic basic blocks with paper-style branch-cost
	// attribution.
	BaselineHotBlocks []obs.HotBlock `json:"baseline_hot_blocks,omitempty"`
	BRMHotBlocks      []obs.HotBlock `json:"brm_hot_blocks,omitempty"`
}

// CycleReport is one §7 cycle-estimate row.
type CycleReport struct {
	Stages         int   `json:"stages"`
	BaselineCycles int64 `json:"baseline_cycles"`
	BRMCycles      int64 `json:"brm_cycles"`
	SavingsPct     Float `json:"savings_pct"`
}

// RatiosReport mirrors Ratios with JSON-safe floats.
type RatiosReport struct {
	TransferPct        Float `json:"transfer_pct"`
	TransfersPerCalc   Float `json:"transfers_per_calc"`
	NoopReplacedPct    Float `json:"noop_replaced_pct"`
	SavedPerExtraRef   Float `json:"saved_per_extra_ref"`
	DelayedTransferPct Float `json:"delayed_transfer_pct"`
}

// CacheStudyRow is one (organization, prefetch-mode) measurement.
type CacheStudyRow struct {
	Config   cache.Config `json:"config"`
	Prefetch bool         `json:"prefetch"`
	Stats    cache.Stats  `json:"stats"`
}

// ValidationReport is the model-vs-simulation comparison at one depth.
type ValidationReport struct {
	Stages int            `json:"stages"`
	Rows   []SimRowReport `json:"rows"`
}

// SimRowReport is one model-validation row.
type SimRowReport struct {
	Name          string `json:"name"`
	Machine       string `json:"machine"`
	ModelCycles   int64  `json:"model_cycles"`
	SimCycles     int64  `json:"sim_cycles"`
	OverchargePct Float  `json:"overcharge_pct"`
}

// AlignmentReport is the §9 alignment study.
type AlignmentReport struct {
	Config cache.Config `json:"config"`
	Rows   []AlignRow   `json:"rows"`
}

// Report converts the results to the versioned JSON schema.
func (a *AllResults) Report() *Report {
	rep := &Report{
		Schema:       ReportSchemaVersion,
		Tool:         "brbench",
		Parallelism:  a.Parallelism,
		Workloads:    a.Workloads,
		CompileCache: a.CompileCache,
		Pool:         a.Pool,
		Phases:       a.Phases,
		Errors:       a.Errors,
	}
	if s := a.Suite; s != nil {
		sr := &SuiteReport{
			BaselineTotal:         s.BaselineTotal,
			BRMTotal:              s.BRMTotal,
			InstructionSavingsPct: Float(s.InstructionSavings()),
			ExtraDataRefsPct:      Float(s.ExtraDataRefs()),
			DistHist:              append([]int64(nil), s.BRMTotal.DistHist[:]...),
			MinPrefetchDist:       emu.MinPrefetchDist,
		}
		for _, p := range s.Programs {
			pr := ProgramReport{
				Name:              p.Name,
				Baseline:          p.Baseline,
				BRM:               p.BRM,
				InstDiffPct:       Float(pct(p.BRM.Instructions, p.Baseline.Instructions)),
				DataRefDiffPct:    Float(pct(p.BRM.DataRefs(), p.Baseline.DataRefs())),
				BaselineError:     p.BaselineErr,
				BRMError:          p.BRMErr,
				OracleError:       p.OracleErr,
				BaselineEngine:    p.BaselineEngine,
				BRMEngine:         p.BRMEngine,
				BaselineHotBlocks: p.BaselineBlocks,
				BRMHotBlocks:      p.BRMBlocks,
			}
			if p.BaselineEngine == emu.EngineFused || p.BaselineEngine == emu.EngineAdaptive {
				f := p.BaselineFusion
				pr.BaselineFusion = &f
			}
			if p.BRMEngine == emu.EngineFused || p.BRMEngine == emu.EngineAdaptive {
				f := p.BRMFusion
				pr.BRMFusion = &f
			}
			if p.BaselineEngine == emu.EngineAdaptive {
				r := p.BaselineRefusion
				pr.BaselineRefusion = &r
			}
			if p.BRMEngine == emu.EngineAdaptive {
				r := p.BRMRefusion
				pr.BRMRefusion = &r
			}
			sr.Programs = append(sr.Programs, pr)
		}
		for _, row := range s.Cycles([]int{3, 4, 5}) {
			sr.Cycles = append(sr.Cycles, CycleReport{
				Stages:         row.Stages,
				BaselineCycles: row.BaselineCycles,
				BRMCycles:      row.BRMCycles,
				SavingsPct:     Float(row.SavingsPercent),
			})
		}
		rt := s.ComputeRatios()
		sr.Ratios = RatiosReport{
			TransferPct:        Float(rt.TransferPercent),
			TransfersPerCalc:   Float(rt.TransfersPerCalc),
			NoopReplacedPct:    Float(rt.NoopReplacedPercent),
			SavedPerExtraRef:   Float(rt.SavedPerExtraRef),
			DelayedTransferPct: Float(rt.DelayedTransferPct),
		}
		rep.Suite = sr
	}
	for _, c := range a.Cache {
		rep.CacheStudy = append(rep.CacheStudy, CacheStudyRow{
			Config: c.Config, Prefetch: c.Prefetch, Stats: c.Stats})
	}
	rep.Ablations = a.Ablations
	for _, v := range a.Validation {
		vr := ValidationReport{Stages: v.Stages}
		for _, row := range v.Rows {
			vr.Rows = append(vr.Rows, SimRowReport{
				Name:          row.Name,
				Machine:       machineLabel(row.Kind),
				ModelCycles:   row.ModelCycles,
				SimCycles:     row.SimCycles,
				OverchargePct: Float(row.OverchargePct),
			})
		}
		rep.Validation = append(rep.Validation, vr)
	}
	if a.Alignment != nil {
		rep.Alignment = &AlignmentReport{Config: a.AlignConfig, Rows: a.Alignment}
	}
	return rep
}

// Encode renders the report as indented JSON with a trailing newline.
func (rep *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeReport parses JSON produced by Encode, rejecting unknown schema
// versions.
func DecodeReport(b []byte) (*Report, error) {
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("exp: report: %w", err)
	}
	if rep.Schema != ReportSchemaVersion {
		return nil, fmt.Errorf("exp: report schema %d, this build reads %d", rep.Schema, ReportSchemaVersion)
	}
	return &rep, nil
}
