package exp

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/workloads"
)

// linkProg assembles a one-function program for trap-scenario tests.
func linkProg(t *testing.T, kind isa.Kind, emitTo func(f *isa.Function)) *isa.Program {
	t.Helper()
	f := isa.NewFunction("main", kind)
	emitTo(f)
	p := &isa.Program{Kind: kind, Funcs: []*isa.Function{f}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p
}

// brmLoop emits the two-instruction infinite loop used by budget and
// injection scenarios.
func brmLoop(f *isa.Function) {
	f.Bind("loop")
	f.Emit(isa.Instr{Op: isa.OpBrCalc, Rd: 1, Rs1: -1, Target: "loop"})
	f.Emit(isa.Instr{Op: isa.OpNop, BR: 1})
}

// TestTrapKindsThroughDriverAndSchema drives every TrapKind through
// driver.Exec — real execution or a deterministic fault
// plan — and round-trips the resulting typed failure through the JSON
// report schema. A new TrapKind without a scenario here fails the test.
func TestTrapKindsThroughDriverAndSchema(t *testing.T) {
	exitInstr := isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: isa.TrapExit}
	type scenario struct {
		p    *isa.Program
		plan *emu.FaultPlan
	}
	scenarios := map[emu.TrapKind]scenario{
		emu.TrapOOBLoad: {p: linkProg(t, isa.Baseline, func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpLw, Rd: 1, Rs1: isa.ZeroReg, UseImm: true, Imm: -8})
			f.Emit(exitInstr)
		})},
		emu.TrapOOBStore: {p: linkProg(t, isa.Baseline, func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpSw, Rd: 1, Rs1: isa.ZeroReg, UseImm: true, Imm: -8})
			f.Emit(exitInstr)
		})},
		emu.TrapMisaligned: {p: linkProg(t, isa.Baseline, func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpLw, Rd: 1, Rs1: isa.ZeroReg, UseImm: true, Imm: 2})
			f.Emit(exitInstr)
		})},
		// A single noop: control falls off the end of the text segment.
		emu.TrapPCOutOfRange: {p: linkProg(t, isa.Baseline, func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpNop})
		})},
		emu.TrapStepBudget: {
			p:    linkProg(t, isa.BranchReg, brmLoop),
			plan: &emu.FaultPlan{Ops: []emu.FaultOp{{Kind: emu.FaultTruncateBudget, N: 1, Budget: 10}}},
		},
		emu.TrapIllegalInstr: {p: linkProg(t, isa.Baseline, func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: 99})
		})},
		emu.TrapUninitBranchReg: {p: linkProg(t, isa.BranchReg, func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpNop, BR: 3})
		})},
		emu.TrapArithmetic: {p: linkProg(t, isa.Baseline, func(f *isa.Function) {
			f.Emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: isa.ZeroReg, UseImm: true, Imm: 5})
			f.Emit(isa.Instr{Op: isa.OpDiv, Rd: 1, Rs1: 1, Rs2: isa.ZeroReg})
			f.Emit(exitInstr)
		})},
		emu.TrapInjected: {
			p:    linkProg(t, isa.BranchReg, brmLoop),
			plan: &emu.FaultPlan{Ops: []emu.FaultOp{{Kind: emu.FaultForceTrap, N: 1}}},
		},
	}

	for _, kind := range emu.TrapKinds() {
		sc, ok := scenarios[kind]
		if !ok {
			t.Errorf("no driver scenario for trap kind %v", kind)
			continue
		}
		_, err := driver.Exec(context.Background(), driver.Request{Program: sc.p, Faults: sc.plan})
		if err == nil {
			t.Errorf("%v: scenario ran cleanly", kind)
			continue
		}
		var trap *emu.Trap
		if !errors.As(err, &trap) {
			t.Errorf("%v: driver error %v is not a *emu.Trap", kind, err)
			continue
		}
		if trap.Kind != kind {
			t.Errorf("scenario for %v trapped as %v", kind, trap.Kind)
			continue
		}
		// A pc past the text segment has no enclosing function; every
		// other trap must name one.
		if trap.Fn != "main" && !(kind == emu.TrapPCOutOfRange && trap.Fn == "?") {
			t.Errorf("%v: trap fn = %q, want main", kind, trap.Fn)
		}

		// Classify as the report's per-job error and round-trip the
		// schema: kind and trap context must survive encode/decode.
		je := newJobError("suite", "w", "BRM", true, err)
		if je.Kind != kind.String() || je.Trap == nil {
			t.Errorf("%v: classified as %+v", kind, je)
			continue
		}
		rep := &Report{Schema: ReportSchemaVersion, Tool: "test", Errors: []*JobError{je}}
		b, err := rep.Encode()
		if err != nil {
			t.Fatalf("%v: encode: %v", kind, err)
		}
		back, err := DecodeReport(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", kind, err)
		}
		got := back.Errors[0]
		if got.Kind != kind.String() || got.Trap == nil || got.Trap.Kind != kind {
			t.Errorf("%v: JSON round trip lost the kind: %+v", kind, got)
		}
	}
}

// panicFaults arms a panic inside one suite cell.
func panicFaults() map[string]*emu.FaultPlan {
	return map[string]*emu.FaultPlan{
		FaultKey("wc", isa.BranchReg): {Ops: []emu.FaultOp{{Kind: emu.FaultPanic, N: 100}}},
	}
}

// TestRunnerPanicFirstErrorCancels: without keep-going, a panicking job
// surfaces as a structured error from Run — the pool (and the process)
// survives, and the error names the panic.
func TestRunnerPanicFirstErrorCancels(t *testing.T) {
	r := Runner{Parallelism: 4}
	_, err := r.Run(context.Background(), Spec{
		Workloads: []string{"wc", "sieve"},
		Options:   driver.DefaultOptions(),
		Faults:    panicFaults(),
	})
	if err == nil {
		t.Fatal("suite with a panicking cell succeeded")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("error %v does not unwrap to *PanicError", err)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Errorf("error does not name the panic: %v", err)
	}
}

// TestKeepGoingSurvivesPanic: with keep-going, the panicking cell
// degrades to a typed failure while every other cell still measures.
func TestKeepGoingSurvivesPanic(t *testing.T) {
	r := Runner{Parallelism: 4}
	res, err := r.Run(context.Background(), Spec{
		Workloads: []string{"wc", "sieve"},
		Options:   driver.DefaultOptions(),
		KeepGoing: true,
		Faults:    panicFaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %d, want 1: %+v", len(res.Failures), res.Failures)
	}
	fe := res.Failures[0]
	if fe.Kind != FailPanic || fe.Workload != "wc" || fe.Machine != "BRM" {
		t.Errorf("failure = %+v, want wc/BRM panic", fe)
	}
	for _, p := range res.Programs {
		if p.Name == "wc" {
			if p.BRMErr == nil || p.BRMErr.Kind != FailPanic {
				t.Errorf("wc BRM cell error = %+v, want panic", p.BRMErr)
			}
			if p.Baseline.Instructions == 0 {
				t.Error("wc baseline cell lost its stats")
			}
		} else if p.Failed() || p.BRM.Instructions == 0 {
			t.Errorf("untouched workload %s degraded: %+v", p.Name, p)
		}
	}
}

// TestKeepGoingDeterministic: a keep-going run's result — stats, failure
// list, rendered tables, and JSON — is byte-identical at any parallelism.
func TestKeepGoingDeterministic(t *testing.T) {
	spec := Spec{
		Workloads: []string{"wc", "grep", "sieve"},
		Options:   driver.DefaultOptions(),
		KeepGoing: true,
		Faults: map[string]*emu.FaultPlan{
			FaultKey("wc", isa.BranchReg):   {Ops: []emu.FaultOp{{Kind: emu.FaultForceTrap, N: 50}}},
			FaultKey("sieve", isa.Baseline): {Ops: []emu.FaultOp{{Kind: emu.FaultTruncateBudget, N: 1, Budget: 200}}},
		},
	}
	render := func(par int) (string, string) {
		r := Runner{Parallelism: par}
		res, err := r.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		b, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(res), string(b)
	}
	wantTables, wantJSON := render(1)
	if !strings.Contains(wantTables, "FAIL(injected)") ||
		!strings.Contains(wantTables, "FAIL(step-budget)") {
		t.Fatalf("tables do not mark the faulted cells:\n%s", wantTables)
	}
	for _, par := range []int{2, 8} {
		tables, js := render(par)
		if tables != wantTables {
			t.Errorf("parallelism %d: tables differ:\n%s\n-- vs --\n%s", par, tables, wantTables)
		}
		if js != wantJSON {
			t.Errorf("parallelism %d: JSON differs", par)
		}
	}
}

// TestDifferentialOracle: when both machines run cleanly but disagree,
// the suite reports a typed output-mismatch failure.
func TestDifferentialOracle(t *testing.T) {
	// The BRM cell's data segment is corrupted before the first
	// instruction, so it returns a different status than the baseline —
	// cleanly, which is exactly what the oracle must catch.
	suite := []workloads.Workload{{
		Name:      "oracle",
		Source:    "int g = 7;\nint main(void) { return g; }",
		NoPrelude: true,
	}}
	faults := map[string]*emu.FaultPlan{
		FaultKey("oracle", isa.BranchReg): {Seed: 11,
			Ops: []emu.FaultOp{{Kind: emu.FaultFlipWord, Addr: isa.DataBase, N: 1}}},
	}

	var r Runner
	_, err := r.Run(context.Background(), Spec{
		Suite: suite, Options: driver.DefaultOptions(), Faults: faults,
	})
	if err == nil {
		t.Fatal("diverging machines passed the oracle")
	}
	var je *JobError
	if !errors.As(err, &je) || je.Kind != FailOracle {
		t.Fatalf("oracle error = %v, want kind %s", err, FailOracle)
	}

	// Keep-going mode records the mismatch and still returns the result.
	res, err := r.Run(context.Background(), Spec{
		Suite: suite, Options: driver.DefaultOptions(), Faults: faults, KeepGoing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || res.Failures[0].Kind != FailOracle {
		t.Fatalf("failures = %+v, want one %s", res.Failures, FailOracle)
	}
	if res.Programs[0].OracleErr == nil {
		t.Error("program row lost the oracle error")
	}
}
