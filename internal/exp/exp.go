// Package exp is the experiment harness: it compiles and runs the full
// Appendix I workload suite on both designed machines and regenerates every
// table and figure of the paper's evaluation — Table I's dynamic counts,
// the §7 cycle estimates and ratios, Figure 9's prefetch-distance rule, the
// §8/§9 cache study, and the §9 ablations over the branch-register
// optimizations and register count.
package exp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"branchreg/internal/cache"
	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/obs"
	"branchreg/internal/pipeline"
	"branchreg/internal/workloads"
)

// ProgramResult holds one workload's dynamic measurements on both
// machines. In keep-going mode a failed cell leaves its stats zero and
// carries a typed JobError instead; OracleErr reports a differential
// failure (both machines ran but disagreed on output or status).
type ProgramResult struct {
	Name        string
	Baseline    emu.Stats
	BRM         emu.Stats
	BaselineErr *JobError
	BRMErr      *JobError
	OracleErr   *JobError

	// BaselineEngine/BRMEngine name the emulator loop that executed each
	// cell (emu.EngineFused, emu.EngineFast, or emu.EngineInstrumented) —
	// LoopAuto's choice made explicit per run.
	BaselineEngine string
	BRMEngine      string
	// BaselineFusion/BRMFusion describe the block-fused engine's dynamic
	// behavior for each cell; zero unless that cell ran fused (or ran the
	// adaptive tier's promoted form).
	BaselineFusion emu.FusionStats
	BRMFusion      emu.FusionStats
	// BaselineRefusion/BRMRefusion describe the adaptive tier's promotion
	// behavior for each cell; zero unless that cell ran adaptive.
	BaselineRefusion emu.RefusionStats
	BRMRefusion      emu.RefusionStats
	// BaselineBlocks/BRMBlocks are the per-cell hot-block tables
	// (Spec.Profile only; top blocks by dynamic instructions).
	BaselineBlocks []obs.HotBlock
	BRMBlocks      []obs.HotBlock
}

// setCellError records a failed cell on the matching machine's slot.
func (p *ProgramResult) setCellError(kind isa.Kind, je *JobError) {
	if kind == isa.Baseline {
		p.BaselineErr = je
	} else {
		p.BRMErr = je
	}
}

// Failed reports whether any cell or the oracle failed.
func (p *ProgramResult) Failed() bool {
	return p.BaselineErr != nil || p.BRMErr != nil || p.OracleErr != nil
}

// SuiteResult is the full suite, plus totals. Failures collects every
// JobError in deterministic suite order (keep-going mode only; empty on
// a clean run).
type SuiteResult struct {
	Programs      []ProgramResult
	BaselineTotal emu.Stats
	BRMTotal      emu.Stats
	Failures      []*JobError
}

// HotBlockTables renders every profiled cell's hot-block table (the
// `brbench -profile` output). Empty when the suite ran unprofiled.
func (r *SuiteResult) HotBlockTables() string {
	var b strings.Builder
	for _, p := range r.Programs {
		if p.BaselineBlocks != nil {
			b.WriteString(obs.FormatHotBlocks(
				fmt.Sprintf("Hot blocks: %s on baseline", p.Name),
				p.BaselineBlocks, p.Baseline.Instructions))
			b.WriteByte('\n')
		}
		if p.BRMBlocks != nil {
			b.WriteString(obs.FormatHotBlocks(
				fmt.Sprintf("Hot blocks: %s on BRM", p.Name),
				p.BRMBlocks, p.BRM.Instructions))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RunSuite compiles and executes every workload on both machines,
// verifying that outputs agree.
//
// Deprecated: use Runner.Run, which parallelizes and caches compilations.
// RunSuite is the serial reference path (one worker).
func RunSuite(o driver.Options) (*SuiteResult, error) {
	return RunSuiteSubset(o, nil)
}

// RunSuiteSubset runs only the named workloads (nil = all).
//
// Deprecated: use Runner.Run with Spec.Workloads. RunSuiteSubset is the
// serial reference path (one worker).
func RunSuiteSubset(o driver.Options, names []string) (*SuiteResult, error) {
	r := Runner{Parallelism: 1}
	return r.Run(context.Background(), Spec{Workloads: names, Options: o})
}

// pct returns the percentage change from old to new. A degenerate cell
// (old == 0 with new != 0) reports ±Inf — rendered as "n/a" by fmtPct and
// as a string by the JSON schema — so it cannot read as "no change".
func pct(new, old int64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		if new > 0 {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	return 100 * float64(new-old) / float64(old)
}

// failOr renders a table cell: the value when the cell succeeded, or
// FAIL(<kind>) so a faulted cell can never read as a measurement.
func failOr(v int64, je *JobError) string {
	if je != nil {
		return fmt.Sprintf("FAIL(%s)", je.Kind)
	}
	return fmt.Sprintf("%d", v)
}

// fmtPct renders a pct value for the tables, spelling out degenerate
// cells instead of faking a number.
func fmtPct(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", v)
}

// Table1 renders the paper's Table I: dynamic instructions and data
// references on both machines with the percentage difference, per program
// and in total.
func (r *SuiteResult) Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Dynamic Measurements from the Two Machines\n")
	fmt.Fprintf(&b, "%-12s %15s %15s %8s   %15s %15s %8s\n",
		"program", "base insts", "BRM insts", "diff%", "base datarefs", "BRM datarefs", "diff%")
	for _, p := range r.Programs {
		if p.BaselineErr != nil || p.BRMErr != nil {
			// A failed cell has no stats: render FAIL(<kind>) instead of
			// fake zeros, and no percentage.
			fmt.Fprintf(&b, "%-12s %15s %15s %8s   %15s %15s %8s\n",
				p.Name,
				failOr(p.Baseline.Instructions, p.BaselineErr),
				failOr(p.BRM.Instructions, p.BRMErr), "n/a",
				failOr(p.Baseline.DataRefs(), p.BaselineErr),
				failOr(p.BRM.DataRefs(), p.BRMErr), "n/a")
			continue
		}
		fmt.Fprintf(&b, "%-12s %15d %15d %8s   %15d %15d %8s\n",
			p.Name,
			p.Baseline.Instructions, p.BRM.Instructions,
			fmtPct(pct(p.BRM.Instructions, p.Baseline.Instructions)),
			p.Baseline.DataRefs(), p.BRM.DataRefs(),
			fmtPct(pct(p.BRM.DataRefs(), p.Baseline.DataRefs())))
		if p.OracleErr != nil {
			fmt.Fprintf(&b, "%-12s   !! FAIL(%s): %s\n", "", p.OracleErr.Kind, p.OracleErr.Message)
		}
	}
	fmt.Fprintf(&b, "%-12s %15d %15d %8s   %15d %15d %8s\n",
		"TOTAL",
		r.BaselineTotal.Instructions, r.BRMTotal.Instructions,
		fmtPct(pct(r.BRMTotal.Instructions, r.BaselineTotal.Instructions)),
		r.BaselineTotal.DataRefs(), r.BRMTotal.DataRefs(),
		fmtPct(pct(r.BRMTotal.DataRefs(), r.BaselineTotal.DataRefs())))
	return b.String()
}

// InstructionSavings returns the percentage fewer instructions the BRM
// executed (positive = fewer, the paper reports 6.8%).
func (r *SuiteResult) InstructionSavings() float64 {
	return -pct(r.BRMTotal.Instructions, r.BaselineTotal.Instructions)
}

// ExtraDataRefs returns the percentage additional data references on the
// BRM (the paper reports 2.0%).
func (r *SuiteResult) ExtraDataRefs() float64 {
	return pct(r.BRMTotal.DataRefs(), r.BaselineTotal.DataRefs())
}

// CycleRow is one pipeline-depth row of the §7 cycle estimate.
type CycleRow struct {
	Stages         int
	BaselineCycles int64
	BRMCycles      int64
	SavingsPercent float64
}

// Cycles estimates total cycles at each pipeline depth (the paper reports
// 10.6% fewer cycles at 3 stages, 12.8% at 4).
func (r *SuiteResult) Cycles(stages []int) []CycleRow {
	var out []CycleRow
	for _, n := range stages {
		m := pipeline.Model{Stages: n}
		bc := m.BaselineCycles(&r.BaselineTotal)
		rc := m.BRMCycles(&r.BRMTotal)
		out = append(out, CycleRow{
			Stages:         n,
			BaselineCycles: bc,
			BRMCycles:      rc,
			SavingsPercent: 100 * float64(bc-rc) / float64(bc),
		})
	}
	return out
}

// CycleTable renders the cycle estimates.
func (r *SuiteResult) CycleTable(stages []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Estimated cycles (one cycle per instruction plus transfer delays)\n")
	fmt.Fprintf(&b, "%-8s %15s %15s %10s\n", "stages", "baseline", "branch regs", "savings")
	for _, row := range r.Cycles(stages) {
		fmt.Fprintf(&b, "%-8d %15d %15d %9.1f%%\n",
			row.Stages, row.BaselineCycles, row.BRMCycles, row.SavingsPercent)
	}
	return b.String()
}

// Ratios are the §7 headline ratios.
type Ratios struct {
	TransferPercent     float64 // transfers as % of baseline instructions (~14%)
	TransfersPerCalc    float64 // executed transfers per target calc (>2:1)
	NoopReplacedPercent float64 // baseline noops eliminated on the BRM (~36%)
	SavedPerExtraRef    float64 // fewer instructions per extra data ref (~10:1)
	DelayedTransferPct  float64 // taken transfers with a late calc (~13.86%)
}

// ComputeRatios derives the §7 ratios from the suite totals.
func (r *SuiteResult) ComputeRatios() Ratios {
	base, brm := &r.BaselineTotal, &r.BRMTotal
	var out Ratios
	if base.Instructions > 0 {
		out.TransferPercent = 100 * float64(base.Transfers()) / float64(base.Instructions)
	}
	if brm.BrCalcs > 0 {
		out.TransfersPerCalc = float64(brm.Transfers()) / float64(brm.BrCalcs)
	}
	if base.Noops > 0 {
		out.NoopReplacedPercent = 100 * float64(base.Noops-brm.Noops) / float64(base.Noops)
	}
	saved := base.Instructions - brm.Instructions
	extra := brm.DataRefs() - base.DataRefs()
	if extra > 0 {
		out.SavedPerExtraRef = float64(saved) / float64(extra)
	}
	taken := brm.PrefetchHit + brm.PrefetchMiss
	if taken > 0 {
		out.DelayedTransferPct = 100 * float64(brm.PrefetchMiss) / float64(taken)
	}
	return out
}

// RatiosTable renders the ratios.
func (r *SuiteResult) RatiosTable() string {
	rt := r.ComputeRatios()
	var b strings.Builder
	fmt.Fprintf(&b, "Headline ratios (paper section 7)\n")
	fmt.Fprintf(&b, "transfers of control / baseline instructions : %6.2f%%  (paper ~14%%)\n", rt.TransferPercent)
	fmt.Fprintf(&b, "transfers executed per target address calc   : %6.2f   (paper >2)\n", rt.TransfersPerCalc)
	fmt.Fprintf(&b, "baseline noops eliminated on the BRM         : %6.2f%%  (paper ~36%% of delay-slot noops)\n", rt.NoopReplacedPercent)
	fmt.Fprintf(&b, "instructions saved per extra data reference  : %6.2f   (paper ~10)\n", rt.SavedPerExtraRef)
	fmt.Fprintf(&b, "taken transfers with a late target calc      : %6.2f%%  (paper ~13.9%%)\n", rt.DelayedTransferPct)
	return b.String()
}

// DistanceHistogram renders Figure 9's measured counterpart: the dynamic
// distribution of calc-to-transfer distances on the BRM.
func (r *SuiteResult) DistanceHistogram() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Prefetch distance histogram (instructions between target calc and transfer)\n")
	var total int64
	for _, v := range r.BRMTotal.DistHist {
		total += v
	}
	for d, v := range r.BRMTotal.DistHist {
		label := fmt.Sprintf("%d", d)
		if d == len(r.BRMTotal.DistHist)-1 {
			label = fmt.Sprintf(">=%d", d)
		}
		pctv := 0.0
		if total > 0 {
			pctv = 100 * float64(v) / float64(total)
		}
		marker := ""
		if d < emu.MinPrefetchDist {
			marker = "  <- pipeline delay (distance < 2, Figure 9)"
		}
		fmt.Fprintf(&b, "%5s: %12d (%5.1f%%)%s\n", label, v, pctv, marker)
	}
	return b.String()
}

// ---- cache study (experiment E10) ----

// CacheResult is one (configuration, prefetch-mode) measurement.
type CacheResult struct {
	Config   cache.Config
	Prefetch bool
	Stats    cache.Stats
}

// RunCacheStudy executes the named workloads (nil = a representative
// subset) on the BRM against each cache configuration, with and without
// prefetch-on-assignment, returning delay cycles and pollution per
// configuration.
//
// Deprecated: use Runner.CacheStudy, which parallelizes and caches
// compilations. RunCacheStudy is the serial reference path (one worker).
func RunCacheStudy(o driver.Options, cfgs []cache.Config, names []string) ([]CacheResult, error) {
	r := Runner{Parallelism: 1}
	return r.CacheStudy(context.Background(), o, cfgs, names)
}

func addCache(dst, src *cache.Stats) {
	dst.Fetches += src.Fetches
	dst.Hits += src.Hits
	dst.Misses += src.Misses
	dst.PartialWaits += src.PartialWaits
	dst.DelayCycles += src.DelayCycles
	dst.Prefetches += src.Prefetches
	dst.PrefetchDup += src.PrefetchDup
	dst.PrefetchUsed += src.PrefetchUsed
	dst.PrefetchWaste += src.PrefetchWaste
	dst.Pollution += src.Pollution
}

// CacheTable renders the cache study.
func CacheTable(results []CacheResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Instruction cache study (sections 8-9): prefetch on branch register assignment\n")
	fmt.Fprintf(&b, "%-26s %-9s %12s %9s %12s %10s %10s\n",
		"organization", "prefetch", "fetch delays", "hit rate", "miss+wait", "pollution", "waste")
	for _, r := range results {
		pre := "off"
		if r.Prefetch {
			pre = "on"
		}
		fmt.Fprintf(&b, "%-26s %-9s %12d %8.2f%% %12d %10d %10d\n",
			r.Config.String(), pre, r.Stats.DelayCycles, 100*r.Stats.HitRate(),
			r.Stats.Misses+r.Stats.PartialWaits, r.Stats.Pollution, r.Stats.PrefetchWaste)
	}
	return b.String()
}

// ---- ablations (experiment E11) ----

// AblationResult measures one BRM configuration over the suite.
type AblationResult struct {
	Name         string
	Instructions int64
	DataRefs     int64
	Cycles3      int64
	BrCalcs      int64
	Noops        int64
}

// RunAblations measures the paper's §9 design alternatives: each
// optimization disabled, and fewer branch registers.
//
// Deprecated: use Runner.Ablations, which parallelizes and caches
// compilations. RunAblations is the serial reference path (one worker).
func RunAblations(names []string) ([]AblationResult, error) {
	r := Runner{Parallelism: 1}
	return r.Ablations(context.Background(), names)
}

// AblationTable renders ablation results.
func AblationTable(results []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "BRM ablations (section 9 design alternatives)\n")
	fmt.Fprintf(&b, "%-22s %14s %12s %14s %12s %10s\n",
		"variant", "instructions", "data refs", "cycles (3st)", "target calcs", "noops")
	for _, r := range results {
		fmt.Fprintf(&b, "%-22s %14d %12d %14d %12d %10d\n",
			r.Name, r.Instructions, r.DataRefs, r.Cycles3, r.BrCalcs, r.Noops)
	}
	return b.String()
}

// Names returns the workload names in suite order.
func Names() []string {
	var out []string
	for _, w := range workloads.All() {
		out = append(out, w.Name)
	}
	sort.Strings(out)
	return out
}
