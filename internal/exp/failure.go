package exp

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"branchreg/internal/emu"
	"branchreg/internal/obs"
)

// Failure kinds beyond the emulator's trap taxonomy. A JobError.Kind is
// either one of these or an emu.TrapKind name (emu.ParseTrapKind
// recognizes the latter).
const (
	// FailCompile is a front-end/codegen error: the cell never ran.
	FailCompile = "compile"
	// FailPanic is a compiler or emulator panic converted by the worker
	// pool's recover into a structured failure.
	FailPanic = "panic"
	// FailTimeout is a per-job deadline expiring.
	FailTimeout = "timeout"
	// FailOracle is the differential oracle: baseline and BRM disagreed
	// on a workload's output or exit status.
	FailOracle = "output-mismatch"
	// FailRun is a non-trap execution error (a malformed program image).
	FailRun = "run"
)

// JobError is one failed experiment cell, machine-readable: which cell,
// in which phase, classified by kind (trap taxonomy or the Fail*
// constants above). It is the per-job error object of report schema v2.
type JobError struct {
	Phase    string `json:"phase"`
	Workload string `json:"workload,omitempty"`
	Machine  string `json:"machine,omitempty"`
	Kind     string `json:"kind"`
	Message  string `json:"message"`
	// Trap carries the emulator's full fault context when Kind is a
	// trap name.
	Trap *emu.Trap `json:"trap,omitempty"`
}

// Error implements error.
func (e *JobError) Error() string {
	where := e.Phase
	if e.Workload != "" {
		where = e.Workload
		if e.Machine != "" {
			where += " on " + e.Machine
		}
	}
	return fmt.Sprintf("exp: %s: %s: %s", where, e.Kind, e.Message)
}

// PanicError is a panic recovered from a pool job. The stack is kept for
// the log; JobError.Message carries only the panic value so keep-going
// reports stay byte-deterministic.
type PanicError struct {
	Value string
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string { return "panic: " + e.Value }

// newJobError classifies err into a JobError for one cell. compiled
// tells the classifier whether the cell got past compilation, so
// non-trap errors split into compile vs run failures.
func newJobError(phase, workload, machine string, compiled bool, err error) *JobError {
	je := &JobError{
		Phase:    phase,
		Workload: workload,
		Machine:  machine,
		Message:  err.Error(),
	}
	var trap *emu.Trap
	var pe *PanicError
	switch {
	case errors.As(err, &trap):
		je.Kind = trap.Kind.String()
		je.Trap = trap
	case errors.As(err, &pe):
		je.Kind = FailPanic
		je.Message = pe.Error()
	case errors.Is(err, context.DeadlineExceeded):
		je.Kind = FailTimeout
	case compiled:
		je.Kind = FailRun
	default:
		je.Kind = FailCompile
	}
	// Keep-going failure counts by kind (trap taxonomy or Fail* constant).
	// Trap-taxonomy kinds are kebab-case ("oob-load"); metric segments
	// are [a-z0-9_], so the hyphens map to underscores.
	obs.Default.Counter("exp.fail." + strings.ReplaceAll(je.Kind, "-", "_")).Inc()
	return je
}
