package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"
)

// reportSpec is a scaled-down `brbench -all`: every phase, few workloads.
func reportSpec() AllSpec {
	return AllSpec{
		Suite:      true,
		CacheStudy: true,
		Ablations:  true,
		Validate:   true,
		Align:      true,
		Workloads:  []string{"wc", "grep", "sieve"},
	}
}

// TestReportRoundTrip runs every phase through one Runner and checks the
// acceptance criteria end to end: each (program, machine, config) is
// compiled at most once — visible as Misses == Entries plus a healthy hit
// count in the JSON — and the emitted JSON round-trips losslessly.
func TestReportRoundTrip(t *testing.T) {
	r := Runner{}
	res, err := r.RunAll(context.Background(), reportSpec())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Schema != ReportSchemaVersion {
		t.Errorf("schema = %d", rep.Schema)
	}

	// Compile-at-most-once: misses count compiler invocations, entries
	// distinct keys; a recompile would make misses exceed entries. The
	// suite, cache study, validation, and the ablations' full variant all
	// revisit the same programs, so hits must be plentiful.
	cc := rep.CompileCache
	if cc.Misses != cc.Entries {
		t.Errorf("compiled %d times for %d distinct keys: some key compiled twice", cc.Misses, cc.Entries)
	}
	if cc.Hits == 0 {
		t.Error("no cache hits across -all phases: sharing is broken")
	}
	if cc.Requests != cc.Hits+cc.Misses {
		t.Errorf("inconsistent counters: %+v", cc)
	}
	// 3 workloads x 2 machines (suite) + 3 x 8 non-default ablation
	// variants + 1 aligned config x 3 workloads = 33 distinct keys; the
	// cache study, validation, and the ablations' full variant are all
	// hits. An exact bound keeps the dedup honest.
	if want := int64(33); cc.Entries != want {
		t.Errorf("entries = %d, want %d distinct (source, machine, options) keys", cc.Entries, want)
	}

	// Phases must have been timed in order.
	if len(res.Phases) != 6 { // suite, cache, ablations, 2x validation, align
		t.Errorf("phases = %v", res.Phases)
	}

	b, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("JSON round trip is lossy")
	}
	if back.Suite == nil || len(back.Suite.Programs) != 3 {
		t.Fatalf("suite programs lost in round trip")
	}
	if back.Suite.Programs[0].Baseline.Instructions == 0 {
		t.Error("per-program stats lost in round trip")
	}
	if len(back.CacheStudy) != len(DefaultCacheConfigs())*2 {
		t.Errorf("cache study rows = %d", len(back.CacheStudy))
	}
	if len(back.Ablations) != 9 {
		t.Errorf("ablation rows = %d", len(back.Ablations))
	}
	if len(back.Validation) != 2 || len(back.Validation[0].Rows) != 6 {
		t.Errorf("validation shape: %+v", back.Validation)
	}
	if back.Alignment == nil || len(back.Alignment.Rows) != 2 {
		t.Errorf("alignment shape: %+v", back.Alignment)
	}
}

func TestDecodeReportRejectsWrongSchema(t *testing.T) {
	if _, err := DecodeReport([]byte(`{"schema": 999}`)); err == nil {
		t.Fatal("future schema accepted")
	}
	if _, err := DecodeReport([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFloatJSON(t *testing.T) {
	cases := []float64{0, -6.8, 2.0, math.Inf(1), math.Inf(-1), math.NaN()}
	for _, v := range cases {
		b, err := json.Marshal(Float(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Float
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		got := float64(back)
		if math.IsNaN(v) {
			if !math.IsNaN(got) {
				t.Errorf("NaN round-tripped to %v", got)
			}
			continue
		}
		if got != v {
			t.Errorf("%v round-tripped to %v via %s", v, got, b)
		}
	}
	// A struct holding +Inf must marshal (plain float64 would fail).
	if _, err := json.Marshal(ProgramReport{InstDiffPct: Float(math.Inf(1))}); err != nil {
		t.Errorf("struct with +Inf: %v", err)
	}
}
