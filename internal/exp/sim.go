package exp

import (
	"context"
	"fmt"
	"strings"

	"branchreg/internal/cache"
	"branchreg/internal/driver"
	"branchreg/internal/isa"
)

// SimRow compares the paper's aggregate cycle model against the dynamic
// per-event pipeline simulation for one workload.
type SimRow struct {
	Name          string
	Kind          isa.Kind
	ModelCycles   int64
	SimCycles     int64
	OverchargePct float64
}

// RunModelValidation runs the analytic model and the dynamic simulation
// side by side. The paper's model charges every executed transfer on the
// baseline machine (taken or not); the simulation charges only taken ones,
// quantifying the model's overstatement.
//
// Deprecated: use Runner.ModelValidation, which parallelizes and caches
// compilations. RunModelValidation is the serial reference path.
func RunModelValidation(o driver.Options, stages int, names []string) ([]SimRow, error) {
	r := Runner{Parallelism: 1}
	return r.ModelValidation(context.Background(), o, stages, names)
}

// SimTable renders the model-vs-simulation comparison.
func SimTable(rows []SimRow, stages int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cycle model validation (%d stages): the paper's aggregate model vs. a\n", stages)
	fmt.Fprintf(&b, "per-event pipeline simulation (untaken baseline branches cost nothing)\n")
	fmt.Fprintf(&b, "%-12s %-10s %14s %14s %12s\n", "program", "machine", "model cycles", "sim cycles", "model excess")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-10s %14d %14d %11.2f%%\n",
			r.Name, r.Kind, r.ModelCycles, r.SimCycles, r.OverchargePct)
	}
	return b.String()
}

// AlignRow measures the §9 function-alignment suggestion on the cache.
type AlignRow struct {
	AlignWords  int
	DelayCycles int64
	Misses      int64
}

// RunAlignmentStudy measures instruction-fetch delays on a small cache
// with function entries unaligned versus aligned to cache lines (§9: "the
// beginning of the function could be aligned on a cache line boundary").
//
// Deprecated: use Runner.AlignmentStudy, which parallelizes and caches
// compilations. RunAlignmentStudy is the serial reference path.
func RunAlignmentStudy(cfg cache.Config, names []string) ([]AlignRow, error) {
	r := Runner{Parallelism: 1}
	return r.AlignmentStudy(context.Background(), cfg, names)
}

// AlignTable renders the alignment study.
func AlignTable(rows []AlignRow, cfg cache.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Function-entry alignment study (section 9) on %s\n", cfg)
	fmt.Fprintf(&b, "%-22s %14s %12s\n", "layout", "fetch delays", "miss+wait")
	for _, r := range rows {
		name := "unaligned"
		if r.AlignWords > 1 {
			name = fmt.Sprintf("aligned to %d words", r.AlignWords)
		}
		fmt.Fprintf(&b, "%-22s %14d %12d\n", name, r.DelayCycles, r.Misses)
	}
	return b.String()
}
