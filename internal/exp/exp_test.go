package exp

import (
	"strings"
	"testing"

	"branchreg/internal/cache"
	"branchreg/internal/driver"
)

// fastSubset keeps unit tests quick; the full suite runs in the benchmark
// harness and cmd/brbench.
var fastSubset = []string{"wc", "grep", "matmult", "dhrystone", "tinycc"}

func TestRunSuiteSubset(t *testing.T) {
	r, err := RunSuiteSubset(driver.DefaultOptions(), fastSubset)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Programs) != len(fastSubset) {
		t.Fatalf("got %d programs", len(r.Programs))
	}
	if r.BaselineTotal.Instructions == 0 || r.BRMTotal.Instructions == 0 {
		t.Fatal("empty totals")
	}
	// The headline shape: the BRM executes fewer instructions but makes at
	// least as many data references.
	if r.InstructionSavings() <= 0 {
		t.Errorf("instruction savings = %.2f%%, want > 0", r.InstructionSavings())
	}
	if r.ExtraDataRefs() < 0 {
		t.Errorf("extra data refs = %.2f%%, want >= 0", r.ExtraDataRefs())
	}
}

func TestTable1Rendering(t *testing.T) {
	r, err := RunSuiteSubset(driver.DefaultOptions(), []string{"wc", "sieve"})
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Table1()
	for _, want := range []string{"Table I", "wc", "sieve", "TOTAL", "diff%"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table I missing %q:\n%s", want, tbl)
		}
	}
}

func TestCycleEstimates(t *testing.T) {
	r, err := RunSuiteSubset(driver.DefaultOptions(), fastSubset)
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Cycles([]int{3, 4})
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	// The BRM must save cycles, and deeper pipelines must save more
	// (paper: 10.6% at 3 stages, 12.8% at 4).
	if rows[0].SavingsPercent <= 0 {
		t.Errorf("3-stage savings = %.2f%%", rows[0].SavingsPercent)
	}
	if rows[1].SavingsPercent <= rows[0].SavingsPercent {
		t.Errorf("4-stage savings (%.2f%%) should exceed 3-stage (%.2f%%)",
			rows[1].SavingsPercent, rows[0].SavingsPercent)
	}
	if !strings.Contains(r.CycleTable([]int{3, 4}), "savings") {
		t.Error("cycle table missing header")
	}
}

func TestRatios(t *testing.T) {
	r, err := RunSuiteSubset(driver.DefaultOptions(), fastSubset)
	if err != nil {
		t.Fatal(err)
	}
	rt := r.ComputeRatios()
	if rt.TransferPercent < 5 || rt.TransferPercent > 30 {
		t.Errorf("transfer%% = %.2f, expected near the paper's ~14%%", rt.TransferPercent)
	}
	if rt.TransfersPerCalc < 2 {
		t.Errorf("transfers per calc = %.2f, paper reports over 2", rt.TransfersPerCalc)
	}
	if rt.DelayedTransferPct < 0 || rt.DelayedTransferPct > 50 {
		t.Errorf("delayed transfer %% = %.2f", rt.DelayedTransferPct)
	}
	s := r.RatiosTable()
	if !strings.Contains(s, "transfers of control") {
		t.Error("ratios table truncated")
	}
	if !strings.Contains(r.DistanceHistogram(), "pipeline delay") {
		t.Error("histogram missing annotation")
	}
}

func TestCacheStudy(t *testing.T) {
	cfgs := []cache.Config{
		{LineWords: 4, Sets: 16, Assoc: 1, MissPenalty: 8},
		{LineWords: 4, Sets: 8, Assoc: 2, MissPenalty: 8},
	}
	res, err := RunCacheStudy(driver.DefaultOptions(), cfgs, []string{"wc", "grep"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 { // 2 configs x prefetch on/off
		t.Fatalf("got %d results", len(res))
	}
	// Prefetch must not increase demand misses-at-full-penalty and must
	// reduce total fetch delay for these workloads on small caches.
	for i := 0; i < len(res); i += 2 {
		off, on := res[i], res[i+1]
		if off.Prefetch || !on.Prefetch {
			t.Fatal("result ordering wrong")
		}
		if on.Stats.DelayCycles > off.Stats.DelayCycles {
			t.Errorf("%v: prefetch increased delays: %d -> %d",
				on.Config, off.Stats.DelayCycles, on.Stats.DelayCycles)
		}
		if on.Stats.Prefetches == 0 {
			t.Error("prefetch run issued no prefetches")
		}
	}
	if !strings.Contains(CacheTable(res), "organization") {
		t.Error("cache table header missing")
	}
}

func TestAblations(t *testing.T) {
	res, err := RunAblations([]string{"matmult", "wc"})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationResult{}
	for _, r := range res {
		byName[r.Name] = r
	}
	full := byName["full (8 bregs)"]
	noHoist := byName["no hoisting"]
	if full.Instructions == 0 || noHoist.Instructions == 0 {
		t.Fatal("missing variants")
	}
	// Hoisting is the central optimization: disabling it must cost
	// instructions (target calcs return to the loop bodies).
	if noHoist.Instructions <= full.Instructions {
		t.Errorf("no-hoist (%d) should execute more instructions than full (%d)",
			noHoist.Instructions, full.Instructions)
	}
	if noHoist.BrCalcs <= full.BrCalcs {
		t.Errorf("no-hoist should execute more target calcs: %d vs %d",
			noHoist.BrCalcs, full.BrCalcs)
	}
	// Fewer branch registers cannot beat the full configuration.
	if b3 := byName["3 branch registers"]; b3.Instructions < full.Instructions {
		t.Errorf("3 bregs (%d insts) beats 8 bregs (%d)", b3.Instructions, full.Instructions)
	}
	if !strings.Contains(AblationTable(res), "variant") {
		t.Error("ablation table header missing")
	}
}

func TestNames(t *testing.T) {
	n := Names()
	if len(n) != 19 {
		t.Errorf("names = %d", len(n))
	}
}
