package exp

import (
	"context"
	"strings"
	"testing"

	"branchreg/internal/driver"
	"branchreg/internal/isa"
)

// The paper's running example (Figures 2-4): strlen compiled for both
// machines. The test checks the structural properties the figures
// illustrate rather than exact instruction sequences.
const strlenSrc = `
int strlen(char *s) {
    int n = 0;
    if (s)
        for (; *s; s++)
            n++;
    return n;
}
char text[20] = "branch registers";
int main(void) { return strlen(text); }
`

func compileFn(t *testing.T, kind isa.Kind) *isa.Function {
	t.Helper()
	p, err := driver.Compile(context.Background(), strlenSrc, kind, driver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Funcs {
		if f.Name == "strlen" {
			return f
		}
	}
	t.Fatal("strlen not found")
	return nil
}

// Figure 3 properties: the baseline machine uses compares, condition-code
// branches and delay slots (including a filled return slot).
func TestStrlenFigure3Baseline(t *testing.T) {
	f := compileFn(t, isa.Baseline)
	var hasCmp, hasCondBranch, hasJr, slotFilled bool
	for i, in := range f.Code {
		switch in.Op {
		case isa.OpCmp:
			hasCmp = true
		case isa.OpB:
			if in.Cond != isa.CondAlways {
				hasCondBranch = true
			}
		case isa.OpJr:
			hasJr = true
			// Figure 3 fills the return's delay slot with the result move.
			if i+1 < len(f.Code) && f.Code[i+1].Op != isa.OpNop {
				slotFilled = true
			}
		}
	}
	if !hasCmp || !hasCondBranch || !hasJr {
		t.Errorf("baseline strlen missing cmp/branch/return:\n%s", f.Listing())
	}
	if !slotFilled {
		t.Errorf("return delay slot not filled (Figure 3 fills it):\n%s", f.Listing())
	}
}

// Figure 4 properties: the branch-register machine hoists target
// calculations into the loop preheader, uses compare-with-assignment, and
// carries the loop's back transfer on a real instruction.
func TestStrlenFigure4BRM(t *testing.T) {
	f := compileFn(t, isa.BranchReg)
	lst := f.Listing()
	var calcs, cmpbrs, attachedTransfers, noopTransfers int
	for _, in := range f.Code {
		switch in.Op {
		case isa.OpBrCalc:
			calcs++
		case isa.OpCmpBr:
			cmpbrs++
		}
		if in.BR != isa.PCBr {
			if in.Op == isa.OpNop {
				noopTransfers++
			} else {
				attachedTransfers++
			}
		}
	}
	if calcs < 2 {
		t.Errorf("expected hoisted target calcs, found %d:\n%s", calcs, lst)
	}
	if cmpbrs < 2 {
		t.Errorf("expected compare-with-assignment instructions, found %d:\n%s", cmpbrs, lst)
	}
	if attachedTransfers == 0 {
		t.Errorf("no transfer rides a real instruction:\n%s", lst)
	}
	// The RA must be kept in a branch register (strlen makes no calls).
	if !strings.Contains(lst, "]=b[7]") {
		t.Errorf("return address not saved to a branch register:\n%s", lst)
	}
	// No baseline branch instructions exist on this machine.
	for _, in := range f.Code {
		if in.Op.IsBaselineBranch() {
			t.Errorf("baseline branch op in BRM code: %v", in.Op)
		}
	}
}

// The loop body must be shorter on the branch-register machine (the
// paper: five loop instructions versus six with a delayed branch).
func TestStrlenLoopShorter(t *testing.T) {
	o := driver.DefaultOptions()
	// Run on a longer string so loop iterations dominate.
	src := strings.Replace(strlenSrc, `"branch registers"`, `"branch registers!!"`, 1)
	src = strings.Replace(src, "char text[20]", "char text[20]", 1)
	base, err := driver.Exec(context.Background(), driver.Request{Source: src, Kind: isa.Baseline, Input: "", Options: o})
	if err != nil {
		t.Fatal(err)
	}
	brm, err := driver.Exec(context.Background(), driver.Request{Source: src, Kind: isa.BranchReg, Input: "", Options: o})
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != brm.Status {
		t.Fatalf("machines disagree: %d vs %d", base.Status, brm.Status)
	}
	if brm.Stats.Instructions >= base.Stats.Instructions {
		t.Errorf("BRM strlen not cheaper: %d vs %d instructions",
			brm.Stats.Instructions, base.Stats.Instructions)
	}
	// Note: noop counts can tie on this tiny program — the paper's own
	// Figure 4 keeps the conditional carrier noop inside the loop
	// (NL=NL;b[0]=b[7]); the suite-level measurement is where the noop
	// reduction shows.
}
