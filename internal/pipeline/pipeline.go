// Package pipeline implements the paper's pipeline timing analysis:
// the analytic cycle model of §7 (delays per transfer of control for the
// baseline machine's delayed branches versus the branch-register machine's
// prefetched targets), the delay tables of Figures 5 and 7, the
// prefetch-distance rule of Figure 9, and a symbolic pipeline tracer that
// reproduces the stage-by-stage action tables of Figures 6 and 8.
package pipeline

import (
	"fmt"
	"strings"

	"branchreg/internal/emu"
)

// Model is an N-stage pipeline (N >= 3; the paper uses 3 and 4).
type Model struct {
	Stages int
	// FastCompare models the §9 alternative where the compare tests its
	// condition during decode and updates the PC directly, removing the
	// N-3 conditional-transfer delay.
	FastCompare bool
}

// BaselineTransferDelay is the bubble per executed transfer of control on
// the baseline machine with a one-instruction delayed branch: N-2 (paper
// §6, Figures 5b/7b).
func (m Model) BaselineTransferDelay() int64 {
	d := int64(m.Stages - 2)
	if d < 0 {
		return 0
	}
	return d
}

// NoDelayTransferDelay is the bubble per transfer on a conventional
// machine without delayed branches: N-1 (Figures 5a/7a).
func (m Model) NoDelayTransferDelay() int64 {
	d := int64(m.Stages - 1)
	if d < 0 {
		return 0
	}
	return d
}

// BRMCondDelay is the bubble per conditional transfer on the
// branch-register machine: N-3, because the target instruction register is
// selected by the compare's execute stage (Figure 7c). With the §9 fast
// compare the selection happens during decode and the delay vanishes.
func (m Model) BRMCondDelay() int64 {
	if m.FastCompare {
		return 0
	}
	d := int64(m.Stages - 3)
	if d < 0 {
		return 0
	}
	return d
}

// BaselineCycles estimates total cycles for a baseline run: one cycle per
// instruction plus the branch bubble for every executed transfer (the
// paper's §7 estimate charges every transfer, taken or not).
func (m Model) BaselineCycles(s *emu.Stats) int64 {
	return s.Instructions + m.BaselineTransferDelay()*s.Transfers()
}

// BRMCycles estimates total cycles for a branch-register machine run:
// one cycle per instruction, N-3 per conditional transfer, plus the
// prefetch-distance penalty for taken transfers whose target address was
// calculated fewer than MinPrefetchDist instructions earlier (Figure 9).
func (m Model) BRMCycles(s *emu.Stats) int64 {
	cycles := s.Instructions
	cycles += m.BRMCondDelay() * s.CondBranches
	cycles += PrefetchPenalty(s)
	return cycles
}

// PrefetchPenalty sums the late-calculation delay cycles: a taken transfer
// whose target calc happened d < MinPrefetchDist instructions before it
// stalls MinPrefetchDist-d cycles waiting for the instruction register.
func PrefetchPenalty(s *emu.Stats) int64 {
	var p int64
	for d := 0; d < emu.MinPrefetchDist; d++ {
		p += int64(emu.MinPrefetchDist-d) * s.DistHist[d]
	}
	return p
}

// DelayTable is one row of Figures 5/7: delays per transfer kind for the
// three machine organizations at a given stage count.
type DelayTable struct {
	Stages     int
	NoDelay    int64 // conventional machine, no delayed branch
	Delayed    int64 // baseline: one-slot delayed branch
	BranchRegs int64 // branch-register machine (prefetched target)
}

// Figure5 returns the unconditional-transfer delay table for the given
// pipeline depths (paper Figure 5: N-1, N-2, 0).
func Figure5(stages []int) []DelayTable {
	var out []DelayTable
	for _, n := range stages {
		m := Model{Stages: n}
		out = append(out, DelayTable{
			Stages:     n,
			NoDelay:    m.NoDelayTransferDelay(),
			Delayed:    m.BaselineTransferDelay(),
			BranchRegs: 0,
		})
	}
	return out
}

// Figure7 returns the conditional-transfer delay table (paper Figure 7:
// N-1, N-2, N-3).
func Figure7(stages []int) []DelayTable {
	var out []DelayTable
	for _, n := range stages {
		m := Model{Stages: n}
		out = append(out, DelayTable{
			Stages:     n,
			NoDelay:    m.NoDelayTransferDelay(),
			Delayed:    m.BaselineTransferDelay(),
			BranchRegs: m.BRMCondDelay(),
		})
	}
	return out
}

// FormatDelayTables renders delay tables as the paper-style comparison.
func FormatDelayTables(title string, ts []DelayTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %-10s %-14s %-16s\n", "stages", "no delay", "delayed branch", "branch registers")
	for _, t := range ts {
		fmt.Fprintf(&b, "%-8d %-10d %-14d %-16d\n", t.Stages, t.NoDelay, t.Delayed, t.BranchRegs)
	}
	return b.String()
}

// MinCalcDistance returns the minimum number of instructions that must
// separate a branch target address calculation from its transfer so the
// prefetched instruction is ready for decode, given a one-cycle cache
// access (paper Figure 9). For the three-stage pipeline this is 2.
func MinCalcDistance(stages, cacheCycles int) int {
	// The calc completes at the end of its execute stage; the instruction
	// must be in the instruction register before the transfer's decode
	// ends. With E = stage `stages`-1 (0-based F=0) and a cacheCycles
	// fetch, the separation must be at least cacheCycles+1 instructions.
	d := cacheCycles + 1
	if d < 1 {
		d = 1
	}
	return d
}
