package pipeline

import (
	"context"
	"testing"

	"branchreg/internal/driver"
	"branchreg/internal/isa"
)

const simProgram = `
int main(void) {
    int s = 0;
    for (int i = 0; i < 200; i++) {
        if (i % 3 == 0) s += i;
        else s -= 1;
    }
    return s & 255;
}
`

func compileFor(t *testing.T, kind isa.Kind) *isa.Program {
	t.Helper()
	p, err := driver.Compile(context.Background(), simProgram, kind, driver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSimulateBaseline(t *testing.T) {
	p := compileFor(t, isa.Baseline)
	sim, err := Simulate(p, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Cycles <= sim.Instructions {
		t.Errorf("baseline must have bubbles: %d cycles, %d instructions",
			sim.Cycles, sim.Instructions)
	}
	if sim.CPI() <= 1.0 || sim.CPI() > 2.0 {
		t.Errorf("implausible CPI %.3f", sim.CPI())
	}
	// The aggregate model charges untaken conditionals too, so it must be
	// at least the simulated count.
	cmp, err := CompareModel(context.Background(), p, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ModelCycles < cmp.SimCycles {
		t.Errorf("model (%d) below simulation (%d): the every-transfer charge should be an upper bound",
			cmp.ModelCycles, cmp.SimCycles)
	}
	if cmp.OverchargePct < 0 {
		t.Errorf("overcharge %.2f%%", cmp.OverchargePct)
	}
}

func TestSimulateBRM(t *testing.T) {
	p := compileFor(t, isa.BranchReg)
	sim3, err := Simulate(p, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	// At 3 stages the BRM pays only late-calc penalties, which our
	// scheduler mostly avoids: CPI should be very close to 1.
	if sim3.CPI() > 1.05 {
		t.Errorf("BRM 3-stage CPI = %.3f, expected near 1.0", sim3.CPI())
	}
	// At 4 stages conditional transfers cost one cycle.
	sim4, err := Simulate(p, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	if sim4.Cycles <= sim3.Cycles {
		t.Errorf("deeper pipeline should cost BRM cycles: %d vs %d", sim4.Cycles, sim3.Cycles)
	}
	// The BRM model matches the simulation exactly: both charge N-3 per
	// conditional and the Figure 9 penalty per late calc.
	cmp, err := CompareModel(context.Background(), p, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ModelCycles != cmp.SimCycles {
		t.Errorf("BRM model (%d) and simulation (%d) disagree", cmp.ModelCycles, cmp.SimCycles)
	}
	if cmp.String() == "" {
		t.Error("empty comparison string")
	}
}

func TestSimulatedSpeedupHolds(t *testing.T) {
	base := compileFor(t, isa.Baseline)
	brm := compileFor(t, isa.BranchReg)
	for _, stages := range []int{3, 4, 5} {
		sb, err := Simulate(base, "", stages)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := Simulate(brm, "", stages)
		if err != nil {
			t.Fatal(err)
		}
		if sb.Output != sr.Output || sb.Status != sr.Status {
			t.Fatalf("machines disagree under simulation")
		}
		if sr.Cycles >= sb.Cycles {
			t.Errorf("%d stages: BRM (%d cycles) not faster than baseline (%d) even in the finer simulation",
				stages, sr.Cycles, sb.Cycles)
		}
	}
}

func TestSimulateFastCompare(t *testing.T) {
	o := driver.DefaultOptions()
	o.BRM.FastCompare = true
	p, err := driver.Compile(context.Background(), simProgram, isa.BranchReg, o)
	if err != nil {
		t.Fatal(err)
	}
	normal := compileFor(t, isa.BranchReg)
	// At 4 stages the fast compare removes the N-3 conditional bubble; the
	// simulation must show fewer bubbles per conditional. (Simulate's
	// model parameter describes the hardware, so pass FastCompare.)
	simN, err := Simulate(normal, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emuRunFast(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m >= simN.Cycles {
		t.Errorf("fast compare (%d cycles) not faster than normal (%d) at 4 stages", m, simN.Cycles)
	}
}

// emuRunFast simulates with the fast-compare hardware model.
func emuRunFast(p *isa.Program, stages int) (int64, error) {
	sim, err := SimulateWith(p, "", Model{Stages: stages, FastCompare: true})
	if err != nil {
		return 0, err
	}
	return sim.Cycles, nil
}
