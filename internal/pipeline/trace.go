package pipeline

import (
	"fmt"
	"strings"
)

// The symbolic pipeline tracer reproduces the paper's Figures 6 and 8: for
// a short instruction sequence it computes which cycle each instruction
// occupies each stage, under the fetch/decode/execute rules of the two
// machines with a three-stage pipeline.

// TraceKind classifies instructions for the tracer.
type TraceKind int

const (
	KNormal  TraceKind = iota
	KBrCalc            // BRM: target address calculation (issues prefetch)
	KCmpBr             // BRM: compare with conditional assignment
	KJumpBR            // BRM: transfer via a branch register (prefetched)
	KCondBR            // BRM: conditional transfer via b[7] (follows KCmpBr)
	KBranch            // baseline branch, no delay slot machine
	KDelayed           // baseline delayed branch (slot follows)
	KTargetD           // instruction entered from a prefetched i-register:
	// starts at decode, no fetch (BRM transfer targets)
	KTarget // branch target fetched from the cache
)

// TraceIns is one instruction given to the tracer.
type TraceIns struct {
	Label string
	Kind  TraceKind
}

// TraceRow is the schedule of one instruction.
type TraceRow struct {
	Label   string
	Fetch   int // cycle of the fetch stage; 0 = stage skipped (i-register)
	Decode  int
	Execute int
}

// Trace computes a three-stage schedule. The rules:
//
//   - a normal instruction fetches the cycle after the previous fetch and
//     flows F→D→E;
//   - a KTarget (baseline) cannot fetch until the branch that reaches it
//     has executed;
//   - a KDelayed branch's slot fetches normally; the target then fetches
//     after the branch's execute (one bubble on three stages);
//   - a KTargetD (BRM) enters decode directly from its instruction
//     register, the cycle after the transferring instruction's decode —
//     unless it follows a KCmpBr-driven conditional transfer, in which
//     case its decode must wait for the compare's execute (Figure 8).
func Trace(seq []TraceIns) []TraceRow {
	rows := make([]TraceRow, len(seq))
	prevFetch := 0
	prevDecode := 0
	prevExec := 0
	cmpExec := 0    // execute cycle of the most recent compare
	branchExec := 0 // execute cycle of the most recent baseline branch
	transferDecode := 0
	condTransfer := false
	for i, in := range seq {
		var f, d, e int
		switch in.Kind {
		case KTargetD:
			// From the instruction register: no fetch stage. Decode the
			// cycle after the transfer's decode, but not before the
			// compare's execute finished for conditional transfers.
			f = 0
			d = transferDecode + 1
			if condTransfer && d < cmpExec+1 {
				d = cmpExec + 1
			}
			e = d + 1
		case KTarget:
			// Cannot be fetched until the reaching branch has executed.
			f = branchExec + 1
			if f <= prevFetch {
				f = prevFetch + 1
			}
			d = f + 1
			if d <= prevDecode {
				d = prevDecode + 1
			}
			e = d + 1
			if e <= prevExec {
				e = prevExec + 1
			}
		default:
			f = prevFetch + 1
			d = f + 1
			if d <= prevDecode {
				d = prevDecode + 1
			}
			e = d + 1
			if e <= prevExec {
				e = prevExec + 1
			}
		}
		rows[i] = TraceRow{Label: in.Label, Fetch: f, Decode: d, Execute: e}
		switch in.Kind {
		case KCmpBr:
			cmpExec = e
			condTransfer = false
		case KJumpBR:
			transferDecode = d
			condTransfer = false
		case KCondBR:
			transferDecode = d
			condTransfer = true
		case KBranch, KDelayed:
			branchExec = e
		}
		if in.Kind == KTargetD {
			// The instruction after the target is fetched while the
			// target decodes (its address comes from the branch register).
			prevFetch = d - 1
		} else {
			prevFetch = f
		}
		prevDecode = d
		prevExec = e
	}
	return rows
}

// Figure6 reproduces the pipeline actions for an unconditional transfer of
// control on the branch-register machine (paper Figure 6): an add carrying
// a transfer through b[4], followed by the prefetched target.
func Figure6() []TraceRow {
	return Trace([]TraceIns{
		{Label: "r[1]=r[1]+1; b[0]=b[4]", Kind: KJumpBR},
		{Label: "TARGET", Kind: KTargetD},
		{Label: "TARGET+1", Kind: KNormal},
	})
}

// Figure8 reproduces the pipeline actions for a conditional transfer on
// the branch-register machine (paper Figure 8): compare, conditional jump,
// then the target from the selected instruction register.
func Figure8() []TraceRow {
	return Trace([]TraceIns{
		{Label: "b[7]=r[5]<0->b[3]|b[0]", Kind: KCmpBr},
		{Label: "r[1]=r[1]+1; b[0]=b[7]", Kind: KCondBR},
		{Label: "TARGET", Kind: KTargetD},
		{Label: "TARGET+1", Kind: KNormal},
	})
}

// Figure5bTrace shows the baseline delayed branch (paper Figure 5b).
func Figure5bTrace() []TraceRow {
	return Trace([]TraceIns{
		{Label: "JUMP", Kind: KDelayed},
		{Label: "NEXT (slot)", Kind: KNormal},
		{Label: "TARGET", Kind: KTarget},
	})
}

// Figure5aTrace shows a conventional branch without a delay slot (paper
// Figure 5a): the target cannot even be fetched until the jump executes.
func Figure5aTrace() []TraceRow {
	return Trace([]TraceIns{
		{Label: "JUMP", Kind: KBranch},
		{Label: "TARGET", Kind: KTarget},
	})
}

// FormatTrace renders rows as a Figure 6/8-style table.
func FormatTrace(title string, rows []TraceRow) string {
	last := 0
	for _, r := range rows {
		if r.Execute > last {
			last = r.Execute
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s", "instruction \\ cycle")
	for c := 1; c <= last; c++ {
		fmt.Fprintf(&b, "%3d", c)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s", r.Label)
		for c := 1; c <= last; c++ {
			s := "  ."
			switch c {
			case r.Fetch:
				s = "  F"
			case r.Decode:
				s = "  D"
			case r.Execute:
				s = "  E"
			}
			b.WriteString(s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TotalCycles returns the cycle in which the last instruction executes.
func TotalCycles(rows []TraceRow) int {
	last := 0
	for _, r := range rows {
		if r.Execute > last {
			last = r.Execute
		}
	}
	return last
}
