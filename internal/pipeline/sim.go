package pipeline

import (
	"context"
	"fmt"

	"branchreg/internal/emu"
	"branchreg/internal/isa"
)

// SimResult is the outcome of a dynamic pipeline simulation.
type SimResult struct {
	Cycles       int64
	Instructions int64
	BubbleCycles int64
	Stats        emu.Stats
	Output       string
	Status       int32
}

// CPI returns cycles per instruction.
func (r *SimResult) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// Simulate executes the linked program and charges pipeline bubbles per
// dynamic event, in contrast to the paper's aggregate model (§7), which
// charges every executed transfer:
//
//   - baseline machine: a TAKEN transfer costs Stages-2 bubbles (the delay
//     slot hides one fetch); an untaken conditional branch costs nothing —
//     the sequential fetch was correct. This is where the simulation is
//     finer-grained than the paper's model.
//   - branch-register machine: a conditional transfer costs Stages-3
//     (instruction-register selection waits on the compare's execute); a
//     taken transfer whose target calc is closer than the Figure 9
//     distance stalls the remaining cycles.
//
// Comparing Simulate with Model.BaselineCycles/BRMCycles quantifies how
// much the paper's every-transfer charge overstates the baseline penalty.
func Simulate(p *isa.Program, input string, stages int) (*SimResult, error) {
	return SimulateWith(p, input, Model{Stages: stages})
}

// SimulateWith runs the dynamic simulation under an explicit hardware
// model (pipeline depth, fast-compare).
func SimulateWith(p *isa.Program, input string, mod Model) (*SimResult, error) {
	m, err := emu.New(p, input)
	if err != nil {
		return nil, err
	}
	res := &SimResult{}
	kind := p.Kind
	m.Hooks.Transfer = func(tk emu.TransferKind, taken bool, dist int64) {
		if kind == isa.Baseline {
			if taken {
				res.BubbleCycles += mod.BaselineTransferDelay()
			}
			return
		}
		if tk == emu.TransferCond {
			res.BubbleCycles += mod.BRMCondDelay()
		}
		if taken && dist >= 0 && dist < int64(emu.MinPrefetchDist) {
			res.BubbleCycles += int64(emu.MinPrefetchDist) - dist
		}
	}
	status, err := m.Run()
	if err != nil {
		return nil, err
	}
	res.Stats = m.Stats
	res.Instructions = m.Stats.Instructions
	res.Cycles = res.Instructions + res.BubbleCycles
	res.Output = m.Output()
	res.Status = status
	return res, nil
}

// ModelVsSim compares the paper's aggregate model against the dynamic
// simulation for one program on one machine.
type ModelVsSim struct {
	Stages        int
	ModelCycles   int64
	SimCycles     int64
	OverchargePct float64 // how much the model exceeds the simulation
}

// CompareModel runs both the analytic model and the dynamic simulation.
// The context is checked before the simulation starts, so the experiment
// pool can abandon queued comparisons on cancellation.
func CompareModel(ctx context.Context, p *isa.Program, input string, stages int) (*ModelVsSim, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sim, err := Simulate(p, input, stages)
	if err != nil {
		return nil, err
	}
	mod := Model{Stages: stages}
	var mc int64
	if p.Kind == isa.Baseline {
		mc = mod.BaselineCycles(&sim.Stats)
	} else {
		mc = mod.BRMCycles(&sim.Stats)
	}
	out := &ModelVsSim{Stages: stages, ModelCycles: mc, SimCycles: sim.Cycles}
	if sim.Cycles > 0 {
		out.OverchargePct = 100 * float64(mc-sim.Cycles) / float64(sim.Cycles)
	}
	return out, nil
}

func (c *ModelVsSim) String() string {
	return fmt.Sprintf("%d stages: model %d cycles, simulated %d cycles (model +%.2f%%)",
		c.Stages, c.ModelCycles, c.SimCycles, c.OverchargePct)
}
