package pipeline

import (
	"strings"
	"testing"

	"branchreg/internal/emu"
)

func TestDelayFormulas(t *testing.T) {
	m3 := Model{Stages: 3}
	if m3.NoDelayTransferDelay() != 2 || m3.BaselineTransferDelay() != 1 || m3.BRMCondDelay() != 0 {
		t.Errorf("3-stage delays wrong: %d %d %d",
			m3.NoDelayTransferDelay(), m3.BaselineTransferDelay(), m3.BRMCondDelay())
	}
	m4 := Model{Stages: 4}
	if m4.NoDelayTransferDelay() != 3 || m4.BaselineTransferDelay() != 2 || m4.BRMCondDelay() != 1 {
		t.Errorf("4-stage delays wrong")
	}
	m5 := Model{Stages: 5}
	if m5.BRMCondDelay() != 2 {
		t.Errorf("5-stage BRM cond delay = %d", m5.BRMCondDelay())
	}
}

func TestFigure5And7Tables(t *testing.T) {
	f5 := Figure5([]int{3, 4, 5})
	for _, row := range f5 {
		if row.BranchRegs != 0 {
			t.Errorf("Figure 5: BRM unconditional delay must be 0 at %d stages, got %d",
				row.Stages, row.BranchRegs)
		}
		if row.NoDelay != int64(row.Stages-1) || row.Delayed != int64(row.Stages-2) {
			t.Errorf("Figure 5 row wrong: %+v", row)
		}
	}
	f7 := Figure7([]int{3, 4, 5})
	for _, row := range f7 {
		if row.BranchRegs != int64(row.Stages-3) {
			t.Errorf("Figure 7: BRM conditional delay must be N-3: %+v", row)
		}
	}
	s := FormatDelayTables("fig", f5)
	if !strings.Contains(s, "branch registers") {
		t.Error("format missing header")
	}
}

func TestCycleModel(t *testing.T) {
	var s emu.Stats
	s.Instructions = 1000
	s.UncondJumps = 50
	s.CondBranches = 100
	s.Calls = 10
	s.Returns = 10
	m3 := Model{Stages: 3}
	// baseline: 1000 + 1*(50+100+10+10) = 1170
	if got := m3.BaselineCycles(&s); got != 1170 {
		t.Errorf("baseline cycles = %d, want 1170", got)
	}
	// BRM with perfect prefetch: no delays at 3 stages
	if got := m3.BRMCycles(&s); got != 1000 {
		t.Errorf("BRM cycles = %d, want 1000", got)
	}
	// Late calcs cost cycles.
	s.DistHist[0] = 5  // 2 cycles each
	s.DistHist[1] = 10 // 1 cycle each
	if got := m3.BRMCycles(&s); got != 1000+20 {
		t.Errorf("BRM cycles with late calcs = %d, want 1020", got)
	}
	// 4-stage: conditional transfers cost N-3 = 1 each.
	m4 := Model{Stages: 4}
	if got := m4.BRMCycles(&s); got != 1000+100+20 {
		t.Errorf("4-stage BRM cycles = %d, want 1120", got)
	}
	if got := m4.BaselineCycles(&s); got != 1000+2*170 {
		t.Errorf("4-stage baseline cycles = %d", got)
	}
}

func TestPrefetchPenalty(t *testing.T) {
	var s emu.Stats
	s.DistHist[0] = 3
	s.DistHist[1] = 7
	s.DistHist[2] = 100 // at the minimum distance: free
	if got := PrefetchPenalty(&s); got != 3*2+7*1 {
		t.Errorf("penalty = %d, want 13", got)
	}
}

func TestMinCalcDistance(t *testing.T) {
	if MinCalcDistance(3, 1) != 2 {
		t.Errorf("Figure 9 distance = %d, want 2", MinCalcDistance(3, 1))
	}
	if MinCalcDistance(3, 0) != 1 {
		t.Errorf("zero-latency cache distance = %d", MinCalcDistance(3, 0))
	}
	if MinCalcDistance(3, 1) != emu.MinPrefetchDist {
		t.Error("emulator constant disagrees with the model")
	}
}

// Figure 6: the BRM executes an unconditional transfer with no pipeline
// bubble — the target decodes the cycle after the jump decodes.
func TestFigure6NoBubble(t *testing.T) {
	rows := Figure6()
	jump, target := rows[0], rows[1]
	if target.Decode != jump.Decode+1 {
		t.Errorf("target decode at %d, jump decode at %d: bubble present",
			target.Decode, jump.Decode)
	}
	if target.Fetch != 0 {
		t.Error("prefetched target must not occupy the fetch stage")
	}
	// Back-to-back execution: one instruction completing per cycle.
	if target.Execute != jump.Execute+1 {
		t.Errorf("execute stream has a gap: %d then %d", jump.Execute, target.Execute)
	}
}

// Figure 8: the BRM conditional transfer also completes with no bubble on
// a three-stage pipeline — four cycles for compare, jump, target.
func TestFigure8NoBubble(t *testing.T) {
	rows := Figure8()
	cmp, jump, target := rows[0], rows[1], rows[2]
	if jump.Decode != cmp.Execute {
		t.Errorf("jump decodes at %d, compare executes at %d: must overlap",
			jump.Decode, cmp.Execute)
	}
	if target.Execute != jump.Execute+1 {
		t.Errorf("conditional target delayed: jump E=%d target E=%d",
			jump.Execute, target.Execute)
	}
	if target.Decode != jump.Decode+1 {
		t.Errorf("target decode %d, want %d", target.Decode, jump.Decode+1)
	}
}

// Figure 5 traces: the baseline delayed branch has one bubble; the
// conventional machine has two (three-stage pipeline).
func TestFigure5Traces(t *testing.T) {
	delayed := Figure5bTrace()
	// slot fills one cycle; target fetch waits for branch execute.
	jump, slot, target := delayed[0], delayed[1], delayed[2]
	if slot.Fetch != jump.Fetch+1 {
		t.Error("slot must fetch immediately after the branch")
	}
	if target.Fetch != jump.Execute+1 {
		t.Errorf("delayed-branch target fetch at %d, want %d", target.Fetch, jump.Execute+1)
	}
	if target.Execute-jump.Execute != 3 {
		t.Errorf("delayed branch bubble = %d cycles, want 3 (1 slot + 1 bubble + 1)",
			target.Execute-jump.Execute)
	}
	plain := Figure5aTrace()
	pj, pt := plain[0], plain[1]
	if pt.Fetch != pj.Execute+1 {
		t.Error("plain branch target must wait for execute")
	}
	if pt.Execute-pj.Execute != 3 {
		t.Errorf("plain branch penalty = %d, want 3", pt.Execute-pj.Execute)
	}
}

func TestFormatTrace(t *testing.T) {
	s := FormatTrace("Figure 6", Figure6())
	if !strings.Contains(s, "F") || !strings.Contains(s, "D") || !strings.Contains(s, "E") {
		t.Errorf("trace missing stages:\n%s", s)
	}
	// Figure 6: jump E at 3, target E at 4, target+1 E at 5 — fully
	// pipelined, one completion per cycle.
	if TotalCycles(Figure6()) != 5 {
		t.Errorf("Figure 6 total = %d cycles, want 5", TotalCycles(Figure6()))
	}
	// Figure 8: compare, jump, target, target+1 complete in consecutive
	// cycles 3..6.
	if TotalCycles(Figure8()) != 6 {
		t.Errorf("Figure 8 total = %d cycles, want 6", TotalCycles(Figure8()))
	}
}
