package mc

// The AST. Every expression node embeds exprBase, which carries the source
// position and, after type checking, the node's type.

// Node is any AST node.
type Node interface {
	Pos() (line, col int)
}

type pos struct{ Line, Col int }

func (p pos) Pos() (int, int) { return p.Line, p.Col }

// ---- Expressions ----

// Expr is an expression node.
type Expr interface {
	Node
	Type() *Type
	setType(*Type)
}

type exprBase struct {
	pos
	typ *Type
}

func (e *exprBase) Type() *Type     { return e.typ }
func (e *exprBase) setType(t *Type) { e.typ = t }

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Value float64
}

// StrLit is a string literal; the checker assigns it a data label.
type StrLit struct {
	exprBase
	Value string
	Label string
}

// Ident is a name reference, resolved by the checker to a symbol.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
}

// Unary is a prefix operator: ! ~ - + * & ++ -- (Op holds the spelling;
// "++"/"--" are pre-increments).
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	exprBase
	Op string
	X  Expr
}

// Binary is a binary operator (arithmetic, relational, logical, bitwise).
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Assign is an assignment, possibly compound ("=", "+=", ...).
type Assign struct {
	exprBase
	Op   string
	L, R Expr
}

// Cond is the ternary operator c ? t : f.
type CondExpr struct {
	exprBase
	C, T, F Expr
}

// Index is array/pointer subscripting a[i].
type Index struct {
	exprBase
	X, I Expr
}

// Call is a function call.
type Call struct {
	exprBase
	Fun  Expr // must resolve to an Ident naming a function
	Args []Expr
}

// Cast is an explicit conversion (T)x.
type Cast struct {
	exprBase
	To *Type
	X  Expr
}

// ---- Statements ----

// Stmt is a statement node.
type Stmt interface{ Node }

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	pos
	X Expr
}

// DeclStmt declares local variables.
type DeclStmt struct {
	pos
	Decls []*VarDecl
}

// Block is a brace-enclosed statement list with its own scope.
type Block struct {
	pos
	Stmts []Stmt
}

// If is if/else.
type If struct {
	pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	pos
	Cond Expr
	Body Stmt
}

// DoWhile is a do { } while loop.
type DoWhile struct {
	pos
	Body Stmt
	Cond Expr
}

// For is a for loop; any clause may be nil. Init may be a DeclStmt or
// ExprStmt.
type For struct {
	pos
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Switch is a switch over an integer expression.
type Switch struct {
	pos
	X     Expr
	Cases []*Case
}

// Case is one case (or default when IsDefault) in a switch; Body runs with
// C fallthrough semantics.
type Case struct {
	pos
	IsDefault bool
	Value     int64
	Body      []Stmt
}

// Break exits the innermost loop or switch.
type Break struct{ pos }

// Continue continues the innermost loop.
type Continue struct{ pos }

// Return returns from the function; X may be nil.
type Return struct {
	pos
	X Expr
}

// Empty is the empty statement ";".
type Empty struct{ pos }

// ---- Declarations ----

// SymKind classifies symbols.
type SymKind int

const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
	SymFunc
)

// Symbol is a resolved name.
type Symbol struct {
	Name   string
	Kind   SymKind
	Type   *Type
	Fun    *FuncDecl // SymFunc
	Index  int       // SymLocal/SymParam: dense per-function index
	Global *VarDecl  // SymGlobal
}

// Initializer is a variable initializer: either a single expression or a
// brace list (possibly nested for 2-D arrays).
type Initializer struct {
	pos
	Expr Expr
	List []*Initializer
}

// VarDecl declares one variable.
type VarDecl struct {
	pos
	Name string
	Type *Type
	Init *Initializer // may be nil
	Sym  *Symbol
}

// Param is one function parameter.
type Param struct {
	pos
	Name string
	Type *Type
	Sym  *Symbol
}

// FuncDecl is a function definition.
type FuncDecl struct {
	pos
	Name   string
	Ret    *Type
	Params []*Param
	Body   *Block
	Locals []*Symbol // filled by the checker: all locals+params, dense Index
}

// Unit is a whole translation unit.
type Unit struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
	Strings []*StrLit // all string literals, labeled, in order of appearance
}
