package mc

import (
	"strings"
	"testing"
)

func compile(t *testing.T, src string) *Unit {
	t.Helper()
	u, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v\nsource:\n%s", err, src)
	}
	return u
}

func mustFail(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Compile(src)
	if err == nil {
		t.Errorf("Compile(%q) should fail (want %q)", src, wantSub)
		return
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Errorf("Compile(%q) error = %q, want substring %q", src, err, wantSub)
	}
}

func TestCheckResolvesSymbols(t *testing.T) {
	u := compile(t, `
int g;
int f(int a) {
    int b = a + g;
    return b;
}
`)
	fn := u.Funcs[0]
	if len(fn.Locals) != 2 {
		t.Fatalf("locals = %d", len(fn.Locals))
	}
	if fn.Locals[0].Kind != SymParam || fn.Locals[1].Kind != SymLocal {
		t.Errorf("local kinds wrong: %v %v", fn.Locals[0].Kind, fn.Locals[1].Kind)
	}
	if fn.Locals[0].Index != 0 || fn.Locals[1].Index != 1 {
		t.Errorf("indices wrong")
	}
}

func TestCheckScoping(t *testing.T) {
	compile(t, `
int x;
void f(void) {
    int x;
    { int x; x = 1; }
    x = 2;
}
`)
	mustFail(t, `void f(void) { { int y; } y = 1; }`, "undeclared")
	mustFail(t, `void f(void) { int x; int x; }`, "redefinition")
	mustFail(t, `int x; int x;`, "redefinition")
	mustFail(t, `void f(int a, int a) { }`, "duplicate parameter")
	// for-init declarations scope only over the loop
	mustFail(t, `void f(void) { for (int i = 0; i < 3; i++) ; i = 1; }`, "undeclared")
}

func TestCheckTypes(t *testing.T) {
	u := compile(t, `
float h(float x) { return x * 2; }
int f(char c, float x) {
    int i = c;       // char -> int
    float y = i;     // int -> float
    c = i;           // int -> char
    return (int)(x + y) + h(i);
}
`)
	_ = u
	mustFail(t, `void f(int *p, float *q) { p = q; }`, "cannot assign")
	mustFail(t, `void f(void) { 1 = 2; }`, "non-lvalue")
	mustFail(t, `int f(void) { return "s"; }`, "cannot return")
	mustFail(t, `void f(float x) { x % 2.0; }`, "float")
	mustFail(t, `void f(float x) { x & 1; }`, "")
	mustFail(t, `void f(int x) { y + 1; }`, "undeclared")
	mustFail(t, `void f(void) { g(); }`, "undeclared function")
	mustFail(t, `int g; void f(void) { g(); }`, "not a function")
}

func TestCheckPointerOps(t *testing.T) {
	compile(t, `
int a[10];
int f(int *p) {
    p = a;            // array decay
    p = p + 3;
    p++;
    return p - a + *p + p[2] + (p != 0) + (p < a);
}
`)
	mustFail(t, `void f(int *p) { p * 2; }`, "")
	mustFail(t, `void f(int x) { *x; }`, "dereference")
	mustFail(t, `void f(void) { &5; }`, "lvalue")
	mustFail(t, `int a[3]; int b[3]; void f(void) { a = b; }`, "array")
}

func TestCheckCalls(t *testing.T) {
	compile(t, `
int add(int a, int b) { return a + b; }
int f(void) { return add(1, 2); }
`)
	mustFail(t, `int add(int a, int b) { return a+b; } int f(void) { return add(1); }`, "expects 2 arguments")
	mustFail(t, `int g(int *p) { return 0; } int f(void) { return g(5); }`, "argument 1")
}

func TestCheckControl(t *testing.T) {
	mustFail(t, `void f(void) { break; }`, "break outside")
	mustFail(t, `void f(void) { continue; }`, "continue outside")
	mustFail(t, `void f(void) { switch (1) { case 0: continue; } }`, "continue outside")
	compile(t, `void f(void) { while (1) switch (1) { case 0: break; } }`)
	mustFail(t, `void f(void) { switch (1) { case 1: ; case 1: ; } }`, "duplicate case")
	mustFail(t, `void f(void) { switch (1) { default: ; default: ; } }`, "multiple default")
	mustFail(t, `void f(float x) { switch (x) { } }`, "must be integer")
	mustFail(t, `int f(void) { return; }`, "return without value")
	mustFail(t, `void f(void) { return 1; }`, "return with value")
}

func TestCheckBuiltins(t *testing.T) {
	compile(t, `
void f(void) {
    int c = getchar();
    putchar(c);
    putfloat(1.5);
    exit(0);
}
`)
	mustFail(t, `void f(void) { putchar(); }`, "expects 1 arguments")
}

func TestCheckStringLabels(t *testing.T) {
	u := compile(t, `
char *a = "one";
void f(void) { char *b = "two"; char *c = "three"; }
`)
	if len(u.Strings) != 3 {
		t.Fatalf("strings = %d", len(u.Strings))
	}
	seen := map[string]bool{}
	for _, s := range u.Strings {
		if s.Label == "" || seen[s.Label] {
			t.Errorf("bad label %q", s.Label)
		}
		seen[s.Label] = true
		if s.Type().Kind != TPtr || s.Type().Elem.Kind != TChar {
			t.Errorf("string type = %s", s.Type())
		}
	}
}

func TestCheckGlobalInits(t *testing.T) {
	compile(t, `
int a = 5;
float pi = 3.14;
int v[3] = {1, 2, 3};
char s[8] = "abc";
char *p = "xyz";
int m[2][2] = {{1,2},{3,4}};
`)
	mustFail(t, `int v[2] = {1,2,3};`, "too many initializers")
	mustFail(t, `int x = {1};`, "brace initializer")
	mustFail(t, `int *p = 3.5;`, "cannot initialize")
}

func TestCheckTernary(t *testing.T) {
	compile(t, `
int f(int a, int *p) {
    int x = a ? 1 : 2;
    float y = a ? 1.5 : 2;
    int *q = a ? p : 0;
    return x + (int)y + *q;
}
`)
	mustFail(t, `int f(int a, int *p, float *q) { a ? p : q; return 0; }`, "incompatible ternary")
}

func TestTypeHelpers(t *testing.T) {
	if IntType.Size() != 4 || CharType.Size() != 1 || FloatType.Size() != 8 {
		t.Error("primitive sizes wrong")
	}
	arr := ArrayOf(IntType, 10)
	if arr.Size() != 40 || arr.Align() != 4 {
		t.Error("array size/align wrong")
	}
	m := ArrayOf(ArrayOf(FloatType, 3), 2)
	if m.Size() != 48 || m.Align() != 8 {
		t.Errorf("2D float array size=%d align=%d", m.Size(), m.Align())
	}
	if !PtrTo(IntType).Same(PtrTo(IntType)) || PtrTo(IntType).Same(PtrTo(CharType)) {
		t.Error("Same wrong for pointers")
	}
	if arr.Decay().Kind != TPtr {
		t.Error("decay wrong")
	}
	if arr.String() != "int[10]" || PtrTo(CharType).String() != "char*" {
		t.Errorf("String: %s %s", arr, PtrTo(CharType))
	}
}
