package mc

import (
	"fmt"
	"strings"
)

// TypeKind classifies MC types.
type TypeKind int

const (
	TVoid  TypeKind = iota
	TInt            // 32-bit signed
	TChar           // 8-bit signed
	TFloat          // 64-bit IEEE
	TPtr
	TArray
	TFunc
)

// Type is an MC type. Types are interned only structurally; compare with
// Same, not ==.
type Type struct {
	Kind   TypeKind
	Elem   *Type   // TPtr, TArray
	Len    int     // TArray
	Ret    *Type   // TFunc
	Params []*Type // TFunc
}

// Primitive singletons.
var (
	VoidType  = &Type{Kind: TVoid}
	IntType   = &Type{Kind: TInt}
	CharType  = &Type{Kind: TChar}
	FloatType = &Type{Kind: TFloat}
)

// PtrTo returns the type "pointer to e".
func PtrTo(e *Type) *Type { return &Type{Kind: TPtr, Elem: e} }

// ArrayOf returns the type "array of n e".
func ArrayOf(e *Type, n int) *Type { return &Type{Kind: TArray, Elem: e, Len: n} }

// Size returns the storage size of the type in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TInt, TPtr:
		return 4
	case TChar:
		return 1
	case TFloat:
		return 8
	case TArray:
		return t.Len * t.Elem.Size()
	}
	return 0
}

// Align returns the required alignment in bytes.
func (t *Type) Align() int {
	switch t.Kind {
	case TInt, TPtr:
		return 4
	case TChar:
		return 1
	case TFloat:
		return 8
	case TArray:
		return t.Elem.Align()
	}
	return 1
}

// IsInteger reports whether t is int or char.
func (t *Type) IsInteger() bool { return t.Kind == TInt || t.Kind == TChar }

// IsArith reports whether t is a numeric type.
func (t *Type) IsArith() bool { return t.IsInteger() || t.Kind == TFloat }

// IsScalar reports whether t can appear in a boolean context.
func (t *Type) IsScalar() bool { return t.IsArith() || t.Kind == TPtr }

// Same reports structural type equality.
func (t *Type) Same(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case TPtr:
		return t.Elem.Same(u.Elem)
	case TArray:
		return t.Len == u.Len && t.Elem.Same(u.Elem)
	case TFunc:
		if !t.Ret.Same(u.Ret) || len(t.Params) != len(u.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Same(u.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TChar:
		return "char"
	case TFloat:
		return "float"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TFunc:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(ps, ","))
	}
	return "?"
}

// Decay converts array types to pointer types (array-to-pointer decay in
// expression contexts).
func (t *Type) Decay() *Type {
	if t.Kind == TArray {
		return PtrTo(t.Elem)
	}
	return t
}
