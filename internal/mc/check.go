package mc

import "fmt"

// Builtin function names recognized by the checker; the code generators
// lower them to trap instructions.
var Builtins = map[string]*Type{
	"getchar":  {Kind: TFunc, Ret: IntType},
	"putchar":  {Kind: TFunc, Ret: VoidType, Params: []*Type{IntType}},
	"putfloat": {Kind: TFunc, Ret: VoidType, Params: []*Type{FloatType}},
	"exit":     {Kind: TFunc, Ret: VoidType, Params: []*Type{IntType}},
}

type scope struct {
	parent *scope
	syms   map[string]*Symbol
}

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

type checker struct {
	unit    *Unit
	globals *scope
	fn      *FuncDecl
	cur     *scope
	loops   int // nesting depth of loops (continue targets)
	breaks  int // nesting depth of loops+switches (break targets)
	nstr    int
}

// Check resolves names and types across the unit. On success every
// expression node has a type, every identifier a symbol, every string
// literal a label, and every function a dense local-symbol table.
func Check(u *Unit) error {
	c := &checker{unit: u, globals: &scope{syms: map[string]*Symbol{}}}
	for name, typ := range Builtins {
		c.globals.syms[name] = &Symbol{Name: name, Kind: SymFunc, Type: typ}
	}
	for _, g := range u.Globals {
		if g.Type.Kind == TVoid {
			return errAt(g.Line, g.Col, "variable %s has void type", g.Name)
		}
		if c.globals.syms[g.Name] != nil {
			return errAt(g.Line, g.Col, "redefinition of %s", g.Name)
		}
		sym := &Symbol{Name: g.Name, Kind: SymGlobal, Type: g.Type, Global: g}
		g.Sym = sym
		c.globals.syms[g.Name] = sym
	}
	for _, f := range u.Funcs {
		if c.globals.syms[f.Name] != nil {
			return errAt(f.Line, f.Col, "redefinition of %s", f.Name)
		}
		ft := &Type{Kind: TFunc, Ret: f.Ret}
		for _, p := range f.Params {
			ft.Params = append(ft.Params, p.Type.Decay())
		}
		c.globals.syms[f.Name] = &Symbol{Name: f.Name, Kind: SymFunc, Type: ft, Fun: f}
	}
	for _, g := range u.Globals {
		if g.Init != nil {
			if err := c.checkGlobalInit(g); err != nil {
				return err
			}
		}
	}
	for _, f := range u.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// checkGlobalInit validates that a global initializer is constant and
// type-compatible; expressions are type-checked in the global scope (so
// they may reference string literals and constants only — irgen enforces
// constancy when materializing).
func (c *checker) checkGlobalInit(g *VarDecl) error {
	c.cur = c.globals
	c.fn = nil
	return c.checkInit(g.Init, g.Type, g.Name)
}

func (c *checker) checkInit(init *Initializer, typ *Type, name string) error {
	if init.List != nil {
		if typ.Kind != TArray {
			return errAt(init.Line, init.Col, "brace initializer for non-array %s", name)
		}
		if len(init.List) > typ.Len {
			return errAt(init.Line, init.Col, "too many initializers for %s", name)
		}
		for _, sub := range init.List {
			if err := c.checkInit(sub, typ.Elem, name); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.checkExpr(init.Expr); err != nil {
		return err
	}
	et := init.Expr.Type()
	if typ.Kind == TArray && typ.Elem.Kind == TChar {
		// char array initialized from string literal
		if _, ok := init.Expr.(*StrLit); ok {
			return nil
		}
	}
	if !assignable(typ.Decay(), et) {
		return errAt(init.Line, init.Col, "cannot initialize %s (%s) from %s", name, typ, et)
	}
	return nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	f.Locals = nil
	c.cur = &scope{parent: c.globals, syms: map[string]*Symbol{}}
	for _, p := range f.Params {
		if c.cur.syms[p.Name] != nil {
			return errAt(p.Line, p.Col, "duplicate parameter %s", p.Name)
		}
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: p.Type.Decay(), Index: len(f.Locals)}
		p.Sym = sym
		f.Locals = append(f.Locals, sym)
		c.cur.syms[p.Name] = sym
	}
	if err := c.checkBlock(f.Body); err != nil {
		return err
	}
	c.fn = nil
	return nil
}

func (c *checker) checkBlock(b *Block) error {
	c.cur = &scope{parent: c.cur, syms: map[string]*Symbol{}}
	defer func() { c.cur = c.cur.parent }()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) declareLocal(d *VarDecl) error {
	if d.Type.Kind == TVoid {
		return errAt(d.Line, d.Col, "variable %s has void type", d.Name)
	}
	if c.cur.syms[d.Name] != nil {
		return errAt(d.Line, d.Col, "redefinition of %s", d.Name)
	}
	sym := &Symbol{Name: d.Name, Kind: SymLocal, Type: d.Type, Index: len(c.fn.Locals)}
	d.Sym = sym
	c.fn.Locals = append(c.fn.Locals, sym)
	c.cur.syms[d.Name] = sym
	if d.Init != nil {
		if err := c.checkInit(d.Init, d.Type, d.Name); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *Empty:
		return nil
	case *Block:
		return c.checkBlock(st)
	case *DeclStmt:
		for _, d := range st.Decls {
			if err := c.declareLocal(d); err != nil {
				return err
			}
		}
		return nil
	case *ExprStmt:
		return c.checkExpr(st.X)
	case *If:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *While:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		c.loops++
		c.breaks++
		err := c.checkStmt(st.Body)
		c.loops--
		c.breaks--
		return err
	case *DoWhile:
		c.loops++
		c.breaks++
		err := c.checkStmt(st.Body)
		c.loops--
		c.breaks--
		if err != nil {
			return err
		}
		return c.checkCond(st.Cond)
	case *For:
		// A for-init declaration scopes over the whole loop.
		c.cur = &scope{parent: c.cur, syms: map[string]*Symbol{}}
		defer func() { c.cur = c.cur.parent }()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkExpr(st.Post); err != nil {
				return err
			}
		}
		c.loops++
		c.breaks++
		err := c.checkStmt(st.Body)
		c.loops--
		c.breaks--
		return err
	case *Switch:
		if err := c.checkExpr(st.X); err != nil {
			return err
		}
		if !st.X.Type().IsInteger() {
			l, col := st.X.Pos()
			return errAt(l, col, "switch expression must be integer, have %s", st.X.Type())
		}
		seen := map[int64]bool{}
		defaults := 0
		c.breaks++
		defer func() { c.breaks-- }()
		for _, cs := range st.Cases {
			if cs.IsDefault {
				defaults++
				if defaults > 1 {
					return errAt(cs.Line, cs.Col, "multiple default labels")
				}
			} else {
				if seen[cs.Value] {
					return errAt(cs.Line, cs.Col, "duplicate case %d", cs.Value)
				}
				seen[cs.Value] = true
			}
			for _, b := range cs.Body {
				if err := c.checkStmt(b); err != nil {
					return err
				}
			}
		}
		return nil
	case *Break:
		if c.breaks == 0 {
			return errAt(st.Line, st.Col, "break outside loop or switch")
		}
		return nil
	case *Continue:
		if c.loops == 0 {
			return errAt(st.Line, st.Col, "continue outside loop")
		}
		return nil
	case *Return:
		if st.X == nil {
			if c.fn.Ret.Kind != TVoid {
				return errAt(st.Line, st.Col, "return without value in %s returning %s", c.fn.Name, c.fn.Ret)
			}
			return nil
		}
		if c.fn.Ret.Kind == TVoid {
			return errAt(st.Line, st.Col, "return with value in void function %s", c.fn.Name)
		}
		if err := c.checkExpr(st.X); err != nil {
			return err
		}
		if !assignable(c.fn.Ret, st.X.Type()) {
			return errAt(st.Line, st.Col, "cannot return %s from %s returning %s", st.X.Type(), c.fn.Name, c.fn.Ret)
		}
		return nil
	}
	return fmt.Errorf("mc: unknown statement %T", s)
}

func (c *checker) checkCond(e Expr) error {
	if err := c.checkExpr(e); err != nil {
		return err
	}
	if !e.Type().IsScalar() {
		l, col := e.Pos()
		return errAt(l, col, "condition must be scalar, have %s", e.Type())
	}
	return nil
}

// assignable reports whether a value of type src may be assigned to dst.
// Numeric types interconvert implicitly; pointers require matching element
// types (or void*-like char* looseness is NOT allowed — use casts).
func assignable(dst, src *Type) bool {
	src = src.Decay()
	if dst.IsArith() && src.IsArith() {
		return true
	}
	if dst.Kind == TPtr && src.Kind == TPtr {
		return dst.Elem.Same(src.Elem)
	}
	return false
}

func (c *checker) checkExpr(e Expr) error {
	switch x := e.(type) {
	case *IntLit:
		x.setType(IntType)
		return nil
	case *FloatLit:
		x.setType(FloatType)
		return nil
	case *StrLit:
		x.Label = fmt.Sprintf("Lstr%d", c.nstr)
		c.nstr++
		c.unit.Strings = append(c.unit.Strings, x)
		x.setType(PtrTo(CharType))
		return nil
	case *Ident:
		sym := c.cur.lookup(x.Name)
		if sym == nil {
			return errAt(x.Line, x.Col, "undeclared identifier %s", x.Name)
		}
		x.Sym = sym
		x.setType(sym.Type)
		return nil
	case *Unary:
		return c.checkUnary(x)
	case *Postfix:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if !isLvalue(x.X) {
			return errAt(x.Line, x.Col, "%s requires an lvalue", x.Op)
		}
		t := x.X.Type()
		if !t.IsInteger() && t.Kind != TPtr && t.Kind != TFloat {
			return errAt(x.Line, x.Col, "%s on non-scalar %s", x.Op, t)
		}
		x.setType(t)
		return nil
	case *Binary:
		return c.checkBinary(x)
	case *Assign:
		return c.checkAssign(x)
	case *CondExpr:
		if err := c.checkCond(x.C); err != nil {
			return err
		}
		if err := c.checkExpr(x.T); err != nil {
			return err
		}
		if err := c.checkExpr(x.F); err != nil {
			return err
		}
		tt, ft := x.T.Type().Decay(), x.F.Type().Decay()
		switch {
		case tt.IsArith() && ft.IsArith():
			x.setType(arith(tt, ft))
		case tt.Kind == TPtr && ft.Kind == TPtr && tt.Elem.Same(ft.Elem):
			x.setType(tt)
		case tt.Kind == TPtr && ft.IsInteger():
			x.setType(tt) // p : 0
		case ft.Kind == TPtr && tt.IsInteger():
			x.setType(ft)
		default:
			return errAt(x.Line, x.Col, "incompatible ternary arms %s and %s", tt, ft)
		}
		return nil
	case *Index:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if err := c.checkExpr(x.I); err != nil {
			return err
		}
		xt := x.X.Type().Decay()
		if xt.Kind != TPtr {
			return errAt(x.Line, x.Col, "subscript of non-pointer %s", x.X.Type())
		}
		if !x.I.Type().IsInteger() {
			return errAt(x.Line, x.Col, "subscript index must be integer, have %s", x.I.Type())
		}
		if xt.Elem.Kind == TVoid || xt.Elem.Kind == TFunc {
			return errAt(x.Line, x.Col, "subscript of %s", x.X.Type())
		}
		x.setType(xt.Elem)
		return nil
	case *Call:
		id, ok := x.Fun.(*Ident)
		if !ok {
			l, col := x.Fun.Pos()
			return errAt(l, col, "call of non-function expression")
		}
		sym := c.cur.lookup(id.Name)
		if sym == nil {
			return errAt(id.Line, id.Col, "undeclared function %s", id.Name)
		}
		if sym.Kind != SymFunc {
			return errAt(id.Line, id.Col, "%s is not a function", id.Name)
		}
		id.Sym = sym
		id.setType(sym.Type)
		ft := sym.Type
		if len(x.Args) != len(ft.Params) {
			return errAt(x.Line, x.Col, "%s expects %d arguments, got %d", id.Name, len(ft.Params), len(x.Args))
		}
		for i, a := range x.Args {
			if err := c.checkExpr(a); err != nil {
				return err
			}
			if !assignable(ft.Params[i], a.Type()) {
				l, col := a.Pos()
				return errAt(l, col, "argument %d of %s: cannot pass %s as %s", i+1, id.Name, a.Type(), ft.Params[i])
			}
		}
		x.setType(ft.Ret)
		return nil
	case *Cast:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		st := x.X.Type().Decay()
		dt := x.To
		ok := false
		switch {
		case dt.Kind == TVoid:
			ok = true
		case dt.IsArith() && st.IsArith():
			ok = true
		case dt.Kind == TPtr && (st.Kind == TPtr || st.IsInteger()):
			ok = true
		case dt.IsInteger() && st.Kind == TPtr:
			ok = true
		}
		if !ok {
			return errAt(x.Line, x.Col, "invalid cast from %s to %s", st, dt)
		}
		x.setType(dt)
		return nil
	}
	return fmt.Errorf("mc: unknown expression %T", e)
}

func (c *checker) checkUnary(x *Unary) error {
	if err := c.checkExpr(x.X); err != nil {
		return err
	}
	t := x.X.Type()
	switch x.Op {
	case "!":
		if !t.IsScalar() && t.Kind != TArray {
			return errAt(x.Line, x.Col, "! on %s", t)
		}
		x.setType(IntType)
	case "~":
		if !t.IsInteger() {
			return errAt(x.Line, x.Col, "~ on %s", t)
		}
		x.setType(IntType)
	case "-":
		if !t.IsArith() {
			return errAt(x.Line, x.Col, "unary - on %s", t)
		}
		if t.Kind == TFloat {
			x.setType(FloatType)
		} else {
			x.setType(IntType)
		}
	case "*":
		dt := t.Decay()
		if dt.Kind != TPtr || dt.Elem.Kind == TVoid || dt.Elem.Kind == TFunc {
			return errAt(x.Line, x.Col, "dereference of %s", t)
		}
		x.setType(dt.Elem)
	case "&":
		if !isLvalue(x.X) {
			return errAt(x.Line, x.Col, "& requires an lvalue")
		}
		x.setType(PtrTo(t))
	case "++", "--":
		if !isLvalue(x.X) {
			return errAt(x.Line, x.Col, "%s requires an lvalue", x.Op)
		}
		if !t.IsInteger() && t.Kind != TPtr && t.Kind != TFloat {
			return errAt(x.Line, x.Col, "%s on %s", x.Op, t)
		}
		x.setType(t)
	default:
		return errAt(x.Line, x.Col, "unknown unary operator %s", x.Op)
	}
	return nil
}

// arith computes the usual arithmetic conversion result.
func arith(a, b *Type) *Type {
	if a.Kind == TFloat || b.Kind == TFloat {
		return FloatType
	}
	return IntType
}

func (c *checker) checkBinary(x *Binary) error {
	if err := c.checkExpr(x.L); err != nil {
		return err
	}
	if err := c.checkExpr(x.R); err != nil {
		return err
	}
	lt, rt := x.L.Type().Decay(), x.R.Type().Decay()
	switch x.Op {
	case "&&", "||":
		if !lt.IsScalar() || !rt.IsScalar() {
			return errAt(x.Line, x.Col, "%s on %s and %s", x.Op, lt, rt)
		}
		x.setType(IntType)
	case "==", "!=", "<", "<=", ">", ">=":
		switch {
		case lt.IsArith() && rt.IsArith():
		case lt.Kind == TPtr && rt.Kind == TPtr:
		case lt.Kind == TPtr && rt.IsInteger():
		case rt.Kind == TPtr && lt.IsInteger():
		default:
			return errAt(x.Line, x.Col, "comparison of %s and %s", lt, rt)
		}
		x.setType(IntType)
	case "+":
		switch {
		case lt.IsArith() && rt.IsArith():
			x.setType(arith(lt, rt))
		case lt.Kind == TPtr && rt.IsInteger():
			x.setType(lt)
		case rt.Kind == TPtr && lt.IsInteger():
			x.setType(rt)
		default:
			return errAt(x.Line, x.Col, "+ on %s and %s", lt, rt)
		}
	case "-":
		switch {
		case lt.IsArith() && rt.IsArith():
			x.setType(arith(lt, rt))
		case lt.Kind == TPtr && rt.IsInteger():
			x.setType(lt)
		case lt.Kind == TPtr && rt.Kind == TPtr && lt.Elem.Same(rt.Elem):
			x.setType(IntType)
		default:
			return errAt(x.Line, x.Col, "- on %s and %s", lt, rt)
		}
	case "*", "/":
		if !lt.IsArith() || !rt.IsArith() {
			return errAt(x.Line, x.Col, "%s on %s and %s", x.Op, lt, rt)
		}
		x.setType(arith(lt, rt))
	case "%", "&", "|", "^", "<<", ">>":
		if !lt.IsInteger() || !rt.IsInteger() {
			return errAt(x.Line, x.Col, "%s on %s and %s", x.Op, lt, rt)
		}
		x.setType(IntType)
	default:
		return errAt(x.Line, x.Col, "unknown binary operator %s", x.Op)
	}
	return nil
}

func (c *checker) checkAssign(x *Assign) error {
	if err := c.checkExpr(x.L); err != nil {
		return err
	}
	if err := c.checkExpr(x.R); err != nil {
		return err
	}
	if !isLvalue(x.L) {
		return errAt(x.Line, x.Col, "assignment to non-lvalue")
	}
	lt := x.L.Type()
	if lt.Kind == TArray {
		return errAt(x.Line, x.Col, "assignment to array")
	}
	rt := x.R.Type()
	if x.Op == "=" {
		if !assignable(lt, rt) {
			return errAt(x.Line, x.Col, "cannot assign %s to %s", rt, lt)
		}
	} else {
		op := x.Op[:len(x.Op)-1]
		switch op {
		case "+", "-":
			if lt.Kind == TPtr {
				if !rt.IsInteger() {
					return errAt(x.Line, x.Col, "%s on %s and %s", x.Op, lt, rt)
				}
			} else if !lt.IsArith() || !rt.IsArith() {
				return errAt(x.Line, x.Col, "%s on %s and %s", x.Op, lt, rt)
			}
		case "*", "/":
			if !lt.IsArith() || !rt.IsArith() {
				return errAt(x.Line, x.Col, "%s on %s and %s", x.Op, lt, rt)
			}
		default: // %, &, |, ^, <<, >>
			if !lt.IsInteger() || !rt.IsInteger() {
				return errAt(x.Line, x.Col, "%s on %s and %s", x.Op, lt, rt)
			}
		}
	}
	x.setType(lt)
	return nil
}

// isLvalue reports whether e denotes a storage location.
func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return x.Sym != nil && x.Sym.Kind != SymFunc
	case *Index:
		return true
	case *Unary:
		return x.Op == "*"
	}
	return false
}

// Compile is the front-end convenience: parse + check.
func Compile(src string) (*Unit, error) {
	u, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(u); err != nil {
		return nil, err
	}
	return u, nil
}
