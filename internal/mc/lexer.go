package mc

import (
	"strconv"
	"strings"
)

// Lexer turns MC source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return errAt(line, col, "unterminated comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// multi-character punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.lexNumber(line, col)

	case c == '\'':
		return l.lexChar(line, col)

	case c == '"':
		return l.lexString(line, col)
	}
	rest := l.src[l.pos:]
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}
	return Token{}, errAt(line, col, "unexpected character %q", c)
}

func (l *Lexer) lexNumber(line, col int) (Token, error) {
	start := l.pos
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		v, err := strconv.ParseInt(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			return Token{}, errAt(line, col, "bad hex literal %q", l.src[start:l.pos])
		}
		return Token{Kind: TokInt, Int: v, Line: line, Col: col}, nil
	}
	isFloat := false
	for l.pos < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	} else if l.peek() == '.' && !isIdentStart(l.peek2()) {
		isFloat = true
		l.advance()
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errAt(line, col, "bad float literal %q", text)
		}
		return Token{Kind: TokFloat, Flt: v, Line: line, Col: col}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, errAt(line, col, "bad integer literal %q", text)
	}
	return Token{Kind: TokInt, Int: v, Line: line, Col: col}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) escape(line, col int) (byte, error) {
	if l.pos >= len(l.src) {
		return 0, errAt(line, col, "unterminated escape")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case '\\', '\'', '"':
		return c, nil
	}
	return 0, errAt(line, col, "unknown escape \\%c", c)
}

func (l *Lexer) lexChar(line, col int) (Token, error) {
	l.advance() // '
	if l.pos >= len(l.src) {
		return Token{}, errAt(line, col, "unterminated character literal")
	}
	var v byte
	c := l.advance()
	if c == '\\' {
		e, err := l.escape(line, col)
		if err != nil {
			return Token{}, err
		}
		v = e
	} else {
		v = c
	}
	if l.pos >= len(l.src) || l.advance() != '\'' {
		return Token{}, errAt(line, col, "unterminated character literal")
	}
	return Token{Kind: TokChar, Int: int64(v), Line: line, Col: col}, nil
}

func (l *Lexer) lexString(line, col int) (Token, error) {
	l.advance() // "
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, errAt(line, col, "unterminated string literal")
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			e, err := l.escape(line, col)
			if err != nil {
				return Token{}, err
			}
			b.WriteByte(e)
			continue
		}
		b.WriteByte(c)
	}
	return Token{Kind: TokString, Str: b.String(), Line: line, Col: col}, nil
}

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
