// Package mc implements the front end of MC, the small C-like language the
// benchmark suite is written in. MC plays the role of the C subset compiled
// by the paper's retargeted compiler: integers, characters, floats,
// pointers, arrays, functions, and the full complement of C control flow —
// enough to express the Appendix I test programs.
package mc

import "fmt"

// TokKind classifies tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt    // integer literal
	TokFloat  // floating literal
	TokChar   // character literal
	TokString // string literal
	TokKeyword
	TokPunct
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string  // identifier, keyword, or punctuation spelling
	Int  int64   // TokInt / TokChar value
	Flt  float64 // TokFloat value
	Str  string  // TokString decoded contents
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	case TokFloat:
		return fmt.Sprintf("%g", t.Flt)
	case TokChar:
		return fmt.Sprintf("%q", rune(t.Int))
	case TokString:
		return fmt.Sprintf("%q", t.Str)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"int": true, "char": true, "float": true, "void": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"switch": true, "case": true, "default": true,
	"break": true, "continue": true, "return": true,
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...interface{}) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
