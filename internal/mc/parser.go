package mc

import "fmt"

// Parser builds an AST from tokens.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete MC translation unit.
func Parse(src string) (*Unit, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseUnit()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) atPunct(text string) bool   { return p.at(TokPunct, text) }
func (p *Parser) atKeyword(text string) bool { return p.at(TokKeyword, text) }

func (p *Parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return t, errAt(t.Line, t.Col, "expected %q, found %s", want, t)
}

func (p *Parser) errHere(format string, args ...interface{}) error {
	t := p.cur()
	return errAt(t.Line, t.Col, format, args...)
}

// atTypeName reports whether the current token begins a type.
func (p *Parser) atTypeName() bool {
	return p.atKeyword("int") || p.atKeyword("char") || p.atKeyword("float") || p.atKeyword("void")
}

func (p *Parser) parseBaseType() (*Type, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, p.errHere("expected type name, found %s", t)
	}
	p.pos++
	switch t.Text {
	case "int":
		return IntType, nil
	case "char":
		return CharType, nil
	case "float":
		return FloatType, nil
	case "void":
		return VoidType, nil
	}
	return nil, errAt(t.Line, t.Col, "expected type name, found %s", t)
}

// parseUnit = { global-var | function }*
func (p *Parser) parseUnit() (*Unit, error) {
	u := &Unit{}
	for !p.at(TokEOF, "") {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		typ := base
		for p.accept(TokPunct, "*") {
			typ = PtrTo(typ)
		}
		nameTok, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if p.atPunct("(") {
			fn, err := p.parseFuncRest(typ, nameTok)
			if err != nil {
				return nil, err
			}
			u.Funcs = append(u.Funcs, fn)
			continue
		}
		decls, err := p.parseVarDeclRest(base, typ, nameTok)
		if err != nil {
			return nil, err
		}
		u.Globals = append(u.Globals, decls...)
	}
	return u, nil
}

// parseVarDeclRest parses the remainder of a variable declaration whose
// first declarator's pointer-decorated type and name were already consumed.
// base is the undeclared base type for subsequent comma declarators.
func (p *Parser) parseVarDeclRest(base, typ *Type, nameTok Token) ([]*VarDecl, error) {
	var out []*VarDecl
	for {
		full, err := p.parseArraySuffix(typ)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{pos: pos{nameTok.Line, nameTok.Col}, Name: nameTok.Text, Type: full}
		if p.accept(TokPunct, "=") {
			init, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		out = append(out, d)
		if p.accept(TokPunct, ",") {
			typ = base
			for p.accept(TokPunct, "*") {
				typ = PtrTo(typ)
			}
			nameTok, err = p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			continue
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *Parser) parseArraySuffix(typ *Type) (*Type, error) {
	var dims []int
	for p.accept(TokPunct, "[") {
		t, err := p.expect(TokInt, "")
		if err != nil {
			return nil, err
		}
		if t.Int <= 0 {
			return nil, errAt(t.Line, t.Col, "array size must be positive")
		}
		dims = append(dims, int(t.Int))
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		typ = ArrayOf(typ, dims[i])
	}
	return typ, nil
}

func (p *Parser) parseInitializer() (*Initializer, error) {
	t := p.cur()
	if p.accept(TokPunct, "{") {
		init := &Initializer{pos: pos{t.Line, t.Col}}
		for !p.atPunct("}") {
			sub, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			init.List = append(init.List, sub)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, "}"); err != nil {
			return nil, err
		}
		return init, nil
	}
	e, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	return &Initializer{pos: pos{t.Line, t.Col}, Expr: e}, nil
}

func (p *Parser) parseFuncRest(ret *Type, nameTok Token) (*FuncDecl, error) {
	fn := &FuncDecl{pos: pos{nameTok.Line, nameTok.Col}, Name: nameTok.Text, Ret: ret}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		if p.atKeyword("void") && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ")" {
			p.next()
		} else {
			for {
				base, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				typ := base
				for p.accept(TokPunct, "*") {
					typ = PtrTo(typ)
				}
				pt, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				// T name[] means pointer parameter.
				for p.accept(TokPunct, "[") {
					if p.cur().Kind == TokInt {
						p.next() // size ignored for params
					}
					if _, err := p.expect(TokPunct, "]"); err != nil {
						return nil, err
					}
					typ = PtrTo(typ)
				}
				fn.Params = append(fn.Params, &Param{pos: pos{pt.Line, pt.Col}, Name: pt.Text, Type: typ})
				if !p.accept(TokPunct, ",") {
					break
				}
			}
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	t, err := p.expect(TokPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &Block{pos: pos{t.Line, t.Col}}
	for !p.atPunct("}") {
		if p.at(TokEOF, "") {
			return nil, p.errHere("unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atPunct("{"):
		return p.parseBlock()
	case p.atPunct(";"):
		p.next()
		return &Empty{pos{t.Line, t.Col}}, nil
	case p.atTypeName():
		return p.parseLocalDecl()
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("while"):
		return p.parseWhile()
	case p.atKeyword("do"):
		return p.parseDoWhile()
	case p.atKeyword("for"):
		return p.parseFor()
	case p.atKeyword("switch"):
		return p.parseSwitch()
	case p.atKeyword("break"):
		p.next()
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Break{pos{t.Line, t.Col}}, nil
	case p.atKeyword("continue"):
		p.next()
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Continue{pos{t.Line, t.Col}}, nil
	case p.atKeyword("return"):
		p.next()
		r := &Return{pos: pos{t.Line, t.Col}}
		if !p.atPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.X = e
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return r, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return &ExprStmt{pos{t.Line, t.Col}, e}, nil
}

func (p *Parser) parseLocalDecl() (Stmt, error) {
	t := p.cur()
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	typ := base
	for p.accept(TokPunct, "*") {
		typ = PtrTo(typ)
	}
	nameTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	decls, err := p.parseVarDeclRest(base, typ, nameTok)
	if err != nil {
		return nil, err
	}
	return &DeclStmt{pos{t.Line, t.Col}, decls}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &If{pos: pos{t.Line, t.Col}, Cond: cond, Then: then}
	if p.accept(TokKeyword, "else") {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &While{pos{t.Line, t.Col}, cond, body}, nil
}

func (p *Parser) parseDoWhile() (Stmt, error) {
	t := p.next() // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "while"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return &DoWhile{pos{t.Line, t.Col}, body, cond}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	s := &For{pos: pos{t.Line, t.Col}}
	if !p.atPunct(";") {
		if p.atTypeName() {
			init, err := p.parseLocalDecl()
			if err != nil {
				return nil, err
			}
			s.Init = init
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Init = &ExprStmt{pos{t.Line, t.Col}, e}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.atPunct(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *Parser) parseSwitch() (Stmt, error) {
	t := p.next() // switch
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	s := &Switch{pos: pos{t.Line, t.Col}, X: x}
	for !p.atPunct("}") {
		ct := p.cur()
		var c *Case
		if p.accept(TokKeyword, "case") {
			c = &Case{pos: pos{ct.Line, ct.Col}}
			neg := p.accept(TokPunct, "-")
			vt := p.cur()
			if vt.Kind != TokInt && vt.Kind != TokChar {
				return nil, p.errHere("case label must be an integer constant")
			}
			p.next()
			c.Value = vt.Int
			if neg {
				c.Value = -c.Value
			}
		} else if p.accept(TokKeyword, "default") {
			c = &Case{pos: pos{ct.Line, ct.Col}, IsDefault: true}
		} else {
			return nil, p.errHere("expected case or default in switch")
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		for !p.atKeyword("case") && !p.atKeyword("default") && !p.atPunct("}") {
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			c.Body = append(c.Body, st)
		}
		s.Cases = append(s.Cases, c)
	}
	p.next() // }
	return s, nil
}

// ---- Expressions (precedence climbing) ----

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *Parser) parseAssign() (Expr, error) {
	l, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.next()
		r, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase: exprBase{pos: pos{t.Line, t.Col}}, Op: t.Text, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) parseTernary() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if p.accept(TokPunct, "?") {
		tv, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		fv, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return &CondExpr{exprBase: exprBase{pos: pos{t.Line, t.Col}}, C: c, T: tv, F: fv}, nil
	}
	return c, nil
}

// binary operator precedence levels, lowest first.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	l, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		matched := false
		if t.Kind == TokPunct {
			for _, op := range binLevels[level] {
				if t.Text == op {
					matched = true
					break
				}
			}
		}
		if !matched {
			return l, nil
		}
		p.next()
		r, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{pos: pos{t.Line, t.Col}}, Op: t.Text, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "!", "~", "-", "+", "*", "&", "++", "--":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.Text == "+" {
				return x, nil
			}
			return &Unary{exprBase: exprBase{pos: pos{t.Line, t.Col}}, Op: t.Text, X: x}, nil
		case "(":
			// Cast or parenthesized expression.
			if p.toks[p.pos+1].Kind == TokKeyword && keywordIsType(p.toks[p.pos+1].Text) {
				p.next() // (
				base, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				typ := base
				for p.accept(TokPunct, "*") {
					typ = PtrTo(typ)
				}
				if _, err := p.expect(TokPunct, ")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &Cast{exprBase: exprBase{pos: pos{t.Line, t.Col}}, To: typ, X: x}, nil
			}
		}
	}
	return p.parsePostfix()
}

func keywordIsType(s string) bool {
	return s == "int" || s == "char" || s == "float" || s == "void"
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept(TokPunct, "["):
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{pos: pos{t.Line, t.Col}}, X: x, I: i}
		case p.accept(TokPunct, "("):
			call := &Call{exprBase: exprBase{pos: pos{t.Line, t.Col}}, Fun: x}
			for !p.atPunct(")") {
				a, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			x = call
		case p.atPunct("++") || p.atPunct("--"):
			p.next()
			x = &Postfix{exprBase: exprBase{pos: pos{t.Line, t.Col}}, Op: t.Text, X: x}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		return &IntLit{exprBase: exprBase{pos: pos{t.Line, t.Col}}, Value: t.Int}, nil
	case TokChar:
		p.next()
		return &IntLit{exprBase: exprBase{pos: pos{t.Line, t.Col}}, Value: t.Int}, nil
	case TokFloat:
		p.next()
		return &FloatLit{exprBase: exprBase{pos: pos{t.Line, t.Col}}, Value: t.Flt}, nil
	case TokString:
		p.next()
		return &StrLit{exprBase: exprBase{pos: pos{t.Line, t.Col}}, Value: t.Str}, nil
	case TokIdent:
		p.next()
		return &Ident{exprBase: exprBase{pos: pos{t.Line, t.Col}}, Name: t.Text}, nil
	case TokPunct:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errHere("expected expression, found %s", t)
}
