package mc

import (
	"testing"
	"testing/quick"
)

func lex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := lex(t, "int x = 42;")
	kinds := []TokKind{TokKeyword, TokIdent, TokPunct, TokInt, TokPunct, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d kind = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[3].Int != 42 {
		t.Errorf("literal = %d", toks[3].Int)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokKind
		i    int64
		f    float64
	}{
		{"0", TokInt, 0, 0},
		{"123", TokInt, 123, 0},
		{"0x1F", TokInt, 31, 0},
		{"0XfF", TokInt, 255, 0},
		{"1.5", TokFloat, 0, 1.5},
		{"2.", TokFloat, 0, 2.0},
		{".25", TokFloat, 0, 0.25},
		{"1e3", TokFloat, 0, 1000},
		{"1.5e-2", TokFloat, 0, 0.015},
	}
	for _, tc := range cases {
		toks := lex(t, tc.src)
		if toks[0].Kind != tc.kind {
			t.Errorf("%q: kind = %v, want %v", tc.src, toks[0].Kind, tc.kind)
			continue
		}
		if tc.kind == TokInt && toks[0].Int != tc.i {
			t.Errorf("%q: int = %d, want %d", tc.src, toks[0].Int, tc.i)
		}
		if tc.kind == TokFloat && toks[0].Flt != tc.f {
			t.Errorf("%q: float = %g, want %g", tc.src, toks[0].Flt, tc.f)
		}
	}
}

func TestLexCharAndString(t *testing.T) {
	toks := lex(t, `'a' '\n' '\0' '\\' "hi\tthere\n" ""`)
	if toks[0].Int != 'a' || toks[1].Int != '\n' || toks[2].Int != 0 || toks[3].Int != '\\' {
		t.Errorf("char literals wrong: %v", toks[:4])
	}
	if toks[4].Str != "hi\tthere\n" {
		t.Errorf("string = %q", toks[4].Str)
	}
	if toks[5].Str != "" {
		t.Errorf("empty string = %q", toks[5].Str)
	}
}

func TestLexComments(t *testing.T) {
	toks := lex(t, "a // line comment\n b /* block\n comment */ c")
	if len(toks) != 4 || toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Text != "c" {
		t.Fatalf("comments not skipped: %v", toks)
	}
	if toks[1].Line != 2 {
		t.Errorf("line tracking across comments: %d", toks[1].Line)
	}
}

func TestLexPunctuationMaximalMunch(t *testing.T) {
	toks := lex(t, "a<<=b >>= << >> <= >= == != ++ -- && ||")
	want := []string{"a", "<<=", "b", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "++", "--", "&&", "||"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "'a", `"unterminated`, "/* no end", `'\q'`} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lex(t, "a\n  b")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

// Property: any decimal integer in [0, 2^31) lexes back to itself.
func TestLexIntRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		if v < 0 {
			v = -v
		}
		toks, err := Tokenize(fmtInt(int64(v)))
		return err == nil && toks[0].Kind == TokInt && toks[0].Int == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func fmtInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// Robustness: the lexer must return an error or tokens on arbitrary input,
// never panic or loop.
func TestLexerRobustness(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Tokenize(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Pathological inputs.
	for _, src := range []string{
		"", "\x00", "/*", "//", "'", "\"", "0x", "1e", "1e+", "...",
		"\xff\xfe", "/* /* */", "'\\", "\"\\", "1.2.3.4", "0x0x",
	} {
		_, _ = Tokenize(src) // must not panic
	}
}

// Robustness: the parser and checker must not panic on token soup.
func TestParserRobustness(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Compile(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	for _, src := range []string{
		"int", "int main", "int main(", "int main()(", "}{",
		"int f(void){return", "int f(void){{{{", "case 1:",
		"int a[99999999];", "void v; int f(void){return v;}",
	} {
		_, _ = Compile(src)
	}
}
