package mc

import "testing"

func parse(t *testing.T, src string) *Unit {
	t.Helper()
	u, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return u
}

func TestParseGlobals(t *testing.T) {
	u := parse(t, `
int x;
int y = 3, z = 4;
char buf[128];
char *msg = "hello";
float pi = 3.14;
int grid[2][3] = {{1,2,3},{4,5,6}};
`)
	if len(u.Globals) != 7 {
		t.Fatalf("got %d globals", len(u.Globals))
	}
	if u.Globals[3].Type.Kind != TArray || u.Globals[3].Type.Len != 128 {
		t.Errorf("buf type = %s", u.Globals[3].Type)
	}
	if u.Globals[4].Type.Kind != TPtr {
		t.Errorf("msg type = %s", u.Globals[4].Type)
	}
	g := u.Globals[6]
	if g.Type.Kind != TArray || g.Type.Len != 2 || g.Type.Elem.Len != 3 {
		t.Errorf("grid type = %s", g.Type)
	}
	if len(g.Init.List) != 2 || len(g.Init.List[0].List) != 3 {
		t.Errorf("grid init shape wrong")
	}
}

func TestParseFunction(t *testing.T) {
	u := parse(t, `
int strlen(char *s) {
    int n = 0;
    if (s)
        for (; *s; s++)
            n++;
    return n;
}
`)
	if len(u.Funcs) != 1 {
		t.Fatalf("got %d funcs", len(u.Funcs))
	}
	f := u.Funcs[0]
	if f.Name != "strlen" || len(f.Params) != 1 || f.Params[0].Type.Kind != TPtr {
		t.Errorf("signature wrong: %s(%v)", f.Name, f.Params)
	}
	if len(f.Body.Stmts) != 3 {
		t.Errorf("body has %d statements", len(f.Body.Stmts))
	}
	ifStmt, ok := f.Body.Stmts[1].(*If)
	if !ok {
		t.Fatalf("statement 1 is %T", f.Body.Stmts[1])
	}
	if _, ok := ifStmt.Then.(*For); !ok {
		t.Errorf("then branch is %T", ifStmt.Then)
	}
}

func TestParseArrayParams(t *testing.T) {
	u := parse(t, `void f(int a[], char b[10]) { }`)
	f := u.Funcs[0]
	if f.Params[0].Type.Kind != TPtr || f.Params[1].Type.Kind != TPtr {
		t.Errorf("array params should parse as pointers: %s %s", f.Params[0].Type, f.Params[1].Type)
	}
}

func TestParsePrecedence(t *testing.T) {
	u := parse(t, `int f(void) { return 1 + 2 * 3 == 7 && 4 < 5 | 1; }`)
	ret := u.Funcs[0].Body.Stmts[0].(*Return)
	// Must parse as (((1 + (2*3)) == 7) && ((4<5) | 1))
	and, ok := ret.X.(*Binary)
	if !ok || and.Op != "&&" {
		t.Fatalf("top = %T %v", ret.X, and)
	}
	eq := and.L.(*Binary)
	if eq.Op != "==" {
		t.Errorf("left of && = %s", eq.Op)
	}
	add := eq.L.(*Binary)
	if add.Op != "+" {
		t.Errorf("left of == = %s", add.Op)
	}
	mul := add.R.(*Binary)
	if mul.Op != "*" {
		t.Errorf("right of + = %s", mul.Op)
	}
	or := and.R.(*Binary)
	if or.Op != "|" {
		t.Errorf("right of && = %s", or.Op)
	}
}

func TestParseUnaryAndPostfix(t *testing.T) {
	u := parse(t, `int f(int x) { int *p; p = &x; return -*p + x++ - --x; }`)
	stmts := u.Funcs[0].Body.Stmts
	if len(stmts) != 3 {
		t.Fatalf("got %d stmts", len(stmts))
	}
	as := stmts[1].(*ExprStmt).X.(*Assign)
	if _, ok := as.R.(*Unary); !ok {
		t.Errorf("&x is %T", as.R)
	}
}

func TestParseTernaryRightAssoc(t *testing.T) {
	u := parse(t, `int f(int a) { return a ? 1 : a ? 2 : 3; }`)
	ret := u.Funcs[0].Body.Stmts[0].(*Return)
	top := ret.X.(*CondExpr)
	if _, ok := top.F.(*CondExpr); !ok {
		t.Errorf("false arm should be nested ternary, is %T", top.F)
	}
}

func TestParseSwitch(t *testing.T) {
	u := parse(t, `
int f(int c) {
    switch (c) {
    case 1: return 10;
    case -2: return 20;
    case 'x': return 30;
    default: return 0;
    }
}
`)
	sw := u.Funcs[0].Body.Stmts[0].(*Switch)
	if len(sw.Cases) != 4 {
		t.Fatalf("got %d cases", len(sw.Cases))
	}
	if sw.Cases[1].Value != -2 {
		t.Errorf("negative case = %d", sw.Cases[1].Value)
	}
	if sw.Cases[2].Value != 'x' {
		t.Errorf("char case = %d", sw.Cases[2].Value)
	}
	if !sw.Cases[3].IsDefault {
		t.Error("default not recognized")
	}
}

func TestParseLoops(t *testing.T) {
	u := parse(t, `
void f(void) {
    int i;
    while (1) break;
    do i = 0; while (i);
    for (i = 0; i < 10; i++) continue;
    for (int j = 0; j < 5; j++) ;
    for (;;) break;
}
`)
	stmts := u.Funcs[0].Body.Stmts
	if _, ok := stmts[1].(*While); !ok {
		t.Errorf("stmt 1 is %T", stmts[1])
	}
	if _, ok := stmts[2].(*DoWhile); !ok {
		t.Errorf("stmt 2 is %T", stmts[2])
	}
	f3 := stmts[3].(*For)
	if f3.Init == nil || f3.Cond == nil || f3.Post == nil {
		t.Error("for clauses missing")
	}
	f4 := stmts[4].(*For)
	if _, ok := f4.Init.(*DeclStmt); !ok {
		t.Errorf("for-init decl is %T", f4.Init)
	}
	f5 := stmts[5].(*For)
	if f5.Init != nil || f5.Cond != nil || f5.Post != nil {
		t.Error("empty for clauses should be nil")
	}
}

func TestParseCasts(t *testing.T) {
	u := parse(t, `int f(float x) { char *p; p = (char*)0; return (int)x + *(char*)p; }`)
	if u == nil {
		t.Fatal("nil unit")
	}
	ret := u.Funcs[0].Body.Stmts[2].(*Return)
	add := ret.X.(*Binary)
	if _, ok := add.L.(*Cast); !ok {
		t.Errorf("(int)x is %T", add.L)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int;",
		"int f( { }",
		"int f(void) { return }",
		"int f(void) { if }",
		"int f(void) { x = ; }",
		"int a[0];",
		"int f(void) { switch (1) { foo: ; } }",
		"int f(void) { for (int i = 0 i < 3; ) ; }",
		"int f(void) }",
		"int f(void) {",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseCompoundAssign(t *testing.T) {
	u := parse(t, `void f(int x) { x += 1; x <<= 2; x %= 3; }`)
	ops := []string{"+=", "<<=", "%="}
	for i, s := range u.Funcs[0].Body.Stmts {
		a := s.(*ExprStmt).X.(*Assign)
		if a.Op != ops[i] {
			t.Errorf("stmt %d op = %s, want %s", i, a.Op, ops[i])
		}
	}
}
