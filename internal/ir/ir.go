// Package ir defines the machine-independent three-address intermediate
// representation the MC compiler lowers to, together with the CFG analyses
// (dominators, natural loops, liveness) that both code generators and the
// branch-register optimizer build on.
package ir

import "fmt"

// Reg is a virtual register number; negative means "none". Integer and
// floating virtual registers are separate namespaces distinguished by
// context (fields named F* hold float registers).
type Reg int

// None marks an absent register operand.
const None Reg = -1

// OpKind enumerates IR operations.
type OpKind int

const (
	// Data movement and constants.
	OpConst    OpKind = iota // Dst = Imm
	OpConstF                 // FDst = FImm
	OpAddr                   // Dst = address of data symbol Sym (+ Off)
	OpSlotAddr               // Dst = address of stack slot Slot (+ Off)
	OpMov                    // Dst = A
	OpMovF                   // FDst = FA

	// Integer arithmetic: Dst = A <ALU> rhs, where rhs is register B or
	// immediate Imm (UseImm).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra

	// Floating arithmetic.
	OpFAdd // FDst = FA op FB
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg // FDst = -FA
	OpCvIF // FDst = (float) A
	OpCvFI // Dst  = (int) FA

	// SetCond materializes a comparison result as 0/1: Dst = A Cond rhs.
	OpSetCond
	// SetCondF: Dst = FA Cond FB.
	OpSetCondF

	// Memory. Size is 1 (signed byte), 4 (word) or 8 (float).
	OpLoad   // Dst = M[A + Off]  (Size 1 or 4)
	OpLoadF  // FDst = M[A + Off] (Size 8)
	OpStore  // M[A + Off] = B    (Size 1 or 4; B is the value)
	OpStoreF // M[A + Off] = FB

	// OpCall calls Sym with Args; Dst/FDst receives the result when the
	// callee returns a value.
	OpCall

	// Terminators.
	OpJump   // goto Targets[0]
	OpBr     // if A Cond rhs goto Targets[0] else Targets[1]
	OpBrF    // if FA Cond FB goto Targets[0] else Targets[1]
	OpSwitch // dispatch on A over Cases; default Targets[0]
	OpRet    // return A / FA / nothing

	NumOpKinds
)

var opKindNames = [...]string{
	OpConst: "const", OpConstF: "constf", OpAddr: "addr", OpSlotAddr: "slotaddr",
	OpMov: "mov", OpMovF: "movf", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpFAdd: "fadd", OpFSub: "fsub",
	OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg", OpCvIF: "cvif",
	OpCvFI: "cvfi", OpSetCond: "setcc", OpSetCondF: "setccf", OpLoad: "load",
	OpLoadF: "loadf", OpStore: "store", OpStoreF: "storef", OpCall: "call",
	OpJump: "jump", OpBr: "br", OpBrF: "brf", OpSwitch: "switch", OpRet: "ret",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) && opKindNames[k] != "" {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// IsTerm reports whether the op terminates a basic block.
func (k OpKind) IsTerm() bool {
	return k == OpJump || k == OpBr || k == OpBrF || k == OpSwitch || k == OpRet
}

// IsBinALU reports whether the op is an integer ALU operation.
func (k OpKind) IsBinALU() bool { return k >= OpAdd && k <= OpSra }

// Cond mirrors isa conditions at the IR level.
type Cond int

const (
	CondNone Cond = iota
	CondEQ
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

var condStrs = [...]string{"?", "==", "!=", "<", "<=", ">", ">="}

func (c Cond) String() string {
	if int(c) < len(condStrs) {
		return condStrs[c]
	}
	return "?"
}

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondGE:
		return CondLT
	}
	return c
}

// Swap returns the condition with operands exchanged (a c b == b Swap(c) a).
func (c Cond) Swap() Cond {
	switch c {
	case CondLT:
		return CondGT
	case CondLE:
		return CondGE
	case CondGT:
		return CondLT
	case CondGE:
		return CondLE
	}
	return c
}

// Arg is one call argument.
type Arg struct {
	R     Reg
	Float bool
}

// SwitchCase is one arm of an OpSwitch.
type SwitchCase struct {
	Val    int64
	Target string
}

// Ins is one IR instruction.
type Ins struct {
	Kind   OpKind
	Dst    Reg // integer destination
	FDst   Reg // float destination
	A, B   Reg // integer sources
	FA, FB Reg // float sources
	Imm    int64
	FImm   float64
	UseImm bool
	Cond   Cond
	Sym    string // OpAddr data symbol / OpCall callee
	Slot   int    // OpSlotAddr stack slot index
	Off    int32  // OpLoad/OpStore displacement; OpAddr offset
	Size   int    // memory operand size
	Args   []Arg
	Cases  []SwitchCase
	// Targets: OpJump {next}; OpBr/OpBrF {true, false}; OpSwitch {default}.
	Targets []string
	Builtin bool // OpCall to a runtime builtin (trap)
}

// Block is a basic block.
type Block struct {
	Label string
	Ins   []Ins // last instruction is the terminator

	// CFG links, rebuilt by Func.BuildCFG.
	Succs []*Block
	Preds []*Block

	// Analysis results.
	Index  int    // position in Func.Blocks
	RPO    int    // reverse postorder number
	IDom   *Block // immediate dominator (nil for entry)
	Depth  int    // loop nesting depth (0 = not in a loop)
	Freq   int64  // static frequency estimate (10^Depth, capped)
	InLoop *Loop  // innermost containing loop, if any
}

// Term returns the block terminator.
func (b *Block) Term() *Ins {
	if len(b.Ins) == 0 {
		return nil
	}
	last := &b.Ins[len(b.Ins)-1]
	if !last.Kind.IsTerm() {
		return nil
	}
	return last
}

// Loop is a natural loop.
type Loop struct {
	Header    *Block
	Blocks    map[*Block]bool
	Parent    *Loop
	Depth     int
	Preheader *Block // block whose single successor is the header, outside the loop
	HasCall   bool   // any block in the loop contains a call
}

// Contains reports whether b is in the loop.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// SlotInfo describes one stack slot (local arrays, address-taken scalars).
type SlotInfo struct {
	Name  string
	Size  int32
	Align int32
}

// Func is one IR function.
type Func struct {
	Name         string
	NumInt       int // number of integer vregs
	NumFloat     int // number of float vregs
	Params       []Arg
	RetFloat     bool
	HasRet       bool
	Slots        []SlotInfo
	Blocks       []*Block
	blockByLabel map[string]*Block

	Loops []*Loop // populated by FindLoops, outermost first
}

// NewFunc returns an empty function.
func NewFunc(name string) *Func {
	return &Func{Name: name, blockByLabel: map[string]*Block{}}
}

// NewBlock appends a new block with the given label.
func (f *Func) NewBlock(label string) *Block {
	b := &Block{Label: label, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	f.blockByLabel[label] = b
	return b
}

// BlockByLabel returns the block with the given label, or nil.
func (f *Func) BlockByLabel(label string) *Block {
	if f.blockByLabel == nil {
		f.blockByLabel = map[string]*Block{}
		for _, b := range f.Blocks {
			f.blockByLabel[b.Label] = b
		}
	}
	return f.blockByLabel[label]
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewIntReg allocates a fresh integer vreg.
func (f *Func) NewIntReg() Reg {
	r := Reg(f.NumInt)
	f.NumInt++
	return r
}

// NewFloatReg allocates a fresh float vreg.
func (f *Func) NewFloatReg() Reg {
	r := Reg(f.NumFloat)
	f.NumFloat++
	return r
}

// Unit is a lowered translation unit: functions plus static data.
type Unit struct {
	Funcs []*Func
	Data  []Datum
}

// DatumKind mirrors isa data kinds at the IR level.
type DatumKind int

const (
	DWords DatumKind = iota
	DBytes
	DFloats
	DZero
)

// Reloc marks a word in a Datum that holds the address of another data
// symbol (e.g. a global char* initialized with a string literal); the
// linker adds the symbol's address to the word.
type Reloc struct {
	WordIndex int
	Sym       string
}

// Datum is one static data object.
type Datum struct {
	Label  string
	Kind   DatumKind
	Words  []int32
	Bytes  []byte
	Floats []float64
	Size   int
	Align  int
	Relocs []Reloc
}
