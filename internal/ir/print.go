package ir

import (
	"fmt"
	"strings"
)

// String renders the instruction in a readable single-line form.
func (in *Ins) String() string {
	rhs := func() string {
		if in.UseImm {
			return fmt.Sprintf("%d", in.Imm)
		}
		return fmt.Sprintf("v%d", in.B)
	}
	switch in.Kind {
	case OpConst:
		return fmt.Sprintf("v%d = %d", in.Dst, in.Imm)
	case OpConstF:
		return fmt.Sprintf("fv%d = %g", in.FDst, in.FImm)
	case OpAddr:
		if in.Off != 0 {
			return fmt.Sprintf("v%d = &%s+%d", in.Dst, in.Sym, in.Off)
		}
		return fmt.Sprintf("v%d = &%s", in.Dst, in.Sym)
	case OpSlotAddr:
		return fmt.Sprintf("v%d = &slot%d+%d", in.Dst, in.Slot, in.Off)
	case OpMov:
		return fmt.Sprintf("v%d = v%d", in.Dst, in.A)
	case OpMovF:
		return fmt.Sprintf("fv%d = fv%d", in.FDst, in.FA)
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		sym := map[OpKind]string{OpFAdd: "+", OpFSub: "-", OpFMul: "*", OpFDiv: "/"}[in.Kind]
		return fmt.Sprintf("fv%d = fv%d %s fv%d", in.FDst, in.FA, sym, in.FB)
	case OpFNeg:
		return fmt.Sprintf("fv%d = -fv%d", in.FDst, in.FA)
	case OpCvIF:
		return fmt.Sprintf("fv%d = (float)v%d", in.FDst, in.A)
	case OpCvFI:
		return fmt.Sprintf("v%d = (int)fv%d", in.Dst, in.FA)
	case OpSetCond:
		return fmt.Sprintf("v%d = v%d %s %s", in.Dst, in.A, in.Cond, rhs())
	case OpSetCondF:
		return fmt.Sprintf("v%d = fv%d %s fv%d", in.Dst, in.FA, in.Cond, in.FB)
	case OpLoad:
		return fmt.Sprintf("v%d = M%d[v%d+%d]", in.Dst, in.Size, in.A, in.Off)
	case OpLoadF:
		return fmt.Sprintf("fv%d = MF[v%d+%d]", in.FDst, in.A, in.Off)
	case OpStore:
		return fmt.Sprintf("M%d[v%d+%d] = v%d", in.Size, in.A, in.Off, in.B)
	case OpStoreF:
		return fmt.Sprintf("MF[v%d+%d] = fv%d", in.A, in.Off, in.FB)
	case OpCall:
		var args []string
		for _, a := range in.Args {
			if a.Float {
				args = append(args, fmt.Sprintf("fv%d", a.R))
			} else {
				args = append(args, fmt.Sprintf("v%d", a.R))
			}
		}
		pre := ""
		if in.Dst != None {
			pre = fmt.Sprintf("v%d = ", in.Dst)
		} else if in.FDst != None {
			pre = fmt.Sprintf("fv%d = ", in.FDst)
		}
		return fmt.Sprintf("%scall %s(%s)", pre, in.Sym, strings.Join(args, ", "))
	case OpJump:
		return "jump " + in.Targets[0]
	case OpBr:
		return fmt.Sprintf("br v%d %s %s ? %s : %s", in.A, in.Cond, rhs(), in.Targets[0], in.Targets[1])
	case OpBrF:
		return fmt.Sprintf("brf fv%d %s fv%d ? %s : %s", in.FA, in.Cond, in.FB, in.Targets[0], in.Targets[1])
	case OpSwitch:
		var cs []string
		for _, c := range in.Cases {
			cs = append(cs, fmt.Sprintf("%d:%s", c.Val, c.Target))
		}
		return fmt.Sprintf("switch v%d [%s] default %s", in.A, strings.Join(cs, " "), in.Targets[0])
	case OpRet:
		if in.A != None {
			return fmt.Sprintf("ret v%d", in.A)
		}
		if in.FA != None {
			return fmt.Sprintf("ret fv%d", in.FA)
		}
		return "ret"
	}
	if in.Kind.IsBinALU() {
		sym := map[OpKind]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
			OpRem: "%", OpAnd: "&", OpOr: "|", OpXor: "^", OpSll: "<<",
			OpSrl: ">>>", OpSra: ">>"}[in.Kind]
		return fmt.Sprintf("v%d = v%d %s %s", in.Dst, in.A, sym, rhs())
	}
	return fmt.Sprintf("<%s>", in.Kind)
}

// String renders the function body.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (int vregs %d, float vregs %d)\n", f.Name, f.NumInt, f.NumFloat)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:", blk.Label)
		if blk.Depth > 0 {
			fmt.Fprintf(&b, " ; depth %d", blk.Depth)
		}
		b.WriteByte('\n')
		for i := range blk.Ins {
			fmt.Fprintf(&b, "\t%s\n", blk.Ins[i].String())
		}
	}
	return b.String()
}

// Verify checks structural invariants: every block non-empty, terminators
// only at block ends, CFG targets resolvable, and vreg numbers in range.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s: no blocks", f.Name)
	}
	seen := map[string]bool{}
	for _, b := range f.Blocks {
		if seen[b.Label] {
			return fmt.Errorf("ir: %s: duplicate label %s", f.Name, b.Label)
		}
		seen[b.Label] = true
		if len(b.Ins) == 0 {
			return fmt.Errorf("ir: %s: block %s is empty", f.Name, b.Label)
		}
		for i := range b.Ins {
			in := &b.Ins[i]
			if in.Kind.IsTerm() != (i == len(b.Ins)-1) {
				return fmt.Errorf("ir: %s: block %s: terminator in middle or missing at end (ins %d: %s)",
					f.Name, b.Label, i, in)
			}
			var ibuf, fbuf []Reg
			ibuf, fbuf = in.Uses(ibuf, fbuf)
			di, df := in.Defs()
			if di != None {
				ibuf = append(ibuf, di)
			}
			if df != None {
				fbuf = append(fbuf, df)
			}
			for _, r := range ibuf {
				if int(r) >= f.NumInt {
					return fmt.Errorf("ir: %s: block %s: v%d out of range (%d)", f.Name, b.Label, r, f.NumInt)
				}
			}
			for _, r := range fbuf {
				if int(r) >= f.NumFloat {
					return fmt.Errorf("ir: %s: block %s: fv%d out of range (%d)", f.Name, b.Label, r, f.NumFloat)
				}
			}
			if in.Kind == OpSlotAddr && (in.Slot < 0 || in.Slot >= len(f.Slots)) {
				return fmt.Errorf("ir: %s: block %s: slot %d out of range", f.Name, b.Label, in.Slot)
			}
		}
	}
	for _, b := range f.Blocks {
		t := b.Term()
		check := func(l string) error {
			if !seen[l] {
				return fmt.Errorf("ir: %s: block %s targets unknown label %s", f.Name, b.Label, l)
			}
			return nil
		}
		for _, l := range t.Targets {
			if err := check(l); err != nil {
				return err
			}
		}
		for _, c := range t.Cases {
			if err := check(c.Target); err != nil {
				return err
			}
		}
	}
	return nil
}
