package ir

// Uses appends the integer and float vregs read by the instruction to the
// provided slices and returns them.
func (in *Ins) Uses(ints, floats []Reg) ([]Reg, []Reg) {
	addI := func(r Reg) {
		if r != None {
			ints = append(ints, r)
		}
	}
	addF := func(r Reg) {
		if r != None {
			floats = append(floats, r)
		}
	}
	switch in.Kind {
	case OpConst, OpConstF, OpAddr, OpSlotAddr, OpJump:
	case OpMov:
		addI(in.A)
	case OpMovF:
		addF(in.FA)
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		addF(in.FA)
		addF(in.FB)
	case OpFNeg:
		addF(in.FA)
	case OpCvIF:
		addI(in.A)
	case OpCvFI:
		addF(in.FA)
	case OpSetCond:
		addI(in.A)
		if !in.UseImm {
			addI(in.B)
		}
	case OpSetCondF:
		addF(in.FA)
		addF(in.FB)
	case OpLoad, OpLoadF:
		addI(in.A)
	case OpStore:
		addI(in.A)
		addI(in.B)
	case OpStoreF:
		addI(in.A)
		addF(in.FB)
	case OpCall:
		for _, a := range in.Args {
			if a.Float {
				addF(a.R)
			} else {
				addI(a.R)
			}
		}
	case OpBr:
		addI(in.A)
		if !in.UseImm {
			addI(in.B)
		}
	case OpBrF:
		addF(in.FA)
		addF(in.FB)
	case OpSwitch:
		addI(in.A)
	case OpRet:
		addI(in.A)
		addF(in.FA)
	default:
		if in.Kind.IsBinALU() {
			addI(in.A)
			if !in.UseImm {
				addI(in.B)
			}
		}
	}
	return ints, floats
}

// Defs returns the integer and float vregs written by the instruction
// (None when absent).
func (in *Ins) Defs() (Reg, Reg) {
	switch in.Kind {
	case OpConst, OpAddr, OpSlotAddr, OpMov, OpCvFI, OpSetCond, OpSetCondF, OpLoad:
		return in.Dst, None
	case OpConstF, OpMovF, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg, OpCvIF, OpLoadF:
		return None, in.FDst
	case OpCall:
		return in.Dst, in.FDst
	default:
		if in.Kind.IsBinALU() {
			return in.Dst, None
		}
	}
	return None, None
}

// RegSet is a dense bit set over vreg numbers.
type RegSet []uint64

// NewRegSet returns a set sized for n registers.
func NewRegSet(n int) RegSet { return make(RegSet, (n+63)/64) }

// Has reports membership.
func (s RegSet) Has(r Reg) bool {
	if r < 0 || int(r)/64 >= len(s) {
		return false
	}
	return s[r/64]&(1<<(uint(r)%64)) != 0
}

// Add inserts r, reporting whether the set changed.
func (s RegSet) Add(r Reg) bool {
	if r < 0 {
		return false
	}
	w, b := r/64, uint(r)%64
	if s[w]&(1<<b) != 0 {
		return false
	}
	s[w] |= 1 << b
	return true
}

// Remove deletes r.
func (s RegSet) Remove(r Reg) {
	if r >= 0 && int(r)/64 < len(s) {
		s[r/64] &^= 1 << (uint(r) % 64)
	}
}

// UnionWith adds all of t, reporting whether the set changed.
func (s RegSet) UnionWith(t RegSet) bool {
	changed := false
	for i := range t {
		if t[i]&^s[i] != 0 {
			s[i] |= t[i]
			changed = true
		}
	}
	return changed
}

// Clone copies the set.
func (s RegSet) Clone() RegSet {
	c := make(RegSet, len(s))
	copy(c, s)
	return c
}

// Count returns the number of members.
func (s RegSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Liveness holds per-block live-in/live-out sets for one register class.
type Liveness struct {
	In  []RegSet // indexed by Block.Index
	Out []RegSet
}

// ComputeLiveness computes live-in/out sets for the integer and float vreg
// classes via the standard backward dataflow iteration.
func (f *Func) ComputeLiveness() (intLive, floatLive *Liveness) {
	n := len(f.Blocks)
	intLive = &Liveness{In: make([]RegSet, n), Out: make([]RegSet, n)}
	floatLive = &Liveness{In: make([]RegSet, n), Out: make([]RegSet, n)}
	useI := make([]RegSet, n)
	defI := make([]RegSet, n)
	useF := make([]RegSet, n)
	defF := make([]RegSet, n)
	var ibuf, fbuf []Reg
	for i, b := range f.Blocks {
		useI[i], defI[i] = NewRegSet(f.NumInt), NewRegSet(f.NumInt)
		useF[i], defF[i] = NewRegSet(f.NumFloat), NewRegSet(f.NumFloat)
		intLive.In[i], intLive.Out[i] = NewRegSet(f.NumInt), NewRegSet(f.NumInt)
		floatLive.In[i], floatLive.Out[i] = NewRegSet(f.NumFloat), NewRegSet(f.NumFloat)
		for j := range b.Ins {
			in := &b.Ins[j]
			ibuf, fbuf = in.Uses(ibuf[:0], fbuf[:0])
			for _, r := range ibuf {
				if !defI[i].Has(r) {
					useI[i].Add(r)
				}
			}
			for _, r := range fbuf {
				if !defF[i].Has(r) {
					useF[i].Add(r)
				}
			}
			di, df := in.Defs()
			if di != None {
				defI[i].Add(di)
			}
			if df != None {
				defF[i].Add(df)
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			for _, s := range b.Succs {
				if intLive.Out[i].UnionWith(intLive.In[s.Index]) {
					changed = true
				}
				if floatLive.Out[i].UnionWith(floatLive.In[s.Index]) {
					changed = true
				}
			}
			// in = use ∪ (out - def)
			newInI := intLive.Out[i].Clone()
			for w := range newInI {
				newInI[w] &^= defI[i][w]
				newInI[w] |= useI[i][w]
			}
			if intLive.In[i].UnionWith(newInI) {
				changed = true
			}
			newInF := floatLive.Out[i].Clone()
			for w := range newInF {
				newInF[w] &^= defF[i][w]
				newInF[w] |= useF[i][w]
			}
			if floatLive.In[i].UnionWith(newInF) {
				changed = true
			}
		}
	}
	return intLive, floatLive
}
