package ir

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildDiamond constructs:
//
//	entry -> a -> (b | c) -> d -> ret
func buildDiamond(t *testing.T) *Func {
	t.Helper()
	f := NewFunc("diamond")
	v := f.NewIntReg()
	e := f.NewBlock("entry")
	e.Ins = append(e.Ins,
		Ins{Kind: OpConst, Dst: v, Imm: 1},
		Ins{Kind: OpBr, A: v, UseImm: true, Imm: 0, Cond: CondNE, Targets: []string{"b", "c"}})
	b := f.NewBlock("b")
	b.Ins = append(b.Ins, Ins{Kind: OpJump, Targets: []string{"d"}})
	c := f.NewBlock("c")
	c.Ins = append(c.Ins, Ins{Kind: OpJump, Targets: []string{"d"}})
	d := f.NewBlock("d")
	d.Ins = append(d.Ins, Ins{Kind: OpRet, A: v, FA: None})
	if err := f.BuildCFG(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBuildCFG(t *testing.T) {
	f := buildDiamond(t)
	e := f.BlockByLabel("entry")
	d := f.BlockByLabel("d")
	if len(e.Succs) != 2 || len(d.Preds) != 2 {
		t.Fatalf("edges wrong: entry succs %d, d preds %d", len(e.Succs), len(d.Preds))
	}
	if e.RPO != 0 {
		t.Errorf("entry RPO = %d", e.RPO)
	}
	if d.RPO != 3 {
		t.Errorf("d RPO = %d", d.RPO)
	}
}

func TestBuildCFGErrors(t *testing.T) {
	f := NewFunc("bad")
	b := f.NewBlock("entry")
	b.Ins = append(b.Ins, Ins{Kind: OpJump, Targets: []string{"nowhere"}})
	if err := f.BuildCFG(); err == nil {
		t.Error("unknown target must fail")
	}
	f2 := NewFunc("bad2")
	b2 := f2.NewBlock("entry")
	b2.Ins = append(b2.Ins, Ins{Kind: OpConst, Dst: 0, Imm: 1})
	if err := f2.BuildCFG(); err == nil {
		t.Error("missing terminator must fail")
	}
}

func TestDominators(t *testing.T) {
	f := buildDiamond(t)
	f.ComputeDominators()
	e := f.BlockByLabel("entry")
	b := f.BlockByLabel("b")
	c := f.BlockByLabel("c")
	d := f.BlockByLabel("d")
	if b.IDom != e || c.IDom != e || d.IDom != e {
		t.Errorf("idoms: b=%v c=%v d=%v", lbl(b.IDom), lbl(c.IDom), lbl(d.IDom))
	}
	if !Dominates(e, d) || Dominates(b, d) || !Dominates(d, d) {
		t.Error("Dominates relation wrong")
	}
}

func lbl(b *Block) string {
	if b == nil {
		return "<nil>"
	}
	return b.Label
}

// buildNestedLoops constructs a double loop:
//
//	entry -> outerhead <-> innerhead <-> innerbody ; outerhead -> exit
func buildNestedLoops(t *testing.T) *Func {
	t.Helper()
	f := NewFunc("nest")
	i := f.NewIntReg()
	e := f.NewBlock("entry")
	e.Ins = append(e.Ins,
		Ins{Kind: OpConst, Dst: i, Imm: 0},
		Ins{Kind: OpJump, Targets: []string{"oh"}})
	oh := f.NewBlock("oh")
	oh.Ins = append(oh.Ins,
		Ins{Kind: OpBr, A: i, UseImm: true, Imm: 10, Cond: CondLT, Targets: []string{"ih", "exit"}})
	ih := f.NewBlock("ih")
	ih.Ins = append(ih.Ins,
		Ins{Kind: OpBr, A: i, UseImm: true, Imm: 5, Cond: CondLT, Targets: []string{"ib", "olatch"}})
	ib := f.NewBlock("ib")
	ib.Ins = append(ib.Ins,
		Ins{Kind: OpAdd, Dst: i, A: i, UseImm: true, Imm: 1},
		Ins{Kind: OpJump, Targets: []string{"ih"}})
	ol := f.NewBlock("olatch")
	ol.Ins = append(ol.Ins,
		Ins{Kind: OpAdd, Dst: i, A: i, UseImm: true, Imm: 1},
		Ins{Kind: OpJump, Targets: []string{"oh"}})
	x := f.NewBlock("exit")
	x.Ins = append(x.Ins, Ins{Kind: OpRet, A: None, FA: None})
	if err := f.BuildCFG(); err != nil {
		t.Fatal(err)
	}
	f.ComputeDominators()
	f.FindLoops()
	return f
}

func TestFindLoops(t *testing.T) {
	f := buildNestedLoops(t)
	if len(f.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(f.Loops))
	}
	outer, inner := f.Loops[0], f.Loops[1]
	if len(outer.Blocks) < len(inner.Blocks) {
		outer, inner = inner, outer
	}
	if outer.Header.Label != "oh" || inner.Header.Label != "ih" {
		t.Errorf("headers: outer %s inner %s", outer.Header.Label, inner.Header.Label)
	}
	if inner.Parent != outer || outer.Parent != nil {
		t.Error("nesting wrong")
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths: outer %d inner %d", outer.Depth, inner.Depth)
	}
	ib := f.BlockByLabel("ib")
	if ib.Depth != 2 || ib.InLoop != inner {
		t.Errorf("ib depth %d", ib.Depth)
	}
	ol := f.BlockByLabel("olatch")
	if ol.Depth != 1 || ol.InLoop != outer {
		t.Errorf("olatch depth %d", ol.Depth)
	}
	if ib.Freq != 100 || ol.Freq != 10 || f.BlockByLabel("entry").Freq != 1 {
		t.Errorf("freqs: ib %d ol %d", ib.Freq, ol.Freq)
	}
}

func TestLoopHasCall(t *testing.T) {
	f := buildNestedLoops(t)
	ib := f.BlockByLabel("ib")
	ib.Ins = append(ib.Ins[:1], Ins{Kind: OpCall, Sym: "g", Dst: None, FDst: None},
		Ins{Kind: OpJump, Targets: []string{"ih"}})
	if err := f.BuildCFG(); err != nil {
		t.Fatal(err)
	}
	f.ComputeDominators()
	f.FindLoops()
	for _, l := range f.Loops {
		if !l.HasCall {
			t.Errorf("loop at %s should have HasCall", l.Header.Label)
		}
	}
}

func TestEnsurePreheaders(t *testing.T) {
	f := buildNestedLoops(t)
	if err := f.EnsurePreheaders(); err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, l := range f.Loops {
		if l.Preheader == nil {
			t.Fatalf("loop at %s has no preheader", l.Header.Label)
		}
		if l.Blocks[l.Preheader] {
			t.Errorf("preheader of %s is inside the loop", l.Header.Label)
		}
		if len(l.Preheader.Succs) != 1 || l.Preheader.Succs[0] != l.Header {
			t.Errorf("preheader of %s does not fall into the header", l.Header.Label)
		}
	}
	// The outer loop's preheader must not be a block of the outer loop and
	// all original out-of-loop predecessors must now route through it.
	outer := f.Loops[0]
	if f.Loops[1].Depth > outer.Depth {
		outer = f.Loops[1]
	}
	hdr := outer.Header
	for _, p := range hdr.Preds {
		if !outer.Blocks[p] && p != outer.Preheader {
			t.Errorf("header pred %s bypasses preheader", p.Label)
		}
	}
}

func TestPreheaderIdempotent(t *testing.T) {
	f := buildNestedLoops(t)
	if err := f.EnsurePreheaders(); err != nil {
		t.Fatal(err)
	}
	n := len(f.Blocks)
	if err := f.EnsurePreheaders(); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != n {
		t.Errorf("second EnsurePreheaders added blocks: %d -> %d", n, len(f.Blocks))
	}
}

func TestLiveness(t *testing.T) {
	f := NewFunc("live")
	a := f.NewIntReg()
	b := f.NewIntReg()
	c := f.NewIntReg()
	e := f.NewBlock("entry")
	e.Ins = append(e.Ins,
		Ins{Kind: OpConst, Dst: a, Imm: 1},
		Ins{Kind: OpConst, Dst: b, Imm: 2},
		Ins{Kind: OpBr, A: a, UseImm: true, Imm: 0, Cond: CondNE, Targets: []string{"then", "join"}})
	th := f.NewBlock("then")
	th.Ins = append(th.Ins,
		Ins{Kind: OpAdd, Dst: c, A: a, B: b},
		Ins{Kind: OpJump, Targets: []string{"join"}})
	j := f.NewBlock("join")
	j.Ins = append(j.Ins, Ins{Kind: OpRet, A: b, FA: None})
	if err := f.BuildCFG(); err != nil {
		t.Fatal(err)
	}
	intL, _ := f.ComputeLiveness()
	// b is live out of entry (used in join and then); a live into then only.
	if !intL.Out[e.Index].Has(b) {
		t.Error("b should be live out of entry")
	}
	if !intL.In[th.Index].Has(a) || !intL.In[th.Index].Has(b) {
		t.Error("a and b should be live into then")
	}
	if intL.In[j.Index].Has(a) {
		t.Error("a should not be live into join")
	}
	if intL.In[e.Index].Has(a) || intL.In[e.Index].Has(b) {
		t.Error("nothing should be live into entry")
	}
	// c is dead everywhere.
	for i := range f.Blocks {
		if intL.Out[i].Has(c) {
			t.Error("c should never be live out")
		}
	}
}

func TestLivenessLoop(t *testing.T) {
	f := buildNestedLoops(t)
	intL, _ := f.ComputeLiveness()
	// i (vreg 0) is live around the whole loop nest.
	oh := f.BlockByLabel("oh")
	if !intL.In[oh.Index].Has(0) || !intL.Out[oh.Index].Has(0) {
		t.Error("loop counter should be live through the outer header")
	}
}

func TestRegSetProperties(t *testing.T) {
	add := func(elems []uint8) bool {
		s := NewRegSet(256)
		seen := map[Reg]bool{}
		for _, e := range elems {
			r := Reg(e)
			changed := s.Add(r)
			if changed == seen[r] {
				return false // Add must report "newly added"
			}
			seen[r] = true
			if !s.Has(r) {
				return false
			}
		}
		if s.Count() != len(seen) {
			return false
		}
		for r := range seen {
			s.Remove(r)
			if s.Has(r) {
				return false
			}
		}
		return s.Count() == 0
	}
	if err := quick.Check(add, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegSetUnion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := NewRegSet(256), NewRegSet(256)
		for _, x := range xs {
			a.Add(Reg(x))
		}
		for _, y := range ys {
			b.Add(Reg(y))
		}
		u := a.Clone()
		u.UnionWith(b)
		for _, x := range xs {
			if !u.Has(Reg(x)) {
				return false
			}
		}
		for _, y := range ys {
			if !u.Has(Reg(y)) {
				return false
			}
		}
		// Union is idempotent once complete.
		return !u.UnionWith(b) && !u.UnionWith(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVerifyCatchesBadIR(t *testing.T) {
	f := NewFunc("v")
	b := f.NewBlock("entry")
	b.Ins = append(b.Ins,
		Ins{Kind: OpJump, Targets: []string{"entry"}},
		Ins{Kind: OpConst, Dst: 0, Imm: 1})
	if err := f.Verify(); err == nil {
		t.Error("terminator in middle must fail verification")
	}
	f2 := NewFunc("v2")
	b2 := f2.NewBlock("entry")
	b2.Ins = append(b2.Ins, Ins{Kind: OpMov, Dst: 5, A: 3})
	// vregs out of range (NumInt == 0)
	if err := f2.Verify(); err == nil {
		t.Error("out-of-range vreg must fail verification")
	}
}

func TestUsesDefs(t *testing.T) {
	in := Ins{Kind: OpStore, A: 1, B: 2, Size: 4}
	is, fs := in.Uses(nil, nil)
	if len(is) != 2 || len(fs) != 0 {
		t.Errorf("store uses = %v %v", is, fs)
	}
	d, fd := in.Defs()
	if d != None || fd != None {
		t.Error("store defines nothing")
	}
	call := Ins{Kind: OpCall, Dst: 3, FDst: None, Args: []Arg{{R: 1}, {R: 2, Float: true}}}
	is, fs = call.Uses(nil, nil)
	if len(is) != 1 || len(fs) != 1 {
		t.Errorf("call uses = %v %v", is, fs)
	}
	d, _ = call.Defs()
	if d != 3 {
		t.Errorf("call def = %d", d)
	}
	alu := Ins{Kind: OpAdd, Dst: 0, A: 1, UseImm: true, Imm: 4}
	is, _ = alu.Uses(nil, nil)
	if len(is) != 1 {
		t.Errorf("imm ALU uses = %v", is)
	}
}

func TestCondHelpers(t *testing.T) {
	if CondLT.Negate() != CondGE || CondEQ.Swap() != CondEQ || CondLT.Swap() != CondGT {
		t.Error("cond helpers wrong")
	}
}

// Brute-force dominator computation for cross-checking: a dominates b iff
// removing a from the graph makes b unreachable from the entry.
func bruteDominates(f *Func, a, b *Block) bool {
	if a == b {
		return true
	}
	seen := map[*Block]bool{a: true} // block a is "removed"
	var dfs func(x *Block) bool
	dfs = func(x *Block) bool {
		if x == b {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, s := range x.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return !dfs(f.Entry())
}

// randomCFG builds a random single-entry CFG with n blocks.
func randomCFG(t *testing.T, seed int64, n int) *Func {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	f := NewFunc("rand")
	v := f.NewIntReg()
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		labels[i] = fmt.Sprintf("B%d", i)
	}
	for i := 0; i < n; i++ {
		b := f.NewBlock(labels[i])
		switch r.Intn(3) {
		case 0: // ret
			b.Ins = append(b.Ins, Ins{Kind: OpRet, A: None, FA: None})
		case 1: // jump
			b.Ins = append(b.Ins, Ins{Kind: OpJump, Targets: []string{labels[r.Intn(n)]}})
		default: // branch
			b.Ins = append(b.Ins, Ins{Kind: OpBr, A: v, UseImm: true, Imm: 0, Cond: CondNE,
				Targets: []string{labels[r.Intn(n)], labels[r.Intn(n)]}})
		}
	}
	if err := f.BuildCFG(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDominatorsAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := randomCFG(t, seed, 12)
		f.ComputeDominators()
		blocks := f.RPOBlocks()
		for _, a := range blocks {
			for _, b := range blocks {
				fast := Dominates(a, b)
				slow := bruteDominates(f, a, b)
				if fast != slow {
					t.Fatalf("seed %d: Dominates(%s,%s) = %v, brute force %v",
						seed, a.Label, b.Label, fast, slow)
				}
			}
		}
	}
}

func TestLoopsHaveDominatingHeaders(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := randomCFG(t, seed+100, 10)
		f.ComputeDominators()
		f.FindLoops()
		for _, l := range f.Loops {
			for b := range l.Blocks {
				if b.RPO >= 0 && !Dominates(l.Header, b) {
					t.Errorf("seed %d: loop header %s does not dominate member %s",
						seed, l.Header.Label, b.Label)
				}
			}
		}
	}
}
