package ir

import (
	"fmt"
	"sort"
)

// BuildCFG recomputes successor/predecessor edges from block terminators.
// Every block must end in a terminator and every branch target must name an
// existing block.
func (f *Func) BuildCFG() error {
	f.blockByLabel = map[string]*Block{}
	for i, b := range f.Blocks {
		b.Index = i
		f.blockByLabel[b.Label] = b
		b.Succs = b.Succs[:0]
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			return fmt.Errorf("ir: %s: block %s lacks a terminator", f.Name, b.Label)
		}
		add := func(label string) error {
			s := f.blockByLabel[label]
			if s == nil {
				return fmt.Errorf("ir: %s: block %s targets unknown label %s", f.Name, b.Label, label)
			}
			b.Succs = append(b.Succs, s)
			return nil
		}
		switch t.Kind {
		case OpJump, OpBr, OpBrF:
			for _, l := range t.Targets {
				if err := add(l); err != nil {
					return err
				}
			}
		case OpSwitch:
			if err := add(t.Targets[0]); err != nil {
				return err
			}
			for _, c := range t.Cases {
				if err := add(c.Target); err != nil {
					return err
				}
			}
		case OpRet:
			// no successors
		}
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
	f.numberRPO()
	return nil
}

// numberRPO assigns reverse-postorder numbers from the entry.
func (f *Func) numberRPO() {
	for _, b := range f.Blocks {
		b.RPO = -1
	}
	var order []*Block
	seen := map[*Block]bool{}
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	if len(f.Blocks) > 0 {
		dfs(f.Entry())
	}
	n := len(order)
	for i, b := range order {
		b.RPO = n - 1 - i
	}
}

// RPOBlocks returns reachable blocks in reverse postorder.
func (f *Func) RPOBlocks() []*Block {
	var out []*Block
	for _, b := range f.Blocks {
		if b.RPO >= 0 {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RPO < out[j].RPO })
	return out
}

// ComputeDominators fills Block.IDom using the Cooper-Harvey-Kennedy
// iterative algorithm over reverse postorder. Must follow BuildCFG.
func (f *Func) ComputeDominators() {
	blocks := f.RPOBlocks()
	if len(blocks) == 0 {
		return
	}
	for _, b := range f.Blocks {
		b.IDom = nil
	}
	entry := blocks[0]
	entry.IDom = entry
	changed := true
	for changed {
		changed = false
		for _, b := range blocks[1:] {
			var newIDom *Block
			for _, p := range b.Preds {
				if p.RPO < 0 || p.IDom == nil {
					continue
				}
				if newIDom == nil {
					newIDom = p
				} else {
					newIDom = intersect(p, newIDom)
				}
			}
			if newIDom != nil && b.IDom != newIDom {
				b.IDom = newIDom
				changed = true
			}
		}
	}
	entry.IDom = nil // conventional: entry has no idom
}

func intersect(a, b *Block) *Block {
	for a != b {
		for a.RPO > b.RPO {
			if a.IDom == nil {
				return b
			}
			a = a.IDom
		}
		for b.RPO > a.RPO {
			if b.IDom == nil {
				return a
			}
			b = b.IDom
		}
	}
	return a
}

// Dominates reports whether a dominates b (reflexive).
func Dominates(a, b *Block) bool {
	for x := b; x != nil; x = x.IDom {
		if x == a {
			return true
		}
		if x.IDom == x {
			break
		}
	}
	return false
}

// FindLoops identifies natural loops from back edges (tail -> header where
// header dominates tail), merges loops sharing a header, computes nesting,
// sets per-block Depth/Freq/InLoop, and records whether each loop contains
// a call. Requires BuildCFG + ComputeDominators.
func (f *Func) FindLoops() {
	f.Loops = nil
	for _, b := range f.Blocks {
		b.Depth = 0
		b.InLoop = nil
	}
	byHeader := map[*Block]*Loop{}
	for _, b := range f.Blocks {
		if b.RPO < 0 {
			continue
		}
		for _, s := range b.Succs {
			if !Dominates(s, b) {
				continue
			}
			// back edge b -> s
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
				byHeader[s] = l
				f.Loops = append(f.Loops, l)
			}
			// Walk predecessors backward from the tail.
			stack := []*Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[x] {
					continue
				}
				l.Blocks[x] = true
				for _, p := range x.Preds {
					stack = append(stack, p)
				}
			}
		}
	}
	// Sort loops by size descending so parents precede children.
	sort.Slice(f.Loops, func(i, j int) bool {
		if len(f.Loops[i].Blocks) != len(f.Loops[j].Blocks) {
			return len(f.Loops[i].Blocks) > len(f.Loops[j].Blocks)
		}
		return f.Loops[i].Header.Index < f.Loops[j].Header.Index
	})
	// Nesting: a loop's parent is the smallest strictly-containing loop.
	// Loops are sorted by size descending, so scanning backward from i-1
	// finds the smallest containing loop first.
	for i, l := range f.Loops {
		for j := i - 1; j >= 0; j-- {
			outer := f.Loops[j]
			if outer != l && outer.Blocks[l.Header] && len(outer.Blocks) > len(l.Blocks) {
				l.Parent = outer
				break
			}
		}
	}
	for _, l := range f.Loops {
		l.Depth = 1
		for p := l.Parent; p != nil; p = p.Parent {
			l.Depth++
		}
	}
	// Innermost loop and depth per block.
	for _, l := range f.Loops {
		for b := range l.Blocks {
			if b.InLoop == nil || l.Depth > b.InLoop.Depth {
				b.InLoop = l
				b.Depth = l.Depth
			}
		}
	}
	for _, b := range f.Blocks {
		d := b.Depth
		if d > 6 {
			d = 6
		}
		b.Freq = pow10(d)
	}
	// Calls and preheaders.
	for _, l := range f.Loops {
		for b := range l.Blocks {
			for i := range b.Ins {
				if b.Ins[i].Kind == OpCall {
					l.HasCall = true
				}
			}
		}
		l.Preheader = f.findPreheader(l)
	}
}

func pow10(n int) int64 {
	v := int64(1)
	for i := 0; i < n; i++ {
		v *= 10
	}
	return v
}

// findPreheader returns the unique out-of-loop predecessor of the header
// whose only successor is the header, or nil if none exists.
func (f *Func) findPreheader(l *Loop) *Block {
	var outside []*Block
	for _, p := range l.Header.Preds {
		if !l.Blocks[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 && len(outside[0].Succs) == 1 {
		return outside[0]
	}
	return nil
}

// EnsurePreheaders inserts an explicit preheader block before every loop
// header that lacks one, retargeting out-of-loop predecessors. Rebuilds the
// CFG and loop analysis when any block was inserted.
func (f *Func) EnsurePreheaders() error {
	inserted := false
	for _, l := range f.Loops {
		if l.Preheader != nil {
			continue
		}
		ph := &Block{Label: f.freshLabel(l.Header.Label + ".ph")}
		ph.Ins = append(ph.Ins, Ins{Kind: OpJump, Targets: []string{l.Header.Label}})
		// Retarget out-of-loop predecessors.
		for _, p := range l.Header.Preds {
			if l.Blocks[p] {
				continue
			}
			t := p.Term()
			retarget(t, l.Header.Label, ph.Label)
		}
		// Insert before the header to keep layout natural.
		pos := l.Header.Index
		f.Blocks = append(f.Blocks, nil)
		copy(f.Blocks[pos+1:], f.Blocks[pos:])
		f.Blocks[pos] = ph
		inserted = true
		if err := f.BuildCFG(); err != nil {
			return err
		}
		f.ComputeDominators()
		f.FindLoops()
		return f.EnsurePreheaders() // loop list invalidated; restart
	}
	if inserted {
		if err := f.BuildCFG(); err != nil {
			return err
		}
		f.ComputeDominators()
		f.FindLoops()
	}
	return nil
}

func retarget(t *Ins, from, to string) {
	for i, l := range t.Targets {
		if l == from {
			t.Targets[i] = to
		}
	}
	for i := range t.Cases {
		if t.Cases[i].Target == from {
			t.Cases[i].Target = to
		}
	}
}

func (f *Func) freshLabel(base string) string {
	if f.BlockByLabel(base) == nil {
		return base
	}
	for i := 1; ; i++ {
		l := fmt.Sprintf("%s%d", base, i)
		if f.BlockByLabel(l) == nil {
			return l
		}
	}
}

// Analyze runs the full analysis pipeline: CFG, dominators, loops, and
// preheader insertion.
func (f *Func) Analyze() error {
	if err := f.BuildCFG(); err != nil {
		return err
	}
	f.ComputeDominators()
	f.FindLoops()
	return f.EnsurePreheaders()
}
