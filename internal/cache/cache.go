// Package cache simulates the instruction cache organization of paper §8:
// a set-associative cache with LRU replacement in which an assignment to a
// branch register directs the cache to prefetch the line holding the
// branch target. In-flight fills carry a busy bit; a demand fetch that
// arrives while its line is being filled waits only the remaining cycles.
// The simulator also measures the §9 concerns: prefetch traffic that is
// never used and pollution evictions.
package cache

import "fmt"

// Config describes one cache organization.
type Config struct {
	LineWords   int // words per line
	Sets        int // number of sets
	Assoc       int // lines per set
	MissPenalty int // cycles to fill a line from memory
}

// DefaultConfig is the study's base organization: 2-way, 8-word lines,
// 64 sets (4 KB).
var DefaultConfig = Config{LineWords: 8, Sets: 64, Assoc: 2, MissPenalty: 8}

// SizeBytes returns the total capacity.
func (c Config) SizeBytes() int { return c.LineWords * 4 * c.Sets * c.Assoc }

func (c Config) String() string {
	return fmt.Sprintf("%dB/%d-way/%d-word lines", c.SizeBytes(), c.Assoc, c.LineWords)
}

// Stats are the dynamic cache measurements.
type Stats struct {
	Fetches       int64 // demand instruction fetches
	Hits          int64
	Misses        int64 // demand misses (full penalty)
	PartialWaits  int64 // demand fetches that caught an in-flight prefetch
	DelayCycles   int64 // total cycles demand fetches waited
	Prefetches    int64 // prefetch requests issued
	PrefetchDup   int64 // prefetches that hit (line already present/filling)
	PrefetchUsed  int64 // prefetched lines later touched by a demand fetch
	PrefetchWaste int64 // prefetched lines evicted or left untouched
	Pollution     int64 // useful lines evicted by prefetched lines
}

// HitRate returns demand hit ratio.
func (s *Stats) HitRate() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Fetches)
}

type line struct {
	tag        int32
	valid      bool
	lastUse    int64
	fillDone   int64 // cycle the fill completes (busy until then)
	prefetched bool  // brought in by a prefetch
	touched    bool  // referenced by a demand fetch since filled
}

// Cache is one simulated instruction cache.
type Cache struct {
	cfg   Config
	sets  [][]line
	now   int64
	Stats Stats
}

// New builds a cache. Sets and Assoc must be powers of two or any positive
// count; LineWords must be positive.
func New(cfg Config) *Cache {
	sets := make([][]line, cfg.Sets)
	for i := range sets {
		sets[i] = make([]line, cfg.Assoc)
	}
	return &Cache{cfg: cfg, sets: sets}
}

func (c *Cache) addrToLine(addr int32) (set int, tag int32) {
	lineAddr := addr / int32(4*c.cfg.LineWords)
	return int(uint32(lineAddr) % uint32(c.cfg.Sets)), lineAddr
}

// find returns the way index holding tag, or -1.
func (c *Cache) find(set int, tag int32) int {
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return i
		}
	}
	return -1
}

// victim picks the LRU way of the set.
func (c *Cache) victim(set int) int {
	v := 0
	for i := range c.sets[set] {
		if !c.sets[set][i].valid {
			return i
		}
		if c.sets[set][i].lastUse < c.sets[set][v].lastUse {
			v = i
		}
	}
	return v
}

// Fetch simulates a demand instruction fetch of addr, advancing time by
// one cycle plus any miss delay. It returns the delay cycles the fetch
// waited.
func (c *Cache) Fetch(addr int32) int64 {
	c.now++
	c.Stats.Fetches++
	set, tag := c.addrToLine(addr)
	if w := c.find(set, tag); w >= 0 {
		l := &c.sets[set][w]
		var delay int64
		if l.fillDone > c.now {
			// Busy bit set: the line is still arriving (paper §8's
			// prefetch-in-progress case).
			delay = l.fillDone - c.now
			c.Stats.PartialWaits++
		} else {
			c.Stats.Hits++
		}
		if l.prefetched && !l.touched {
			c.Stats.PrefetchUsed++
			l.touched = true
		}
		l.lastUse = c.now
		c.now += delay
		c.Stats.DelayCycles += delay
		return delay
	}
	// Demand miss: full penalty.
	c.Stats.Misses++
	delay := int64(c.cfg.MissPenalty)
	c.install(set, tag, false)
	c.now += delay
	c.Stats.DelayCycles += delay
	return delay
}

// Prefetch simulates the side effect of a branch-register assignment: the
// line holding addr is requested from memory if absent. Prefetches do not
// advance time (they overlap execution, paper §8).
func (c *Cache) Prefetch(addr int32) {
	c.Stats.Prefetches++
	set, tag := c.addrToLine(addr)
	if c.find(set, tag) >= 0 {
		c.Stats.PrefetchDup++
		return
	}
	c.install(set, tag, true)
}

// install fills a line, accounting for pollution and wasted prefetches.
func (c *Cache) install(set int, tag int32, prefetched bool) {
	w := c.victim(set)
	l := &c.sets[set][w]
	if l.valid {
		if l.prefetched && !l.touched {
			c.Stats.PrefetchWaste++
		}
		if prefetched && l.touched {
			// A prefetch displaced a line the program had been using.
			c.Stats.Pollution++
		}
	}
	*l = line{
		tag:        tag,
		valid:      true,
		lastUse:    c.now,
		fillDone:   c.now + int64(c.cfg.MissPenalty),
		prefetched: prefetched,
		touched:    false,
	}
	if !prefetched {
		l.touched = true
	}
}

// Flush ends the run: untouched prefetched lines still resident count as
// waste.
func (c *Cache) Flush() {
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && l.prefetched && !l.touched {
				c.Stats.PrefetchWaste++
			}
		}
	}
}
