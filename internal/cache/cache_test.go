package cache

import (
	"testing"
	"testing/quick"
)

func TestConfigSize(t *testing.T) {
	if DefaultConfig.SizeBytes() != 8*4*64*2 {
		t.Errorf("size = %d", DefaultConfig.SizeBytes())
	}
	if DefaultConfig.String() == "" {
		t.Error("empty string")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{LineWords: 4, Sets: 4, Assoc: 1, MissPenalty: 10})
	if d := c.Fetch(0x1000); d != 10 {
		t.Errorf("cold miss delay = %d, want 10", d)
	}
	// Same line after the fill completed (time advanced by the miss).
	if d := c.Fetch(0x1004); d != 0 {
		t.Errorf("hit delay = %d, want 0", d)
	}
	if c.Stats.Misses != 1 || c.Stats.Hits != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestSequentialLocality(t *testing.T) {
	c := New(Config{LineWords: 8, Sets: 16, Assoc: 2, MissPenalty: 8})
	for addr := int32(0x1000); addr < 0x1000+256; addr += 4 {
		c.Fetch(addr)
	}
	// 256 bytes = 8 lines: 8 misses, 56 hits.
	if c.Stats.Misses != 8 {
		t.Errorf("misses = %d, want 8", c.Stats.Misses)
	}
	if c.Stats.Hits != 64-8 {
		t.Errorf("hits = %d, want 56", c.Stats.Hits)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	cfg := Config{LineWords: 4, Sets: 8, Assoc: 2, MissPenalty: 10}
	// Without prefetch: demand miss costs the full penalty.
	plain := New(cfg)
	for i := 0; i < 20; i++ {
		plain.Fetch(int32(0x1000 + 4*i%16))
	}
	d := plain.Fetch(0x2000)
	if d != 10 {
		t.Fatalf("demand miss = %d", d)
	}
	// With a prefetch long before: free.
	pre := New(cfg)
	pre.Prefetch(0x2000)
	for i := 0; i < 20; i++ {
		pre.Fetch(int32(0x1000 + 4*i%16))
	}
	if d := pre.Fetch(0x2000); d != 0 {
		t.Errorf("prefetched fetch delay = %d, want 0", d)
	}
	if pre.Stats.PrefetchUsed != 1 {
		t.Errorf("prefetch not counted used: %+v", pre.Stats)
	}
}

func TestPartialWait(t *testing.T) {
	cfg := Config{LineWords: 4, Sets: 8, Assoc: 2, MissPenalty: 10}
	c := New(cfg)
	c.Prefetch(0x2000)
	// Fetch the line 3 cycles later: must wait the remaining 7.
	c.Fetch(0x1000) // advances time (miss, +1+10)
	// time is now 11; fill completes at 10 -> hit
	if d := c.Fetch(0x2000); d != 0 {
		t.Errorf("after long delay: %d", d)
	}
	// Now an in-flight case: prefetch then immediate fetch.
	c2 := New(cfg)
	c2.Prefetch(0x3000)
	d := c2.Fetch(0x3000) // 1 cycle later; fill needs 10 from issue
	if d <= 0 || d >= 10 {
		t.Errorf("partial wait = %d, want in (0,10)", d)
	}
	if c2.Stats.PartialWaits != 1 {
		t.Errorf("partial wait not counted: %+v", c2.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{LineWords: 4, Sets: 1, Assoc: 2, MissPenalty: 1})
	c.Fetch(0x1000) // line A
	c.Fetch(0x1010) // line B
	c.Fetch(0x1000) // touch A (A more recent than B)
	c.Fetch(0x1020) // line C evicts B
	if d := c.Fetch(0x1000); d != 0 {
		t.Error("A should still be resident")
	}
	if d := c.Fetch(0x1010); d == 0 {
		t.Error("B should have been evicted")
	}
}

func TestPollutionAccounting(t *testing.T) {
	c := New(Config{LineWords: 4, Sets: 1, Assoc: 1, MissPenalty: 1})
	c.Fetch(0x1000)    // used line
	c.Prefetch(0x2000) // evicts the used line: pollution
	if c.Stats.Pollution != 1 {
		t.Errorf("pollution = %d, want 1", c.Stats.Pollution)
	}
	c.Prefetch(0x3000) // evicts the unused prefetched line: waste
	if c.Stats.PrefetchWaste != 1 {
		t.Errorf("waste = %d, want 1", c.Stats.PrefetchWaste)
	}
	c.Flush() // the remaining untouched prefetched line is waste too
	if c.Stats.PrefetchWaste != 2 {
		t.Errorf("waste after flush = %d, want 2", c.Stats.PrefetchWaste)
	}
}

func TestPrefetchDup(t *testing.T) {
	c := New(Config{LineWords: 4, Sets: 4, Assoc: 2, MissPenalty: 5})
	c.Prefetch(0x1000)
	c.Prefetch(0x1004) // same line
	if c.Stats.PrefetchDup != 1 {
		t.Errorf("dup = %d", c.Stats.PrefetchDup)
	}
}

func TestHitRate(t *testing.T) {
	c := New(DefaultConfig)
	if c.Stats.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
	for i := 0; i < 100; i++ {
		c.Fetch(0x1000)
	}
	if hr := c.Stats.HitRate(); hr < 0.98 {
		t.Errorf("hit rate = %f", hr)
	}
}

// Property: hits + misses + partial waits == fetches, and delay cycles are
// nonnegative and bounded by fetches*penalty.
func TestAccountingInvariant(t *testing.T) {
	f := func(addrs []uint16, pre []uint16) bool {
		c := New(Config{LineWords: 4, Sets: 8, Assoc: 2, MissPenalty: 6})
		for i, a := range addrs {
			if i%3 == 0 && len(pre) > 0 {
				c.Prefetch(int32(pre[i%len(pre)]) * 4)
			}
			c.Fetch(int32(a) * 4)
		}
		s := c.Stats
		if s.Hits+s.Misses+s.PartialWaits != s.Fetches {
			return false
		}
		if s.DelayCycles < 0 || s.DelayCycles > s.Fetches*6 {
			return false
		}
		return s.PrefetchDup <= s.Prefetches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
