package codegen

import (
	"strings"
	"testing"

	"branchreg/internal/ir"
	"branchreg/internal/irgen"
	"branchreg/internal/isa"
	"branchreg/internal/mc"
	"branchreg/internal/opt"
)

func lowerMC(t *testing.T, src string) *ir.Unit {
	t.Helper()
	u, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	iu, err := irgen.Lower(u)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.RunUnit(iu, opt.Default); err != nil {
		t.Fatal(err)
	}
	return iu
}

func TestMachineConfigs(t *testing.T) {
	b := BaselineMachine()
	if b.NumIntRegs != 32 || b.NumFloatRegs != 32 {
		t.Error("baseline register counts wrong")
	}
	m := BRMMachine()
	if m.NumIntRegs != 16 || m.NumFloatRegs != 16 {
		t.Error("BRM register counts wrong (paper: 16 data, 16 FP)")
	}
	// Pools must not contain reserved registers.
	for _, r := range append(b.CallerInt, b.CalleeInt...) {
		if r == b.ZeroReg || r == b.SPReg || r == b.TmpReg || r == b.Tmp2Reg || r == b.RAReg {
			t.Errorf("baseline pool contains reserved r%d", r)
		}
		if r >= b.Arg0 && r < b.Arg0+b.NumArgs {
			t.Errorf("baseline pool contains argument register r%d", r)
		}
	}
	for _, r := range append(m.CallerInt, m.CalleeInt...) {
		if r == m.ZeroReg || r == m.SPReg || r == m.TmpReg || r == m.Tmp2Reg {
			t.Errorf("BRM pool contains reserved r%d", r)
		}
		if r >= m.NumIntRegs {
			t.Errorf("BRM pool register r%d out of range", r)
		}
	}
	// Callee-saved classification must match the pools.
	for _, r := range m.CalleeInt {
		if !m.CalleeSavedInt(r) {
			t.Errorf("r%d in BRM callee pool but not callee-saved", r)
		}
	}
	for _, r := range m.CallerInt {
		if m.CalleeSavedInt(r) {
			t.Errorf("r%d in BRM caller pool but callee-saved", r)
		}
	}
	if !b.FitsALUImm(16383) || b.FitsALUImm(16384) {
		t.Error("baseline ALU imm range wrong (15 bits)")
	}
	if !m.FitsALUImm(2047) || m.FitsALUImm(2048) {
		t.Error("BRM ALU imm range wrong (12 bits)")
	}
}

func TestAllocateSimple(t *testing.T) {
	iu := lowerMC(t, `int main(void) { int a = 1, b = 2; return a + b; }`)
	m := BaselineMachine()
	a := Allocate(&m, iu.Funcs[0])
	if a.IntSpills != 0 {
		t.Errorf("tiny function spilled %d", a.IntSpills)
	}
	if len(a.UsedInt) == 0 {
		t.Error("no registers used")
	}
}

func TestAllocateCallCrossing(t *testing.T) {
	iu := lowerMC(t, `
int id(int x) { return x; }
int main(void) {
    int a = id(1);
    int b = id(2);   // a is live across this call
    return a + b;
}`)
	m := BaselineMachine()
	f := iu.Funcs[1]
	if f.Name != "main" {
		t.Fatalf("unexpected order: %s", f.Name)
	}
	a := Allocate(&m, f)
	// Find the vreg holding id(1)'s result: it must be in a callee-saved
	// register or spilled, never caller-saved.
	for v := 0; v < f.NumInt; v++ {
		loc := a.Int[v]
		if loc.Spill {
			continue
		}
		crossing := vregCrossesCall(f, ir.Reg(v))
		if crossing && !m.CalleeSavedInt(loc.Reg) {
			t.Errorf("v%d live across a call allocated to caller-saved r%d", v, loc.Reg)
		}
	}
}

// vregCrossesCall reports whether v is live across any non-builtin call.
func vregCrossesCall(f *ir.Func, v ir.Reg) bool {
	pos := 0
	var defs, uses []int
	var calls []int
	for _, b := range f.Blocks {
		for i := range b.Ins {
			in := &b.Ins[i]
			if in.Kind == ir.OpCall && !in.Builtin {
				calls = append(calls, pos)
			}
			var is, fs []ir.Reg
			is, _ = in.Uses(is, fs)
			for _, r := range is {
				if r == v {
					uses = append(uses, pos)
				}
			}
			if di, _ := in.Defs(); di == v {
				defs = append(defs, pos)
			}
			pos++
		}
	}
	if len(defs) == 0 || len(uses) == 0 {
		return false
	}
	lo, hi := defs[0], uses[len(uses)-1]
	for _, c := range calls {
		if lo < c && c < hi {
			return true
		}
	}
	return false
}

func TestAllocateSpillsUnderPressure(t *testing.T) {
	// More than 16 simultaneously-live values force spills on the BRM.
	var sb strings.Builder
	sb.WriteString("int f(void) {\n")
	for i := 0; i < 24; i++ {
		// Derive each value from input so constant folding cannot
		// eliminate the registers.
		sb.WriteString(strings.ReplaceAll("int vN = getchar() + N;\n", "N", itoa(i)))
	}
	sb.WriteString("int s = 0;\n")
	for i := 0; i < 24; i++ {
		sb.WriteString("s += v" + itoa(i) + ";\n")
	}
	for i := 0; i < 24; i++ {
		sb.WriteString("s += v" + itoa(i) + " * 2;\n")
	}
	sb.WriteString("return s; }\nint main(void) { return f(); }\n")
	iu := lowerMC(t, sb.String())
	m := BRMMachine()
	a := Allocate(&m, iu.Funcs[0])
	if a.IntSpills == 0 {
		t.Error("expected spills under register pressure on the 16-register BRM")
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func TestFrameLayout(t *testing.T) {
	iu := lowerMC(t, `
int g(int *p) { return *p; }
int main(void) {
    int arr[100];
    arr[0] = 1;
    return g(arr);
}`)
	m := BaselineMachine()
	var f *ir.Func
	for _, fn := range iu.Funcs {
		if fn.Name == "main" {
			f = fn
		}
	}
	g := NewGen(&m, f)
	g.ReserveSave("ra")
	g.Layout()
	fr := g.Frame
	if fr.Size%8 != 0 {
		t.Errorf("frame size %d not 8-aligned", fr.Size)
	}
	if _, ok := fr.SaveOff["ra"]; !ok {
		t.Error("ra slot missing")
	}
	if len(fr.LocalOff) != 1 {
		t.Fatalf("local slots = %d", len(fr.LocalOff))
	}
	if fr.LocalOff[0]+400 > fr.Size {
		t.Errorf("array slot overflows frame: off %d size %d", fr.LocalOff[0], fr.Size)
	}
	// The save area must stay within the small-immediate range even though
	// the local array is large (saves are laid out before locals).
	if fr.SaveOff["ra"] > 2047 {
		t.Errorf("ra save offset %d exceeds the small immediate range", fr.SaveOff["ra"])
	}
}

func TestGenBaselineWholeProgram(t *testing.T) {
	iu := lowerMC(t, `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) { return fib(8); }`)
	p, err := GenBaseline(iu)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Linked || len(p.Text) == 0 {
		t.Fatal("program not linked")
	}
	// Every emitted instruction must encode in 32 bits.
	for i, in := range p.Text {
		if _, err := isa.Encode(in, isa.Baseline); err != nil {
			t.Fatalf("instruction %d (%s) does not encode: %v", i, in.RTL(isa.Baseline), err)
		}
	}
	// Delayed branches: every branch is followed by exactly one slot
	// instruction that is not itself a branch.
	for i, in := range p.Text {
		if in.Op.IsBaselineBranch() {
			if i+1 >= len(p.Text) {
				t.Fatal("branch at end of text")
			}
			if p.Text[i+1].Op.IsBaselineBranch() {
				t.Errorf("branch at %d followed by branch (no delay slot)", i)
			}
		}
	}
}

func TestDelaySlotFilling(t *testing.T) {
	iu := lowerMC(t, `
int main(void) {
    int s = 0;
    for (int i = 0; i < 10; i++) s += i;
    return s;
}`)
	p, err := GenBaseline(iu)
	if err != nil {
		t.Fatal(err)
	}
	filled, noops := 0, 0
	for i, in := range p.Text {
		if i > 0 && p.Text[i-1].Op.IsBaselineBranch() {
			if in.Op == isa.OpNop {
				noops++
			} else {
				filled++
			}
		}
	}
	if filled == 0 {
		t.Errorf("no delay slots filled (noops: %d)", noops)
	}
}

func TestSwitchPlanning(t *testing.T) {
	iu := lowerMC(t, `
int f(int x) {
    switch (x) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 3;
    case 3: return 4;
    default: return 0;
    }
}
int g(int x) {
    switch (x) {
    case 1: return 1;
    case 1000: return 2;
    default: return 0;
    }
}
int main(void) { return f(2) + g(1); }`)
	m := BaselineMachine()
	for _, fn := range iu.Funcs {
		gen := NewGen(&m, fn)
		gen.Layout()
		for _, b := range fn.Blocks {
			tm := b.Term()
			if tm == nil || tm.Kind != ir.OpSwitch {
				continue
			}
			plan := gen.PlanSwitch(tm)
			switch fn.Name {
			case "f":
				if !plan.Dense {
					t.Error("dense switch not planned as a table")
				}
				if len(gen.Data) == 0 {
					t.Error("no jump table emitted")
				}
			case "g":
				if plan.Dense {
					t.Error("sparse switch planned as a table")
				}
			}
		}
	}
}

func TestMaterializeImm(t *testing.T) {
	iu := lowerMC(t, `int main(void) { return 0; }`)
	m := BRMMachine()
	g := NewGen(&m, iu.Funcs[0])
	g.Layout()
	// Small immediate: single instruction.
	g.Buf = nil
	g.MaterializeImm(5, 100)
	if len(g.Buf) != 1 {
		t.Errorf("small imm took %d instructions", len(g.Buf))
	}
	// Large immediate: sethi + add.
	g.Buf = nil
	g.MaterializeImm(5, 0x123456)
	if len(g.Buf) != 2 {
		t.Errorf("large imm took %d instructions", len(g.Buf))
	}
	for _, in := range g.Buf {
		if _, err := isa.Encode(in, isa.BranchReg); err != nil {
			t.Errorf("materialized instruction does not encode: %v", err)
		}
	}
}

func TestConvertDatum(t *testing.T) {
	d := ConvertDatum(ir.Datum{Label: "x", Kind: ir.DWords, Words: []int32{1, 2},
		Relocs: []ir.Reloc{{WordIndex: 1, Sym: "s"}}})
	if d.Kind != isa.DataWords || len(d.Relocs) != 1 {
		t.Errorf("words conversion wrong: %+v", d)
	}
	if ConvertDatum(ir.Datum{Kind: ir.DBytes, Bytes: []byte("ab")}).Kind != isa.DataBytes {
		t.Error("bytes conversion wrong")
	}
	if ConvertDatum(ir.Datum{Kind: ir.DFloats, Floats: []float64{1}}).Kind != isa.DataFloat {
		t.Error("floats conversion wrong")
	}
	if ConvertDatum(ir.Datum{Kind: ir.DZero, Size: 9}).Size != 9 {
		t.Error("zero conversion wrong")
	}
}
