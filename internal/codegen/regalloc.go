package codegen

import (
	"sort"

	"branchreg/internal/ir"
)

// Loc is where a virtual register lives after allocation.
type Loc struct {
	Reg   int // machine register when Spill is false
	Spill bool
	Slot  int // spill slot index when Spill is true
}

// Allocation is the result of register allocation for one function.
type Allocation struct {
	Int       []Loc        // indexed by integer vreg
	Float     []Loc        // indexed by float vreg
	IntSpills int          // number of 4-byte integer spill slots
	FltSpills int          // number of 8-byte float spill slots
	UsedInt   map[int]bool // machine registers assigned to some vreg
	UsedFloat map[int]bool
}

type interval struct {
	vreg       ir.Reg
	float      bool
	start, end int
	crossCall  bool
}

// Allocate runs a linear-scan register allocation over f for machine m.
// Intervals that are live across a call may only take callee-saved
// registers; everything else prefers caller-saved. Unassignable intervals
// spill to dedicated frame slots.
func Allocate(m *Machine, f *ir.Func) *Allocation {
	// Linearize: assign positions to instructions in block layout order.
	blockStart := make([]int, len(f.Blocks))
	blockEnd := make([]int, len(f.Blocks))
	pos := 0
	var callPos []int
	for i, b := range f.Blocks {
		blockStart[i] = pos
		for j := range b.Ins {
			// Builtin calls lower to traps that preserve all registers
			// except r1/f1, which are never allocatable, so they do not
			// constrain allocation.
			if b.Ins[j].Kind == ir.OpCall && !b.Ins[j].Builtin {
				callPos = append(callPos, pos)
			}
			pos++
		}
		blockEnd[i] = pos - 1
	}

	intLive, fltLive := f.ComputeLiveness()

	intIv := make([]*interval, f.NumInt)
	fltIv := make([]*interval, f.NumFloat)
	touchInt := func(v ir.Reg, p int) {
		if v == ir.None {
			return
		}
		iv := intIv[v]
		if iv == nil {
			iv = &interval{vreg: v, start: p, end: p}
			intIv[v] = iv
			return
		}
		if p < iv.start {
			iv.start = p
		}
		if p > iv.end {
			iv.end = p
		}
	}
	touchFlt := func(v ir.Reg, p int) {
		if v == ir.None {
			return
		}
		iv := fltIv[v]
		if iv == nil {
			iv = &interval{vreg: v, float: true, start: p, end: p}
			fltIv[v] = iv
			return
		}
		if p < iv.start {
			iv.start = p
		}
		if p > iv.end {
			iv.end = p
		}
	}

	// Parameters are defined at position -1 (function entry).
	for _, p := range f.Params {
		if p.Float {
			touchFlt(p.R, 0)
		} else {
			touchInt(p.R, 0)
		}
	}

	pos = 0
	var ibuf, fbuf []ir.Reg
	for bi, b := range f.Blocks {
		// Extend intervals of live-in/live-out vregs over the whole block.
		for v := 0; v < f.NumInt; v++ {
			if intLive.In[bi].Has(ir.Reg(v)) {
				touchInt(ir.Reg(v), blockStart[bi])
			}
			if intLive.Out[bi].Has(ir.Reg(v)) {
				touchInt(ir.Reg(v), blockEnd[bi])
			}
		}
		for v := 0; v < f.NumFloat; v++ {
			if fltLive.In[bi].Has(ir.Reg(v)) {
				touchFlt(ir.Reg(v), blockStart[bi])
			}
			if fltLive.Out[bi].Has(ir.Reg(v)) {
				touchFlt(ir.Reg(v), blockEnd[bi])
			}
		}
		for j := range b.Ins {
			in := &b.Ins[j]
			ibuf, fbuf = in.Uses(ibuf[:0], fbuf[:0])
			for _, r := range ibuf {
				touchInt(r, pos)
			}
			for _, r := range fbuf {
				touchFlt(r, pos)
			}
			di, df := in.Defs()
			touchInt(di, pos)
			touchFlt(df, pos)
			pos++
		}
	}

	// Mark call-crossing intervals.
	mark := func(iv *interval) {
		if iv == nil {
			return
		}
		for _, cp := range callPos {
			if iv.start < cp && cp < iv.end {
				iv.crossCall = true
				return
			}
		}
	}
	for _, iv := range intIv {
		mark(iv)
	}
	for _, iv := range fltIv {
		mark(iv)
	}

	a := &Allocation{
		Int:       make([]Loc, f.NumInt),
		Float:     make([]Loc, f.NumFloat),
		UsedInt:   map[int]bool{},
		UsedFloat: map[int]bool{},
	}
	a.IntSpills = scan(collect(intIv), m.CallerInt, m.CalleeInt, a.Int, a.UsedInt)
	a.FltSpills = scan(collect(fltIv), m.CallerFloat, m.CalleeFloat, a.Float, a.UsedFloat)
	return a
}

func collect(ivs []*interval) []*interval {
	var out []*interval
	for _, iv := range ivs {
		if iv != nil {
			out = append(out, iv)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].vreg < out[j].vreg
	})
	return out
}

// scan performs the linear scan over one register class, writing results
// into locs and returning the number of spill slots used.
func scan(ivs []*interval, caller, callee []int, locs []Loc, used map[int]bool) int {
	type active struct {
		iv  *interval
		reg int
	}
	var act []active
	free := map[int]bool{}
	isCallee := map[int]bool{}
	for _, r := range caller {
		free[r] = true
	}
	for _, r := range callee {
		free[r] = true
		isCallee[r] = true
	}
	spills := 0
	for _, iv := range ivs {
		// Expire finished intervals.
		kept := act[:0]
		for _, a := range act {
			if a.iv.end < iv.start {
				free[a.reg] = true
			} else {
				kept = append(kept, a)
			}
		}
		act = kept
		// Pick a register.
		reg := -1
		if iv.crossCall {
			reg = pick(free, callee)
		} else {
			reg = pick(free, caller)
			if reg < 0 {
				reg = pick(free, callee)
			}
		}
		if reg < 0 {
			// Spill heuristic: if some active interval compatible with this
			// one ends much later, spill it instead.
			victim := -1
			for i, a := range act {
				if a.iv.end > iv.end && (!iv.crossCall || isCallee[a.reg]) {
					if victim < 0 || a.iv.end > act[victim].iv.end {
						victim = i
					}
				}
			}
			if victim >= 0 {
				v := act[victim]
				locs[v.iv.vreg] = Loc{Spill: true, Slot: spills}
				spills++
				reg = v.reg
				act = append(act[:victim], act[victim+1:]...)
			} else {
				locs[iv.vreg] = Loc{Spill: true, Slot: spills}
				spills++
				continue
			}
		}
		free[reg] = false
		used[reg] = true
		locs[iv.vreg] = Loc{Reg: reg}
		act = append(act, active{iv: iv, reg: reg})
	}
	return spills
}

func pick(free map[int]bool, order []int) int {
	for _, r := range order {
		if free[r] {
			return r
		}
	}
	return -1
}
