// Package codegen holds the machinery shared by the two code generators:
// machine descriptions, the linear-scan register allocator, stack-frame
// layout, and the lowering of machine-independent IR operations to
// instructions. The baseline machine's full code generator (including
// delayed-branch slot filling) also lives here; the branch-register
// machine's code generator — the paper's contribution — lives in
// internal/core and builds on this package.
package codegen

import "branchreg/internal/isa"

// Machine describes the register conventions of one target.
type Machine struct {
	Kind isa.Kind

	NumIntRegs   int
	NumFloatRegs int

	ZeroReg int // hardwired zero
	SPReg   int // stack pointer
	TmpReg  int // scratch for spills / address materialization
	Tmp2Reg int // second scratch
	RAReg   int // baseline: link register written by call (-1 on BRM)

	RetReg  int // integer return value / first argument
	Arg0    int
	NumArgs int

	FRetReg  int
	FArg0    int
	FNumArgs int
	FTmpReg  int
	FTmp2Reg int

	// Allocatable pools, caller-saved first preference for call-free
	// intervals, callee-saved for intervals crossing calls.
	CallerInt   []int
	CalleeInt   []int
	CallerFloat []int
	CalleeFloat []int

	ALUImmBits uint // signed immediate width of ALU/memory instructions
	CmpImmBits uint // signed immediate width of compares
	SetImmBits uint // signed immediate width of set (slt-family) instructions
}

// BaselineMachine returns the register model of the paper's baseline RISC:
// 32 data registers, 32 FP registers, delayed branches (paper §7).
func BaselineMachine() Machine {
	return Machine{
		Kind:         isa.Baseline,
		NumIntRegs:   isa.BaselineDataRegs,
		NumFloatRegs: isa.BaselineFloatRegs,
		ZeroReg:      isa.ZeroReg,
		SPReg:        30,
		TmpReg:       31,
		Tmp2Reg:      13,
		RAReg:        isa.RABase, // r12
		RetReg:       1,
		Arg0:         1,
		NumArgs:      isa.BaseNumArgs, // r1..r6
		FRetReg:      1,
		FArg0:        1,
		FNumArgs:     4, // f1..f4
		FTmpReg:      0,
		FTmp2Reg:     15,
		CallerInt:    []int{7, 8, 9, 10, 11},
		CalleeInt:    rangeInts(14, 29),
		CallerFloat:  []int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14},
		CalleeFloat:  rangeInts(16, 31),
		ALUImmBits:   isa.ALUImmBits(isa.Baseline),
		CmpImmBits:   isa.CmpImmBits(isa.Baseline),
		SetImmBits:   11,
	}
}

// BRMMachine returns the register model of the branch-register machine:
// only 16 data registers and 16 FP registers, the other 16 encodings'
// worth of state spent on branch and instruction registers (paper §7).
func BRMMachine() Machine {
	return Machine{
		Kind:         isa.BranchReg,
		NumIntRegs:   isa.BRMDataRegs,
		NumFloatRegs: isa.BRMFloatRegs,
		ZeroReg:      isa.ZeroReg,
		SPReg:        isa.BRMSPReg,  // r14
		TmpReg:       isa.BRMTmpReg, // r15
		Tmp2Reg:      13,
		RAReg:        -1,
		RetReg:       1,
		Arg0:         1,
		NumArgs:      isa.BRMNumArgs, // r1..r4
		FRetReg:      1,
		FArg0:        1,
		FNumArgs:     3, // f1..f3
		FTmpReg:      0,
		FTmp2Reg:     7,
		CallerInt:    []int{5},
		CalleeInt:    rangeInts(6, 12),
		CallerFloat:  []int{4, 5, 6},
		CalleeFloat:  rangeInts(8, 15),
		ALUImmBits:   isa.ALUImmBits(isa.BranchReg),
		CmpImmBits:   isa.CmpImmBits(isa.BranchReg),
		SetImmBits:   10,
	}
}

func rangeInts(lo, hi int) []int {
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

// CalleeSavedInt reports whether r must be preserved across calls.
func (m *Machine) CalleeSavedInt(r int) bool {
	if m.Kind == isa.Baseline {
		return isa.CalleeSavedBase(r)
	}
	return isa.CalleeSavedBRM(r)
}

// CalleeSavedFloat reports whether f must be preserved across calls.
func (m *Machine) CalleeSavedFloat(f int) bool {
	if m.Kind == isa.Baseline {
		return isa.CalleeSavedFloatBase(f)
	}
	return isa.CalleeSavedFloatBRM(f)
}

// FitsALUImm reports whether v fits this machine's ALU immediate field.
func (m *Machine) FitsALUImm(v int64) bool {
	return v >= -(1<<(m.ALUImmBits-1)) && v < 1<<(m.ALUImmBits-1)
}

// FitsCmpImm reports whether v fits this machine's compare immediate field.
func (m *Machine) FitsCmpImm(v int64) bool {
	return v >= -(1<<(m.CmpImmBits-1)) && v < 1<<(m.CmpImmBits-1)
}
