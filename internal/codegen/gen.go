package codegen

import (
	"fmt"

	"branchreg/internal/ir"
	"branchreg/internal/isa"
)

// Frame describes a function's stack frame. Layout, from the stack pointer
// upward after the prologue's adjustment:
//
//	[0, outArgs)            outgoing stack-argument overflow area
//	[outArgs, spills)       integer + float spill slots
//	[spills, locals)        IR stack slots (arrays, address-taken scalars)
//	[locals, saves)         callee-saved register saves, RA save, BR saves
//	size                    total, 8-aligned
//
// Incoming stack arguments live at [size + 4*j].
type Frame struct {
	Size       int32
	OutArgBase int32
	IntSpill   int32 // base of integer spill slots
	FltSpill   int32
	LocalOff   []int32          // per IR slot
	SaveBase   int32            // base of the save area
	SaveOff    map[string]int32 // named save slots ("ra", "r14", "f16", "b4", ...)
}

// Gen is the shared code-generation context for one function.
type Gen struct {
	M     *Machine
	F     *ir.Func
	Alloc *Allocation
	Frame *Frame
	Buf   []isa.Instr // current emission buffer
	Data  []*isa.DataItem
	ntab  int

	// savedInt/savedFloat: callee-saved machine registers the allocator
	// used, in save order. Extra named saves (RA, branch registers) are
	// requested before Layout.
	savedInt   []int
	savedFloat []int
	extraSaves []string

	HasCalls bool
	MaxOut   int // max outgoing stack args (beyond register args)
}

// NewGen allocates registers for f and prepares a generation context.
// Callers may request extra named save slots (RA, branch registers) with
// ReserveSave before calling Layout.
func NewGen(m *Machine, f *ir.Func) *Gen {
	g := &Gen{M: m, F: f, Alloc: Allocate(m, f)}
	for _, b := range f.Blocks {
		for i := range b.Ins {
			in := &b.Ins[i]
			if in.Kind == ir.OpCall {
				if !in.Builtin {
					g.HasCalls = true
				}
				ni, nf := 0, 0
				for _, a := range in.Args {
					if a.Float {
						nf++
					} else {
						ni++
					}
				}
				// Every overflow argument gets an 8-byte stack slot so
				// float alignment is uniform.
				out := 0
				if ni > m.NumArgs {
					out += 2 * (ni - m.NumArgs)
				}
				if nf > m.FNumArgs {
					out += 2 * (nf - m.FNumArgs)
				}
				if out > g.MaxOut {
					g.MaxOut = out
				}
			}
		}
	}
	return g
}

// ReserveSave requests a named 4-byte slot in the save area ("ra", "b4",
// "b5", "b6" — integer-register-sized values moved via the temp register).
func (g *Gen) ReserveSave(name string) {
	g.extraSaves = append(g.extraSaves, name)
}

// Layout finalizes the frame. Must be called once, after ReserveSave calls
// and before emitting code. The save and spill areas sit near the stack
// pointer so their offsets stay within the machines' small immediate
// fields; large local arrays go last (their addresses are materialized
// with AddImm, which handles any offset).
func (g *Gen) Layout() {
	fr := &Frame{SaveOff: map[string]int32{}}
	off := int32(0)
	fr.OutArgBase = 0
	off += int32(4 * g.MaxOut)
	// Save area: callee-saved registers used by the allocator plus named
	// extra slots (RA, branch registers).
	off = align(off, 4)
	fr.SaveBase = off
	for r := range g.Alloc.UsedInt {
		if g.M.CalleeSavedInt(r) {
			g.savedInt = append(g.savedInt, r)
		}
	}
	sortInts(g.savedInt)
	for r := range g.Alloc.UsedFloat {
		if g.M.CalleeSavedFloat(r) {
			g.savedFloat = append(g.savedFloat, r)
		}
	}
	sortInts(g.savedFloat)
	for _, r := range g.savedInt {
		fr.SaveOff[fmt.Sprintf("r%d", r)] = off
		off += 4
	}
	for _, name := range g.extraSaves {
		fr.SaveOff[name] = off
		off += 4
	}
	off = align(off, 8)
	for _, r := range g.savedFloat {
		fr.SaveOff[fmt.Sprintf("f%d", r)] = off
		off += 8
	}
	// Spill slots.
	fr.FltSpill = off
	off += int32(8 * g.Alloc.FltSpills)
	fr.IntSpill = off
	off += int32(4 * g.Alloc.IntSpills)
	// IR slots (arrays, address-taken scalars).
	fr.LocalOff = make([]int32, len(g.F.Slots))
	for i, s := range g.F.Slots {
		al := s.Align
		if al == 0 {
			al = 4
		}
		off = align(off, al)
		fr.LocalOff[i] = off
		off += s.Size
	}
	fr.Size = align(off, 8)
	g.Frame = fr
}

// EmitSPMem emits an SP-relative memory access, routing oversized offsets
// through the scratch register.
func (g *Gen) EmitSPMem(op isa.Op, rd int, off int32, comment string) {
	base, o := g.memRef(g.M.SPReg, off)
	g.Emit(isa.Instr{Op: op, Rd: rd, Rs1: base, UseImm: true, Imm: o, Comment: comment})
}

func align(v, n int32) int32 {
	if r := v % n; r != 0 {
		return v + n - r
	}
	return v
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Emit appends an instruction to the current buffer.
func (g *Gen) Emit(in isa.Instr) {
	g.Buf = append(g.Buf, in)
}

// TakeBuf returns and resets the emission buffer.
func (g *Gen) TakeBuf() []isa.Instr {
	b := g.Buf
	g.Buf = nil
	return b
}

// ---- operand access ----

// UseInt returns a machine register currently holding integer vreg v,
// loading from the spill slot into tmp when spilled. tmp selects which
// scratch register to use (0 or 1).
func (g *Gen) UseInt(v ir.Reg, tmp int) int {
	loc := g.Alloc.Int[v]
	if !loc.Spill {
		return loc.Reg
	}
	r := g.M.TmpReg
	if tmp == 1 {
		r = g.M.Tmp2Reg
	}
	g.EmitSPMem(isa.OpLw, r, g.Frame.IntSpill+int32(4*loc.Slot), "reload spill")
	return r
}

// DefInt returns the register to compute integer vreg v into; the returned
// flush function must be called after the computation (it stores spilled
// destinations).
func (g *Gen) DefInt(v ir.Reg) (int, func()) {
	loc := g.Alloc.Int[v]
	if !loc.Spill {
		return loc.Reg, func() {}
	}
	r := g.M.TmpReg
	off := g.Frame.IntSpill + int32(4*loc.Slot)
	return r, func() {
		g.EmitSPMem(isa.OpSw, r, off, "spill")
	}
}

// UseFloat mirrors UseInt for float vregs.
func (g *Gen) UseFloat(v ir.Reg, tmp int) int {
	loc := g.Alloc.Float[v]
	if !loc.Spill {
		return loc.Reg
	}
	r := g.M.FTmpReg
	if tmp == 1 {
		r = g.M.FTmp2Reg
	}
	g.EmitSPMem(isa.OpLf, r, g.Frame.FltSpill+int32(8*loc.Slot), "reload spill")
	return r
}

// DefFloat mirrors DefInt for float vregs.
func (g *Gen) DefFloat(v ir.Reg) (int, func()) {
	loc := g.Alloc.Float[v]
	if !loc.Spill {
		return loc.Reg, func() {}
	}
	r := g.M.FTmpReg
	off := g.Frame.FltSpill + int32(8*loc.Slot)
	return r, func() {
		g.EmitSPMem(isa.OpSf, r, off, "spill")
	}
}

// MaterializeImm puts a 32-bit constant into machine register rd.
func (g *Gen) MaterializeImm(rd int, v int32) {
	if g.M.FitsALUImm(int64(v)) {
		g.Emit(isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: g.M.ZeroReg, UseImm: true, Imm: v})
		return
	}
	hi, lo := isa.SplitAddr(v)
	g.Emit(isa.Instr{Op: isa.OpSethi, Rd: rd, UseImm: true, Imm: hi})
	if lo != 0 {
		g.Emit(isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: rd, UseImm: true, Imm: lo})
	}
}

// MaterializeAddr puts the address of data symbol sym (+off) into rd using
// the two-instruction sethi/add-low sequence (paper §4).
func (g *Gen) MaterializeAddr(rd int, sym string, off int32) {
	g.Emit(isa.Instr{Op: isa.OpSethi, Rd: rd, DataTarget: sym, Comment: "hi(" + sym + ")"})
	g.Emit(isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: rd, DataTarget: sym, Lo: true,
		Comment: "lo(" + sym + ")"})
	if off != 0 {
		g.Emit(isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: rd, UseImm: true, Imm: off})
	}
}

// AddImm emits rd = rs + imm, materializing oversized immediates through
// the second scratch register.
func (g *Gen) AddImm(rd, rs int, imm int32) {
	if imm == 0 && rd == rs {
		return
	}
	if g.M.FitsALUImm(int64(imm)) {
		g.Emit(isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: rs, UseImm: true, Imm: imm})
		return
	}
	g.MaterializeImm(g.M.Tmp2Reg, imm)
	g.Emit(isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: rs, Rs2: g.M.Tmp2Reg})
}

// memRef prepares a base register and small offset for a memory operand at
// machine address (base + off).
func (g *Gen) memRef(base int, off int32) (int, int32) {
	if g.M.FitsALUImm(int64(off)) {
		return base, off
	}
	g.MaterializeImm(g.M.Tmp2Reg, off)
	g.Emit(isa.Instr{Op: isa.OpAdd, Rd: g.M.Tmp2Reg, Rs1: base, Rs2: g.M.Tmp2Reg})
	return g.M.Tmp2Reg, 0
}

var aluOp = map[ir.OpKind]isa.Op{
	ir.OpAdd: isa.OpAdd, ir.OpSub: isa.OpSub, ir.OpMul: isa.OpMul,
	ir.OpDiv: isa.OpDiv, ir.OpRem: isa.OpRem, ir.OpAnd: isa.OpAnd,
	ir.OpOr: isa.OpOr, ir.OpXor: isa.OpXor, ir.OpSll: isa.OpSll,
	ir.OpSrl: isa.OpSrl, ir.OpSra: isa.OpSra,
}

var fpOp = map[ir.OpKind]isa.Op{
	ir.OpFAdd: isa.OpFadd, ir.OpFSub: isa.OpFsub,
	ir.OpFMul: isa.OpFmul, ir.OpFDiv: isa.OpFdiv,
}

// CondOf converts an IR condition to an ISA condition.
func CondOf(c ir.Cond) isa.Cond {
	switch c {
	case ir.CondEQ:
		return isa.CondEQ
	case ir.CondNE:
		return isa.CondNE
	case ir.CondLT:
		return isa.CondLT
	case ir.CondLE:
		return isa.CondLE
	case ir.CondGT:
		return isa.CondGT
	case ir.CondGE:
		return isa.CondGE
	}
	return isa.CondNone
}

// LowerIns lowers one non-terminator, non-call IR instruction into the
// current buffer. Terminators and calls are machine-specific and handled by
// the drivers.
func (g *Gen) LowerIns(in *ir.Ins) error {
	switch in.Kind {
	case ir.OpConst:
		rd, fl := g.DefInt(in.Dst)
		g.MaterializeImm(rd, int32(in.Imm))
		fl()
	case ir.OpConstF:
		rd, fl := g.DefFloat(in.FDst)
		// Float constants live in the data segment.
		lbl := g.floatConstLabel(in.FImm)
		g.MaterializeAddr(g.M.Tmp2Reg, lbl, 0)
		g.Emit(isa.Instr{Op: isa.OpLf, Rd: rd, Rs1: g.M.Tmp2Reg, UseImm: true, Imm: 0})
		fl()
	case ir.OpAddr:
		rd, fl := g.DefInt(in.Dst)
		g.MaterializeAddr(rd, in.Sym, in.Off)
		fl()
	case ir.OpSlotAddr:
		rd, fl := g.DefInt(in.Dst)
		g.AddImm(rd, g.M.SPReg, g.Frame.LocalOff[in.Slot]+in.Off)
		fl()
	case ir.OpMov:
		rs := g.UseInt(in.A, 0)
		rd, fl := g.DefInt(in.Dst)
		if rd != rs {
			g.Emit(isa.Instr{Op: isa.OpOr, Rd: rd, Rs1: rs, UseImm: true, Imm: 0})
		}
		fl()
	case ir.OpMovF:
		rs := g.UseFloat(in.FA, 0)
		rd, fl := g.DefFloat(in.FDst)
		if rd != rs {
			g.Emit(isa.Instr{Op: isa.OpFmov, Rd: rd, Rs1: rs})
		}
		fl()
	case ir.OpFNeg:
		rs := g.UseFloat(in.FA, 0)
		rd, fl := g.DefFloat(in.FDst)
		g.Emit(isa.Instr{Op: isa.OpFneg, Rd: rd, Rs1: rs})
		fl()
	case ir.OpCvIF:
		rs := g.UseInt(in.A, 0)
		rd, fl := g.DefFloat(in.FDst)
		g.Emit(isa.Instr{Op: isa.OpCvtif, Rd: rd, Rs1: rs})
		fl()
	case ir.OpCvFI:
		rs := g.UseFloat(in.FA, 0)
		rd, fl := g.DefInt(in.Dst)
		g.Emit(isa.Instr{Op: isa.OpCvtfi, Rd: rd, Rs1: rs})
		fl()
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		ra := g.UseFloat(in.FA, 0)
		rb := g.UseFloat(in.FB, 1)
		rd, fl := g.DefFloat(in.FDst)
		g.Emit(isa.Instr{Op: fpOp[in.Kind], Rd: rd, Rs1: ra, Rs2: rb})
		fl()
	case ir.OpSetCond:
		// Materialize a 0/1 value; machine-specific drivers may override
		// with better sequences, but this shared form works on both
		// machines: d = ((a - b) <cond-derived trick>) is complex, so use
		// the straightforward compare-free encoding below.
		return g.lowerSetCond(in)
	case ir.OpSetCondF:
		return g.lowerSetCondF(in)
	case ir.OpLoad:
		ra := g.UseInt(in.A, 0)
		base, off := g.memRef(ra, in.Off)
		rd, fl := g.DefInt(in.Dst)
		op := isa.OpLw
		if in.Size == 1 {
			op = isa.OpLb
		}
		g.Emit(isa.Instr{Op: op, Rd: rd, Rs1: base, UseImm: true, Imm: off})
		fl()
	case ir.OpLoadF:
		ra := g.UseInt(in.A, 0)
		base, off := g.memRef(ra, in.Off)
		rd, fl := g.DefFloat(in.FDst)
		g.Emit(isa.Instr{Op: isa.OpLf, Rd: rd, Rs1: base, UseImm: true, Imm: off})
		fl()
	case ir.OpStore:
		ra := g.UseInt(in.A, 0)
		rb := g.UseInt(in.B, 1)
		base, off := g.memRef(ra, in.Off)
		op := isa.OpSw
		if in.Size == 1 {
			op = isa.OpSb
		}
		g.Emit(isa.Instr{Op: op, Rd: rb, Rs1: base, UseImm: true, Imm: off})
	case ir.OpStoreF:
		ra := g.UseInt(in.A, 0)
		rb := g.UseFloat(in.FB, 0)
		base, off := g.memRef(ra, in.Off)
		g.Emit(isa.Instr{Op: isa.OpSf, Rd: rb, Rs1: base, UseImm: true, Imm: off})
	default:
		if in.Kind.IsBinALU() {
			return g.lowerALU(in)
		}
		return fmt.Errorf("codegen: LowerIns cannot lower %v", in.Kind)
	}
	return nil
}

func (g *Gen) lowerALU(in *ir.Ins) error {
	op := aluOp[in.Kind]
	ra := g.UseInt(in.A, 0)
	if in.UseImm {
		if g.M.FitsALUImm(in.Imm) {
			rd, fl := g.DefInt(in.Dst)
			g.Emit(isa.Instr{Op: op, Rd: rd, Rs1: ra, UseImm: true, Imm: int32(in.Imm)})
			fl()
			return nil
		}
		g.MaterializeImm(g.M.Tmp2Reg, int32(in.Imm))
		rd, fl := g.DefInt(in.Dst)
		g.Emit(isa.Instr{Op: op, Rd: rd, Rs1: ra, Rs2: g.M.Tmp2Reg})
		fl()
		return nil
	}
	rb := g.UseInt(in.B, 1)
	rd, fl := g.DefInt(in.Dst)
	g.Emit(isa.Instr{Op: op, Rd: rd, Rs1: ra, Rs2: rb})
	fl()
	return nil
}

func (g *Gen) lowerSetCond(in *ir.Ins) error {
	ra := g.UseInt(in.A, 0)
	cond := CondOf(in.Cond)
	if in.UseImm {
		if isa.FitsSigned(int32(in.Imm), g.M.SetImmBits) {
			rd, fl := g.DefInt(in.Dst)
			g.Emit(isa.Instr{Op: isa.OpSet, Cond: cond, Rd: rd, Rs1: ra, UseImm: true, Imm: int32(in.Imm)})
			fl()
			return nil
		}
		g.MaterializeImm(g.M.Tmp2Reg, int32(in.Imm))
		rd, fl := g.DefInt(in.Dst)
		g.Emit(isa.Instr{Op: isa.OpSet, Cond: cond, Rd: rd, Rs1: ra, Rs2: g.M.Tmp2Reg})
		fl()
		return nil
	}
	rb := g.UseInt(in.B, 1)
	rd, fl := g.DefInt(in.Dst)
	g.Emit(isa.Instr{Op: isa.OpSet, Cond: cond, Rd: rd, Rs1: ra, Rs2: rb})
	fl()
	return nil
}

func (g *Gen) lowerSetCondF(in *ir.Ins) error {
	ra := g.UseFloat(in.FA, 0)
	rb := g.UseFloat(in.FB, 1)
	rd, fl := g.DefInt(in.Dst)
	g.Emit(isa.Instr{Op: isa.OpFSet, Cond: CondOf(in.Cond), Rd: rd, Rs1: ra, Rs2: rb})
	fl()
	return nil
}

// floatConstLabel interns a float constant in the data segment.
func (g *Gen) floatConstLabel(v float64) string {
	for _, d := range g.Data {
		if d.Kind == isa.DataFloat && len(d.Floats) == 1 && d.Floats[0] == v {
			return d.Label
		}
	}
	lbl := fmt.Sprintf("Lfc.%s.%d", g.F.Name, g.ntab)
	g.ntab++
	g.Data = append(g.Data, &isa.DataItem{Label: lbl, Kind: isa.DataFloat, Floats: []float64{v}})
	return lbl
}

// NewTableLabel returns a fresh data label for a jump table.
func (g *Gen) NewTableLabel() string {
	lbl := fmt.Sprintf("Ljt.%s.%d", g.F.Name, g.ntab)
	g.ntab++
	return lbl
}
