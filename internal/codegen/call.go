package codegen

import (
	"fmt"

	"branchreg/internal/ir"
	"branchreg/internal/isa"
)

// EmitPrologue emits the frame setup shared by both machines: stack
// adjustment, callee-saved register saves, and the moves of incoming
// arguments into their allocated homes. Machine-specific return-address
// handling is the driver's responsibility (use the named "ra" save slot).
func (g *Gen) EmitPrologue() {
	if g.Frame.Size > 0 {
		g.AddImm(g.M.SPReg, g.M.SPReg, -g.Frame.Size)
	}
	for _, r := range g.savedInt {
		g.Emit(isa.Instr{Op: isa.OpSw, Rd: r, Rs1: g.M.SPReg, UseImm: true,
			Imm: g.Frame.SaveOff[fmt.Sprintf("r%d", r)], Comment: "save"})
	}
	for _, r := range g.savedFloat {
		g.Emit(isa.Instr{Op: isa.OpSf, Rd: r, Rs1: g.M.SPReg, UseImm: true,
			Imm: g.Frame.SaveOff[fmt.Sprintf("f%d", r)], Comment: "save"})
	}
	g.moveIncomingArgs()
}

// EmitEpilogueRestores emits callee-saved restores and the stack release.
// The driver then emits the machine's return transfer.
func (g *Gen) EmitEpilogueRestores() {
	for _, r := range g.savedInt {
		g.Emit(isa.Instr{Op: isa.OpLw, Rd: r, Rs1: g.M.SPReg, UseImm: true,
			Imm: g.Frame.SaveOff[fmt.Sprintf("r%d", r)], Comment: "restore"})
	}
	for _, r := range g.savedFloat {
		g.Emit(isa.Instr{Op: isa.OpLf, Rd: r, Rs1: g.M.SPReg, UseImm: true,
			Imm: g.Frame.SaveOff[fmt.Sprintf("f%d", r)], Comment: "restore"})
	}
	if g.Frame.Size > 0 {
		g.AddImm(g.M.SPReg, g.M.SPReg, g.Frame.Size)
	}
}

// moveIncomingArgs places register and stack arguments into each
// parameter's allocated location.
func (g *Gen) moveIncomingArgs() {
	ik, fk, ov := 0, 0, 0
	for _, p := range g.F.Params {
		if p.Float {
			loc := g.Alloc.Float[p.R]
			if fk < g.M.FNumArgs {
				src := g.M.FArg0 + fk
				if loc.Spill {
					g.Emit(isa.Instr{Op: isa.OpSf, Rd: src, Rs1: g.M.SPReg, UseImm: true,
						Imm: g.Frame.FltSpill + int32(8*loc.Slot)})
				} else if loc.Reg != src {
					g.Emit(isa.Instr{Op: isa.OpFmov, Rd: loc.Reg, Rs1: src})
				}
			} else {
				off := g.Frame.Size + int32(8*ov)
				ov++
				if loc.Spill {
					g.Emit(isa.Instr{Op: isa.OpLf, Rd: g.M.FTmpReg, Rs1: g.M.SPReg, UseImm: true, Imm: off})
					g.Emit(isa.Instr{Op: isa.OpSf, Rd: g.M.FTmpReg, Rs1: g.M.SPReg, UseImm: true,
						Imm: g.Frame.FltSpill + int32(8*loc.Slot)})
				} else {
					g.Emit(isa.Instr{Op: isa.OpLf, Rd: loc.Reg, Rs1: g.M.SPReg, UseImm: true, Imm: off})
				}
			}
			fk++
			continue
		}
		loc := g.Alloc.Int[p.R]
		if ik < g.M.NumArgs {
			src := g.M.Arg0 + ik
			if loc.Spill {
				g.Emit(isa.Instr{Op: isa.OpSw, Rd: src, Rs1: g.M.SPReg, UseImm: true,
					Imm: g.Frame.IntSpill + int32(4*loc.Slot)})
			} else if loc.Reg != src {
				g.Emit(isa.Instr{Op: isa.OpOr, Rd: loc.Reg, Rs1: src, UseImm: true, Imm: 0})
			}
		} else {
			off := g.Frame.Size + int32(8*ov)
			ov++
			if loc.Spill {
				g.Emit(isa.Instr{Op: isa.OpLw, Rd: g.M.TmpReg, Rs1: g.M.SPReg, UseImm: true, Imm: off})
				g.Emit(isa.Instr{Op: isa.OpSw, Rd: g.M.TmpReg, Rs1: g.M.SPReg, UseImm: true,
					Imm: g.Frame.IntSpill + int32(4*loc.Slot)})
			} else {
				g.Emit(isa.Instr{Op: isa.OpLw, Rd: loc.Reg, Rs1: g.M.SPReg, UseImm: true, Imm: off})
			}
		}
		ik++
	}
}

// EmitCallArgs moves a call's argument values into the argument registers
// and the stack overflow area.
func (g *Gen) EmitCallArgs(in *ir.Ins) {
	ik, fk, ov := 0, 0, 0
	for _, a := range in.Args {
		if a.Float {
			if fk < g.M.FNumArgs {
				src := g.UseFloat(a.R, 0)
				dst := g.M.FArg0 + fk
				if src != dst {
					g.Emit(isa.Instr{Op: isa.OpFmov, Rd: dst, Rs1: src})
				}
			} else {
				src := g.UseFloat(a.R, 0)
				g.Emit(isa.Instr{Op: isa.OpSf, Rd: src, Rs1: g.M.SPReg, UseImm: true,
					Imm: g.Frame.OutArgBase + int32(8*ov)})
				ov++
			}
			fk++
			continue
		}
		if ik < g.M.NumArgs {
			src := g.UseInt(a.R, 0)
			dst := g.M.Arg0 + ik
			if src != dst {
				g.Emit(isa.Instr{Op: isa.OpOr, Rd: dst, Rs1: src, UseImm: true, Imm: 0})
			}
		} else {
			src := g.UseInt(a.R, 0)
			g.Emit(isa.Instr{Op: isa.OpSw, Rd: src, Rs1: g.M.SPReg, UseImm: true,
				Imm: g.Frame.OutArgBase + int32(8*ov)})
			ov++
		}
		ik++
	}
}

// EmitCallResult moves the return value into the call's destination.
func (g *Gen) EmitCallResult(in *ir.Ins) {
	if in.Dst != ir.None {
		loc := g.Alloc.Int[in.Dst]
		if loc.Spill {
			g.Emit(isa.Instr{Op: isa.OpSw, Rd: g.M.RetReg, Rs1: g.M.SPReg, UseImm: true,
				Imm: g.Frame.IntSpill + int32(4*loc.Slot)})
		} else if loc.Reg != g.M.RetReg {
			g.Emit(isa.Instr{Op: isa.OpOr, Rd: loc.Reg, Rs1: g.M.RetReg, UseImm: true, Imm: 0})
		}
	}
	if in.FDst != ir.None {
		loc := g.Alloc.Float[in.FDst]
		if loc.Spill {
			g.Emit(isa.Instr{Op: isa.OpSf, Rd: g.M.FRetReg, Rs1: g.M.SPReg, UseImm: true,
				Imm: g.Frame.FltSpill + int32(8*loc.Slot)})
		} else if loc.Reg != g.M.FRetReg {
			g.Emit(isa.Instr{Op: isa.OpFmov, Rd: loc.Reg, Rs1: g.M.FRetReg})
		}
	}
}

var trapCodes = map[string]int32{
	"exit":     isa.TrapExit,
	"getchar":  isa.TrapGetc,
	"putchar":  isa.TrapPutc,
	"putfloat": isa.TrapPutf,
}

// EmitBuiltin lowers a builtin call to its trap, including argument and
// result moves (builtins use r1/f1 and preserve all other registers).
func (g *Gen) EmitBuiltin(in *ir.Ins) error {
	code, ok := trapCodes[in.Sym]
	if !ok {
		return fmt.Errorf("codegen: unknown builtin %s", in.Sym)
	}
	for _, a := range in.Args {
		if a.Float {
			src := g.UseFloat(a.R, 0)
			if src != g.M.FArg0 {
				g.Emit(isa.Instr{Op: isa.OpFmov, Rd: g.M.FArg0, Rs1: src})
			}
		} else {
			src := g.UseInt(a.R, 0)
			if src != g.M.Arg0 {
				g.Emit(isa.Instr{Op: isa.OpOr, Rd: g.M.Arg0, Rs1: src, UseImm: true, Imm: 0})
			}
		}
	}
	g.Emit(isa.Instr{Op: isa.OpTrap, UseImm: true, Imm: code, Comment: in.Sym})
	g.EmitCallResult(in)
	return nil
}

// RetValueMoves places a return value into the return register.
func (g *Gen) RetValueMoves(t *ir.Ins) {
	if t.A != ir.None {
		src := g.UseInt(t.A, 0)
		if src != g.M.RetReg {
			g.Emit(isa.Instr{Op: isa.OpOr, Rd: g.M.RetReg, Rs1: src, UseImm: true, Imm: 0})
		}
	}
	if t.FA != ir.None {
		src := g.UseFloat(t.FA, 0)
		if src != g.M.FRetReg {
			g.Emit(isa.Instr{Op: isa.OpFmov, Rd: g.M.FRetReg, Rs1: src})
		}
	}
}

// SwitchPlan is the shared lowering decision for an OpSwitch.
type SwitchPlan struct {
	Dense      bool
	Min, Max   int64
	TableLabel string
	Default    string
	Cases      []ir.SwitchCase
}

// PlanSwitch decides between a jump table and a compare chain, emitting the
// jump-table data item when dense. Labels in the table are qualified with
// the function name so the linker can resolve them globally (paper §4's
// indirect-jump switch implementation).
func (g *Gen) PlanSwitch(t *ir.Ins) *SwitchPlan {
	p := &SwitchPlan{Default: t.Targets[0], Cases: t.Cases}
	if len(t.Cases) == 0 {
		return p
	}
	p.Min, p.Max = t.Cases[0].Val, t.Cases[0].Val
	for _, c := range t.Cases {
		if c.Val < p.Min {
			p.Min = c.Val
		}
		if c.Val > p.Max {
			p.Max = c.Val
		}
	}
	span := p.Max - p.Min + 1
	if len(t.Cases) >= 4 && span <= 3*int64(len(t.Cases)) && span <= 1024 {
		p.Dense = true
		p.TableLabel = g.NewTableLabel()
		addrs := make([]string, span)
		for i := range addrs {
			addrs[i] = g.F.Name + "." + p.Default
		}
		for _, c := range t.Cases {
			addrs[c.Val-p.Min] = g.F.Name + "." + c.Target
		}
		g.Data = append(g.Data, &isa.DataItem{Label: p.TableLabel, Kind: isa.DataAddrs, Addrs: addrs})
	}
	return p
}
