package codegen

import (
	"fmt"

	"branchreg/internal/ir"
	"branchreg/internal/isa"
)

// GenBaseline compiles an IR unit for the baseline machine: a conventional
// RISC with compare/branch instructions and one delayed-branch slot. Slot
// filling happens at emission time: when the instruction preceding a branch
// is independent of it, the instruction moves into the slot; otherwise a
// noop fills it (paper §2, §7).
func GenBaseline(u *ir.Unit) (*isa.Program, error) {
	p := &isa.Program{Kind: isa.Baseline}
	for _, d := range u.Data {
		p.Data = append(p.Data, ConvertDatum(d))
	}
	for _, f := range u.Funcs {
		fn, data, err := GenBaselineFunc(f)
		if err != nil {
			return nil, err
		}
		p.Funcs = append(p.Funcs, fn)
		p.Data = append(p.Data, data...)
	}
	if err := p.Link(); err != nil {
		return nil, err
	}
	return p, nil
}

// ConvertDatum converts an IR datum to a linkable data item.
func ConvertDatum(d ir.Datum) *isa.DataItem {
	out := &isa.DataItem{Label: d.Label, Align: d.Align}
	switch d.Kind {
	case ir.DWords:
		out.Kind = isa.DataWords
		out.Words = d.Words
		for _, r := range d.Relocs {
			out.Relocs = append(out.Relocs, isa.DataReloc{WordIndex: r.WordIndex, Sym: r.Sym})
		}
	case ir.DBytes:
		out.Kind = isa.DataBytes
		out.Bytes = d.Bytes
	case ir.DFloats:
		out.Kind = isa.DataFloat
		out.Floats = d.Floats
	case ir.DZero:
		out.Kind = isa.DataZero
		out.Size = d.Size
	}
	return out
}

type baseGen struct {
	*Gen
	out *isa.Function
}

// GenBaselineFunc compiles one function for the baseline machine.
func GenBaselineFunc(f *ir.Func) (*isa.Function, []*isa.DataItem, error) {
	m := BaselineMachine()
	g := NewGen(&m, f)
	if g.HasCalls {
		g.ReserveSave("ra")
	}
	g.Layout()
	bg := &baseGen{Gen: g, out: isa.NewFunction(f.Name, isa.Baseline)}

	for bi, b := range f.Blocks {
		next := ""
		if bi+1 < len(f.Blocks) {
			next = f.Blocks[bi+1].Label
		}
		g.Buf = nil
		if bi == 0 {
			g.EmitPrologue()
			if g.HasCalls {
				g.Emit(isa.Instr{Op: isa.OpSw, Rd: m.RAReg, Rs1: m.SPReg, UseImm: true,
					Imm: g.Frame.SaveOff["ra"], Comment: "save ra"})
			}
		}
		for i := range b.Ins {
			in := &b.Ins[i]
			switch {
			case in.Kind == ir.OpCall:
				if err := bg.lowerCall(in); err != nil {
					return nil, nil, err
				}
			case in.Kind.IsTerm():
				if err := bg.lowerTerm(in, next); err != nil {
					return nil, nil, err
				}
			default:
				if err := g.LowerIns(in); err != nil {
					return nil, nil, err
				}
			}
		}
		bg.out.Bind(b.Label)
		for _, mi := range g.TakeBuf() {
			bg.out.Emit(mi)
		}
	}
	return bg.out, g.Data, nil
}

// emitBranchWithSlot emits a control-transfer instruction, trying to move
// the preceding instruction into its delay slot. blocked reports whether a
// candidate instruction may not move past/after the branch (reads it would
// disturb); extra instructions that must stay glued immediately before the
// branch (the compare) are passed in pre.
func (bg *baseGen) emitBranchWithSlot(pre []isa.Instr, br isa.Instr, blocked func(cand *isa.Instr) bool) {
	g := bg.Gen
	var cand *isa.Instr
	if n := len(g.Buf); n > 0 {
		c := g.Buf[n-1]
		// An instruction that already sits in a previous branch's delay
		// slot must stay put.
		inSlot := n >= 2 && g.Buf[n-2].Op.IsBaselineBranch()
		if !inSlot && slotSafe(&c) && !blocked(&c) && !conflictsWithPre(&c, pre) {
			cand = &c
			g.Buf = g.Buf[:n-1]
		}
	}
	for _, p := range pre {
		g.Emit(p)
	}
	g.Emit(br)
	if cand != nil {
		cand.Comment = appendComment(cand.Comment, "delay slot filled")
		g.Emit(*cand)
	} else {
		g.Emit(isa.Instr{Op: isa.OpNop, Comment: "delay slot"})
	}
}

func appendComment(c, extra string) string {
	if c == "" {
		return extra
	}
	return c + "; " + extra
}

// slotSafe reports whether an instruction may sit in a delay slot at all.
func slotSafe(in *isa.Instr) bool {
	switch in.Op {
	case isa.OpNop, isa.OpTrap, isa.OpB, isa.OpCall, isa.OpJr, isa.OpJalr,
		isa.OpCmp, isa.OpFcmp:
		return false
	}
	return true
}

// writesInt returns the integer register the instruction writes, or -1.
func writesInt(in *isa.Instr) int {
	switch in.Op {
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpAnd,
		isa.OpOr, isa.OpXor, isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSethi,
		isa.OpLw, isa.OpLb, isa.OpSet, isa.OpFSet, isa.OpCvtfi:
		return in.Rd
	}
	return -1
}

// readsInt collects integer registers the instruction reads.
func readsInt(in *isa.Instr) []int {
	var out []int
	add := func(r int) {
		if r >= 0 {
			out = append(out, r)
		}
	}
	switch in.Op {
	case isa.OpSw, isa.OpSb:
		add(in.Rd)
		add(in.Rs1)
		if !in.UseImm {
			add(in.Rs2)
		}
	case isa.OpSf, isa.OpLf, isa.OpLw, isa.OpLb:
		add(in.Rs1)
		if !in.UseImm {
			add(in.Rs2)
		}
	case isa.OpSethi:
	case isa.OpCvtif:
		add(in.Rs1)
	case isa.OpJr, isa.OpJalr:
		add(in.Rs1)
	default:
		if in.Op.IsALU() || in.Op == isa.OpSet || in.Op == isa.OpCmp {
			add(in.Rs1)
			if !in.UseImm {
				add(in.Rs2)
			}
		}
	}
	return out
}

// conflictsWithPre reports whether moving cand after pre (the glued
// compare) would change semantics: cand writing a register pre reads, or
// pre writing a register cand reads (CC is handled by slotSafe excluding
// compares from slots and blocked() for branches).
func conflictsWithPre(cand *isa.Instr, pre []isa.Instr) bool {
	w := writesInt(cand)
	for i := range pre {
		p := &pre[i]
		if w >= 0 {
			for _, r := range readsInt(p) {
				if r == w {
					return true
				}
			}
		}
		if pw := writesInt(p); pw >= 0 {
			for _, r := range readsInt(cand) {
				if r == pw {
					return true
				}
			}
		}
		// Float hazards: compares read float registers.
		if p.Op == isa.OpFcmp && writesFloat(cand) >= 0 {
			if wf := writesFloat(cand); wf == p.Rs1 || wf == p.Rs2 {
				return true
			}
		}
	}
	return false
}

func writesFloat(in *isa.Instr) int {
	switch in.Op {
	case isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv, isa.OpFneg,
		isa.OpFmov, isa.OpCvtif, isa.OpLf:
		return in.Rd
	}
	return -1
}

func (bg *baseGen) lowerCall(in *ir.Ins) error {
	g := bg.Gen
	if in.Builtin {
		return g.EmitBuiltin(in)
	}
	g.EmitCallArgs(in)
	// The call writes the link register before the slot executes, so the
	// slot may neither write nor read it.
	bg.emitBranchWithSlot(nil,
		isa.Instr{Op: isa.OpCall, Target: in.Sym},
		func(c *isa.Instr) bool { return touchesReg(c, g.M.RAReg) })
	g.EmitCallResult(in)
	return nil
}

// touchesReg reports whether the instruction reads or writes integer
// register r.
func touchesReg(in *isa.Instr, r int) bool {
	if writesInt(in) == r {
		return true
	}
	for _, x := range readsInt(in) {
		if x == r {
			return true
		}
	}
	return false
}

func (bg *baseGen) lowerTerm(t *ir.Ins, next string) error {
	g := bg.Gen
	switch t.Kind {
	case ir.OpJump:
		if t.Targets[0] == next {
			return nil // fallthrough
		}
		bg.emitBranchWithSlot(nil,
			isa.Instr{Op: isa.OpB, Cond: isa.CondAlways, Target: t.Targets[0]},
			func(*isa.Instr) bool { return false })
		return nil

	case ir.OpBr:
		ra := g.UseInt(t.A, 0)
		cmp := isa.Instr{Op: isa.OpCmp, Rs1: ra}
		if t.UseImm {
			if g.M.FitsCmpImm(t.Imm) {
				cmp.UseImm = true
				cmp.Imm = int32(t.Imm)
			} else {
				g.MaterializeImm(g.M.Tmp2Reg, int32(t.Imm))
				cmp.Rs2 = g.M.Tmp2Reg
			}
		} else {
			cmp.Rs2 = g.UseInt(t.B, 1)
		}
		return bg.emitCondBranch(t, cmp, CondOf(t.Cond), next)

	case ir.OpBrF:
		ra := g.UseFloat(t.FA, 0)
		rb := g.UseFloat(t.FB, 1)
		cmp := isa.Instr{Op: isa.OpFcmp, Rs1: ra, Rs2: rb}
		return bg.emitCondBranch(t, cmp, CondOf(t.Cond), next)

	case ir.OpSwitch:
		return bg.lowerSwitch(t, next)

	case ir.OpRet:
		g.RetValueMoves(t)
		if g.HasCalls {
			g.EmitSPMem(isa.OpLw, g.M.RAReg, g.Frame.SaveOff["ra"], "restore ra")
		}
		g.EmitEpilogueRestores()
		bg.emitBranchWithSlot(nil,
			isa.Instr{Op: isa.OpJr, Rs1: g.M.RAReg, Comment: "return"},
			func(c *isa.Instr) bool { return writesInt(c) == g.M.RAReg })
		return nil
	}
	return fmt.Errorf("codegen: unknown terminator %v", t.Kind)
}

// emitCondBranch lowers a two-way branch with the compare glued before it.
func (bg *baseGen) emitCondBranch(t *ir.Ins, cmp isa.Instr, cond isa.Cond, next string) error {
	trueL, falseL := t.Targets[0], t.Targets[1]
	if trueL == next {
		// Invert so the taken path is the out-of-line one.
		cond = cond.Negate()
		trueL, falseL = falseL, trueL
	}
	bg.emitBranchWithSlot([]isa.Instr{cmp},
		isa.Instr{Op: isa.OpB, Cond: cond, Target: trueL},
		func(c *isa.Instr) bool { return false })
	if falseL != next {
		bg.emitBranchWithSlot(nil,
			isa.Instr{Op: isa.OpB, Cond: isa.CondAlways, Target: falseL},
			func(*isa.Instr) bool { return false })
	}
	return nil
}

func (bg *baseGen) lowerSwitch(t *ir.Ins, next string) error {
	g := bg.Gen
	plan := g.PlanSwitch(t)
	v := g.UseInt(t.A, 0)
	if !plan.Dense {
		// Compare chain.
		for _, c := range plan.Cases {
			cmp := isa.Instr{Op: isa.OpCmp, Rs1: v}
			if g.M.FitsCmpImm(c.Val) {
				cmp.UseImm = true
				cmp.Imm = int32(c.Val)
			} else {
				g.MaterializeImm(g.M.Tmp2Reg, int32(c.Val))
				cmp.Rs2 = g.M.Tmp2Reg
			}
			g.Emit(cmp)
			g.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondEQ, Target: c.Target})
			g.Emit(isa.Instr{Op: isa.OpNop, Comment: "delay slot"})
		}
		if plan.Default != next {
			bg.emitBranchWithSlot(nil,
				isa.Instr{Op: isa.OpB, Cond: isa.CondAlways, Target: plan.Default},
				func(*isa.Instr) bool { return false })
		}
		return nil
	}
	// Jump table: range check, scale, load, indirect jump (paper §4).
	tmp := g.M.TmpReg
	g.AddImm(tmp, v, int32(-plan.Min))
	g.Emit(isa.Instr{Op: isa.OpCmp, Rs1: tmp, UseImm: true, Imm: int32(plan.Max - plan.Min)})
	g.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondGT, Target: plan.Default})
	g.Emit(isa.Instr{Op: isa.OpNop, Comment: "delay slot"})
	g.Emit(isa.Instr{Op: isa.OpCmp, Rs1: tmp, UseImm: true, Imm: 0})
	g.Emit(isa.Instr{Op: isa.OpB, Cond: isa.CondLT, Target: plan.Default})
	g.Emit(isa.Instr{Op: isa.OpNop, Comment: "delay slot"})
	g.Emit(isa.Instr{Op: isa.OpSll, Rd: tmp, Rs1: tmp, UseImm: true, Imm: 2})
	g.MaterializeAddr(g.M.Tmp2Reg, plan.TableLabel, 0)
	g.Emit(isa.Instr{Op: isa.OpLw, Rd: g.M.Tmp2Reg, Rs1: g.M.Tmp2Reg, Rs2: tmp,
		Comment: "load switch target"})
	g.Emit(isa.Instr{Op: isa.OpJr, Rs1: g.M.Tmp2Reg, Comment: "switch dispatch"})
	g.Emit(isa.Instr{Op: isa.OpNop, Comment: "delay slot"})
	return nil
}
