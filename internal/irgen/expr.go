package irgen

import (
	"fmt"

	"branchreg/internal/ir"
	"branchreg/internal/mc"
)

// lval describes an assignable location: either a virtual register or a
// memory address (base register + constant offset).
type lval struct {
	isVreg bool
	vreg   ir.Reg
	float  bool // value class of the location
	base   ir.Reg
	off    int32
	typ    *mc.Type // type of the stored value
}

// narrowChar truncates a vreg to signed 8 bits in place (char semantics
// after arithmetic or int->char conversion).
func (g *gen) narrowChar(r ir.Reg) {
	g.emit(ir.Ins{Kind: ir.OpSll, Dst: r, A: r, UseImm: true, Imm: 24})
	g.emit(ir.Ins{Kind: ir.OpSra, Dst: r, A: r, UseImm: true, Imm: 24})
}

// convert adjusts a value of type 'from' to type 'to', returning the new
// register and float-ness.
func (g *gen) convert(v ir.Reg, isF bool, from, to *mc.Type) (ir.Reg, bool) {
	from = from.Decay()
	if to.Kind == mc.TFloat && !isF {
		d := g.f.NewFloatReg()
		g.emit(ir.Ins{Kind: ir.OpCvIF, FDst: d, A: v})
		return d, true
	}
	if to.Kind != mc.TFloat && isF {
		d := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpCvFI, Dst: d, FA: v})
		if to.Kind == mc.TChar {
			g.narrowChar(d)
		}
		return d, false
	}
	if !isF && to.Kind == mc.TChar && from.Kind != mc.TChar {
		d := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpMov, Dst: d, A: v})
		g.narrowChar(d)
		return d, false
	}
	return v, isF
}

// exprForEffect evaluates an expression for its side effects only.
func (g *gen) exprForEffect(e mc.Expr) (ir.Reg, error) {
	if call, ok := e.(*mc.Call); ok && call.Type().Kind == mc.TVoid {
		return ir.None, g.callExpr(call, false)
	}
	v, _, err := g.expr(e)
	return v, err
}

// expr evaluates an rvalue, returning the result register and whether it is
// a float register.
func (g *gen) expr(e mc.Expr) (ir.Reg, bool, error) {
	switch x := e.(type) {
	case *mc.IntLit:
		r := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpConst, Dst: r, Imm: int64(int32(x.Value))})
		return r, false, nil
	case *mc.FloatLit:
		r := g.f.NewFloatReg()
		g.emit(ir.Ins{Kind: ir.OpConstF, FDst: r, FImm: x.Value})
		return r, true, nil
	case *mc.StrLit:
		r := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpAddr, Dst: r, Sym: x.Label})
		return r, false, nil
	case *mc.Ident:
		return g.identExpr(x)
	case *mc.Unary:
		return g.unaryExpr(x)
	case *mc.Postfix:
		return g.incDec(x.X, x.Op == "++", true)
	case *mc.Binary:
		return g.binaryExpr(x)
	case *mc.Assign:
		return g.assignExpr(x)
	case *mc.CondExpr:
		return g.ternaryExpr(x)
	case *mc.Index:
		lv, err := g.lvalue(x)
		if err != nil {
			return ir.None, false, err
		}
		// Arrays decay: the value of an array-typed element is its address.
		if x.Type().Kind == mc.TArray {
			return g.lvalAddr(lv), false, nil
		}
		r, isF := g.load(lv)
		return r, isF, nil
	case *mc.Call:
		if err := g.callExpr(x, true); err != nil {
			return ir.None, false, err
		}
		if x.Type().Kind == mc.TFloat {
			return g.lastCallResultF, true, nil
		}
		return g.lastCallResult, false, nil
	case *mc.Cast:
		if x.To.Kind == mc.TVoid {
			_, err := g.exprForEffect(x.X)
			return ir.None, false, err
		}
		v, isF, err := g.expr(x.X)
		if err != nil {
			return ir.None, false, err
		}
		v, isF = g.convert(v, isF, x.X.Type(), x.To)
		return v, isF, nil
	}
	return ir.None, false, fmt.Errorf("irgen: unknown expression %T", e)
}

func (g *gen) identExpr(x *mc.Ident) (ir.Reg, bool, error) {
	sym := x.Sym
	switch sym.Kind {
	case mc.SymFunc:
		return ir.None, false, fmt.Errorf("irgen: function %s used as value", sym.Name)
	case mc.SymLocal, mc.SymParam:
		if r, ok := g.vregOf[sym]; ok {
			return r, sym.Type.Kind == mc.TFloat, nil
		}
		slot := g.slotOf[sym]
		base := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpSlotAddr, Dst: base, Slot: slot})
		if sym.Type.Kind == mc.TArray {
			return base, false, nil // decay to address
		}
		return g.loadFrom(base, 0, sym.Type)
	case mc.SymGlobal:
		base := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpAddr, Dst: base, Sym: sym.Name})
		if sym.Type.Kind == mc.TArray {
			return base, false, nil
		}
		return g.loadFrom(base, 0, sym.Type)
	}
	return ir.None, false, fmt.Errorf("irgen: unresolved identifier %s", x.Name)
}

func (g *gen) loadFrom(base ir.Reg, off int32, t *mc.Type) (ir.Reg, bool, error) {
	if t.Kind == mc.TFloat {
		d := g.f.NewFloatReg()
		g.emit(ir.Ins{Kind: ir.OpLoadF, FDst: d, A: base, Off: off, Size: 8})
		return d, true, nil
	}
	d := g.f.NewIntReg()
	g.emit(ir.Ins{Kind: ir.OpLoad, Dst: d, A: base, Off: off, Size: memSize(t)})
	return d, false, nil
}

func (g *gen) unaryExpr(x *mc.Unary) (ir.Reg, bool, error) {
	switch x.Op {
	case "-":
		v, isF, err := g.expr(x.X)
		if err != nil {
			return ir.None, false, err
		}
		if isF {
			d := g.f.NewFloatReg()
			g.emit(ir.Ins{Kind: ir.OpFNeg, FDst: d, FA: v})
			return d, true, nil
		}
		z := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpConst, Dst: z, Imm: 0})
		d := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpSub, Dst: d, A: z, B: v})
		return d, false, nil
	case "~":
		v, _, err := g.expr(x.X)
		if err != nil {
			return ir.None, false, err
		}
		d := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpXor, Dst: d, A: v, UseImm: true, Imm: -1})
		return d, false, nil
	case "!":
		v, isF, err := g.expr(x.X)
		if err != nil {
			return ir.None, false, err
		}
		d := g.f.NewIntReg()
		if isF {
			fz := g.f.NewFloatReg()
			g.emit(ir.Ins{Kind: ir.OpConstF, FDst: fz, FImm: 0})
			g.emit(ir.Ins{Kind: ir.OpSetCondF, Dst: d, FA: v, FB: fz, Cond: ir.CondEQ})
		} else {
			g.emit(ir.Ins{Kind: ir.OpSetCond, Dst: d, A: v, UseImm: true, Imm: 0, Cond: ir.CondEQ})
		}
		return d, false, nil
	case "*":
		lv, err := g.lvalue(x)
		if err != nil {
			return ir.None, false, err
		}
		if x.Type().Kind == mc.TArray {
			return g.lvalAddr(lv), false, nil
		}
		r, isF := g.load(lv)
		return r, isF, nil
	case "&":
		lv, err := g.lvalue(x.X)
		if err != nil {
			return ir.None, false, err
		}
		if lv.isVreg {
			return ir.None, false, fmt.Errorf("irgen: address of register variable")
		}
		if lv.off == 0 {
			return lv.base, false, nil
		}
		d := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpAdd, Dst: d, A: lv.base, UseImm: true, Imm: int64(lv.off)})
		return d, false, nil
	case "++", "--":
		return g.incDec(x.X, x.Op == "++", false)
	}
	return ir.None, false, fmt.Errorf("irgen: unknown unary %s", x.Op)
}

// incDec implements ++/-- (pre and post forms) on any lvalue, including
// pointers (scaled by element size) and floats.
func (g *gen) incDec(target mc.Expr, inc, post bool) (ir.Reg, bool, error) {
	lv, err := g.lvalue(target)
	if err != nil {
		return ir.None, false, err
	}
	old, isF := g.load(lv)
	// For register lvalues the loaded value aliases the variable itself;
	// the post form must return a snapshot taken before the update.
	if post && lv.isVreg {
		if isF {
			snap := g.f.NewFloatReg()
			g.emit(ir.Ins{Kind: ir.OpMovF, FDst: snap, FA: old})
			old = snap
		} else {
			snap := g.f.NewIntReg()
			g.emit(ir.Ins{Kind: ir.OpMov, Dst: snap, A: old})
			old = snap
		}
	}
	t := target.Type()
	step := int64(1)
	if t.Kind == mc.TPtr {
		step = int64(t.Elem.Size())
	}
	if !inc {
		step = -step
	}
	var newV ir.Reg
	if isF {
		one := g.f.NewFloatReg()
		g.emit(ir.Ins{Kind: ir.OpConstF, FDst: one, FImm: float64(step)})
		newV = g.f.NewFloatReg()
		g.emit(ir.Ins{Kind: ir.OpFAdd, FDst: newV, FA: old, FB: one})
	} else {
		newV = g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpAdd, Dst: newV, A: old, UseImm: true, Imm: step})
		if t.Kind == mc.TChar {
			g.narrowChar(newV)
		}
	}
	g.store(lv, newV)
	if post {
		return old, isF, nil
	}
	return newV, isF, nil
}

func (g *gen) binaryExpr(x *mc.Binary) (ir.Reg, bool, error) {
	switch x.Op {
	case "&&", "||":
		return g.logicalValue(x)
	case "==", "!=", "<", "<=", ">", ">=":
		return g.comparisonValue(x)
	}
	lt, rt := x.L.Type().Decay(), x.R.Type().Decay()
	// Pointer arithmetic.
	if x.Op == "+" || x.Op == "-" {
		if lt.Kind == mc.TPtr && rt.IsInteger() {
			return g.ptrOffset(x.L, x.R, x.Op == "-")
		}
		if rt.Kind == mc.TPtr && lt.IsInteger() && x.Op == "+" {
			return g.ptrOffset(x.R, x.L, false)
		}
		if lt.Kind == mc.TPtr && rt.Kind == mc.TPtr {
			return g.ptrDiff(x)
		}
	}
	l, lf, err := g.expr(x.L)
	if err != nil {
		return ir.None, false, err
	}
	if x.Type().Kind == mc.TFloat {
		l, _ = g.convert(l, lf, lt, mc.FloatType)
		r, rf, err := g.expr(x.R)
		if err != nil {
			return ir.None, false, err
		}
		r, _ = g.convert(r, rf, rt, mc.FloatType)
		kind := map[string]ir.OpKind{"+": ir.OpFAdd, "-": ir.OpFSub, "*": ir.OpFMul, "/": ir.OpFDiv}[x.Op]
		d := g.f.NewFloatReg()
		g.emit(ir.Ins{Kind: kind, FDst: d, FA: l, FB: r})
		return d, true, nil
	}
	kind := map[string]ir.OpKind{
		"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv,
		"%": ir.OpRem, "&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor,
		"<<": ir.OpSll, ">>": ir.OpSra,
	}[x.Op]
	d := g.f.NewIntReg()
	// Fold a literal right operand into the immediate field.
	if c, ok := x.R.(*mc.IntLit); ok {
		g.emit(ir.Ins{Kind: kind, Dst: d, A: l, UseImm: true, Imm: int64(int32(c.Value))})
		return d, false, nil
	}
	r, rf, err := g.expr(x.R)
	if err != nil {
		return ir.None, false, err
	}
	if rf {
		r, _ = g.convert(r, rf, rt, mc.IntType)
	}
	g.emit(ir.Ins{Kind: kind, Dst: d, A: l, B: r})
	return d, false, nil
}

// ptrOffset computes p ± i, scaling i by the pointee size.
func (g *gen) ptrOffset(pe, ie mc.Expr, sub bool) (ir.Reg, bool, error) {
	p, _, err := g.expr(pe)
	if err != nil {
		return ir.None, false, err
	}
	esz := int64(pe.Type().Decay().Elem.Size())
	// Constant index folds completely.
	if c, ok := ie.(*mc.IntLit); ok {
		off := c.Value * esz
		if sub {
			off = -off
		}
		d := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpAdd, Dst: d, A: p, UseImm: true, Imm: off})
		return d, false, nil
	}
	i, _, err := g.expr(ie)
	if err != nil {
		return ir.None, false, err
	}
	scaled := g.scale(i, esz)
	d := g.f.NewIntReg()
	kind := ir.OpAdd
	if sub {
		kind = ir.OpSub
	}
	g.emit(ir.Ins{Kind: kind, Dst: d, A: p, B: scaled})
	return d, false, nil
}

// scale multiplies r by esz, preferring shifts for powers of two.
func (g *gen) scale(r ir.Reg, esz int64) ir.Reg {
	if esz == 1 {
		return r
	}
	d := g.f.NewIntReg()
	if sh := log2(esz); sh > 0 {
		g.emit(ir.Ins{Kind: ir.OpSll, Dst: d, A: r, UseImm: true, Imm: int64(sh)})
	} else {
		g.emit(ir.Ins{Kind: ir.OpMul, Dst: d, A: r, UseImm: true, Imm: esz})
	}
	return d
}

func log2(v int64) int {
	for i := 1; i < 31; i++ {
		if v == 1<<uint(i) {
			return i
		}
	}
	return 0
}

func (g *gen) ptrDiff(x *mc.Binary) (ir.Reg, bool, error) {
	l, _, err := g.expr(x.L)
	if err != nil {
		return ir.None, false, err
	}
	r, _, err := g.expr(x.R)
	if err != nil {
		return ir.None, false, err
	}
	d := g.f.NewIntReg()
	g.emit(ir.Ins{Kind: ir.OpSub, Dst: d, A: l, B: r})
	esz := int64(x.L.Type().Decay().Elem.Size())
	if esz > 1 {
		q := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpDiv, Dst: q, A: d, UseImm: true, Imm: esz})
		return q, false, nil
	}
	return d, false, nil
}

// comparisonValue materializes a comparison as 0/1.
func (g *gen) comparisonValue(x *mc.Binary) (ir.Reg, bool, error) {
	cond := condOf(x.Op)
	lt, rt := x.L.Type().Decay(), x.R.Type().Decay()
	if lt.Kind == mc.TFloat || rt.Kind == mc.TFloat {
		l, lf, err := g.expr(x.L)
		if err != nil {
			return ir.None, false, err
		}
		l, _ = g.convert(l, lf, lt, mc.FloatType)
		r, rf, err := g.expr(x.R)
		if err != nil {
			return ir.None, false, err
		}
		r, _ = g.convert(r, rf, rt, mc.FloatType)
		d := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpSetCondF, Dst: d, FA: l, FB: r, Cond: cond})
		return d, false, nil
	}
	l, _, err := g.expr(x.L)
	if err != nil {
		return ir.None, false, err
	}
	d := g.f.NewIntReg()
	if c, ok := x.R.(*mc.IntLit); ok {
		g.emit(ir.Ins{Kind: ir.OpSetCond, Dst: d, A: l, UseImm: true, Imm: int64(int32(c.Value)), Cond: cond})
		return d, false, nil
	}
	r, _, err := g.expr(x.R)
	if err != nil {
		return ir.None, false, err
	}
	g.emit(ir.Ins{Kind: ir.OpSetCond, Dst: d, A: l, B: r, Cond: cond})
	return d, false, nil
}

func condOf(op string) ir.Cond {
	switch op {
	case "==":
		return ir.CondEQ
	case "!=":
		return ir.CondNE
	case "<":
		return ir.CondLT
	case "<=":
		return ir.CondLE
	case ">":
		return ir.CondGT
	case ">=":
		return ir.CondGE
	}
	return ir.CondNone
}

// logicalValue materializes && or || as 0/1 via control flow.
func (g *gen) logicalValue(x *mc.Binary) (ir.Reg, bool, error) {
	d := g.f.NewIntReg()
	tL, fL, endL := g.label(), g.label(), g.label()
	if err := g.cond(x, tL, fL); err != nil {
		return ir.None, false, err
	}
	g.startBlock(tL)
	g.emit(ir.Ins{Kind: ir.OpConst, Dst: d, Imm: 1})
	g.jumpTo(endL)
	g.startBlock(fL)
	g.emit(ir.Ins{Kind: ir.OpConst, Dst: d, Imm: 0})
	g.jumpTo(endL)
	g.startBlock(endL)
	return d, false, nil
}

func (g *gen) ternaryExpr(x *mc.CondExpr) (ir.Reg, bool, error) {
	isFloat := x.Type().Kind == mc.TFloat
	var d ir.Reg
	if isFloat {
		d = g.f.NewFloatReg()
	} else {
		d = g.f.NewIntReg()
	}
	tL, fL, endL := g.label(), g.label(), g.label()
	if err := g.cond(x.C, tL, fL); err != nil {
		return ir.None, false, err
	}
	g.startBlock(tL)
	tv, tf, err := g.expr(x.T)
	if err != nil {
		return ir.None, false, err
	}
	tv, _ = g.convert(tv, tf, x.T.Type(), x.Type())
	if isFloat {
		g.emit(ir.Ins{Kind: ir.OpMovF, FDst: d, FA: tv})
	} else {
		g.emit(ir.Ins{Kind: ir.OpMov, Dst: d, A: tv})
	}
	g.jumpTo(endL)
	g.startBlock(fL)
	fv, ff, err := g.expr(x.F)
	if err != nil {
		return ir.None, false, err
	}
	fv, _ = g.convert(fv, ff, x.F.Type(), x.Type())
	if isFloat {
		g.emit(ir.Ins{Kind: ir.OpMovF, FDst: d, FA: fv})
	} else {
		g.emit(ir.Ins{Kind: ir.OpMov, Dst: d, A: fv})
	}
	g.jumpTo(endL)
	g.startBlock(endL)
	return d, isFloat, nil
}

func (g *gen) assignExpr(x *mc.Assign) (ir.Reg, bool, error) {
	lv, err := g.lvalue(x.L)
	if err != nil {
		return ir.None, false, err
	}
	lt := x.L.Type()
	if x.Op == "=" {
		v, isF, err := g.expr(x.R)
		if err != nil {
			return ir.None, false, err
		}
		v, _ = g.convert(v, isF, x.R.Type(), lt)
		g.store(lv, v)
		return v, lt.Kind == mc.TFloat, nil
	}
	// Compound assignment: load, op, store.
	old, _ := g.load(lv)
	op := x.Op[:len(x.Op)-1]
	if lt.Kind == mc.TPtr {
		esz := int64(lt.Elem.Size())
		var delta ir.Reg
		if c, ok := x.R.(*mc.IntLit); ok {
			delta = g.f.NewIntReg()
			g.emit(ir.Ins{Kind: ir.OpConst, Dst: delta, Imm: c.Value * esz})
		} else {
			rv, _, err := g.expr(x.R)
			if err != nil {
				return ir.None, false, err
			}
			delta = g.scale(rv, esz)
		}
		d := g.f.NewIntReg()
		kind := ir.OpAdd
		if op == "-" {
			kind = ir.OpSub
		}
		g.emit(ir.Ins{Kind: kind, Dst: d, A: old, B: delta})
		g.store(lv, d)
		return d, false, nil
	}
	if lt.Kind == mc.TFloat {
		rv, rf, err := g.expr(x.R)
		if err != nil {
			return ir.None, false, err
		}
		rv, _ = g.convert(rv, rf, x.R.Type(), mc.FloatType)
		kind := map[string]ir.OpKind{"+": ir.OpFAdd, "-": ir.OpFSub, "*": ir.OpFMul, "/": ir.OpFDiv}[op]
		if kind == 0 && op != "+" {
			return ir.None, false, fmt.Errorf("irgen: %s on float", x.Op)
		}
		d := g.f.NewFloatReg()
		g.emit(ir.Ins{Kind: kind, FDst: d, FA: old, FB: rv})
		g.store(lv, d)
		return d, true, nil
	}
	kind := map[string]ir.OpKind{
		"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv,
		"%": ir.OpRem, "&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor,
		"<<": ir.OpSll, ">>": ir.OpSra,
	}[op]
	d := g.f.NewIntReg()
	if c, ok := x.R.(*mc.IntLit); ok {
		g.emit(ir.Ins{Kind: kind, Dst: d, A: old, UseImm: true, Imm: int64(int32(c.Value))})
	} else {
		rv, rf, err := g.expr(x.R)
		if err != nil {
			return ir.None, false, err
		}
		if rf {
			rv, _ = g.convert(rv, rf, x.R.Type(), mc.IntType)
		}
		g.emit(ir.Ins{Kind: kind, Dst: d, A: old, B: rv})
	}
	if lt.Kind == mc.TChar {
		g.narrowChar(d)
	}
	g.store(lv, d)
	return d, false, nil
}

func (g *gen) callExpr(x *mc.Call, wantResult bool) error {
	id := x.Fun.(*mc.Ident)
	var args []ir.Arg
	ft := id.Sym.Type
	for i, a := range x.Args {
		v, isF, err := g.expr(a)
		if err != nil {
			return err
		}
		v, isF = g.convert(v, isF, a.Type(), ft.Params[i])
		args = append(args, ir.Arg{R: v, Float: isF})
	}
	call := ir.Ins{Kind: ir.OpCall, Sym: id.Name, Args: args, Dst: ir.None, FDst: ir.None,
		Builtin: id.Sym.Fun == nil && mc.Builtins[id.Name] != nil}
	g.lastCallResult, g.lastCallResultF = ir.None, ir.None
	if ft.Ret.Kind != mc.TVoid {
		if ft.Ret.Kind == mc.TFloat {
			call.FDst = g.f.NewFloatReg()
			g.lastCallResultF = call.FDst
		} else {
			call.Dst = g.f.NewIntReg()
			g.lastCallResult = call.Dst
		}
	}
	g.emit(call)
	return nil
}

// lvalue computes the location an assignable expression denotes.
func (g *gen) lvalue(e mc.Expr) (lval, error) {
	switch x := e.(type) {
	case *mc.Ident:
		sym := x.Sym
		if r, ok := g.vregOf[sym]; ok {
			return lval{isVreg: true, vreg: r, float: sym.Type.Kind == mc.TFloat, typ: sym.Type}, nil
		}
		base := g.f.NewIntReg()
		if sym.Kind == mc.SymGlobal {
			g.emit(ir.Ins{Kind: ir.OpAddr, Dst: base, Sym: sym.Name})
		} else {
			g.emit(ir.Ins{Kind: ir.OpSlotAddr, Dst: base, Slot: g.slotOf[sym]})
		}
		return lval{base: base, typ: sym.Type, float: sym.Type.Kind == mc.TFloat}, nil
	case *mc.Unary:
		if x.Op != "*" {
			break
		}
		p, _, err := g.expr(x.X)
		if err != nil {
			return lval{}, err
		}
		et := x.X.Type().Decay().Elem
		return lval{base: p, typ: et, float: et.Kind == mc.TFloat}, nil
	case *mc.Index:
		base, _, err := g.expr(x.X)
		if err != nil {
			return lval{}, err
		}
		et := x.X.Type().Decay().Elem
		esz := int64(et.Size())
		if c, ok := x.I.(*mc.IntLit); ok {
			return lval{base: base, off: int32(c.Value * esz), typ: et, float: et.Kind == mc.TFloat}, nil
		}
		i, _, err := g.expr(x.I)
		if err != nil {
			return lval{}, err
		}
		scaled := g.scale(i, esz)
		addr := g.f.NewIntReg()
		g.emit(ir.Ins{Kind: ir.OpAdd, Dst: addr, A: base, B: scaled})
		return lval{base: addr, typ: et, float: et.Kind == mc.TFloat}, nil
	}
	l, c := e.Pos()
	return lval{}, fmt.Errorf("irgen: %d:%d: expression is not an lvalue", l, c)
}

// lvalAddr materializes the address a memory lvalue denotes.
func (g *gen) lvalAddr(lv lval) ir.Reg {
	if lv.off == 0 {
		return lv.base
	}
	d := g.f.NewIntReg()
	g.emit(ir.Ins{Kind: ir.OpAdd, Dst: d, A: lv.base, UseImm: true, Imm: int64(lv.off)})
	return d
}

// load reads the current value of an lvalue.
func (g *gen) load(lv lval) (ir.Reg, bool) {
	if lv.isVreg {
		return lv.vreg, lv.float
	}
	if lv.typ.Kind == mc.TFloat {
		d := g.f.NewFloatReg()
		g.emit(ir.Ins{Kind: ir.OpLoadF, FDst: d, A: lv.base, Off: lv.off, Size: 8})
		return d, true
	}
	d := g.f.NewIntReg()
	g.emit(ir.Ins{Kind: ir.OpLoad, Dst: d, A: lv.base, Off: lv.off, Size: memSize(lv.typ)})
	return d, false
}

// store writes v into an lvalue.
func (g *gen) store(lv lval, v ir.Reg) {
	if lv.isVreg {
		if lv.float {
			g.emit(ir.Ins{Kind: ir.OpMovF, FDst: lv.vreg, FA: v})
		} else {
			g.emit(ir.Ins{Kind: ir.OpMov, Dst: lv.vreg, A: v})
			if lv.typ.Kind == mc.TChar {
				g.narrowChar(lv.vreg)
			}
		}
		return
	}
	if lv.typ.Kind == mc.TFloat {
		g.emit(ir.Ins{Kind: ir.OpStoreF, A: lv.base, FB: v, Off: lv.off, Size: 8})
		return
	}
	g.emit(ir.Ins{Kind: ir.OpStore, A: lv.base, B: v, Off: lv.off, Size: memSize(lv.typ)})
}

// cond lowers a boolean expression into branches to tl/fl.
func (g *gen) cond(e mc.Expr, tl, fl string) error {
	switch x := e.(type) {
	case *mc.IntLit:
		if x.Value != 0 {
			g.jumpTo(tl)
		} else {
			g.jumpTo(fl)
		}
		return nil
	case *mc.Unary:
		if x.Op == "!" {
			return g.cond(x.X, fl, tl)
		}
	case *mc.Binary:
		switch x.Op {
		case "&&":
			mid := g.label()
			if err := g.cond(x.L, mid, fl); err != nil {
				return err
			}
			g.startBlock(mid)
			return g.cond(x.R, tl, fl)
		case "||":
			mid := g.label()
			if err := g.cond(x.L, tl, mid); err != nil {
				return err
			}
			g.startBlock(mid)
			return g.cond(x.R, tl, fl)
		case "==", "!=", "<", "<=", ">", ">=":
			return g.condCompare(x, tl, fl)
		}
	}
	// General scalar: compare against zero.
	v, isF, err := g.expr(e)
	if err != nil {
		return err
	}
	if isF {
		fz := g.f.NewFloatReg()
		g.emit(ir.Ins{Kind: ir.OpConstF, FDst: fz, FImm: 0})
		g.emit(ir.Ins{Kind: ir.OpBrF, FA: v, FB: fz, Cond: ir.CondNE, Targets: []string{tl, fl}})
	} else {
		g.emit(ir.Ins{Kind: ir.OpBr, A: v, UseImm: true, Imm: 0, Cond: ir.CondNE, Targets: []string{tl, fl}})
	}
	g.startBlock(g.label())
	return nil
}

func (g *gen) condCompare(x *mc.Binary, tl, fl string) error {
	cond := condOf(x.Op)
	lt, rt := x.L.Type().Decay(), x.R.Type().Decay()
	if lt.Kind == mc.TFloat || rt.Kind == mc.TFloat {
		l, lf, err := g.expr(x.L)
		if err != nil {
			return err
		}
		l, _ = g.convert(l, lf, lt, mc.FloatType)
		r, rf, err := g.expr(x.R)
		if err != nil {
			return err
		}
		r, _ = g.convert(r, rf, rt, mc.FloatType)
		g.emit(ir.Ins{Kind: ir.OpBrF, FA: l, FB: r, Cond: cond, Targets: []string{tl, fl}})
		g.startBlock(g.label())
		return nil
	}
	l, _, err := g.expr(x.L)
	if err != nil {
		return err
	}
	if c, ok := x.R.(*mc.IntLit); ok {
		g.emit(ir.Ins{Kind: ir.OpBr, A: l, UseImm: true, Imm: int64(int32(c.Value)), Cond: cond, Targets: []string{tl, fl}})
		g.startBlock(g.label())
		return nil
	}
	r, _, err := g.expr(x.R)
	if err != nil {
		return err
	}
	g.emit(ir.Ins{Kind: ir.OpBr, A: l, B: r, Cond: cond, Targets: []string{tl, fl}})
	g.startBlock(g.label())
	return nil
}
