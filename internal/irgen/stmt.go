package irgen

import (
	"fmt"

	"branchreg/internal/ir"
	"branchreg/internal/mc"
)

func (g *gen) stmt(s mc.Stmt) error {
	switch st := s.(type) {
	case *mc.Empty:
		return nil
	case *mc.Block:
		for _, sub := range st.Stmts {
			if err := g.stmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *mc.DeclStmt:
		for _, d := range st.Decls {
			if err := g.localDecl(d); err != nil {
				return err
			}
		}
		return nil
	case *mc.ExprStmt:
		_, err := g.exprForEffect(st.X)
		return err
	case *mc.If:
		return g.ifStmt(st)
	case *mc.While:
		return g.whileStmt(st)
	case *mc.DoWhile:
		return g.doWhileStmt(st)
	case *mc.For:
		return g.forStmt(st)
	case *mc.Switch:
		return g.switchStmt(st)
	case *mc.Break:
		if len(g.breakTo) == 0 {
			return fmt.Errorf("irgen: break outside loop")
		}
		g.jumpTo(g.breakTo[len(g.breakTo)-1])
		g.startBlock(g.label())
		return nil
	case *mc.Continue:
		if len(g.contTo) == 0 {
			return fmt.Errorf("irgen: continue outside loop")
		}
		g.jumpTo(g.contTo[len(g.contTo)-1])
		g.startBlock(g.label())
		return nil
	case *mc.Return:
		return g.returnStmt(st)
	}
	return fmt.Errorf("irgen: unknown statement %T", s)
}

func (g *gen) localDecl(d *mc.VarDecl) error {
	sym := d.Sym
	t := sym.Type
	isAggregate := t.Kind == mc.TArray
	if isAggregate || g.addrTaken[sym] {
		slot := g.newSlot(sym.Name, int32(t.Size()), int32(t.Align()))
		g.slotOf[sym] = slot
		if d.Init == nil {
			return nil
		}
		return g.initSlot(slot, t, d.Init)
	}
	// Scalar in a vreg.
	var r ir.Reg
	if t.Kind == mc.TFloat {
		r = g.f.NewFloatReg()
	} else {
		r = g.f.NewIntReg()
	}
	g.vregOf[sym] = r
	if d.Init == nil {
		// Define the register so liveness never sees an undefined use.
		if t.Kind == mc.TFloat {
			g.emit(ir.Ins{Kind: ir.OpConstF, FDst: r, FImm: 0})
		} else {
			g.emit(ir.Ins{Kind: ir.OpConst, Dst: r, Imm: 0})
		}
		return nil
	}
	v, isF, err := g.expr(d.Init.Expr)
	if err != nil {
		return err
	}
	v, isF = g.convert(v, isF, d.Init.Expr.Type(), t)
	if t.Kind == mc.TFloat {
		g.emit(ir.Ins{Kind: ir.OpMovF, FDst: r, FA: v})
	} else {
		g.emit(ir.Ins{Kind: ir.OpMov, Dst: r, A: v})
		if t.Kind == mc.TChar {
			g.narrowChar(r)
		}
	}
	_ = isF
	return nil
}

// initSlot stores an initializer into a stack slot, element by element.
func (g *gen) initSlot(slot int, t *mc.Type, init *mc.Initializer) error {
	base := g.f.NewIntReg()
	g.emit(ir.Ins{Kind: ir.OpSlotAddr, Dst: base, Slot: slot})
	return g.initMem(base, 0, t, init)
}

func (g *gen) initMem(base ir.Reg, off int32, t *mc.Type, init *mc.Initializer) error {
	if init.List != nil {
		if t.Kind != mc.TArray {
			return fmt.Errorf("irgen: brace initializer for non-array local")
		}
		esz := int32(t.Elem.Size())
		for i, sub := range init.List {
			if err := g.initMem(base, off+int32(i)*esz, t.Elem, sub); err != nil {
				return err
			}
		}
		return nil
	}
	if s, ok := init.Expr.(*mc.StrLit); ok && t.Kind == mc.TArray && t.Elem.Kind == mc.TChar {
		// Copy the string bytes (including NUL) into the array.
		for i := 0; i <= len(s.Value) && i < t.Len; i++ {
			var b byte
			if i < len(s.Value) {
				b = s.Value[i]
			}
			c := g.f.NewIntReg()
			g.emit(ir.Ins{Kind: ir.OpConst, Dst: c, Imm: int64(int8(b))})
			g.emit(ir.Ins{Kind: ir.OpStore, A: base, B: c, Off: off + int32(i), Size: 1})
		}
		return nil
	}
	v, isF, err := g.expr(init.Expr)
	if err != nil {
		return err
	}
	v, _ = g.convert(v, isF, init.Expr.Type(), t)
	if t.Kind == mc.TFloat {
		g.emit(ir.Ins{Kind: ir.OpStoreF, A: base, FB: v, Off: off, Size: 8})
	} else {
		g.emit(ir.Ins{Kind: ir.OpStore, A: base, B: v, Off: off, Size: memSize(t)})
	}
	return nil
}

func (g *gen) ifStmt(st *mc.If) error {
	thenL := g.label()
	endL := g.label()
	elseL := endL
	if st.Else != nil {
		elseL = g.label()
	}
	if err := g.cond(st.Cond, thenL, elseL); err != nil {
		return err
	}
	g.startBlock(thenL)
	if err := g.stmt(st.Then); err != nil {
		return err
	}
	g.jumpTo(endL)
	if st.Else != nil {
		g.startBlock(elseL)
		if err := g.stmt(st.Else); err != nil {
			return err
		}
		g.jumpTo(endL)
	}
	g.startBlock(endL)
	return nil
}

func (g *gen) whileStmt(st *mc.While) error {
	headL, bodyL, endL := g.label(), g.label(), g.label()
	g.jumpTo(headL)
	g.startBlock(headL)
	if err := g.cond(st.Cond, bodyL, endL); err != nil {
		return err
	}
	g.startBlock(bodyL)
	g.breakTo = append(g.breakTo, endL)
	g.contTo = append(g.contTo, headL)
	err := g.stmt(st.Body)
	g.breakTo = g.breakTo[:len(g.breakTo)-1]
	g.contTo = g.contTo[:len(g.contTo)-1]
	if err != nil {
		return err
	}
	g.jumpTo(headL)
	g.startBlock(endL)
	return nil
}

func (g *gen) doWhileStmt(st *mc.DoWhile) error {
	bodyL, condL, endL := g.label(), g.label(), g.label()
	g.jumpTo(bodyL)
	g.startBlock(bodyL)
	g.breakTo = append(g.breakTo, endL)
	g.contTo = append(g.contTo, condL)
	err := g.stmt(st.Body)
	g.breakTo = g.breakTo[:len(g.breakTo)-1]
	g.contTo = g.contTo[:len(g.contTo)-1]
	if err != nil {
		return err
	}
	g.jumpTo(condL)
	g.startBlock(condL)
	if err := g.cond(st.Cond, bodyL, endL); err != nil {
		return err
	}
	g.startBlock(endL)
	return nil
}

func (g *gen) forStmt(st *mc.For) error {
	if st.Init != nil {
		if err := g.stmt(st.Init); err != nil {
			return err
		}
	}
	headL, bodyL, postL, endL := g.label(), g.label(), g.label(), g.label()
	g.jumpTo(headL)
	g.startBlock(headL)
	if st.Cond != nil {
		if err := g.cond(st.Cond, bodyL, endL); err != nil {
			return err
		}
	} else {
		g.jumpTo(bodyL)
	}
	g.startBlock(bodyL)
	g.breakTo = append(g.breakTo, endL)
	g.contTo = append(g.contTo, postL)
	err := g.stmt(st.Body)
	g.breakTo = g.breakTo[:len(g.breakTo)-1]
	g.contTo = g.contTo[:len(g.contTo)-1]
	if err != nil {
		return err
	}
	g.jumpTo(postL)
	g.startBlock(postL)
	if st.Post != nil {
		if _, err := g.exprForEffect(st.Post); err != nil {
			return err
		}
	}
	g.jumpTo(headL)
	g.startBlock(endL)
	return nil
}

func (g *gen) switchStmt(st *mc.Switch) error {
	v, _, err := g.expr(st.X)
	if err != nil {
		return err
	}
	endL := g.label()
	defaultL := endL
	sw := ir.Ins{Kind: ir.OpSwitch, A: v}
	labels := make([]string, len(st.Cases))
	for i, c := range st.Cases {
		labels[i] = g.label()
		if c.IsDefault {
			defaultL = labels[i]
		} else {
			sw.Cases = append(sw.Cases, ir.SwitchCase{Val: c.Value, Target: labels[i]})
		}
	}
	sw.Targets = []string{defaultL}
	g.emit(sw)
	g.breakTo = append(g.breakTo, endL)
	for i, c := range st.Cases {
		g.startBlock(labels[i])
		for _, sub := range c.Body {
			if err := g.stmt(sub); err != nil {
				g.breakTo = g.breakTo[:len(g.breakTo)-1]
				return err
			}
		}
		// Fallthrough to the next case body (or the end).
		if i+1 < len(st.Cases) {
			g.jumpTo(labels[i+1])
		} else {
			g.jumpTo(endL)
		}
	}
	g.breakTo = g.breakTo[:len(g.breakTo)-1]
	g.startBlock(endL)
	return nil
}

func (g *gen) returnStmt(st *mc.Return) error {
	if st.X == nil {
		g.emit(ir.Ins{Kind: ir.OpRet, A: ir.None, FA: ir.None})
		g.startBlock(g.label())
		return nil
	}
	v, isF, err := g.expr(st.X)
	if err != nil {
		return err
	}
	var retType *mc.Type
	if g.f.RetFloat {
		retType = mc.FloatType
	} else {
		retType = mc.IntType
	}
	v, isF = g.convert(v, isF, st.X.Type(), retType)
	if isF {
		g.emit(ir.Ins{Kind: ir.OpRet, A: ir.None, FA: v})
	} else {
		g.emit(ir.Ins{Kind: ir.OpRet, A: v, FA: ir.None})
	}
	g.startBlock(g.label())
	return nil
}
