package irgen

import (
	"strings"
	"testing"

	"branchreg/internal/ir"
	"branchreg/internal/irexec"
	"branchreg/internal/mc"
)

// run compiles MC source, lowers it, interprets it, and returns the output
// and exit status.
func run(t *testing.T, src, input string) (string, int32) {
	t.Helper()
	u, err := mc.Compile(src)
	if err != nil {
		t.Fatalf("front end: %v\nsource:\n%s", err, src)
	}
	iu, err := Lower(u)
	if err != nil {
		t.Fatalf("irgen: %v\nsource:\n%s", err, src)
	}
	for _, f := range iu.Funcs {
		if err := f.Verify(); err != nil {
			t.Fatalf("verify: %v\n%s", err, f)
		}
	}
	out, status, err := irexec.RunSource(iu, input)
	if err != nil {
		t.Fatalf("irexec: %v\nsource:\n%s", err, src)
	}
	return out, status
}

func expectStatus(t *testing.T, src string, want int32) {
	t.Helper()
	_, got := run(t, src, "")
	if got != want {
		t.Errorf("exit status = %d, want %d\nsource:\n%s", got, want, src)
	}
}

func TestReturnConstant(t *testing.T) {
	expectStatus(t, `int main(void) { return 42; }`, 42)
}

func TestArithmetic(t *testing.T) {
	expectStatus(t, `int main(void) { return 2 + 3 * 4 - 20 / 4 - 9; }`, 0)
	expectStatus(t, `int main(void) { return 17 % 5; }`, 2)
	expectStatus(t, `int main(void) { return (5 & 3) + (5 | 3) + (5 ^ 3); }`, 1+7+6)
	expectStatus(t, `int main(void) { return (1 << 4) + (256 >> 3); }`, 48)
	expectStatus(t, `int main(void) { return -7 + 10; }`, 3)
	expectStatus(t, `int main(void) { return ~0 + 2; }`, 1)
	expectStatus(t, `int main(void) { return !5 + !0; }`, 1)
	expectStatus(t, `int main(void) { return -9 / 2 + 10; }`, 6)
	expectStatus(t, `int main(void) { return -9 % 4 + 3; }`, 2)
}

func TestComparisonsAsValues(t *testing.T) {
	expectStatus(t, `int main(void) { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }`, 4)
}

func TestLogicalOps(t *testing.T) {
	expectStatus(t, `int main(void) { return (1 && 2) + (0 && 1)*10 + (0 || 3) + (0 || 0)*10; }`, 2)
	// Short-circuit: the divide by zero must not execute.
	expectStatus(t, `
int boom(void) { exit(9); return 1; }
int main(void) { if (0 && boom()) return 1; if (1 || boom()) return 7; return 2; }`, 7)
}

func TestVariablesAndAssignment(t *testing.T) {
	expectStatus(t, `int main(void) { int x = 5; int y; y = x + 2; x += y; x *= 2; x -= 4; x /= 2; return x; }`, 10)
	expectStatus(t, `int main(void) { int x = 1; x <<= 4; x |= 2; x &= 18; x ^= 16; x %= 3; return x; }`, 2)
}

func TestIncDec(t *testing.T) {
	expectStatus(t, `int main(void) { int x = 5; int a = x++; int b = ++x; int c = x--; int d = --x; return a*1000 + b*100 + c*10 + d; }`, 5775)
}

func TestIfElse(t *testing.T) {
	expectStatus(t, `int main(void) { int x = 3; if (x > 2) return 1; else return 2; }`, 1)
	expectStatus(t, `int main(void) { int x = 1; if (x > 2) return 1; return 2; }`, 2)
	expectStatus(t, `
int main(void) {
    int x = 5, r = 0;
    if (x == 1) r = 1;
    else if (x == 5) r = 50;
    else r = 9;
    return r;
}`, 50)
}

func TestLoops(t *testing.T) {
	expectStatus(t, `int main(void) { int s = 0; int i; for (i = 1; i <= 10; i++) s += i; return s; }`, 55)
	expectStatus(t, `int main(void) { int s = 0, i = 0; while (i < 5) { s += 2; i++; } return s; }`, 10)
	expectStatus(t, `int main(void) { int i = 10, n = 0; do { n++; i--; } while (i); return n; }`, 10)
	expectStatus(t, `
int main(void) {
    int s = 0;
    for (int i = 0; i < 10; i++) {
        if (i == 3) continue;
        if (i == 7) break;
        s += i;
    }
    return s;
}`, 0+1+2+4+5+6)
	// Nested loops.
	expectStatus(t, `
int main(void) {
    int s = 0;
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            if (j > i) s++;
    return s;
}`, 6)
}

func TestSwitch(t *testing.T) {
	src := `
int classify(int c) {
    switch (c) {
    case 1: return 10;
    case 2:
    case 3: return 23;
    case 9: break;
    default: return 99;
    }
    return 5;
}
int main(void) { return classify(%d); }
`
	cases := map[string]int32{"1": 10, "2": 23, "3": 23, "9": 5, "4": 99}
	for arg, want := range cases {
		s := strings.Replace(src, "%d", arg, 1)
		expectStatus(t, s, want)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	expectStatus(t, `
int main(void) {
    int n = 0;
    switch (2) {
    case 1: n += 1;
    case 2: n += 2;
    case 3: n += 4;
    default: n += 8;
    }
    return n;
}`, 14)
}

func TestFunctionsAndRecursion(t *testing.T) {
	expectStatus(t, `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) { return fib(10); }`, 55)
	expectStatus(t, `
int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
int main(void) { return ack(2, 3); }`, 9)
}

func TestGlobals(t *testing.T) {
	expectStatus(t, `
int g = 7;
int h;
int bump(void) { g++; h = g * 2; return 0; }
int main(void) { bump(); bump(); return g + h; }`, 9+18)
}

func TestArrays(t *testing.T) {
	expectStatus(t, `
int a[10];
int main(void) {
    int i;
    for (i = 0; i < 10; i++) a[i] = i * i;
    int s = 0;
    for (i = 0; i < 10; i++) s += a[i];
    return s;
}`, 285)
	expectStatus(t, `
int t[5] = {5, 4, 3, 2, 1};
int main(void) { return t[0]*10000 + t[4]; }`, 50001)
	expectStatus(t, `
int m[3][3] = {{1,2,3},{4,5,6},{7,8,9}};
int main(void) {
    int s = 0;
    for (int i = 0; i < 3; i++) s += m[i][i];
    return s;
}`, 15)
}

func TestLocalArrays(t *testing.T) {
	expectStatus(t, `
int main(void) {
    int a[4] = {1, 2, 3, 4};
    int s = 0;
    for (int i = 0; i < 4; i++) s += a[i];
    return s;
}`, 10)
	expectStatus(t, `
int main(void) {
    char buf[8] = "hi";
    return buf[0] + (buf[2] == 0);
}`, 'h'+1)
}

func TestPointers(t *testing.T) {
	expectStatus(t, `
int main(void) {
    int x = 3;
    int *p = &x;
    *p = 7;
    return x;
}`, 7)
	expectStatus(t, `
int a[5] = {10, 20, 30, 40, 50};
int main(void) {
    int *p = a;
    p++;
    p += 2;
    int d = p - a;
    return *p + d;
}`, 43)
	expectStatus(t, `
void set(int *p, int v) { *p = v; }
int main(void) { int x = 0; set(&x, 31); return x; }`, 31)
}

func TestCharSemantics(t *testing.T) {
	// char arithmetic wraps to signed 8 bits.
	expectStatus(t, `int main(void) { char c = 200; return c < 0; }`, 1)
	expectStatus(t, `int main(void) { char c = 127; c++; return c == -128; }`, 1)
	expectStatus(t, `
char s[4] = {65, 66, 67, 0};
int len(char *p) { int n = 0; for (; *p; p++) n++; return n; }
int main(void) { return len(s); }`, 3)
}

func TestStrings(t *testing.T) {
	out, status := run(t, `
void print(char *s) { for (; *s; s++) putchar(*s); }
int main(void) { print("hello\n"); return 0; }`, "")
	if out != "hello\n" || status != 0 {
		t.Errorf("out = %q status = %d", out, status)
	}
}

func TestGetcharPutchar(t *testing.T) {
	out, _ := run(t, `
int main(void) {
    int c;
    while ((c = getchar()) != -1) {
        if (c >= 'a' && c <= 'z') c = c - 'a' + 'A';
        putchar(c);
    }
    return 0;
}`, "abc XYZ 123\n")
	if out != "ABC XYZ 123\n" {
		t.Errorf("out = %q", out)
	}
}

func TestFloats(t *testing.T) {
	out, status := run(t, `
float half(float x) { return x / 2.0; }
int main(void) {
    float a = 3.5;
    float b = half(a) + 1.25;
    putfloat(b);
    putchar('\n');
    if (b > 2.9 && b < 3.1) return 1;
    return 0;
}`, "")
	if !strings.HasPrefix(out, "3.0000") {
		t.Errorf("out = %q", out)
	}
	if status != 1 {
		t.Errorf("status = %d", status)
	}
}

func TestFloatIntConversions(t *testing.T) {
	expectStatus(t, `int main(void) { float f = 7.9; int i = (int)f; return i; }`, 7)
	expectStatus(t, `int main(void) { int i = 3; float f = i; f *= 2.5; return (int)f; }`, 7)
	expectStatus(t, `float fs[2] = {1.5, 2.5}; int main(void) { return (int)(fs[0] + fs[1]); }`, 4)
}

func TestTernary(t *testing.T) {
	expectStatus(t, `int main(void) { int x = 5; return x > 3 ? 10 : 20; }`, 10)
	expectStatus(t, `int main(void) { int x = 1; return x > 3 ? 10 : 20; }`, 20)
	expectStatus(t, `int main(void) { return (int)(0 ? 1.5 : 2.5); }`, 2)
}

func TestExitBuiltin(t *testing.T) {
	out, status := run(t, `
int main(void) { putchar('x'); exit(3); putchar('y'); return 0; }`, "")
	if out != "x" || status != 3 {
		t.Errorf("out = %q status = %d", out, status)
	}
}

func TestGlobalPointerInit(t *testing.T) {
	out, _ := run(t, `
char *msg = "abc";
int main(void) { for (char *p = msg; *p; p++) putchar(*p); return 0; }`, "")
	if out != "abc" {
		t.Errorf("out = %q", out)
	}
}

func TestAddressTakenParam(t *testing.T) {
	expectStatus(t, `
void twice(int x, int *out) { *out = x * 2; }
int caller(int v) { int r; twice(v, &r); return r; }
int main(void) { return caller(21); }`, 42)
	// Address of a parameter itself.
	expectStatus(t, `
void bump(int *p) { *p += 5; }
int f(int x) { bump(&x); return x; }
int main(void) { return f(10); }`, 15)
}

func TestByteMemoryOps(t *testing.T) {
	expectStatus(t, `
char buf[16];
int main(void) {
    for (int i = 0; i < 10; i++) buf[i] = 'a' + i;
    return buf[3] == 'd' && buf[9] == 'j';
}`, 1)
}

func TestUnsignedShiftViaSrl(t *testing.T) {
	// MC >> is arithmetic; check sign preservation.
	expectStatus(t, `int main(void) { int x = -8; return (x >> 1) == -4; }`, 1)
}

func TestLowerProducesLoops(t *testing.T) {
	u, err := mc.Compile(`
int main(void) {
    int s = 0;
    for (int i = 0; i < 9; i++)
        for (int j = 0; j < 9; j++)
            s++;
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	iu, err := Lower(u)
	if err != nil {
		t.Fatal(err)
	}
	f := iu.Funcs[0]
	if len(f.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(f.Loops))
	}
	for _, l := range f.Loops {
		if l.Preheader == nil {
			t.Error("loop without preheader after Analyze")
		}
	}
	var maxDepth int
	for _, b := range f.Blocks {
		if b.Depth > maxDepth {
			maxDepth = b.Depth
		}
	}
	if maxDepth != 2 {
		t.Errorf("max depth = %d, want 2", maxDepth)
	}
}

func TestLowerSwitchBecomesIRSwitch(t *testing.T) {
	u, err := mc.Compile(`
int main(void) {
    switch (getchar()) {
    case 1: return 1;
    case 2: return 2;
    case 3: return 3;
    case 4: return 4;
    default: return 0;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	iu, err := Lower(u)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range iu.Funcs[0].Blocks {
		if tm := b.Term(); tm != nil && tm.Kind == ir.OpSwitch {
			found = true
			if len(tm.Cases) != 4 {
				t.Errorf("switch cases = %d", len(tm.Cases))
			}
		}
	}
	if !found {
		t.Error("no OpSwitch emitted")
	}
}

func TestGlobalDataLowering(t *testing.T) {
	u, err := mc.Compile(`
int scalar = 5;
char ch = 'x';
float pi = 3.25;
int arr[4] = {1, 2};
char text[6] = "ab";
char *ptr = "zz";
float fs[2] = {1.0, 2.0};
int zeroed[7];
int main(void) { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	iu, err := Lower(u)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]ir.Datum{}
	for _, d := range iu.Data {
		byLabel[d.Label] = d
	}
	if d := byLabel["scalar"]; d.Kind != ir.DWords || d.Words[0] != 5 {
		t.Errorf("scalar = %+v", d)
	}
	if d := byLabel["arr"]; len(d.Words) != 4 || d.Words[1] != 2 || d.Words[2] != 0 {
		t.Errorf("arr = %+v", d)
	}
	if d := byLabel["text"]; len(d.Bytes) != 6 || d.Bytes[0] != 'a' || d.Bytes[2] != 0 {
		t.Errorf("text = %+v", d)
	}
	if d := byLabel["ptr"]; d.Kind != ir.DWords || len(d.Relocs) != 1 {
		t.Errorf("ptr = %+v", d)
	}
	if d := byLabel["fs"]; d.Kind != ir.DFloats || d.Floats[1] != 2.0 {
		t.Errorf("fs = %+v", d)
	}
	if d := byLabel["zeroed"]; d.Kind != ir.DZero || d.Size != 28 {
		t.Errorf("zeroed = %+v", d)
	}
}

func TestComplexProgramSort(t *testing.T) {
	out, _ := run(t, `
int a[8] = {42, 7, 19, 3, 88, 1, 55, 10};
void sort(int *v, int n) {
    for (int i = 0; i < n - 1; i++)
        for (int j = 0; j < n - 1 - i; j++)
            if (v[j] > v[j+1]) {
                int t = v[j];
                v[j] = v[j+1];
                v[j+1] = t;
            }
}
void puti(int n) {
    if (n >= 10) puti(n / 10);
    putchar('0' + n % 10);
}
int main(void) {
    sort(a, 8);
    for (int i = 0; i < 8; i++) { puti(a[i]); putchar(' '); }
    return 0;
}`, "")
	if out != "1 3 7 10 19 42 55 88 " {
		t.Errorf("out = %q", out)
	}
}
