// Package irgen lowers the type-checked MC AST into the ir package's
// three-address form: scalars to virtual registers, arrays and
// address-taken locals to stack slots, structured control flow to an
// explicit CFG, and global initializers to static data.
package irgen

import (
	"fmt"

	"branchreg/internal/ir"
	"branchreg/internal/mc"
)

// Lower converts a checked unit into IR.
func Lower(u *mc.Unit) (*ir.Unit, error) {
	g := &gen{unit: u, out: &ir.Unit{}}
	if err := g.lowerData(); err != nil {
		return nil, err
	}
	for _, fn := range u.Funcs {
		f, err := g.lowerFunc(fn)
		if err != nil {
			return nil, err
		}
		g.out.Funcs = append(g.out.Funcs, f)
	}
	return g.out, nil
}

type gen struct {
	unit *mc.Unit
	out  *ir.Unit

	// per-function state
	f         *ir.Func
	cur       *ir.Block
	nlabel    int
	vregOf    map[*mc.Symbol]ir.Reg // scalar locals/params in vregs
	slotOf    map[*mc.Symbol]int    // slot-allocated locals/params
	addrTaken map[*mc.Symbol]bool
	breakTo   []string
	contTo    []string

	// destination registers of the most recent call
	lastCallResult  ir.Reg
	lastCallResultF ir.Reg
}

// ---- static data ----

func (g *gen) lowerData() error {
	for _, s := range g.unit.Strings {
		g.out.Data = append(g.out.Data, ir.Datum{
			Label: s.Label,
			Kind:  ir.DBytes,
			Bytes: append([]byte(s.Value), 0),
		})
	}
	for _, v := range g.unit.Globals {
		d, err := g.lowerGlobal(v)
		if err != nil {
			return err
		}
		g.out.Data = append(g.out.Data, d)
	}
	return nil
}

func (g *gen) lowerGlobal(v *mc.VarDecl) (ir.Datum, error) {
	t := v.Type
	if v.Init == nil {
		return ir.Datum{Label: v.Name, Kind: ir.DZero, Size: t.Size(), Align: t.Align()}, nil
	}
	switch {
	case t.Kind == mc.TFloat:
		fv, err := constFloat(v.Init.Expr)
		if err != nil {
			return ir.Datum{}, err
		}
		return ir.Datum{Label: v.Name, Kind: ir.DFloats, Floats: []float64{fv}}, nil
	case t.Kind == mc.TArray && t.Elem.Kind == mc.TFloat:
		var fs []float64
		for _, sub := range v.Init.List {
			fv, err := constFloat(sub.Expr)
			if err != nil {
				return ir.Datum{}, err
			}
			fs = append(fs, fv)
		}
		for len(fs) < t.Len {
			fs = append(fs, 0)
		}
		return ir.Datum{Label: v.Name, Kind: ir.DFloats, Floats: fs}, nil
	case t.Kind == mc.TArray && t.Elem.Kind == mc.TChar:
		var bs []byte
		if v.Init.Expr != nil {
			s, ok := v.Init.Expr.(*mc.StrLit)
			if !ok {
				return ir.Datum{}, fmt.Errorf("irgen: %s: char array initializer must be a string", v.Name)
			}
			bs = append([]byte(s.Value), 0)
		} else {
			for _, sub := range v.Init.List {
				cv, err := constInt(sub.Expr)
				if err != nil {
					return ir.Datum{}, err
				}
				bs = append(bs, byte(cv))
			}
		}
		if len(bs) > t.Len {
			return ir.Datum{}, fmt.Errorf("irgen: %s: initializer longer than array", v.Name)
		}
		for len(bs) < t.Len {
			bs = append(bs, 0)
		}
		return ir.Datum{Label: v.Name, Kind: ir.DBytes, Bytes: bs}, nil
	case t.Kind == mc.TPtr:
		// Pointer initializer: integer constant or string literal address.
		if s, ok := v.Init.Expr.(*mc.StrLit); ok {
			return ir.Datum{Label: v.Name, Kind: ir.DWords, Words: []int32{0},
				Relocs: []ir.Reloc{{WordIndex: 0, Sym: s.Label}}}, nil
		}
		cv, err := constInt(v.Init.Expr)
		if err != nil {
			return ir.Datum{}, err
		}
		return ir.Datum{Label: v.Name, Kind: ir.DWords, Words: []int32{int32(cv)}}, nil
	case t.IsInteger():
		cv, err := constInt(v.Init.Expr)
		if err != nil {
			return ir.Datum{}, err
		}
		if t.Kind == mc.TChar {
			return ir.Datum{Label: v.Name, Kind: ir.DBytes, Bytes: []byte{byte(cv)}}, nil
		}
		return ir.Datum{Label: v.Name, Kind: ir.DWords, Words: []int32{int32(cv)}}, nil
	case t.Kind == mc.TArray:
		// int (or pointer) arrays, possibly 2-D.
		var words []int32
		var relocs []ir.Reloc
		var flatten func(init *mc.Initializer, typ *mc.Type) error
		flatten = func(init *mc.Initializer, typ *mc.Type) error {
			if init.List != nil {
				if typ.Kind != mc.TArray {
					return fmt.Errorf("irgen: %s: brace list for non-array element", v.Name)
				}
				for _, sub := range init.List {
					if err := flatten(sub, typ.Elem); err != nil {
						return err
					}
				}
				// Zero-fill the remainder of this sub-array.
				fill := (typ.Len - len(init.List)) * typ.Elem.Size() / 4
				for i := 0; i < fill; i++ {
					words = append(words, 0)
				}
				return nil
			}
			if s, ok := init.Expr.(*mc.StrLit); ok {
				relocs = append(relocs, ir.Reloc{WordIndex: len(words), Sym: s.Label})
				words = append(words, 0)
				return nil
			}
			cv, err := constInt(init.Expr)
			if err != nil {
				return err
			}
			words = append(words, int32(cv))
			return nil
		}
		if v.Init.List == nil {
			return ir.Datum{}, fmt.Errorf("irgen: %s: array initializer must be a brace list", v.Name)
		}
		if err := flatten(v.Init, t); err != nil {
			return ir.Datum{}, err
		}
		total := t.Size() / 4
		for len(words) < total {
			words = append(words, 0)
		}
		return ir.Datum{Label: v.Name, Kind: ir.DWords, Words: words, Relocs: relocs}, nil
	}
	return ir.Datum{}, fmt.Errorf("irgen: %s: unsupported global initializer", v.Name)
}

// constInt folds a constant integer expression.
func constInt(e mc.Expr) (int64, error) {
	switch x := e.(type) {
	case *mc.IntLit:
		return x.Value, nil
	case *mc.Unary:
		v, err := constInt(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "~":
			return int64(^int32(v)), nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *mc.Binary:
		l, err := constInt(x.L)
		if err != nil {
			return 0, err
		}
		r, err := constInt(x.R)
		if err != nil {
			return 0, err
		}
		return foldInt(x.Op, l, r)
	case *mc.Cast:
		if x.To.IsInteger() {
			v, err := constInt(x.X)
			if err != nil {
				return 0, err
			}
			if x.To.Kind == mc.TChar {
				return int64(int8(v)), nil
			}
			return int64(int32(v)), nil
		}
	}
	l, c := e.Pos()
	return 0, fmt.Errorf("irgen: %d:%d: initializer is not an integer constant", l, c)
}

func foldInt(op string, l, r int64) (int64, error) {
	a, b := int32(l), int32(r)
	switch op {
	case "+":
		return int64(a + b), nil
	case "-":
		return int64(a - b), nil
	case "*":
		return int64(a * b), nil
	case "/":
		if b == 0 {
			return 0, fmt.Errorf("irgen: constant division by zero")
		}
		return int64(a / b), nil
	case "%":
		if b == 0 {
			return 0, fmt.Errorf("irgen: constant modulo by zero")
		}
		return int64(a % b), nil
	case "&":
		return int64(a & b), nil
	case "|":
		return int64(a | b), nil
	case "^":
		return int64(a ^ b), nil
	case "<<":
		return int64(a << (uint32(b) & 31)), nil
	case ">>":
		return int64(a >> (uint32(b) & 31)), nil
	}
	return 0, fmt.Errorf("irgen: operator %s not constant-foldable", op)
}

func constFloat(e mc.Expr) (float64, error) {
	switch x := e.(type) {
	case *mc.FloatLit:
		return x.Value, nil
	case *mc.IntLit:
		return float64(x.Value), nil
	case *mc.Unary:
		if x.Op == "-" {
			v, err := constFloat(x.X)
			if err != nil {
				return 0, err
			}
			return -v, nil
		}
	case *mc.Binary:
		l, err := constFloat(x.L)
		if err != nil {
			return 0, err
		}
		r, err := constFloat(x.R)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("irgen: constant division by zero")
			}
			return l / r, nil
		}
	}
	l, c := e.Pos()
	return 0, fmt.Errorf("irgen: %d:%d: initializer is not a float constant", l, c)
}

// ---- functions ----

func (g *gen) lowerFunc(fn *mc.FuncDecl) (*ir.Func, error) {
	g.f = ir.NewFunc(fn.Name)
	g.nlabel = 0
	g.vregOf = map[*mc.Symbol]ir.Reg{}
	g.slotOf = map[*mc.Symbol]int{}
	g.addrTaken = map[*mc.Symbol]bool{}
	g.breakTo, g.contTo = nil, nil
	g.findAddrTaken(fn.Body)

	g.cur = g.f.NewBlock(g.label())

	// Parameters: every param gets a vreg (the calling convention target);
	// address-taken params are copied into a slot.
	for _, p := range fn.Params {
		var r ir.Reg
		if p.Type.Decay().Kind == mc.TFloat {
			r = g.f.NewFloatReg()
			g.f.Params = append(g.f.Params, ir.Arg{R: r, Float: true})
		} else {
			r = g.f.NewIntReg()
			g.f.Params = append(g.f.Params, ir.Arg{R: r, Float: false})
		}
		sym := p.Sym
		if g.addrTaken[sym] {
			slot := g.newSlot(sym.Name, int32(sym.Type.Size()), int32(sym.Type.Align()))
			g.slotOf[sym] = slot
			base := g.f.NewIntReg()
			g.emit(ir.Ins{Kind: ir.OpSlotAddr, Dst: base, Slot: slot})
			if sym.Type.Kind == mc.TFloat {
				g.emit(ir.Ins{Kind: ir.OpStoreF, A: base, FB: r, Size: 8})
			} else {
				g.emit(ir.Ins{Kind: ir.OpStore, A: base, B: r, Size: memSize(sym.Type)})
			}
		} else {
			g.vregOf[sym] = r
		}
	}
	g.f.RetFloat = fn.Ret.Kind == mc.TFloat
	g.f.HasRet = fn.Ret.Kind != mc.TVoid

	if err := g.stmt(fn.Body); err != nil {
		return nil, err
	}
	// Implicit return.
	if g.cur != nil {
		if g.f.HasRet {
			z := g.f.NewIntReg()
			g.emit(ir.Ins{Kind: ir.OpConst, Dst: z, Imm: 0})
			if g.f.RetFloat {
				fz := g.f.NewFloatReg()
				g.emit(ir.Ins{Kind: ir.OpCvIF, FDst: fz, A: z})
				g.emit(ir.Ins{Kind: ir.OpRet, A: ir.None, FA: fz})
			} else {
				g.emit(ir.Ins{Kind: ir.OpRet, A: z, FA: ir.None})
			}
		} else {
			g.emit(ir.Ins{Kind: ir.OpRet, A: ir.None, FA: ir.None})
		}
	}
	g.pruneUnterminated()
	if err := g.f.BuildCFG(); err != nil {
		return nil, err
	}
	g.removeUnreachable()
	if err := g.f.Verify(); err != nil {
		return nil, err
	}
	if err := g.f.Analyze(); err != nil {
		return nil, err
	}
	return g.f, nil
}

// removeUnreachable drops blocks the CFG walk did not reach (dangling
// blocks created after returns, breaks, and continues).
func (g *gen) removeUnreachable() {
	kept := g.f.Blocks[:0]
	for _, b := range g.f.Blocks {
		if b.RPO >= 0 {
			kept = append(kept, b)
		}
	}
	g.f.Blocks = kept
}

// pruneUnterminated removes unreachable empty blocks created by dangling
// labels (e.g. code after a return) and gives any remaining unterminated
// block a trailing return.
func (g *gen) pruneUnterminated() {
	for _, b := range g.f.Blocks {
		if b.Term() == nil {
			b.Ins = append(b.Ins, ir.Ins{Kind: ir.OpRet, A: ir.None, FA: ir.None})
		}
	}
}

func (g *gen) label() string {
	g.nlabel++
	return fmt.Sprintf("L%d", g.nlabel)
}

func (g *gen) newSlot(name string, size, align int32) int {
	g.f.Slots = append(g.f.Slots, ir.SlotInfo{Name: name, Size: size, Align: align})
	return len(g.f.Slots) - 1
}

func (g *gen) emit(in ir.Ins) {
	g.cur.Ins = append(g.cur.Ins, in)
}

// startBlock begins a new block with the given label and makes it current.
func (g *gen) startBlock(label string) {
	g.cur = g.f.NewBlock(label)
}

// jumpTo terminates the current block with a jump if it is still open.
func (g *gen) jumpTo(label string) {
	if g.cur != nil && g.cur.Term() == nil {
		g.emit(ir.Ins{Kind: ir.OpJump, Targets: []string{label}})
	}
}

// findAddrTaken records all symbols whose address is taken with &.
func (g *gen) findAddrTaken(n mc.Node) {
	switch x := n.(type) {
	case *mc.Unary:
		if x.Op == "&" {
			if id, ok := x.X.(*mc.Ident); ok {
				g.addrTaken[id.Sym] = true
			}
		}
		g.findAddrTaken(x.X)
	case *mc.Block:
		for _, s := range x.Stmts {
			g.findAddrTaken(s)
		}
	case *mc.DeclStmt:
		for _, d := range x.Decls {
			if d.Init != nil {
				g.findAddrTakenInit(d.Init)
			}
		}
	case *mc.ExprStmt:
		g.findAddrTaken(x.X)
	case *mc.If:
		g.findAddrTaken(x.Cond)
		g.findAddrTaken(x.Then)
		if x.Else != nil {
			g.findAddrTaken(x.Else)
		}
	case *mc.While:
		g.findAddrTaken(x.Cond)
		g.findAddrTaken(x.Body)
	case *mc.DoWhile:
		g.findAddrTaken(x.Body)
		g.findAddrTaken(x.Cond)
	case *mc.For:
		if x.Init != nil {
			g.findAddrTaken(x.Init)
		}
		if x.Cond != nil {
			g.findAddrTaken(x.Cond)
		}
		if x.Post != nil {
			g.findAddrTaken(x.Post)
		}
		g.findAddrTaken(x.Body)
	case *mc.Switch:
		g.findAddrTaken(x.X)
		for _, c := range x.Cases {
			for _, s := range c.Body {
				g.findAddrTaken(s)
			}
		}
	case *mc.Return:
		if x.X != nil {
			g.findAddrTaken(x.X)
		}
	case *mc.Binary:
		g.findAddrTaken(x.L)
		g.findAddrTaken(x.R)
	case *mc.Assign:
		g.findAddrTaken(x.L)
		g.findAddrTaken(x.R)
	case *mc.CondExpr:
		g.findAddrTaken(x.C)
		g.findAddrTaken(x.T)
		g.findAddrTaken(x.F)
	case *mc.Index:
		g.findAddrTaken(x.X)
		g.findAddrTaken(x.I)
	case *mc.Call:
		for _, a := range x.Args {
			g.findAddrTaken(a)
		}
	case *mc.Cast:
		g.findAddrTaken(x.X)
	case *mc.Postfix:
		g.findAddrTaken(x.X)
	}
}

func (g *gen) findAddrTakenInit(init *mc.Initializer) {
	if init.Expr != nil {
		g.findAddrTaken(init.Expr)
	}
	for _, sub := range init.List {
		g.findAddrTakenInit(sub)
	}
}

// memSize maps a scalar type to its memory operand size.
func memSize(t *mc.Type) int {
	switch t.Kind {
	case mc.TChar:
		return 1
	case mc.TFloat:
		return 8
	default:
		return 4
	}
}
