package guard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
)

// Online shadow verification: the offline differential oracle
// (brload/fuzz) only catches an engine miscompare when someone runs it;
// the shadow pool moves that check into production. A deterministic
// sample of successful responses is re-executed in the background on
// the alternate engine tier — fused responses re-run on the fast loop,
// fast responses on the instrumented loop — and compared byte for byte
// (output, exit status, instruction count). A mismatch records an
// incident and immediately quarantines the (class, served-tier) pair:
// the more aggressive tier is the suspect, because the tiers below it
// are strictly simpler and the instrumented loop is the semantic
// reference.

// shadowJob is one sampled response awaiting re-execution.
type shadowJob struct {
	class string
	req   driver.Request // Loop already rewritten to the alternate tier
	tier  string         // tier that served the primary response
	alt   string         // tier the shadow runs on
	res   *driver.Result // the served result (read-only)
}

// shadowPool runs shadow jobs on background workers with a bounded
// queue: verification must never block or backpressure serving, so a
// full queue drops the sample (counted) instead of waiting.
type shadowPool struct {
	sup     *Supervisor
	queue   chan shadowJob
	workers sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

func newShadowPool(sup *Supervisor, workers, depth int) *shadowPool {
	p := &shadowPool{sup: sup, queue: make(chan shadowJob, depth)}
	for i := 0; i < workers; i++ {
		p.workers.Add(1)
		go p.worker()
	}
	return p
}

// enqueue offers a job without blocking. It is safe against a
// concurrent close: the RLock holds the channel open for the send.
func (p *shadowPool) enqueue(j shadowJob) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- j:
		return true
	default:
		return false
	}
}

// close stops admission, lets queued jobs finish, and waits.
func (p *shadowPool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.workers.Wait()
}

func (p *shadowPool) worker() {
	defer p.workers.Done()
	for j := range p.queue {
		p.sup.runShadow(j)
	}
}

// altTier returns the engine a tier's shadow runs on ("" = no simpler
// tier exists; the instrumented loop is the reference semantics).
func altTier(mode emu.LoopMode) (emu.LoopMode, bool) {
	switch mode {
	case emu.LoopAdaptive:
		return emu.LoopFused, true
	case emu.LoopFused:
		return emu.LoopFast, true
	case emu.LoopFast:
		return emu.LoopInstrumented, true
	default:
		return 0, false
	}
}

// maybeShadow samples a successful execution for shadow verification.
// Sampling is a deterministic per-class counter — every ShadowRate'th
// executed (not merely received: coalesced followers share one
// execution) request of a class is sampled — so chaos smoke runs and
// tests can predict exactly which executions are shadowed.
func (s *Supervisor) maybeShadow(class string, req driver.Request, tier emu.LoopMode, res *driver.Result) bool {
	if s.shadow == nil {
		return false
	}
	// A memoized Result is not an execution: the engine named in it did
	// not just run, so re-executing the alternate tier would "verify"
	// the cache against the emulator, not engine against engine. Only
	// real executions advance the per-class sample counter.
	if res.Cached {
		return false
	}
	alt, ok := altTier(tier)
	if !ok {
		return false
	}
	s.mu.Lock()
	s.shadowN[class]++
	due := s.shadowN[class]%int64(s.cfg.ShadowRate) == 0
	s.mu.Unlock()
	if !due {
		return false
	}
	s.m.shadowSampled.Inc()
	shadowReq := req
	shadowReq.Loop = alt
	shadowReq.Profile = nil
	if !s.shadow.enqueue(shadowJob{
		class: class, req: shadowReq, tier: tierName(tier), alt: tierName(alt), res: res,
	}) {
		s.m.shadowDropped.Inc()
		return false
	}
	return true
}

// runShadow re-executes one sampled request on the alternate tier and
// compares. Called from a shadow worker. The re-execution's wall clock
// lands in the serve.latency.shadow.<outcome>.<tier> histograms (the
// serve.latency family is the request-phase latency namespace; shadow
// verification is the one phase that runs off the request path), so
// /metrics shows what background verification costs next to what
// serving costs.
func (s *Supervisor) runShadow(j shadowJob) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShadowTimeout)
	defer cancel()
	start := time.Now()
	alt, err := s.attempt(ctx, j.class, j.req, j.alt)
	outcome := "ok"
	switch {
	case err != nil:
		outcome = "error"
	case diffResults(j.res, alt) != "":
		outcome = "mismatch"
	}
	s.cfg.Metrics.Histogram(fmt.Sprintf("serve.latency.shadow.%s.%s", outcome, j.alt)).
		Observe(time.Since(start).Nanoseconds())
	if err != nil {
		// The primary succeeded, so any shadow error is suspicious — but
		// an error is not a byte mismatch: it may be a panic in the
		// *shadow* tier (its own breaker problem) or a shutdown-time
		// timeout. Count it without quarantining the served tier.
		s.m.shadowError.Inc()
		s.record(IncidentShadowMismatch, j.class, j.tier,
			fmt.Sprintf("shadow re-execution on %s failed instead of reproducing the response: %v", j.alt, err))
		return
	}
	if diff := diffResults(j.res, alt); diff != "" {
		s.m.shadowMismatch.Inc()
		s.record(IncidentShadowMismatch, j.class, j.tier,
			fmt.Sprintf("served %s response diverges from %s re-execution: %s", j.tier, j.alt, diff))
		s.Quarantine(j.class, j.tier, fmt.Sprintf("shadow mismatch vs %s (%s)", j.alt, diff))
		return
	}
	s.m.shadowOK.Inc()
}

// diffResults compares the served result against the shadow result
// byte for byte, returning "" on agreement.
func diffResults(served, shadow *driver.Result) string {
	if served.Output != shadow.Output {
		return fmt.Sprintf("output differs (%d bytes served, %d shadow)", len(served.Output), len(shadow.Output))
	}
	if served.Status != shadow.Status {
		return fmt.Sprintf("exit status %d vs %d", served.Status, shadow.Status)
	}
	if served.Stats.Instructions != shadow.Stats.Instructions {
		return fmt.Sprintf("instruction count %d vs %d", served.Stats.Instructions, shadow.Stats.Instructions)
	}
	return ""
}
