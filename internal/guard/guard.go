// Package guard is the supervision layer between the brserve admission
// workers and driver.Exec: it makes engine bugs survivable (engine-tier
// fallback), detectable (online shadow differential verification), and
// containable (per-(class, engine) circuit breakers with quarantine).
//
// The block-fused engine is the most aggressive — and therefore the
// most bug-prone — execution tier. guard assumes exactly that: a
// recovered panic in one tier transparently retries the same
// driver.Request on the next-safer tier (fused → fast → instrumented),
// annotating the result with the tier that actually served it. N
// consecutive failures of a tier for one workload class open that
// class's breaker, pinning it to the fallback tier for a cooldown with
// half-open probing to close it again. A configurable sample of
// successful responses is re-executed in the background on the
// alternate engine and compared byte for byte; a mismatch is recorded
// in a bounded incident ring and immediately quarantines the offending
// (class, engine) pair. Everything observable is exported through
// internal/obs under guard.fallback.*, guard.breaker.*, and
// guard.shadow.*.
package guard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/obs"
)

// ExecFunc executes one request. class is the caller's workload-class
// label (brserve passes "workload/machine" or "src:<hash>/machine");
// the underlying driver ignores it, but wrappers — the chaos injector —
// use it for targeting.
type ExecFunc func(ctx context.Context, class string, req driver.Request) (*driver.Result, error)

// Config sizes a Supervisor. The zero value of every field but Exec is
// usable: New fills unset fields with the documented defaults.
type Config struct {
	// Exec is the underlying executor (required) — brserve passes its
	// compile cache's Exec, optionally wrapped by the chaos injector.
	Exec ExecFunc
	// Threshold is the consecutive-failure count that opens a
	// (class, tier) breaker (default 3).
	Threshold int
	// Cooldown is how long an open breaker skips its tier before
	// half-open probing (default 30s).
	Cooldown time.Duration
	// ShadowRate samples every Nth successful execution of a class for
	// background re-execution on the alternate engine (0 or negative
	// disables shadowing). Sampling is a deterministic per-class counter,
	// not a coin flip, so tests and smoke runs can predict it.
	ShadowRate int
	// ShadowWorkers is the number of background verification goroutines
	// (default 1: shadow work must trickle, not compete with serving).
	ShadowWorkers int
	// ShadowQueue bounds the pending shadow jobs; a full queue drops the
	// sample and counts guard.shadow.dropped (default 64).
	ShadowQueue int
	// ShadowTimeout bounds one shadow re-execution (default 2 minutes).
	ShadowTimeout time.Duration
	// IncidentCap bounds the incident ring buffer (default 256).
	IncidentCap int
	// Metrics supplies the registry guard records into (default obs.Default).
	Metrics *obs.Registry
	// Now is the clock (default time.Now) — a test hook so breaker
	// cooldown transitions are provable without sleeping.
	Now func() time.Time
	// OnQuarantine, when set, is called after Quarantine force-opens a
	// (class, tier) breaker — brserve hooks it to invalidate the result
	// cache's entries for the pair, so a quarantined tier cannot keep
	// serving stale results from memory after its breaker stops it from
	// executing. Called synchronously; keep it fast.
	OnQuarantine func(class, tier string)
}

// guardMetrics holds the resolved metric handles (one atomic op per
// event on the serving path, never a registry lookup).
type guardMetrics struct {
	fallbackAttempts  *obs.Counter // tier failures that moved a request down the chain
	fallbackSuccess   *obs.Counter // requests rescued by a lower tier
	fallbackExhausted *obs.Counter // requests that failed on every tier
	breakerOpen       *obs.Counter // closed/half-open → open transitions
	breakerClose      *obs.Counter // half-open → closed transitions
	breakerHalfOpen   *obs.Counter // open → half-open probe admissions
	breakerReroute    *obs.Counter // requests skipped past a quarantined tier
	breakerOpenNow    *obs.Gauge   // breakers currently open or half-open
	shadowSampled     *obs.Counter
	shadowOK          *obs.Counter
	shadowMismatch    *obs.Counter
	shadowError       *obs.Counter // shadow re-execution failed (not a comparison mismatch)
	shadowDropped     *obs.Counter // sampled but queue full
	incidents         *obs.Counter
}

func newGuardMetrics(r *obs.Registry) guardMetrics {
	return guardMetrics{
		fallbackAttempts:  r.Counter("guard.fallback.attempts"),
		fallbackSuccess:   r.Counter("guard.fallback.success"),
		fallbackExhausted: r.Counter("guard.fallback.exhausted"),
		breakerOpen:       r.Counter("guard.breaker.open"),
		breakerClose:      r.Counter("guard.breaker.close"),
		breakerHalfOpen:   r.Counter("guard.breaker.half_open"),
		breakerReroute:    r.Counter("guard.breaker.reroute"),
		breakerOpenNow:    r.Gauge("guard.breaker.open_now"),
		shadowSampled:     r.Counter("guard.shadow.sampled"),
		shadowOK:          r.Counter("guard.shadow.ok"),
		shadowMismatch:    r.Counter("guard.shadow.mismatch"),
		shadowError:       r.Counter("guard.shadow.error"),
		shadowDropped:     r.Counter("guard.shadow.dropped"),
		incidents:         r.Counter("guard.incidents"),
	}
}

// Result is a driver.Result annotated with how the supervisor obtained
// it: the tier that actually served the request, the tiers that faulted
// before it, and whether an open breaker rerouted the request before
// its preferred tier was even tried.
type Result struct {
	*driver.Result
	// Tier is the engine that produced the result (mirrors Result.Engine
	// for engine-tier requests; for passthrough requests it is whatever
	// engine the emulator chose).
	Tier string
	// FallbackFrom lists the tiers that faulted before the serving tier,
	// in the order they were tried. Empty for a first-try success.
	FallbackFrom []string
	// Rerouted marks a request whose preferred tier was skipped because
	// its breaker was open.
	Rerouted bool
}

// PanicError is a recovered engine panic carried as an error: the
// failure mode that triggers tier fallback, and — when every tier
// fails — the error the caller finally sees.
type PanicError struct {
	// Tier names the engine tier that panicked.
	Tier string
	// Value is the recovered panic value.
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("guard: %s engine panicked: %v", e.Tier, e.Value)
}

// Supervisor wraps an ExecFunc with fallback, breakers, and shadow
// verification. Create with New; stop the shadow workers with Close.
type Supervisor struct {
	cfg Config
	m   guardMetrics
	log *incidentLog
	now func() time.Time

	mu       sync.Mutex
	breakers map[breakerKey]*breaker
	shadowN  map[string]int64 // per-class sampled-execution counters

	shadow *shadowPool
}

// New builds a Supervisor. It panics if cfg.Exec is nil — a supervisor
// with nothing to supervise is a programming error, not a runtime
// condition.
func New(cfg Config) *Supervisor {
	if cfg.Exec == nil {
		panic("guard: Config.Exec is required")
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.ShadowWorkers <= 0 {
		cfg.ShadowWorkers = 1
	}
	if cfg.ShadowQueue <= 0 {
		cfg.ShadowQueue = 64
	}
	if cfg.ShadowTimeout <= 0 {
		cfg.ShadowTimeout = 2 * time.Minute
	}
	if cfg.IncidentCap <= 0 {
		cfg.IncidentCap = 256
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Supervisor{
		cfg:      cfg,
		m:        newGuardMetrics(cfg.Metrics),
		log:      newIncidentLog(cfg.IncidentCap),
		now:      cfg.Now,
		breakers: map[breakerKey]*breaker{},
		shadowN:  map[string]int64{},
	}
	if cfg.ShadowRate > 0 {
		s.shadow = newShadowPool(s, cfg.ShadowWorkers, cfg.ShadowQueue)
	}
	return s
}

// Close stops the shadow workers and waits for in-flight shadow
// re-executions to finish. Exec must not be called after Close.
func (s *Supervisor) Close() {
	if s.shadow != nil {
		s.shadow.close()
	}
}

// Incidents returns a snapshot of the incident ring, newest first, and
// the total number of incidents ever recorded (recorded − len(snapshot)
// have been evicted from the bounded ring).
func (s *Supervisor) Incidents() ([]Incident, int64) { return s.log.snapshot() }

// tierName maps an engine tier to its emu engine name.
func tierName(mode emu.LoopMode) string {
	switch mode {
	case emu.LoopAdaptive:
		return emu.EngineAdaptive
	case emu.LoopFused:
		return emu.EngineFused
	case emu.LoopFast:
		return emu.EngineFast
	default:
		return emu.EngineInstrumented
	}
}

// chainFor resolves a request's engine-tier fallback chain. Requests
// the chain model cannot honor — armed fault plans or profile capture,
// which force (or are only honored by) specific engine behavior —
// return nil and execute passthrough, exactly once, with Loop
// untouched.
func chainFor(req *driver.Request) []emu.LoopMode {
	if req.Faults != nil || req.Profile != nil {
		return nil
	}
	switch req.Loop {
	case emu.LoopAuto, emu.LoopAdaptive:
		// Default (and explicitly adaptive) requests lead with the
		// adaptive tier: brserve's long-lived cached programs are exactly
		// the regime where runtime re-fusion amortizes its warmup.
		return []emu.LoopMode{emu.LoopAdaptive, emu.LoopFused, emu.LoopFast, emu.LoopInstrumented}
	case emu.LoopFused:
		return []emu.LoopMode{emu.LoopFused, emu.LoopFast, emu.LoopInstrumented}
	case emu.LoopFast:
		return []emu.LoopMode{emu.LoopFast, emu.LoopInstrumented}
	default:
		return []emu.LoopMode{emu.LoopInstrumented}
	}
}

// retryable reports whether a tier failure should move the request down
// the chain. Only a recovered engine panic is: typed traps are the
// program's own outcome (identical on every tier by the engine-identity
// contract), context errors are the caller's deadline, and anything
// else the driver returns is a compile or validation failure that no
// engine change can fix.
func retryable(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// outcomeFor labels a tier attempt's failure for its trace span: a
// recovered engine panic (the fallback trigger) is "panic", anything
// deterministic — trap, compile error, caller deadline — is "error".
func outcomeFor(err error) string {
	if retryable(err) {
		return "panic"
	}
	return "error"
}

// attempt runs one tier, converting a panic into a *PanicError. The
// named return values are what the deferred recover writes into.
func (s *Supervisor) attempt(ctx context.Context, class string, req driver.Request, tier string) (res *driver.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &PanicError{Tier: tier, Value: p}
		}
	}()
	return s.cfg.Exec(ctx, class, req)
}

// Exec supervises one request: it walks the engine-tier chain, skipping
// quarantined tiers, recovering panics, and feeding the breakers; on
// success it may enqueue a shadow re-execution. The returned Result
// carries the fallback annotation. Errors pass through untouched (a
// trap is still a trap, reachable with errors.As), except that a panic
// on the last tier surfaces as a *PanicError.
func (s *Supervisor) Exec(ctx context.Context, class string, req driver.Request) (*Result, error) {
	chain := chainFor(&req)
	if chain == nil {
		sp, actx := obs.StartSpan(ctx, "tier:"+tierName(req.Loop), "guard")
		sp.SetArg("mode", "passthrough")
		res, err := s.attempt(actx, class, req, tierName(req.Loop))
		if err != nil {
			sp.SetArg("outcome", outcomeFor(err))
			sp.End()
			return nil, err
		}
		sp.SetArg("outcome", "ok")
		sp.End()
		return &Result{Result: res, Tier: res.Engine}, nil
	}

	var fellFrom []string
	rerouted := false
	for i, tier := range chain {
		name := tierName(tier)
		last := i == len(chain)-1
		var br *breaker
		probe := false
		if !last {
			// The last tier is the safety net: it executes regardless of
			// breaker state, because skipping it would leave nowhere to go.
			br = s.breakerFor(class, name)
			switch br.admit(s.now()) {
			case admitSkip:
				s.m.breakerReroute.Inc()
				rerouted = true
				// A zero-duration span marks the skip, so the request's
				// span tree explains why its preferred tier never ran.
				sp, _ := obs.StartSpan(ctx, "tier:"+name, "guard")
				sp.SetArg("outcome", "skipped")
				sp.SetArg("reason", "breaker-open")
				sp.End()
				continue
			case admitProbe:
				probe = true
				s.m.breakerHalfOpen.Inc()
			}
		}

		req.Loop = tier
		sp, actx := obs.StartSpan(ctx, "tier:"+name, "guard")
		if probe {
			sp.SetArg("probe", "half-open")
		}
		res, err := s.attempt(actx, class, req, name)
		if err != nil {
			sp.SetArg("outcome", outcomeFor(err))
		}
		if err == nil {
			sp.SetArg("outcome", "ok")
			if br != nil {
				if br.success(probe) {
					s.m.breakerClose.Inc()
					s.m.breakerOpenNow.Set(s.openBreakers())
					s.record(IncidentBreakerClose, class, name,
						"half-open probe succeeded; breaker closed")
				}
			}
			if len(fellFrom) > 0 {
				s.m.fallbackSuccess.Inc()
				s.record(IncidentPanicFallback, class, name,
					fmt.Sprintf("tier %s rescued the request after %v faulted", name, fellFrom))
			}
			if s.maybeShadow(class, req, tier, res) {
				sp.SetArg("shadow", "sampled")
			}
			sp.End()
			return &Result{Result: res, Tier: res.Engine, FallbackFrom: fellFrom, Rerouted: rerouted}, nil
		}
		sp.End()
		if !retryable(err) {
			// A deterministic outcome (trap, compile error, caller's
			// deadline): the tier functioned, so a probe may close the
			// breaker, and the error goes straight back to the caller.
			if br != nil && br.success(probe) {
				s.m.breakerClose.Inc()
				s.m.breakerOpenNow.Set(s.openBreakers())
				s.record(IncidentBreakerClose, class, name,
					"half-open probe succeeded; breaker closed")
			}
			return nil, err
		}
		if br != nil && br.failure(s.now(), probe, s.cfg.Threshold, s.cfg.Cooldown) {
			s.m.breakerOpen.Inc()
			s.m.breakerOpenNow.Set(s.openBreakers())
			s.record(IncidentBreakerOpen, class, name,
				fmt.Sprintf("breaker opened after consecutive %s-tier failures: %v", name, err))
		}
		s.m.fallbackAttempts.Inc()
		fellFrom = append(fellFrom, name)
		if last {
			s.m.fallbackExhausted.Inc()
			s.record(IncidentTierExhausted, class, name,
				fmt.Sprintf("every tier failed; last error: %v", err))
			return nil, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
	}
	// Unreachable: the chain always ends with an unconditional last tier.
	return nil, fmt.Errorf("guard: tier chain exhausted without a terminal attempt")
}

// breakerFor returns the (class, tier) breaker, creating it on first use.
func (s *Supervisor) breakerFor(class, tier string) *breaker {
	key := breakerKey{class: class, tier: tier}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.breakers[key]
	if !ok {
		b = &breaker{}
		s.breakers[key] = b
	}
	return b
}

// openBreakers counts breakers not currently closed (the open_now gauge).
func (s *Supervisor) openBreakers() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, b := range s.breakers {
		if !b.isClosed() {
			n++
		}
	}
	return n
}

// Quarantine force-opens the (class, tier) breaker — the shadow
// verifier's response to a differential mismatch, exported so tests and
// operators can quarantine a suspect pair directly.
func (s *Supervisor) Quarantine(class, tier, reason string) {
	b := s.breakerFor(class, tier)
	if b.trip(s.now(), s.cfg.Cooldown) {
		s.m.breakerOpen.Inc()
	}
	s.m.breakerOpenNow.Set(s.openBreakers())
	s.record(IncidentBreakerOpen, class, tier, "quarantined: "+reason)
	if s.cfg.OnQuarantine != nil {
		s.cfg.OnQuarantine(class, tier)
	}
}

// record appends one incident and counts it.
func (s *Supervisor) record(kind IncidentKind, class, tier, detail string) {
	s.m.incidents.Inc()
	s.log.add(Incident{Time: s.now(), Kind: kind, Class: class, Tier: tier, Detail: detail})
}
