package guard

import (
	"sync"
	"time"
)

// IncidentKind classifies one supervision event.
type IncidentKind string

const (
	// IncidentPanicFallback: an engine tier panicked and a lower tier
	// rescued the request.
	IncidentPanicFallback IncidentKind = "panic-fallback"
	// IncidentShadowMismatch: a shadow re-execution diverged from the
	// served response — the alarm this whole layer exists to raise.
	IncidentShadowMismatch IncidentKind = "shadow-mismatch"
	// IncidentBreakerOpen: a (class, tier) breaker opened (consecutive
	// failures or quarantine).
	IncidentBreakerOpen IncidentKind = "breaker-open"
	// IncidentBreakerClose: a half-open probe succeeded and the breaker
	// closed.
	IncidentBreakerClose IncidentKind = "breaker-close"
	// IncidentTierExhausted: every tier in the chain failed; the caller
	// saw the last error.
	IncidentTierExhausted IncidentKind = "tier-exhausted"
)

// Incident is one recorded supervision event, served by brserve's
// GET /v1/incidents.
type Incident struct {
	// ID increases monotonically from 1 across the process lifetime, so
	// consumers can detect ring eviction (gaps never occur; a snapshot
	// whose oldest ID is > 1 has evicted older incidents).
	ID   int64        `json:"id"`
	Time time.Time    `json:"time"`
	Kind IncidentKind `json:"kind"`
	// Class is the workload class ("sieve/branchreg", "src:ab12cd34/baseline").
	Class string `json:"class"`
	// Tier is the engine tier the incident concerns.
	Tier string `json:"tier"`
	// Detail is a human-readable description of what happened.
	Detail string `json:"detail,omitempty"`
}

// incidentLog is a bounded ring of the most recent incidents. Bounded
// because it is served over HTTP from a long-running process: an engine
// bug hit by a hot workload could otherwise grow it without limit.
type incidentLog struct {
	mu    sync.Mutex
	ring  []Incident
	next  int   // ring index the next incident lands in
	total int64 // incidents ever recorded (also the ID source)
}

func newIncidentLog(cap int) *incidentLog {
	return &incidentLog{ring: make([]Incident, 0, cap)}
}

// add records one incident, assigning its ID and evicting the oldest
// entry when the ring is full.
func (l *incidentLog) add(in Incident) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	in.ID = l.total
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, in)
		l.next = len(l.ring) % cap(l.ring)
		return
	}
	l.ring[l.next] = in
	l.next = (l.next + 1) % cap(l.ring)
}

// snapshot returns the retained incidents newest-first plus the
// all-time total.
func (l *incidentLog) snapshot() ([]Incident, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Incident, 0, len(l.ring))
	// Walk backwards from the newest entry (the one before next). While
	// the ring is filling, next == len, so this is a plain reverse walk;
	// once full, it wraps past the eviction point.
	for i := 0; i < len(l.ring); i++ {
		out = append(out, l.ring[(l.next-1-i+2*cap(l.ring))%cap(l.ring)])
	}
	return out, l.total
}
