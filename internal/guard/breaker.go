package guard

import (
	"sync"
	"time"
)

// The circuit breaker is per (workload class, engine tier). Its job is
// containment: once a tier has proven unreliable for a class, stop
// feeding it requests (each failed attempt costs a wasted execution and
// a recovered panic) and pin the class to the next tier down until a
// half-open probe shows the tier healthy again.
//
//	closed ──threshold consecutive failures──► open
//	open ──cooldown elapsed, next request──► half-open (that request probes)
//	half-open ──probe succeeds──► closed
//	half-open ──probe fails──► open (fresh cooldown)
//
// A shadow-verification mismatch skips the counting and trips the
// breaker straight to open (quarantine): a wrong answer is categorically
// worse than a crash, because nothing downstream would have noticed.

type breakerKey struct {
	class string
	tier  string
}

type breakerState int

const (
	stClosed breakerState = iota
	stOpen
	stHalfOpen
)

// breaker is one (class, tier) circuit. All methods are safe for
// concurrent use; the supervisor owns transition metrics and incident
// recording, keyed off the boolean "a transition happened" returns.
type breaker struct {
	mu      sync.Mutex
	state   breakerState
	fails   int       // consecutive failures while closed
	until   time.Time // when an open breaker may probe
	probing bool      // a half-open probe is in flight
}

type admitDecision int

const (
	admitYes admitDecision = iota
	admitSkip
	admitProbe
)

// admit decides what this request may do with the breaker's tier:
// execute normally (closed), skip to the next tier (open, or another
// probe already in flight), or execute as the half-open probe.
func (b *breaker) admit(now time.Time) admitDecision {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stClosed:
		return admitYes
	case stOpen:
		if now.Before(b.until) {
			return admitSkip
		}
		b.state = stHalfOpen
		b.probing = true
		return admitProbe
	default: // stHalfOpen
		if b.probing {
			return admitSkip
		}
		b.probing = true
		return admitProbe
	}
}

// success records a healthy execution. It returns true when this was
// the half-open probe that closed the breaker.
func (b *breaker) success(probe bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if b.state == stHalfOpen && probe {
		b.state = stClosed
		b.fails = 0
		return true
	}
	if b.state == stClosed {
		b.fails = 0
	}
	return false
}

// failure records a tier fault. It returns true when the breaker
// transitioned to open — either the threshold'th consecutive failure
// while closed, or a failed half-open probe.
func (b *breaker) failure(now time.Time, probe bool, threshold int, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	switch b.state {
	case stHalfOpen:
		if !probe {
			return false // a stale pre-transition failure; the probe decides
		}
		b.state = stOpen
		b.until = now.Add(cooldown)
		return true
	case stClosed:
		b.fails++
		if b.fails < threshold {
			return false
		}
		b.state = stOpen
		b.until = now.Add(cooldown)
		return true
	default: // stOpen: concurrent failures after the transition
		return false
	}
}

// trip force-opens the breaker (shadow-mismatch quarantine). It returns
// true when the breaker was not already open.
func (b *breaker) trip(now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	was := b.state
	b.state = stOpen
	b.until = now.Add(cooldown)
	b.probing = false
	b.fails = 0
	return was != stOpen
}

// isClosed reports whether the breaker is in its healthy state.
func (b *breaker) isClosed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == stClosed
}
