package guard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/obs"
)

// fakeClock is an injectable clock for breaker cooldown transitions.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// tierExec builds an ExecFunc that dispatches on the request's engine
// tier: handlers[tier] runs; a missing handler succeeds with a result
// naming the tier.
func tierExec(handlers map[emu.LoopMode]func() (*driver.Result, error)) ExecFunc {
	return func(ctx context.Context, class string, req driver.Request) (*driver.Result, error) {
		if h, ok := handlers[req.Loop]; ok {
			return h()
		}
		return &driver.Result{Output: "ok", Engine: tierName(req.Loop)}, nil
	}
}

func panicOn() (*driver.Result, error) { panic("injected engine bug") }

// incidentKinds tallies the supervisor's incident log by kind.
func incidentKinds(s *Supervisor) map[IncidentKind]int {
	out := map[IncidentKind]int{}
	snap, _ := s.Incidents()
	for _, in := range snap {
		out[in.Kind]++
	}
	return out
}

func counter(r *obs.Registry, name string) int64 {
	return r.Counter(name).Value()
}

func TestFallbackRescuesAdaptivePanic(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{
		Exec:    tierExec(map[emu.LoopMode]func() (*driver.Result, error){emu.LoopAdaptive: panicOn}),
		Metrics: reg,
	})
	defer s.Close()

	out, err := s.Exec(context.Background(), "sieve/branchreg", driver.Request{Loop: emu.LoopAuto})
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if out.Tier != emu.EngineFused {
		t.Errorf("Tier = %q, want %q", out.Tier, emu.EngineFused)
	}
	if len(out.FallbackFrom) != 1 || out.FallbackFrom[0] != emu.EngineAdaptive {
		t.Errorf("FallbackFrom = %v, want [adaptive]", out.FallbackFrom)
	}
	if out.Rerouted {
		t.Error("Rerouted = true on a first-try fallback")
	}
	if n := counter(reg, "guard.fallback.success"); n != 1 {
		t.Errorf("guard.fallback.success = %d, want 1", n)
	}
	if kinds := incidentKinds(s); kinds[IncidentPanicFallback] != 1 {
		t.Errorf("incidents = %v, want one panic-fallback", kinds)
	}
}

func TestFallbackExhausted(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{
		Exec: tierExec(map[emu.LoopMode]func() (*driver.Result, error){
			emu.LoopAdaptive:     panicOn,
			emu.LoopFused:        panicOn,
			emu.LoopFast:         panicOn,
			emu.LoopInstrumented: panicOn,
		}),
		Metrics: reg,
	})
	defer s.Close()

	_, err := s.Exec(context.Background(), "sieve/branchreg", driver.Request{Loop: emu.LoopAuto})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Tier != emu.EngineInstrumented {
		t.Errorf("final PanicError tier = %q, want the last tier", pe.Tier)
	}
	if n := counter(reg, "guard.fallback.exhausted"); n != 1 {
		t.Errorf("guard.fallback.exhausted = %d, want 1", n)
	}
	if kinds := incidentKinds(s); kinds[IncidentTierExhausted] != 1 {
		t.Errorf("incidents = %v, want one tier-exhausted", kinds)
	}
}

// TestBreakerLifecycle drives one (class, tier) breaker through
// closed → open → half-open → closed with a fake clock.
func TestBreakerLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	var adaptiveHealthy atomic.Bool
	exec := tierExec(map[emu.LoopMode]func() (*driver.Result, error){
		emu.LoopAdaptive: func() (*driver.Result, error) {
			if adaptiveHealthy.Load() {
				return &driver.Result{Output: "ok", Engine: emu.EngineAdaptive}, nil
			}
			panic("injected engine bug")
		},
	})
	const cooldown = time.Minute
	s := New(Config{Exec: exec, Threshold: 3, Cooldown: cooldown, Metrics: reg, Now: clock.now})
	defer s.Close()
	ctx := context.Background()
	class := "sieve/branchreg"

	// Three consecutive adaptive panics: every request is rescued by the
	// fused tier, and the third opens the breaker.
	for i := 0; i < 3; i++ {
		out, err := s.Exec(ctx, class, driver.Request{Loop: emu.LoopAuto})
		if err != nil || out.Tier != emu.EngineFused {
			t.Fatalf("request %d: out=%+v err=%v, want fused-tier rescue", i, out, err)
		}
	}
	if n := counter(reg, "guard.breaker.open"); n != 1 {
		t.Fatalf("guard.breaker.open = %d after threshold failures, want 1", n)
	}
	if n := reg.Gauge("guard.breaker.open_now").Value(); n != 1 {
		t.Errorf("guard.breaker.open_now = %d, want 1", n)
	}

	// Open: the adaptive tier is skipped without being attempted.
	out, err := s.Exec(ctx, class, driver.Request{Loop: emu.LoopAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rerouted || out.Tier != emu.EngineFused || len(out.FallbackFrom) != 0 {
		t.Fatalf("open breaker: got %+v, want rerouted fused-tier result with no fallback", out)
	}
	if n := counter(reg, "guard.breaker.reroute"); n != 1 {
		t.Errorf("guard.breaker.reroute = %d, want 1", n)
	}

	// Another class is unaffected: breakers are per (class, tier).
	out, err = s.Exec(ctx, "other/branchreg", driver.Request{Loop: emu.LoopAuto})
	if err != nil || out.Rerouted {
		t.Fatalf("other class: out=%+v err=%v, want un-rerouted", out, err)
	}

	// Cooldown elapses and the engine is healthy again: the next request
	// probes half-open, succeeds, and closes the breaker.
	adaptiveHealthy.Store(true)
	clock.advance(cooldown + time.Second)
	out, err = s.Exec(ctx, class, driver.Request{Loop: emu.LoopAuto})
	if err != nil || out.Tier != emu.EngineAdaptive {
		t.Fatalf("probe: out=%+v err=%v, want adaptive-tier success", out, err)
	}
	if n := counter(reg, "guard.breaker.half_open"); n != 1 {
		t.Errorf("guard.breaker.half_open = %d, want 1", n)
	}
	if n := counter(reg, "guard.breaker.close"); n != 1 {
		t.Errorf("guard.breaker.close = %d, want 1", n)
	}
	if n := reg.Gauge("guard.breaker.open_now").Value(); n != 0 {
		t.Errorf("guard.breaker.open_now = %d after close, want 0", n)
	}
	kinds := incidentKinds(s)
	if kinds[IncidentBreakerOpen] != 1 || kinds[IncidentBreakerClose] != 1 {
		t.Errorf("incidents = %v, want one breaker-open and one breaker-close", kinds)
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe restarts the
// cooldown instead of closing.
func TestBreakerProbeFailureReopens(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	exec := tierExec(map[emu.LoopMode]func() (*driver.Result, error){emu.LoopAdaptive: panicOn})
	const cooldown = time.Minute
	s := New(Config{Exec: exec, Threshold: 2, Cooldown: cooldown, Metrics: reg, Now: clock.now})
	defer s.Close()
	ctx := context.Background()
	class := "queens/branchreg"

	for i := 0; i < 2; i++ {
		if _, err := s.Exec(ctx, class, driver.Request{Loop: emu.LoopAuto}); err != nil {
			t.Fatal(err)
		}
	}
	if n := counter(reg, "guard.breaker.open"); n != 1 {
		t.Fatalf("guard.breaker.open = %d, want 1", n)
	}

	clock.advance(cooldown + time.Second)
	// The probe panics: breaker reopens with a fresh cooldown.
	if _, err := s.Exec(ctx, class, driver.Request{Loop: emu.LoopAuto}); err != nil {
		t.Fatal(err)
	}
	if n := counter(reg, "guard.breaker.open"); n != 2 {
		t.Errorf("guard.breaker.open = %d after failed probe, want 2", n)
	}
	// Still within the fresh cooldown: skip, not probe.
	out, err := s.Exec(ctx, class, driver.Request{Loop: emu.LoopAuto})
	if err != nil || !out.Rerouted {
		t.Fatalf("post-reopen request: out=%+v err=%v, want rerouted", out, err)
	}
}

// TestPassthroughRequests: fault-plan and profile requests bypass the
// chain — one attempt, Loop untouched, panics surface as *PanicError.
func TestPassthroughRequests(t *testing.T) {
	var calls atomic.Int64
	exec := ExecFunc(func(ctx context.Context, class string, req driver.Request) (*driver.Result, error) {
		calls.Add(1)
		if req.Loop != emu.LoopInstrumented {
			t.Errorf("passthrough rewrote Loop to %v", req.Loop)
		}
		panic("fault-plan crash")
	})
	s := New(Config{Exec: exec, Metrics: obs.NewRegistry()})
	defer s.Close()

	req := driver.Request{Loop: emu.LoopInstrumented, Faults: &emu.FaultPlan{}}
	_, err := s.Exec(context.Background(), "sieve/branchreg", req)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("exec called %d times, want 1 (no fallback for passthrough)", n)
	}
}

// TestNonRetryableErrorPassesThrough: a deterministic error (compile
// failure, trap) returns immediately without trying lower tiers.
func TestNonRetryableErrorPassesThrough(t *testing.T) {
	sentinel := errors.New("compile failed")
	var calls atomic.Int64
	exec := ExecFunc(func(ctx context.Context, class string, req driver.Request) (*driver.Result, error) {
		calls.Add(1)
		return nil, sentinel
	})
	s := New(Config{Exec: exec, Metrics: obs.NewRegistry()})
	defer s.Close()

	_, err := s.Exec(context.Background(), "sieve/branchreg", driver.Request{Loop: emu.LoopAuto})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sentinel unchanged", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("exec called %d times, want 1 (deterministic errors do not fall back)", n)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShadowMismatchQuarantines: a shadow re-execution that diverges
// records an incident and immediately quarantines the served tier.
func TestShadowMismatchQuarantines(t *testing.T) {
	reg := obs.NewRegistry()
	// The adaptive tier answers "AA", every other tier "BB": every shadow
	// of an adaptive response mismatches.
	exec := ExecFunc(func(ctx context.Context, class string, req driver.Request) (*driver.Result, error) {
		if req.Loop == emu.LoopAdaptive {
			return &driver.Result{Output: "AA", Engine: emu.EngineAdaptive}, nil
		}
		return &driver.Result{Output: "BB", Engine: emu.EngineFused}, nil
	})
	s := New(Config{Exec: exec, ShadowRate: 1, Metrics: reg})
	defer s.Close()
	ctx := context.Background()
	class := "wordcount/branchreg"

	out, err := s.Exec(ctx, class, driver.Request{Loop: emu.LoopAuto})
	if err != nil || out.Tier != emu.EngineAdaptive {
		t.Fatalf("primary: out=%+v err=%v, want adaptive success", out, err)
	}
	waitFor(t, "shadow mismatch", func() bool { return counter(reg, "guard.shadow.mismatch") >= 1 })

	kinds := incidentKinds(s)
	if kinds[IncidentShadowMismatch] < 1 || kinds[IncidentBreakerOpen] < 1 {
		t.Fatalf("incidents = %v, want shadow-mismatch plus quarantine breaker-open", kinds)
	}
	// The quarantine reroutes the class off the adaptive tier at once.
	out, err = s.Exec(ctx, class, driver.Request{Loop: emu.LoopAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rerouted || out.Tier != emu.EngineFused {
		t.Fatalf("post-quarantine: got %+v, want rerouted fused-tier result", out)
	}
}

// TestShadowAgreement: matching results count guard.shadow.ok and leave
// the breakers alone.
func TestShadowAgreement(t *testing.T) {
	reg := obs.NewRegistry()
	exec := ExecFunc(func(ctx context.Context, class string, req driver.Request) (*driver.Result, error) {
		return &driver.Result{Output: "same", Status: 7, Engine: tierName(req.Loop)}, nil
	})
	s := New(Config{Exec: exec, ShadowRate: 2, Metrics: reg})
	defer s.Close()
	ctx := context.Background()

	// Rate 2: the second execution of the class is sampled, not the first.
	for i := 0; i < 4; i++ {
		if _, err := s.Exec(ctx, "sieve/branchreg", driver.Request{Loop: emu.LoopAuto}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "shadow ok", func() bool { return counter(reg, "guard.shadow.ok") >= 2 })
	if n := counter(reg, "guard.shadow.sampled"); n != 2 {
		t.Errorf("guard.shadow.sampled = %d after 4 requests at rate 2, want 2", n)
	}
	if n := counter(reg, "guard.shadow.mismatch"); n != 0 {
		t.Errorf("guard.shadow.mismatch = %d, want 0", n)
	}
	if _, total := s.Incidents(); total != 0 {
		t.Errorf("incidents recorded = %d, want 0", total)
	}
}

// TestIncidentRingBounded: the ring retains the newest IncidentCap
// incidents, with monotonically increasing IDs and an accurate total.
func TestIncidentRingBounded(t *testing.T) {
	s := New(Config{
		Exec:        tierExec(nil),
		IncidentCap: 4,
		Metrics:     obs.NewRegistry(),
	})
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.record(IncidentBreakerOpen, fmt.Sprintf("c%d/branchreg", i), emu.EngineFused, "test")
	}
	snap, total := s.Incidents()
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
	if len(snap) != 4 {
		t.Fatalf("retained = %d, want 4", len(snap))
	}
	for i, in := range snap {
		if want := int64(10 - i); in.ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d (newest first)", i, in.ID, want)
		}
	}
}

// TestSupervisorConcurrentChaos hammers one supervisor from many
// goroutines while the adaptive tier panics intermittently — run under
// -race, every request must still be rescued.
func TestSupervisorConcurrentChaos(t *testing.T) {
	reg := obs.NewRegistry()
	var n atomic.Int64
	exec := ExecFunc(func(ctx context.Context, class string, req driver.Request) (*driver.Result, error) {
		if req.Loop == emu.LoopAdaptive && n.Add(1)%3 == 0 {
			panic("intermittent engine bug")
		}
		return &driver.Result{Output: "ok:" + class, Engine: tierName(req.Loop)}, nil
	})
	s := New(Config{Exec: exec, Threshold: 2, Cooldown: time.Millisecond, ShadowRate: 4, Metrics: reg})
	defer s.Close()

	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		class := fmt.Sprintf("class%d/branchreg", g%4)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				out, err := s.Exec(context.Background(), class, driver.Request{Loop: emu.LoopAuto})
				if err != nil {
					errs <- err
					return
				}
				if out.Output != "ok:"+class {
					errs <- fmt.Errorf("wrong output %q for %s", out.Output, class)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestShadowSkipsCachedResults: a memoized Result is not an execution,
// so it must neither be sampled nor advance the per-class shadow
// counter — cached traffic cannot dilute shadow coverage of the
// engines that are actually running.
func TestShadowSkipsCachedResults(t *testing.T) {
	reg := obs.NewRegistry()
	var calls atomic.Int64
	exec := ExecFunc(func(ctx context.Context, class string, req driver.Request) (*driver.Result, error) {
		// The first primary execution (and its shadow re-execution) are
		// real; everything after answers as a cache hit would.
		cached := calls.Add(1) > 2
		return &driver.Result{Output: "same", Engine: tierName(req.Loop), Cached: cached}, nil
	})
	s := New(Config{Exec: exec, ShadowRate: 1, Metrics: reg})
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Exec(ctx, "sieve/branchreg", driver.Request{Loop: emu.LoopAuto}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "shadow of the real execution", func() bool { return counter(reg, "guard.shadow.ok") >= 1 })

	for i := 0; i < 3; i++ {
		out, err := s.Exec(ctx, "sieve/branchreg", driver.Request{Loop: emu.LoopAuto})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Cached {
			t.Fatalf("request %d: exec stub did not report a cached result: %+v", i, out)
		}
	}
	if n := counter(reg, "guard.shadow.sampled"); n != 1 {
		t.Errorf("guard.shadow.sampled = %d at rate 1 after 1 real + 3 cached executions, want 1", n)
	}
}

// TestQuarantineNotifiesHook: OnQuarantine fires with the quarantined
// (class, tier) coordinates — the contract brserve's result-cache
// invalidation hangs off.
func TestQuarantineNotifiesHook(t *testing.T) {
	type quarantined struct{ class, tier string }
	got := make(chan quarantined, 1)
	s := New(Config{
		Exec:    tierExec(nil),
		Metrics: obs.NewRegistry(),
		OnQuarantine: func(class, tier string) {
			got <- quarantined{class, tier}
		},
	})
	defer s.Close()

	s.Quarantine("sieve/branchreg", emu.EngineAdaptive, "test quarantine")
	select {
	case q := <-got:
		if q.class != "sieve/branchreg" || q.tier != emu.EngineAdaptive {
			t.Errorf("hook got (%q, %q), want (sieve/branchreg, adaptive)", q.class, q.tier)
		}
	default:
		t.Error("Quarantine did not invoke OnQuarantine")
	}
}
