package opt

import "branchreg/internal/ir"

// Loop-invariant code motion (the paper's §10 "conventional optimizations
// of code motion"): pure, non-trapping instructions whose operands are not
// defined inside a loop move to the loop preheader. This benefits both
// machines equally — notably the two-instruction global address
// materializations inside loops.

// licm hoists invariant instructions; returns whether anything moved.
// Requires up-to-date CFG/loop analysis (runs its own Analyze first).
func licm(f *ir.Func) bool {
	if err := f.Analyze(); err != nil {
		return false
	}
	changed := false
	// Innermost loops first (Analyze sorts loops outermost-first).
	for i := len(f.Loops) - 1; i >= 0; i-- {
		if hoistLoop(f, f.Loops[i]) {
			changed = true
			// Block contents changed; recompute analyses for outer loops.
			if err := f.Analyze(); err != nil {
				return changed
			}
		}
	}
	return changed
}

// hoistLoop moves invariant instructions of one loop into its preheader.
func hoistLoop(f *ir.Func, l *ir.Loop) bool {
	if l.Preheader == nil {
		return false
	}
	// Deterministic block order (map iteration would make the hoisted
	// instruction order, and thus the output binary, vary run to run).
	var blocks []*ir.Block
	for _, b := range f.Blocks {
		if l.Blocks[b] {
			blocks = append(blocks, b)
		}
	}
	// Count integer/float register definitions inside the loop.
	intDefs := map[ir.Reg]int{}
	fltDefs := map[ir.Reg]int{}
	for _, b := range blocks {
		for i := range b.Ins {
			di, df := b.Ins[i].Defs()
			if di != ir.None {
				intDefs[di]++
			}
			if df != ir.None {
				fltDefs[df]++
			}
		}
	}
	intLive, fltLive := f.ComputeLiveness()
	headIdx := l.Header.Index

	invariantI := map[ir.Reg]bool{} // regs whose single in-loop def was hoisted
	invariantF := map[ir.Reg]bool{}

	sourcesInvariant := func(in *ir.Ins) bool {
		var is, fs []ir.Reg
		is, fs = in.Uses(is, fs)
		for _, r := range is {
			if intDefs[r] > 0 && !invariantI[r] {
				return false
			}
		}
		for _, r := range fs {
			if fltDefs[r] > 0 && !invariantF[r] {
				return false
			}
		}
		return true
	}

	// Hoisting a value extends its live range over the entire loop, which
	// is expensive on a machine with few registers (the BRM has 16). Only
	// expensive materializations are worth that cost, and only a few per
	// loop — an unbudgeted LICM pass measurably *hurts* the 16-register
	// machine by flooding the allocator with loop-spanning values.
	intBudget, fltBudget := licmIntBudget, licmFltBudget

	var hoisted []ir.Ins
	changed := true
	moved := false
	for changed {
		changed = false
		for _, b := range blocks {
			kept := b.Ins[:0]
			for i := range b.Ins {
				in := b.Ins[i]
				if !worthHoisting(&in) || !sourcesInvariant(&in) {
					kept = append(kept, in)
					continue
				}
				di, df := in.Defs()
				ok := false
				switch {
				case di != ir.None && intBudget > 0 &&
					intDefs[di] == 1 && !intLive.In[headIdx].Has(di):
					invariantI[di] = true
					intBudget--
					ok = true
				case df != ir.None && fltBudget > 0 &&
					fltDefs[df] == 1 && !fltLive.In[headIdx].Has(df):
					invariantF[df] = true
					fltBudget--
					ok = true
				}
				if !ok {
					kept = append(kept, in)
					continue
				}
				hoisted = append(hoisted, in)
				changed = true
				moved = true
			}
			b.Ins = kept
		}
	}
	if !moved {
		return false
	}
	// Insert the hoisted instructions before the preheader's terminator,
	// preserving their dependency order (they were collected in a legal
	// order because each became "invariant" only after its sources did).
	ph := l.Preheader
	term := ph.Ins[len(ph.Ins)-1]
	ph.Ins = append(ph.Ins[:len(ph.Ins)-1], append(hoisted, term)...)
	return true
}

// Per-loop hoisting budgets (see the register-pressure note above).
const (
	licmIntBudget = 3
	licmFltBudget = 2
)

// worthHoisting reports whether the instruction is both safe to move
// (pure, non-trapping, not a load) and expensive enough to justify a
// loop-spanning register: address materializations (two instructions on
// both machines), float-constant loads, and large integer constants.
func worthHoisting(in *ir.Ins) bool {
	switch in.Kind {
	case ir.OpAddr, ir.OpSlotAddr, ir.OpConstF:
		return true
	case ir.OpConst:
		// Cheap constants rematerialize in one instruction; only large
		// ones take a sethi/add pair.
		return in.Imm < -2048 || in.Imm > 2047
	}
	return false
}
