package opt

import (
	"testing"

	"branchreg/internal/ir"
	"branchreg/internal/irexec"
	"branchreg/internal/irgen"
	"branchreg/internal/mc"
)

func lower(t *testing.T, src string) *ir.Unit {
	t.Helper()
	u, err := mc.Compile(src)
	if err != nil {
		t.Fatalf("front end: %v", err)
	}
	iu, err := irgen.Lower(u)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	return iu
}

func countIns(u *ir.Unit) int {
	n := 0
	for _, f := range u.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Ins)
		}
	}
	return n
}

// Programs whose behavior must be identical before and after optimization.
var semanticsPrograms = []struct {
	name, src, input, wantOut string
	wantStatus                int32
}{
	{"arith", `int main(void) { int a = 6; int b = a * 7; return b - (a << 1) + 12 / 4; }`, "", "", 33},
	{"loop", `int main(void) { int s = 0; for (int i = 0; i < 20; i++) s += i & 3; return s; }`, "", "", 30},
	{"calls", `
int sq(int x) { return x * x; }
int main(void) { int t = 0; for (int i = 1; i <= 5; i++) t += sq(i); return t % 100; }`, "", "", 55},
	{"io", `
int main(void) {
    int c;
    while ((c = getchar()) != -1) putchar(c == ' ' ? '_' : c);
    return 0;
}`, "a b c", "a_b_c", 0},
	{"globals", `
int acc = 0;
void add(int v) { acc += v; }
int main(void) { add(3); add(4); return acc; }`, "", "", 7},
	{"floats", `
float area(float r) { return 3.0 * r * r; }
int main(void) { return (int)area(4.0); }`, "", "", 48},
	{"memory", `
int buf[16];
int main(void) {
    for (int i = 0; i < 16; i++) buf[i] = i;
    int s = 0;
    for (int i = 0; i < 16; i += 2) s += buf[i];
    return s;
}`, "", "", 56},
	{"switch", `
int main(void) {
    int s = 0;
    for (int i = 0; i < 6; i++)
        switch (i) {
        case 0: s += 1; break;
        case 2: s += 4; break;
        case 4: s += 16; break;
        default: s += 100; break;
        }
    return s % 256;
}`, "", "", (1 + 4 + 16 + 300) % 256},
	{"deadbranch", `int main(void) { if (0) return 9; if (1) return 5; return 7; }`, "", "", 5},
}

func TestOptimizationPreservesSemantics(t *testing.T) {
	for _, p := range semanticsPrograms {
		t.Run(p.name, func(t *testing.T) {
			iu := lower(t, p.src)
			outBefore, stBefore, err := irexec.RunSource(iu, p.input)
			if err != nil {
				t.Fatalf("before: %v", err)
			}
			if err := RunUnit(iu, Default); err != nil {
				t.Fatalf("opt: %v", err)
			}
			for _, f := range iu.Funcs {
				if err := f.Verify(); err != nil {
					t.Fatalf("verify after opt: %v\n%s", err, f)
				}
			}
			outAfter, stAfter, err := irexec.RunSource(iu, p.input)
			if err != nil {
				t.Fatalf("after: %v", err)
			}
			if outBefore != outAfter || stBefore != stAfter {
				t.Errorf("optimization changed behavior: (%q,%d) -> (%q,%d)",
					outBefore, stBefore, outAfter, stAfter)
			}
			if p.wantOut != "" && outAfter != p.wantOut {
				t.Errorf("out = %q, want %q", outAfter, p.wantOut)
			}
			if stAfter != p.wantStatus {
				t.Errorf("status = %d, want %d", stAfter, p.wantStatus)
			}
		})
	}
}

func TestOptimizationShrinksCode(t *testing.T) {
	iu := lower(t, `
int a[10];
int main(void) {
    int x = 2 + 3;          // constant folds
    int y = x;              // copy propagates
    a[4] = y + 0;           // identity add
    a[4] = a[4];            // redundant load/store pair stays, but address calc CSEs
    int unused = x * 99;    // dead
    return a[4] + y - 5;
}`)
	before := countIns(iu)
	if err := RunUnit(iu, Default); err != nil {
		t.Fatal(err)
	}
	after := countIns(iu)
	if after >= before {
		t.Errorf("optimization did not shrink code: %d -> %d", before, after)
	}
	_, st, err := irexec.RunSource(iu, "")
	if err != nil {
		t.Fatal(err)
	}
	if st != 5 {
		t.Errorf("status = %d, want 5", st)
	}
}

func TestConstantBranchFolding(t *testing.T) {
	iu := lower(t, `int main(void) { if (2 > 1) return 4; return 9; }`)
	if err := RunUnit(iu, Default); err != nil {
		t.Fatal(err)
	}
	// After folding there must be no conditional branches left.
	for _, b := range iu.Funcs[0].Blocks {
		if tm := b.Term(); tm != nil && (tm.Kind == ir.OpBr || tm.Kind == ir.OpBrF) {
			t.Errorf("conditional branch survived constant folding: %s", tm)
		}
	}
}

func TestDCERemovesDeadLoads(t *testing.T) {
	iu := lower(t, `
int g = 3;
int main(void) {
    int dead = g;  // load with unused result
    return 1;
}`)
	if err := RunUnit(iu, Default); err != nil {
		t.Fatal(err)
	}
	for _, b := range iu.Funcs[0].Blocks {
		for i := range b.Ins {
			if b.Ins[i].Kind == ir.OpLoad {
				t.Errorf("dead load survived: %s", &b.Ins[i])
			}
		}
	}
}

func TestCSEMergesAddressCalcs(t *testing.T) {
	iu := lower(t, `
int g[4];
int main(void) { g[1] = 5; g[2] = 6; return g[1] + g[2]; }`)
	if err := RunUnit(iu, Default); err != nil {
		t.Fatal(err)
	}
	// All four accesses share one &g computation after CSE+copyprop.
	addrs := 0
	for _, b := range iu.Funcs[0].Blocks {
		for i := range b.Ins {
			if b.Ins[i].Kind == ir.OpAddr && b.Ins[i].Sym == "g" {
				addrs++
			}
		}
	}
	if addrs != 1 {
		t.Errorf("&g computed %d times, want 1", addrs)
	}
	_, st, err := irexec.RunSource(iu, "")
	if err != nil || st != 11 {
		t.Errorf("status = %d (%v), want 11", st, err)
	}
}

func TestCallsBlockLoadCSE(t *testing.T) {
	iu := lower(t, `
int g = 1;
void bump(void) { g++; }
int main(void) { int a = g; bump(); int b = g; return a * 10 + b; }`)
	if err := RunUnit(iu, Default); err != nil {
		t.Fatal(err)
	}
	_, st, err := irexec.RunSource(iu, "")
	if err != nil {
		t.Fatal(err)
	}
	if st != 12 {
		t.Errorf("status = %d, want 12 (load CSE across call is unsound)", st)
	}
}

func TestStoresBlockLoadCSE(t *testing.T) {
	iu := lower(t, `
int g = 1;
int main(void) { int a = g; g = 7; int b = g; return a * 10 + b; }`)
	if err := RunUnit(iu, Default); err != nil {
		t.Fatal(err)
	}
	_, st, err := irexec.RunSource(iu, "")
	if err != nil {
		t.Fatal(err)
	}
	if st != 17 {
		t.Errorf("status = %d, want 17 (load CSE across store is unsound)", st)
	}
}

func TestOptionsGranularity(t *testing.T) {
	// Running with no passes must leave behavior and code intact.
	iu := lower(t, `int main(void) { int x = 1 + 2; return x; }`)
	before := countIns(iu)
	if err := RunUnit(iu, None); err != nil {
		t.Fatal(err)
	}
	if countIns(iu) != before {
		t.Error("None options changed the code")
	}
	_, st, err := irexec.RunSource(iu, "")
	if err != nil || st != 3 {
		t.Errorf("status = %d (%v)", st, err)
	}
}

func licmOptions() Options {
	o := Default
	o.LICM = true
	return o
}

func TestLICMHoistsInvariants(t *testing.T) {
	iu := lower(t, `
int g;
int main(void) {
    int s = 0;
    int a = getchar();
    for (int i = 0; i < 50; i++) {
        s += a * 3 + g;   // a*3 is invariant; &g is invariant
        s += i;
    }
    return s & 255;
}`)
	before, st0, err := irexec.RunSource(iu, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := RunUnit(iu, licmOptions()); err != nil {
		t.Fatal(err)
	}
	after, st1, err := irexec.RunSource(iu, "x")
	if err != nil {
		t.Fatal(err)
	}
	if before != after || st0 != st1 {
		t.Fatalf("LICM changed behavior: (%q,%d) vs (%q,%d)", before, st0, after, st1)
	}
	// The invariant address materialization (&g, a two-instruction
	// sethi/add on both machines) must have left the loop body. Cheap ALU
	// ops deliberately stay (hoisting them floods the 16-register machine
	// with loop-spanning live ranges).
	f := iu.Funcs[0]
	if err := f.Analyze(); err != nil {
		t.Fatal(err)
	}
	for _, l := range f.Loops {
		for b := range l.Blocks {
			for i := range b.Ins {
				in := &b.Ins[i]
				if in.Kind == ir.OpAddr {
					t.Errorf("invariant address calc still in loop block %s: %s", b.Label, in)
				}
			}
		}
	}
}

func TestLICMRespectsVariantValues(t *testing.T) {
	// i*2 depends on the induction variable: must NOT hoist.
	iu := lower(t, `
int main(void) {
    int s = 0;
    for (int i = 0; i < 10; i++) s += i * 2;
    return s;
}`)
	if err := RunUnit(iu, licmOptions()); err != nil {
		t.Fatal(err)
	}
	_, st, err := irexec.RunSource(iu, "")
	if err != nil {
		t.Fatal(err)
	}
	if st != 90 {
		t.Errorf("status = %d, want 90", st)
	}
}

func TestLICMKeepsDivisionInPlace(t *testing.T) {
	// The division is invariant but only executes when d != 0: hoisting it
	// would fault. Semantics must be preserved.
	iu := lower(t, `
int main(void) {
    int d = getchar() - 'x';  // 0 for input "x"
    int s = 0;
    for (int i = 0; i < 5; i++) {
        if (d != 0) s += 100 / d;
        s += 1;
    }
    return s;
}`)
	if err := RunUnit(iu, licmOptions()); err != nil {
		t.Fatal(err)
	}
	_, st, err := irexec.RunSource(iu, "x")
	if err != nil {
		t.Fatalf("hoisted a guarded division: %v", err)
	}
	if st != 5 {
		t.Errorf("status = %d, want 5", st)
	}
}

func TestLICMSemanticsOnPrograms(t *testing.T) {
	for _, p := range semanticsPrograms {
		iu := lower(t, p.src)
		outB, stB, err := irexec.RunSource(iu, p.input)
		if err != nil {
			t.Fatal(err)
		}
		if err := RunUnit(iu, licmOptions()); err != nil {
			t.Fatal(err)
		}
		outA, stA, err := irexec.RunSource(iu, p.input)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if outA != outB || stA != stB {
			t.Errorf("%s: LICM changed behavior", p.name)
		}
	}
}
